
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/bcsr.cpp" "src/sparse/CMakeFiles/spmvopt_sparse.dir/bcsr.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvopt_sparse.dir/bcsr.cpp.o.d"
  "/root/repo/src/sparse/binary_io.cpp" "src/sparse/CMakeFiles/spmvopt_sparse.dir/binary_io.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvopt_sparse.dir/binary_io.cpp.o.d"
  "/root/repo/src/sparse/coo.cpp" "src/sparse/CMakeFiles/spmvopt_sparse.dir/coo.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvopt_sparse.dir/coo.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/sparse/CMakeFiles/spmvopt_sparse.dir/csr.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvopt_sparse.dir/csr.cpp.o.d"
  "/root/repo/src/sparse/delta_csr.cpp" "src/sparse/CMakeFiles/spmvopt_sparse.dir/delta_csr.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvopt_sparse.dir/delta_csr.cpp.o.d"
  "/root/repo/src/sparse/dense.cpp" "src/sparse/CMakeFiles/spmvopt_sparse.dir/dense.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvopt_sparse.dir/dense.cpp.o.d"
  "/root/repo/src/sparse/mmio.cpp" "src/sparse/CMakeFiles/spmvopt_sparse.dir/mmio.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvopt_sparse.dir/mmio.cpp.o.d"
  "/root/repo/src/sparse/reorder.cpp" "src/sparse/CMakeFiles/spmvopt_sparse.dir/reorder.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvopt_sparse.dir/reorder.cpp.o.d"
  "/root/repo/src/sparse/sell.cpp" "src/sparse/CMakeFiles/spmvopt_sparse.dir/sell.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvopt_sparse.dir/sell.cpp.o.d"
  "/root/repo/src/sparse/split_csr.cpp" "src/sparse/CMakeFiles/spmvopt_sparse.dir/split_csr.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvopt_sparse.dir/split_csr.cpp.o.d"
  "/root/repo/src/sparse/sym_csr.cpp" "src/sparse/CMakeFiles/spmvopt_sparse.dir/sym_csr.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvopt_sparse.dir/sym_csr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/spmvopt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
