file(REMOVE_RECURSE
  "CMakeFiles/spmvopt_sparse.dir/bcsr.cpp.o"
  "CMakeFiles/spmvopt_sparse.dir/bcsr.cpp.o.d"
  "CMakeFiles/spmvopt_sparse.dir/binary_io.cpp.o"
  "CMakeFiles/spmvopt_sparse.dir/binary_io.cpp.o.d"
  "CMakeFiles/spmvopt_sparse.dir/coo.cpp.o"
  "CMakeFiles/spmvopt_sparse.dir/coo.cpp.o.d"
  "CMakeFiles/spmvopt_sparse.dir/csr.cpp.o"
  "CMakeFiles/spmvopt_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/spmvopt_sparse.dir/delta_csr.cpp.o"
  "CMakeFiles/spmvopt_sparse.dir/delta_csr.cpp.o.d"
  "CMakeFiles/spmvopt_sparse.dir/dense.cpp.o"
  "CMakeFiles/spmvopt_sparse.dir/dense.cpp.o.d"
  "CMakeFiles/spmvopt_sparse.dir/mmio.cpp.o"
  "CMakeFiles/spmvopt_sparse.dir/mmio.cpp.o.d"
  "CMakeFiles/spmvopt_sparse.dir/reorder.cpp.o"
  "CMakeFiles/spmvopt_sparse.dir/reorder.cpp.o.d"
  "CMakeFiles/spmvopt_sparse.dir/sell.cpp.o"
  "CMakeFiles/spmvopt_sparse.dir/sell.cpp.o.d"
  "CMakeFiles/spmvopt_sparse.dir/split_csr.cpp.o"
  "CMakeFiles/spmvopt_sparse.dir/split_csr.cpp.o.d"
  "CMakeFiles/spmvopt_sparse.dir/sym_csr.cpp.o"
  "CMakeFiles/spmvopt_sparse.dir/sym_csr.cpp.o.d"
  "libspmvopt_sparse.a"
  "libspmvopt_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvopt_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
