# Empty compiler generated dependencies file for spmvopt_sparse.
# This may be replaced when dependencies are built.
