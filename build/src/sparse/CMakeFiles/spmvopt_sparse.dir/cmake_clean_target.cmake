file(REMOVE_RECURSE
  "libspmvopt_sparse.a"
)
