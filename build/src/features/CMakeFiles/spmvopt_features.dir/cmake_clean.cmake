file(REMOVE_RECURSE
  "CMakeFiles/spmvopt_features.dir/features.cpp.o"
  "CMakeFiles/spmvopt_features.dir/features.cpp.o.d"
  "libspmvopt_features.a"
  "libspmvopt_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvopt_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
