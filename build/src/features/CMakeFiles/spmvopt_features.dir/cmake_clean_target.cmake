file(REMOVE_RECURSE
  "libspmvopt_features.a"
)
