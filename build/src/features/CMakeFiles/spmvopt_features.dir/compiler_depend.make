# Empty compiler generated dependencies file for spmvopt_features.
# This may be replaced when dependencies are built.
