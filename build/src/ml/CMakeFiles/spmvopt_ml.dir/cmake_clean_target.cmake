file(REMOVE_RECURSE
  "libspmvopt_ml.a"
)
