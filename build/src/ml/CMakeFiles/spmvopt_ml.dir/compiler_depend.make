# Empty compiler generated dependencies file for spmvopt_ml.
# This may be replaced when dependencies are built.
