file(REMOVE_RECURSE
  "CMakeFiles/spmvopt_ml.dir/cross_validation.cpp.o"
  "CMakeFiles/spmvopt_ml.dir/cross_validation.cpp.o.d"
  "CMakeFiles/spmvopt_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/spmvopt_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/spmvopt_ml.dir/metrics.cpp.o"
  "CMakeFiles/spmvopt_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/spmvopt_ml.dir/search.cpp.o"
  "CMakeFiles/spmvopt_ml.dir/search.cpp.o.d"
  "libspmvopt_ml.a"
  "libspmvopt_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvopt_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
