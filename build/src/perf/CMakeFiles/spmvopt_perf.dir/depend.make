# Empty dependencies file for spmvopt_perf.
# This may be replaced when dependencies are built.
