
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/bounds.cpp" "src/perf/CMakeFiles/spmvopt_perf.dir/bounds.cpp.o" "gcc" "src/perf/CMakeFiles/spmvopt_perf.dir/bounds.cpp.o.d"
  "/root/repo/src/perf/measure.cpp" "src/perf/CMakeFiles/spmvopt_perf.dir/measure.cpp.o" "gcc" "src/perf/CMakeFiles/spmvopt_perf.dir/measure.cpp.o.d"
  "/root/repo/src/perf/partitioned_ml.cpp" "src/perf/CMakeFiles/spmvopt_perf.dir/partitioned_ml.cpp.o" "gcc" "src/perf/CMakeFiles/spmvopt_perf.dir/partitioned_ml.cpp.o.d"
  "/root/repo/src/perf/roofline.cpp" "src/perf/CMakeFiles/spmvopt_perf.dir/roofline.cpp.o" "gcc" "src/perf/CMakeFiles/spmvopt_perf.dir/roofline.cpp.o.d"
  "/root/repo/src/perf/stream.cpp" "src/perf/CMakeFiles/spmvopt_perf.dir/stream.cpp.o" "gcc" "src/perf/CMakeFiles/spmvopt_perf.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/spmvopt_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/spmvopt_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/spmvopt_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spmvopt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
