file(REMOVE_RECURSE
  "CMakeFiles/spmvopt_perf.dir/bounds.cpp.o"
  "CMakeFiles/spmvopt_perf.dir/bounds.cpp.o.d"
  "CMakeFiles/spmvopt_perf.dir/measure.cpp.o"
  "CMakeFiles/spmvopt_perf.dir/measure.cpp.o.d"
  "CMakeFiles/spmvopt_perf.dir/partitioned_ml.cpp.o"
  "CMakeFiles/spmvopt_perf.dir/partitioned_ml.cpp.o.d"
  "CMakeFiles/spmvopt_perf.dir/roofline.cpp.o"
  "CMakeFiles/spmvopt_perf.dir/roofline.cpp.o.d"
  "CMakeFiles/spmvopt_perf.dir/stream.cpp.o"
  "CMakeFiles/spmvopt_perf.dir/stream.cpp.o.d"
  "libspmvopt_perf.a"
  "libspmvopt_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvopt_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
