file(REMOVE_RECURSE
  "libspmvopt_perf.a"
)
