file(REMOVE_RECURSE
  "libspmvopt_support.a"
)
