file(REMOVE_RECURSE
  "CMakeFiles/spmvopt_support.dir/cpu_info.cpp.o"
  "CMakeFiles/spmvopt_support.dir/cpu_info.cpp.o.d"
  "CMakeFiles/spmvopt_support.dir/env.cpp.o"
  "CMakeFiles/spmvopt_support.dir/env.cpp.o.d"
  "CMakeFiles/spmvopt_support.dir/partition.cpp.o"
  "CMakeFiles/spmvopt_support.dir/partition.cpp.o.d"
  "CMakeFiles/spmvopt_support.dir/stats.cpp.o"
  "CMakeFiles/spmvopt_support.dir/stats.cpp.o.d"
  "CMakeFiles/spmvopt_support.dir/table.cpp.o"
  "CMakeFiles/spmvopt_support.dir/table.cpp.o.d"
  "CMakeFiles/spmvopt_support.dir/timing.cpp.o"
  "CMakeFiles/spmvopt_support.dir/timing.cpp.o.d"
  "libspmvopt_support.a"
  "libspmvopt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvopt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
