# Empty compiler generated dependencies file for spmvopt_support.
# This may be replaced when dependencies are built.
