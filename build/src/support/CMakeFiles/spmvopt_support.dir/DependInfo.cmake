
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/cpu_info.cpp" "src/support/CMakeFiles/spmvopt_support.dir/cpu_info.cpp.o" "gcc" "src/support/CMakeFiles/spmvopt_support.dir/cpu_info.cpp.o.d"
  "/root/repo/src/support/env.cpp" "src/support/CMakeFiles/spmvopt_support.dir/env.cpp.o" "gcc" "src/support/CMakeFiles/spmvopt_support.dir/env.cpp.o.d"
  "/root/repo/src/support/partition.cpp" "src/support/CMakeFiles/spmvopt_support.dir/partition.cpp.o" "gcc" "src/support/CMakeFiles/spmvopt_support.dir/partition.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/support/CMakeFiles/spmvopt_support.dir/stats.cpp.o" "gcc" "src/support/CMakeFiles/spmvopt_support.dir/stats.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/support/CMakeFiles/spmvopt_support.dir/table.cpp.o" "gcc" "src/support/CMakeFiles/spmvopt_support.dir/table.cpp.o.d"
  "/root/repo/src/support/timing.cpp" "src/support/CMakeFiles/spmvopt_support.dir/timing.cpp.o" "gcc" "src/support/CMakeFiles/spmvopt_support.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
