file(REMOVE_RECURSE
  "libspmvopt_mklcompat.a"
)
