# Empty dependencies file for spmvopt_mklcompat.
# This may be replaced when dependencies are built.
