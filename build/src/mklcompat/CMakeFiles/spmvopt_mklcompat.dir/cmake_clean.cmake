file(REMOVE_RECURSE
  "CMakeFiles/spmvopt_mklcompat.dir/inspector_executor.cpp.o"
  "CMakeFiles/spmvopt_mklcompat.dir/inspector_executor.cpp.o.d"
  "CMakeFiles/spmvopt_mklcompat.dir/ref_csr.cpp.o"
  "CMakeFiles/spmvopt_mklcompat.dir/ref_csr.cpp.o.d"
  "libspmvopt_mklcompat.a"
  "libspmvopt_mklcompat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvopt_mklcompat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
