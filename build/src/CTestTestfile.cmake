# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("sparse")
subdirs("gen")
subdirs("kernels")
subdirs("perf")
subdirs("features")
subdirs("ml")
subdirs("classify")
subdirs("optimize")
subdirs("mklcompat")
subdirs("solvers")
