file(REMOVE_RECURSE
  "CMakeFiles/spmvopt_solvers.dir/blas1.cpp.o"
  "CMakeFiles/spmvopt_solvers.dir/blas1.cpp.o.d"
  "CMakeFiles/spmvopt_solvers.dir/eigen.cpp.o"
  "CMakeFiles/spmvopt_solvers.dir/eigen.cpp.o.d"
  "CMakeFiles/spmvopt_solvers.dir/krylov.cpp.o"
  "CMakeFiles/spmvopt_solvers.dir/krylov.cpp.o.d"
  "CMakeFiles/spmvopt_solvers.dir/operator.cpp.o"
  "CMakeFiles/spmvopt_solvers.dir/operator.cpp.o.d"
  "CMakeFiles/spmvopt_solvers.dir/pagerank.cpp.o"
  "CMakeFiles/spmvopt_solvers.dir/pagerank.cpp.o.d"
  "CMakeFiles/spmvopt_solvers.dir/preconditioner.cpp.o"
  "CMakeFiles/spmvopt_solvers.dir/preconditioner.cpp.o.d"
  "CMakeFiles/spmvopt_solvers.dir/stationary.cpp.o"
  "CMakeFiles/spmvopt_solvers.dir/stationary.cpp.o.d"
  "libspmvopt_solvers.a"
  "libspmvopt_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvopt_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
