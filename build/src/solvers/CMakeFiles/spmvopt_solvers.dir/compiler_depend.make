# Empty compiler generated dependencies file for spmvopt_solvers.
# This may be replaced when dependencies are built.
