file(REMOVE_RECURSE
  "libspmvopt_solvers.a"
)
