file(REMOVE_RECURSE
  "CMakeFiles/spmvopt_classify.dir/classes.cpp.o"
  "CMakeFiles/spmvopt_classify.dir/classes.cpp.o.d"
  "CMakeFiles/spmvopt_classify.dir/feature_classifier.cpp.o"
  "CMakeFiles/spmvopt_classify.dir/feature_classifier.cpp.o.d"
  "CMakeFiles/spmvopt_classify.dir/profile_classifier.cpp.o"
  "CMakeFiles/spmvopt_classify.dir/profile_classifier.cpp.o.d"
  "libspmvopt_classify.a"
  "libspmvopt_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvopt_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
