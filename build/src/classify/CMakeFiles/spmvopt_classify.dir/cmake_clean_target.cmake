file(REMOVE_RECURSE
  "libspmvopt_classify.a"
)
