# Empty dependencies file for spmvopt_classify.
# This may be replaced when dependencies are built.
