# Empty compiler generated dependencies file for spmvopt_optimize.
# This may be replaced when dependencies are built.
