file(REMOVE_RECURSE
  "CMakeFiles/spmvopt_optimize.dir/optimized_spmv.cpp.o"
  "CMakeFiles/spmvopt_optimize.dir/optimized_spmv.cpp.o.d"
  "CMakeFiles/spmvopt_optimize.dir/optimizers.cpp.o"
  "CMakeFiles/spmvopt_optimize.dir/optimizers.cpp.o.d"
  "CMakeFiles/spmvopt_optimize.dir/plan.cpp.o"
  "CMakeFiles/spmvopt_optimize.dir/plan.cpp.o.d"
  "libspmvopt_optimize.a"
  "libspmvopt_optimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvopt_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
