file(REMOVE_RECURSE
  "libspmvopt_optimize.a"
)
