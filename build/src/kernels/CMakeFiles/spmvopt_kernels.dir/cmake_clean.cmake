file(REMOVE_RECURSE
  "CMakeFiles/spmvopt_kernels.dir/bcsr_kernels.cpp.o"
  "CMakeFiles/spmvopt_kernels.dir/bcsr_kernels.cpp.o.d"
  "CMakeFiles/spmvopt_kernels.dir/compose.cpp.o"
  "CMakeFiles/spmvopt_kernels.dir/compose.cpp.o.d"
  "CMakeFiles/spmvopt_kernels.dir/sell_kernels.cpp.o"
  "CMakeFiles/spmvopt_kernels.dir/sell_kernels.cpp.o.d"
  "CMakeFiles/spmvopt_kernels.dir/spmm.cpp.o"
  "CMakeFiles/spmvopt_kernels.dir/spmm.cpp.o.d"
  "CMakeFiles/spmvopt_kernels.dir/spmv.cpp.o"
  "CMakeFiles/spmvopt_kernels.dir/spmv.cpp.o.d"
  "libspmvopt_kernels.a"
  "libspmvopt_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvopt_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
