file(REMOVE_RECURSE
  "libspmvopt_kernels.a"
)
