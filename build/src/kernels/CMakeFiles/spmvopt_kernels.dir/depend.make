# Empty dependencies file for spmvopt_kernels.
# This may be replaced when dependencies are built.
