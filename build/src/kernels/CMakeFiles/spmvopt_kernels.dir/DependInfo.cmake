
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/bcsr_kernels.cpp" "src/kernels/CMakeFiles/spmvopt_kernels.dir/bcsr_kernels.cpp.o" "gcc" "src/kernels/CMakeFiles/spmvopt_kernels.dir/bcsr_kernels.cpp.o.d"
  "/root/repo/src/kernels/compose.cpp" "src/kernels/CMakeFiles/spmvopt_kernels.dir/compose.cpp.o" "gcc" "src/kernels/CMakeFiles/spmvopt_kernels.dir/compose.cpp.o.d"
  "/root/repo/src/kernels/sell_kernels.cpp" "src/kernels/CMakeFiles/spmvopt_kernels.dir/sell_kernels.cpp.o" "gcc" "src/kernels/CMakeFiles/spmvopt_kernels.dir/sell_kernels.cpp.o.d"
  "/root/repo/src/kernels/spmm.cpp" "src/kernels/CMakeFiles/spmvopt_kernels.dir/spmm.cpp.o" "gcc" "src/kernels/CMakeFiles/spmvopt_kernels.dir/spmm.cpp.o.d"
  "/root/repo/src/kernels/spmv.cpp" "src/kernels/CMakeFiles/spmvopt_kernels.dir/spmv.cpp.o" "gcc" "src/kernels/CMakeFiles/spmvopt_kernels.dir/spmv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/spmvopt_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spmvopt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
