file(REMOVE_RECURSE
  "CMakeFiles/spmvopt_gen.dir/generators.cpp.o"
  "CMakeFiles/spmvopt_gen.dir/generators.cpp.o.d"
  "CMakeFiles/spmvopt_gen.dir/suite.cpp.o"
  "CMakeFiles/spmvopt_gen.dir/suite.cpp.o.d"
  "libspmvopt_gen.a"
  "libspmvopt_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvopt_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
