# Empty compiler generated dependencies file for spmvopt_gen.
# This may be replaced when dependencies are built.
