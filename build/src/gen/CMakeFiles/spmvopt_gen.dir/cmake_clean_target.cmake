file(REMOVE_RECURSE
  "libspmvopt_gen.a"
)
