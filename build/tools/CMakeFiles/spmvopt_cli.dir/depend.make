# Empty dependencies file for spmvopt_cli.
# This may be replaced when dependencies are built.
