file(REMOVE_RECURSE
  "CMakeFiles/spmvopt_cli.dir/spmvopt_cli.cpp.o"
  "CMakeFiles/spmvopt_cli.dir/spmvopt_cli.cpp.o.d"
  "spmvopt_cli"
  "spmvopt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvopt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
