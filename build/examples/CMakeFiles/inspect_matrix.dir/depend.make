# Empty dependencies file for inspect_matrix.
# This may be replaced when dependencies are built.
