file(REMOVE_RECURSE
  "CMakeFiles/inspect_matrix.dir/inspect_matrix.cpp.o"
  "CMakeFiles/inspect_matrix.dir/inspect_matrix.cpp.o.d"
  "inspect_matrix"
  "inspect_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
