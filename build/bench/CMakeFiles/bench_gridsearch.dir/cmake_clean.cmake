file(REMOVE_RECURSE
  "CMakeFiles/bench_gridsearch.dir/bench_gridsearch.cpp.o"
  "CMakeFiles/bench_gridsearch.dir/bench_gridsearch.cpp.o.d"
  "bench_gridsearch"
  "bench_gridsearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gridsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
