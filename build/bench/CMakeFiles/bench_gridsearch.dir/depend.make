# Empty dependencies file for bench_gridsearch.
# This may be replaced when dependencies are built.
