# Empty compiler generated dependencies file for test_sym_csr.
# This may be replaced when dependencies are built.
