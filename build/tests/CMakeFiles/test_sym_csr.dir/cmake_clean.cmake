file(REMOVE_RECURSE
  "CMakeFiles/test_sym_csr.dir/test_sym_csr.cpp.o"
  "CMakeFiles/test_sym_csr.dir/test_sym_csr.cpp.o.d"
  "test_sym_csr"
  "test_sym_csr.pdb"
  "test_sym_csr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sym_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
