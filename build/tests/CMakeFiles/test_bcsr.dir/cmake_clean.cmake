file(REMOVE_RECURSE
  "CMakeFiles/test_bcsr.dir/test_bcsr.cpp.o"
  "CMakeFiles/test_bcsr.dir/test_bcsr.cpp.o.d"
  "test_bcsr"
  "test_bcsr.pdb"
  "test_bcsr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bcsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
