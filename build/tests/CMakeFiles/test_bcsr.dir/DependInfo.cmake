
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bcsr.cpp" "tests/CMakeFiles/test_bcsr.dir/test_bcsr.cpp.o" "gcc" "tests/CMakeFiles/test_bcsr.dir/test_bcsr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mklcompat/CMakeFiles/spmvopt_mklcompat.dir/DependInfo.cmake"
  "/root/repo/build/src/solvers/CMakeFiles/spmvopt_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/optimize/CMakeFiles/spmvopt_optimize.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/spmvopt_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/spmvopt_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/spmvopt_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/spmvopt_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/spmvopt_features.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/spmvopt_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/spmvopt_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spmvopt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
