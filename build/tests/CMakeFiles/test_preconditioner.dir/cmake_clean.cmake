file(REMOVE_RECURSE
  "CMakeFiles/test_preconditioner.dir/test_preconditioner.cpp.o"
  "CMakeFiles/test_preconditioner.dir/test_preconditioner.cpp.o.d"
  "test_preconditioner"
  "test_preconditioner.pdb"
  "test_preconditioner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preconditioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
