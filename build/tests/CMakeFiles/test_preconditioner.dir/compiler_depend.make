# Empty compiler generated dependencies file for test_preconditioner.
# This may be replaced when dependencies are built.
