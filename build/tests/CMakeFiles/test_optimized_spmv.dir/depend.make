# Empty dependencies file for test_optimized_spmv.
# This may be replaced when dependencies are built.
