file(REMOVE_RECURSE
  "CMakeFiles/test_optimized_spmv.dir/test_optimized_spmv.cpp.o"
  "CMakeFiles/test_optimized_spmv.dir/test_optimized_spmv.cpp.o.d"
  "test_optimized_spmv"
  "test_optimized_spmv.pdb"
  "test_optimized_spmv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimized_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
