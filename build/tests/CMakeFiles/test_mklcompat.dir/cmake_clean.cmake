file(REMOVE_RECURSE
  "CMakeFiles/test_mklcompat.dir/test_mklcompat.cpp.o"
  "CMakeFiles/test_mklcompat.dir/test_mklcompat.cpp.o.d"
  "test_mklcompat"
  "test_mklcompat.pdb"
  "test_mklcompat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mklcompat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
