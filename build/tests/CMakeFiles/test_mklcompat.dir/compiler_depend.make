# Empty compiler generated dependencies file for test_mklcompat.
# This may be replaced when dependencies are built.
