# Empty compiler generated dependencies file for test_split_csr.
# This may be replaced when dependencies are built.
