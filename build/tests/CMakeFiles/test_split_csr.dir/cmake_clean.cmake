file(REMOVE_RECURSE
  "CMakeFiles/test_split_csr.dir/test_split_csr.cpp.o"
  "CMakeFiles/test_split_csr.dir/test_split_csr.cpp.o.d"
  "test_split_csr"
  "test_split_csr.pdb"
  "test_split_csr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_split_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
