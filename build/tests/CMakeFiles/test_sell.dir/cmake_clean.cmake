file(REMOVE_RECURSE
  "CMakeFiles/test_sell.dir/test_sell.cpp.o"
  "CMakeFiles/test_sell.dir/test_sell.cpp.o.d"
  "test_sell"
  "test_sell.pdb"
  "test_sell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
