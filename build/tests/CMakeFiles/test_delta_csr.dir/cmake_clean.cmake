file(REMOVE_RECURSE
  "CMakeFiles/test_delta_csr.dir/test_delta_csr.cpp.o"
  "CMakeFiles/test_delta_csr.dir/test_delta_csr.cpp.o.d"
  "test_delta_csr"
  "test_delta_csr.pdb"
  "test_delta_csr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delta_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
