# Empty dependencies file for test_delta_csr.
# This may be replaced when dependencies are built.
