file(REMOVE_RECURSE
  "CMakeFiles/test_partitioned_ml.dir/test_partitioned_ml.cpp.o"
  "CMakeFiles/test_partitioned_ml.dir/test_partitioned_ml.cpp.o.d"
  "test_partitioned_ml"
  "test_partitioned_ml.pdb"
  "test_partitioned_ml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partitioned_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
