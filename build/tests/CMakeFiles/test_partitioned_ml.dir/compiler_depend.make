# Empty compiler generated dependencies file for test_partitioned_ml.
# This may be replaced when dependencies are built.
