// spmvopt command-line tool.
//
//   spmvopt_cli inspect  <matrix>                 features + bounds + classes
//   spmvopt_cli convert  <in> <out>               .mtx <-> .csrbin by extension
//   spmvopt_cli generate <family> <out> [N]       write a synthetic matrix
//   spmvopt_cli train    <model-out> [pool-size]  train + save feature model
//   spmvopt_cli optimize <matrix> [model]         pick a plan, report speedup
//   spmvopt_cli bench    <matrix>                 measure every plan (oracle view)
//   spmvopt_cli bench    --suite smoke|full [--kind kernels|plans]
//                        [--threads N[,N...]] [--out FILE]
//                                                 orchestrated sweep -> JSON
//   spmvopt_cli compare  <old.json> <new.json> [--threshold F] [--advisory]
//                                                 statistical regression gate
//   spmvopt_cli client   <op> [args] [--socket PATH]
//                                                 talk to a running spmvoptd:
//                                                 ping | stats | shutdown |
//                                                 submit <matrix> |
//                                                 run <matrix>
//
// <matrix> is a path ending in .mtx or .csrbin, or suite:NAME for a matrix
// of the paper's evaluation suite (e.g. suite:poisson3Db).
//
// Exit codes follow BSD sysexits (DESIGN.md §6): 0 success, 64 usage error,
// 65 malformed data, 66 I/O failure, 70 internal error, 71 resource limit.
// `compare` additionally exits 1 when it finds a statistically supported
// regression (unless --advisory), so CI can gate on it directly.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "spmvopt/spmvopt.hpp"

// Internal (non-umbrella) helpers: raw feature extraction for `inspect`,
// error taxonomy for exit codes, table/timing utilities for output.
#include "features/features.hpp"
#include "robust/error.hpp"
#include "support/cpu_info.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

namespace {

using namespace spmvopt;

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// A malformed command line (unknown family, bad spec shape) — exits 64,
/// unlike data faults which carry an ErrorCategory.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

CsrMatrix load_matrix(const std::string& spec) {
  if (spec.rfind("suite:", 0) == 0) {
    const std::string name = spec.substr(6);
    for (const auto& e : gen::evaluation_suite(0.5))
      if (e.name == name) return e.make();
    throw UsageError("unknown suite matrix '" + name +
                     "' (see bench_fig1 output for names)");
  }
  if (ends_with(spec, ".csrbin"))
    return read_csr_binary_file_checked(spec).value_or_throw();
  if (ends_with(spec, ".mtx")) {
    auto coo = read_matrix_market_file_checked(spec).value_or_throw();
    return CsrMatrix::from_coo_checked(coo).value_or_throw();
  }
  throw UsageError("matrix spec must be *.mtx, *.csrbin or suite:NAME");
}

void save_matrix(const std::string& path, const CsrMatrix& a) {
  if (ends_with(path, ".csrbin")) {
    write_csr_binary_file(path, a);
  } else if (ends_with(path, ".mtx")) {
    write_matrix_market_file(path, a);
  } else {
    throw UsageError("output must end in .mtx or .csrbin");
  }
}

perf::MeasureConfig cli_measure() {
  perf::MeasureConfig m;
  m.iterations = 24;
  m.runs = 3;
  m.warmup = 1;
  return m;
}

int cmd_inspect(const std::string& spec) {
  const CsrMatrix a = load_matrix(spec);
  std::printf("%s: %d x %d, %d nnz, %.1f nnz/row, %.2f MiB CSR\n\n",
              spec.c_str(), a.nrows(), a.ncols(), a.nnz(),
              static_cast<double>(a.nnz()) / a.nrows(),
              static_cast<double>(a.format_bytes()) / (1 << 20));
  const auto f = features::extract_features(a);
  std::printf("features (Table I):\n");
  for (int i = 0; i < features::kFeatureCount; ++i) {
    const auto id = static_cast<features::FeatureId>(i);
    std::printf("  %-15s %.6g\n", features::feature_name(id), f[id]);
  }
  perf::BoundsConfig cfg;
  cfg.measure = cli_measure();
  const auto r = classify::classify_profile(a, {}, cfg);
  std::printf("\nbounds (Gflop/s): CSR %.2f | ML %.2f | IMB %.2f | CMP %.2f |"
              " MB %.2f | peak %.2f\n",
              r.bounds.p_csr, r.bounds.p_ml, r.bounds.p_imb, r.bounds.p_cmp,
              r.bounds.p_mb, r.bounds.p_peak);
  std::printf("classes: %s   plan: %s\n", r.classes.to_string().c_str(),
              optimize::plan_for_classes(r.classes, a).to_string().c_str());
  return 0;
}

int cmd_convert(const std::string& in, const std::string& out) {
  Timer t;
  const CsrMatrix a = load_matrix(in);
  const double load_sec = t.elapsed_sec();
  t.reset();
  save_matrix(out, a);
  std::printf("%s (%d x %d, %d nnz) -> %s  [load %.2fs, save %.2fs]\n",
              in.c_str(), a.nrows(), a.ncols(), a.nnz(), out.c_str(), load_sec,
              t.elapsed_sec());
  return 0;
}

int cmd_generate(const std::string& family, const std::string& out, index_t n) {
  CsrMatrix a;
  if (family == "poisson2d") a = gen::stencil_2d_5pt(n, n);
  else if (family == "poisson3d") a = gen::stencil_3d_7pt(n, n, n);
  else if (family == "dense") a = gen::dense(n);
  else if (family == "banded") a = gen::banded(n * n, 150, 12);
  else if (family == "diagonal") a = gen::diagonal(n * n);
  else if (family == "random") a = gen::random_uniform(n * n, 8);
  else if (family == "powerlaw") a = gen::power_law(n * n, 12, 1.8);
  else if (family == "fewdense") a = gen::few_dense_rows(n * n, 3, 8, n * n / 2);
  else
    throw UsageError(
        "family must be poisson2d|poisson3d|dense|banded|diagonal|random|"
        "powerlaw|fewdense");
  save_matrix(out, a);
  std::printf("generated %s (%d x %d, %d nnz) -> %s\n", family.c_str(),
              a.nrows(), a.ncols(), a.nnz(), out.c_str());
  return 0;
}

int cmd_train(const std::string& model_out, int pool_size) {
  std::printf("labeling %d pool matrices with the profile-guided classifier...\n",
              pool_size);
  std::vector<CsrMatrix> pool;
  for (const auto& e : gen::training_pool(pool_size)) pool.push_back(e.make());
  perf::BoundsConfig cfg;
  cfg.measure.iterations = 12;
  cfg.measure.runs = 2;
  cfg.measure.warmup = 1;
  Timer t;
  const auto trained = classify::train_from_pool(pool, features::onnz_feature_set(),
                                                 {}, cfg);
  std::ofstream out(model_out);
  if (!out)
    throw SpmvException(
        Error(ErrorCategory::Io, "cannot open '" + model_out + "'"));
  trained.classifier.save(out);
  std::printf("trained in %.1fs; tree: %zu nodes, depth %d -> %s\n",
              t.elapsed_sec(), trained.classifier.tree().node_count(),
              trained.classifier.tree().depth(), model_out.c_str());
  return 0;
}

int cmd_optimize(const std::string& spec, const std::string& model_path) {
  const CsrMatrix a = load_matrix(spec);
  (void)perf::bandwidth_profile();  // one-time host probe, not charged
  optimize::OptimizerConfig cfg;
  cfg.measure = cli_measure();

  optimize::OptimizeOutcome out;
  if (model_path.empty()) {
    out = optimize::optimize_profile(a, cfg);
    std::printf("profile-guided: ");
  } else {
    std::ifstream in(model_path);
    if (!in)
      throw SpmvException(
          Error(ErrorCategory::Io, "cannot open model '" + model_path + "'"));
    const auto clf = classify::FeatureClassifier::load(in);
    out = optimize::optimize_feature(a, clf, cfg);
    std::printf("feature-guided: ");
  }
  std::printf("classes %s, plan %s, t_pre %.1f ms\n",
              out.classes.to_string().c_str(), out.plan.to_string().c_str(),
              out.preprocess_seconds * 1e3);

  const auto baseline = optimize::OptimizedSpmv::create(a, optimize::Plan{});
  const double base = optimize::measure_spmv_gflops(baseline, a, cfg.measure);
  const double opt = optimize::measure_spmv_gflops(out.spmv, a, cfg.measure);
  std::printf("baseline %.2f Gflop/s -> optimized %.2f Gflop/s (%.2fx)\n", base,
              opt, opt / base);
  return 0;
}

struct BenchMatrixOptions {
  std::string kernel;  ///< registry name; empty means the plan sweep
  bool use_engine = false;
  PinPolicy pin = PinPolicy::None;
};

int cmd_bench(const std::string& spec, const BenchMatrixOptions& opt) {
  const CsrMatrix a = load_matrix(spec);
  const auto m = cli_measure();

  if (!opt.kernel.empty()) {
    // One named kernel from the shared registry; require_kernel's message is
    // the canonical unknown-name error (it lists the sorted valid set).
    const kernels::KernelVariant* v = nullptr;
    try {
      v = &kernels::require_kernel(opt.kernel);
    } catch (const std::invalid_argument& e) {
      throw UsageError(e.what());
    }
    const kernels::BoundSpmv bound = v->bind(a, default_threads());
    if (!bound)
      throw SpmvException(Error(
          ErrorCategory::Format,
          "matrix does not satisfy the requirements of kernel '" +
              opt.kernel + "'"));
    const double gflops = perf::measure_gflops(
        a, [&bound](const value_t* x, value_t* y) { bound(x, y); }, m);
    std::printf("%s: kernel %s, %.2f Gflop/s\n", spec.c_str(),
                opt.kernel.c_str(), gflops);
    return 0;
  }

  std::unique_ptr<engine::ExecutionEngine> eng;
  if (opt.use_engine)
    eng = std::make_unique<engine::ExecutionEngine>(
        engine::EngineConfig{.pin = opt.pin});

  struct Row {
    std::string plan;
    double gflops;
    double pre_ms;
  };
  std::vector<Row> rows;
  for (const auto& plan : optimize::enumerate_plans(a)) {
    const auto spmv = eng ? optimize::OptimizedSpmv::create(a, plan, *eng)
                          : optimize::OptimizedSpmv::create(a, plan);
    rows.push_back({spmv.plan().to_string(),
                    optimize::measure_spmv_gflops(spmv, a, m),
                    spmv.preprocessing_seconds() * 1e3});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& x, const Row& y) { return x.gflops > y.gflops; });
  Table t({"plan", "gflops", "prep_ms"});
  for (const Row& r : rows)
    t.add_row({r.plan, Table::num(r.gflops, 2), Table::num(r.pre_ms, 2)});
  t.print(std::cout);
  if (eng)
    std::printf("engine: %d thread(s), pin=%s, %llu dispatches\n",
                eng->nthreads(), pin_policy_name(eng->pin_policy()),
                static_cast<unsigned long long>(eng->dispatch_count()));
  return 0;
}

/// Parse "1,2,8" into thread counts; rejects junk with a UsageError.
std::vector<int> parse_thread_list(const std::string& spec) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string tok = spec.substr(pos, comma - pos);
    std::size_t used = 0;
    int n = 0;
    try {
      n = std::stoi(tok, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != tok.size() || n <= 0)
      throw UsageError("--threads expects positive integers, got '" + tok +
                       "'");
    out.push_back(n);
    pos = comma + 1;
  }
  return out;
}

int cmd_bench_suite(const std::vector<std::string>& args) {
  report::RunnerConfig cfg;
  cfg.measure = cli_measure();
  std::string out_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&](const char* flag) -> const std::string& {
      if (i + 1 >= args.size())
        throw UsageError(std::string(flag) + " requires a value");
      return args[++i];
    };
    if (a == "--suite") cfg.suite = next("--suite");
    else if (a == "--kind") cfg.kind = next("--kind");
    else if (a == "--threads") cfg.thread_counts = parse_thread_list(next("--threads"));
    else if (a == "--out") out_path = next("--out");
    else if (a == "--engine") cfg.use_engine = true;
    else if (a == "--nrhs") {
      const std::string& tok = next("--nrhs");
      try {
        cfg.nrhs = std::stoi(tok);
      } catch (const std::exception&) {
        throw UsageError("--nrhs expects a positive integer");
      }
      if (cfg.nrhs < 1) throw UsageError("--nrhs expects a positive integer");
    }
    else if (a == "--no-fuse") cfg.fuse_many = false;
    else if (a.rfind("--pin=", 0) == 0) {
      const auto p = parse_pin_policy(a.substr(6));
      if (!p) throw UsageError("--pin expects compact|scatter|none");
      cfg.pin = *p;
    }
    else
      throw UsageError("unknown bench flag '" + a + "'");
  }
  cfg.progress = [](const std::string& line) {
    std::fprintf(stderr, "%s\n", line.c_str());
  };

  // The runner validates suite/kind; surface its complaint as a usage error
  // (exit 64), not an internal fault.
  std::unique_ptr<report::BenchRunner> runner;
  try {
    runner = std::make_unique<report::BenchRunner>(cfg);
  } catch (const std::invalid_argument& e) {
    throw UsageError(e.what());
  }
  const report::BenchDocument doc = runner->run();

  if (out_path.empty()) {
    std::fputs(report::document_to_json(doc).dump().c_str(), stdout);
  } else {
    (void)report::save_bench_document(out_path, doc).value_or_throw();
    std::fprintf(stderr, "wrote %zu cells -> %s\n", doc.results.size(),
                 out_path.c_str());
  }
  return 0;
}

int cmd_compare(const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  report::CompareConfig cc;
  bool advisory = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--advisory") {
      advisory = true;
    } else if (a == "--threshold") {
      if (i + 1 >= args.size()) throw UsageError("--threshold requires a value");
      try {
        cc.rel_threshold = std::stod(args[++i]);
      } catch (const std::exception&) {
        throw UsageError("--threshold expects a number");
      }
      if (cc.rel_threshold < 0.0)
        throw UsageError("--threshold must be >= 0");
    } else if (!a.empty() && a[0] == '-') {
      throw UsageError("unknown compare flag '" + a + "'");
    } else {
      paths.push_back(a);
    }
  }
  if (paths.size() != 2)
    throw UsageError("compare needs exactly two documents: <old> <new>");

  const auto old_doc = report::load_bench_document(paths[0]).value_or_throw();
  const auto new_doc = report::load_bench_document(paths[1]).value_or_throw();
  const auto rep =
      report::compare_documents(old_doc, new_doc, cc).value_or_throw();

  if (!rep.comparable_environment)
    std::fprintf(stderr,
                 "warning: documents were measured under different "
                 "environments; deltas are advisory at best\n");
  for (const auto& cell : rep.cells) {
    if (cell.verdict == report::Verdict::Unchanged) continue;
    std::printf("%-10s %-28s %-24s x%-3d  %7.3f -> %7.3f Gflop/s (%+.1f%%)\n",
                report::verdict_name(cell.verdict), cell.matrix.c_str(),
                cell.variant.c_str(), cell.threads, cell.old_gflops,
                cell.new_gflops, cell.rel_change * 100.0);
  }
  std::printf("%s\n", rep.summary().c_str());
  if (rep.has_regressions()) {
    if (advisory) {
      std::printf("advisory mode: regressions reported, exit 0\n");
      return 0;
    }
    return report::kExitRegression;
  }
  return 0;
}

/// `spmvopt_cli client <op> ...` — drive a running spmvoptd over its socket.
/// Server/transport failures arrive as typed Errors and exit with the same
/// sysexits codes the rest of the CLI uses.
int cmd_client(const std::vector<std::string>& args) {
  std::string socket_path = "/tmp/spmvoptd.sock";
  server::CallOptions opts;
  std::vector<std::string> pos;
  const auto parse_u64 = [](const std::string& flag,
                            const std::string& v) -> std::uint64_t {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0')
      throw UsageError(flag + " expects a non-negative integer, got '" + v +
                       "'");
    return n;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--socket") {
      if (i + 1 >= args.size()) throw UsageError("--socket requires a path");
      socket_path = args[++i];
    } else if (args[i] == "--deadline-ms") {
      if (i + 1 >= args.size())
        throw UsageError("--deadline-ms requires a value");
      opts.deadline_ms =
          static_cast<std::uint32_t>(parse_u64("--deadline-ms", args[++i]));
    } else if (args[i] == "--request-id") {
      if (i + 1 >= args.size())
        throw UsageError("--request-id requires a value");
      opts.request_id = parse_u64("--request-id", args[++i]);
    } else if (!args[i].empty() && args[i][0] == '-') {
      throw UsageError("unknown client flag '" + args[i] + "'");
    } else {
      pos.push_back(args[i]);
    }
  }
  if (pos.empty())
    throw UsageError(
        "client needs an op: ping|stats|shutdown|submit|run|cancel");
  const std::string& op = pos[0];

  auto client = server::Client::connect(socket_path);
  if (!client.ok()) throw SpmvException(std::move(client).error());
  server::Client& c = client.value();

  if (op == "ping") {
    if (Status s = c.ping(); !s.ok())
      throw SpmvException(std::move(s).error());
    std::printf("pong (protocol v%u) from %s\n", server::kProtocolVersion,
                socket_path.c_str());
    return 0;
  }
  if (op == "stats") {
    auto json = c.stats_json();
    if (!json.ok()) throw SpmvException(std::move(json).error());
    std::printf("%s\n", json.value().c_str());
    return 0;
  }
  if (op == "shutdown") {
    if (Status s = c.shutdown_server(); !s.ok())
      throw SpmvException(std::move(s).error());
    std::printf("server at %s is shutting down\n", socket_path.c_str());
    return 0;
  }
  if (op == "cancel" && pos.size() == 2) {
    const std::uint64_t target = parse_u64("cancel", pos[1]);
    auto outcome = c.cancel(target);
    if (!outcome.ok()) throw SpmvException(std::move(outcome).error());
    const char* what =
        outcome.value() == server::CancelReply::Outcome::Running  ? "running"
        : outcome.value() == server::CancelReply::Outcome::Queued ? "queued"
                                                                  : "unknown";
    std::printf("cancel %llu: %s\n", static_cast<unsigned long long>(target),
                what);
    return 0;
  }
  if ((op == "submit" || op == "run") && pos.size() == 2) {
    const CsrMatrix a = load_matrix(pos[1]);
    Timer t;
    auto sub = c.submit(a, opts);
    if (!sub.ok()) throw SpmvException(std::move(sub).error());
    const double submit_sec = t.elapsed_sec();
    std::printf("submit %s: fingerprint %s, cache %s, plan [%s]\n"
                "  server prep %.1f ms, round trip %.1f ms\n",
                pos[1].c_str(), sub.value().fp.key().c_str(),
                server::cache_state_name(sub.value().state),
                sub.value().plan.c_str(), sub.value().pre_seconds * 1e3,
                submit_sec * 1e3);
    if (op == "submit") return 0;

    const std::vector<value_t> x(static_cast<std::size_t>(a.ncols()), 1.0);
    t.reset();
    auto y = c.run(sub.value().fp, x, opts);
    if (!y.ok()) throw SpmvException(std::move(y).error());
    double norm = 0.0;
    for (const value_t v : y.value()) norm += v * v;
    std::printf("run: y = A*ones, ||y||_2 = %.6g  [round trip %.1f ms]\n",
                std::sqrt(norm), t.elapsed_sec() * 1e3);
    return 0;
  }
  throw UsageError("client op must be ping|stats|shutdown|submit <matrix>|"
                   "run <matrix>|cancel <request-id>");
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  spmvopt_cli inspect  <matrix>\n"
               "  spmvopt_cli convert  <in> <out>\n"
               "  spmvopt_cli generate <family> <out> [n]\n"
               "  spmvopt_cli train    <model-out> [pool-size]\n"
               "  spmvopt_cli optimize <matrix> [model]\n"
               "  spmvopt_cli bench    <matrix> [--kernel NAME] [--engine]\n"
               "                       [--pin=compact|scatter]\n"
               "  spmvopt_cli bench    --suite smoke|full [--kind kernels|plans]\n"
               "                       [--threads N[,N...]] [--out FILE]\n"
               "                       [--engine] [--pin=compact|scatter]\n"
               "                       [--nrhs N] [--no-fuse]\n"
               "  spmvopt_cli compare  <old.json> <new.json> [--threshold F]\n"
               "                       [--advisory]\n"
               "  spmvopt_cli client   ping|stats|shutdown [--socket PATH]\n"
               "  spmvopt_cli client   submit|run <matrix> [--socket PATH]\n"
               "                       [--deadline-ms N] [--request-id N]\n"
               "  spmvopt_cli client   cancel <request-id> [--socket PATH]\n"
               "<matrix>: *.mtx | *.csrbin | suite:NAME\n");
  return kExitUsage;
}

/// Print the message and every context frame ("  while reading '...'"), and
/// map the category to its sysexits code.
int report_error(const Error& e) {
  std::fprintf(stderr, "error (%s): %s\n", error_category_name(e.category()),
               e.message().c_str());
  for (const std::string& frame : e.context())
    std::fprintf(stderr, "  %s\n", frame.c_str());
  return exit_code_for(e.category());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "inspect" && argc == 3) return cmd_inspect(argv[2]);
    if (cmd == "convert" && argc == 4) return cmd_convert(argv[2], argv[3]);
    if (cmd == "generate" && (argc == 4 || argc == 5))
      return cmd_generate(argv[2], argv[3],
                          argc == 5 ? std::atoi(argv[4]) : 64);
    if (cmd == "train" && (argc == 3 || argc == 4))
      return cmd_train(argv[2], argc == 4 ? std::atoi(argv[3]) : 120);
    if (cmd == "optimize" && (argc == 3 || argc == 4))
      return cmd_optimize(argv[2], argc == 4 ? argv[3] : "");
    if (cmd == "bench" && argc >= 3) {
      // `bench <matrix>` keeps the historical oracle view; flags select the
      // orchestrated suite sweep.
      if (argv[2][0] == '-')
        return cmd_bench_suite({argv + 2, argv + argc});
      BenchMatrixOptions opt;
      for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--kernel") {
          if (i + 1 >= argc) throw UsageError("--kernel requires a name");
          opt.kernel = argv[++i];
        } else if (a == "--engine") {
          opt.use_engine = true;
        } else if (a.rfind("--pin=", 0) == 0) {
          const auto p = parse_pin_policy(a.substr(6));
          if (!p) throw UsageError("--pin expects compact|scatter|none");
          opt.pin = *p;
        } else {
          throw UsageError("unknown bench flag '" + a + "'");
        }
      }
      return cmd_bench(argv[2], opt);
    }
    if (cmd == "compare" && argc >= 4)
      return cmd_compare({argv + 2, argv + argc});
    if (cmd == "client" && argc >= 3)
      return cmd_client({argv + 2, argv + argc});
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitUsage;
  } catch (const SpmvException& e) {
    return report_error(e.error());
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "error (resource): out of memory\n");
    return exit_code_for(ErrorCategory::Resource);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error (internal): %s\n", e.what());
    return exit_code_for(ErrorCategory::Internal);
  }
  return usage();
}
