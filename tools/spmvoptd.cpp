// spmvoptd — the long-running multi-tenant SpMV server (DESIGN.md §9).
//
//   spmvoptd [--socket PATH] [--cache-dir DIR] [--max-bytes N]
//            [--threads N] [--executors N] [--pin=compact|scatter]
//            [--max-inflight N] [--shed N] [--drain-ms N] [--watchdog-ms N]
//
// Binds a Unix-domain socket, keeps a persistent ExecutionEngine warm, and
// serves submit/run/solve requests from any number of clients, amortizing
// the per-matrix optimization cost (feature extraction, classification,
// format conversion) across all of them through the fingerprint-keyed plan
// cache.
//
// Shutdown paths (DESIGN.md §10): SIGTERM drains gracefully — the listener
// closes, new frames answer a retryable "draining" error, in-flight jobs get
// --drain-ms to finish against their own deadlines (then their tokens are
// cancelled and flushed as typed replies), and the resident cache is flushed
// to the persistent tier.  SIGINT and a client Shutdown request stop
// immediately.
//
// Exit codes follow BSD sysexits: 0 success, 64 usage, 66 cannot bind.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "robust/error.hpp"
#include "server/server.hpp"
#include "support/topology.hpp"

namespace {

using namespace spmvopt;

int usage() {
  std::fprintf(
      stderr,
      "usage: spmvoptd [--socket PATH]     (default /tmp/spmvoptd.sock)\n"
      "                [--cache-dir DIR]   persistent matrix+plan tier\n"
      "                [--max-bytes N]     resident cache budget (bytes)\n"
      "                [--threads N]       compute team size (default: cores)\n"
      "                [--executors N]     concurrent request executors; > 1\n"
      "                                    shares one work-stealing pool\n"
      "                                    (default 1: serialized mailbox)\n"
      "                [--pin=compact|scatter]  worker affinity\n"
      "                [--max-inflight N]  reject jobs beyond this (def 64)\n"
      "                [--shed N]          shed submits beyond this (def 32)\n"
      "                [--drain-ms N]      SIGTERM grace for in-flight jobs\n"
      "                                    (default 5000)\n"
      "                [--watchdog-ms N]   stuck-job sweep interval (def 50;\n"
      "                                    0 disables the watchdog)\n");
  return kExitUsage;
}

/// Parse a positive integer flag value; exits 64 on junk.
long long parse_positive(const char* flag, const std::string& value) {
  char* end = nullptr;
  const long long n = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || n <= 0) {
    std::fprintf(stderr, "spmvoptd: %s expects a positive integer, got '%s'\n",
                 flag, value.c_str());
    std::exit(kExitUsage);
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/spmvoptd.sock";
  server::ServerConfig cfg;
  long long drain_ms = 5000;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "spmvoptd: %s requires a value\n", flag);
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (a == "--socket") {
      socket_path = next("--socket");
    } else if (a == "--cache-dir") {
      cfg.cache.persist_dir = next("--cache-dir");
    } else if (a == "--max-bytes") {
      cfg.cache.max_resident_bytes =
          static_cast<std::size_t>(parse_positive("--max-bytes",
                                                  next("--max-bytes")));
    } else if (a == "--threads") {
      cfg.engine_threads =
          static_cast<int>(parse_positive("--threads", next("--threads")));
    } else if (a == "--executors") {
      cfg.executors =
          static_cast<int>(parse_positive("--executors", next("--executors")));
    } else if (a.rfind("--pin=", 0) == 0) {
      const auto p = parse_pin_policy(a.substr(6));
      if (!p) {
        std::fprintf(stderr, "spmvoptd: --pin expects compact|scatter|none\n");
        return kExitUsage;
      }
      cfg.pin = *p;
    } else if (a == "--max-inflight") {
      cfg.max_in_flight =
          static_cast<int>(parse_positive("--max-inflight",
                                          next("--max-inflight")));
    } else if (a == "--shed") {
      cfg.shed_in_flight =
          static_cast<int>(parse_positive("--shed", next("--shed")));
    } else if (a == "--drain-ms") {
      drain_ms = parse_positive("--drain-ms", next("--drain-ms"));
    } else if (a == "--watchdog-ms") {
      const std::string v = next("--watchdog-ms");
      char* end = nullptr;
      const long long n = std::strtoll(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0' || n < 0) {
        std::fprintf(stderr,
                     "spmvoptd: --watchdog-ms expects a non-negative "
                     "integer, got '%s'\n",
                     v.c_str());
        return kExitUsage;
      }
      cfg.watchdog_poll_ms = static_cast<int>(n);
    } else if (a == "--help" || a == "-h") {
      (void)usage();
      return 0;
    } else {
      std::fprintf(stderr, "spmvoptd: unknown flag '%s'\n", a.c_str());
      return usage();
    }
  }

  // Block SIGINT/SIGTERM in every thread (children inherit the mask), then
  // sigwait on a dedicated thread: signal-safe shutdown without handlers.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  server::SpmvServer core(cfg);
  server::SocketServer sock(core, socket_path);
  if (Status s = sock.start(); !s.ok()) {
    std::fprintf(stderr, "spmvoptd: %s\n",
                 std::move(s).error().to_string().c_str());
    return exit_code_for(ErrorCategory::Io);
  }
  std::fprintf(stderr,
               "spmvoptd: listening on %s (%d compute threads, %d executors, "
               "%s cache, %d max in-flight)\n",
               socket_path.c_str(), core.stats().engine_threads,
               cfg.executors > 1 ? cfg.executors : 1,
               cfg.cache.persist_dir.empty() ? "memory-only"
                                             : cfg.cache.persist_dir.c_str(),
               cfg.max_in_flight);

  std::atomic<bool> quitting{false};
  std::thread signal_thread([&sigs, &sock, &quitting, drain_ms] {
    int sig = 0;
    const bool caught = sigwait(&sigs, &sig) == 0 && !quitting.load();
    if (caught && sig == SIGTERM) {
      // Graceful drain: finish in-flight work against its deadlines, flush
      // the persistent cache tier, then stop.
      std::fprintf(stderr,
                   "spmvoptd: caught SIGTERM, draining (%lld ms grace)\n",
                   drain_ms);
      sock.drain(static_cast<double>(drain_ms) / 1000.0);
      return;
    }
    if (caught)
      std::fprintf(stderr, "spmvoptd: caught signal %d, shutting down\n", sig);
    sock.stop();
  });

  sock.wait();
  sock.stop();
  // Unblock the signal thread if shutdown came from a client request.
  quitting.store(true);
  pthread_kill(signal_thread.native_handle(), SIGTERM);
  signal_thread.join();

  const server::ServerStats st = core.stats();
  std::fprintf(stderr,
               "spmvoptd: served %llu requests (%llu errors, %llu rejected); "
               "cache hot/warm/persist/miss = %llu/%llu/%llu/%llu\n",
               static_cast<unsigned long long>(st.requests),
               static_cast<unsigned long long>(st.errors),
               static_cast<unsigned long long>(st.rejected_overload),
               static_cast<unsigned long long>(st.cache.hot_hits),
               static_cast<unsigned long long>(st.cache.warm_hits),
               static_cast<unsigned long long>(st.cache.persist_hits),
               static_cast<unsigned long long>(st.cache.misses));
  return 0;
}
