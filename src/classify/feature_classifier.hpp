// Feature-guided classifier (§III-D).
//
// A decision tree over cheaply-computed structural features (Table I),
// trained offline on a pool of matrices labeled by the profile-guided
// classifier (§III-D3), queried online with on-the-fly feature extraction.
// Online cost: one Θ(N)/Θ(NNZ) feature pass plus an O(log N_samples) tree
// walk — the most lightweight optimizer of Table V.
#pragma once

#include <iosfwd>
#include <vector>

#include "classify/classes.hpp"
#include "classify/profile_classifier.hpp"
#include "features/features.hpp"
#include "ml/decision_tree.hpp"

namespace spmvopt::classify {

class FeatureClassifier {
 public:
  /// Construct untrained with the feature subset the tree will consume
  /// (defaults to the Θ(NNZ) set of Table IV, the most accurate one).
  /// Default tree regularization (depth 8, >= 2 samples per leaf) is chosen
  /// for the few-hundred-sample pools this library trains on; pass explicit
  /// params to override.
  explicit FeatureClassifier(
      std::vector<features::FeatureId> feature_set = features::onnz_feature_set(),
      ml::TreeParams params = {.max_depth = 8, .min_samples_leaf = 2,
                               .min_samples_split = 4});

  /// Train from pre-extracted feature vectors and labels.
  void train(const std::vector<features::FeatureVector>& features,
             const std::vector<ClassSet>& labels);

  /// Classify one matrix: extract features on the fly and query the tree.
  [[nodiscard]] ClassSet classify(const CsrMatrix& A) const;

  /// Classify from an already-extracted feature vector.
  [[nodiscard]] ClassSet classify(const features::FeatureVector& f) const;

  [[nodiscard]] bool trained() const noexcept { return tree_.trained(); }
  [[nodiscard]] const ml::DecisionTree& tree() const noexcept { return tree_; }
  [[nodiscard]] const std::vector<features::FeatureId>& feature_set()
      const noexcept {
    return features_;
  }

  /// Serialize / restore the trained model (offline training artifact).
  void save(std::ostream& out) const;
  static FeatureClassifier load(std::istream& in);

 private:
  std::vector<features::FeatureId> features_;
  ml::TreeParams params_;
  ml::DecisionTree tree_;

  // Kept for save(): retraining from the stored dataset reproduces the tree
  // exactly (CART here is deterministic), so the model file is simply the
  // training set — compact and robust to internal representation changes.
  std::vector<std::vector<double>> train_x_;
  std::vector<std::vector<int>> train_y_;
};

/// Offline training stage: label `pool` with the profile-guided classifier
/// (the §III-D3 labeling choice) and fit.  `bounds_cfg` controls the
/// profiling effort per pool matrix.
struct TrainingResult {
  FeatureClassifier classifier;
  std::vector<features::FeatureVector> features;
  std::vector<ClassSet> labels;
};
[[nodiscard]] TrainingResult train_from_pool(
    const std::vector<CsrMatrix>& pool,
    std::vector<features::FeatureId> feature_set = features::onnz_feature_set(),
    const ProfileParams& profile_params = {},
    const perf::BoundsConfig& bounds_cfg = {});

/// Hand-coded fallback rules over the Table I features, for when neither a
/// trained tree nor the profiling budget is available (DESIGN.md §6):
///   ML  when misses_avg >= 1 (on average every row walks off its lines)
///   IMB when nnz_max >= 64 and >= 8x nnz_avg (the §III-E power-law shape)
///   CMP when the working set is LLC-resident (the Size feature)
///   MB  when DRAM-resident and not already latency-bound
/// Deliberately conservative: one Θ(NNZ) feature pass, no measurements.
[[nodiscard]] ClassSet heuristic_feature_classes(const CsrMatrix& A);

}  // namespace spmvopt::classify
