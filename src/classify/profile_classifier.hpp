// Profile-guided classifier (§III-C, Fig. 4).
//
// Rule-based classification over the measured per-class bounds:
//   IMB when P_IMB / P_CSR > T_IMB
//   ML  when P_ML  / P_CSR > T_ML
//   MB  when P_CSR ≈ P_MB and P_MB < P_CMP < P_peak
//   CMP when P_MB > P_CMP or P_CMP > P_peak
// T_ML = 1.25 and T_IMB = 1.24 are the paper's grid-searched defaults; the
// informal "≈" is a ratio tolerance exposed as a third hyperparameter.
#pragma once

#include "classify/classes.hpp"
#include "perf/bounds.hpp"

namespace spmvopt::classify {

struct ProfileParams {
  double t_ml = 1.25;
  double t_imb = 1.24;
  double approx_tol = 1.15;  ///< P_CSR ≈ P_MB  ⇔  P_MB / P_CSR <= approx_tol
  /// Extra guard on the CMP rule: the CMP bound must also promise a gain,
  /// P_CMP / P_CSR > t_cmp, before the class is emitted.  The paper's rule
  /// has no margin; on hosts where the no-indirection micro-benchmark is
  /// uniformly below the analytic P_MB (e.g. a single wide core that cannot
  /// saturate bandwidth) the unguarded rule fires for every matrix,
  /// including ones the CMP optimization slows down.  Tuned by the same
  /// grid search as t_ml/t_imb (bench_gridsearch).
  double t_cmp = 1.15;
  /// Partition-wise ML detection (the paper's §IV-C future-work extension,
  /// implemented in perf/partitioned_ml.hpp): when > 1, the matrix is also
  /// probed in this many nnz-balanced row blocks and ML is flagged if *any*
  /// block clears t_ml — catching matrices like rajat30 whose irregularity
  /// hides inside a region the whole-matrix average washes out.  1 disables
  /// (the paper's published behaviour).
  int ml_partitions = 1;
  /// Wall-clock budget for the online profiling phase (seconds; <= 0 means
  /// unlimited).  On overrun the measured-bound rules cannot run; the
  /// classifier falls back to the hand-coded feature heuristics
  /// (heuristic_feature_classes), flagged via ProfileResult::used_fallback
  /// (DESIGN.md §6).
  double budget_seconds = 0.0;
};

/// Pure rule evaluation on precomputed bounds (unit-testable in isolation).
[[nodiscard]] ClassSet classify_from_bounds(const perf::PerfBounds& b,
                                            const ProfileParams& p = {});

/// Full online workflow: measure the bounds (the profiling phase whose cost
/// Table V charges to this optimizer), then classify.
struct ProfileResult {
  perf::PerfBounds bounds;
  ClassSet classes;
  /// Max per-block ML ratio; 0 when ml_partitions == 1.
  double partition_ml_max = 0.0;
  /// True when profiling overran its budget and `classes` came from the
  /// feature heuristics instead of the measured bounds.
  bool used_fallback = false;
};
[[nodiscard]] ProfileResult classify_profile(const CsrMatrix& A,
                                             const ProfileParams& p = {},
                                             const perf::BoundsConfig& cfg = {});

}  // namespace spmvopt::classify
