#include "classify/feature_classifier.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace spmvopt::classify {

FeatureClassifier::FeatureClassifier(
    std::vector<features::FeatureId> feature_set, ml::TreeParams params)
    : features_(std::move(feature_set)), params_(params) {
  if (features_.empty())
    throw std::invalid_argument("FeatureClassifier: empty feature set");
}

void FeatureClassifier::train(
    const std::vector<features::FeatureVector>& feats,
    const std::vector<ClassSet>& labels) {
  if (feats.size() != labels.size() || feats.empty())
    throw std::invalid_argument("FeatureClassifier::train: bad inputs");
  ml::Dataset ds;
  ds.X.reserve(feats.size());
  ds.Y.reserve(labels.size());
  for (std::size_t i = 0; i < feats.size(); ++i) {
    ds.X.push_back(features::project(feats[i], features_));
    ds.Y.push_back(labels[i].to_labels());
  }
  tree_.fit(ds, params_);
  train_x_ = std::move(ds.X);
  train_y_ = std::move(ds.Y);
}

ClassSet FeatureClassifier::classify(const features::FeatureVector& f) const {
  if (!trained()) throw std::logic_error("FeatureClassifier: not trained");
  return ClassSet::from_labels(tree_.predict(features::project(f, features_)));
}

ClassSet FeatureClassifier::classify(const CsrMatrix& A) const {
  // Only the features the tree consumes are extracted, so a Θ(N) feature
  // set really costs Θ(N) online (Table I / Table V).
  return classify(features::extract_features_subset(A, features_));
}

void FeatureClassifier::save(std::ostream& out) const {
  if (!trained()) throw std::logic_error("FeatureClassifier::save: not trained");
  out << "spmvopt-feature-classifier 1\n";
  out << features_.size();
  for (features::FeatureId id : features_) out << ' ' << static_cast<int>(id);
  out << '\n';
  out << params_.max_depth << ' ' << params_.min_samples_leaf << ' '
      << params_.min_samples_split << '\n';
  out << train_x_.size() << ' ' << ClassSet::kNumLabels << '\n';
  out.precision(17);
  for (std::size_t i = 0; i < train_x_.size(); ++i) {
    for (double v : train_x_[i]) out << v << ' ';
    for (int v : train_y_[i]) out << v << ' ';
    out << '\n';
  }
  if (!out) throw std::runtime_error("FeatureClassifier::save: write failed");
}

FeatureClassifier FeatureClassifier::load(std::istream& in) {
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (!in || magic != "spmvopt-feature-classifier" || version != 1)
    throw std::runtime_error("FeatureClassifier::load: bad header");
  std::size_t nf = 0;
  in >> nf;
  if (!in || nf == 0 || nf > 64)
    throw std::runtime_error("FeatureClassifier::load: bad feature count");
  std::vector<features::FeatureId> fset(nf);
  for (auto& id : fset) {
    int raw = -1;
    in >> raw;
    if (!in || raw < 0 || raw >= features::kFeatureCount)
      throw std::runtime_error("FeatureClassifier::load: bad feature id");
    id = static_cast<features::FeatureId>(raw);
  }
  ml::TreeParams params;
  in >> params.max_depth >> params.min_samples_leaf >> params.min_samples_split;
  std::size_t nsamples = 0;
  int nlabels = 0;
  in >> nsamples >> nlabels;
  if (!in || nsamples == 0 || nlabels != ClassSet::kNumLabels)
    throw std::runtime_error("FeatureClassifier::load: bad sample header");

  FeatureClassifier fc(std::move(fset), params);
  ml::Dataset ds;
  ds.X.assign(nsamples, std::vector<double>(nf));
  ds.Y.assign(nsamples, std::vector<int>(static_cast<std::size_t>(nlabels)));
  for (std::size_t i = 0; i < nsamples; ++i) {
    for (auto& v : ds.X[i]) in >> v;
    for (auto& v : ds.Y[i]) in >> v;
  }
  if (!in) throw std::runtime_error("FeatureClassifier::load: truncated data");
  fc.tree_.fit(ds, params);
  fc.train_x_ = std::move(ds.X);
  fc.train_y_ = std::move(ds.Y);
  return fc;
}

ClassSet heuristic_feature_classes(const CsrMatrix& A) {
  const features::FeatureVector f = features::extract_features(A);
  ClassSet cls;
  if (f[features::FeatureId::MissesAvg] >= 1.0) cls.add(Bottleneck::ML);
  const double nnz_avg = f[features::FeatureId::NnzAvg];
  if (f[features::FeatureId::NnzMax] >= 64.0 &&
      f[features::FeatureId::NnzMax] >= 8.0 * (nnz_avg > 1.0 ? nnz_avg : 1.0))
    cls.add(Bottleneck::IMB);
  const bool llc_resident = f[features::FeatureId::Size] >= 0.5;
  if (llc_resident)
    cls.add(Bottleneck::CMP);
  else if (!cls.has(Bottleneck::ML))
    cls.add(Bottleneck::MB);
  return cls;
}

TrainingResult train_from_pool(const std::vector<CsrMatrix>& pool,
                               std::vector<features::FeatureId> feature_set,
                               const ProfileParams& profile_params,
                               const perf::BoundsConfig& bounds_cfg) {
  if (pool.empty()) throw std::invalid_argument("train_from_pool: empty pool");
  TrainingResult out{FeatureClassifier(std::move(feature_set)), {}, {}};
  out.features.reserve(pool.size());
  out.labels.reserve(pool.size());
  for (const CsrMatrix& A : pool) {
    out.features.push_back(features::extract_features(A));
    out.labels.push_back(
        classify_profile(A, profile_params, bounds_cfg).classes);
  }
  out.classifier.train(out.features, out.labels);
  return out;
}

}  // namespace spmvopt::classify
