#include "classify/profile_classifier.hpp"

#include <algorithm>
#include <stdexcept>

#include "classify/feature_classifier.hpp"
#include "perf/partitioned_ml.hpp"

namespace spmvopt::classify {

ClassSet classify_from_bounds(const perf::PerfBounds& b,
                              const ProfileParams& p) {
  if (b.p_csr <= 0.0)
    throw std::invalid_argument("classify_from_bounds: nonpositive P_CSR");
  if (p.t_ml <= 0.0 || p.t_imb <= 0.0 || p.approx_tol < 1.0 || p.t_cmp <= 0.0)
    throw std::invalid_argument("classify_from_bounds: bad hyperparameters");

  ClassSet cls;
  // Fig. 4, lines 3-5.
  if (b.p_imb / b.p_csr > p.t_imb) cls.add(Bottleneck::IMB);
  // Fig. 4, lines 6-8.
  if (b.p_ml / b.p_csr > p.t_ml) cls.add(Bottleneck::ML);
  // Fig. 4, lines 9-11: bandwidth saturated and not compute-limited.
  const bool csr_approx_mb =
      b.p_mb / b.p_csr <= p.approx_tol && b.p_csr / b.p_mb <= p.approx_tol;
  if (csr_approx_mb && b.p_mb < b.p_cmp && b.p_cmp < b.p_peak)
    cls.add(Bottleneck::MB);
  // Fig. 4, lines 12-14: see Eq. (1) — P_CMP below P_MB means the matrix is
  // not memory bound; P_CMP above P_peak means a cache-resident working set.
  // Guarded by t_cmp: the bound must also promise a real gain (see header).
  if ((b.p_mb > b.p_cmp || b.p_cmp > b.p_peak) &&
      b.p_cmp / b.p_csr > p.t_cmp)
    cls.add(Bottleneck::CMP);
  return cls;
}

ProfileResult classify_profile(const CsrMatrix& A, const ProfileParams& p,
                               const perf::BoundsConfig& cfg) {
  perf::BoundsConfig budgeted = cfg;
  if (p.budget_seconds > 0.0 && budgeted.deadline_seconds <= 0.0)
    budgeted.deadline_seconds = p.budget_seconds;

  ProfileResult r;
  r.bounds = perf::measure_bounds(A, budgeted);
  if (r.bounds.overrun) {
    // Budget spent before the P_ML/P_CMP micro-benchmarks ran: the measured
    // rules would see zeros, so classify from structure alone instead.
    r.used_fallback = true;
    r.classes = heuristic_feature_classes(A);
    return r;
  }
  r.classes = classify_from_bounds(r.bounds, p);
  if (p.ml_partitions > 1 && !r.classes.has(Bottleneck::ML)) {
    const int parts = std::min<int>(p.ml_partitions, std::max<index_t>(1, A.nrows()));
    const auto pml = perf::partitioned_ml_ratios(A, parts, cfg.measure,
                                                 cfg.nthreads);
    r.partition_ml_max = pml.max_ratio();
    if (r.partition_ml_max > p.t_ml) r.classes.add(Bottleneck::ML);
  }
  return r;
}

}  // namespace spmvopt::classify
