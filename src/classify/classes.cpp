#include "classify/classes.hpp"

#include <bit>
#include <stdexcept>

namespace spmvopt::classify {

const char* bottleneck_name(Bottleneck b) {
  switch (b) {
    case Bottleneck::MB: return "MB";
    case Bottleneck::ML: return "ML";
    case Bottleneck::IMB: return "IMB";
    case Bottleneck::CMP: return "CMP";
  }
  throw std::invalid_argument("bottleneck_name: bad class");
}

int ClassSet::count() const noexcept { return std::popcount(bits_); }

std::string ClassSet::to_string() const {
  if (empty()) return "{}";
  std::string out = "{";
  for (Bottleneck b :
       {Bottleneck::MB, Bottleneck::ML, Bottleneck::IMB, Bottleneck::CMP}) {
    if (has(b)) {
      if (out.size() > 1) out += ",";
      out += bottleneck_name(b);
    }
  }
  out += "}";
  return out;
}

std::vector<int> ClassSet::to_labels() const {
  return {has(Bottleneck::MB) ? 1 : 0, has(Bottleneck::ML) ? 1 : 0,
          has(Bottleneck::IMB) ? 1 : 0, has(Bottleneck::CMP) ? 1 : 0,
          empty() ? 1 : 0};
}

ClassSet ClassSet::from_labels(const std::vector<int>& labels) {
  if (labels.size() != static_cast<std::size_t>(kNumLabels))
    throw std::invalid_argument("ClassSet::from_labels: need 5 labels");
  ClassSet s;
  if (labels[0]) s.add(Bottleneck::MB);
  if (labels[1]) s.add(Bottleneck::ML);
  if (labels[2]) s.add(Bottleneck::IMB);
  if (labels[3]) s.add(Bottleneck::CMP);
  // labels[4] (NONE) is implied by emptiness; a tree may emit an
  // inconsistent combination, in which case the explicit classes win.
  return s;
}

std::vector<std::string> ClassSet::label_names() {
  return {"MB", "ML", "IMB", "CMP", "NONE"};
}

}  // namespace spmvopt::classify
