// Bottleneck classes (§III-A) and the multilabel encoding shared by both
// classifiers.
//
// The optimization-selection problem is multiclass *and* multilabel: a matrix
// may be simultaneously memory-latency bound and thread-imbalanced, and the
// corresponding optimizations are applied jointly (§III-E).  A fifth "dummy"
// label (§III-D) marks matrices not worth optimizing at all.
#pragma once

#include <string>
#include <vector>

namespace spmvopt::classify {

enum class Bottleneck : unsigned {
  MB = 1u << 0,   ///< memory bandwidth bound
  ML = 1u << 1,   ///< memory latency bound (irregular x accesses)
  IMB = 1u << 2,  ///< thread imbalance
  CMP = 1u << 3,  ///< computational bottleneck
};

/// A set of bottleneck classes.  Empty == the dummy "don't optimize" class.
class ClassSet {
 public:
  constexpr ClassSet() = default;
  constexpr explicit ClassSet(unsigned bits) : bits_(bits & 0xFu) {}

  constexpr void add(Bottleneck b) noexcept { bits_ |= static_cast<unsigned>(b); }
  constexpr void remove(Bottleneck b) noexcept {
    bits_ &= ~static_cast<unsigned>(b);
  }
  [[nodiscard]] constexpr bool has(Bottleneck b) const noexcept {
    return (bits_ & static_cast<unsigned>(b)) != 0;
  }
  [[nodiscard]] constexpr bool empty() const noexcept { return bits_ == 0; }
  [[nodiscard]] constexpr unsigned bits() const noexcept { return bits_; }
  [[nodiscard]] constexpr bool operator==(const ClassSet&) const = default;

  /// Number of set classes.
  [[nodiscard]] int count() const noexcept;

  /// "{ML, IMB}"‐style rendering; "{}" for the dummy class.
  [[nodiscard]] std::string to_string() const;

  /// Multilabel encoding for the decision tree: [MB, ML, IMB, CMP, NONE],
  /// with NONE = 1 exactly when the set is empty.
  [[nodiscard]] std::vector<int> to_labels() const;
  static ClassSet from_labels(const std::vector<int>& labels);

  /// Label names in to_labels() order.
  [[nodiscard]] static std::vector<std::string> label_names();
  static constexpr int kNumLabels = 5;

 private:
  unsigned bits_ = 0;
};

[[nodiscard]] const char* bottleneck_name(Bottleneck b);

}  // namespace spmvopt::classify
