// Cooperative cancellation and deadlines (DESIGN.md §10).
//
// A CancelToken is a cheap, copyable handle to shared cancellation state: an
// explicit cancel flag plus an optional steady-clock deadline.  Long-running
// work — engine team bodies, merge/SELL/BCSR kernel loops, solver iterations,
// plan-cache conversions — polls `cancelled()` at *chunk* granularity (a few
// thousand rows, one solver iteration) and unwinds cooperatively, returning a
// typed Error (DeadlineExceeded / Cancelled) with partial-progress context.
// Nothing is ever pre-empted: a token only requests that the work stop at its
// next polling point, so data structures are always left consistent.
//
// Copies share state: the server cancels the token held by an executing job
// from the watchdog or a `cancel(request_id)` verb, and every team member
// polling its own copy observes the flag.  Polling is wait-free (one relaxed
// atomic load; plus one clock read when a deadline is set).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>

#include "robust/error.hpp"

namespace spmvopt::robust {

class CancelToken {
 public:
  /// Why the token reports `cancelled()`.
  enum class Why : std::uint8_t {
    None,       ///< not cancelled
    Cancelled,  ///< cancel() was called
    Deadline,   ///< the deadline passed
  };

  /// A live token with no deadline; cancellable via cancel().
  CancelToken();

  /// A token that trips `seconds` from now (steady clock).  Non-positive
  /// budgets produce an already-expired token.
  [[nodiscard]] static CancelToken after_seconds(double seconds);

  /// Millisecond variant matching the wire protocol's `deadline_ms` field;
  /// 0 means "no deadline".
  [[nodiscard]] static CancelToken after_ms(std::uint32_t deadline_ms);

  /// The singleton never-cancelled token: polling it is a single relaxed
  /// load and it has no deadline.  Use as a default for call sites that
  /// need a token reference but no cancellation.
  [[nodiscard]] static const CancelToken& never();

  /// Request cooperative stop.  Thread-safe, idempotent, callable from any
  /// holder of a copy.  Explicit cancellation wins over a later deadline
  /// trip when reporting `why()`.
  void cancel() const noexcept;

  /// True once cancel() was called or the deadline passed.  This is the
  /// polling entry point for kernels; the deadline trip is latched so
  /// subsequent polls are pure atomic loads.
  [[nodiscard]] bool cancelled() const noexcept;

  /// Why the token is cancelled (None while still live).
  [[nodiscard]] Why why() const noexcept;

  [[nodiscard]] bool has_deadline() const noexcept;

  /// Seconds until the deadline (+inf when none, 0 when already past).
  [[nodiscard]] double remaining_seconds() const noexcept;

  /// A typed Error for abandoned work: category DeadlineExceeded or
  /// Cancelled per why(), with `progress` ("after 12288 of 100000 rows",
  /// "after 17 CG iterations") folded into the message as the
  /// partial-progress context.  Call only when cancelled().
  [[nodiscard]] Error to_error(const std::string& progress) const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace spmvopt::robust
