#include "robust/cancel.hpp"

#include <atomic>
#include <chrono>

namespace spmvopt::robust {

namespace {

using Clock = std::chrono::steady_clock;

double now_sec() noexcept {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

}  // namespace

struct CancelToken::State {
  std::atomic<bool> cancelled{false};      ///< explicit cancel()
  std::atomic<bool> deadline_hit{false};   ///< latched on first expired poll
  double deadline = kNoDeadline;           ///< steady-clock seconds, immutable
};

CancelToken::CancelToken() : state_(std::make_shared<State>()) {}

CancelToken CancelToken::after_seconds(double seconds) {
  CancelToken tok;
  tok.state_->deadline = now_sec() + seconds;
  return tok;
}

CancelToken CancelToken::after_ms(std::uint32_t deadline_ms) {
  if (deadline_ms == 0) return CancelToken();
  return after_seconds(static_cast<double>(deadline_ms) * 1e-3);
}

const CancelToken& CancelToken::never() {
  static const CancelToken tok;
  return tok;
}

void CancelToken::cancel() const noexcept {
  state_->cancelled.store(true, std::memory_order_relaxed);
}

bool CancelToken::cancelled() const noexcept {
  State& s = *state_;
  if (s.cancelled.load(std::memory_order_relaxed)) return true;
  if (s.deadline_hit.load(std::memory_order_relaxed)) return true;
  if (s.deadline != kNoDeadline && now_sec() >= s.deadline) {
    s.deadline_hit.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

CancelToken::Why CancelToken::why() const noexcept {
  // Explicit cancellation wins: a watchdog/client cancel on a token that
  // also has a deadline should report Cancelled, not Deadline.
  if (state_->cancelled.load(std::memory_order_relaxed)) return Why::Cancelled;
  if (cancelled()) return Why::Deadline;
  return Why::None;
}

bool CancelToken::has_deadline() const noexcept {
  return state_->deadline != kNoDeadline;
}

double CancelToken::remaining_seconds() const noexcept {
  if (!has_deadline()) return kNoDeadline;
  const double left = state_->deadline - now_sec();
  return left > 0.0 ? left : 0.0;
}

Error CancelToken::to_error(const std::string& progress) const {
  const Why w = why();
  const ErrorCategory cat = w == Why::Cancelled ? ErrorCategory::Cancelled
                                                : ErrorCategory::DeadlineExceeded;
  std::string msg = w == Why::Cancelled ? "work cancelled" : "deadline exceeded";
  if (!progress.empty()) {
    msg += " ";
    msg += progress;
  }
  return Error(cat, std::move(msg));
}

}  // namespace spmvopt::robust
