#include "robust/degradation.hpp"

namespace spmvopt::robust {

std::string DegradationLog::to_string() const {
  if (entries_.empty()) return "no degradation";
  std::string s;
  for (const Degradation& d : entries_) {
    if (!s.empty()) s += "; ";
    s += "dropped " + d.feature + " (" + d.reason + ")";
  }
  return s;
}

}  // namespace spmvopt::robust
