// Error taxonomy and Expected<T> result type for the ingestion paths.
//
// Every layer between a .mtx file on disk and an executed plan used to throw
// bare std::runtime_error straight through to main.  The robustness layer
// (DESIGN.md §6) classifies recoverable failures into four categories so
// callers can decide policy (retry, rebuild a cache, degrade, report an exit
// code) instead of pattern-matching message strings:
//
//   Io        the byte source/sink failed (open, read, write, rename)
//   Format    the bytes are wrong (malformed .mtx, corrupted cache, failed
//             CSR validation)
//   Resource  the input is well-formed but exceeds a limit (index range,
//             SPMVOPT_MAX_NNZ / SPMVOPT_MAX_BYTES ceilings, out of memory)
//   Internal  a bug or an unclassified failure — never expected in normal use
//   DeadlineExceeded  the work was abandoned cooperatively because its
//             deadline passed (see robust/cancel.hpp); retrying with a wider
//             deadline may succeed
//   Cancelled the caller (or the server watchdog) explicitly cancelled the
//             work mid-flight; the request itself was well-formed
//
// Checked entry points return Expected<T>; the historical throwing functions
// remain as shims that unwrap via value_or_throw(), raising SpmvException
// (which is-a std::runtime_error, so existing catch sites keep working).
#pragma once

#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace spmvopt {

// Wire note: the category crosses the spmvoptd protocol as a u8 of the enum
// value, so entries are append-only — never reorder or remove.
enum class ErrorCategory {
  Io,
  Format,
  Resource,
  Internal,
  DeadlineExceeded,
  Cancelled,
};

/// "io" | "format" | "resource" | "internal" | "deadline" | "cancelled".
[[nodiscard]] const char* error_category_name(ErrorCategory c) noexcept;

/// BSD-sysexits-compatible process exit code for a category (the CLI
/// contract, covered by test_cli): Format→65 (EX_DATAERR), Io→66
/// (EX_NOINPUT), Internal→70 (EX_SOFTWARE), Resource→71 (EX_OSERR),
/// DeadlineExceeded/Cancelled→75 (EX_TEMPFAIL — the transient-failure code:
/// the same request may succeed with a wider deadline or no cancel).
[[nodiscard]] int exit_code_for(ErrorCategory c) noexcept;

/// Exit code for malformed command lines (EX_USAGE); no ErrorCategory maps
/// here — usage errors never travel through Error.
inline constexpr int kExitUsage = 64;

/// A categorized failure with a human-readable message and a context chain
/// ("while reading 'x.mtx'", innermost first) accumulated as the error
/// propagates outward.
class Error {
 public:
  Error(ErrorCategory category, std::string message)
      : category_(category), message_(std::move(message)) {}

  [[nodiscard]] ErrorCategory category() const noexcept { return category_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }
  [[nodiscard]] const std::vector<std::string>& context() const noexcept {
    return context_;
  }

  /// Append one context frame (innermost first).
  void add_context(std::string frame) { context_.push_back(std::move(frame)); }
  [[nodiscard]] Error&& with_context(std::string frame) && {
    add_context(std::move(frame));
    return std::move(*this);
  }

  /// "format: matrix market: line 3: malformed entry" followed by one
  /// indented line per context frame.
  [[nodiscard]] std::string to_string() const;

 private:
  ErrorCategory category_;
  std::string message_;
  std::vector<std::string> context_;
};

/// The exception the throwing shims raise.  Derives from std::runtime_error
/// (what() == Error::to_string()) so pre-robustness catch sites still work,
/// while new ones can recover the full Error.
class SpmvException : public std::runtime_error {
 public:
  explicit SpmvException(Error e)
      : std::runtime_error(e.to_string()), error_(std::move(e)) {}
  [[nodiscard]] const Error& error() const noexcept { return error_; }

 private:
  Error error_;
};

/// Value type for Expected<> when success carries no payload.
struct Unit {};

/// Minimal expected/outcome type: either a T or an Error.  Deliberately tiny
/// (no monadic combinators) — ingestion call chains here are 2-3 deep and
/// explicit `if (!r.ok()) return ...` reads better in this codebase.
template <class T>
class Expected {
 public:
  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Expected(Error error) : state_(std::in_place_index<1>, std::move(error)) {}

  [[nodiscard]] bool ok() const noexcept { return state_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] T& value() noexcept {
    assert(ok());
    return std::get<0>(state_);
  }
  [[nodiscard]] const T& value() const noexcept {
    assert(ok());
    return std::get<0>(state_);
  }
  [[nodiscard]] const Error& error() const& noexcept {
    assert(!ok());
    return std::get<1>(state_);
  }
  [[nodiscard]] Error&& error() && noexcept {
    assert(!ok());
    return std::move(std::get<1>(state_));
  }

  /// Move the value out, or raise SpmvException carrying the error.
  [[nodiscard]] T value_or_throw() && {
    if (!ok()) throw SpmvException(std::move(std::get<1>(state_)));
    return std::move(std::get<0>(state_));
  }

  /// Append a context frame when holding an error; no-op on success.
  [[nodiscard]] Expected&& with_context(std::string frame) && {
    if (!ok()) std::get<1>(state_).add_context(std::move(frame));
    return std::move(*this);
  }

 private:
  std::variant<T, Error> state_;
};

using Status = Expected<Unit>;

}  // namespace spmvopt
