#include "robust/error.hpp"

namespace spmvopt {

const char* error_category_name(ErrorCategory c) noexcept {
  switch (c) {
    case ErrorCategory::Io: return "io";
    case ErrorCategory::Format: return "format";
    case ErrorCategory::Resource: return "resource";
    case ErrorCategory::Internal: return "internal";
    case ErrorCategory::DeadlineExceeded: return "deadline";
    case ErrorCategory::Cancelled: return "cancelled";
  }
  return "internal";
}

int exit_code_for(ErrorCategory c) noexcept {
  switch (c) {
    case ErrorCategory::Format: return 65;    // EX_DATAERR
    case ErrorCategory::Io: return 66;        // EX_NOINPUT
    case ErrorCategory::Internal: return 70;  // EX_SOFTWARE
    case ErrorCategory::Resource: return 71;  // EX_OSERR
    case ErrorCategory::DeadlineExceeded: return 75;  // EX_TEMPFAIL
    case ErrorCategory::Cancelled: return 75;         // EX_TEMPFAIL
  }
  return 70;
}

std::string Error::to_string() const {
  std::string s = error_category_name(category_);
  s += ": ";
  s += message_;
  for (const std::string& frame : context_) {
    s += "\n  ";
    s += frame;
  }
  return s;
}

}  // namespace spmvopt
