// DegradationLog: a queryable record of graceful-degradation steps.
//
// "Always-safe to apply" (the paper's framing of the optimizer) made
// literal: when a plan feature cannot be built — delta gaps unencodable, a
// BCSR/SELL conversion fails, the profiler overruns its budget — the feature
// is dropped and the run continues on the next rung of the ladder, down to
// baseline CSR, which cannot fail on a valid matrix.  Every dropped rung is
// recorded here with its reason so callers (and tests) can see exactly what
// ran and why, instead of silently getting something slower than requested.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace spmvopt::robust {

/// One step down the ladder: a plan feature that was dropped.
struct Degradation {
  std::string feature;  ///< "delta" | "split" | "sell" | "bcsr" | "profile"
  std::string reason;   ///< human-readable cause (exception message, rule)
};

class DegradationLog {
 public:
  void record(std::string feature, std::string reason) {
    entries_.push_back({std::move(feature), std::move(reason)});
  }

  [[nodiscard]] const std::vector<Degradation>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] bool degraded() const noexcept { return !entries_.empty(); }
  [[nodiscard]] bool dropped(std::string_view feature) const noexcept {
    for (const Degradation& d : entries_)
      if (d.feature == feature) return true;
    return false;
  }

  /// "dropped delta (in-row gap exceeds 16-bit); dropped split (...)".
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Degradation> entries_;
};

}  // namespace spmvopt::robust
