// Deterministic fault injection for the robustness layer (DESIGN.md §6).
//
// A fixed registry of named injection points sits on the cold paths of
// ingestion, format conversion, and profiling.  A point is *armed* with a
// trigger count N; it then fires exactly once, on the Nth hit after arming —
// fully deterministic, so a test can target "the second read of this file"
// and a recovery path re-running the same code does not re-fail.
//
// Arming: programmatically via fault_arm(), or through the environment
// (SPMVOPT_FAULT="point[:nth][,point[:nth]...]", parsed on first use;
// unknown names are ignored so stale variables cannot crash production).
//
// Cost: when the SPMVOPT_FAULT_INJECTION macro is off (CMake
// -DSPMVOPT_FAULT_INJECTION=OFF), fault_fire() is a constant-false inline and
// every injection branch compiles away.  When on (the default), each hit is
// one relaxed atomic increment on paths that already do file I/O or format
// conversion — never inside an SpMV kernel.
#pragma once

#include <string>
#include <vector>

namespace spmvopt::robust {

/// Stable names of every registered injection point (usable from tests to
/// sweep the whole registry).  Available in all build modes.
[[nodiscard]] std::vector<std::string> fault_points();

#ifdef SPMVOPT_FAULT_INJECTION

[[nodiscard]] constexpr bool fault_injection_enabled() noexcept { return true; }

/// Count one hit of `point`; true exactly when this is the armed Nth hit.
/// Unknown names count as never-armed (returns false).
[[nodiscard]] bool fault_fire(const char* point) noexcept;

/// Arm `point` to fire on the nth subsequent hit (nth >= 1).  Throws
/// std::invalid_argument on an unknown point or nth < 1.
void fault_arm(const std::string& point, long nth = 1);

/// Disarm every point (hit counters keep running).
void fault_disarm_all() noexcept;

/// Total hits observed at `point` since process start (0 for unknown names).
[[nodiscard]] long fault_hit_count(const std::string& point) noexcept;

#else

[[nodiscard]] constexpr bool fault_injection_enabled() noexcept {
  return false;
}
[[nodiscard]] inline bool fault_fire(const char*) noexcept { return false; }
inline void fault_arm(const std::string&, long = 1) {}
inline void fault_disarm_all() noexcept {}
[[nodiscard]] inline long fault_hit_count(const std::string&) noexcept {
  return 0;
}

#endif

}  // namespace spmvopt::robust
