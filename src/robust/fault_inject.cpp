#include "robust/fault_inject.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace spmvopt::robust {

namespace {

// The registry.  Names are part of the public contract (tests and
// SPMVOPT_FAULT sweep them); add new points here and in DESIGN.md §6.
constexpr const char* kPointNames[] = {
    "coo_csr.alloc",             // allocation during COO→CSR conversion
    "mmio.alloc",                // allocation while reading a .mtx
    "binary_io.short_read",      // device-level read failure on the cache
    "binary_io.short_write",     // device-level write failure on the cache
    "binary_io.bit_flip",        // cache payload corruption (checksum catch)
    "convert.delta",             // delta-CSR encoding failure
    "convert.split",             // long-row decomposition failure
    "convert.sell",              // SELL-C-sigma conversion failure
    "convert.bcsr",              // BCSR conversion failure
    "kernels.merge_setup",       // merge-path partition/carry setup failure
    "classify.profile_overrun",  // profiling exceeds its wall-clock budget
    "server.frame_truncate",     // protocol frame cut short mid-payload
    "server.evict_during_run",   // plan-cache eviction races an executing job
    "server.watchdog_fire",      // watchdog declares the executing job overdue
    "engine.team_respawn",       // engine team re-spawn fails during recycle
    "client.retry_exhaust",      // client retry budget forced to exhaustion
};
constexpr std::size_t kPointCount = std::size(kPointNames);

}  // namespace

std::vector<std::string> fault_points() {
  return {std::begin(kPointNames), std::end(kPointNames)};
}

#ifdef SPMVOPT_FAULT_INJECTION

namespace {

struct PointState {
  std::atomic<long> hits{0};
  std::atomic<long> armed_at{0};  ///< absolute hit number to fire on; 0 = off
};
PointState g_state[kPointCount];

/// Index of `name`, or kPointCount when unknown.
std::size_t find_point(const char* name) noexcept {
  for (std::size_t i = 0; i < kPointCount; ++i)
    if (std::strcmp(kPointNames[i], name) == 0) return i;
  return kPointCount;
}

void arm_index(std::size_t i, long nth) noexcept {
  g_state[i].armed_at.store(g_state[i].hits.load(std::memory_order_relaxed) +
                                nth,
                            std::memory_order_relaxed);
}

/// SPMVOPT_FAULT="point[:nth],point2[:nth2]".  Unknown names and malformed
/// counts are skipped: a stale variable must never take production down.
void arm_from_env() noexcept {
  const char* v = std::getenv("SPMVOPT_FAULT");
  if (v == nullptr || *v == '\0') return;
  std::string spec(v);
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    std::string item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    long nth = 1;
    const std::size_t colon = item.find(':');
    if (colon != std::string::npos) {
      char* parse_end = nullptr;
      const long parsed = std::strtol(item.c_str() + colon + 1, &parse_end, 10);
      if (parse_end != item.c_str() + colon + 1 && parsed >= 1) nth = parsed;
      item.resize(colon);
    }
    const std::size_t i = find_point(item.c_str());
    if (i < kPointCount) arm_index(i, nth);
  }
}

std::once_flag g_env_once;

}  // namespace

bool fault_fire(const char* point) noexcept {
  std::call_once(g_env_once, arm_from_env);
  const std::size_t i = find_point(point);
  if (i == kPointCount) return false;
  const long hit = g_state[i].hits.fetch_add(1, std::memory_order_relaxed) + 1;
  // Equality makes the trigger one-shot without a separate disarm store.
  return hit == g_state[i].armed_at.load(std::memory_order_relaxed);
}

void fault_arm(const std::string& point, long nth) {
  std::call_once(g_env_once, arm_from_env);
  if (nth < 1)
    throw std::invalid_argument("fault_arm: nth must be >= 1, got " +
                                std::to_string(nth));
  const std::size_t i = find_point(point.c_str());
  if (i == kPointCount)
    throw std::invalid_argument("fault_arm: unknown injection point '" +
                                point + "'");
  arm_index(i, nth);
}

void fault_disarm_all() noexcept {
  for (PointState& s : g_state) s.armed_at.store(0, std::memory_order_relaxed);
}

long fault_hit_count(const std::string& point) noexcept {
  const std::size_t i = find_point(point.c_str());
  return i == kPointCount ? 0
                          : g_state[i].hits.load(std::memory_order_relaxed);
}

#endif  // SPMVOPT_FAULT_INJECTION

}  // namespace spmvopt::robust
