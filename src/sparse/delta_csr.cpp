#include "sparse/delta_csr.hpp"

#include <limits>

namespace spmvopt {

std::optional<DeltaWidth> DeltaCsrMatrix::required_width(const CsrMatrix& csr) {
  const index_t* rowptr = csr.rowptr();
  const index_t* colind = csr.colind();
  index_t max_gap = 0;
  for (index_t i = 0; i < csr.nrows(); ++i) {
    for (index_t j = rowptr[i] + 1; j < rowptr[i + 1]; ++j) {
      const index_t gap = colind[j] - colind[j - 1];
      if (gap > max_gap) max_gap = gap;
    }
  }
  if (max_gap <= std::numeric_limits<std::uint8_t>::max()) return DeltaWidth::U8;
  if (max_gap <= std::numeric_limits<std::uint16_t>::max()) return DeltaWidth::U16;
  return std::nullopt;
}

std::optional<DeltaCsrMatrix> DeltaCsrMatrix::encode(const CsrMatrix& csr) {
  const auto width = required_width(csr);
  if (!width) return std::nullopt;

  DeltaCsrMatrix m;
  m.nrows_ = csr.nrows();
  m.ncols_ = csr.ncols();
  m.width_ = *width;
  m.rowptr_.assign(csr.rowptr(), csr.rowptr() + csr.nrows() + 1);
  m.values_.assign(csr.values(), csr.values() + csr.nnz());
  m.bases_.assign(static_cast<std::size_t>(csr.nrows()), 0);

  const index_t* rowptr = csr.rowptr();
  const index_t* colind = csr.colind();
  const auto nnz = static_cast<std::size_t>(csr.nnz());
  if (m.width_ == DeltaWidth::U8)
    m.deltas8_.assign(nnz, 0);
  else
    m.deltas16_.assign(nnz, 0);

  for (index_t i = 0; i < csr.nrows(); ++i) {
    const index_t lo = rowptr[i];
    const index_t hi = rowptr[i + 1];
    if (lo == hi) continue;
    m.bases_[static_cast<std::size_t>(i)] = colind[lo];
    for (index_t j = lo + 1; j < hi; ++j) {
      const index_t gap = colind[j] - colind[j - 1];
      if (m.width_ == DeltaWidth::U8)
        m.deltas8_[static_cast<std::size_t>(j)] = static_cast<std::uint8_t>(gap);
      else
        m.deltas16_[static_cast<std::size_t>(j)] = static_cast<std::uint16_t>(gap);
    }
  }
  return m;
}

std::size_t DeltaCsrMatrix::format_bytes() const noexcept {
  const std::size_t delta_bytes =
      width_ == DeltaWidth::U8 ? deltas8_.size() * sizeof(std::uint8_t)
                               : deltas16_.size() * sizeof(std::uint16_t);
  return rowptr_.size() * sizeof(index_t) + bases_.size() * sizeof(index_t) +
         delta_bytes + values_.size() * sizeof(value_t);
}

CsrMatrix DeltaCsrMatrix::decode() const {
  aligned_vector<index_t> rowptr(rowptr_.begin(), rowptr_.end());
  aligned_vector<value_t> values(values_.begin(), values_.end());
  aligned_vector<index_t> colind(values_.size());
  for (index_t i = 0; i < nrows_; ++i) {
    const index_t lo = rowptr_[static_cast<std::size_t>(i)];
    const index_t hi = rowptr_[static_cast<std::size_t>(i) + 1];
    index_t col = lo < hi ? bases_[static_cast<std::size_t>(i)] : 0;
    for (index_t j = lo; j < hi; ++j) {
      if (j > lo)
        col += width_ == DeltaWidth::U8
                   ? static_cast<index_t>(deltas8_[static_cast<std::size_t>(j)])
                   : static_cast<index_t>(deltas16_[static_cast<std::size_t>(j)]);
      colind[static_cast<std::size_t>(j)] = col;
    }
  }
  return CsrMatrix(nrows_, ncols_, std::move(rowptr), std::move(colind),
                   std::move(values));
}

}  // namespace spmvopt
