// Matrix Market (.mtx) I/O.
//
// The paper's suites come from the University of Florida Sparse Matrix
// Collection, which distributes Matrix Market files; this reader lets users
// run the optimizer on the real collection when it is available, while the
// synthetic generators stand in for it offline (DESIGN.md §3).
//
// Supported: `matrix coordinate real|integer|pattern general|symmetric|
// skew-symmetric` and `matrix array real|integer general`.
//
// The reader is hardened (DESIGN.md §6): it streams line by line, performs
// all size arithmetic with overflow checks, validates the declared nnz
// against the actual entry count (both directions), tolerates CRLF line
// endings, and enforces the SPMVOPT_MAX_NNZ / SPMVOPT_MAX_BYTES resource
// ceilings *before* reserving memory.  The `_checked` entry points return
// Expected<> with the error category (Io | Format | Resource); the historical
// functions are throwing shims over them (SpmvException is-a
// std::runtime_error, message still line-numbered).
#pragma once

#include <iosfwd>
#include <string>

#include "robust/error.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace spmvopt {

/// Parse a Matrix Market stream into COO (symmetry expanded, duplicates
/// summed).  Malformed input -> Format; stream failure -> Io; resource
/// ceilings / allocation failure -> Resource.
[[nodiscard]] Expected<CooMatrix> read_matrix_market_checked(std::istream& in);

/// Open `path` and parse; adds the path as error context.
[[nodiscard]] Expected<CooMatrix> read_matrix_market_file_checked(
    const std::string& path);

/// Throwing shims (raise SpmvException).
[[nodiscard]] CooMatrix read_matrix_market(std::istream& in);
[[nodiscard]] CooMatrix read_matrix_market_file(const std::string& path);

/// Write CSR as `matrix coordinate real general` with full double precision.
void write_matrix_market(std::ostream& out, const CsrMatrix& csr);
void write_matrix_market_file(const std::string& path, const CsrMatrix& csr);

}  // namespace spmvopt
