// Matrix Market (.mtx) I/O.
//
// The paper's suites come from the University of Florida Sparse Matrix
// Collection, which distributes Matrix Market files; this reader lets users
// run the optimizer on the real collection when it is available, while the
// synthetic generators stand in for it offline (DESIGN.md §3).
//
// Supported: `matrix coordinate real|integer|pattern general|symmetric|
// skew-symmetric` and `matrix array real|integer general`.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace spmvopt {

/// Parse a Matrix Market stream into COO (symmetry expanded, duplicates
/// summed).  Throws std::runtime_error with a line-numbered message on
/// malformed input.
[[nodiscard]] CooMatrix read_matrix_market(std::istream& in);

/// Convenience: open `path` and parse.  Throws std::runtime_error when the
/// file cannot be opened.
[[nodiscard]] CooMatrix read_matrix_market_file(const std::string& path);

/// Write CSR as `matrix coordinate real general` with full double precision.
void write_matrix_market(std::ostream& out, const CsrMatrix& csr);
void write_matrix_market_file(const std::string& path, const CsrMatrix& csr);

}  // namespace spmvopt
