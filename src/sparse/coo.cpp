#include "sparse/coo.hpp"

#include <algorithm>
#include <stdexcept>

namespace spmvopt {

CooMatrix::CooMatrix(index_t nrows, index_t ncols)
    : nrows_(nrows), ncols_(ncols) {
  if (nrows < 0 || ncols < 0)
    throw std::invalid_argument("CooMatrix: negative dimension");
}

void CooMatrix::add(index_t row, index_t col, value_t value) {
  if (row < 0 || row >= nrows_ || col < 0 || col >= ncols_)
    throw std::out_of_range("CooMatrix::add: coordinate out of range");
  entries_.push_back({row, col, value});
}

void CooMatrix::add_symmetric(index_t row, index_t col, value_t value) {
  add(row, col, value);
  if (row != col) add(col, row, value);
}

void CooMatrix::compress() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  // Sum duplicates in place.
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].row == entries_[i].row &&
        entries_[out - 1].col == entries_[i].col) {
      entries_[out - 1].value += entries_[i].value;
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
}

}  // namespace spmvopt
