// Register-blocked CSR (BCSR) with fixed R x C blocks — the core OSKI
// optimization (Vuduc et al. [26], the paper's canonical autotuning
// predecessor).
//
// The matrix is tiled into aligned R x C blocks; any block containing at
// least one nonzero is stored densely (explicit zero fill), with one column
// index per *block* instead of per element.  The kernel keeps R accumulators
// in registers and reads x contiguously per block, trading `fill_ratio()`
// extra flops/bytes for regular access — profitable when the pattern is
// naturally blocked (FEM matrices), ruinous when it is not, which is why
// `choose_block_size()` estimates fill from a row sample first (OSKI's
// heuristic).
#pragma once

#include <utility>

#include "sparse/csr.hpp"
#include "support/aligned.hpp"
#include "support/types.hpp"

namespace spmvopt {

class BcsrMatrix {
 public:
  /// Convert with fixed block dimensions (1 <= br, bc <= 8).
  static BcsrMatrix from_csr(const CsrMatrix& csr, index_t br, index_t bc);

  /// OSKI-style block-size selection: estimate the fill ratio of each
  /// candidate block shape from a sample of `sample_rows` block rows and
  /// pick the shape minimizing estimated (fill * work); returns {1, 1} when
  /// no blocking is estimated to pay off.
  [[nodiscard]] static std::pair<index_t, index_t> choose_block_size(
      const CsrMatrix& csr, index_t sample_rows = 512);

  /// Estimated stored-elements / nnz for the given block shape, from a
  /// uniform sample of block rows (exact when sample covers all rows).
  [[nodiscard]] static double estimate_fill(const CsrMatrix& csr, index_t br,
                                            index_t bc,
                                            index_t sample_rows = 512);

  [[nodiscard]] index_t nrows() const noexcept { return nrows_; }
  [[nodiscard]] index_t ncols() const noexcept { return ncols_; }
  [[nodiscard]] index_t nnz() const noexcept { return nnz_; }
  [[nodiscard]] index_t block_rows() const noexcept { return br_; }
  [[nodiscard]] index_t block_cols() const noexcept { return bc_; }
  [[nodiscard]] index_t num_block_rows() const noexcept {
    return static_cast<index_t>(blockptr_.size()) - 1;
  }
  [[nodiscard]] index_t num_blocks() const noexcept {
    return blockptr_.empty() ? 0 : blockptr_.back();
  }

  /// Stored elements / nnz (>= 1; the blocking overhead).
  [[nodiscard]] double fill_ratio() const noexcept;
  [[nodiscard]] std::size_t format_bytes() const noexcept;

  [[nodiscard]] const index_t* blockptr() const noexcept {
    return blockptr_.data();
  }
  [[nodiscard]] const index_t* blockind() const noexcept {
    return blockind_.data();
  }
  [[nodiscard]] const value_t* values() const noexcept { return values_.data(); }

  /// Reference multiply for tests; the parallel kernel is in
  /// kernels/bcsr_kernels.hpp.
  void multiply(const value_t* x, value_t* y) const noexcept;

  /// Back to CSR (drops the explicit zeros), for round-trip verification.
  [[nodiscard]] CsrMatrix to_csr() const;

 private:
  BcsrMatrix() = default;

  index_t nrows_ = 0;
  index_t ncols_ = 0;
  index_t nnz_ = 0;
  index_t br_ = 1;
  index_t bc_ = 1;
  aligned_vector<index_t> blockptr_;  ///< per block row, into blockind_
  aligned_vector<index_t> blockind_;  ///< block-column index per block
  aligned_vector<value_t> values_;    ///< br*bc per block, row-major
};

}  // namespace spmvopt
