#include "sparse/binary_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace spmvopt {

namespace {

constexpr char kMagic[8] = {'S', 'P', 'M', 'V', 'C', 'S', 'R', '1'};

template <class T>
void write_raw(std::ostream& out, const T* data, std::size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <class T>
void read_raw(std::istream& in, T* data, std::size_t count) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) throw std::runtime_error("csr binary: truncated file");
}

}  // namespace

void write_csr_binary(std::ostream& out, const CsrMatrix& csr) {
  out.write(kMagic, sizeof(kMagic));
  const std::int64_t dims[3] = {csr.nrows(), csr.ncols(), csr.nnz()};
  write_raw(out, dims, 3);
  write_raw(out, csr.rowptr(), static_cast<std::size_t>(csr.nrows()) + 1);
  write_raw(out, csr.colind(), static_cast<std::size_t>(csr.nnz()));
  write_raw(out, csr.values(), static_cast<std::size_t>(csr.nnz()));
  if (!out) throw std::runtime_error("csr binary: write failed");
}

void write_csr_binary_file(const std::string& path, const CsrMatrix& csr) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("csr binary: cannot open '" + path + "'");
  write_csr_binary(out, csr);
}

CsrMatrix read_csr_binary(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("csr binary: bad magic (not a spmvopt CSR file)");
  std::int64_t dims[3];
  read_raw(in, dims, 3);
  if (dims[0] < 0 || dims[1] < 0 || dims[2] < 0 ||
      dims[0] > std::numeric_limits<index_t>::max() ||
      dims[1] > std::numeric_limits<index_t>::max() ||
      dims[2] > std::numeric_limits<index_t>::max())
    throw std::runtime_error("csr binary: implausible dimensions");
  const auto nrows = static_cast<index_t>(dims[0]);
  const auto ncols = static_cast<index_t>(dims[1]);
  const auto nnz = static_cast<std::size_t>(dims[2]);

  aligned_vector<index_t> rowptr(static_cast<std::size_t>(nrows) + 1);
  aligned_vector<index_t> colind(nnz);
  aligned_vector<value_t> values(nnz);
  read_raw(in, rowptr.data(), rowptr.size());
  read_raw(in, colind.data(), colind.size());
  read_raw(in, values.data(), values.size());
  // The CsrMatrix constructor re-validates structure.
  return CsrMatrix(nrows, ncols, std::move(rowptr), std::move(colind),
                   std::move(values));
}

CsrMatrix read_csr_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("csr binary: cannot open '" + path + "'");
  return read_csr_binary(in);
}

}  // namespace spmvopt
