#include "sparse/binary_io.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <istream>
#include <new>
#include <ostream>
#include <stdexcept>

#include "robust/fault_inject.hpp"
#include "sparse/mmio.hpp"
#include "support/checked.hpp"
#include "support/crc32.hpp"
#include "support/env.hpp"

namespace spmvopt {

namespace {

constexpr char kMagicV1[8] = {'S', 'P', 'M', 'V', 'C', 'S', 'R', '1'};
constexpr char kMagicV2[8] = {'S', 'P', 'M', 'V', 'C', 'S', 'R', '2'};
constexpr std::uint32_t kFormatVersion = 2;

[[noreturn]] void fail(const std::string& what,
                       ErrorCategory category = ErrorCategory::Format) {
  throw SpmvException(Error(category, "csr binary: " + what));
}

template <class T>
void write_raw(std::ostream& out, const T* data, std::size_t count) {
  if (robust::fault_fire("binary_io.short_write"))
    fail("write failed (injected)", ErrorCategory::Io);
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
  if (!out) fail("write failed", ErrorCategory::Io);
}

template <class T>
void read_raw(std::istream& in, T* data, std::size_t count) {
  if (robust::fault_fire("binary_io.short_read"))
    fail("truncated file (injected)");
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) {
    if (in.bad()) fail("stream read error", ErrorCategory::Io);
    fail("truncated file");
  }
}

/// Payload bytes after the header: rowptr + colind + values.  False on
/// 64-bit overflow.
bool payload_bytes(std::uint64_t nrows, std::uint64_t nnz, std::uint64_t* out) {
  std::uint64_t rowptr_b = 0, colind_b = 0, values_b = 0, sum = 0;
  return checked_mul_u64(nrows + 1, sizeof(index_t), &rowptr_b) &&
         checked_mul_u64(nnz, sizeof(index_t), &colind_b) &&
         checked_mul_u64(nnz, sizeof(value_t), &values_b) &&
         checked_add_u64(rowptr_b, colind_b, &sum) &&
         checked_add_u64(sum, values_b, out);
}

std::uint32_t checksum(const std::int64_t dims[3], const index_t* rowptr,
                       std::size_t rowptr_n, const index_t* colind,
                       const value_t* values, std::size_t nnz) {
  std::uint32_t c = crc32(dims, 3 * sizeof(std::int64_t));
  c = crc32(rowptr, rowptr_n * sizeof(index_t), c);
  c = crc32(colind, nnz * sizeof(index_t), c);
  c = crc32(values, nnz * sizeof(value_t), c);
  return c;
}

/// When the stream is seekable, verify the file holds exactly the bytes the
/// header promises *before* allocating the arrays.
void check_stream_length(std::istream& in, std::uint64_t expected_total) {
  const std::istream::pos_type here = in.tellg();
  if (here == std::istream::pos_type(-1)) return;  // not seekable
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(here);
  if (end == std::istream::pos_type(-1) || !in) {
    in.clear();
    in.seekg(here);
    return;
  }
  const auto actual = static_cast<std::uint64_t>(std::streamoff(end));
  if (actual < expected_total)
    fail("file is " + std::to_string(actual) + " bytes but the header declares " +
         std::to_string(expected_total));
}

CsrMatrix read_impl(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in) {
    if (in.bad()) fail("stream read error", ErrorCategory::Io);
    fail("truncated file (no magic)");
  }
  const bool v2 = std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0;
  if (!v2 && std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0)
    fail("bad magic (not a spmvopt CSR file)");

  std::uint32_t version = 1;
  if (v2) {
    read_raw(in, &version, 1);
    if (version != kFormatVersion)
      fail("unsupported format version " + std::to_string(version));
  }

  std::int64_t dims[3];
  read_raw(in, dims, 3);
  if (dims[0] < 0 || dims[1] < 0 || dims[2] < 0 ||
      dims[0] > std::numeric_limits<index_t>::max() ||
      dims[1] > std::numeric_limits<index_t>::max() ||
      dims[2] > std::numeric_limits<index_t>::max())
    fail("implausible dimensions");
  const auto nrows = static_cast<index_t>(dims[0]);
  const auto ncols = static_cast<index_t>(dims[1]);
  const auto nnz = static_cast<std::size_t>(dims[2]);

  std::uint32_t declared_crc = 0;
  if (v2) read_raw(in, &declared_crc, 1);

  const std::uint64_t max_nnz = max_nnz_limit();
  if (max_nnz != 0 && static_cast<std::uint64_t>(nnz) > max_nnz)
    fail(std::to_string(nnz) + " entries exceed the SPMVOPT_MAX_NNZ ceiling (" +
             std::to_string(max_nnz) + ")",
         ErrorCategory::Resource);

  std::uint64_t payload = 0;
  if (!payload_bytes(static_cast<std::uint64_t>(nrows),
                     static_cast<std::uint64_t>(nnz), &payload))
    fail("payload size overflows 64 bits", ErrorCategory::Resource);
  const std::uint64_t max_bytes = max_bytes_limit();
  if (max_bytes != 0 && payload > max_bytes)
    fail("payload of " + std::to_string(payload) +
             " bytes exceeds the SPMVOPT_MAX_BYTES ceiling (" +
             std::to_string(max_bytes) + ")",
         ErrorCategory::Resource);

  const std::uint64_t header =
      sizeof(magic) + (v2 ? sizeof(version) + sizeof(declared_crc) : 0) +
      sizeof(dims);
  std::uint64_t total = 0;
  if (!checked_add_u64(header, payload, &total))
    fail("file size overflows 64 bits", ErrorCategory::Resource);
  check_stream_length(in, total);

  aligned_vector<index_t> rowptr(static_cast<std::size_t>(nrows) + 1);
  aligned_vector<index_t> colind(nnz);
  aligned_vector<value_t> values(nnz);
  read_raw(in, rowptr.data(), rowptr.size());
  read_raw(in, colind.data(), colind.size());
  read_raw(in, values.data(), values.size());

  if (robust::fault_fire("binary_io.bit_flip") && !rowptr.empty())
    reinterpret_cast<unsigned char*>(rowptr.data())[0] ^= 0x01;

  if (v2) {
    const std::uint32_t actual_crc = checksum(dims, rowptr.data(), rowptr.size(),
                                              colind.data(), values.data(), nnz);
    if (actual_crc != declared_crc)
      fail("checksum mismatch (file is corrupted)");
  }

  try {
    return CsrMatrix(nrows, ncols, std::move(rowptr), std::move(colind),
                     std::move(values));
  } catch (const std::invalid_argument& e) {
    fail(std::string("structurally invalid: ") + e.what());
  }
}

}  // namespace

Status write_csr_binary_checked(std::ostream& out, const CsrMatrix& csr) {
  try {
    const std::int64_t dims[3] = {csr.nrows(), csr.ncols(), csr.nnz()};
    const auto rowptr_n = static_cast<std::size_t>(csr.nrows()) + 1;
    const auto nnz = static_cast<std::size_t>(csr.nnz());
    const std::uint32_t crc =
        checksum(dims, csr.rowptr(), rowptr_n, csr.colind(), csr.values(), nnz);
    out.write(kMagicV2, sizeof(kMagicV2));
    if (!out) fail("write failed", ErrorCategory::Io);
    write_raw(out, &kFormatVersion, 1);
    write_raw(out, dims, 3);
    write_raw(out, &crc, 1);
    write_raw(out, csr.rowptr(), rowptr_n);
    write_raw(out, csr.colind(), nnz);
    write_raw(out, csr.values(), nnz);
    out.flush();
    if (!out) fail("write failed", ErrorCategory::Io);
    return Unit{};
  } catch (SpmvException& e) {
    return e.error();
  }
}

Status write_csr_binary_file_checked(const std::string& path,
                                     const CsrMatrix& csr) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      return Error(ErrorCategory::Io, "csr binary: cannot open '" + tmp + "'");
    Status st = write_csr_binary_checked(out, csr);
    if (!st.ok()) {
      out.close();
      std::remove(tmp.c_str());
      return std::move(st).with_context("while writing '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Error(ErrorCategory::Io,
                 "csr binary: cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Unit{};
}

Expected<CsrMatrix> read_csr_binary_checked(std::istream& in) {
  try {
    return read_impl(in);
  } catch (SpmvException& e) {
    return e.error();
  } catch (const std::bad_alloc&) {
    return Error(ErrorCategory::Resource, "csr binary: out of memory");
  } catch (const std::exception& e) {
    return Error(ErrorCategory::Internal, std::string("csr binary: ") + e.what());
  }
}

Expected<CsrMatrix> read_csr_binary_file_checked(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return Error(ErrorCategory::Io, "csr binary: cannot open '" + path + "'");
  return std::move(read_csr_binary_checked(in))
      .with_context("while reading '" + path + "'");
}

Expected<CsrMatrix> load_csr_cached(const std::string& mtx_path,
                                    const std::string& cache_path,
                                    bool* recovered) {
  if (recovered) *recovered = false;
  {
    Expected<CsrMatrix> cached = read_csr_binary_file_checked(cache_path);
    if (cached.ok()) return cached;
  }
  // Cache missing or corrupted: recover from the Matrix Market source.
  if (recovered) *recovered = true;
  Expected<CooMatrix> coo = read_matrix_market_file_checked(mtx_path);
  if (!coo.ok())
    return std::move(coo).error().with_context(
        "while recovering cache '" + cache_path + "'");
  Expected<CsrMatrix> csr = CsrMatrix::from_coo_checked(std::move(coo).value());
  if (!csr.ok())
    return std::move(csr).error().with_context(
        "while recovering cache '" + cache_path + "'");
  // Recovery is bounded to ONE rewrite attempt.  A failed write (e.g. a
  // read-only cache directory) keeps the load best-effort — the matrix
  // itself is fine.  But a write that reports success and still does not
  // read back means the medium is lying (persistent corruption): surface a
  // typed error instead of silently re-running this recovery forever.
  if (write_csr_binary_file_checked(cache_path, csr.value()).ok()) {
    Expected<CsrMatrix> verify = read_csr_binary_file_checked(cache_path);
    if (!verify.ok())
      return std::move(verify)
          .error()
          .with_context("while verifying the rewritten cache '" + cache_path +
                        "'")
          .with_context(
              "cache remains corrupt after its one rewrite attempt; "
              "not retrying");
  }
  return csr;
}

void write_csr_binary(std::ostream& out, const CsrMatrix& csr) {
  Status st = write_csr_binary_checked(out, csr);
  if (!st.ok()) throw SpmvException(std::move(st).error());
}

void write_csr_binary_file(const std::string& path, const CsrMatrix& csr) {
  Status st = write_csr_binary_file_checked(path, csr);
  if (!st.ok()) throw SpmvException(std::move(st).error());
}

CsrMatrix read_csr_binary(std::istream& in) {
  return read_csr_binary_checked(in).value_or_throw();
}

CsrMatrix read_csr_binary_file(const std::string& path) {
  return read_csr_binary_file_checked(path).value_or_throw();
}

}  // namespace spmvopt
