#include "sparse/reorder.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace spmvopt {

std::vector<index_t> Permutation::inverse() const {
  std::vector<index_t> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    inv[static_cast<std::size_t>(perm[i])] = static_cast<index_t>(i);
  return inv;
}

void Permutation::validate() const {
  std::vector<bool> seen(perm.size(), false);
  for (index_t v : perm) {
    if (v < 0 || v >= size() || seen[static_cast<std::size_t>(v)])
      throw std::invalid_argument("Permutation: not a bijection");
    seen[static_cast<std::size_t>(v)] = true;
  }
}

Permutation Permutation::identity(index_t n) {
  Permutation p;
  p.perm.resize(static_cast<std::size_t>(n));
  std::iota(p.perm.begin(), p.perm.end(), index_t{0});
  return p;
}

namespace {

/// Symmetrized adjacency (pattern of A + A^T, self-loops removed) in CSR-ish
/// arrays, for the BFS.
struct Adjacency {
  std::vector<index_t> ptr;
  std::vector<index_t> adj;
  std::vector<index_t> degree;
};

Adjacency symmetrized_pattern(const CsrMatrix& A) {
  const index_t n = A.nrows();
  Adjacency g;
  g.ptr.assign(static_cast<std::size_t>(n) + 1, 0);

  // Count (i -> j) and (j -> i) for every off-diagonal entry; duplicates
  // across A and A^T are tolerated (BFS just skips visited vertices).
  for (index_t i = 0; i < n; ++i)
    for (index_t k = A.rowptr()[i]; k < A.rowptr()[i + 1]; ++k) {
      const index_t j = A.colind()[k];
      if (j == i) continue;
      ++g.ptr[static_cast<std::size_t>(i) + 1];
      ++g.ptr[static_cast<std::size_t>(j) + 1];
    }
  for (std::size_t i = 1; i < g.ptr.size(); ++i) g.ptr[i] += g.ptr[i - 1];
  g.adj.resize(static_cast<std::size_t>(g.ptr.back()));
  std::vector<index_t> cursor(g.ptr.begin(), g.ptr.end() - 1);
  for (index_t i = 0; i < n; ++i)
    for (index_t k = A.rowptr()[i]; k < A.rowptr()[i + 1]; ++k) {
      const index_t j = A.colind()[k];
      if (j == i) continue;
      g.adj[static_cast<std::size_t>(cursor[static_cast<std::size_t>(i)]++)] = j;
      g.adj[static_cast<std::size_t>(cursor[static_cast<std::size_t>(j)]++)] = i;
    }
  g.degree.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    g.degree[static_cast<std::size_t>(i)] =
        g.ptr[static_cast<std::size_t>(i) + 1] - g.ptr[static_cast<std::size_t>(i)];
  return g;
}

/// BFS from `start`; appends visit order to `order`, marks `visited`.
/// Returns the last vertex visited (deepest level, used for the
/// pseudo-peripheral search).
index_t bfs_component(const Adjacency& g, index_t start,
                      std::vector<bool>& visited, std::vector<index_t>& order,
                      std::vector<index_t>& scratch) {
  const std::size_t first = order.size();
  order.push_back(start);
  visited[static_cast<std::size_t>(start)] = true;
  index_t last = start;
  for (std::size_t head = first; head < order.size(); ++head) {
    const index_t u = order[head];
    scratch.clear();
    for (index_t k = g.ptr[static_cast<std::size_t>(u)];
         k < g.ptr[static_cast<std::size_t>(u) + 1]; ++k) {
      const index_t v = g.adj[static_cast<std::size_t>(k)];
      if (!visited[static_cast<std::size_t>(v)]) {
        visited[static_cast<std::size_t>(v)] = true;
        scratch.push_back(v);
      }
    }
    // Cuthill-McKee: neighbors in increasing-degree order.
    std::sort(scratch.begin(), scratch.end(), [&g](index_t a, index_t b) {
      return g.degree[static_cast<std::size_t>(a)] <
             g.degree[static_cast<std::size_t>(b)];
    });
    for (index_t v : scratch) {
      order.push_back(v);
      last = v;
    }
  }
  return last;
}

}  // namespace

Permutation reverse_cuthill_mckee(const CsrMatrix& A) {
  if (A.nrows() != A.ncols())
    throw std::invalid_argument("reverse_cuthill_mckee: matrix must be square");
  const index_t n = A.nrows();
  const Adjacency g = symmetrized_pattern(A);

  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> scratch;

  for (index_t seed = 0; seed < n; ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    // Pseudo-peripheral start: BFS once from the component's min-degree
    // vertex, restart from the farthest vertex found (one George-Liu round).
    index_t start = seed;
    {
      std::vector<bool> probe = visited;
      std::vector<index_t> probe_order;
      const index_t far = bfs_component(g, seed, probe, probe_order, scratch);
      start = far;
    }
    bfs_component(g, start, visited, order, scratch);
  }

  // Reverse for RCM.
  std::reverse(order.begin(), order.end());
  Permutation p;
  p.perm = std::move(order);
  return p;
}

CsrMatrix permute_symmetric(const CsrMatrix& A, const Permutation& p) {
  if (A.nrows() != A.ncols())
    throw std::invalid_argument("permute_symmetric: matrix must be square");
  if (p.size() != A.nrows())
    throw std::invalid_argument("permute_symmetric: size mismatch");
  p.validate();
  const std::vector<index_t> inv = p.inverse();

  const index_t n = A.nrows();
  aligned_vector<index_t> rowptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t i = 0; i < n; ++i)
    rowptr[static_cast<std::size_t>(i) + 1] = A.row_nnz(p.perm[static_cast<std::size_t>(i)]);
  for (std::size_t i = 1; i < rowptr.size(); ++i) rowptr[i] += rowptr[i - 1];

  aligned_vector<index_t> colind(static_cast<std::size_t>(A.nnz()));
  aligned_vector<value_t> values(static_cast<std::size_t>(A.nnz()));
  for (index_t i = 0; i < n; ++i) {
    const index_t old_row = p.perm[static_cast<std::size_t>(i)];
    index_t dst = rowptr[static_cast<std::size_t>(i)];
    // Collect (new column, value), then sort within the row.
    const index_t lo = A.rowptr()[old_row];
    const index_t hi = A.rowptr()[old_row + 1];
    std::vector<std::pair<index_t, value_t>> row;
    row.reserve(static_cast<std::size_t>(hi - lo));
    for (index_t k = lo; k < hi; ++k)
      row.emplace_back(inv[static_cast<std::size_t>(A.colind()[k])],
                       A.values()[k]);
    std::sort(row.begin(), row.end());
    for (const auto& [c, v] : row) {
      colind[static_cast<std::size_t>(dst)] = c;
      values[static_cast<std::size_t>(dst)] = v;
      ++dst;
    }
  }
  return CsrMatrix(n, n, std::move(rowptr), std::move(colind), std::move(values));
}

void permute_gather(const Permutation& p, const value_t* v, value_t* out) {
  for (index_t i = 0; i < p.size(); ++i)
    out[i] = v[p.perm[static_cast<std::size_t>(i)]];
}

void permute_scatter(const Permutation& p, const value_t* v, value_t* out) {
  for (index_t i = 0; i < p.size(); ++i)
    out[p.perm[static_cast<std::size_t>(i)]] = v[i];
}

index_t matrix_bandwidth(const CsrMatrix& A) {
  index_t bw = 0;
  for (index_t i = 0; i < A.nrows(); ++i)
    for (index_t k = A.rowptr()[i]; k < A.rowptr()[i + 1]; ++k)
      bw = std::max(bw, static_cast<index_t>(std::abs(A.colind()[k] - i)));
  return bw;
}

}  // namespace spmvopt
