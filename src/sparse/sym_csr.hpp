// Symmetric CSR: store the lower triangle (plus diagonal) once.
//
// For the symmetric FEM matrices that dominate scientific-computing SpMV
// (pkustk, boneS10, consph, ... in the paper's suite), symmetry halves the
// off-diagonal storage — a structural compression attacking the same MB
// bottleneck as delta encoding, and composable with none of the CSR kernels
// (each stored entry contributes to two rows, so the kernel needs scatter
// updates).  Another §V plug-and-play candidate for the extension pool.
#pragma once

#include "sparse/csr.hpp"
#include "support/aligned.hpp"
#include "support/types.hpp"

namespace spmvopt {

class SymCsrMatrix {
 public:
  /// Build from a full symmetric matrix.  Throws std::invalid_argument when
  /// `full` is not square or not numerically symmetric within `tol`.
  static SymCsrMatrix from_symmetric_csr(const CsrMatrix& full,
                                         value_t tol = 0.0);

  [[nodiscard]] index_t n() const noexcept { return lower_.nrows(); }
  /// Nonzeros of the represented *full* matrix.
  [[nodiscard]] index_t full_nnz() const noexcept { return full_nnz_; }
  /// The stored lower triangle (diagonal included).
  [[nodiscard]] const CsrMatrix& lower() const noexcept { return lower_; }

  /// Bytes of the stored representation — roughly half the full CSR.
  [[nodiscard]] std::size_t format_bytes() const noexcept {
    return lower_.format_bytes();
  }

  /// Reference serial multiply (y = A x with A the full matrix).
  void multiply(const value_t* x, value_t* y) const noexcept;

  /// Reconstruct the full matrix (round-trip verification).
  [[nodiscard]] CsrMatrix to_full() const;

 private:
  SymCsrMatrix() = default;

  CsrMatrix lower_;
  index_t full_nnz_ = 0;
};

}  // namespace spmvopt

namespace spmvopt::kernels {

/// Parallel symmetric SpMV.  Each thread accumulates the transpose
/// contributions of its row block into a private buffer; buffers are reduced
/// at the end.  Memory traffic: ~half the matrix + the buffers — wins when
/// the matrix dwarfs n * nthreads doubles.
void spmv_sym(const SymCsrMatrix& A, const value_t* x, value_t* y,
              int nthreads = 0);

}  // namespace spmvopt::kernels
