#include "sparse/mmio.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace spmvopt {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("matrix market: line " + std::to_string(line_no) +
                           ": " + what);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

struct Banner {
  bool coordinate = true;
  enum class Field { Real, Integer, Pattern } field = Field::Real;
  enum class Symmetry { General, Symmetric, SkewSymmetric } symmetry =
      Symmetry::General;
};

Banner parse_banner(const std::string& line, std::size_t line_no) {
  std::istringstream ss(line);
  std::string magic, object, format, field, symmetry;
  ss >> magic >> object >> format >> field >> symmetry;
  if (lower(magic) != "%%matrixmarket") fail(line_no, "missing %%MatrixMarket banner");
  if (lower(object) != "matrix") fail(line_no, "unsupported object '" + object + "'");
  Banner b;
  const std::string fmt = lower(format);
  if (fmt == "coordinate") b.coordinate = true;
  else if (fmt == "array") b.coordinate = false;
  else fail(line_no, "unsupported format '" + format + "'");
  const std::string f = lower(field);
  if (f == "real") b.field = Banner::Field::Real;
  else if (f == "integer") b.field = Banner::Field::Integer;
  else if (f == "pattern") b.field = Banner::Field::Pattern;
  else fail(line_no, "unsupported field '" + field + "'");
  const std::string s = lower(symmetry);
  if (s == "general") b.symmetry = Banner::Symmetry::General;
  else if (s == "symmetric") b.symmetry = Banner::Symmetry::Symmetric;
  else if (s == "skew-symmetric") b.symmetry = Banner::Symmetry::SkewSymmetric;
  else fail(line_no, "unsupported symmetry '" + symmetry + "'");
  if (!b.coordinate && b.field == Banner::Field::Pattern)
    fail(line_no, "array format cannot be pattern");
  return b;
}

/// Next non-comment, non-blank line; returns false at EOF.
bool next_data_line(std::istream& in, std::string& line, std::size_t& line_no) {
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '%') continue;
    return true;
  }
  return false;
}

}  // namespace

CooMatrix read_matrix_market(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(in, line)) fail(1, "empty stream");
  ++line_no;
  const Banner banner = parse_banner(line, line_no);

  if (!next_data_line(in, line, line_no)) fail(line_no, "missing size line");

  if (banner.coordinate) {
    std::istringstream ss(line);
    long nrows = -1, ncols = -1, nnz = -1;
    ss >> nrows >> ncols >> nnz;
    if (ss.fail() || nrows < 0 || ncols < 0 || nnz < 0)
      fail(line_no, "malformed coordinate size line");
    CooMatrix coo(static_cast<index_t>(nrows), static_cast<index_t>(ncols));
    coo.reserve(static_cast<std::size_t>(nnz) *
                (banner.symmetry == Banner::Symmetry::General ? 1 : 2));
    for (long k = 0; k < nnz; ++k) {
      if (!next_data_line(in, line, line_no))
        fail(line_no, "unexpected end of file: expected " + std::to_string(nnz) +
                          " entries, got " + std::to_string(k));
      std::istringstream es(line);
      long i = 0, j = 0;
      double v = 1.0;
      es >> i >> j;
      if (banner.field != Banner::Field::Pattern) es >> v;
      if (es.fail()) fail(line_no, "malformed entry");
      if (i < 1 || i > nrows || j < 1 || j > ncols)
        fail(line_no, "index out of range");
      const auto r = static_cast<index_t>(i - 1);
      const auto c = static_cast<index_t>(j - 1);
      coo.add(r, c, v);
      if (r != c) {
        if (banner.symmetry == Banner::Symmetry::Symmetric) coo.add(c, r, v);
        if (banner.symmetry == Banner::Symmetry::SkewSymmetric) coo.add(c, r, -v);
      }
    }
    coo.compress();
    return coo;
  }

  // Array (dense, column-major).
  std::istringstream ss(line);
  long nrows = -1, ncols = -1;
  ss >> nrows >> ncols;
  if (ss.fail() || nrows < 0 || ncols < 0)
    fail(line_no, "malformed array size line");
  CooMatrix coo(static_cast<index_t>(nrows), static_cast<index_t>(ncols));
  for (long j = 0; j < ncols; ++j) {
    for (long i = 0; i < nrows; ++i) {
      if (!next_data_line(in, line, line_no))
        fail(line_no, "unexpected end of file in array data");
      std::istringstream es(line);
      double v = 0.0;
      es >> v;
      if (es.fail()) fail(line_no, "malformed array value");
      if (v != 0.0)
        coo.add(static_cast<index_t>(i), static_cast<index_t>(j), v);
    }
  }
  coo.compress();
  return coo;
}

CooMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("matrix market: cannot open '" + path + "'");
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& csr) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << csr.nrows() << ' ' << csr.ncols() << ' ' << csr.nnz() << '\n';
  out << std::setprecision(17);
  for (index_t i = 0; i < csr.nrows(); ++i)
    for (index_t j = csr.rowptr()[i]; j < csr.rowptr()[i + 1]; ++j)
      out << (i + 1) << ' ' << (csr.colind()[j] + 1) << ' ' << csr.values()[j]
          << '\n';
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& csr) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("matrix market: cannot open '" + path + "'");
  write_matrix_market(out, csr);
}

}  // namespace spmvopt
