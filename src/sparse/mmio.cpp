#include "sparse/mmio.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <limits>
#include <new>
#include <sstream>

#include "robust/fault_inject.hpp"
#include "support/checked.hpp"
#include "support/env.hpp"

namespace spmvopt {

namespace {

// Internally the parser throws SpmvException; read_matrix_market_checked()
// is the boundary that converts to Expected<>.
[[noreturn]] void fail(std::size_t line_no, const std::string& what,
                       ErrorCategory category = ErrorCategory::Format) {
  throw SpmvException(Error(category, "matrix market: line " +
                                          std::to_string(line_no) + ": " +
                                          what));
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Drop a trailing '\r' so CRLF files parse like LF files (operator>> already
/// treats '\r' as whitespace, but the banner is tokenized as strings).
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

struct Banner {
  bool coordinate = true;
  enum class Field { Real, Integer, Pattern } field = Field::Real;
  enum class Symmetry { General, Symmetric, SkewSymmetric } symmetry =
      Symmetry::General;
};

Banner parse_banner(const std::string& line, std::size_t line_no) {
  std::istringstream ss(line);
  std::string magic, object, format, field, symmetry;
  ss >> magic >> object >> format >> field >> symmetry;
  if (lower(magic) != "%%matrixmarket") fail(line_no, "missing %%MatrixMarket banner");
  if (lower(object) != "matrix") fail(line_no, "unsupported object '" + object + "'");
  Banner b;
  const std::string fmt = lower(format);
  if (fmt == "coordinate") b.coordinate = true;
  else if (fmt == "array") b.coordinate = false;
  else fail(line_no, "unsupported format '" + format + "'");
  const std::string f = lower(field);
  if (f == "real") b.field = Banner::Field::Real;
  else if (f == "integer") b.field = Banner::Field::Integer;
  else if (f == "pattern") b.field = Banner::Field::Pattern;
  else fail(line_no, "unsupported field '" + field + "'");
  const std::string s = lower(symmetry);
  if (s == "general") b.symmetry = Banner::Symmetry::General;
  else if (s == "symmetric") b.symmetry = Banner::Symmetry::Symmetric;
  else if (s == "skew-symmetric") b.symmetry = Banner::Symmetry::SkewSymmetric;
  else fail(line_no, "unsupported symmetry '" + symmetry + "'");
  if (!b.coordinate && b.field == Banner::Field::Pattern)
    fail(line_no, "array format cannot be pattern");
  return b;
}

/// Next non-comment, non-blank line; returns false at EOF.  A hard stream
/// error (not EOF) is an Io failure, reported immediately.
bool next_data_line(std::istream& in, std::string& line, std::size_t& line_no) {
  while (std::getline(in, line)) {
    ++line_no;
    strip_cr(line);
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line[first] == '%') continue;
    return true;
  }
  if (in.bad()) fail(line_no, "stream read error", ErrorCategory::Io);
  return false;
}

/// A dimension from the size line must fit index_t (Resource: the input may
/// be a perfectly valid matrix that this build simply cannot index).
index_t checked_dim(long long v, std::size_t line_no, const char* what) {
  if (v > static_cast<long long>(std::numeric_limits<index_t>::max()))
    fail(line_no,
         std::string(what) + " " + std::to_string(v) +
             " exceeds the 32-bit index range",
         ErrorCategory::Resource);
  return static_cast<index_t>(v);
}

/// Enforce SPMVOPT_MAX_NNZ / SPMVOPT_MAX_BYTES on `stored` prospective
/// entries *before* any allocation happens.
void check_ceilings(std::uint64_t stored, std::size_t line_no) {
  const std::uint64_t max_nnz = max_nnz_limit();
  if (max_nnz != 0 && stored > max_nnz)
    fail(line_no,
         std::to_string(stored) + " entries exceed the SPMVOPT_MAX_NNZ ceiling (" +
             std::to_string(max_nnz) + ")",
         ErrorCategory::Resource);
  std::uint64_t est_bytes = 0;
  if (!checked_mul_u64(stored, sizeof(Triplet), &est_bytes))
    fail(line_no, "estimated size overflows 64 bits", ErrorCategory::Resource);
  const std::uint64_t max_bytes = max_bytes_limit();
  if (max_bytes != 0 && est_bytes > max_bytes)
    fail(line_no,
         "estimated " + std::to_string(est_bytes) +
             " bytes exceed the SPMVOPT_MAX_BYTES ceiling (" +
             std::to_string(max_bytes) + ")",
         ErrorCategory::Resource);
}

CooMatrix read_impl(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(in, line)) {
    if (in.bad()) fail(1, "stream read error", ErrorCategory::Io);
    fail(1, "empty stream");
  }
  ++line_no;
  strip_cr(line);
  const Banner banner = parse_banner(line, line_no);

  if (!next_data_line(in, line, line_no)) fail(line_no, "missing size line");

  if (banner.coordinate) {
    std::istringstream ss(line);
    long long nrows = -1, ncols = -1, nnz = -1;
    ss >> nrows >> ncols >> nnz;
    if (ss.fail() || nrows < 0 || ncols < 0 || nnz < 0)
      fail(line_no, "malformed coordinate size line");
    const index_t nr = checked_dim(nrows, line_no, "row count");
    const index_t nc = checked_dim(ncols, line_no, "column count");
    const bool expands = banner.symmetry != Banner::Symmetry::General;
    // Worst case after symmetry expansion; cannot overflow (nnz < 2^63).
    const std::uint64_t stored =
        static_cast<std::uint64_t>(nnz) * (expands ? 2u : 1u);
    check_ceilings(stored, line_no);
    if (robust::fault_fire("mmio.alloc")) throw std::bad_alloc();
    CooMatrix coo(nr, nc);
    coo.reserve(static_cast<std::size_t>(stored));
    for (long long k = 0; k < nnz; ++k) {
      if (!next_data_line(in, line, line_no))
        fail(line_no, "unexpected end of file: expected " + std::to_string(nnz) +
                          " entries, got " + std::to_string(k));
      std::istringstream es(line);
      long long i = 0, j = 0;
      double v = 1.0;
      es >> i >> j;
      if (banner.field != Banner::Field::Pattern) es >> v;
      if (es.fail()) fail(line_no, "malformed entry");
      if (i < 1 || i > nrows || j < 1 || j > ncols)
        fail(line_no, "index out of range");
      const auto r = static_cast<index_t>(i - 1);
      const auto c = static_cast<index_t>(j - 1);
      coo.add(r, c, v);
      if (r != c) {
        if (banner.symmetry == Banner::Symmetry::Symmetric) coo.add(c, r, v);
        if (banner.symmetry == Banner::Symmetry::SkewSymmetric) coo.add(c, r, -v);
      }
    }
    // Declared-vs-actual: trailing data lines mean the header lied.
    if (next_data_line(in, line, line_no))
      fail(line_no, "more entries than the declared " + std::to_string(nnz));
    coo.compress();
    return coo;
  }

  // Array (dense, column-major).
  std::istringstream ss(line);
  long long nrows = -1, ncols = -1;
  ss >> nrows >> ncols;
  if (ss.fail() || nrows < 0 || ncols < 0)
    fail(line_no, "malformed array size line");
  const index_t nr = checked_dim(nrows, line_no, "row count");
  const index_t nc = checked_dim(ncols, line_no, "column count");
  std::uint64_t total = 0;
  if (!checked_mul_u64(static_cast<std::uint64_t>(nrows),
                       static_cast<std::uint64_t>(ncols), &total))
    fail(line_no, "array size overflows 64 bits", ErrorCategory::Resource);
  check_ceilings(total, line_no);
  if (robust::fault_fire("mmio.alloc")) throw std::bad_alloc();
  CooMatrix coo(nr, nc);
  for (index_t j = 0; j < nc; ++j) {
    for (index_t i = 0; i < nr; ++i) {
      if (!next_data_line(in, line, line_no))
        fail(line_no, "unexpected end of file in array data");
      std::istringstream es(line);
      double v = 0.0;
      es >> v;
      if (es.fail()) fail(line_no, "malformed array value");
      if (v != 0.0) coo.add(i, j, v);
    }
  }
  if (next_data_line(in, line, line_no))
    fail(line_no, "more values than the declared " + std::to_string(nrows) +
                      " x " + std::to_string(ncols));
  coo.compress();
  return coo;
}

}  // namespace

Expected<CooMatrix> read_matrix_market_checked(std::istream& in) {
  try {
    return read_impl(in);
  } catch (SpmvException& e) {
    return e.error();
  } catch (const std::bad_alloc&) {
    return Error(ErrorCategory::Resource, "matrix market: out of memory");
  } catch (const std::exception& e) {
    return Error(ErrorCategory::Internal,
                 std::string("matrix market: ") + e.what());
  }
}

Expected<CooMatrix> read_matrix_market_file_checked(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    return Error(ErrorCategory::Io,
                 "matrix market: cannot open '" + path + "'");
  return std::move(read_matrix_market_checked(in))
      .with_context("while reading '" + path + "'");
}

CooMatrix read_matrix_market(std::istream& in) {
  return read_matrix_market_checked(in).value_or_throw();
}

CooMatrix read_matrix_market_file(const std::string& path) {
  return read_matrix_market_file_checked(path).value_or_throw();
}

void write_matrix_market(std::ostream& out, const CsrMatrix& csr) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << csr.nrows() << ' ' << csr.ncols() << ' ' << csr.nnz() << '\n';
  out << std::setprecision(17);
  for (index_t i = 0; i < csr.nrows(); ++i)
    for (index_t j = csr.rowptr()[i]; j < csr.rowptr()[i + 1]; ++j)
      out << (i + 1) << ' ' << (csr.colind()[j] + 1) << ' ' << csr.values()[j]
          << '\n';
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& csr) {
  std::ofstream out(path);
  if (!out)
    throw SpmvException(Error(ErrorCategory::Io,
                              "matrix market: cannot open '" + path + "'"));
  write_matrix_market(out, csr);
  out.flush();
  if (!out)
    throw SpmvException(
        Error(ErrorCategory::Io, "matrix market: write failed for '" + path + "'"));
}

}  // namespace spmvopt
