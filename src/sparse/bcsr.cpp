#include "sparse/bcsr.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace spmvopt {

namespace {

void require_block_dims(index_t br, index_t bc) {
  if (br < 1 || br > 8 || bc < 1 || bc > 8)
    throw std::invalid_argument("BcsrMatrix: block dims must be in [1, 8]");
}

}  // namespace

BcsrMatrix BcsrMatrix::from_csr(const CsrMatrix& csr, index_t br, index_t bc) {
  require_block_dims(br, bc);
  BcsrMatrix m;
  m.nrows_ = csr.nrows();
  m.ncols_ = csr.ncols();
  m.nnz_ = csr.nnz();
  m.br_ = br;
  m.bc_ = bc;

  const index_t nbrows = (csr.nrows() + br - 1) / br;
  m.blockptr_.assign(static_cast<std::size_t>(nbrows) + 1, 0);

  // Per block row: collect the set of occupied block columns, then fill.
  // `touched` maps block column -> block slot for the current block row.
  std::map<index_t, std::size_t> touched;
  for (index_t bi = 0; bi < nbrows; ++bi) {
    touched.clear();
    const index_t r0 = bi * br;
    const index_t r1 = std::min<index_t>(csr.nrows(), r0 + br);
    for (index_t i = r0; i < r1; ++i)
      for (index_t k = csr.rowptr()[i]; k < csr.rowptr()[i + 1]; ++k)
        touched.emplace(csr.colind()[k] / bc, 0);

    const auto base_block = static_cast<std::size_t>(m.blockind_.size());
    for (auto& [bj, slot] : touched) {
      slot = m.blockind_.size();
      m.blockind_.push_back(bj);
    }
    m.values_.resize(m.blockind_.size() * static_cast<std::size_t>(br) *
                         static_cast<std::size_t>(bc),
                     0.0);
    for (index_t i = r0; i < r1; ++i) {
      const index_t r_in = i - r0;
      for (index_t k = csr.rowptr()[i]; k < csr.rowptr()[i + 1]; ++k) {
        const index_t col = csr.colind()[k];
        const std::size_t slot = touched[col / bc];
        const index_t c_in = col % bc;
        m.values_[slot * static_cast<std::size_t>(br * bc) +
                  static_cast<std::size_t>(r_in * bc + c_in)] = csr.values()[k];
      }
    }
    (void)base_block;
    m.blockptr_[static_cast<std::size_t>(bi) + 1] =
        static_cast<index_t>(m.blockind_.size());
  }
  return m;
}

double BcsrMatrix::estimate_fill(const CsrMatrix& csr, index_t br, index_t bc,
                                 index_t sample_rows) {
  require_block_dims(br, bc);
  if (sample_rows < 1) throw std::invalid_argument("estimate_fill: bad sample");
  const index_t nbrows = (csr.nrows() + br - 1) / br;
  if (nbrows == 0) return 1.0;
  const index_t stride = std::max<index_t>(1, nbrows / sample_rows);

  // For sampled block rows, count occupied blocks and covered nonzeros.
  std::size_t blocks = 0;
  std::size_t covered_nnz = 0;
  std::vector<index_t> cols;
  for (index_t bi = 0; bi < nbrows; bi += stride) {
    cols.clear();
    const index_t r0 = bi * br;
    const index_t r1 = std::min<index_t>(csr.nrows(), r0 + br);
    for (index_t i = r0; i < r1; ++i) {
      covered_nnz += static_cast<std::size_t>(csr.row_nnz(i));
      for (index_t k = csr.rowptr()[i]; k < csr.rowptr()[i + 1]; ++k)
        cols.push_back(csr.colind()[k] / bc);
    }
    std::sort(cols.begin(), cols.end());
    blocks += static_cast<std::size_t>(
        std::unique(cols.begin(), cols.end()) - cols.begin());
  }
  if (covered_nnz == 0) return 1.0;
  return static_cast<double>(blocks) * static_cast<double>(br * bc) /
         static_cast<double>(covered_nnz);
}

std::pair<index_t, index_t> BcsrMatrix::choose_block_size(const CsrMatrix& csr,
                                                          index_t sample_rows) {
  // OSKI's candidate grid; score = fill (extra flops+bytes) discounted by the
  // per-element index saving and the register-reuse of taller blocks.
  std::pair<index_t, index_t> best{1, 1};
  double best_score = 1.0;  // the score of unblocked CSR
  for (index_t br : {2, 4, 8}) {
    for (index_t bc : {2, 4, 8}) {
      const double fill = estimate_fill(csr, br, bc, sample_rows);
      // One index per block instead of per element saves ~4 bytes per
      // (br*bc) stored elements of 12 bytes: model the effective work as
      // fill * (1 - saving) with a mild bonus for register blocking.
      const double index_saving =
          4.0 / 12.0 * (1.0 - 1.0 / static_cast<double>(br * bc));
      const double reuse_bonus = 0.97;  // empirical: contiguous x per block
      const double score = fill * (1.0 - index_saving) * reuse_bonus;
      if (score < best_score) {
        best_score = score;
        best = {br, bc};
      }
    }
  }
  return best;
}

double BcsrMatrix::fill_ratio() const noexcept {
  if (nnz_ == 0) return 1.0;
  return static_cast<double>(values_.size()) / static_cast<double>(nnz_);
}

std::size_t BcsrMatrix::format_bytes() const noexcept {
  return blockptr_.size() * sizeof(index_t) + blockind_.size() * sizeof(index_t) +
         values_.size() * sizeof(value_t);
}

void BcsrMatrix::multiply(const value_t* x, value_t* y) const noexcept {
  const index_t nbrows = num_block_rows();
  for (index_t bi = 0; bi < nbrows; ++bi) {
    const index_t r0 = bi * br_;
    const index_t live_rows = std::min<index_t>(nrows_ - r0, br_);
    value_t acc[8] = {};
    for (index_t b = blockptr_[static_cast<std::size_t>(bi)];
         b < blockptr_[static_cast<std::size_t>(bi) + 1]; ++b) {
      const index_t c0 = blockind_[static_cast<std::size_t>(b)] * bc_;
      const value_t* blk =
          values_.data() + static_cast<std::size_t>(b) *
                               static_cast<std::size_t>(br_ * bc_);
      const index_t live_cols = std::min<index_t>(ncols_ - c0, bc_);
      for (index_t r = 0; r < live_rows; ++r)
        for (index_t c = 0; c < live_cols; ++c)
          acc[r] += blk[r * bc_ + c] * x[c0 + c];
    }
    for (index_t r = 0; r < live_rows; ++r) y[r0 + r] = acc[r];
  }
}

CsrMatrix BcsrMatrix::to_csr() const {
  CooMatrix coo(nrows_, ncols_);
  const index_t nbrows = num_block_rows();
  for (index_t bi = 0; bi < nbrows; ++bi) {
    const index_t r0 = bi * br_;
    for (index_t b = blockptr_[static_cast<std::size_t>(bi)];
         b < blockptr_[static_cast<std::size_t>(bi) + 1]; ++b) {
      const index_t c0 = blockind_[static_cast<std::size_t>(b)] * bc_;
      const value_t* blk =
          values_.data() + static_cast<std::size_t>(b) *
                               static_cast<std::size_t>(br_ * bc_);
      for (index_t r = 0; r < br_ && r0 + r < nrows_; ++r)
        for (index_t c = 0; c < bc_ && c0 + c < ncols_; ++c)
          if (blk[r * bc_ + c] != 0.0) coo.add(r0 + r, c0 + c, blk[r * bc_ + c]);
    }
  }
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

}  // namespace spmvopt
