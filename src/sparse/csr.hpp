// Compressed Sparse Row storage (§II, Fig. 2) — the base format of the
// whole optimization pool.
#pragma once

#include <span>
#include <string>

#include "robust/error.hpp"
#include "sparse/coo.hpp"
#include "support/aligned.hpp"
#include "support/types.hpp"

namespace spmvopt {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from (validated) raw arrays.  Throws std::invalid_argument when
  /// the arrays are inconsistent (rowptr non-monotone, colind out of range,
  /// sizes mismatched).
  CsrMatrix(index_t nrows, index_t ncols, aligned_vector<index_t> rowptr,
            aligned_vector<index_t> colind, aligned_vector<value_t> values);

  /// Convert from COO.  Duplicates must already be summed via compress();
  /// entries need not be sorted (a counting pass orders them by row; columns
  /// are sorted within each row).
  static CsrMatrix from_coo(const CooMatrix& coo);

  /// Non-throwing conversion for ingestion pipelines: allocation failure ->
  /// Resource, inconsistent COO -> Format (DESIGN.md §6).
  static Expected<CsrMatrix> from_coo_checked(const CooMatrix& coo);

  [[nodiscard]] index_t nrows() const noexcept { return nrows_; }
  [[nodiscard]] index_t ncols() const noexcept { return ncols_; }
  [[nodiscard]] index_t nnz() const noexcept {
    return nrows_ > 0 ? rowptr_[static_cast<std::size_t>(nrows_)] : 0;
  }
  [[nodiscard]] index_t row_nnz(index_t i) const noexcept {
    return rowptr_[static_cast<std::size_t>(i) + 1] -
           rowptr_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] const index_t* rowptr() const noexcept { return rowptr_.data(); }
  [[nodiscard]] const index_t* colind() const noexcept { return colind_.data(); }
  [[nodiscard]] const value_t* values() const noexcept { return values_.data(); }
  [[nodiscard]] value_t* values_mut() noexcept { return values_.data(); }

  [[nodiscard]] std::span<const index_t> rowptr_span() const noexcept {
    return {rowptr_.data(), rowptr_.size()};
  }
  [[nodiscard]] std::span<const index_t> colind_span() const noexcept {
    return {colind_.data(), colind_.size()};
  }
  [[nodiscard]] std::span<const value_t> values_span() const noexcept {
    return {values_.data(), values_.size()};
  }

  /// Bytes of the matrix data structure itself (S_format in §III-B):
  /// rowptr + colind + values.
  [[nodiscard]] std::size_t format_bytes() const noexcept;
  /// Bytes of the values array only (S_values, for P_peak).
  [[nodiscard]] std::size_t values_bytes() const noexcept;
  /// Full SpMV working set: S_format + S_x + S_y.
  [[nodiscard]] std::size_t working_set_bytes() const noexcept;

  /// Reference (serial, obviously-correct) y = A*x for tests and baselines.
  void multiply(std::span<const value_t> x, std::span<value_t> y) const;

  /// True when every stored (i,j) has a stored (j,i) with the same value.
  /// O(nnz log nnz); intended for tests and tools, not hot paths.
  [[nodiscard]] bool is_symmetric(value_t tol = 0.0) const;

  /// A deep structural equality check (dims, pattern, exact values).
  [[nodiscard]] bool equals(const CsrMatrix& other) const noexcept;

  /// Copy of rows [begin, end) as a (end-begin) x ncols matrix.  Used by the
  /// partition-wise bottleneck analysis (the paper's §IV-C future-work idea).
  [[nodiscard]] CsrMatrix extract_rows(index_t begin, index_t end) const;

 private:
  void validate() const;

  index_t nrows_ = 0;
  index_t ncols_ = 0;
  aligned_vector<index_t> rowptr_;
  aligned_vector<index_t> colind_;
  aligned_vector<value_t> values_;
};

}  // namespace spmvopt
