// SELL-C-σ storage (Kreutzer et al. [12], cited by the paper as related
// work on SIMD-friendly formats).
//
// Rows are sorted by length inside windows of σ rows, grouped into chunks of
// C consecutive (sorted) rows, and each chunk is padded to its longest row
// and stored column-major — so a SIMD lane per row runs the whole chunk with
// unit-stride value/column loads.  Included here as the demonstration of the
// paper's plug-and-play claim (§V): a new optimization slots into the pool
// by being assigned to a class (MB/CMP) without touching either classifier.
#pragma once

#include "sparse/csr.hpp"
#include "support/aligned.hpp"
#include "support/types.hpp"

namespace spmvopt {

class SellMatrix {
 public:
  /// Convert from CSR.  `chunk` (C) is the SIMD height, `sigma` the sorting
  /// window in rows (σ = 1 disables sorting; σ multiple of C recommended).
  /// Throws std::invalid_argument on nonpositive parameters.
  static SellMatrix from_csr(const CsrMatrix& csr, index_t chunk = 8,
                             index_t sigma = 256);

  [[nodiscard]] index_t nrows() const noexcept { return nrows_; }
  [[nodiscard]] index_t ncols() const noexcept { return ncols_; }
  [[nodiscard]] index_t nnz() const noexcept { return nnz_; }
  [[nodiscard]] index_t chunk() const noexcept { return chunk_; }
  [[nodiscard]] index_t num_chunks() const noexcept {
    return static_cast<index_t>(chunk_len_.size());
  }

  /// Stored elements / nnz - 1: the padding cost of the format (what the
  /// paper's compression-efficiency arguments trade against SIMD speed).
  [[nodiscard]] double padding_overhead() const noexcept;
  [[nodiscard]] std::size_t format_bytes() const noexcept;

  /// Original row index of sorted-position p.
  [[nodiscard]] const index_t* row_perm() const noexcept {
    return row_perm_.data();
  }
  [[nodiscard]] const index_t* chunk_ptr() const noexcept {
    return chunk_ptr_.data();
  }
  [[nodiscard]] const index_t* chunk_len() const noexcept {
    return chunk_len_.data();
  }
  [[nodiscard]] const index_t* colind() const noexcept { return colind_.data(); }
  [[nodiscard]] const value_t* values() const noexcept { return values_.data(); }
  /// Real (unpadded) length of sorted row p.
  [[nodiscard]] const index_t* row_len() const noexcept {
    return row_len_.data();
  }

  /// Reference multiply (serial) for tests; the OpenMP/SIMD kernel is in
  /// kernels/sell_kernels.hpp.
  void multiply(const value_t* x, value_t* y) const noexcept;

 private:
  SellMatrix() = default;

  index_t nrows_ = 0;
  index_t ncols_ = 0;
  index_t nnz_ = 0;
  index_t chunk_ = 8;
  aligned_vector<index_t> row_perm_;   ///< sorted position -> original row
  aligned_vector<index_t> row_len_;    ///< per sorted position
  aligned_vector<index_t> chunk_ptr_;  ///< element offset per chunk (+1 end)
  aligned_vector<index_t> chunk_len_;  ///< padded width per chunk
  aligned_vector<index_t> colind_;     ///< column-major within chunk, padded
  aligned_vector<value_t> values_;
};

}  // namespace spmvopt
