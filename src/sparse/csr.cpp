#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <new>
#include <numeric>
#include <stdexcept>

#include "robust/fault_inject.hpp"

namespace spmvopt {

CsrMatrix::CsrMatrix(index_t nrows, index_t ncols,
                     aligned_vector<index_t> rowptr,
                     aligned_vector<index_t> colind,
                     aligned_vector<value_t> values)
    : nrows_(nrows),
      ncols_(ncols),
      rowptr_(std::move(rowptr)),
      colind_(std::move(colind)),
      values_(std::move(values)) {
  validate();
}

void CsrMatrix::validate() const {
  if (nrows_ < 0 || ncols_ < 0)
    throw std::invalid_argument("CsrMatrix: negative dimension");
  if (rowptr_.size() != static_cast<std::size_t>(nrows_) + 1)
    throw std::invalid_argument("CsrMatrix: rowptr size != nrows+1");
  if (rowptr_.front() != 0)
    throw std::invalid_argument("CsrMatrix: rowptr[0] != 0");
  for (std::size_t i = 1; i < rowptr_.size(); ++i)
    if (rowptr_[i] < rowptr_[i - 1])
      throw std::invalid_argument("CsrMatrix: rowptr not monotone");
  const auto nnz = static_cast<std::size_t>(rowptr_.back());
  if (colind_.size() != nnz || values_.size() != nnz)
    throw std::invalid_argument("CsrMatrix: colind/values size != nnz");
  for (index_t c : colind_)
    if (c < 0 || c >= ncols_)
      throw std::invalid_argument("CsrMatrix: column index out of range");
}

CsrMatrix CsrMatrix::from_coo(const CooMatrix& coo) {
  const index_t n = coo.nrows();
  const auto& e = coo.entries();

  aligned_vector<index_t> rowptr(static_cast<std::size_t>(n) + 1, 0);
  for (const Triplet& t : e) ++rowptr[static_cast<std::size_t>(t.row) + 1];
  for (std::size_t i = 1; i < rowptr.size(); ++i) rowptr[i] += rowptr[i - 1];

  aligned_vector<index_t> colind(e.size());
  aligned_vector<value_t> values(e.size());
  // Scatter by row using a moving cursor per row.
  aligned_vector<index_t> cursor(rowptr.begin(), rowptr.end() - 1);
  for (const Triplet& t : e) {
    const auto pos = static_cast<std::size_t>(cursor[static_cast<std::size_t>(t.row)]++);
    colind[pos] = t.col;
    values[pos] = t.value;
  }
  // Sort columns within each row (pairwise with values).
  for (index_t i = 0; i < n; ++i) {
    const auto lo = static_cast<std::size_t>(rowptr[static_cast<std::size_t>(i)]);
    const auto hi = static_cast<std::size_t>(rowptr[static_cast<std::size_t>(i) + 1]);
    if (hi - lo < 2) continue;
    std::vector<std::size_t> order(hi - lo);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return colind[lo + a] < colind[lo + b];
    });
    aligned_vector<index_t> ctmp(hi - lo);
    aligned_vector<value_t> vtmp(hi - lo);
    for (std::size_t k = 0; k < order.size(); ++k) {
      ctmp[k] = colind[lo + order[k]];
      vtmp[k] = values[lo + order[k]];
    }
    std::copy(ctmp.begin(), ctmp.end(), colind.begin() + static_cast<std::ptrdiff_t>(lo));
    std::copy(vtmp.begin(), vtmp.end(), values.begin() + static_cast<std::ptrdiff_t>(lo));
  }
  return CsrMatrix(n, coo.ncols(), std::move(rowptr), std::move(colind),
                   std::move(values));
}

Expected<CsrMatrix> CsrMatrix::from_coo_checked(const CooMatrix& coo) {
  try {
    if (robust::fault_fire("coo_csr.alloc")) throw std::bad_alloc();
    return from_coo(coo);
  } catch (const std::bad_alloc&) {
    return Error(ErrorCategory::Resource, "coo->csr: out of memory");
  } catch (const std::exception& e) {
    return Error(ErrorCategory::Format, std::string("coo->csr: ") + e.what());
  }
}

std::size_t CsrMatrix::format_bytes() const noexcept {
  return rowptr_.size() * sizeof(index_t) + colind_.size() * sizeof(index_t) +
         values_.size() * sizeof(value_t);
}

std::size_t CsrMatrix::values_bytes() const noexcept {
  return values_.size() * sizeof(value_t);
}

std::size_t CsrMatrix::working_set_bytes() const noexcept {
  return format_bytes() + static_cast<std::size_t>(ncols_) * sizeof(value_t) +
         static_cast<std::size_t>(nrows_) * sizeof(value_t);
}

void CsrMatrix::multiply(std::span<const value_t> x,
                         std::span<value_t> y) const {
  if (x.size() != static_cast<std::size_t>(ncols_) ||
      y.size() != static_cast<std::size_t>(nrows_))
    throw std::invalid_argument("CsrMatrix::multiply: vector size mismatch");
  for (index_t i = 0; i < nrows_; ++i) {
    value_t sum = 0.0;
    for (index_t j = rowptr_[static_cast<std::size_t>(i)];
         j < rowptr_[static_cast<std::size_t>(i) + 1]; ++j) {
      sum += values_[static_cast<std::size_t>(j)] *
             x[static_cast<std::size_t>(colind_[static_cast<std::size_t>(j)])];
    }
    y[static_cast<std::size_t>(i)] = sum;
  }
}

bool CsrMatrix::is_symmetric(value_t tol) const {
  if (nrows_ != ncols_) return false;
  // For each (i, j, v), binary-search row j for column i.
  for (index_t i = 0; i < nrows_; ++i) {
    for (index_t k = rowptr_[static_cast<std::size_t>(i)];
         k < rowptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t j = colind_[static_cast<std::size_t>(k)];
      const value_t v = values_[static_cast<std::size_t>(k)];
      const index_t* lo = colind_.data() + rowptr_[static_cast<std::size_t>(j)];
      const index_t* hi = colind_.data() + rowptr_[static_cast<std::size_t>(j) + 1];
      const index_t* pos = std::lower_bound(lo, hi, i);
      if (pos == hi || *pos != i) return false;
      const value_t w = values_[static_cast<std::size_t>(pos - colind_.data())];
      if (std::abs(v - w) > tol) return false;
    }
  }
  return true;
}

CsrMatrix CsrMatrix::extract_rows(index_t begin, index_t end) const {
  if (begin < 0 || end < begin || end > nrows_)
    throw std::out_of_range("CsrMatrix::extract_rows: bad range");
  const index_t base = rowptr_[static_cast<std::size_t>(begin)];
  const index_t stop = rowptr_[static_cast<std::size_t>(end)];
  aligned_vector<index_t> rowptr(static_cast<std::size_t>(end - begin) + 1);
  for (index_t i = begin; i <= end; ++i)
    rowptr[static_cast<std::size_t>(i - begin)] =
        rowptr_[static_cast<std::size_t>(i)] - base;
  aligned_vector<index_t> colind(colind_.begin() + base, colind_.begin() + stop);
  aligned_vector<value_t> values(values_.begin() + base, values_.begin() + stop);
  return CsrMatrix(end - begin, ncols_, std::move(rowptr), std::move(colind),
                   std::move(values));
}

bool CsrMatrix::equals(const CsrMatrix& other) const noexcept {
  return nrows_ == other.nrows_ && ncols_ == other.ncols_ &&
         rowptr_ == other.rowptr_ && colind_ == other.colind_ &&
         values_ == other.values_;
}

}  // namespace spmvopt
