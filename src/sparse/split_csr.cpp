#include "sparse/split_csr.hpp"

#include <algorithm>
#include <stdexcept>

namespace spmvopt {

index_t SplitCsrMatrix::default_threshold(const CsrMatrix& csr) {
  if (csr.nrows() == 0) return 64;
  const double avg =
      static_cast<double>(csr.nnz()) / static_cast<double>(csr.nrows());
  return std::max<index_t>(64, static_cast<index_t>(8.0 * avg));
}

SplitCsrMatrix SplitCsrMatrix::split(const CsrMatrix& csr,
                                     index_t long_row_threshold) {
  if (long_row_threshold < 1)
    throw std::invalid_argument("SplitCsrMatrix: threshold < 1");

  const index_t n = csr.nrows();
  const index_t* rowptr = csr.rowptr();
  const index_t* colind = csr.colind();
  const value_t* values = csr.values();

  SplitCsrMatrix out;
  aligned_vector<index_t> srowptr(static_cast<std::size_t>(n) + 1, 0);
  out.long_rowptr_.push_back(0);

  // Pass 1: classify rows and size both parts.
  index_t short_nnz = 0;
  for (index_t i = 0; i < n; ++i) {
    const index_t len = rowptr[i + 1] - rowptr[i];
    if (len >= long_row_threshold) {
      out.long_rows_.push_back(i);
      out.long_rowptr_.push_back(out.long_rowptr_.back() + len);
    } else {
      short_nnz += len;
    }
    srowptr[static_cast<std::size_t>(i) + 1] = short_nnz;
  }

  aligned_vector<index_t> scolind(static_cast<std::size_t>(short_nnz));
  aligned_vector<value_t> svalues(static_cast<std::size_t>(short_nnz));
  out.long_colind_.resize(static_cast<std::size_t>(out.long_rowptr_.back()));
  out.long_values_.resize(static_cast<std::size_t>(out.long_rowptr_.back()));

  // Pass 2: scatter.
  std::size_t lk = 0;
  for (index_t i = 0; i < n; ++i) {
    const index_t lo = rowptr[i];
    const index_t hi = rowptr[i + 1];
    const index_t len = hi - lo;
    if (len >= long_row_threshold) {
      std::copy(colind + lo, colind + hi, out.long_colind_.begin() +
                                              static_cast<std::ptrdiff_t>(lk));
      std::copy(values + lo, values + hi, out.long_values_.begin() +
                                              static_cast<std::ptrdiff_t>(lk));
      lk += static_cast<std::size_t>(len);
    } else {
      const auto dst = static_cast<std::ptrdiff_t>(srowptr[static_cast<std::size_t>(i)]);
      std::copy(colind + lo, colind + hi, scolind.begin() + dst);
      std::copy(values + lo, values + hi, svalues.begin() + dst);
    }
  }

  out.short_ = CsrMatrix(n, csr.ncols(), std::move(srowptr), std::move(scolind),
                         std::move(svalues));
  return out;
}

index_t SplitCsrMatrix::nnz() const noexcept {
  return short_.nnz() + (long_rowptr_.empty() ? 0 : long_rowptr_.back());
}

CsrMatrix SplitCsrMatrix::merge() const {
  const index_t n = short_.nrows();
  aligned_vector<index_t> rowptr(static_cast<std::size_t>(n) + 1, 0);

  // Row lengths from both parts.
  for (index_t i = 0; i < n; ++i)
    rowptr[static_cast<std::size_t>(i) + 1] = short_.row_nnz(i);
  for (std::size_t k = 0; k < long_rows_.size(); ++k)
    rowptr[static_cast<std::size_t>(long_rows_[k]) + 1] +=
        long_rowptr_[k + 1] - long_rowptr_[k];
  for (std::size_t i = 1; i < rowptr.size(); ++i) rowptr[i] += rowptr[i - 1];

  aligned_vector<index_t> colind(static_cast<std::size_t>(rowptr.back()));
  aligned_vector<value_t> values(static_cast<std::size_t>(rowptr.back()));

  for (index_t i = 0; i < n; ++i) {
    const auto dst = static_cast<std::ptrdiff_t>(rowptr[static_cast<std::size_t>(i)]);
    const index_t lo = short_.rowptr()[i];
    const index_t hi = short_.rowptr()[i + 1];
    std::copy(short_.colind() + lo, short_.colind() + hi, colind.begin() + dst);
    std::copy(short_.values() + lo, short_.values() + hi, values.begin() + dst);
  }
  for (std::size_t k = 0; k < long_rows_.size(); ++k) {
    const index_t row = long_rows_[k];
    // A long row's short part is empty, so it starts at rowptr[row].
    const auto dst = static_cast<std::ptrdiff_t>(rowptr[static_cast<std::size_t>(row)]);
    const index_t lo = long_rowptr_[k];
    const index_t hi = long_rowptr_[k + 1];
    std::copy(long_colind_.data() + lo, long_colind_.data() + hi,
              colind.begin() + dst);
    std::copy(long_values_.data() + lo, long_values_.data() + hi,
              values.begin() + dst);
  }
  return CsrMatrix(n, short_.ncols(), std::move(rowptr), std::move(colind),
                   std::move(values));
}

}  // namespace spmvopt
