// Binary CSR cache.
//
// Matrix Market parsing is text-bound and dominates load time for large
// matrices; real deployments parse once and reload a validated binary image
// on every run (OSKI and SparseX both do this).  Format: a magic/version
// header, dimensions, then the three raw arrays.  Reads re-validate through
// the CsrMatrix constructor, so a corrupted file cannot produce an
// inconsistent matrix.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace spmvopt {

void write_csr_binary(std::ostream& out, const CsrMatrix& csr);
void write_csr_binary_file(const std::string& path, const CsrMatrix& csr);

/// Throws std::runtime_error on bad magic/version/truncation and
/// std::invalid_argument if the arrays fail CSR validation.
[[nodiscard]] CsrMatrix read_csr_binary(std::istream& in);
[[nodiscard]] CsrMatrix read_csr_binary_file(const std::string& path);

}  // namespace spmvopt
