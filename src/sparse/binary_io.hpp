// Binary CSR cache.
//
// Matrix Market parsing is text-bound and dominates load time for large
// matrices; real deployments parse once and reload a validated binary image
// on every run (OSKI and SparseX both do this).
//
// Format v2 (DESIGN.md §6): magic "SPMVCSR2", a u32 format-version field,
// three i64 dimensions, a CRC32 over the dimensions and the three raw
// arrays, then the arrays themselves.  Readers verify the checksum, the
// declared-vs-actual file length (when the stream is seekable), and
// re-validate structure through the CsrMatrix constructor, so a corrupted
// cache cannot produce an inconsistent matrix.  v1 files ("SPMVCSR1", no
// version/checksum) remain readable.
//
// Writes to a file are atomic: the payload lands in `path + ".tmp"` and is
// renamed over the target only after a successful flush, so a crash mid-write
// never leaves a half-written cache behind.
#pragma once

#include <iosfwd>
#include <string>

#include "robust/error.hpp"
#include "sparse/csr.hpp"

namespace spmvopt {

/// Serialize in v2 format.  Io on stream failure.
Status write_csr_binary_checked(std::ostream& out, const CsrMatrix& csr);

/// Atomic file write (tmp + rename).  The tmp file is removed on failure.
Status write_csr_binary_file_checked(const std::string& path,
                                     const CsrMatrix& csr);

/// Parse a v2 (or legacy v1) image.  Bad magic / version / checksum /
/// truncation -> Format; stream failure -> Io; dimensions past the resource
/// ceilings or the index range -> Resource.
[[nodiscard]] Expected<CsrMatrix> read_csr_binary_checked(std::istream& in);
[[nodiscard]] Expected<CsrMatrix> read_csr_binary_file_checked(
    const std::string& path);

/// Load `cache_path` if it parses cleanly; on any cache failure fall back to
/// re-reading `mtx_path` and rewrite the cache (auto-recovery, DESIGN.md
/// §6).  Recovery is bounded: exactly one rewrite attempt per load.  A
/// rewrite the filesystem refuses (read-only directory) stays best-effort,
/// but a rewrite that "succeeds" yet still fails to read back returns the
/// typed verify error — persistent corruption must surface, not loop.
/// Otherwise only fails when the source .mtx itself cannot be read.
/// `recovered`, when non-null, reports whether the fallback path ran.
[[nodiscard]] Expected<CsrMatrix> load_csr_cached(const std::string& mtx_path,
                                                  const std::string& cache_path,
                                                  bool* recovered = nullptr);

/// Throwing shims (raise SpmvException, which is-a std::runtime_error).
void write_csr_binary(std::ostream& out, const CsrMatrix& csr);
void write_csr_binary_file(const std::string& path, const CsrMatrix& csr);
[[nodiscard]] CsrMatrix read_csr_binary(std::istream& in);
[[nodiscard]] CsrMatrix read_csr_binary_file(const std::string& path);

}  // namespace spmvopt
