// Delta-compressed CSR (the MB-class optimization of Table II).
//
// Column indices are stored as deltas from the previous nonzero in the same
// row (Pooch & Nieder [23]); the first nonzero of each row keeps an absolute
// 32-bit base.  Per §III-E we use 8- OR 16-bit deltas — never a mix — to
// avoid branching in the kernel: one width is chosen for the whole matrix,
// and a matrix whose in-row gaps exceed 65535 is simply not encodable
// (the optimizer then falls back to plain CSR).
#pragma once

#include <cstdint>
#include <optional>

#include "sparse/csr.hpp"
#include "support/aligned.hpp"
#include "support/types.hpp"

namespace spmvopt {

enum class DeltaWidth : std::uint8_t { U8 = 1, U16 = 2 };

class DeltaCsrMatrix {
 public:
  /// Encode `csr`.  Returns std::nullopt when some in-row column gap does not
  /// fit the 16-bit delta (the format would need mixed widths, which the
  /// paper rules out).
  static std::optional<DeltaCsrMatrix> encode(const CsrMatrix& csr);

  /// The smallest width that can represent every in-row gap of `csr`,
  /// or nullopt when >16 bits would be needed.
  static std::optional<DeltaWidth> required_width(const CsrMatrix& csr);

  [[nodiscard]] index_t nrows() const noexcept { return nrows_; }
  [[nodiscard]] index_t ncols() const noexcept { return ncols_; }
  [[nodiscard]] index_t nnz() const noexcept {
    return nrows_ > 0 ? rowptr_[static_cast<std::size_t>(nrows_)] : 0;
  }
  [[nodiscard]] DeltaWidth width() const noexcept { return width_; }

  [[nodiscard]] const index_t* rowptr() const noexcept { return rowptr_.data(); }
  /// Absolute column of the first nonzero in each row (unused entry for
  /// empty rows).
  [[nodiscard]] const index_t* bases() const noexcept { return bases_.data(); }
  [[nodiscard]] const std::uint8_t* deltas8() const noexcept {
    return deltas8_.data();
  }
  [[nodiscard]] const std::uint16_t* deltas16() const noexcept {
    return deltas16_.data();
  }
  [[nodiscard]] const value_t* values() const noexcept { return values_.data(); }

  /// Bytes of this representation (rowptr + bases + deltas + values):
  /// the S_format that enters the P_MB bound after compression.
  [[nodiscard]] std::size_t format_bytes() const noexcept;

  /// Decode back to plain CSR (tests / round-trip verification).
  [[nodiscard]] CsrMatrix decode() const;

 private:
  DeltaCsrMatrix() = default;

  index_t nrows_ = 0;
  index_t ncols_ = 0;
  DeltaWidth width_ = DeltaWidth::U8;
  aligned_vector<index_t> rowptr_;
  aligned_vector<index_t> bases_;
  aligned_vector<std::uint8_t> deltas8_;
  aligned_vector<std::uint16_t> deltas16_;
  aligned_vector<value_t> values_;
};

}  // namespace spmvopt
