// Long-row decomposition (Fig. 5 / Fig. 6) — the IMB-class optimization for
// matrices with highly uneven row lengths.
//
// The matrix is split into (a) a "short" CSR part holding every row whose
// length is below the threshold (long rows become empty), and (b) the long
// rows stored densely packed.  SpMV then runs in two phases: a normal
// parallel pass over the short part, followed by a pass where *every* long
// row is computed by all threads cooperatively with a reduction of partial
// sums (§III-E).
#pragma once

#include "sparse/csr.hpp"
#include "support/aligned.hpp"
#include "support/types.hpp"

namespace spmvopt {

class SplitCsrMatrix {
 public:
  /// Move rows with nnz >= `long_row_threshold` into the long part.
  /// Throws std::invalid_argument for threshold < 1.
  static SplitCsrMatrix split(const CsrMatrix& csr, index_t long_row_threshold);

  /// Default threshold used by the optimizer: rows at least
  /// max(64, 8 * nnz_avg) nonzeros long count as "long".
  [[nodiscard]] static index_t default_threshold(const CsrMatrix& csr);

  [[nodiscard]] const CsrMatrix& short_part() const noexcept { return short_; }
  [[nodiscard]] index_t num_long_rows() const noexcept {
    return static_cast<index_t>(long_rows_.size());
  }
  /// Row id of the k-th long row (the paper's `lrowind`).
  [[nodiscard]] const index_t* long_rows() const noexcept {
    return long_rows_.data();
  }
  /// Offsets into long_colind/long_values per long row; size L+1.
  [[nodiscard]] const index_t* long_rowptr() const noexcept {
    return long_rowptr_.data();
  }
  [[nodiscard]] const index_t* long_colind() const noexcept {
    return long_colind_.data();
  }
  [[nodiscard]] const value_t* long_values() const noexcept {
    return long_values_.data();
  }

  [[nodiscard]] index_t nrows() const noexcept { return short_.nrows(); }
  [[nodiscard]] index_t ncols() const noexcept { return short_.ncols(); }
  /// Total nonzeros across both parts (== original matrix nnz).
  [[nodiscard]] index_t nnz() const noexcept;

  /// Reassemble the original matrix (round-trip verification in tests).
  [[nodiscard]] CsrMatrix merge() const;

 private:
  SplitCsrMatrix() = default;

  CsrMatrix short_;
  aligned_vector<index_t> long_rows_;
  aligned_vector<index_t> long_rowptr_;
  aligned_vector<index_t> long_colind_;
  aligned_vector<value_t> long_values_;
};

}  // namespace spmvopt
