#include "sparse/sell.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace spmvopt {

SellMatrix SellMatrix::from_csr(const CsrMatrix& csr, index_t chunk,
                                index_t sigma) {
  if (chunk < 1) throw std::invalid_argument("SellMatrix: chunk < 1");
  if (sigma < 1) throw std::invalid_argument("SellMatrix: sigma < 1");

  SellMatrix m;
  m.nrows_ = csr.nrows();
  m.ncols_ = csr.ncols();
  m.nnz_ = csr.nnz();
  m.chunk_ = chunk;

  const index_t n = csr.nrows();
  m.row_perm_.resize(static_cast<std::size_t>(n));
  std::iota(m.row_perm_.begin(), m.row_perm_.end(), index_t{0});
  // Sort by descending row length inside each σ window: chunks become
  // near-uniform, minimizing padding without destroying all locality.
  for (index_t w = 0; w < n; w += sigma) {
    const index_t hi = std::min<index_t>(n, w + sigma);
    std::stable_sort(m.row_perm_.begin() + w, m.row_perm_.begin() + hi,
                     [&csr](index_t a, index_t b) {
                       return csr.row_nnz(a) > csr.row_nnz(b);
                     });
  }

  m.row_len_.resize(static_cast<std::size_t>(n));
  for (index_t p = 0; p < n; ++p)
    m.row_len_[static_cast<std::size_t>(p)] =
        csr.row_nnz(m.row_perm_[static_cast<std::size_t>(p)]);

  // Chunk layout.
  const index_t nchunks = n > 0 ? (n + chunk - 1) / chunk : 0;
  m.chunk_len_.resize(static_cast<std::size_t>(nchunks));
  m.chunk_ptr_.resize(static_cast<std::size_t>(nchunks) + 1);
  m.chunk_ptr_[0] = 0;
  for (index_t c = 0; c < nchunks; ++c) {
    index_t width = 0;
    for (index_t lane = 0; lane < chunk; ++lane) {
      const index_t p = c * chunk + lane;
      if (p < n) width = std::max(width, m.row_len_[static_cast<std::size_t>(p)]);
    }
    m.chunk_len_[static_cast<std::size_t>(c)] = width;
    m.chunk_ptr_[static_cast<std::size_t>(c) + 1] =
        m.chunk_ptr_[static_cast<std::size_t>(c)] + width * chunk;
  }

  // Fill, column-major within each chunk; padding points at column 0 with a
  // zero value (safe to multiply, no branch in the kernel).
  const auto total = static_cast<std::size_t>(m.chunk_ptr_.back());
  m.colind_.assign(total, 0);
  m.values_.assign(total, 0.0);
  for (index_t c = 0; c < nchunks; ++c) {
    const index_t base = m.chunk_ptr_[static_cast<std::size_t>(c)];
    const index_t width = m.chunk_len_[static_cast<std::size_t>(c)];
    for (index_t lane = 0; lane < chunk; ++lane) {
      const index_t p = c * chunk + lane;
      if (p >= n) continue;
      const index_t row = m.row_perm_[static_cast<std::size_t>(p)];
      const index_t lo = csr.rowptr()[row];
      const index_t len = csr.rowptr()[row + 1] - lo;
      for (index_t j = 0; j < len && j < width; ++j) {
        const auto dst = static_cast<std::size_t>(base + j * chunk + lane);
        m.colind_[dst] = csr.colind()[lo + j];
        m.values_[dst] = csr.values()[lo + j];
      }
    }
  }
  return m;
}

double SellMatrix::padding_overhead() const noexcept {
  if (nnz_ == 0) return 0.0;
  const auto stored = static_cast<double>(
      chunk_ptr_.empty() ? 0 : chunk_ptr_.back());
  return stored / static_cast<double>(nnz_) - 1.0;
}

std::size_t SellMatrix::format_bytes() const noexcept {
  return row_perm_.size() * sizeof(index_t) + row_len_.size() * sizeof(index_t) +
         chunk_ptr_.size() * sizeof(index_t) +
         chunk_len_.size() * sizeof(index_t) + colind_.size() * sizeof(index_t) +
         values_.size() * sizeof(value_t);
}

void SellMatrix::multiply(const value_t* x, value_t* y) const noexcept {
  const index_t nchunks = num_chunks();
  for (index_t c = 0; c < nchunks; ++c) {
    const index_t base = chunk_ptr_[static_cast<std::size_t>(c)];
    const index_t width = chunk_len_[static_cast<std::size_t>(c)];
    for (index_t lane = 0; lane < chunk_; ++lane) {
      const index_t p = c * chunk_ + lane;
      if (p >= nrows_) break;
      value_t sum = 0.0;
      for (index_t j = 0; j < width; ++j) {
        const auto k = static_cast<std::size_t>(base + j * chunk_ + lane);
        sum += values_[k] * x[colind_[k]];
      }
      y[row_perm_[static_cast<std::size_t>(p)]] = sum;
    }
  }
}

}  // namespace spmvopt
