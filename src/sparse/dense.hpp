// Row-major dense matrix: the obviously-correct reference all sparse kernels
// are validated against, plus small dense linear algebra for the GMRES solver.
#pragma once

#include <span>

#include "sparse/csr.hpp"
#include "support/types.hpp"

namespace spmvopt {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(index_t nrows, index_t ncols);

  static DenseMatrix from_csr(const CsrMatrix& csr);

  [[nodiscard]] index_t nrows() const noexcept { return nrows_; }
  [[nodiscard]] index_t ncols() const noexcept { return ncols_; }

  [[nodiscard]] value_t& at(index_t i, index_t j);
  [[nodiscard]] value_t at(index_t i, index_t j) const;

  void multiply(std::span<const value_t> x, std::span<value_t> y) const;

  /// Convert to CSR keeping entries with |v| > drop_tol.
  [[nodiscard]] CsrMatrix to_csr(value_t drop_tol = 0.0) const;

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  std::vector<value_t> data_;
};

}  // namespace spmvopt
