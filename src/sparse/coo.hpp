// Coordinate-format triplet builder.
//
// All generators and the Matrix Market reader produce COO; CSR (the storage
// format everything in the paper builds on) is derived from it.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace spmvopt {

struct Triplet {
  index_t row = 0;
  index_t col = 0;
  value_t value = 0.0;
};

class CooMatrix {
 public:
  CooMatrix() = default;
  /// Creates an empty nrows x ncols matrix.  Throws on negative dimensions.
  CooMatrix(index_t nrows, index_t ncols);

  /// Append one entry.  Throws std::out_of_range on invalid coordinates.
  void add(index_t row, index_t col, value_t value);

  /// Append `value` at (row,col) and (col,row); the diagonal only once.
  void add_symmetric(index_t row, index_t col, value_t value);

  /// Sort entries into row-major order and sum duplicates in place.
  void compress();

  [[nodiscard]] index_t nrows() const noexcept { return nrows_; }
  [[nodiscard]] index_t ncols() const noexcept { return ncols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<Triplet>& entries() const noexcept {
    return entries_;
  }
  void reserve(std::size_t n) { entries_.reserve(n); }

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  std::vector<Triplet> entries_;
};

}  // namespace spmvopt
