#include "sparse/sym_csr.hpp"

#include <omp.h>

#include <stdexcept>
#include <vector>

#include "support/cpu_info.hpp"
#include "support/partition.hpp"

namespace spmvopt {

SymCsrMatrix SymCsrMatrix::from_symmetric_csr(const CsrMatrix& full,
                                              value_t tol) {
  if (full.nrows() != full.ncols())
    throw std::invalid_argument("SymCsrMatrix: matrix must be square");
  if (!full.is_symmetric(tol))
    throw std::invalid_argument("SymCsrMatrix: matrix is not symmetric");

  CooMatrix coo(full.nrows(), full.ncols());
  for (index_t i = 0; i < full.nrows(); ++i)
    for (index_t k = full.rowptr()[i]; k < full.rowptr()[i + 1]; ++k)
      if (full.colind()[k] <= i) coo.add(i, full.colind()[k], full.values()[k]);
  coo.compress();

  SymCsrMatrix m;
  m.lower_ = CsrMatrix::from_coo(coo);
  m.full_nnz_ = full.nnz();
  return m;
}

void SymCsrMatrix::multiply(const value_t* x, value_t* y) const noexcept {
  const index_t n = lower_.nrows();
  for (index_t i = 0; i < n; ++i) y[i] = 0.0;
  for (index_t i = 0; i < n; ++i) {
    value_t sum = 0.0;
    for (index_t k = lower_.rowptr()[i]; k < lower_.rowptr()[i + 1]; ++k) {
      const index_t j = lower_.colind()[k];
      const value_t v = lower_.values()[k];
      sum += v * x[j];
      if (j != i) y[j] += v * x[i];  // the mirrored upper-triangle entry
    }
    y[i] += sum;
  }
}

CsrMatrix SymCsrMatrix::to_full() const {
  CooMatrix coo(lower_.nrows(), lower_.ncols());
  for (index_t i = 0; i < lower_.nrows(); ++i)
    for (index_t k = lower_.rowptr()[i]; k < lower_.rowptr()[i + 1]; ++k)
      coo.add_symmetric(i, lower_.colind()[k], lower_.values()[k]);
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

}  // namespace spmvopt

namespace spmvopt::kernels {

void spmv_sym(const SymCsrMatrix& A, const value_t* x, value_t* y,
              int nthreads) {
  const CsrMatrix& L = A.lower();
  const index_t n = L.nrows();
  const int t = nthreads > 0 ? nthreads : default_threads();
  const auto part = balanced_nnz_partition(L.rowptr(), n, t);

  // Per-thread scatter buffers for the mirrored contributions; thread 0
  // writes into y directly (its buffer IS y after the direct pass).
  std::vector<aligned_vector<value_t>> scratch(
      static_cast<std::size_t>(t), aligned_vector<value_t>());

#pragma omp parallel num_threads(t)
  {
    const int tid = omp_get_thread_num();
    auto& buf = scratch[static_cast<std::size_t>(tid)];
    buf.assign(static_cast<std::size_t>(n), 0.0);
    const index_t lo = part.bounds[static_cast<std::size_t>(tid)];
    const index_t hi = part.bounds[static_cast<std::size_t>(tid) + 1];
    for (index_t i = lo; i < hi; ++i) {
      value_t sum = 0.0;
      for (index_t k = L.rowptr()[i]; k < L.rowptr()[i + 1]; ++k) {
        const index_t j = L.colind()[k];
        const value_t v = L.values()[k];
        sum += v * x[j];
        if (j != i) buf[static_cast<std::size_t>(j)] += v * x[i];
      }
      buf[static_cast<std::size_t>(i)] += sum;
    }
#pragma omp barrier
    // Reduce the buffers into y, each thread owning a contiguous slice.
    const index_t r0 = static_cast<index_t>(
        static_cast<std::int64_t>(n) * tid / t);
    const index_t r1 = static_cast<index_t>(
        static_cast<std::int64_t>(n) * (tid + 1) / t);
    for (index_t i = r0; i < r1; ++i) {
      value_t acc = 0.0;
      for (int b = 0; b < t; ++b)
        acc += scratch[static_cast<std::size_t>(b)][static_cast<std::size_t>(i)];
      y[i] = acc;
    }
  }
}

}  // namespace spmvopt::kernels
