// Matrix reordering: Reverse Cuthill-McKee and permutation application.
//
// A complementary attack on the ML class: instead of hiding x-access latency
// with prefetching (Table II), RCM *removes* the irregularity by renumbering
// rows/columns so that neighbors get nearby indices, shrinking the matrix
// bandwidth and making x accesses cache-local.  Classic locality work the
// paper cites through Pichel et al. [3]; exposed here as another
// plug-and-play option for the extension pool.
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace spmvopt {

/// A row/column renumbering: perm[new_index] == old_index.
struct Permutation {
  std::vector<index_t> perm;

  [[nodiscard]] index_t size() const noexcept {
    return static_cast<index_t>(perm.size());
  }
  /// inverse()[old_index] == new_index.
  [[nodiscard]] std::vector<index_t> inverse() const;
  /// Throws std::invalid_argument unless this is a bijection on [0, size).
  void validate() const;
  static Permutation identity(index_t n);
};

/// Reverse Cuthill-McKee ordering of the symmetrized pattern of `A`
/// (A must be square).  BFS from a pseudo-peripheral vertex per connected
/// component, neighbors visited in increasing-degree order, result reversed.
[[nodiscard]] Permutation reverse_cuthill_mckee(const CsrMatrix& A);

/// Symmetric permutation B = P A P^T: B[i][j] = A[perm[i]][perm[j]].
/// SpMV relationship: B * (P x) == P * (A x), where (P v)[i] = v[perm[i]].
[[nodiscard]] CsrMatrix permute_symmetric(const CsrMatrix& A,
                                          const Permutation& p);

/// Gather / scatter helpers for moving vectors between orderings:
/// gather:  out[i] = v[perm[i]]   (old ordering -> new ordering)
/// scatter: out[perm[i]] = v[i]   (new ordering -> old ordering)
void permute_gather(const Permutation& p, const value_t* v, value_t* out);
void permute_scatter(const Permutation& p, const value_t* v, value_t* out);

/// Max |i - j| over stored entries — the quantity RCM minimizes.
[[nodiscard]] index_t matrix_bandwidth(const CsrMatrix& A);

}  // namespace spmvopt
