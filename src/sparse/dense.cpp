#include "sparse/dense.hpp"

#include <cmath>
#include <stdexcept>

namespace spmvopt {

DenseMatrix::DenseMatrix(index_t nrows, index_t ncols)
    : nrows_(nrows), ncols_(ncols) {
  if (nrows < 0 || ncols < 0)
    throw std::invalid_argument("DenseMatrix: negative dimension");
  data_.assign(static_cast<std::size_t>(nrows) * static_cast<std::size_t>(ncols),
               0.0);
}

DenseMatrix DenseMatrix::from_csr(const CsrMatrix& csr) {
  DenseMatrix d(csr.nrows(), csr.ncols());
  for (index_t i = 0; i < csr.nrows(); ++i)
    for (index_t j = csr.rowptr()[i]; j < csr.rowptr()[i + 1]; ++j)
      d.at(i, csr.colind()[j]) += csr.values()[j];
  return d;
}

value_t& DenseMatrix::at(index_t i, index_t j) {
  if (i < 0 || i >= nrows_ || j < 0 || j >= ncols_)
    throw std::out_of_range("DenseMatrix::at");
  return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(ncols_) +
               static_cast<std::size_t>(j)];
}

value_t DenseMatrix::at(index_t i, index_t j) const {
  return const_cast<DenseMatrix*>(this)->at(i, j);
}

void DenseMatrix::multiply(std::span<const value_t> x,
                           std::span<value_t> y) const {
  if (x.size() != static_cast<std::size_t>(ncols_) ||
      y.size() != static_cast<std::size_t>(nrows_))
    throw std::invalid_argument("DenseMatrix::multiply: size mismatch");
  for (index_t i = 0; i < nrows_; ++i) {
    value_t sum = 0.0;
    const value_t* row =
        data_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(ncols_);
    for (index_t j = 0; j < ncols_; ++j)
      sum += row[static_cast<std::size_t>(j)] * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = sum;
  }
}

CsrMatrix DenseMatrix::to_csr(value_t drop_tol) const {
  CooMatrix coo(nrows_, ncols_);
  for (index_t i = 0; i < nrows_; ++i)
    for (index_t j = 0; j < ncols_; ++j) {
      const value_t v = at(i, j);
      if (std::abs(v) > drop_tol) coo.add(i, j, v);
    }
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

}  // namespace spmvopt
