#include "kernels/sell_kernels.hpp"

#include <immintrin.h>

#include "kernels/team_body.hpp"

namespace spmvopt::kernels {

index_t sell_native_chunk() noexcept {
#if defined(__AVX512F__)
  return 8;
#elif defined(__AVX2__)
  return 4;
#else
  return 1;
#endif
}

namespace {

void sell_chunk_scalar(const SellMatrix& A, index_t c, const value_t* x,
                       value_t* y) noexcept {
  const index_t chunk = A.chunk();
  const index_t base = A.chunk_ptr()[c];
  const index_t width = A.chunk_len()[c];
  const index_t* colind = A.colind();
  const value_t* values = A.values();
  for (index_t lane = 0; lane < chunk; ++lane) {
    const index_t p = c * chunk + lane;
    if (p >= A.nrows()) break;
    value_t sum = 0.0;
    for (index_t j = 0; j < width; ++j) {
      const auto k = static_cast<std::size_t>(base + j * chunk + lane);
      sum += values[k] * x[colind[k]];
    }
    y[A.row_perm()[p]] = sum;
  }
}

#if defined(__AVX512F__)

void sell_chunk_simd(const SellMatrix& A, index_t c, const value_t* x,
                     value_t* y) noexcept {
  const index_t base = A.chunk_ptr()[c];
  const index_t width = A.chunk_len()[c];
  const index_t* colind = A.colind();
  const value_t* values = A.values();
  __m512d acc = _mm512_setzero_pd();
  for (index_t j = 0; j < width; ++j) {
    const auto k = base + j * 8;
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(colind + k));
    const __m512d xv =
        _mm512_mask_i32gather_pd(_mm512_setzero_pd(), 0xFF, idx, x, 8);
    acc = _mm512_fmadd_pd(_mm512_loadu_pd(values + k), xv, acc);
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, acc);
  const index_t p0 = c * 8;
  const index_t live = A.nrows() - p0 < 8 ? A.nrows() - p0 : 8;
  for (index_t lane = 0; lane < live; ++lane)
    y[A.row_perm()[p0 + lane]] = lanes[lane];
}

#elif defined(__AVX2__)

void sell_chunk_simd(const SellMatrix& A, index_t c, const value_t* x,
                     value_t* y) noexcept {
  const index_t base = A.chunk_ptr()[c];
  const index_t width = A.chunk_len()[c];
  const index_t* colind = A.colind();
  const value_t* values = A.values();
  __m256d acc = _mm256_setzero_pd();
  for (index_t j = 0; j < width; ++j) {
    const auto k = base + j * 4;
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(colind + k));
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(values + k),
                          _mm256_i32gather_pd(x, idx, 8), acc);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  const index_t p0 = c * 4;
  const index_t live = A.nrows() - p0 < 4 ? A.nrows() - p0 : 4;
  for (index_t lane = 0; lane < live; ++lane)
    y[A.row_perm()[p0 + lane]] = lanes[lane];
}

#else

void sell_chunk_simd(const SellMatrix& A, index_t c, const value_t* x,
                     value_t* y) noexcept {
  sell_chunk_scalar(A, c, x, y);
}

#endif

}  // namespace

void spmv_sell_chunks(const SellMatrix& A, index_t clo, index_t chi,
                      const value_t* x, value_t* y) noexcept {
  if (A.chunk() == sell_native_chunk()) {
    for (index_t c = clo; c < chi; ++c) sell_chunk_simd(A, c, x, y);
  } else {
    for (index_t c = clo; c < chi; ++c) sell_chunk_scalar(A, c, x, y);
  }
}

void spmv_sell(const SellMatrix& A, const value_t* x, value_t* y) noexcept {
  const index_t nchunks = A.num_chunks();
  if (A.chunk() == sell_native_chunk()) {
#pragma omp parallel for schedule(static)
    for (index_t c = 0; c < nchunks; ++c) sell_chunk_simd(A, c, x, y);
  } else {
#pragma omp parallel for schedule(static)
    for (index_t c = 0; c < nchunks; ++c) sell_chunk_scalar(A, c, x, y);
  }
}

}  // namespace spmvopt::kernels
