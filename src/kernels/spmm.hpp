// Multi-vector SpMV (SpMM): Y = A * X for a block of k right-hand sides.
//
// Block Krylov methods and multi-rhs solves amortize the matrix traffic over
// k vectors: the colind/value streams are read once per k products, lifting
// the flop:byte ratio by ~k and sidestepping the gather problem entirely —
// X rows are contiguous, so the SIMD unit runs on unit-stride data.  This is
// the classic answer to the paper's MB bottleneck when the *application*
// (not the format) can change.
#pragma once

#include <span>

#include "sparse/csr.hpp"
#include "support/partition.hpp"

namespace spmvopt::kernels {

/// Y = A * X.  X is row-major n_cols x k (x_j of rhs r at X[j*k + r]);
/// Y is row-major n_rows x k.  k >= 1.  Parallel over the row partition.
/// Hot path: unchecked, noexcept (DESIGN.md §8 run convention).
void spmm(const CsrMatrix& A, const RowPartition& part, const value_t* X,
          value_t* Y, index_t k) noexcept;

/// Checked overload (X.size() == ncols*k, Y.size() == nrows*k).
void spmm(const CsrMatrix& A, const RowPartition& part,
          std::span<const value_t> X, std::span<value_t> Y, index_t k);

/// Convenience: k separate SpMV calls (the unfused reference the fused
/// kernel is validated and benchmarked against).
void spmm_unfused(const CsrMatrix& A, const RowPartition& part,
                  const value_t* X, value_t* Y, index_t k) noexcept;

/// Checked overload of spmm_unfused.
void spmm_unfused(const CsrMatrix& A, const RowPartition& part,
                  std::span<const value_t> X, std::span<value_t> Y, index_t k);

}  // namespace spmvopt::kernels
