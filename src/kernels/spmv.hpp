// Parallel SpMV kernels: y = A * x.
//
// Hot paths: noexcept, no allocation, validated inputs assumed
// (x has A.ncols() entries, y has A.nrows()).  The *baseline* of the paper
// (§IV-A) is `spmv_balanced` — a static 1-D row partitioning where each
// thread owns a contiguous block with approximately equal nnz.
#pragma once

#include "kernels/row_body.hpp"
#include "sparse/csr.hpp"
#include "sparse/delta_csr.hpp"
#include "sparse/split_csr.hpp"
#include "support/partition.hpp"

namespace spmvopt::kernels {

/// Serial reference-speed kernel (Fig. 2 verbatim).
void spmv_serial(const CsrMatrix& A, const value_t* x, value_t* y) noexcept;

/// OpenMP schedule(static) over rows — equal row counts per thread.
void spmv_omp_static(const CsrMatrix& A, const value_t* x, value_t* y) noexcept;

/// The paper's baseline: balanced-nnz static partition.  When
/// `thread_seconds` is non-null it must have part.nthreads() entries and
/// receives each thread's kernel time (used by the P_IMB bound).
void spmv_balanced(const CsrMatrix& A, const RowPartition& part,
                   const value_t* x, value_t* y,
                   double* thread_seconds = nullptr) noexcept;

/// OpenMP schedule(dynamic, chunk).
void spmv_omp_dynamic(const CsrMatrix& A, const value_t* x, value_t* y,
                      int chunk) noexcept;

/// OpenMP schedule(guided).
void spmv_omp_guided(const CsrMatrix& A, const value_t* x, value_t* y) noexcept;

/// OpenMP schedule(auto) — the IMB optimization for computational
/// unevenness (Table II delegates the mapping to the runtime).
void spmv_omp_auto(const CsrMatrix& A, const value_t* x, value_t* y) noexcept;

/// Software prefetching on x (ML optimization): one prefetch per inner-loop
/// iteration at a fixed distance of `pf_dist` elements (§III-E: the number
/// of elements in one cache line), into L1.
void spmv_prefetch(const CsrMatrix& A, const RowPartition& part,
                   const value_t* x, value_t* y, index_t pf_dist) noexcept;

/// Vectorized (widest SIMD available at build time).
void spmv_vector(const CsrMatrix& A, const RowPartition& part,
                 const value_t* x, value_t* y) noexcept;

/// Inner-loop unrolling + vectorization (CMP optimization).
void spmv_unroll_vector(const CsrMatrix& A, const RowPartition& part,
                        const value_t* x, value_t* y) noexcept;

/// Delta-compressed column indices, scalar and vectorized (MB optimization).
void spmv_delta(const DeltaCsrMatrix& A, const RowPartition& part,
                const value_t* x, value_t* y) noexcept;
void spmv_delta_vector(const DeltaCsrMatrix& A, const RowPartition& part,
                       const value_t* x, value_t* y) noexcept;

/// Decomposed SpMV for matrices with very long rows (Fig. 6): phase 1 runs a
/// normal balanced pass over the short part, phase 2 computes every long row
/// with all threads plus a reduction.
void spmv_split(const SplitCsrMatrix& A, const RowPartition& short_part,
                const value_t* x, value_t* y) noexcept;

/// y = A^T * x (y has A.ncols() entries).  Utility kernel for solvers that
/// need the transpose product without materializing A^T; parallel over rows
/// with atomic column updates, so unlike the other kernels it is not
/// bitwise-deterministic across thread counts (FP addition order varies).
void spmv_transpose(const CsrMatrix& A, const value_t* x, value_t* y) noexcept;

/// P_ML micro-benchmark support (§III-B): a copy of A with every column
/// index set to the row index, turning all x accesses regular.  Running any
/// CSR kernel on the result realizes the latency-free upper bound.
[[nodiscard]] CsrMatrix make_regular_access_copy(const CsrMatrix& A);

/// P_CMP micro-benchmark kernel (§III-B): indirect references eliminated,
/// unit-stride accesses only (x[i] per row, colind never loaded).
void spmv_noindex(const CsrMatrix& A, const RowPartition& part,
                  const value_t* x, value_t* y) noexcept;

}  // namespace spmvopt::kernels
