// Composed kernels: the full optimization-combination space.
//
// The optimizer (§III-E) may *jointly* apply optimizations when multiple
// bottlenecks are detected, e.g. auto scheduling + prefetching + vectorization
// for an {ML, IMB} matrix.  Each combination is a template instantiation
// (our stand-in for the paper's JIT-generated code); `select_csr_kernel` /
// `select_delta_kernel` return the specialized function for a given
// (schedule, prefetch, compute) triple.
#pragma once

#include "kernels/row_body.hpp"
#include "sparse/csr.hpp"
#include "sparse/delta_csr.hpp"
#include "sparse/split_csr.hpp"
#include "support/partition.hpp"

namespace spmvopt::kernels {

enum class Sched { BalancedStatic, Auto, Dynamic };

/// Composed CSR kernel signature.  `pf_dist` is ignored unless the kernel was
/// selected with prefetch; `chunk` only matters for Sched::Dynamic.
using CsrKernelFn = void (*)(const CsrMatrix& A, const RowPartition& part,
                             const value_t* x, value_t* y, index_t pf_dist,
                             int chunk);

/// Composed delta-CSR kernel signature (width is dispatched internally).
using DeltaKernelFn = void (*)(const DeltaCsrMatrix& A,
                               const RowPartition& part, const value_t* x,
                               value_t* y, index_t pf_dist, int chunk);

[[nodiscard]] CsrKernelFn select_csr_kernel(Sched sched, bool prefetch,
                                            Compute compute);
[[nodiscard]] DeltaKernelFn select_delta_kernel(Sched sched, bool prefetch,
                                                Compute compute);

/// Decomposed SpMV with a configurable phase-1 kernel over the short part;
/// phase 2 (all-threads-per-long-row + reduction) is fixed.
void spmv_split_composed(const SplitCsrMatrix& A, const RowPartition& part,
                         const value_t* x, value_t* y, CsrKernelFn phase1,
                         index_t pf_dist, int chunk) noexcept;

}  // namespace spmvopt::kernels
