// Parallel / SIMD SpMV over SELL-C-σ.
//
// When the chunk height equals the machine's SIMD width (8 for AVX-512,
// 4 for AVX2), one vector register holds one accumulator per row of the
// chunk, and every step is a unit-stride load of C values + C columns and a
// gather from x — no horizontal reduction until the chunk ends.
#pragma once

#include "sparse/sell.hpp"

namespace spmvopt::kernels {

/// The chunk height for which the SIMD path exists on this build
/// (8 with AVX-512, 4 with AVX2, 1 otherwise).
[[nodiscard]] index_t sell_native_chunk() noexcept;

/// y = A * x, parallel over chunks; uses the SIMD path when
/// A.chunk() == sell_native_chunk(), a scalar loop otherwise.
void spmv_sell(const SellMatrix& A, const value_t* x, value_t* y) noexcept;

}  // namespace spmvopt::kernels
