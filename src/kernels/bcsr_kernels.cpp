#include "kernels/bcsr_kernels.hpp"

#include <algorithm>

#include "kernels/team_body.hpp"

namespace spmvopt::kernels {

namespace {

/// Full blocks only (callers route edge block rows to the generic path).
template <int BR, int BC>
inline void block_row_fixed(const BcsrMatrix& A, index_t bi, const value_t* x,
                            value_t* y) noexcept {
  const index_t* blockind = A.blockind();
  const value_t* values = A.values();
  value_t acc[BR] = {};
  for (index_t b = A.blockptr()[bi]; b < A.blockptr()[bi + 1]; ++b) {
    const value_t* blk = values + static_cast<std::size_t>(b) * (BR * BC);
    const value_t* xv = x + blockind[b] * BC;
    for (int r = 0; r < BR; ++r)
      for (int c = 0; c < BC; ++c) acc[r] += blk[r * BC + c] * xv[c];
  }
  value_t* yv = y + bi * BR;
  for (int r = 0; r < BR; ++r) yv[r] = acc[r];
}

void block_row_generic(const BcsrMatrix& A, index_t bi, const value_t* x,
                       value_t* y) noexcept {
  const index_t br = A.block_rows();
  const index_t bc = A.block_cols();
  const index_t r0 = bi * br;
  const index_t live_rows = std::min<index_t>(A.nrows() - r0, br);
  value_t acc[8] = {};
  for (index_t b = A.blockptr()[bi]; b < A.blockptr()[bi + 1]; ++b) {
    const index_t c0 = A.blockind()[b] * bc;
    const value_t* blk = A.values() + static_cast<std::size_t>(b) *
                                          static_cast<std::size_t>(br * bc);
    const index_t live_cols = std::min<index_t>(A.ncols() - c0, bc);
    for (index_t r = 0; r < live_rows; ++r)
      for (index_t c = 0; c < live_cols; ++c)
        acc[r] += blk[r * bc + c] * x[c0 + c];
  }
  for (index_t r = 0; r < live_rows; ++r) y[r0 + r] = acc[r];
}

/// Number of leading block rows that are full in both dimensions (the last
/// block row may hang over the matrix edge; blocks overhanging the right
/// edge only exist in that same tail when ncols % bc != 0 — but a *column*
/// overhang can occur anywhere, so the fast path also requires ncols % bc == 0).
index_t fast_block_rows(const BcsrMatrix& A) noexcept {
  if (A.ncols() % A.block_cols() != 0) return 0;
  return A.nrows() / A.block_rows();
}

}  // namespace

void spmv_bcsr_block_rows(const BcsrMatrix& A, index_t blo, index_t bhi,
                          const value_t* x, value_t* y) noexcept {
  const index_t fast = std::min(fast_block_rows(A), bhi);
  const index_t br = A.block_rows();
  const index_t bc = A.block_cols();
  index_t bi = blo;
  if (br == 2 && bc == 2) {
    for (; bi < fast; ++bi) block_row_fixed<2, 2>(A, bi, x, y);
  } else if (br == 4 && bc == 4) {
    for (; bi < fast; ++bi) block_row_fixed<4, 4>(A, bi, x, y);
  } else if (br == 8 && bc == 8) {
    for (; bi < fast; ++bi) block_row_fixed<8, 8>(A, bi, x, y);
  } else {
    for (; bi < fast; ++bi) block_row_generic(A, bi, x, y);
  }
  for (; bi < bhi; ++bi) block_row_generic(A, bi, x, y);
}

void spmv_bcsr(const BcsrMatrix& A, const value_t* x, value_t* y) noexcept {
  const index_t nbrows = A.num_block_rows();
  const index_t fast = fast_block_rows(A);
  const index_t br = A.block_rows();
  const index_t bc = A.block_cols();

  if (br == 2 && bc == 2) {
#pragma omp parallel for schedule(static)
    for (index_t bi = 0; bi < fast; ++bi) block_row_fixed<2, 2>(A, bi, x, y);
  } else if (br == 4 && bc == 4) {
#pragma omp parallel for schedule(static)
    for (index_t bi = 0; bi < fast; ++bi) block_row_fixed<4, 4>(A, bi, x, y);
  } else if (br == 8 && bc == 8) {
#pragma omp parallel for schedule(static)
    for (index_t bi = 0; bi < fast; ++bi) block_row_fixed<8, 8>(A, bi, x, y);
  } else {
#pragma omp parallel for schedule(static)
    for (index_t bi = 0; bi < fast; ++bi) block_row_generic(A, bi, x, y);
  }
  for (index_t bi = fast; bi < nbrows; ++bi) block_row_generic(A, bi, x, y);
}

}  // namespace spmvopt::kernels
