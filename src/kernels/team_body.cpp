#include "kernels/team_body.hpp"

namespace spmvopt::kernels {

namespace {

template <Compute C, bool PF>
void csr_range_t(const index_t* rowptr, const index_t* colind,
                 const value_t* vals, index_t lo, index_t hi, const value_t* x,
                 value_t* y, index_t pf_dist) {
  for (index_t i = lo; i < hi; ++i)
    y[i] = row_sum<C, PF>(vals + rowptr[i], colind + rowptr[i],
                          rowptr[i + 1] - rowptr[i], x, pf_dist);
}

template <Compute C, bool PF, class DeltaT>
void delta_range_rows(const DeltaCsrMatrix& A, const DeltaT* deltas,
                      index_t lo, index_t hi, const value_t* x, value_t* y,
                      index_t pf_dist) {
  const index_t* rowptr = A.rowptr();
  const index_t* bases = A.bases();
  const value_t* vals = A.values();
  for (index_t i = lo; i < hi; ++i)
    y[i] = row_sum_delta<C, PF>(vals + rowptr[i], deltas + rowptr[i], bases[i],
                                rowptr[i + 1] - rowptr[i], x, pf_dist);
}

template <Compute C, bool PF>
void delta_range_t(const DeltaCsrMatrix& A, index_t lo, index_t hi,
                   const value_t* x, value_t* y, index_t pf_dist) {
  if (A.width() == DeltaWidth::U8)
    delta_range_rows<C, PF>(A, A.deltas8(), lo, hi, x, y, pf_dist);
  else
    delta_range_rows<C, PF>(A, A.deltas16(), lo, hi, x, y, pf_dist);
}

template <class Fn, template <Compute, bool> class KernelT>
Fn select_range(Compute compute, bool prefetch) {
  if (prefetch) {
    switch (compute) {
      case Compute::Scalar: return KernelT<Compute::Scalar, true>::fn;
      case Compute::Vector: return KernelT<Compute::Vector, true>::fn;
      case Compute::UnrollVector:
        return KernelT<Compute::UnrollVector, true>::fn;
    }
  } else {
    switch (compute) {
      case Compute::Scalar: return KernelT<Compute::Scalar, false>::fn;
      case Compute::Vector: return KernelT<Compute::Vector, false>::fn;
      case Compute::UnrollVector:
        return KernelT<Compute::UnrollVector, false>::fn;
    }
  }
  return KernelT<Compute::Scalar, false>::fn;
}

template <Compute C, bool PF>
struct CsrRange {
  static constexpr CsrRangeFn fn = &csr_range_t<C, PF>;
};

template <Compute C, bool PF>
struct DeltaRange {
  static constexpr DeltaRangeFn fn = &delta_range_t<C, PF>;
};

template <Compute C, bool PF>
struct MergeSpan {
  static constexpr MergeSpanFn fn = &merge_span<C, PF>;
};

}  // namespace

CsrRangeFn select_csr_range(Compute compute, bool prefetch) {
  return select_range<CsrRangeFn, CsrRange>(compute, prefetch);
}

DeltaRangeFn select_delta_range(Compute compute, bool prefetch) {
  return select_range<DeltaRangeFn, DeltaRange>(compute, prefetch);
}

MergeSpanFn select_merge_span(Compute compute, bool prefetch) {
  return select_range<MergeSpanFn, MergeSpan>(compute, prefetch);
}

value_t long_row_partial(const index_t* colind, const value_t* vals,
                         index_t jlo, index_t jhi, const value_t* x) noexcept {
  value_t sum = 0.0;
  for (index_t j = jlo; j < jhi; ++j) sum += vals[j] * x[colind[j]];
  return sum;
}

}  // namespace spmvopt::kernels
