// Parallel SpMV over register-blocked CSR.
//
// R accumulators live in registers for the whole block row; x is read
// contiguously per block (the register-blocking win of OSKI [26]).
// Specialized inner loops exist for the common 2x2 and 4x4 shapes; other
// shapes use the generic loop.
#pragma once

#include "sparse/bcsr.hpp"

namespace spmvopt::kernels {

/// y = A * x, parallel over block rows.
void spmv_bcsr(const BcsrMatrix& A, const value_t* x, value_t* y) noexcept;

}  // namespace spmvopt::kernels
