#include "kernels/compose.hpp"

#include <omp.h>

#include <stdexcept>

namespace spmvopt::kernels {

namespace {

template <Sched S, bool PF, Compute C>
void csr_kernel_t(const CsrMatrix& A, const RowPartition& part,
                  const value_t* x, value_t* y, index_t pf_dist, int chunk) {
  const index_t* rowptr = A.rowptr();
  const index_t* colind = A.colind();
  const value_t* vals = A.values();
  const index_t n = A.nrows();
  if constexpr (S == Sched::BalancedStatic) {
    (void)chunk;
#pragma omp parallel num_threads(part.nthreads())
    {
      const int t = omp_get_thread_num();
      const index_t lo = part.bounds[static_cast<std::size_t>(t)];
      const index_t hi = part.bounds[static_cast<std::size_t>(t) + 1];
      for (index_t i = lo; i < hi; ++i)
        y[i] = row_sum<C, PF>(vals + rowptr[i], colind + rowptr[i],
                              rowptr[i + 1] - rowptr[i], x, pf_dist);
    }
  } else if constexpr (S == Sched::Auto) {
    (void)part;
    (void)chunk;
#pragma omp parallel for schedule(auto)
    for (index_t i = 0; i < n; ++i)
      y[i] = row_sum<C, PF>(vals + rowptr[i], colind + rowptr[i],
                            rowptr[i + 1] - rowptr[i], x, pf_dist);
  } else {
    (void)part;
#pragma omp parallel for schedule(dynamic, chunk)
    for (index_t i = 0; i < n; ++i)
      y[i] = row_sum<C, PF>(vals + rowptr[i], colind + rowptr[i],
                            rowptr[i + 1] - rowptr[i], x, pf_dist);
  }
}

template <Sched S, bool PF, Compute C, class DeltaT>
void delta_rows(const DeltaCsrMatrix& A, const DeltaT* deltas,
                const RowPartition& part, const value_t* x, value_t* y,
                index_t pf_dist, int chunk) {
  const index_t* rowptr = A.rowptr();
  const index_t* bases = A.bases();
  const value_t* vals = A.values();
  const index_t n = A.nrows();
  if constexpr (S == Sched::BalancedStatic) {
    (void)chunk;
#pragma omp parallel num_threads(part.nthreads())
    {
      const int t = omp_get_thread_num();
      const index_t lo = part.bounds[static_cast<std::size_t>(t)];
      const index_t hi = part.bounds[static_cast<std::size_t>(t) + 1];
      for (index_t i = lo; i < hi; ++i)
        y[i] = row_sum_delta<C, PF>(vals + rowptr[i], deltas + rowptr[i],
                                    bases[i], rowptr[i + 1] - rowptr[i], x,
                                    pf_dist);
    }
  } else if constexpr (S == Sched::Auto) {
    (void)part;
    (void)chunk;
#pragma omp parallel for schedule(auto)
    for (index_t i = 0; i < n; ++i)
      y[i] = row_sum_delta<C, PF>(vals + rowptr[i], deltas + rowptr[i],
                                  bases[i], rowptr[i + 1] - rowptr[i], x,
                                  pf_dist);
  } else {
    (void)part;
#pragma omp parallel for schedule(dynamic, chunk)
    for (index_t i = 0; i < n; ++i)
      y[i] = row_sum_delta<C, PF>(vals + rowptr[i], deltas + rowptr[i],
                                  bases[i], rowptr[i + 1] - rowptr[i], x,
                                  pf_dist);
  }
}

template <Sched S, bool PF, Compute C>
void delta_kernel_t(const DeltaCsrMatrix& A, const RowPartition& part,
                    const value_t* x, value_t* y, index_t pf_dist, int chunk) {
  if (A.width() == DeltaWidth::U8)
    delta_rows<S, PF, C>(A, A.deltas8(), part, x, y, pf_dist, chunk);
  else
    delta_rows<S, PF, C>(A, A.deltas16(), part, x, y, pf_dist, chunk);
}

template <template <Sched, bool, Compute> class KernelT, class Fn>
Fn select(Sched sched, bool prefetch, Compute compute) {
  // 3 x 2 x 3 instantiations, resolved by a nested switch.
  switch (sched) {
    case Sched::BalancedStatic:
      if (prefetch) {
        switch (compute) {
          case Compute::Scalar: return KernelT<Sched::BalancedStatic, true, Compute::Scalar>::fn;
          case Compute::Vector: return KernelT<Sched::BalancedStatic, true, Compute::Vector>::fn;
          case Compute::UnrollVector: return KernelT<Sched::BalancedStatic, true, Compute::UnrollVector>::fn;
        }
      } else {
        switch (compute) {
          case Compute::Scalar: return KernelT<Sched::BalancedStatic, false, Compute::Scalar>::fn;
          case Compute::Vector: return KernelT<Sched::BalancedStatic, false, Compute::Vector>::fn;
          case Compute::UnrollVector: return KernelT<Sched::BalancedStatic, false, Compute::UnrollVector>::fn;
        }
      }
      break;
    case Sched::Auto:
      if (prefetch) {
        switch (compute) {
          case Compute::Scalar: return KernelT<Sched::Auto, true, Compute::Scalar>::fn;
          case Compute::Vector: return KernelT<Sched::Auto, true, Compute::Vector>::fn;
          case Compute::UnrollVector: return KernelT<Sched::Auto, true, Compute::UnrollVector>::fn;
        }
      } else {
        switch (compute) {
          case Compute::Scalar: return KernelT<Sched::Auto, false, Compute::Scalar>::fn;
          case Compute::Vector: return KernelT<Sched::Auto, false, Compute::Vector>::fn;
          case Compute::UnrollVector: return KernelT<Sched::Auto, false, Compute::UnrollVector>::fn;
        }
      }
      break;
    case Sched::Dynamic:
      if (prefetch) {
        switch (compute) {
          case Compute::Scalar: return KernelT<Sched::Dynamic, true, Compute::Scalar>::fn;
          case Compute::Vector: return KernelT<Sched::Dynamic, true, Compute::Vector>::fn;
          case Compute::UnrollVector: return KernelT<Sched::Dynamic, true, Compute::UnrollVector>::fn;
        }
      } else {
        switch (compute) {
          case Compute::Scalar: return KernelT<Sched::Dynamic, false, Compute::Scalar>::fn;
          case Compute::Vector: return KernelT<Sched::Dynamic, false, Compute::Vector>::fn;
          case Compute::UnrollVector: return KernelT<Sched::Dynamic, false, Compute::UnrollVector>::fn;
        }
      }
      break;
  }
  throw std::invalid_argument("select_kernel: invalid configuration");
}

template <Sched S, bool PF, Compute C>
struct CsrKernel {
  static constexpr CsrKernelFn fn = &csr_kernel_t<S, PF, C>;
};

template <Sched S, bool PF, Compute C>
struct DeltaKernel {
  static constexpr DeltaKernelFn fn = &delta_kernel_t<S, PF, C>;
};

}  // namespace

CsrKernelFn select_csr_kernel(Sched sched, bool prefetch, Compute compute) {
  return select<CsrKernel, CsrKernelFn>(sched, prefetch, compute);
}

DeltaKernelFn select_delta_kernel(Sched sched, bool prefetch, Compute compute) {
  return select<DeltaKernel, DeltaKernelFn>(sched, prefetch, compute);
}

void spmv_split_composed(const SplitCsrMatrix& A, const RowPartition& part,
                         const value_t* x, value_t* y, CsrKernelFn phase1,
                         index_t pf_dist, int chunk) noexcept {
  phase1(A.short_part(), part, x, y, pf_dist, chunk);

  const index_t L = A.num_long_rows();
  const index_t* lrows = A.long_rows();
  const index_t* lrowptr = A.long_rowptr();
  const index_t* lcolind = A.long_colind();
  const value_t* lvals = A.long_values();
  for (index_t k = 0; k < L; ++k) {
    const index_t lo = lrowptr[k];
    const index_t hi = lrowptr[k + 1];
    value_t sum = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : sum)
    for (index_t j = lo; j < hi; ++j) sum += lvals[j] * x[lcolind[j]];
    y[lrows[k]] = sum;
  }
}

}  // namespace spmvopt::kernels
