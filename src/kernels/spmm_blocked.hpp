// Register-blocked multi-RHS SpMM with mixed-precision value modes
// (DESIGN.md §13).
//
// The kernel vectorizes ACROSS right-hand-side columns instead of along a
// row: operands are packed row-major (element (j, r) of an n×k block at
// `X[j*k + r]`), so each nonzero a_ij contributes one broadcast multiply
// against a unit-stride slice of X's row j.  A column block wide enough to
// fill two vector registers stays resident in registers across the whole
// row — per nonzero that is 1 value load + 1 column-index load + 2 FMAs,
// versus SpMV's gather-limited 1 load + 1 gather + horizontal reduction.
// Matrix traffic (the MB-class bottleneck, paper §V) is amortized over k
// columns.
//
// Determinism contract: for a fixed SpmmRangeFn, each (row, column) output
// is accumulated in ascending-j order in a dedicated register lane — the
// result is a pure function of the row range, bitwise identical across
// thread counts, execution modes, and call batching.  Different ISAs (or
// the scalar fallback) may round differently (FMA contraction); cross-ISA
// comparisons go through the ULP/forward-bound oracle, not bitwise.
#pragma once

#include "support/dtype.hpp"
#include "support/types.hpp"

namespace spmvopt::kernels {

/// Instruction set of a blocked-SpMM variant.  Registration is gated by
/// the compile-time macros (`__AVX2__` / `__AVX512F__`): with
/// SPMVOPT_NATIVE the binary targets the build host, so compile-time
/// support IS runtime support, and AVX-512 variants simply do not register
/// on hosts without it.
enum class SpmmIsa : std::uint8_t { Scalar = 0, Avx2 = 1, Avx512 = 2 };

[[nodiscard]] const char* spmm_isa_name(SpmmIsa isa) noexcept;

/// True when the ISA's kernels are compiled into this binary.
[[nodiscard]] bool spmm_isa_available(SpmmIsa isa) noexcept;

/// Widest ISA compiled into this binary.
[[nodiscard]] SpmmIsa spmm_best_isa() noexcept;

/// Fused blocked SpMM over the row range [lo, hi).  Buffer element types
/// are fixed by the Precision the function was selected for:
///
///   precision   vals     Xp / Yp    accumulate
///   F64         double   double     double
///   F32         float    float      float
///   F32F64      float    double     double
///
/// Xp is row-major ncols×k, Yp row-major nrows×k (only rows [lo,hi) are
/// written).  k >= 1; k == 1 degenerates to SpMV.
using SpmmRangeFn = void (*)(const index_t* rowptr, const index_t* colind,
                             const void* vals, index_t lo, index_t hi,
                             const void* Xp, void* Yp, index_t k);

/// Kernel for (isa, precision); nullptr when the ISA is not compiled in.
[[nodiscard]] SpmmRangeFn select_spmm_range(SpmmIsa isa,
                                            Precision prec) noexcept;

/// Pack `k` vector-major double vectors of length n (the run_many layout,
/// vector r at X + r*n) into a row-major n×k block in `prec`'s operand
/// dtype.  Xp must hold n*k elements of that dtype.
void spmm_pack_rhs(const value_t* X, index_t n, index_t k, void* Xp,
                   Precision prec) noexcept;

/// Inverse of spmm_pack_rhs for the result block: row-major n×k in `prec`'s
/// operand dtype back to k vector-major double vectors.
void spmm_unpack_result(const void* Yp, index_t n, index_t k, value_t* Y,
                        Precision prec) noexcept;

}  // namespace spmvopt::kernels
