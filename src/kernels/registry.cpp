#include "kernels/registry.hpp"

#include <omp.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "kernels/bcsr_kernels.hpp"
#include "kernels/merge_csr.hpp"
#include "kernels/sell_kernels.hpp"
#include "kernels/spmm_blocked.hpp"
#include "kernels/spmv.hpp"
#include "kernels/team_body.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/delta_csr.hpp"
#include "sparse/sell.hpp"
#include "sparse/split_csr.hpp"
#include "sparse/sym_csr.hpp"
#include "support/cpu_info.hpp"
#include "support/partition.hpp"

namespace spmvopt::kernels {

namespace {

RowPartition make_part(const CsrMatrix& a, int threads) {
  return balanced_nnz_partition(a.rowptr(), a.nrows(), threads);
}

BoundSpmv bind_serial(const CsrMatrix& a, int) {
  return [a = &a](const value_t* x, value_t* y) { spmv_serial(*a, x, y); };
}

BoundSpmv bind_omp_static(const CsrMatrix& a, int) {
  return [a = &a](const value_t* x, value_t* y) { spmv_omp_static(*a, x, y); };
}

BoundSpmv bind_balanced(const CsrMatrix& a, int t) {
  return [a = &a, part = make_part(a, t)](const value_t* x, value_t* y) {
    spmv_balanced(*a, part, x, y);
  };
}

BoundSpmv bind_omp_dynamic(const CsrMatrix& a, int) {
  return [a = &a](const value_t* x, value_t* y) {
    spmv_omp_dynamic(*a, x, y, 64);
  };
}

BoundSpmv bind_omp_guided(const CsrMatrix& a, int) {
  return [a = &a](const value_t* x, value_t* y) { spmv_omp_guided(*a, x, y); };
}

BoundSpmv bind_omp_auto(const CsrMatrix& a, int) {
  return [a = &a](const value_t* x, value_t* y) { spmv_omp_auto(*a, x, y); };
}

BoundSpmv bind_prefetch(const CsrMatrix& a, int t) {
  const auto pf = static_cast<index_t>(cpu_info().doubles_per_line());
  return [a = &a, part = make_part(a, t), pf](const value_t* x, value_t* y) {
    spmv_prefetch(*a, part, x, y, pf);
  };
}

BoundSpmv bind_vector(const CsrMatrix& a, int t) {
  return [a = &a, part = make_part(a, t)](const value_t* x, value_t* y) {
    spmv_vector(*a, part, x, y);
  };
}

BoundSpmv bind_unroll_vector(const CsrMatrix& a, int t) {
  return [a = &a, part = make_part(a, t)](const value_t* x, value_t* y) {
    spmv_unroll_vector(*a, part, x, y);
  };
}

BoundSpmv bind_delta(const CsrMatrix& a, int t) {
  auto d = DeltaCsrMatrix::encode(a);
  if (!d) return {};
  auto shared = std::make_shared<DeltaCsrMatrix>(std::move(*d));
  return [shared, part = make_part(a, t)](const value_t* x, value_t* y) {
    spmv_delta(*shared, part, x, y);
  };
}

BoundSpmv bind_delta_vector(const CsrMatrix& a, int t) {
  auto d = DeltaCsrMatrix::encode(a);
  if (!d) return {};
  auto shared = std::make_shared<DeltaCsrMatrix>(std::move(*d));
  return [shared, part = make_part(a, t)](const value_t* x, value_t* y) {
    spmv_delta_vector(*shared, part, x, y);
  };
}

BoundSpmv bind_split(const CsrMatrix& a, int t) {
  auto s = std::make_shared<SplitCsrMatrix>(
      SplitCsrMatrix::split(a, SplitCsrMatrix::default_threshold(a)));
  RowPartition part = balanced_nnz_partition(s->short_part().rowptr(),
                                             s->short_part().nrows(), t);
  return [s, part = std::move(part)](const value_t* x, value_t* y) {
    spmv_split(*s, part, x, y);
  };
}

BoundSpmv bind_merge(const CsrMatrix& a, int t) {
  auto part = std::make_shared<const MergePartition>(
      merge_partition(a.rowptr(), a.nrows(), a.nnz(), t));
  auto carry = std::make_shared<MergeCarry>();
  carry->resize(part->nworkers());
  const MergeSpanFn span = select_merge_span(Compute::Scalar, false);
  return [a = &a, part, carry, span](const value_t* x, value_t* y) {
    spmv_merge(*a, *part, *carry, x, y, span, 0);
  };
}

BoundSpmv bind_sym(const CsrMatrix& a, int t) {
  if (a.nrows() != a.ncols() || !a.is_symmetric()) return {};
  auto s = std::make_shared<SymCsrMatrix>(SymCsrMatrix::from_symmetric_csr(a));
  return [s, t](const value_t* x, value_t* y) { spmv_sym(*s, x, y, t); };
}

BoundSpmv bind_sell(const CsrMatrix& a, int) {
  const index_t c = sell_native_chunk();
  auto s = std::make_shared<SellMatrix>(SellMatrix::from_csr(a, c, 32 * c));
  return [s](const value_t* x, value_t* y) { spmv_sell(*s, x, y); };
}

BoundSpmv bind_bcsr(const CsrMatrix& a, int) {
  auto [br, bc] = BcsrMatrix::choose_block_size(a);
  if (br * bc <= 1) {
    br = 2;  // blocking doesn't pay here, but the kernel is still correct
    bc = 2;
  }
  auto b = std::make_shared<BcsrMatrix>(BcsrMatrix::from_csr(a, br, bc));
  return [b](const value_t* x, value_t* y) { spmv_bcsr(*b, x, y); };
}

// ---------------------------------------------------------------------------
// spmm.* — register-blocked multi-RHS variants (DESIGN.md §13).  One bound
// state per (matrix, threads): the balanced partition plus, for the f32/
// f32x64 value modes, a shared float copy of the value stream made once at
// bind (that copy IS the variant's storage format, like delta's encoding).
// The closures speak vector-major double at the boundary and pack/convert
// per call, so every registry consumer (differential, bench, CLI) drives
// them like any other variant.
// ---------------------------------------------------------------------------

struct SpmmState {
  const CsrMatrix* a;
  RowPartition part;
  std::shared_ptr<const std::vector<float>> vals_f32;  // null for F64
  SpmmRangeFn fn;

  [[nodiscard]] const void* values(Precision prec) const noexcept {
    return prec == Precision::F64 ? static_cast<const void*>(a->values())
                                  : static_cast<const void*>(vals_f32->data());
  }
};

template <Precision P>
std::shared_ptr<const SpmmState> make_spmm_state(const CsrMatrix& a, int t,
                                                 SpmmIsa isa) {
  const SpmmRangeFn fn = select_spmm_range(isa, P);
  if (fn == nullptr) return nullptr;
  auto st = std::make_shared<SpmmState>();
  st->a = &a;
  st->part = make_part(a, t);
  st->fn = fn;
  if constexpr (P != Precision::F64) {
    auto vals = std::make_shared<std::vector<float>>(
        static_cast<std::size_t>(a.nnz()));
    const value_t* src = a.values();
    for (std::size_t j = 0; j < vals->size(); ++j)
      (*vals)[j] = static_cast<float>(src[j]);
    st->vals_f32 = std::move(vals);
  }
  return st;
}

/// Pack, run the fused kernel over the bound partition, unpack.
template <Precision P>
void spmm_state_run(const SpmmState& st, const value_t* X, value_t* Y,
                    index_t k) {
  const CsrMatrix& a = *st.a;
  const std::size_t xp_n = static_cast<std::size_t>(a.ncols()) *
                           static_cast<std::size_t>(k);
  const std::size_t yp_n = static_cast<std::size_t>(a.nrows()) *
                           static_cast<std::size_t>(k);
  // Per-call scratch: concurrent callers of one bound closure are safe.
  if constexpr (operand_dtype(P) == Dtype::F32) {
    std::vector<float> xp(xp_n), yp(yp_n);
    spmm_pack_rhs(X, a.ncols(), k, xp.data(), P);
#pragma omp parallel num_threads(st.part.nthreads())
    {
      const auto t = static_cast<std::size_t>(omp_get_thread_num());
      st.fn(a.rowptr(), a.colind(), st.values(P), st.part.bounds[t],
            st.part.bounds[t + 1], xp.data(), yp.data(), k);
    }
    spmm_unpack_result(yp.data(), a.nrows(), k, Y, P);
  } else {
    std::vector<double> xp(xp_n), yp(yp_n);
    spmm_pack_rhs(X, a.ncols(), k, xp.data(), P);
#pragma omp parallel num_threads(st.part.nthreads())
    {
      const auto t = static_cast<std::size_t>(omp_get_thread_num());
      st.fn(a.rowptr(), a.colind(), st.values(P), st.part.bounds[t],
            st.part.bounds[t + 1], xp.data(), yp.data(), k);
    }
    spmm_unpack_result(yp.data(), a.nrows(), k, Y, P);
  }
}

template <SpmmIsa ISA, Precision P>
BoundSpmv bind_spmm_spmv(const CsrMatrix& a, int t) {
  auto st = make_spmm_state<P>(a, t, ISA);
  if (st == nullptr) return {};
  return [st = std::move(st)](const value_t* x, value_t* y) {
    spmm_state_run<P>(*st, x, y, 1);
  };
}

template <SpmmIsa ISA, Precision P>
BoundSpmm bind_spmm_many(const CsrMatrix& a, int t) {
  auto st = make_spmm_state<P>(a, t, ISA);
  if (st == nullptr) return {};
  return [st = std::move(st)](const value_t* X, value_t* Y, index_t nrhs) {
    spmm_state_run<P>(*st, X, Y, nrhs);
  };
}

}  // namespace

const std::vector<KernelVariant>& registry() {
  static const std::vector<KernelVariant> table = {
      {"serial", {}, false, &bind_serial},
      {"omp_static", {}, false, &bind_omp_static},
      {"balanced", {}, false, &bind_balanced},
      {"omp_dynamic", {}, false, &bind_omp_dynamic},
      {"omp_guided", {}, false, &bind_omp_guided},
      {"omp_auto", {}, false, &bind_omp_auto},
      {"prefetch", {}, false, &bind_prefetch},
      {"vector", {}, false, &bind_vector},
      {"unroll_vector", {}, false, &bind_unroll_vector},
      {"delta", {.needs_delta = true}, false, &bind_delta},
      {"delta_vector", {.needs_delta = true}, false, &bind_delta_vector},
      {"split", {}, false, &bind_split},
      {"merge", {}, false, &bind_merge},
      {"sym", {.needs_symmetric = true}, false, &bind_sym},
      {"sell", {}, true, &bind_sell},
      {"bcsr", {}, true, &bind_bcsr},
      // Register-blocked multi-RHS SpMM, precision-suffixed.  The scalar
      // fallback always registers; the SIMD variants only exist in binaries
      // compiled for their ISA (the -march capability guard: with
      // SPMVOPT_NATIVE compile-time support is runtime support, so an
      // AVX-512 name simply never appears on a host without it).
      {"spmm.scalar.f64", {}, true,
       &bind_spmm_spmv<SpmmIsa::Scalar, Precision::F64>, Precision::F64,
       &bind_spmm_many<SpmmIsa::Scalar, Precision::F64>},
      {"spmm.scalar.f32", {}, true,
       &bind_spmm_spmv<SpmmIsa::Scalar, Precision::F32>, Precision::F32,
       &bind_spmm_many<SpmmIsa::Scalar, Precision::F32>},
      {"spmm.scalar.f32x64", {}, true,
       &bind_spmm_spmv<SpmmIsa::Scalar, Precision::F32F64>, Precision::F32F64,
       &bind_spmm_many<SpmmIsa::Scalar, Precision::F32F64>},
#if defined(__AVX2__)
      {"spmm.avx2.f64", {}, true,
       &bind_spmm_spmv<SpmmIsa::Avx2, Precision::F64>, Precision::F64,
       &bind_spmm_many<SpmmIsa::Avx2, Precision::F64>},
      {"spmm.avx2.f32", {}, true,
       &bind_spmm_spmv<SpmmIsa::Avx2, Precision::F32>, Precision::F32,
       &bind_spmm_many<SpmmIsa::Avx2, Precision::F32>},
      {"spmm.avx2.f32x64", {}, true,
       &bind_spmm_spmv<SpmmIsa::Avx2, Precision::F32F64>, Precision::F32F64,
       &bind_spmm_many<SpmmIsa::Avx2, Precision::F32F64>},
#endif
#if defined(__AVX512F__)
      {"spmm.avx512.f64", {}, true,
       &bind_spmm_spmv<SpmmIsa::Avx512, Precision::F64>, Precision::F64,
       &bind_spmm_many<SpmmIsa::Avx512, Precision::F64>},
      {"spmm.avx512.f32", {}, true,
       &bind_spmm_spmv<SpmmIsa::Avx512, Precision::F32>, Precision::F32,
       &bind_spmm_many<SpmmIsa::Avx512, Precision::F32>},
      {"spmm.avx512.f32x64", {}, true,
       &bind_spmm_spmv<SpmmIsa::Avx512, Precision::F32F64>, Precision::F32F64,
       &bind_spmm_many<SpmmIsa::Avx512, Precision::F32F64>},
#endif
  };
  return table;
}

const KernelVariant* find_kernel(std::string_view name) {
  for (const KernelVariant& v : registry())
    if (name == v.name) return &v;
  return nullptr;
}

const KernelVariant& require_kernel(std::string_view name) {
  if (const KernelVariant* v = find_kernel(name)) return *v;
  throw std::invalid_argument("unknown kernel '" + std::string(name) +
                              "' (valid: " + kernel_names() + ")");
}

std::string kernel_names() {
  // Sorted, not registry order: this string lands in user-facing error
  // messages (CLI usage errors, server error replies), which must be stable
  // under registry reordering so clients and tests can match on them.
  std::vector<std::string_view> names;
  names.reserve(registry().size());
  for (const KernelVariant& v : registry()) names.emplace_back(v.name);
  std::sort(names.begin(), names.end());
  std::string out;
  for (std::string_view n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace spmvopt::kernels
