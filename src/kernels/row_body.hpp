// Inner-loop bodies for the SpMV kernel family.
//
// One row dot-product, specialized at compile time on:
//   * Compute: scalar | vectorized (AVX-512 > AVX2 > scalar fallback) |
//     unrolled+vectorized (two accumulators) — the CMP/MB optimizations.
//   * PF: software prefetching of x[colind[j + dist]] into L1 with a fixed
//     distance of one cache line of elements (§III-E) — the ML optimization.
//   * index encoding: raw 32-bit columns or 8/16-bit deltas (MB optimization).
//
// These templates are what the paper's JIT would emit; the optimizer picks an
// instantiation at runtime (DESIGN.md §3, substitution table).
#pragma once

#include <immintrin.h>

#include "support/types.hpp"

namespace spmvopt::kernels {

enum class Compute { Scalar, Vector, UnrollVector };

/// Prefetch x[col] into L1.
inline void prefetch_x(const value_t* x, index_t col) noexcept {
  _mm_prefetch(reinterpret_cast<const char*>(x + col), _MM_HINT_T0);
}

namespace detail {

#if defined(__AVX512F__)

// Not _mm512_reduce_add_pd: GCC-12's implementation feeds
// _mm256_undefined_pd() into a masked extract, tripping a
// -Wmaybe-uninitialized false positive once inlined into user code.
inline double hsum(__m512d v) noexcept {
  alignas(64) double t[8];
  _mm512_store_pd(t, v);
  return ((t[0] + t[1]) + (t[2] + t[3])) + ((t[4] + t[5]) + (t[6] + t[7]));
}

template <bool PF>
inline value_t row_sum_vector(const value_t* vals, const index_t* cols,
                              index_t len, const value_t* x,
                              index_t pf_dist) noexcept {
  __m512d acc = _mm512_setzero_pd();
  index_t j = 0;
  for (; j + 8 <= len; j += 8) {
    if constexpr (PF) {
      if (j + pf_dist < len) prefetch_x(x, cols[j + pf_dist]);
    }
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + j));
    const __m512d xv = _mm512_mask_i32gather_pd(_mm512_setzero_pd(), 0xFF, idx, x, 8);
    const __m512d av = _mm512_loadu_pd(vals + j);
    acc = _mm512_fmadd_pd(av, xv, acc);
  }
  value_t sum = hsum(acc);
  for (; j < len; ++j) sum += vals[j] * x[cols[j]];
  return sum;
}

template <bool PF>
inline value_t row_sum_unroll_vector(const value_t* vals, const index_t* cols,
                                     index_t len, const value_t* x,
                                     index_t pf_dist) noexcept {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  index_t j = 0;
  for (; j + 16 <= len; j += 16) {
    if constexpr (PF) {
      if (j + pf_dist < len) prefetch_x(x, cols[j + pf_dist]);
      if (j + 8 + pf_dist < len) prefetch_x(x, cols[j + 8 + pf_dist]);
    }
    const __m256i i0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + j));
    const __m256i i1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + j + 8));
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(vals + j),
                           _mm512_mask_i32gather_pd(_mm512_setzero_pd(), 0xFF, i0, x, 8), acc0);
    acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(vals + j + 8),
                           _mm512_mask_i32gather_pd(_mm512_setzero_pd(), 0xFF, i1, x, 8), acc1);
  }
  value_t sum = hsum(_mm512_add_pd(acc0, acc1));
  for (; j < len; ++j) sum += vals[j] * x[cols[j]];
  return sum;
}

#elif defined(__AVX2__)

inline double hsum(__m256d v) noexcept {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(lo, lo);
  return _mm_cvtsd_f64(_mm_add_sd(lo, swapped));
}

template <bool PF>
inline value_t row_sum_vector(const value_t* vals, const index_t* cols,
                              index_t len, const value_t* x,
                              index_t pf_dist) noexcept {
  __m256d acc = _mm256_setzero_pd();
  index_t j = 0;
  for (; j + 4 <= len; j += 4) {
    if constexpr (PF) {
      if (j + pf_dist < len) prefetch_x(x, cols[j + pf_dist]);
    }
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + j));
    const __m256d xv = _mm256_i32gather_pd(x, idx, 8);
    const __m256d av = _mm256_loadu_pd(vals + j);
    acc = _mm256_fmadd_pd(av, xv, acc);
  }
  value_t sum = hsum(acc);
  for (; j < len; ++j) sum += vals[j] * x[cols[j]];
  return sum;
}

template <bool PF>
inline value_t row_sum_unroll_vector(const value_t* vals, const index_t* cols,
                                     index_t len, const value_t* x,
                                     index_t pf_dist) noexcept {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  index_t j = 0;
  for (; j + 8 <= len; j += 8) {
    if constexpr (PF) {
      if (j + pf_dist < len) prefetch_x(x, cols[j + pf_dist]);
      if (j + 4 + pf_dist < len) prefetch_x(x, cols[j + 4 + pf_dist]);
    }
    const __m128i i0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + j));
    const __m128i i1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + j + 4));
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(vals + j),
                           _mm256_i32gather_pd(x, i0, 8), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(vals + j + 4),
                           _mm256_i32gather_pd(x, i1, 8), acc1);
  }
  value_t sum = hsum(_mm256_add_pd(acc0, acc1));
  for (; j < len; ++j) sum += vals[j] * x[cols[j]];
  return sum;
}

#else  // scalar fallback for non-AVX builds

template <bool PF>
inline value_t row_sum_vector(const value_t* vals, const index_t* cols,
                              index_t len, const value_t* x,
                              index_t pf_dist) noexcept {
  value_t sum = 0.0;
  for (index_t j = 0; j < len; ++j) {
    if constexpr (PF) {
      if (j + pf_dist < len) prefetch_x(x, cols[j + pf_dist]);
    }
    sum += vals[j] * x[cols[j]];
  }
  return sum;
}

template <bool PF>
inline value_t row_sum_unroll_vector(const value_t* vals, const index_t* cols,
                                     index_t len, const value_t* x,
                                     index_t pf_dist) noexcept {
  value_t s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  index_t j = 0;
  for (; j + 4 <= len; j += 4) {
    if constexpr (PF) {
      if (j + pf_dist < len) prefetch_x(x, cols[j + pf_dist]);
    }
    s0 += vals[j] * x[cols[j]];
    s1 += vals[j + 1] * x[cols[j + 1]];
    s2 += vals[j + 2] * x[cols[j + 2]];
    s3 += vals[j + 3] * x[cols[j + 3]];
  }
  value_t sum = (s0 + s1) + (s2 + s3);
  for (; j < len; ++j) sum += vals[j] * x[cols[j]];
  return sum;
}

#endif

}  // namespace detail

/// One CSR row: sum_j vals[j] * x[cols[j]], j in [0, len).
template <Compute C, bool PF>
inline value_t row_sum(const value_t* vals, const index_t* cols, index_t len,
                       const value_t* x, index_t pf_dist) noexcept {
  if constexpr (C == Compute::Scalar) {
    value_t sum = 0.0;
    for (index_t j = 0; j < len; ++j) {
      if constexpr (PF) {
        if (j + pf_dist < len) prefetch_x(x, cols[j + pf_dist]);
      }
      sum += vals[j] * x[cols[j]];
    }
    return sum;
  } else if constexpr (C == Compute::Vector) {
    return detail::row_sum_vector<PF>(vals, cols, len, x, pf_dist);
  } else {
    return detail::row_sum_unroll_vector<PF>(vals, cols, len, x, pf_dist);
  }
}

/// One delta-encoded row.  `deltas[0]` is 0 (the base is absolute); columns
/// are reconstructed by a running prefix sum.  With PF, a second decode
/// cursor runs `pf_dist` elements ahead to know which x line to prefetch —
/// the decode is a 1-cycle add, so the look-ahead costs almost nothing.
/// The vector variants decode a block of absolute indices into a stack
/// buffer, then gather — the decode is the serial prefix sum, the FMA work is
/// vectorized (what the paper's "compression + vectorization" combo does).
template <Compute C, bool PF, class DeltaT>
inline value_t row_sum_delta(const value_t* vals, const DeltaT* deltas,
                             index_t base, index_t len, const value_t* x,
                             index_t pf_dist) noexcept {
  if constexpr (C == Compute::Scalar) {
    value_t sum = 0.0;
    index_t col = base;
    index_t col_pf = base;
    if constexpr (PF) {
      for (index_t j = 1; j <= pf_dist && j < len; ++j)
        col_pf += static_cast<index_t>(deltas[j]);
      prefetch_x(x, col_pf);
    }
    for (index_t j = 0; j < len; ++j) {
      if (j > 0) col += static_cast<index_t>(deltas[j]);
      if constexpr (PF) {
        if (j + pf_dist + 1 < len) {
          col_pf += static_cast<index_t>(deltas[j + pf_dist + 1]);
          prefetch_x(x, col_pf);
        }
      }
      sum += vals[j] * x[col];
    }
    return sum;
  } else {
    // Vector / UnrollVector: decode blocks of kBlock absolute columns, then
    // reuse the raw-index SIMD body on the decoded block.
    if (len <= 0) return 0.0;
    constexpr index_t kBlock = 64;
    index_t cols[kBlock];
    value_t sum = 0.0;
    index_t col = base;
    cols[0] = col;
    // First block: element 0 is the absolute base, the rest are deltas.
    index_t blk = len < kBlock ? len : kBlock;
    for (index_t k = 1; k < blk; ++k) {
      col += static_cast<index_t>(deltas[k]);
      cols[k] = col;
    }
    sum += row_sum<C, PF>(vals, cols, blk, x, pf_dist);
    for (index_t j = blk; j < len; j += blk) {
      blk = len - j < kBlock ? len - j : kBlock;
      for (index_t k = 0; k < blk; ++k) {
        col += static_cast<index_t>(deltas[j + k]);
        cols[k] = col;
      }
      sum += row_sum<C, PF>(vals + j, cols, blk, x, pf_dist);
    }
    return sum;
  }
}

/// One row of the P_CMP micro-benchmark kernel (§III-B): all indirection
/// removed, every product reads x[row] — unit-stride accesses only.
template <Compute C>
inline value_t row_sum_noindex(const value_t* vals, index_t len,
                               value_t xi) noexcept {
  if constexpr (C == Compute::Scalar) {
    value_t sum = 0.0;
    for (index_t j = 0; j < len; ++j) sum += vals[j] * xi;
    return sum;
  } else {
    value_t s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    index_t j = 0;
    for (; j + 4 <= len; j += 4) {
      s0 += vals[j];
      s1 += vals[j + 1];
      s2 += vals[j + 2];
      s3 += vals[j + 3];
    }
    value_t sum = ((s0 + s1) + (s2 + s3)) * xi;
    for (; j < len; ++j) sum += vals[j] * xi;
    return sum;
  }
}

}  // namespace spmvopt::kernels
