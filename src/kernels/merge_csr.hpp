// Merge-path CSR SpMV: guaranteed O((rows + nnz) / p) load balance.
//
// The 1-D partitions in spmv.hpp balance *nonzeros*; a matrix whose nnz sit
// in one monster row still serializes on the thread that owns it, and
// split_csr only helps rows past a length threshold.  The merge-path
// formulation (Merrill & Garland; the survey arXiv:2404.06047 §CSR-merge)
// treats SpMV as merging two sorted lists — the row ends rowptr[1..nrows]
// and the nonzero indices [0, nnz) — and cuts the merge at equally spaced
// cross diagonals.  Every worker gets the same share of `rows + nnz` (±1
// diagonal) no matter how the nonzeros are distributed, which is exactly the
// IMB worst case the paper's dynamic scheduling still loses on.
//
// A row whose nonzeros straddle a cut is computed in pieces: each worker
// accumulates the piece it owns, the trailing piece lands in a per-worker
// carry slot, and a serial fix-up pass adds the carries back after the
// parallel phase.  Rows spanning three or more partitions work the same way:
// the middle workers own zero full rows (row_bounds[k] == row_bounds[k+1])
// and contribute their whole nonzero range as carry.
#pragma once

#include <vector>

#include "kernels/row_body.hpp"
#include "sparse/csr.hpp"
#include "support/types.hpp"

namespace spmvopt::kernels {

/// Cut points of the (row-ends × nonzeros) merge at p+1 cross diagonals.
/// Worker k owns full rows [row_bounds[k], row_bounds[k+1]) and nonzeros
/// [nnz_bounds[k], nnz_bounds[k+1]); the invariant
/// row_bounds[k] + nnz_bounds[k] == diagonal k holds for every cut.
struct MergePartition {
  std::vector<index_t> row_bounds;  ///< size nworkers()+1; [0]=0, [p]=nrows
  std::vector<index_t> nnz_bounds;  ///< size nworkers()+1; [0]=0, [p]=nnz
  index_t nrows = 0;
  index_t nnz = 0;
  [[nodiscard]] int nworkers() const noexcept {
    return row_bounds.empty() ? 0 : static_cast<int>(row_bounds.size()) - 1;
  }
};

/// Binary search along cross diagonal `diag` ∈ [0, nrows+nnz]: returns the
/// row coordinate i (the nnz coordinate is diag - i) such that exactly i row
/// ends and diag - i nonzeros precede the cut.  O(log nrows).
[[nodiscard]] index_t merge_path_search(index_t diag, const index_t* rowptr,
                                        index_t nrows, index_t nnz) noexcept;

/// Cut the merge path at nworkers+1 equally spaced diagonals.
[[nodiscard]] MergePartition merge_partition(const index_t* rowptr,
                                             index_t nrows, index_t nnz,
                                             int nworkers);

/// Per-worker carry scratch, allocated once at bind time (the hot path must
/// not allocate).  row[k] == part.nrows is the "nothing to carry" sentinel.
struct MergeCarry {
  std::vector<index_t> row;
  std::vector<value_t> val;
  void resize(int nworkers) {
    row.assign(static_cast<std::size_t>(nworkers), 0);
    val.assign(static_cast<std::size_t>(nworkers), 0.0);
  }
};

/// Worker k's share of the merge: full rows are written to y directly (a row
/// whose head was consumed by earlier workers gets only its tail — the head
/// arrives as those workers' carries), trailing nonzeros of a straddled row
/// go to carry slot k.  Reuses the row_body instantiations, so a row fully
/// inside one partition is bitwise identical to the composed kernels.
template <Compute C, bool PF>
inline void merge_span(const index_t* rowptr, const index_t* colind,
                       const value_t* vals, const MergePartition& part, int k,
                       const value_t* x, value_t* y, index_t* carry_row,
                       value_t* carry_val, index_t pf_dist) noexcept {
  const std::size_t ku = static_cast<std::size_t>(k);
  const index_t row_hi = part.row_bounds[ku + 1];
  const index_t nz_hi = part.nnz_bounds[ku + 1];
  index_t nz = part.nnz_bounds[ku];
  for (index_t r = part.row_bounds[ku]; r < row_hi; ++r) {
    const index_t end = rowptr[r + 1];
    y[r] = row_sum<C, PF>(vals + nz, colind + nz, end - nz, x, pf_dist);
    nz = end;
  }
  if (nz < nz_hi) {
    // Row row_hi starts inside this partition but ends beyond it.
    carry_row[k] = row_hi;
    carry_val[k] = row_sum<C, PF>(vals + nz, colind + nz, nz_hi - nz, x,
                                  pf_dist);
  } else {
    carry_row[k] = part.nrows;
    carry_val[k] = 0.0;
  }
}

/// The (compute, prefetch) instantiation of merge_span, selected at plan
/// time like select_csr_range (see kernels/team_body.hpp).
using MergeSpanFn = void (*)(const index_t* rowptr, const index_t* colind,
                             const value_t* vals, const MergePartition& part,
                             int worker, const value_t* x, value_t* y,
                             index_t* carry_row, value_t* carry_val,
                             index_t pf_dist);

/// Serial carry reduction; call after every worker's span completed.  Each
/// worker writes a distinct y row during the span and a distinct carry slot,
/// so the only cross-worker combination happens here.
void merge_fixup(int nworkers, index_t nrows, const index_t* carry_row,
                 const value_t* carry_val, value_t* y) noexcept;

/// Plain fork/join entry: one OpenMP region over part.nworkers() spans plus
/// the serial fix-up.  `carry` must be resized to part.nworkers().
void spmv_merge(const CsrMatrix& A, const MergePartition& part,
                MergeCarry& carry, const value_t* x, value_t* y,
                MergeSpanFn span, index_t pf_dist) noexcept;

}  // namespace spmvopt::kernels
