// Team-body SpMV entry points: row/chunk/block ranges callable from inside
// an existing parallel region.
//
// The composed kernels (compose.hpp) open their own OpenMP team per call;
// the execution engine (src/engine/) already owns a running team, so these
// bodies take an explicit range and no scheduling pragma.  They reuse the
// exact row_body.hpp instantiations the composed kernels run — a row's dot
// product is bitwise identical whichever path computed it, which is what
// lets the differential sweep compare engine and non-engine execution.
//
// The CSR body takes raw arrays, not a CsrMatrix: the engine-aware
// OptimizedSpmv materializes NUMA-placed copies of rowptr/colind/vals and
// runs on those without re-wrapping them.
#pragma once

#include "kernels/merge_csr.hpp"
#include "kernels/row_body.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/delta_csr.hpp"
#include "sparse/sell.hpp"
#include "support/types.hpp"

namespace spmvopt::kernels {

/// y[i] = A[i,:] . x for rows [lo, hi) of a raw CSR.
using CsrRangeFn = void (*)(const index_t* rowptr, const index_t* colind,
                            const value_t* vals, index_t lo, index_t hi,
                            const value_t* x, value_t* y, index_t pf_dist);

/// The (compute, prefetch) instantiation matching select_csr_kernel's.
[[nodiscard]] CsrRangeFn select_csr_range(Compute compute, bool prefetch);

/// Rows [lo, hi) of a delta-compressed matrix (width dispatched inside).
using DeltaRangeFn = void (*)(const DeltaCsrMatrix& A, index_t lo, index_t hi,
                              const value_t* x, value_t* y, index_t pf_dist);

[[nodiscard]] DeltaRangeFn select_delta_range(Compute compute, bool prefetch);

/// The (compute, prefetch) instantiation of the merge-path span
/// (kernels/merge_csr.hpp).  Each team member runs its span, then a team
/// barrier, then member 0 runs merge_fixup — the engine analogue of
/// spmv_merge's fork/join shape.
[[nodiscard]] MergeSpanFn select_merge_span(Compute compute, bool prefetch);

/// SELL-C-σ chunks [clo, chi); picks the SIMD path per spmv_sell's rule.
void spmv_sell_chunks(const SellMatrix& A, index_t clo, index_t chi,
                      const value_t* x, value_t* y) noexcept;

/// BCSR block rows [blo, bhi), fast/edge dispatch per spmv_bcsr's rule.
void spmv_bcsr_block_rows(const BcsrMatrix& A, index_t blo, index_t bhi,
                          const value_t* x, value_t* y) noexcept;

/// Partial dot product over one long row's nonzeros [jlo, jhi) — phase 2 of
/// the decomposed kernel; the engine sums the per-thread partials after a
/// team barrier.
[[nodiscard]] value_t long_row_partial(const index_t* colind,
                                       const value_t* vals, index_t jlo,
                                       index_t jhi,
                                       const value_t* x) noexcept;

}  // namespace spmvopt::kernels
