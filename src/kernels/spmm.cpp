#include "kernels/spmm.hpp"

#include <omp.h>

#include <algorithm>
#include <stdexcept>

namespace spmvopt::kernels {

namespace {

/// One row with a compile-time rhs count: the accumulator block stays in
/// registers and the inner updates are unit-stride FMAs over X's rows.
template <int K>
inline void row_block_fixed(const CsrMatrix& A, index_t i, const value_t* X,
                            value_t* Y) noexcept {
  value_t acc[K] = {};
  for (index_t j = A.rowptr()[i]; j < A.rowptr()[i + 1]; ++j) {
    const value_t v = A.values()[j];
    const value_t* xr = X + static_cast<std::size_t>(A.colind()[j]) * K;
    for (int r = 0; r < K; ++r) acc[r] += v * xr[r];
  }
  value_t* yr = Y + static_cast<std::size_t>(i) * K;
  for (int r = 0; r < K; ++r) yr[r] = acc[r];
}

void row_block_generic(const CsrMatrix& A, index_t i, const value_t* X,
                       value_t* Y, index_t k) noexcept {
  value_t* yr = Y + static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
  std::fill(yr, yr + k, 0.0);
  for (index_t j = A.rowptr()[i]; j < A.rowptr()[i + 1]; ++j) {
    const value_t v = A.values()[j];
    const value_t* xr =
        X + static_cast<std::size_t>(A.colind()[j]) * static_cast<std::size_t>(k);
    for (index_t r = 0; r < k; ++r) yr[r] += v * xr[r];
  }
}

template <int K>
void run_fixed(const CsrMatrix& A, const RowPartition& part, const value_t* X,
               value_t* Y) noexcept {
#pragma omp parallel num_threads(part.nthreads())
  {
    const int t = omp_get_thread_num();
    const index_t lo = part.bounds[static_cast<std::size_t>(t)];
    const index_t hi = part.bounds[static_cast<std::size_t>(t) + 1];
    for (index_t i = lo; i < hi; ++i) row_block_fixed<K>(A, i, X, Y);
  }
}

}  // namespace

void spmm(const CsrMatrix& A, const RowPartition& part, const value_t* X,
          value_t* Y, index_t k) noexcept {
  switch (k) {
    case 1: run_fixed<1>(A, part, X, Y); return;
    case 2: run_fixed<2>(A, part, X, Y); return;
    case 4: run_fixed<4>(A, part, X, Y); return;
    case 8: run_fixed<8>(A, part, X, Y); return;
    case 16: run_fixed<16>(A, part, X, Y); return;
    default: break;
  }
#pragma omp parallel num_threads(part.nthreads())
  {
    const int t = omp_get_thread_num();
    const index_t lo = part.bounds[static_cast<std::size_t>(t)];
    const index_t hi = part.bounds[static_cast<std::size_t>(t) + 1];
    for (index_t i = lo; i < hi; ++i) row_block_generic(A, i, X, Y, k);
  }
}

void spmm_unfused(const CsrMatrix& A, const RowPartition& part,
                  const value_t* X, value_t* Y, index_t k) noexcept {
  // Strided per-rhs SpMV over the same row-major layout (reference).
  const index_t n = A.nrows();
#pragma omp parallel num_threads(part.nthreads())
  {
    const int t = omp_get_thread_num();
    const index_t lo = part.bounds[static_cast<std::size_t>(t)];
    const index_t hi = part.bounds[static_cast<std::size_t>(t) + 1];
    for (index_t r = 0; r < k; ++r) {
      for (index_t i = lo; i < hi; ++i) {
        value_t sum = 0.0;
        for (index_t j = A.rowptr()[i]; j < A.rowptr()[i + 1]; ++j)
          sum += A.values()[j] *
                 X[static_cast<std::size_t>(A.colind()[j]) *
                       static_cast<std::size_t>(k) +
                   static_cast<std::size_t>(r)];
        Y[static_cast<std::size_t>(i) * static_cast<std::size_t>(k) +
          static_cast<std::size_t>(r)] = sum;
      }
    }
  }
  (void)n;
}

namespace {

void check_spmm_sizes(const CsrMatrix& A, std::span<const value_t> X,
                      std::span<value_t> Y, index_t k) {
  if (k < 1 ||
      X.size() != static_cast<std::size_t>(A.ncols()) *
                      static_cast<std::size_t>(k) ||
      Y.size() != static_cast<std::size_t>(A.nrows()) *
                      static_cast<std::size_t>(k))
    throw std::invalid_argument("spmm: block size mismatch");
}

}  // namespace

void spmm(const CsrMatrix& A, const RowPartition& part,
          std::span<const value_t> X, std::span<value_t> Y, index_t k) {
  check_spmm_sizes(A, X, Y, k);
  spmm(A, part, X.data(), Y.data(), k);
}

void spmm_unfused(const CsrMatrix& A, const RowPartition& part,
                  std::span<const value_t> X, std::span<value_t> Y,
                  index_t k) {
  check_spmm_sizes(A, X, Y, k);
  spmm_unfused(A, part, X.data(), Y.data(), k);
}

}  // namespace spmvopt::kernels
