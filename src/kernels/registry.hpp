// The single name → kernel table.
//
// Three places used to keep their own hand-rolled copies of "which string
// names which SpMV variant": the CLI's --kernel flag, the bench drivers, and
// the differential runner.  They all resolve through this registry now, so a
// new kernel becomes benchable, verifiable and CLI-addressable by adding one
// entry here.  Unknown-name errors should print kernel_names() so users see
// the valid set.
//
// bind() does every conversion the variant needs (delta encoding, long-row
// split, SELL/BCSR/symmetric packing, partitioning) ONCE and returns a
// closure that only runs the kernel — callers can time the closure without
// charging preprocessing.  The bound closure views `A` (and owns any
// converted format), so `A` must outlive it.  Kernels that use OpenMP's
// global thread count (omp_*) additionally expect the caller to have set it
// (see verify::OmpThreadsGuard); the partitioned kernels bake `threads` in.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sparse/csr.hpp"
#include "support/dtype.hpp"
#include "support/types.hpp"

namespace spmvopt::kernels {

/// What the matrix must satisfy for bind() to succeed.
struct KernelRequirements {
  bool needs_symmetric = false;  ///< square + symmetric pattern and values
  bool needs_delta = false;      ///< in-row column gaps encodable in 16 bits
};

/// A named y = A*x variant bound to one matrix at one thread count.
using BoundSpmv = std::function<void(const value_t* x, value_t* y)>;

/// A named Y = A*X multi-RHS variant: X and Y are `nrhs` vector-major
/// double vectors (the run_many layout — vector r at X + r*ncols).  Any
/// packing or precision conversion happens inside the closure; callers
/// always speak double at the boundary (conversion shims per DESIGN.md §8).
using BoundSpmm =
    std::function<void(const value_t* X, value_t* Y, index_t nrhs)>;

struct KernelVariant {
  const char* name;
  KernelRequirements req;
  /// Extension formats (SELL-C-σ, BCSR, the spmm.* blocked variants) sit
  /// outside the paper's CSR pool; sweeps that reproduce the paper exactly
  /// filter on this.
  bool extension = false;
  /// Bind to `A` for `threads`.  Returns an empty function when `req` is not
  /// met by this matrix (caller skips the variant).
  BoundSpmv (*bind)(const CsrMatrix& A, int threads);
  /// Value mode of the bound computation.  The differential runner selects
  /// its reference oracle and error policy per precision (DESIGN.md §13).
  Precision prec = Precision::F64;
  /// Multi-RHS binding; null for single-vector variants.  The spmm.*
  /// variants provide it (their bind() runs the same kernel at nrhs == 1).
  BoundSpmm (*bind_spmm)(const CsrMatrix& A, int threads) = nullptr;
};

/// The full table, fixed order, stable names.
[[nodiscard]] const std::vector<KernelVariant>& registry();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const KernelVariant* find_kernel(std::string_view name);

/// Lookup by name; throws std::invalid_argument naming the full valid set
/// (kernel_names()) when unknown.  The single error path for every caller
/// that resolves a user-supplied kernel name (CLI, server), so the message
/// stays identical everywhere.
[[nodiscard]] const KernelVariant& require_kernel(std::string_view name);

/// "serial, omp_static, ..." — for unknown-name error messages.
[[nodiscard]] std::string kernel_names();

}  // namespace spmvopt::kernels
