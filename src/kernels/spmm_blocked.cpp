#include "kernels/spmm_blocked.hpp"

#include <cstddef>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace spmvopt::kernels {
namespace {

// ---------------------------------------------------------------------------
// Scalar fallback: fixed-width column blocks held in a local accumulator
// array the compiler keeps in registers.  One template serves all three
// precisions (VT = value storage, OT = operand storage, AT = accumulator).
// ---------------------------------------------------------------------------

template <class VT, class OT, class AT>
void range_scalar(const index_t* rowptr, const index_t* colind,
                  const void* vals_raw, index_t lo, index_t hi,
                  const void* xp_raw, void* yp_raw, index_t k) {
  const VT* vals = static_cast<const VT*>(vals_raw);
  const OT* X = static_cast<const OT*>(xp_raw);
  OT* Y = static_cast<OT*>(yp_raw);
  constexpr index_t kBlock = 8;
  for (index_t i = lo; i < hi; ++i) {
    const index_t b = rowptr[i], e = rowptr[i + 1];
    OT* yr = Y + static_cast<std::size_t>(i) * k;
    for (index_t c0 = 0; c0 < k; c0 += kBlock) {
      const index_t cb = k - c0 < kBlock ? k - c0 : kBlock;
      AT acc[kBlock] = {};
      for (index_t j = b; j < e; ++j) {
        const AT v = static_cast<AT>(vals[j]);
        const OT* xr =
            X + static_cast<std::size_t>(colind[j]) * k + c0;
        for (index_t c = 0; c < cb; ++c)
          acc[c] += v * static_cast<AT>(xr[c]);
      }
      for (index_t c = 0; c < cb; ++c)
        yr[c0 + c] = static_cast<OT>(acc[c]);
    }
  }
}

// ---------------------------------------------------------------------------
// AVX2: double operands in blocks of 8 columns (two ymm accumulators),
// then 4, then a scalar tail; float operands in blocks of 16/8 + tail.
// The f64 and f32x64 paths share one template — only the value broadcast
// differs (double load vs float load widened by the set1 conversion).
// ---------------------------------------------------------------------------

#if defined(__AVX2__)

template <class VT>
void range_avx2_pd(const index_t* rowptr, const index_t* colind,
                   const void* vals_raw, index_t lo, index_t hi,
                   const void* xp_raw, void* yp_raw, index_t k) {
  const VT* vals = static_cast<const VT*>(vals_raw);
  const double* X = static_cast<const double*>(xp_raw);
  double* Y = static_cast<double*>(yp_raw);
  for (index_t i = lo; i < hi; ++i) {
    const index_t b = rowptr[i], e = rowptr[i + 1];
    double* yr = Y + static_cast<std::size_t>(i) * k;
    index_t c0 = 0;
    for (; c0 + 8 <= k; c0 += 8) {
      __m256d a0 = _mm256_setzero_pd();
      __m256d a1 = _mm256_setzero_pd();
      for (index_t j = b; j < e; ++j) {
        const __m256d v = _mm256_set1_pd(static_cast<double>(vals[j]));
        const double* xr =
            X + static_cast<std::size_t>(colind[j]) * k + c0;
        a0 = _mm256_fmadd_pd(v, _mm256_loadu_pd(xr), a0);
        a1 = _mm256_fmadd_pd(v, _mm256_loadu_pd(xr + 4), a1);
      }
      _mm256_storeu_pd(yr + c0, a0);
      _mm256_storeu_pd(yr + c0 + 4, a1);
    }
    for (; c0 + 4 <= k; c0 += 4) {
      __m256d a0 = _mm256_setzero_pd();
      for (index_t j = b; j < e; ++j) {
        const __m256d v = _mm256_set1_pd(static_cast<double>(vals[j]));
        const double* xr =
            X + static_cast<std::size_t>(colind[j]) * k + c0;
        a0 = _mm256_fmadd_pd(v, _mm256_loadu_pd(xr), a0);
      }
      _mm256_storeu_pd(yr + c0, a0);
    }
    if (c0 < k) {
      const index_t cb = k - c0;
      double acc[3] = {};
      for (index_t j = b; j < e; ++j) {
        const double v = static_cast<double>(vals[j]);
        const double* xr =
            X + static_cast<std::size_t>(colind[j]) * k + c0;
        for (index_t c = 0; c < cb; ++c) acc[c] += v * xr[c];
      }
      for (index_t c = 0; c < cb; ++c) yr[c0 + c] = acc[c];
    }
  }
}

void range_avx2_ps(const index_t* rowptr, const index_t* colind,
                   const void* vals_raw, index_t lo, index_t hi,
                   const void* xp_raw, void* yp_raw, index_t k) {
  const float* vals = static_cast<const float*>(vals_raw);
  const float* X = static_cast<const float*>(xp_raw);
  float* Y = static_cast<float*>(yp_raw);
  for (index_t i = lo; i < hi; ++i) {
    const index_t b = rowptr[i], e = rowptr[i + 1];
    float* yr = Y + static_cast<std::size_t>(i) * k;
    index_t c0 = 0;
    for (; c0 + 16 <= k; c0 += 16) {
      __m256 a0 = _mm256_setzero_ps();
      __m256 a1 = _mm256_setzero_ps();
      for (index_t j = b; j < e; ++j) {
        const __m256 v = _mm256_set1_ps(vals[j]);
        const float* xr =
            X + static_cast<std::size_t>(colind[j]) * k + c0;
        a0 = _mm256_fmadd_ps(v, _mm256_loadu_ps(xr), a0);
        a1 = _mm256_fmadd_ps(v, _mm256_loadu_ps(xr + 8), a1);
      }
      _mm256_storeu_ps(yr + c0, a0);
      _mm256_storeu_ps(yr + c0 + 8, a1);
    }
    for (; c0 + 8 <= k; c0 += 8) {
      __m256 a0 = _mm256_setzero_ps();
      for (index_t j = b; j < e; ++j) {
        const __m256 v = _mm256_set1_ps(vals[j]);
        const float* xr =
            X + static_cast<std::size_t>(colind[j]) * k + c0;
        a0 = _mm256_fmadd_ps(v, _mm256_loadu_ps(xr), a0);
      }
      _mm256_storeu_ps(yr + c0, a0);
    }
    if (c0 < k) {
      const index_t cb = k - c0;
      float acc[7] = {};
      for (index_t j = b; j < e; ++j) {
        const float v = vals[j];
        const float* xr =
            X + static_cast<std::size_t>(colind[j]) * k + c0;
        for (index_t c = 0; c < cb; ++c) acc[c] += v * xr[c];
      }
      for (index_t c = 0; c < cb; ++c) yr[c0 + c] = acc[c];
    }
  }
}

#endif  // __AVX2__

// ---------------------------------------------------------------------------
// AVX-512: same shape with zmm registers — 16/8-column double blocks and
// 32/16-column float blocks, AVX2-width then scalar tails.
// ---------------------------------------------------------------------------

#if defined(__AVX512F__)

template <class VT>
void range_avx512_pd(const index_t* rowptr, const index_t* colind,
                     const void* vals_raw, index_t lo, index_t hi,
                     const void* xp_raw, void* yp_raw, index_t k) {
  const VT* vals = static_cast<const VT*>(vals_raw);
  const double* X = static_cast<const double*>(xp_raw);
  double* Y = static_cast<double*>(yp_raw);
  for (index_t i = lo; i < hi; ++i) {
    const index_t b = rowptr[i], e = rowptr[i + 1];
    double* yr = Y + static_cast<std::size_t>(i) * k;
    index_t c0 = 0;
    for (; c0 + 16 <= k; c0 += 16) {
      __m512d a0 = _mm512_setzero_pd();
      __m512d a1 = _mm512_setzero_pd();
      for (index_t j = b; j < e; ++j) {
        const __m512d v = _mm512_set1_pd(static_cast<double>(vals[j]));
        const double* xr =
            X + static_cast<std::size_t>(colind[j]) * k + c0;
        a0 = _mm512_fmadd_pd(v, _mm512_loadu_pd(xr), a0);
        a1 = _mm512_fmadd_pd(v, _mm512_loadu_pd(xr + 8), a1);
      }
      _mm512_storeu_pd(yr + c0, a0);
      _mm512_storeu_pd(yr + c0 + 8, a1);
    }
    for (; c0 + 8 <= k; c0 += 8) {
      __m512d a0 = _mm512_setzero_pd();
      for (index_t j = b; j < e; ++j) {
        const __m512d v = _mm512_set1_pd(static_cast<double>(vals[j]));
        const double* xr =
            X + static_cast<std::size_t>(colind[j]) * k + c0;
        a0 = _mm512_fmadd_pd(v, _mm512_loadu_pd(xr), a0);
      }
      _mm512_storeu_pd(yr + c0, a0);
    }
    if (c0 < k) {
      const index_t cb = k - c0;
      double acc[7] = {};
      for (index_t j = b; j < e; ++j) {
        const double v = static_cast<double>(vals[j]);
        const double* xr =
            X + static_cast<std::size_t>(colind[j]) * k + c0;
        for (index_t c = 0; c < cb; ++c) acc[c] += v * xr[c];
      }
      for (index_t c = 0; c < cb; ++c) yr[c0 + c] = acc[c];
    }
  }
}

void range_avx512_ps(const index_t* rowptr, const index_t* colind,
                     const void* vals_raw, index_t lo, index_t hi,
                     const void* xp_raw, void* yp_raw, index_t k) {
  const float* vals = static_cast<const float*>(vals_raw);
  const float* X = static_cast<const float*>(xp_raw);
  float* Y = static_cast<float*>(yp_raw);
  for (index_t i = lo; i < hi; ++i) {
    const index_t b = rowptr[i], e = rowptr[i + 1];
    float* yr = Y + static_cast<std::size_t>(i) * k;
    index_t c0 = 0;
    for (; c0 + 32 <= k; c0 += 32) {
      __m512 a0 = _mm512_setzero_ps();
      __m512 a1 = _mm512_setzero_ps();
      for (index_t j = b; j < e; ++j) {
        const __m512 v = _mm512_set1_ps(vals[j]);
        const float* xr =
            X + static_cast<std::size_t>(colind[j]) * k + c0;
        a0 = _mm512_fmadd_ps(v, _mm512_loadu_ps(xr), a0);
        a1 = _mm512_fmadd_ps(v, _mm512_loadu_ps(xr + 16), a1);
      }
      _mm512_storeu_ps(yr + c0, a0);
      _mm512_storeu_ps(yr + c0 + 16, a1);
    }
    for (; c0 + 16 <= k; c0 += 16) {
      __m512 a0 = _mm512_setzero_ps();
      for (index_t j = b; j < e; ++j) {
        const __m512 v = _mm512_set1_ps(vals[j]);
        const float* xr =
            X + static_cast<std::size_t>(colind[j]) * k + c0;
        a0 = _mm512_fmadd_ps(v, _mm512_loadu_ps(xr), a0);
      }
      _mm512_storeu_ps(yr + c0, a0);
    }
    if (c0 < k) {
      const index_t cb = k - c0;
      float acc[15] = {};
      for (index_t j = b; j < e; ++j) {
        const float v = vals[j];
        const float* xr =
            X + static_cast<std::size_t>(colind[j]) * k + c0;
        for (index_t c = 0; c < cb; ++c) acc[c] += v * xr[c];
      }
      for (index_t c = 0; c < cb; ++c) yr[c0 + c] = acc[c];
    }
  }
}

#endif  // __AVX512F__

}  // namespace

const char* spmm_isa_name(SpmmIsa isa) noexcept {
  switch (isa) {
    case SpmmIsa::Avx2: return "avx2";
    case SpmmIsa::Avx512: return "avx512";
    case SpmmIsa::Scalar: break;
  }
  return "scalar";
}

bool spmm_isa_available(SpmmIsa isa) noexcept {
  switch (isa) {
    case SpmmIsa::Scalar:
      return true;
    case SpmmIsa::Avx2:
#if defined(__AVX2__)
      return true;
#else
      return false;
#endif
    case SpmmIsa::Avx512:
#if defined(__AVX512F__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

SpmmIsa spmm_best_isa() noexcept {
#if defined(__AVX512F__)
  return SpmmIsa::Avx512;
#elif defined(__AVX2__)
  return SpmmIsa::Avx2;
#else
  return SpmmIsa::Scalar;
#endif
}

SpmmRangeFn select_spmm_range(SpmmIsa isa, Precision prec) noexcept {
  switch (isa) {
    case SpmmIsa::Scalar:
      switch (prec) {
        case Precision::F64: return &range_scalar<double, double, double>;
        case Precision::F32: return &range_scalar<float, float, float>;
        case Precision::F32F64: return &range_scalar<float, double, double>;
      }
      return nullptr;
    case SpmmIsa::Avx2:
#if defined(__AVX2__)
      switch (prec) {
        case Precision::F64: return &range_avx2_pd<double>;
        case Precision::F32: return &range_avx2_ps;
        case Precision::F32F64: return &range_avx2_pd<float>;
      }
#endif
      return nullptr;
    case SpmmIsa::Avx512:
#if defined(__AVX512F__)
      switch (prec) {
        case Precision::F64: return &range_avx512_pd<double>;
        case Precision::F32: return &range_avx512_ps;
        case Precision::F32F64: return &range_avx512_pd<float>;
      }
#endif
      return nullptr;
  }
  return nullptr;
}

void spmm_pack_rhs(const value_t* X, index_t n, index_t k, void* xp_raw,
                   Precision prec) noexcept {
  if (operand_dtype(prec) == Dtype::F32) {
    float* Xp = static_cast<float*>(xp_raw);
    for (index_t r = 0; r < k; ++r) {
      const value_t* src = X + static_cast<std::size_t>(r) * n;
      for (index_t j = 0; j < n; ++j)
        Xp[static_cast<std::size_t>(j) * k + r] = static_cast<float>(src[j]);
    }
  } else {
    double* Xp = static_cast<double*>(xp_raw);
    for (index_t r = 0; r < k; ++r) {
      const value_t* src = X + static_cast<std::size_t>(r) * n;
      for (index_t j = 0; j < n; ++j)
        Xp[static_cast<std::size_t>(j) * k + r] = src[j];
    }
  }
}

void spmm_unpack_result(const void* yp_raw, index_t n, index_t k, value_t* Y,
                        Precision prec) noexcept {
  if (operand_dtype(prec) == Dtype::F32) {
    const float* Yp = static_cast<const float*>(yp_raw);
    for (index_t r = 0; r < k; ++r) {
      value_t* dst = Y + static_cast<std::size_t>(r) * n;
      for (index_t i = 0; i < n; ++i)
        dst[i] =
            static_cast<value_t>(Yp[static_cast<std::size_t>(i) * k + r]);
    }
  } else {
    const double* Yp = static_cast<const double*>(yp_raw);
    for (index_t r = 0; r < k; ++r) {
      value_t* dst = Y + static_cast<std::size_t>(r) * n;
      for (index_t i = 0; i < n; ++i)
        dst[i] = Yp[static_cast<std::size_t>(i) * k + r];
    }
  }
}

}  // namespace spmvopt::kernels
