#include "kernels/merge_csr.hpp"

#include <omp.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace spmvopt::kernels {

index_t merge_path_search(index_t diag, const index_t* rowptr, index_t nrows,
                          index_t nnz) noexcept {
  // Search the row coordinate on the diagonal: row ends rowptr[1..nrows]
  // merge against nonzero indices [0, nnz), row end winning ties (a row end
  // at position j sorts before nonzero j, so a row's last nonzero and its
  // end never separate).
  index_t lo = diag > nnz ? diag - nnz : 0;
  index_t hi = std::min(diag, nrows);
  while (lo < hi) {
    const index_t pivot = lo + (hi - lo) / 2;
    if (rowptr[pivot + 1] <= diag - pivot - 1)
      lo = pivot + 1;
    else
      hi = pivot;
  }
  return lo;
}

MergePartition merge_partition(const index_t* rowptr, index_t nrows,
                               index_t nnz, int nworkers) {
  if (nworkers < 1)
    throw std::invalid_argument("merge_partition: nworkers must be >= 1");
  MergePartition part;
  part.nrows = nrows;
  part.nnz = nnz;
  part.row_bounds.resize(static_cast<std::size_t>(nworkers) + 1);
  part.nnz_bounds.resize(static_cast<std::size_t>(nworkers) + 1);
  const auto total = static_cast<std::int64_t>(nrows) + nnz;
  for (int k = 0; k <= nworkers; ++k) {
    // floor(k * total / p): consecutive diagonals differ by floor or ceil of
    // total/p, so per-worker shares of rows+nnz differ by at most one.
    const auto diag =
        static_cast<index_t>(total * k / nworkers);
    const index_t i = merge_path_search(diag, rowptr, nrows, nnz);
    part.row_bounds[static_cast<std::size_t>(k)] = i;
    part.nnz_bounds[static_cast<std::size_t>(k)] = diag - i;
  }
  return part;
}

void merge_fixup(int nworkers, index_t nrows, const index_t* carry_row,
                 const value_t* carry_val, value_t* y) noexcept {
  for (int k = 0; k < nworkers; ++k)
    if (carry_row[k] < nrows) y[carry_row[k]] += carry_val[k];
}

void spmv_merge(const CsrMatrix& A, const MergePartition& part,
                MergeCarry& carry, const value_t* x, value_t* y,
                MergeSpanFn span, index_t pf_dist) noexcept {
  const int p = part.nworkers();
  const index_t* rowptr = A.rowptr();
  const index_t* colind = A.colind();
  const value_t* vals = A.values();
  index_t* crow = carry.row.data();
  value_t* cval = carry.val.data();
#pragma omp parallel num_threads(p)
  {
    // Strided over workers, not 1:1 with threads: the runtime may grant
    // fewer threads than requested and every span must still run.
    const int nt = omp_get_num_threads();
    for (int k = omp_get_thread_num(); k < p; k += nt)
      span(rowptr, colind, vals, part, k, x, y, crow, cval, pf_dist);
  }
  merge_fixup(p, part.nrows, crow, cval, y);
}

}  // namespace spmvopt::kernels
