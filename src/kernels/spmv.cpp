#include "kernels/spmv.hpp"

#include <omp.h>

#include "support/timing.hpp"

namespace spmvopt::kernels {

namespace {

/// Shared structure of all partitioned kernels: each thread walks its
/// contiguous row block and applies RowBody to every row.
template <class RowBody>
inline void run_partitioned(const CsrMatrix& A, const RowPartition& part,
                            value_t* y, double* thread_seconds,
                            const RowBody& body) noexcept {
  const index_t* rowptr = A.rowptr();
#pragma omp parallel num_threads(part.nthreads())
  {
    const int t = omp_get_thread_num();
    Timer timer;
    const index_t lo = part.bounds[static_cast<std::size_t>(t)];
    const index_t hi = part.bounds[static_cast<std::size_t>(t) + 1];
    for (index_t i = lo; i < hi; ++i)
      y[i] = body(i, rowptr[i], rowptr[i + 1]);
    if (thread_seconds != nullptr) thread_seconds[t] = timer.elapsed_sec();
  }
}

}  // namespace

void spmv_serial(const CsrMatrix& A, const value_t* x, value_t* y) noexcept {
  const index_t* rowptr = A.rowptr();
  const index_t* colind = A.colind();
  const value_t* vals = A.values();
  for (index_t i = 0; i < A.nrows(); ++i) {
    value_t sum = 0.0;
    for (index_t j = rowptr[i]; j < rowptr[i + 1]; ++j)
      sum += vals[j] * x[colind[j]];
    y[i] = sum;
  }
}

void spmv_omp_static(const CsrMatrix& A, const value_t* x, value_t* y) noexcept {
  const index_t* rowptr = A.rowptr();
  const index_t* colind = A.colind();
  const value_t* vals = A.values();
  const index_t n = A.nrows();
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i)
    y[i] = row_sum<Compute::Scalar, false>(vals + rowptr[i], colind + rowptr[i],
                                           rowptr[i + 1] - rowptr[i], x, 0);
}

void spmv_balanced(const CsrMatrix& A, const RowPartition& part,
                   const value_t* x, value_t* y,
                   double* thread_seconds) noexcept {
  const index_t* colind = A.colind();
  const value_t* vals = A.values();
  run_partitioned(A, part, y, thread_seconds,
                  [&](index_t, index_t lo, index_t hi) noexcept {
                    return row_sum<Compute::Scalar, false>(
                        vals + lo, colind + lo, hi - lo, x, 0);
                  });
}

void spmv_omp_dynamic(const CsrMatrix& A, const value_t* x, value_t* y,
                      int chunk) noexcept {
  const index_t* rowptr = A.rowptr();
  const index_t* colind = A.colind();
  const value_t* vals = A.values();
  const index_t n = A.nrows();
#pragma omp parallel for schedule(dynamic, chunk)
  for (index_t i = 0; i < n; ++i)
    y[i] = row_sum<Compute::Scalar, false>(vals + rowptr[i], colind + rowptr[i],
                                           rowptr[i + 1] - rowptr[i], x, 0);
}

void spmv_omp_guided(const CsrMatrix& A, const value_t* x, value_t* y) noexcept {
  const index_t* rowptr = A.rowptr();
  const index_t* colind = A.colind();
  const value_t* vals = A.values();
  const index_t n = A.nrows();
#pragma omp parallel for schedule(guided)
  for (index_t i = 0; i < n; ++i)
    y[i] = row_sum<Compute::Scalar, false>(vals + rowptr[i], colind + rowptr[i],
                                           rowptr[i + 1] - rowptr[i], x, 0);
}

void spmv_omp_auto(const CsrMatrix& A, const value_t* x, value_t* y) noexcept {
  const index_t* rowptr = A.rowptr();
  const index_t* colind = A.colind();
  const value_t* vals = A.values();
  const index_t n = A.nrows();
#pragma omp parallel for schedule(auto)
  for (index_t i = 0; i < n; ++i)
    y[i] = row_sum<Compute::Scalar, false>(vals + rowptr[i], colind + rowptr[i],
                                           rowptr[i + 1] - rowptr[i], x, 0);
}

void spmv_prefetch(const CsrMatrix& A, const RowPartition& part,
                   const value_t* x, value_t* y, index_t pf_dist) noexcept {
  const index_t* colind = A.colind();
  const value_t* vals = A.values();
  run_partitioned(A, part, y, nullptr,
                  [&, pf_dist](index_t, index_t lo, index_t hi) noexcept {
                    return row_sum<Compute::Scalar, true>(
                        vals + lo, colind + lo, hi - lo, x, pf_dist);
                  });
}

void spmv_vector(const CsrMatrix& A, const RowPartition& part,
                 const value_t* x, value_t* y) noexcept {
  const index_t* colind = A.colind();
  const value_t* vals = A.values();
  run_partitioned(A, part, y, nullptr,
                  [&](index_t, index_t lo, index_t hi) noexcept {
                    return row_sum<Compute::Vector, false>(
                        vals + lo, colind + lo, hi - lo, x, 0);
                  });
}

void spmv_unroll_vector(const CsrMatrix& A, const RowPartition& part,
                        const value_t* x, value_t* y) noexcept {
  const index_t* colind = A.colind();
  const value_t* vals = A.values();
  run_partitioned(A, part, y, nullptr,
                  [&](index_t, index_t lo, index_t hi) noexcept {
                    return row_sum<Compute::UnrollVector, false>(
                        vals + lo, colind + lo, hi - lo, x, 0);
                  });
}

namespace {

template <class DeltaT, Compute C>
inline void spmv_delta_impl(const DeltaCsrMatrix& A, const DeltaT* deltas,
                            const RowPartition& part, const value_t* x,
                            value_t* y) noexcept {
  const index_t* rowptr = A.rowptr();
  const index_t* bases = A.bases();
  const value_t* vals = A.values();
#pragma omp parallel num_threads(part.nthreads())
  {
    const int t = omp_get_thread_num();
    const index_t lo = part.bounds[static_cast<std::size_t>(t)];
    const index_t hi = part.bounds[static_cast<std::size_t>(t) + 1];
    for (index_t i = lo; i < hi; ++i) {
      const index_t b = rowptr[i];
      y[i] = row_sum_delta<C, false>(vals + b, deltas + b, bases[i],
                                     rowptr[i + 1] - b, x, 0);
    }
  }
}

}  // namespace

void spmv_delta(const DeltaCsrMatrix& A, const RowPartition& part,
                const value_t* x, value_t* y) noexcept {
  if (A.width() == DeltaWidth::U8)
    spmv_delta_impl<std::uint8_t, Compute::Scalar>(A, A.deltas8(), part, x, y);
  else
    spmv_delta_impl<std::uint16_t, Compute::Scalar>(A, A.deltas16(), part, x, y);
}

void spmv_delta_vector(const DeltaCsrMatrix& A, const RowPartition& part,
                       const value_t* x, value_t* y) noexcept {
  if (A.width() == DeltaWidth::U8)
    spmv_delta_impl<std::uint8_t, Compute::Vector>(A, A.deltas8(), part, x, y);
  else
    spmv_delta_impl<std::uint16_t, Compute::Vector>(A, A.deltas16(), part, x, y);
}

void spmv_split(const SplitCsrMatrix& A, const RowPartition& short_part,
                const value_t* x, value_t* y) noexcept {
  // Phase 1: normal balanced pass over the short part (long rows are empty
  // there and get y[row] = 0, overwritten in phase 2).
  spmv_balanced(A.short_part(), short_part, x, y);

  // Phase 2: every long row is computed by all threads with a reduction of
  // partial results (§III-E).
  const index_t L = A.num_long_rows();
  const index_t* lrows = A.long_rows();
  const index_t* lrowptr = A.long_rowptr();
  const index_t* lcolind = A.long_colind();
  const value_t* lvals = A.long_values();
  for (index_t k = 0; k < L; ++k) {
    const index_t lo = lrowptr[k];
    const index_t hi = lrowptr[k + 1];
    value_t sum = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : sum)
    for (index_t j = lo; j < hi; ++j) sum += lvals[j] * x[lcolind[j]];
    y[lrows[k]] = sum;
  }
}

void spmv_transpose(const CsrMatrix& A, const value_t* x, value_t* y) noexcept {
  const index_t* rowptr = A.rowptr();
  const index_t* colind = A.colind();
  const value_t* vals = A.values();
  const index_t n = A.nrows();
  const index_t m = A.ncols();
#pragma omp parallel for schedule(static)
  for (index_t j = 0; j < m; ++j) y[j] = 0.0;
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) {
    const value_t xi = x[i];
    for (index_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      const value_t contrib = vals[k] * xi;
#pragma omp atomic
      y[colind[k]] += contrib;
    }
  }
}

CsrMatrix make_regular_access_copy(const CsrMatrix& A) {
  aligned_vector<index_t> rowptr(A.rowptr(), A.rowptr() + A.nrows() + 1);
  aligned_vector<value_t> values(A.values(), A.values() + A.nnz());
  aligned_vector<index_t> colind(static_cast<std::size_t>(A.nnz()));
  // Every access in row i reads x[i]: fully regular, no irregularity left.
  // Needs ncols > row index, which holds for square matrices; for wide
  // matrices the row index is clamped.
  const index_t maxcol = A.ncols() - 1;
  for (index_t i = 0; i < A.nrows(); ++i) {
    const index_t c = i < maxcol ? i : maxcol;
    for (index_t j = A.rowptr()[i]; j < A.rowptr()[i + 1]; ++j)
      colind[static_cast<std::size_t>(j)] = c;
  }
  return CsrMatrix(A.nrows(), A.ncols(), std::move(rowptr), std::move(colind),
                   std::move(values));
}

void spmv_noindex(const CsrMatrix& A, const RowPartition& part,
                  const value_t* x, value_t* y) noexcept {
  const value_t* vals = A.values();
  // Clamp like make_regular_access_copy(): rows past the last column read
  // x[ncols-1], so tall matrices never index x out of bounds.
  const index_t maxcol = A.ncols() - 1;
  run_partitioned(A, part, y, nullptr,
                  [&](index_t i, index_t lo, index_t hi) noexcept {
                    return row_sum_noindex<Compute::Scalar>(
                        vals + lo, hi - lo, x[i < maxcol ? i : maxcol]);
                  });
}

}  // namespace spmvopt::kernels
