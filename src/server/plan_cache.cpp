#include "server/plan_cache.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>
#include <vector>

#include "classify/feature_classifier.hpp"
#include "sparse/binary_io.hpp"
#include "support/timing.hpp"

namespace spmvopt::server {

namespace fs = std::filesystem;

PlanCache::PlanCache(PlanCacheConfig cfg) : cfg_(std::move(cfg)) {
  if (!cfg_.persist_dir.empty()) {
    std::error_code ec;
    fs::create_directories(cfg_.persist_dir, ec);
    // A failed mkdir degrades to memory-only operation: persistence writes
    // below are best-effort and will simply keep failing silently.
  }
}

PlanCache::EntryPtr PlanCache::find(const Fingerprint& fp) {
  std::lock_guard lock(mu_);
  const auto it = entries_.find(fp);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump recency
  ++stats_.hot_hits;
  return *it->second;
}

std::optional<optimize::Plan> PlanCache::lookup_plan(const Fingerprint& fp) {
  const std::string skey = fp.structure_key();
  {
    std::lock_guard lock(mu_);
    const auto it = plan_memo_.find(skey);
    if (it != plan_memo_.end()) return it->second;
  }
  if (cfg_.persist_dir.empty()) return std::nullopt;
  std::ifstream in(fs::path(cfg_.persist_dir) / (skey + ".plan"));
  if (!in) return std::nullopt;
  std::string line;
  std::getline(in, line);
  auto plan = optimize::deserialize_plan(line);
  if (plan) {
    std::lock_guard lock(mu_);
    plan_memo_.emplace(skey, *plan);
  }
  return plan;
}

void PlanCache::remember_plan(const Fingerprint& fp,
                              const optimize::Plan& plan) {
  const std::string skey = fp.structure_key();
  {
    std::lock_guard lock(mu_);
    plan_memo_[skey] = plan;
  }
  if (cfg_.persist_dir.empty()) return;
  // Best-effort: a lost plan file only costs a future re-classification.
  std::ofstream out(fs::path(cfg_.persist_dir) / (skey + ".plan"));
  if (out) out << optimize::serialize_plan(plan) << '\n';
}

void PlanCache::persist_matrix(const Fingerprint& fp, const CsrMatrix& matrix) {
  if (cfg_.persist_dir.empty()) return;
  const fs::path path = fs::path(cfg_.persist_dir) / (fp.key() + ".csrbin");
  std::error_code ec;
  if (fs::exists(path, ec)) return;
  // Atomic tmp+rename write; failure is tolerable (the tier is a cache).
  (void)write_csr_binary_file_checked(path.string(), matrix);
}

void PlanCache::evict_to_fit(std::size_t incoming_bytes) {
  // Caller holds mu_.  Evict cold entries until the incoming entry fits.
  while (!lru_.empty() &&
         stats_.resident_bytes + incoming_bytes > cfg_.max_resident_bytes) {
    const EntryPtr& victim = lru_.back();
    stats_.resident_bytes -= victim->bytes;
    entries_.erase(victim->fp);
    lru_.pop_back();
    ++stats_.evictions;
    --stats_.entries;
  }
}

Expected<PlanCache::EntryPtr> PlanCache::build_and_insert(
    CsrMatrix matrix, const Fingerprint& fp, const optimize::Plan& plan,
    CacheState origin, double classify_seconds) {
  auto entry = std::make_shared<Entry>();
  entry->fp = fp;
  entry->matrix = std::move(matrix);
  entry->plan = plan;
  entry->origin = origin;
  entry->classify_seconds = classify_seconds;

  // Build AFTER the matrix reached its final address: OptimizedSpmv may hold
  // a view of the CsrMatrix it was created from.
  Timer t;
  try {
    entry->spmv = cfg_.engine
                      ? optimize::OptimizedSpmv::create(entry->matrix, plan,
                                                        *cfg_.engine)
                      : optimize::OptimizedSpmv::create(entry->matrix, plan,
                                                        cfg_.nthreads);
  } catch (const std::bad_alloc&) {
    return Error(ErrorCategory::Resource,
                 "plan cache: out of memory converting matrix " + fp.key());
  }
  entry->convert_seconds = t.elapsed_sec();
  entry->bytes = entry->matrix.format_bytes() + entry->spmv.format_bytes();

  if (entry->bytes > cfg_.max_resident_bytes)
    return Error(ErrorCategory::Resource,
                 "plan cache: matrix needs " + std::to_string(entry->bytes) +
                     " resident bytes, over the " +
                     std::to_string(cfg_.max_resident_bytes) + "-byte budget");

  std::lock_guard lock(mu_);
  // Duplicate-admit race: two executors can miss on the same fingerprint and
  // both reach here (the build above runs unlocked, on purpose).  Admitting
  // the second copy would overwrite the entries_ iterator, orphaning the
  // loser's lru_ node — an unevictable ghost that double-counts
  // resident_bytes and entries forever.  Keep the winner, drop our build.
  if (const auto it = entries_.find(fp); it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // bump recency, as a hit
    ++stats_.hot_hits;
    return *it->second;
  }
  evict_to_fit(entry->bytes);
  lru_.push_front(entry);
  entries_[fp] = lru_.begin();
  stats_.resident_bytes += entry->bytes;
  ++stats_.entries;
  return EntryPtr(entry);
}

Expected<PlanCache::EntryPtr> PlanCache::admit(
    CsrMatrix matrix, bool degrade_to_baseline,
    const robust::CancelToken* cancel) {
  // Poll between the heavy stages (fingerprint, classify, convert): an
  // admission abandoned here leaves the cache untouched — no half-built
  // entry, and the persisted image (if any) is independently valid.
  const auto tripped = [cancel] { return cancel && cancel->cancelled(); };
  if (tripped())
    return cancel->to_error("before fingerprinting the submitted matrix");

  const Fingerprint fp = fingerprint_of(matrix);
  if (EntryPtr hit = find(fp)) return hit;

  persist_matrix(fp, matrix);
  if (tripped())
    return cancel->to_error("after fingerprinting, before classification")
        .with_context("while admitting " + fp.key());

  // Overload shedding: skip the classification stage entirely and run the
  // always-valid baseline-CSR plan (the degradation ladder's bottom rung).
  if (degrade_to_baseline)
    return build_and_insert(std::move(matrix), fp, optimize::Plan{},
                            CacheState::Miss, 0.0);

  if (auto plan = lookup_plan(fp)) {
    {
      std::lock_guard lock(mu_);
      ++stats_.warm_hits;
    }
    return build_and_insert(std::move(matrix), fp, *plan, CacheState::Warm,
                            0.0);
  }

  Timer t;
  const auto classes = classify::heuristic_feature_classes(matrix);
  const optimize::Plan plan = optimize::plan_for_classes(classes, matrix);
  const double classify_seconds = t.elapsed_sec();
  remember_plan(fp, plan);
  if (tripped())
    return cancel->to_error("after classification, before conversion")
        .with_context("while admitting " + fp.key());
  {
    std::lock_guard lock(mu_);
    ++stats_.misses;
  }
  return build_and_insert(std::move(matrix), fp, plan, CacheState::Miss,
                          classify_seconds);
}

Expected<PlanCache::EntryPtr> PlanCache::reload(const Fingerprint& fp) {
  if (EntryPtr hit = find(fp)) return hit;
  if (cfg_.persist_dir.empty())
    return Error(ErrorCategory::Format,
                 "unknown matrix fingerprint " + fp.key() +
                     " (not submitted, or evicted; re-submit the matrix)");

  const fs::path path = fs::path(cfg_.persist_dir) / (fp.key() + ".csrbin");
  auto m = read_csr_binary_file_checked(path.string());
  if (!m.ok())
    return Error(ErrorCategory::Format,
                 "unknown matrix fingerprint " + fp.key() +
                     " (no valid persistent image; re-submit the matrix)");
  // The image is named by its fingerprint; verify the content still matches
  // (a renamed or corrupted-but-checksum-valid file must not impersonate).
  if (fingerprint_of(m.value()) != fp)
    return Error(ErrorCategory::Format,
                 "persistent image for " + fp.key() +
                     " does not match its fingerprint; re-submit the matrix");

  optimize::Plan plan;
  if (auto remembered = lookup_plan(fp)) {
    plan = *remembered;
  } else {
    const auto classes = classify::heuristic_feature_classes(m.value());
    plan = optimize::plan_for_classes(classes, m.value());
    remember_plan(fp, plan);
  }
  {
    std::lock_guard lock(mu_);
    ++stats_.persist_hits;
  }
  return build_and_insert(std::move(m.value()), fp, plan, CacheState::Persist,
                          0.0);
}

std::size_t PlanCache::flush() {
  if (cfg_.persist_dir.empty()) return 0;
  // Snapshot under the lock, write without it: the image writes go through
  // the checksummed tmp+rename path and can take a while.
  std::vector<EntryPtr> resident;
  {
    std::lock_guard lock(mu_);
    resident.assign(lru_.begin(), lru_.end());
  }
  for (const EntryPtr& e : resident) {
    persist_matrix(e->fp, e->matrix);
    remember_plan(e->fp, e->plan);
  }
  return resident.size();
}

void PlanCache::evict_all() {
  std::lock_guard lock(mu_);
  stats_.evictions += lru_.size();
  stats_.entries = 0;
  stats_.resident_bytes = 0;
  entries_.clear();
  lru_.clear();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace spmvopt::server
