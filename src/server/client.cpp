#include "server/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "robust/fault_inject.hpp"

namespace spmvopt::server {

namespace {

// splitmix64: a tiny, deterministic jitter stream.  Not for security — it
// only decorrelates retry wakeups across clients.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int connect_unix(const std::string& socket_path, Error* out_err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    *out_err = Error(ErrorCategory::Io,
                     "socket path too long for AF_UNIX: " + socket_path);
    return -1;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *out_err = Error(ErrorCategory::Io,
                     std::string("socket(): ") + std::strerror(errno));
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    *out_err = Error(ErrorCategory::Io, "connect(" + socket_path +
                                            "): " + std::strerror(err) +
                                            " (is spmvoptd running?)");
    return -1;
  }
  return fd;
}

}  // namespace

std::vector<double> backoff_schedule_ms(const RetryPolicy& policy,
                                        std::uint64_t request_id,
                                        int attempts) {
  // Decorrelated jitter (the classic AWS variant): each delay is uniform in
  // [base, prev * 3], capped.  The stream is a pure function of
  // (seed, request_id), so the same call retried twice sleeps identically.
  std::vector<double> delays;
  std::uint64_t state = mix64(policy.seed ^ mix64(request_id));
  double prev = policy.base_delay_ms;
  for (int attempt = 1; attempt < attempts; ++attempt) {
    state = mix64(state);
    const double u =
        static_cast<double>(state >> 11) / 9007199254740992.0;  // [0, 1)
    const double hi = std::min(policy.max_delay_ms, prev * 3.0);
    const double lo = std::min(policy.base_delay_ms, hi);
    const double d = lo + u * (hi - lo);
    delays.push_back(d);
    prev = d;
  }
  return delays;
}

Expected<Client> Client::connect(const std::string& socket_path) {
  Error err(ErrorCategory::Io, "unreachable");
  const int fd = connect_unix(socket_path, &err);
  if (fd < 0) return err;
  return Client(fd, socket_path);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      policy_(other.policy_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    policy_ = other.policy_;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::reconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  Error err(ErrorCategory::Io, "unreachable");
  const int fd = connect_unix(path_, &err);
  if (fd < 0) return err;
  fd_ = fd;
  return Unit{};
}

Expected<Reply> Client::roundtrip_once(const Request& req,
                                       const RequestHeader& hdr) {
  if (fd_ < 0) return Error(ErrorCategory::Io, "client is not connected");
  if (Status s = write_frame(fd_, encode_request(req, hdr)); !s.ok())
    return std::move(s).error().with_context("sending request to spmvoptd");
  auto frame = read_frame(fd_);
  if (!frame.ok())
    return std::move(frame).error().with_context("reading spmvoptd reply");
  if (!frame.value().has_value())
    return Error(ErrorCategory::Io,
                 "server closed the connection before replying");
  auto reply = decode_reply(*frame.value());
  if (!reply.ok())
    return std::move(reply).error().with_context("decoding spmvoptd reply");
  if (reply.value().request_id != hdr.request_id)
    return Error(ErrorCategory::Internal,
                 "reply for request " +
                     std::to_string(reply.value().request_id) +
                     " answered request " + std::to_string(hdr.request_id));
  return std::move(reply.value().reply);
}

Expected<Reply> Client::call(const Request& req, const CallOptions& opts) {
  const RequestHeader hdr{opts.request_id, opts.deadline_ms};
  // Retry-safety is the caller's idempotency claim: only named requests are
  // ever re-sent, and a Shutdown never is (a lost reply leaves the server
  // state unknown — re-sending could kill a freshly restarted instance).
  const bool retryable_call = opts.request_id != 0 &&
                              !std::holds_alternative<ShutdownRequest>(req);
  const int max_attempts =
      retryable_call ? std::max(1, policy_.max_attempts) : 1;
  const std::vector<double> delays =
      backoff_schedule_ms(policy_, opts.request_id, max_attempts);

  Error last(ErrorCategory::Internal, "retry loop made no attempt");
  int attempts_made = 0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      // Deterministic testing: force the "budget exhausted" path without
      // burning real attempts or sleeping out the schedule.
      if (robust::fault_fire("client.retry_exhaust")) break;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          delays[static_cast<std::size_t>(attempt) - 1]));
      if (fd_ < 0) {
        if (Status s = reconnect(); !s.ok()) {
          last = std::move(s).error();
          continue;
        }
      }
    }
    ++attempts_made;

    auto reply = roundtrip_once(req, hdr);
    if (!reply.ok()) {
      last = std::move(reply).error();
      // Transport failures poison the stream: drop the socket so the next
      // attempt reconnects from a clean frame boundary.
      if (last.category() == ErrorCategory::Io && fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
      }
      if (!retryable_call) break;
      continue;
    }
    if (const auto* err = std::get_if<ErrorReply>(&reply.value())) {
      last = Error(err->category, err->message);
      if (err->retryable && retryable_call) continue;
      break;  // typed terminal failure (deadline, cancel, format, ...)
    }
    return std::move(reply.value());
  }
  if (attempts_made > 1)
    return std::move(last).with_context(
        "after " + std::to_string(attempts_made) + " attempts on request " +
        std::to_string(opts.request_id));
  return last;
}

namespace {

// The server replied with a well-formed frame of the wrong type — a protocol
// bug, not a user error.
Error unexpected_reply(const char* expected) {
  return Error(ErrorCategory::Internal,
               std::string("unexpected reply type (wanted ") + expected + ")");
}

}  // namespace

Expected<SubmitReply> Client::submit(const CsrMatrix& A,
                                     const CallOptions& opts) {
  auto reply = call(Request(SubmitRequest{A}), opts);
  if (!reply.ok()) return reply.error();
  auto* ok = std::get_if<SubmitReply>(&reply.value());
  if (!ok) return unexpected_reply("SubmitOk");
  return std::move(*ok);
}

Expected<std::vector<value_t>> Client::run(const Fingerprint& fp,
                                           std::span<const value_t> x,
                                           const CallOptions& opts) {
  RunRequest req;
  req.fp = fp;
  req.x.assign(x.begin(), x.end());
  auto reply = call(Request(std::move(req)), opts);
  if (!reply.ok()) return reply.error();
  auto* ok = std::get_if<RunReply>(&reply.value());
  if (!ok) return unexpected_reply("RunOk");
  return std::move(ok->y);
}

Expected<std::vector<value_t>> Client::run_many(const Fingerprint& fp,
                                                std::span<const value_t> X,
                                                int nrhs, Dtype dtype,
                                                const CallOptions& opts) {
  RunManyRequest req;
  req.fp = fp;
  req.nrhs = static_cast<std::int32_t>(nrhs);
  req.dtype = dtype;
  req.X.assign(X.begin(), X.end());
  auto reply = call(Request(std::move(req)), opts);
  if (!reply.ok()) return reply.error();
  auto* ok = std::get_if<RunManyReply>(&reply.value());
  if (!ok) return unexpected_reply("RunManyOk");
  if (ok->dtype != dtype)
    return Error(ErrorCategory::Format,
                 std::string("run_many: reply dtype ") +
                     dtype_name(ok->dtype) + " does not echo request dtype " +
                     dtype_name(dtype));
  return std::move(ok->Y);
}

Expected<std::vector<value_t>> Client::run_many(const Fingerprint& fp,
                                                std::span<const value_t> X,
                                                int nrhs,
                                                const CallOptions& opts) {
  return run_many(fp, X, nrhs, Dtype::F64, opts);
}

Expected<SolveReply> Client::solve(const Fingerprint& fp, SolveMethod method,
                                   std::span<const value_t> b,
                                   int max_iterations, double rel_tolerance,
                                   const CallOptions& opts) {
  SolveRequest req;
  req.fp = fp;
  req.method = method;
  req.max_iterations = static_cast<std::int32_t>(max_iterations);
  req.rel_tolerance = rel_tolerance;
  req.b.assign(b.begin(), b.end());
  auto reply = call(Request(std::move(req)), opts);
  if (!reply.ok()) return reply.error();
  auto* ok = std::get_if<SolveReply>(&reply.value());
  if (!ok) return unexpected_reply("SolveOk");
  return std::move(*ok);
}

Expected<CancelReply::Outcome> Client::cancel(std::uint64_t target_id) {
  // A cancel is naturally idempotent but races the target's completion; it
  // is sent exactly once so its answer reflects one observable moment.
  auto reply = call(Request(CancelRequest{target_id}), CallOptions{});
  if (!reply.ok()) return reply.error();
  auto* ok = std::get_if<CancelReply>(&reply.value());
  if (!ok) return unexpected_reply("CancelOk");
  return ok->outcome;
}

Expected<std::string> Client::stats_json(const CallOptions& opts) {
  auto reply = call(Request(StatsRequest{}), opts);
  if (!reply.ok()) return reply.error();
  auto* ok = std::get_if<StatsReply>(&reply.value());
  if (!ok) return unexpected_reply("StatsOk");
  return std::move(ok->json);
}

Status Client::ping() {
  auto reply = call(Request(PingRequest{}), CallOptions{});
  if (!reply.ok()) return reply.error();
  const auto* pong = std::get_if<PongReply>(&reply.value());
  if (!pong) return unexpected_reply("Pong");
  if (pong->protocol_version != kProtocolVersion)
    return Error(ErrorCategory::Format,
                 "protocol version mismatch: server speaks v" +
                     std::to_string(pong->protocol_version) + ", client v" +
                     std::to_string(kProtocolVersion));
  return Unit{};
}

Status Client::shutdown_server() {
  auto reply = call(Request(ShutdownRequest{}), CallOptions{});
  if (!reply.ok()) return reply.error();
  if (!std::holds_alternative<ShutdownReply>(reply.value()))
    return unexpected_reply("ShutdownOk");
  return Unit{};
}

}  // namespace spmvopt::server
