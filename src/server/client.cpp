#include "server/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace spmvopt::server {

Expected<Client> Client::connect(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path))
    return Error(ErrorCategory::Io,
                 "socket path too long for AF_UNIX: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    return Error(ErrorCategory::Io,
                 std::string("socket(): ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Error(ErrorCategory::Io, "connect(" + socket_path +
                                        "): " + std::strerror(err) +
                                        " (is spmvoptd running?)");
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Expected<Reply> Client::roundtrip(const Request& req) {
  if (fd_ < 0) return Error(ErrorCategory::Io, "client is not connected");
  if (Status s = write_frame(fd_, encode_request(req)); !s.ok())
    return std::move(s).error().with_context("sending request to spmvoptd");
  auto frame = read_frame(fd_);
  if (!frame.ok())
    return std::move(frame).error().with_context("reading spmvoptd reply");
  if (!frame.value().has_value())
    return Error(ErrorCategory::Io,
                 "server closed the connection before replying");
  auto reply = decode_reply(*frame.value());
  if (!reply.ok())
    return std::move(reply).error().with_context("decoding spmvoptd reply");
  // A typed server-side failure travels back as the Error it was.
  if (const auto* err = std::get_if<ErrorReply>(&reply.value()))
    return Error(err->category, err->message);
  return std::move(reply.value());
}

namespace {

// The server replied with a well-formed frame of the wrong type — a protocol
// bug, not a user error.
Error unexpected_reply(const char* expected) {
  return Error(ErrorCategory::Internal,
               std::string("unexpected reply type (wanted ") + expected + ")");
}

}  // namespace

Expected<SubmitReply> Client::submit(const CsrMatrix& A) {
  auto reply = roundtrip(Request(SubmitRequest{A}));
  if (!reply.ok()) return reply.error();
  auto* ok = std::get_if<SubmitReply>(&reply.value());
  if (!ok) return unexpected_reply("SubmitOk");
  return std::move(*ok);
}

Expected<std::vector<value_t>> Client::run(const Fingerprint& fp,
                                           std::span<const value_t> x) {
  RunRequest req;
  req.fp = fp;
  req.x.assign(x.begin(), x.end());
  auto reply = roundtrip(Request(std::move(req)));
  if (!reply.ok()) return reply.error();
  auto* ok = std::get_if<RunReply>(&reply.value());
  if (!ok) return unexpected_reply("RunOk");
  return std::move(ok->y);
}

Expected<std::vector<value_t>> Client::run_many(const Fingerprint& fp,
                                                std::span<const value_t> X,
                                                int nrhs) {
  RunManyRequest req;
  req.fp = fp;
  req.nrhs = static_cast<std::int32_t>(nrhs);
  req.X.assign(X.begin(), X.end());
  auto reply = roundtrip(Request(std::move(req)));
  if (!reply.ok()) return reply.error();
  auto* ok = std::get_if<RunManyReply>(&reply.value());
  if (!ok) return unexpected_reply("RunManyOk");
  return std::move(ok->Y);
}

Expected<SolveReply> Client::solve(const Fingerprint& fp, SolveMethod method,
                                   std::span<const value_t> b,
                                   int max_iterations, double rel_tolerance) {
  SolveRequest req;
  req.fp = fp;
  req.method = method;
  req.max_iterations = static_cast<std::int32_t>(max_iterations);
  req.rel_tolerance = rel_tolerance;
  req.b.assign(b.begin(), b.end());
  auto reply = roundtrip(Request(std::move(req)));
  if (!reply.ok()) return reply.error();
  auto* ok = std::get_if<SolveReply>(&reply.value());
  if (!ok) return unexpected_reply("SolveOk");
  return std::move(*ok);
}

Expected<std::string> Client::stats_json() {
  auto reply = roundtrip(Request(StatsRequest{}));
  if (!reply.ok()) return reply.error();
  auto* ok = std::get_if<StatsReply>(&reply.value());
  if (!ok) return unexpected_reply("StatsOk");
  return std::move(ok->json);
}

Status Client::ping() {
  auto reply = roundtrip(Request(PingRequest{}));
  if (!reply.ok()) return reply.error();
  const auto* pong = std::get_if<PongReply>(&reply.value());
  if (!pong) return unexpected_reply("Pong");
  if (pong->protocol_version != kProtocolVersion)
    return Error(ErrorCategory::Format,
                 "protocol version mismatch: server speaks v" +
                     std::to_string(pong->protocol_version) + ", client v" +
                     std::to_string(kProtocolVersion));
  return Unit{};
}

Status Client::shutdown_server() {
  auto reply = roundtrip(Request(ShutdownRequest{}));
  if (!reply.ok()) return reply.error();
  if (!std::holds_alternative<ShutdownReply>(reply.value()))
    return unexpected_reply("ShutdownOk");
  return Unit{};
}

}  // namespace spmvopt::server
