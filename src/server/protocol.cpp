#include "server/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "robust/fault_inject.hpp"
#include "sparse/binary_io.hpp"

namespace spmvopt::server {

namespace {

// ------------------------------------------------------------- byte writer

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void bytes(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  /// Length-prefixed byte string.
  void blob(std::string_view s) {
    u64(s.size());
    buf_.append(s);
  }
  void doubles(std::span<const value_t> v) {
    u64(v.size());
    bytes(v.data(), v.size_bytes());
  }
  /// Same vector, but entries travel as IEEE-754 binary32 (half the bytes).
  /// In-memory representation stays vector<value_t> on both sides.
  void floats(std::span<const value_t> v) {
    u64(v.size());
    for (const value_t e : v) {
      const float f = static_cast<float>(e);
      std::uint32_t bits;
      std::memcpy(&bits, &f, sizeof bits);
      u32(bits);
    }
  }
  /// Dispatch on a run_many payload's wire dtype.
  void values(std::span<const value_t> v, Dtype dtype) {
    if (dtype == Dtype::F32)
      floats(v);
    else
      doubles(v);
  }
  void fingerprint(const Fingerprint& f) {
    i32(f.nrows);
    i32(f.ncols);
    i32(f.nnz);
    u32(f.structure_crc);
    u32(f.values_crc);
  }

  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

// ------------------------------------------------------------- byte reader

/// Bounds-checked cursor over a payload.  Every get returns false once the
/// payload is exhausted; callers funnel that into one Format error, so a
/// truncated frame can never read past the buffer or half-fill a message.
class Reader {
 public:
  explicit Reader(std::string_view buf) : buf_(buf) {}

  bool u8(std::uint8_t& out) {
    if (buf_.size() - pos_ < 1) return fail();
    out = static_cast<std::uint8_t>(buf_[pos_++]);
    return true;
  }
  bool u32(std::uint32_t& out) {
    if (buf_.size() - pos_ < 4) return fail();
    out = 0;
    for (int i = 0; i < 4; ++i)
      out |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(buf_[pos_ + i]))
             << (8 * i);
    pos_ += 4;
    return true;
  }
  bool i32(std::int32_t& out) {
    std::uint32_t u = 0;
    if (!u32(u)) return false;
    out = static_cast<std::int32_t>(u);
    return true;
  }
  bool u64(std::uint64_t& out) {
    std::uint32_t lo = 0, hi = 0;
    if (!u32(lo) || !u32(hi)) return false;
    out = (static_cast<std::uint64_t>(hi) << 32) | lo;
    return true;
  }
  bool f64(double& out) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&out, &bits, sizeof out);
    return true;
  }
  bool blob(std::string_view& out) {
    std::uint64_t n = 0;
    if (!u64(n)) return false;
    if (n > buf_.size() - pos_) return fail();
    out = buf_.substr(pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return true;
  }
  bool doubles(std::vector<value_t>& out) {
    std::uint64_t n = 0;
    if (!u64(n)) return false;
    if (n > (buf_.size() - pos_) / sizeof(value_t)) return fail();
    out.resize(static_cast<std::size_t>(n));
    std::memcpy(out.data(), buf_.data() + pos_,
                static_cast<std::size_t>(n) * sizeof(value_t));
    pos_ += static_cast<std::size_t>(n) * sizeof(value_t);
    return true;
  }
  bool floats(std::vector<value_t>& out) {
    std::uint64_t n = 0;
    if (!u64(n)) return false;
    if (n > (buf_.size() - pos_) / sizeof(float)) return fail();
    out.resize(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < out.size(); ++i) {
      std::uint32_t bits = 0;
      u32(bits);  // cannot fail: length was bounds-checked above
      float f;
      std::memcpy(&f, &bits, sizeof f);
      out[i] = static_cast<value_t>(f);
    }
    return true;
  }
  bool values(std::vector<value_t>& out, Dtype dtype) {
    return dtype == Dtype::F32 ? floats(out) : doubles(out);
  }
  bool fingerprint(Fingerprint& f) {
    return i32(f.nrows) && i32(f.ncols) && i32(f.nnz) &&
           u32(f.structure_crc) && u32(f.values_crc);
  }

  [[nodiscard]] bool truncated() const noexcept { return truncated_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == buf_.size(); }

 private:
  bool fail() noexcept {
    truncated_ = true;
    return false;
  }

  std::string_view buf_;
  std::size_t pos_ = 0;
  bool truncated_ = false;
};

Error truncation_error(MsgType t) {
  return Error(ErrorCategory::Format,
               "protocol: truncated or malformed message body (type " +
                   std::to_string(static_cast<int>(t)) + ")");
}

Error trailing_error(MsgType t) {
  return Error(ErrorCategory::Format,
               "protocol: trailing bytes after message body (type " +
                   std::to_string(static_cast<int>(t)) + ")");
}

/// Validate a wire dtype byte.  The rejection names the offending value so a
/// future-dtype client gets an actionable error, not a generic truncation.
[[nodiscard]] std::optional<Error> parse_dtype(std::uint8_t byte, Dtype& out) {
  if (byte > static_cast<std::uint8_t>(Dtype::F32))
    return Error(ErrorCategory::Format,
                 "protocol: unknown dtype " + std::to_string(byte) +
                     " (this side understands f64=0, f32=1)");
  out = static_cast<Dtype>(byte);
  return std::nullopt;
}

}  // namespace

const char* cache_state_name(CacheState s) noexcept {
  switch (s) {
    case CacheState::Hot: return "hot";
    case CacheState::Warm: return "warm";
    case CacheState::Persist: return "persist";
    case CacheState::Miss: return "miss";
  }
  return "?";
}

// ----------------------------------------------------------------- encode

std::string encode_request(const Request& req, const RequestHeader& hdr) {
  Writer w;
  w.u8(kV2Magic);
  std::visit(
      [&w, &hdr](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        const auto envelope = [&w, &hdr](MsgType t) {
          w.u8(static_cast<std::uint8_t>(t));
          w.u64(hdr.request_id);
          w.u32(hdr.deadline_ms);
        };
        if constexpr (std::is_same_v<T, SubmitRequest>) {
          envelope(MsgType::Submit);
          std::ostringstream img;
          write_csr_binary(img, r.matrix);
          w.blob(img.str());
        } else if constexpr (std::is_same_v<T, RunRequest>) {
          envelope(MsgType::Run);
          w.fingerprint(r.fp);
          w.doubles(r.x);
        } else if constexpr (std::is_same_v<T, RunManyRequest>) {
          envelope(MsgType::RunMany);
          w.fingerprint(r.fp);
          w.i32(r.nrhs);
          w.u8(static_cast<std::uint8_t>(r.dtype));
          w.values(r.X, r.dtype);
        } else if constexpr (std::is_same_v<T, SolveRequest>) {
          envelope(MsgType::Solve);
          w.fingerprint(r.fp);
          w.u8(static_cast<std::uint8_t>(r.method));
          w.i32(r.max_iterations);
          w.f64(r.rel_tolerance);
          w.doubles(r.b);
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          envelope(MsgType::Stats);
        } else if constexpr (std::is_same_v<T, PingRequest>) {
          envelope(MsgType::Ping);
          w.u32(kProtocolVersion);
        } else if constexpr (std::is_same_v<T, ShutdownRequest>) {
          envelope(MsgType::Shutdown);
        } else if constexpr (std::is_same_v<T, CancelRequest>) {
          envelope(MsgType::Cancel);
          w.u64(r.target_id);
        }
      },
      req);
  return w.take();
}

std::string encode_reply(const Reply& reply, std::uint64_t request_id) {
  Writer w;
  w.u8(kV2Magic);
  std::visit(
      [&w, request_id](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        const auto envelope = [&w, request_id](MsgType t) {
          w.u8(static_cast<std::uint8_t>(t));
          w.u64(request_id);
        };
        if constexpr (std::is_same_v<T, SubmitReply>) {
          envelope(MsgType::SubmitOk);
          w.fingerprint(r.fp);
          w.u8(static_cast<std::uint8_t>(r.state));
          w.blob(r.plan);
          w.f64(r.pre_seconds);
        } else if constexpr (std::is_same_v<T, RunReply>) {
          envelope(MsgType::RunOk);
          w.doubles(r.y);
        } else if constexpr (std::is_same_v<T, RunManyReply>) {
          envelope(MsgType::RunManyOk);
          w.i32(r.nrhs);
          w.u8(static_cast<std::uint8_t>(r.dtype));
          w.values(r.Y, r.dtype);
        } else if constexpr (std::is_same_v<T, SolveReply>) {
          envelope(MsgType::SolveOk);
          w.u8(r.converged ? 1 : 0);
          w.i32(r.iterations);
          w.f64(r.residual);
          w.doubles(r.x);
        } else if constexpr (std::is_same_v<T, StatsReply>) {
          envelope(MsgType::StatsOk);
          w.blob(r.json);
        } else if constexpr (std::is_same_v<T, PongReply>) {
          envelope(MsgType::Pong);
          w.u32(r.protocol_version);
        } else if constexpr (std::is_same_v<T, ShutdownReply>) {
          envelope(MsgType::ShutdownOk);
        } else if constexpr (std::is_same_v<T, CancelReply>) {
          envelope(MsgType::CancelOk);
          w.u8(static_cast<std::uint8_t>(r.outcome));
        } else if constexpr (std::is_same_v<T, ErrorReply>) {
          envelope(MsgType::Error);
          w.u8(static_cast<std::uint8_t>(r.category));
          w.u8(r.retryable ? 1 : 0);
          w.blob(r.message);
        }
      },
      reply);
  return w.take();
}

// ----------------------------------------------------------------- decode

namespace {

/// True when `b` is a type byte the v1 protocol could legitimately have sent
/// first in a payload (requests, and replies for the client side).
bool plausible_v1_type(std::uint8_t b) noexcept {
  return (b >= 1 && b <= 7) || (b >= 64 && b <= 70) || b == 127;
}

Error version_error(std::uint8_t first_byte) {
  if (plausible_v1_type(first_byte))
    return Error(ErrorCategory::Format,
                 "protocol: v1 frame rejected (type byte " +
                     std::to_string(first_byte) +
                     "); this endpoint speaks protocol v" +
                     std::to_string(kProtocolVersion) +
                     " — upgrade the client");
  return Error(ErrorCategory::Format,
               "protocol: unknown version magic byte " +
                   std::to_string(first_byte));
}

}  // namespace

std::optional<MsgType> peek_type(std::string_view payload) noexcept {
  if (payload.empty()) return std::nullopt;
  const auto first = static_cast<std::uint8_t>(payload[0]);
  if (first == kV2Magic) {
    if (payload.size() < 2) return std::nullopt;
    return static_cast<MsgType>(static_cast<std::uint8_t>(payload[1]));
  }
  return static_cast<MsgType>(first);  // v1 payload: the raw type byte
}

std::optional<RequestHeader> peek_request_header(
    std::string_view payload) noexcept {
  Reader r(payload);
  std::uint8_t magic = 0, type = 0;
  RequestHeader hdr;
  if (!r.u8(magic) || magic != kV2Magic || !r.u8(type) ||
      !r.u64(hdr.request_id) || !r.u32(hdr.deadline_ms))
    return std::nullopt;
  return hdr;
}

Expected<RequestEnvelope> decode_request(std::string_view payload) {
  Reader r(payload);
  std::uint8_t magic = 0;
  if (!r.u8(magic))
    return Error(ErrorCategory::Format, "protocol: empty request payload");
  if (magic != kV2Magic) return version_error(magic);
  std::uint8_t type_byte = 0;
  RequestHeader hdr;
  if (!r.u8(type_byte) || !r.u64(hdr.request_id) || !r.u32(hdr.deadline_ms))
    return Error(ErrorCategory::Format,
                 "protocol: truncated request envelope");
  const auto type = static_cast<MsgType>(type_byte);

  const auto finish = [&r, &hdr, type](Request req) -> Expected<RequestEnvelope> {
    if (r.truncated()) return truncation_error(type);
    if (!r.exhausted()) return trailing_error(type);
    return RequestEnvelope{hdr, std::move(req)};
  };

  switch (type) {
    case MsgType::Submit: {
      std::string_view img;
      if (!r.blob(img)) return truncation_error(type);
      if (!r.exhausted()) return trailing_error(type);
      std::istringstream in{std::string(img)};
      auto m = read_csr_binary_checked(in);
      if (!m.ok())
        return std::move(m).error().with_context(
            "while decoding a submitted matrix image");
      return RequestEnvelope{hdr, SubmitRequest{std::move(m.value())}};
    }
    case MsgType::Run: {
      RunRequest req;
      r.fingerprint(req.fp);
      r.doubles(req.x);
      return finish(std::move(req));
    }
    case MsgType::RunMany: {
      RunManyRequest req;
      std::uint8_t dtype = 0;
      r.fingerprint(req.fp);
      r.i32(req.nrhs);
      r.u8(dtype);
      if (r.truncated()) return truncation_error(type);
      if (auto err = parse_dtype(dtype, req.dtype)) return *std::move(err);
      r.values(req.X, req.dtype);
      return finish(std::move(req));
    }
    case MsgType::Solve: {
      SolveRequest req;
      std::uint8_t method = 0;
      r.fingerprint(req.fp);
      r.u8(method);
      r.i32(req.max_iterations);
      r.f64(req.rel_tolerance);
      r.doubles(req.b);
      if (method != static_cast<std::uint8_t>(SolveMethod::Cg) &&
          method != static_cast<std::uint8_t>(SolveMethod::Bicgstab))
        return Error(ErrorCategory::Format,
                     "protocol: unknown solve method " + std::to_string(method));
      req.method = static_cast<SolveMethod>(method);
      return finish(std::move(req));
    }
    case MsgType::Stats:
      return finish(StatsRequest{});
    case MsgType::Ping: {
      std::uint32_t version = 0;
      r.u32(version);
      if (r.truncated()) return truncation_error(type);
      if (version != kProtocolVersion)
        return Error(ErrorCategory::Format,
                     "protocol: version mismatch (peer " +
                         std::to_string(version) + ", this side " +
                         std::to_string(kProtocolVersion) + ")");
      return finish(PingRequest{});
    }
    case MsgType::Shutdown:
      return finish(ShutdownRequest{});
    case MsgType::Cancel: {
      CancelRequest req;
      r.u64(req.target_id);
      return finish(req);
    }
    default:
      return Error(ErrorCategory::Format, "protocol: unknown request type " +
                                              std::to_string(type_byte));
  }
}

Expected<ReplyEnvelope> decode_reply(std::string_view payload) {
  Reader r(payload);
  std::uint8_t magic = 0;
  if (!r.u8(magic))
    return Error(ErrorCategory::Format, "protocol: empty reply payload");
  if (magic != kV2Magic) return version_error(magic);
  std::uint8_t type_byte = 0;
  std::uint64_t request_id = 0;
  if (!r.u8(type_byte) || !r.u64(request_id))
    return Error(ErrorCategory::Format, "protocol: truncated reply envelope");
  const auto type = static_cast<MsgType>(type_byte);

  const auto finish = [&r, request_id,
                       type](Reply reply) -> Expected<ReplyEnvelope> {
    if (r.truncated()) return truncation_error(type);
    if (!r.exhausted()) return trailing_error(type);
    return ReplyEnvelope{request_id, std::move(reply)};
  };

  switch (type) {
    case MsgType::SubmitOk: {
      SubmitReply rep;
      std::uint8_t state = 0;
      std::string_view plan;
      r.fingerprint(rep.fp);
      r.u8(state);
      r.blob(plan);
      r.f64(rep.pre_seconds);
      if (state > static_cast<std::uint8_t>(CacheState::Miss))
        return Error(ErrorCategory::Format,
                     "protocol: unknown cache state " + std::to_string(state));
      rep.state = static_cast<CacheState>(state);
      rep.plan = std::string(plan);
      return finish(std::move(rep));
    }
    case MsgType::RunOk: {
      RunReply rep;
      r.doubles(rep.y);
      return finish(std::move(rep));
    }
    case MsgType::RunManyOk: {
      RunManyReply rep;
      std::uint8_t dtype = 0;
      r.i32(rep.nrhs);
      r.u8(dtype);
      if (r.truncated()) return truncation_error(type);
      if (auto err = parse_dtype(dtype, rep.dtype)) return *std::move(err);
      r.values(rep.Y, rep.dtype);
      return finish(std::move(rep));
    }
    case MsgType::SolveOk: {
      SolveReply rep;
      std::uint8_t converged = 0;
      r.u8(converged);
      r.i32(rep.iterations);
      r.f64(rep.residual);
      r.doubles(rep.x);
      rep.converged = (converged != 0);
      return finish(std::move(rep));
    }
    case MsgType::StatsOk: {
      StatsReply rep;
      std::string_view json;
      r.blob(json);
      rep.json = std::string(json);
      return finish(std::move(rep));
    }
    case MsgType::Pong: {
      PongReply rep;
      r.u32(rep.protocol_version);
      return finish(rep);
    }
    case MsgType::ShutdownOk:
      return finish(ShutdownReply{});
    case MsgType::CancelOk: {
      CancelReply rep;
      std::uint8_t outcome = 0;
      r.u8(outcome);
      if (outcome > static_cast<std::uint8_t>(CancelReply::Outcome::Running))
        return Error(ErrorCategory::Format,
                     "protocol: unknown cancel outcome " +
                         std::to_string(outcome));
      rep.outcome = static_cast<CancelReply::Outcome>(outcome);
      return finish(rep);
    }
    case MsgType::Error: {
      ErrorReply rep;
      std::uint8_t cat = 0;
      std::uint8_t retryable = 0;
      std::string_view msg;
      r.u8(cat);
      r.u8(retryable);
      r.blob(msg);
      if (cat > static_cast<std::uint8_t>(ErrorCategory::Cancelled))
        return Error(ErrorCategory::Format,
                     "protocol: unknown error category " + std::to_string(cat));
      rep.category = static_cast<ErrorCategory>(cat);
      rep.retryable = (retryable != 0);
      rep.message = std::string(msg);
      return finish(std::move(rep));
    }
    default:
      return Error(ErrorCategory::Format,
                   "protocol: unknown reply type " + std::to_string(type_byte));
  }
}

// ---------------------------------------------------------------- framing

Status write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFramePayload)
    return Error(ErrorCategory::Resource,
                 "protocol: frame payload of " +
                     std::to_string(payload.size()) + " bytes exceeds the " +
                     std::to_string(kMaxFramePayload) + "-byte ceiling");
  char prefix[4];
  const auto n = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    prefix[i] = static_cast<char>((n >> (8 * i)) & 0xff);

  // sendmsg() with MSG_NOSIGNAL, not write(): a peer that vanished mid-reply
  // must surface as EPIPE, not kill the server with SIGPIPE.  Frames only
  // ever travel over sockets (Unix-domain or socketpair in tests).  The
  // prefix and payload go out as one scatter-gather vector — one syscall in
  // the common case — and a short send (signal, full socket buffer) advances
  // the vector and loops; it is never treated as a failure, let alone frame
  // truncation.
  iovec iov[2];
  iov[0].iov_base = prefix;
  iov[0].iov_len = sizeof prefix;
  iov[1].iov_base = const_cast<char*>(payload.data());
  iov[1].iov_len = payload.size();
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = 2;
  std::size_t remaining = sizeof prefix + payload.size();
  while (remaining > 0) {
    const ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Error(ErrorCategory::Io,
                   std::string("protocol: frame write failed: ") +
                       std::strerror(errno));
    }
    remaining -= static_cast<std::size_t>(w);
    auto advanced = static_cast<std::size_t>(w);
    while (advanced > 0 && msg.msg_iovlen > 0) {
      iovec& head = msg.msg_iov[0];
      const std::size_t take = std::min(advanced, head.iov_len);
      head.iov_base = static_cast<char*>(head.iov_base) + take;
      head.iov_len -= take;
      advanced -= take;
      if (head.iov_len == 0) {
        ++msg.msg_iov;
        --msg.msg_iovlen;
      }
    }
  }
  return Unit{};
}

Expected<std::optional<std::string>> read_frame(int fd) {
  // Returns bytes read; 0 on clean EOF; -1 on error.  Loops over EINTR and
  // partial reads.
  const auto read_all = [fd](char* p, std::size_t len) -> ssize_t {
    std::size_t got = 0;
    while (got < len) {
      const ssize_t r = ::read(fd, p + got, len - got);
      if (r < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      if (r == 0) break;
      got += static_cast<std::size_t>(r);
    }
    return static_cast<ssize_t>(got);
  };

  char prefix[4];
  const ssize_t pn = read_all(prefix, sizeof prefix);
  if (pn < 0)
    return Error(ErrorCategory::Io,
                 std::string("protocol: frame read failed: ") +
                     std::strerror(errno));
  if (pn == 0) return std::optional<std::string>{};  // clean EOF
  if (pn < static_cast<ssize_t>(sizeof prefix))
    return Error(ErrorCategory::Format,
                 "protocol: connection closed inside a frame length prefix");

  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(prefix[i]))
           << (8 * i);
  if (len == 0)
    return Error(ErrorCategory::Format, "protocol: empty frame");
  if (len > kMaxFramePayload)
    return Error(ErrorCategory::Resource,
                 "protocol: declared frame length " + std::to_string(len) +
                     " exceeds the " + std::to_string(kMaxFramePayload) +
                     "-byte ceiling");

  std::string payload(len, '\0');
  const ssize_t got = read_all(payload.data(), len);
  if (got < 0)
    return Error(ErrorCategory::Io,
                 std::string("protocol: frame read failed: ") +
                     std::strerror(errno));
  if (robust::fault_fire("server.frame_truncate") && len > 1)
    payload.resize(len / 2);  // simulated mid-frame cut; decode must reject
  if (static_cast<std::uint32_t>(got) < len)
    return Error(ErrorCategory::Format,
                 "protocol: connection closed mid-frame (" +
                     std::to_string(got) + " of " + std::to_string(len) +
                     " payload bytes)");
  return std::optional<std::string>(std::move(payload));
}

}  // namespace spmvopt::server
