#include "server/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "robust/fault_inject.hpp"
#include "sparse/binary_io.hpp"

namespace spmvopt::server {

namespace {

// ------------------------------------------------------------- byte writer

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void bytes(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  /// Length-prefixed byte string.
  void blob(std::string_view s) {
    u64(s.size());
    buf_.append(s);
  }
  void doubles(std::span<const value_t> v) {
    u64(v.size());
    bytes(v.data(), v.size_bytes());
  }
  void fingerprint(const Fingerprint& f) {
    i32(f.nrows);
    i32(f.ncols);
    i32(f.nnz);
    u32(f.structure_crc);
    u32(f.values_crc);
  }

  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

// ------------------------------------------------------------- byte reader

/// Bounds-checked cursor over a payload.  Every get returns false once the
/// payload is exhausted; callers funnel that into one Format error, so a
/// truncated frame can never read past the buffer or half-fill a message.
class Reader {
 public:
  explicit Reader(std::string_view buf) : buf_(buf) {}

  bool u8(std::uint8_t& out) {
    if (buf_.size() - pos_ < 1) return fail();
    out = static_cast<std::uint8_t>(buf_[pos_++]);
    return true;
  }
  bool u32(std::uint32_t& out) {
    if (buf_.size() - pos_ < 4) return fail();
    out = 0;
    for (int i = 0; i < 4; ++i)
      out |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(buf_[pos_ + i]))
             << (8 * i);
    pos_ += 4;
    return true;
  }
  bool i32(std::int32_t& out) {
    std::uint32_t u = 0;
    if (!u32(u)) return false;
    out = static_cast<std::int32_t>(u);
    return true;
  }
  bool u64(std::uint64_t& out) {
    std::uint32_t lo = 0, hi = 0;
    if (!u32(lo) || !u32(hi)) return false;
    out = (static_cast<std::uint64_t>(hi) << 32) | lo;
    return true;
  }
  bool f64(double& out) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&out, &bits, sizeof out);
    return true;
  }
  bool blob(std::string_view& out) {
    std::uint64_t n = 0;
    if (!u64(n)) return false;
    if (n > buf_.size() - pos_) return fail();
    out = buf_.substr(pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return true;
  }
  bool doubles(std::vector<value_t>& out) {
    std::uint64_t n = 0;
    if (!u64(n)) return false;
    if (n > (buf_.size() - pos_) / sizeof(value_t)) return fail();
    out.resize(static_cast<std::size_t>(n));
    std::memcpy(out.data(), buf_.data() + pos_,
                static_cast<std::size_t>(n) * sizeof(value_t));
    pos_ += static_cast<std::size_t>(n) * sizeof(value_t);
    return true;
  }
  bool fingerprint(Fingerprint& f) {
    return i32(f.nrows) && i32(f.ncols) && i32(f.nnz) &&
           u32(f.structure_crc) && u32(f.values_crc);
  }

  [[nodiscard]] bool truncated() const noexcept { return truncated_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == buf_.size(); }

 private:
  bool fail() noexcept {
    truncated_ = true;
    return false;
  }

  std::string_view buf_;
  std::size_t pos_ = 0;
  bool truncated_ = false;
};

Error truncation_error(MsgType t) {
  return Error(ErrorCategory::Format,
               "protocol: truncated or malformed message body (type " +
                   std::to_string(static_cast<int>(t)) + ")");
}

Error trailing_error(MsgType t) {
  return Error(ErrorCategory::Format,
               "protocol: trailing bytes after message body (type " +
                   std::to_string(static_cast<int>(t)) + ")");
}

}  // namespace

const char* cache_state_name(CacheState s) noexcept {
  switch (s) {
    case CacheState::Hot: return "hot";
    case CacheState::Warm: return "warm";
    case CacheState::Persist: return "persist";
    case CacheState::Miss: return "miss";
  }
  return "?";
}

// ----------------------------------------------------------------- encode

std::string encode_request(const Request& req) {
  Writer w;
  std::visit(
      [&w](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, SubmitRequest>) {
          w.u8(static_cast<std::uint8_t>(MsgType::Submit));
          std::ostringstream img;
          write_csr_binary(img, r.matrix);
          w.blob(img.str());
        } else if constexpr (std::is_same_v<T, RunRequest>) {
          w.u8(static_cast<std::uint8_t>(MsgType::Run));
          w.fingerprint(r.fp);
          w.doubles(r.x);
        } else if constexpr (std::is_same_v<T, RunManyRequest>) {
          w.u8(static_cast<std::uint8_t>(MsgType::RunMany));
          w.fingerprint(r.fp);
          w.i32(r.nrhs);
          w.doubles(r.X);
        } else if constexpr (std::is_same_v<T, SolveRequest>) {
          w.u8(static_cast<std::uint8_t>(MsgType::Solve));
          w.fingerprint(r.fp);
          w.u8(static_cast<std::uint8_t>(r.method));
          w.i32(r.max_iterations);
          w.f64(r.rel_tolerance);
          w.doubles(r.b);
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          w.u8(static_cast<std::uint8_t>(MsgType::Stats));
        } else if constexpr (std::is_same_v<T, PingRequest>) {
          w.u8(static_cast<std::uint8_t>(MsgType::Ping));
          w.u32(kProtocolVersion);
        } else if constexpr (std::is_same_v<T, ShutdownRequest>) {
          w.u8(static_cast<std::uint8_t>(MsgType::Shutdown));
        }
      },
      req);
  return w.take();
}

std::string encode_reply(const Reply& reply) {
  Writer w;
  std::visit(
      [&w](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, SubmitReply>) {
          w.u8(static_cast<std::uint8_t>(MsgType::SubmitOk));
          w.fingerprint(r.fp);
          w.u8(static_cast<std::uint8_t>(r.state));
          w.blob(r.plan);
          w.f64(r.pre_seconds);
        } else if constexpr (std::is_same_v<T, RunReply>) {
          w.u8(static_cast<std::uint8_t>(MsgType::RunOk));
          w.doubles(r.y);
        } else if constexpr (std::is_same_v<T, RunManyReply>) {
          w.u8(static_cast<std::uint8_t>(MsgType::RunManyOk));
          w.i32(r.nrhs);
          w.doubles(r.Y);
        } else if constexpr (std::is_same_v<T, SolveReply>) {
          w.u8(static_cast<std::uint8_t>(MsgType::SolveOk));
          w.u8(r.converged ? 1 : 0);
          w.i32(r.iterations);
          w.f64(r.residual);
          w.doubles(r.x);
        } else if constexpr (std::is_same_v<T, StatsReply>) {
          w.u8(static_cast<std::uint8_t>(MsgType::StatsOk));
          w.blob(r.json);
        } else if constexpr (std::is_same_v<T, PongReply>) {
          w.u8(static_cast<std::uint8_t>(MsgType::Pong));
          w.u32(r.protocol_version);
        } else if constexpr (std::is_same_v<T, ShutdownReply>) {
          w.u8(static_cast<std::uint8_t>(MsgType::ShutdownOk));
        } else if constexpr (std::is_same_v<T, ErrorReply>) {
          w.u8(static_cast<std::uint8_t>(MsgType::Error));
          w.u8(static_cast<std::uint8_t>(r.category));
          w.blob(r.message);
        }
      },
      reply);
  return w.take();
}

// ----------------------------------------------------------------- decode

std::optional<MsgType> peek_type(std::string_view payload) noexcept {
  if (payload.empty()) return std::nullopt;
  return static_cast<MsgType>(static_cast<std::uint8_t>(payload[0]));
}

Expected<Request> decode_request(std::string_view payload) {
  Reader r(payload);
  std::uint8_t type_byte = 0;
  if (!r.u8(type_byte))
    return Error(ErrorCategory::Format, "protocol: empty request payload");
  const auto type = static_cast<MsgType>(type_byte);

  const auto finish = [&r, type](Request req) -> Expected<Request> {
    if (r.truncated()) return truncation_error(type);
    if (!r.exhausted()) return trailing_error(type);
    return req;
  };

  switch (type) {
    case MsgType::Submit: {
      std::string_view img;
      if (!r.blob(img)) return truncation_error(type);
      if (!r.exhausted()) return trailing_error(type);
      std::istringstream in{std::string(img)};
      auto m = read_csr_binary_checked(in);
      if (!m.ok())
        return std::move(m).error().with_context(
            "while decoding a submitted matrix image");
      return Request(SubmitRequest{std::move(m.value())});
    }
    case MsgType::Run: {
      RunRequest req;
      r.fingerprint(req.fp);
      r.doubles(req.x);
      return finish(std::move(req));
    }
    case MsgType::RunMany: {
      RunManyRequest req;
      r.fingerprint(req.fp);
      r.i32(req.nrhs);
      r.doubles(req.X);
      return finish(std::move(req));
    }
    case MsgType::Solve: {
      SolveRequest req;
      std::uint8_t method = 0;
      r.fingerprint(req.fp);
      r.u8(method);
      r.i32(req.max_iterations);
      r.f64(req.rel_tolerance);
      r.doubles(req.b);
      if (method != static_cast<std::uint8_t>(SolveMethod::Cg) &&
          method != static_cast<std::uint8_t>(SolveMethod::Bicgstab))
        return Error(ErrorCategory::Format,
                     "protocol: unknown solve method " + std::to_string(method));
      req.method = static_cast<SolveMethod>(method);
      return finish(std::move(req));
    }
    case MsgType::Stats:
      return finish(StatsRequest{});
    case MsgType::Ping: {
      std::uint32_t version = 0;
      r.u32(version);
      if (r.truncated()) return truncation_error(type);
      if (version != kProtocolVersion)
        return Error(ErrorCategory::Format,
                     "protocol: version mismatch (peer " +
                         std::to_string(version) + ", this side " +
                         std::to_string(kProtocolVersion) + ")");
      return finish(PingRequest{});
    }
    case MsgType::Shutdown:
      return finish(ShutdownRequest{});
    default:
      return Error(ErrorCategory::Format, "protocol: unknown request type " +
                                              std::to_string(type_byte));
  }
}

Expected<Reply> decode_reply(std::string_view payload) {
  Reader r(payload);
  std::uint8_t type_byte = 0;
  if (!r.u8(type_byte))
    return Error(ErrorCategory::Format, "protocol: empty reply payload");
  const auto type = static_cast<MsgType>(type_byte);

  const auto finish = [&r, type](Reply reply) -> Expected<Reply> {
    if (r.truncated()) return truncation_error(type);
    if (!r.exhausted()) return trailing_error(type);
    return reply;
  };

  switch (type) {
    case MsgType::SubmitOk: {
      SubmitReply rep;
      std::uint8_t state = 0;
      std::string_view plan;
      r.fingerprint(rep.fp);
      r.u8(state);
      r.blob(plan);
      r.f64(rep.pre_seconds);
      if (state > static_cast<std::uint8_t>(CacheState::Miss))
        return Error(ErrorCategory::Format,
                     "protocol: unknown cache state " + std::to_string(state));
      rep.state = static_cast<CacheState>(state);
      rep.plan = std::string(plan);
      return finish(std::move(rep));
    }
    case MsgType::RunOk: {
      RunReply rep;
      r.doubles(rep.y);
      return finish(std::move(rep));
    }
    case MsgType::RunManyOk: {
      RunManyReply rep;
      r.i32(rep.nrhs);
      r.doubles(rep.Y);
      return finish(std::move(rep));
    }
    case MsgType::SolveOk: {
      SolveReply rep;
      std::uint8_t converged = 0;
      r.u8(converged);
      r.i32(rep.iterations);
      r.f64(rep.residual);
      r.doubles(rep.x);
      rep.converged = (converged != 0);
      return finish(std::move(rep));
    }
    case MsgType::StatsOk: {
      StatsReply rep;
      std::string_view json;
      r.blob(json);
      rep.json = std::string(json);
      return finish(std::move(rep));
    }
    case MsgType::Pong: {
      PongReply rep;
      r.u32(rep.protocol_version);
      return finish(rep);
    }
    case MsgType::ShutdownOk:
      return finish(ShutdownReply{});
    case MsgType::Error: {
      ErrorReply rep;
      std::uint8_t cat = 0;
      std::string_view msg;
      r.u8(cat);
      r.blob(msg);
      if (cat > static_cast<std::uint8_t>(ErrorCategory::Internal))
        return Error(ErrorCategory::Format,
                     "protocol: unknown error category " + std::to_string(cat));
      rep.category = static_cast<ErrorCategory>(cat);
      rep.message = std::string(msg);
      return finish(std::move(rep));
    }
    default:
      return Error(ErrorCategory::Format,
                   "protocol: unknown reply type " + std::to_string(type_byte));
  }
}

// ---------------------------------------------------------------- framing

Status write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFramePayload)
    return Error(ErrorCategory::Resource,
                 "protocol: frame payload of " +
                     std::to_string(payload.size()) + " bytes exceeds the " +
                     std::to_string(kMaxFramePayload) + "-byte ceiling");
  char prefix[4];
  const auto n = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    prefix[i] = static_cast<char>((n >> (8 * i)) & 0xff);

  // send() with MSG_NOSIGNAL, not write(): a peer that vanished mid-reply
  // must surface as EPIPE, not kill the server with SIGPIPE.  Frames only
  // ever travel over sockets (Unix-domain or socketpair in tests).
  const auto write_all = [fd](const char* p, std::size_t len) -> bool {
    while (len > 0) {
      const ssize_t w = ::send(fd, p, len, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += w;
      len -= static_cast<std::size_t>(w);
    }
    return true;
  };
  if (!write_all(prefix, sizeof prefix) ||
      !write_all(payload.data(), payload.size()))
    return Error(ErrorCategory::Io,
                 std::string("protocol: frame write failed: ") +
                     std::strerror(errno));
  return Unit{};
}

Expected<std::optional<std::string>> read_frame(int fd) {
  // Returns bytes read; 0 on clean EOF; -1 on error.  Loops over EINTR and
  // partial reads.
  const auto read_all = [fd](char* p, std::size_t len) -> ssize_t {
    std::size_t got = 0;
    while (got < len) {
      const ssize_t r = ::read(fd, p + got, len - got);
      if (r < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      if (r == 0) break;
      got += static_cast<std::size_t>(r);
    }
    return static_cast<ssize_t>(got);
  };

  char prefix[4];
  const ssize_t pn = read_all(prefix, sizeof prefix);
  if (pn < 0)
    return Error(ErrorCategory::Io,
                 std::string("protocol: frame read failed: ") +
                     std::strerror(errno));
  if (pn == 0) return std::optional<std::string>{};  // clean EOF
  if (pn < static_cast<ssize_t>(sizeof prefix))
    return Error(ErrorCategory::Format,
                 "protocol: connection closed inside a frame length prefix");

  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(prefix[i]))
           << (8 * i);
  if (len == 0)
    return Error(ErrorCategory::Format, "protocol: empty frame");
  if (len > kMaxFramePayload)
    return Error(ErrorCategory::Resource,
                 "protocol: declared frame length " + std::to_string(len) +
                     " exceeds the " + std::to_string(kMaxFramePayload) +
                     "-byte ceiling");

  std::string payload(len, '\0');
  const ssize_t got = read_all(payload.data(), len);
  if (got < 0)
    return Error(ErrorCategory::Io,
                 std::string("protocol: frame read failed: ") +
                     std::strerror(errno));
  if (robust::fault_fire("server.frame_truncate") && len > 1)
    payload.resize(len / 2);  // simulated mid-frame cut; decode must reject
  if (static_cast<std::uint32_t>(got) < len)
    return Error(ErrorCategory::Format,
                 "protocol: connection closed mid-frame (" +
                     std::to_string(got) + " of " + std::to_string(len) +
                     " payload bytes)");
  return std::optional<std::string>(std::move(payload));
}

}  // namespace spmvopt::server
