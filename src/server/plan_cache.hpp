// Fingerprint-keyed plan + optimized-matrix cache (DESIGN.md §9).
//
// The paper's Table V argues that feature extraction, classification and
// format conversion are one-time costs amortized over repeated SpMV calls.
// This cache is where the server turns that argument into mechanism, with
// three tiers from most to least amortized:
//
//   hot      full-identity hit: the resident OptimizedSpmv is reused — no
//            feature extraction, no classification, no conversion;
//   warm     structure hit (same pattern, different values): the previously
//            selected Plan is reused — classification is skipped, only the
//            conversion re-runs on the new values;
//   persist  the matrix was seen by an earlier server life (or evicted): its
//            binary image and plan reload from disk through the checksummed
//            binary cache — .mtx parsing and classification are skipped;
//   miss     full pipeline: heuristic feature classification picks a plan,
//            conversion builds the kernel.
//
// Resident entries are LRU-evicted under a byte budget.  Entries hand out
// shared_ptr references, so an eviction (or evict_all) concurrent with an
// executing job only drops the cache's reference — the job's matrix stays
// alive until it finishes (the `server.evict_during_run` fault point
// exercises exactly this).
//
// Thread safety: all mutating calls must come from one thread at a time (the
// server serializes onto its executor); stats() is safe from anywhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "engine/execution_engine.hpp"
#include "optimize/optimized_spmv.hpp"
#include "robust/cancel.hpp"
#include "robust/error.hpp"
#include "server/protocol.hpp"
#include "sparse/csr.hpp"
#include "support/fingerprint.hpp"

namespace spmvopt::server {

struct PlanCacheConfig {
  /// Ceiling on resident matrix + converted-format bytes; LRU beyond.
  std::size_t max_resident_bytes = std::size_t{1} << 30;
  /// Persistent tier directory ("<key>.csrbin" + "<structure_key>.plan");
  /// empty disables the tier.  Created on first use.
  std::string persist_dir;
  /// Engine the cached kernels bind to; null builds unbound kernels.
  engine::ExecutionEngine* engine = nullptr;
  /// Thread count for unbound kernels (ignored when engine is set).
  int nthreads = 0;
};

struct PlanCacheStats {
  std::uint64_t hot_hits = 0;
  std::uint64_t warm_hits = 0;     ///< plan reused via structure match
  std::uint64_t persist_hits = 0;  ///< matrix reloaded from the disk tier
  std::uint64_t misses = 0;        ///< full classification pipeline ran
  std::uint64_t evictions = 0;
  std::size_t resident_bytes = 0;
  std::size_t entries = 0;
};

class PlanCache {
 public:
  struct Entry {
    Fingerprint fp;
    CsrMatrix matrix;  ///< owned: OptimizedSpmv may view it
    optimize::Plan plan;
    optimize::OptimizedSpmv spmv;
    std::size_t bytes = 0;        ///< CSR + converted-format footprint
    CacheState origin = CacheState::Miss;  ///< how this entry was built
    double classify_seconds = 0.0;
    double convert_seconds = 0.0;
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  explicit PlanCache(PlanCacheConfig cfg);

  /// Resident lookup by full identity; bumps LRU recency.  Null on miss.
  [[nodiscard]] EntryPtr find(const Fingerprint& fp);

  /// Admission path for a submitted matrix: fingerprint, walk the tiers,
  /// build whatever is missing, insert, evict LRU back under budget.
  /// `degrade_to_baseline` (the overload-shedding rung) skips classification
  /// and pins the baseline-CSR plan.  Resource error when the matrix alone
  /// exceeds the byte budget.  `cancel`, when set, is polled between the
  /// heavy stages (classification, conversion) — a trip abandons admission
  /// with a typed DeadlineExceeded/Cancelled error and leaves the cache
  /// unchanged (no half-built entry).
  [[nodiscard]] Expected<EntryPtr> admit(
      CsrMatrix matrix, bool degrade_to_baseline = false,
      const robust::CancelToken* cancel = nullptr);

  /// Recover an evicted/earlier-life matrix from the persistent tier by
  /// fingerprint.  Format error when the tier is disabled or has no image
  /// under this identity.
  [[nodiscard]] Expected<EntryPtr> reload(const Fingerprint& fp);

  /// Drop every resident entry (in-flight holders keep theirs alive).
  void evict_all();

  /// Write every resident matrix image + remembered plan to the persistent
  /// tier (the graceful-drain path: nothing resident-only is lost across a
  /// restart).  Best-effort; returns the number of entries walked.  No-op
  /// (returns 0) when the tier is disabled.
  std::size_t flush();

  [[nodiscard]] PlanCacheStats stats() const;
  [[nodiscard]] const PlanCacheConfig& config() const noexcept { return cfg_; }

 private:
  /// Plan lookup through memory memo, then the persistent tier; nullopt
  /// when this structure has never been classified.
  [[nodiscard]] std::optional<optimize::Plan> lookup_plan(
      const Fingerprint& fp);
  /// Record a freshly classified plan in the memo and persistent tier.
  void remember_plan(const Fingerprint& fp, const optimize::Plan& plan);
  /// Build + insert an entry for `matrix` under a decided plan.
  [[nodiscard]] Expected<EntryPtr> build_and_insert(CsrMatrix matrix,
                                                    const Fingerprint& fp,
                                                    const optimize::Plan& plan,
                                                    CacheState origin,
                                                    double classify_seconds);
  void persist_matrix(const Fingerprint& fp, const CsrMatrix& matrix);
  void evict_to_fit(std::size_t incoming_bytes);

  PlanCacheConfig cfg_;

  mutable std::mutex mu_;
  /// LRU order, most recent at the front; the map points into the list.
  std::list<EntryPtr> lru_;
  std::unordered_map<Fingerprint, std::list<EntryPtr>::iterator,
                     FingerprintHash>
      entries_;
  /// Structure-key -> previously selected plan (the "warm" tier's memory).
  std::unordered_map<std::string, optimize::Plan> plan_memo_;
  PlanCacheStats stats_;
};

}  // namespace spmvopt::server
