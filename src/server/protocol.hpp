// spmvoptd wire protocol: length-prefixed binary frames over a stream.
//
// Frame layout (DESIGN.md §9):
//
//   [u32 payload_length][payload]
//   payload = [u8 MsgType][message body, type-specific]
//
// All integers are little-endian fixed-width; doubles are raw IEEE-754 bits.
// A submitted matrix travels as an embedded binary-cache image (the
// "SPMVCSR2" format of sparse/binary_io), so the payload inherits the cache's
// CRC32 integrity check — a corrupted matrix blob is a typed Format error,
// never a malformed CsrMatrix.
//
// The codec layer below is transport-free (encode/decode on byte strings) so
// it unit-tests without sockets; read_frame()/write_frame() add the framing
// over a file descriptor.  Decode failures are categorized: truncation and
// junk are Format, oversized frames are Resource, fd failures are Io.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "robust/error.hpp"
#include "sparse/csr.hpp"
#include "support/fingerprint.hpp"
#include "support/types.hpp"

namespace spmvopt::server {

/// Bumped when the frame or any message body changes incompatibly.  Sent in
/// every Ping/Pong so mismatched peers fail loudly at handshake time.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Ceiling on a single frame payload (Resource error beyond).  Generous —
/// a frame carries at most one matrix image — but bounded, so a garbage
/// length prefix cannot drive a multi-GiB allocation.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

enum class MsgType : std::uint8_t {
  // Requests.
  Submit = 1,
  Run = 2,
  RunMany = 3,
  Solve = 4,
  Stats = 5,
  Ping = 6,
  Shutdown = 7,
  // Replies.
  SubmitOk = 64,
  RunOk = 65,
  RunManyOk = 66,
  SolveOk = 67,
  StatsOk = 68,
  Pong = 69,
  ShutdownOk = 70,
  Error = 127,
};

enum class SolveMethod : std::uint8_t { Cg = 1, Bicgstab = 2 };

/// How a submit was satisfied — the Table V amortization ladder, most to
/// least amortized (see PlanCache).
enum class CacheState : std::uint8_t {
  Hot = 0,      ///< full-identity hit: no feature/classify/convert work at all
  Warm = 1,     ///< structure hit: plan reused, conversion re-ran
  Persist = 2,  ///< matrix + plan reloaded from the persistent tier
  Miss = 3,     ///< full pipeline: features + classification + conversion
};

/// "hot" | "warm" | "persist" | "miss".
[[nodiscard]] const char* cache_state_name(CacheState s) noexcept;

// --------------------------------------------------------------- requests

struct SubmitRequest {
  CsrMatrix matrix;
};

struct RunRequest {
  Fingerprint fp;
  std::vector<value_t> x;  ///< ncols entries
};

struct RunManyRequest {
  Fingerprint fp;
  std::int32_t nrhs = 0;
  std::vector<value_t> X;  ///< nrhs * ncols entries, vector-major
};

struct SolveRequest {
  Fingerprint fp;
  SolveMethod method = SolveMethod::Cg;
  std::int32_t max_iterations = 1000;
  double rel_tolerance = 1e-8;
  std::vector<value_t> b;  ///< nrows entries (square systems only)
};

struct StatsRequest {};
struct PingRequest {};
struct ShutdownRequest {};

using Request = std::variant<SubmitRequest, RunRequest, RunManyRequest,
                             SolveRequest, StatsRequest, PingRequest,
                             ShutdownRequest>;

// ----------------------------------------------------------------- replies

struct SubmitReply {
  Fingerprint fp;
  CacheState state = CacheState::Miss;
  std::string plan;            ///< Plan::to_string() of what will run
  double pre_seconds = 0.0;    ///< classify + convert cost paid by this submit
};

struct RunReply {
  std::vector<value_t> y;
};

struct RunManyReply {
  std::int32_t nrhs = 0;
  std::vector<value_t> Y;
};

struct SolveReply {
  bool converged = false;
  std::int32_t iterations = 0;
  double residual = 0.0;
  std::vector<value_t> x;
};

struct StatsReply {
  std::string json;  ///< structured counters, see server::stats_to_json
};

struct PongReply {
  std::uint32_t protocol_version = kProtocolVersion;
};

struct ShutdownReply {};

struct ErrorReply {
  ErrorCategory category = ErrorCategory::Internal;
  std::string message;
};

using Reply = std::variant<SubmitReply, RunReply, RunManyReply, SolveReply,
                           StatsReply, PongReply, ShutdownReply, ErrorReply>;

// ------------------------------------------------------------------ codec

/// Serialize to a frame payload (type byte + body); framing not included.
[[nodiscard]] std::string encode_request(const Request& req);
[[nodiscard]] std::string encode_reply(const Reply& reply);

/// Parse a frame payload.  Truncated/garbage bodies -> Format; an embedded
/// matrix image that exceeds the ingestion ceilings -> Resource.
[[nodiscard]] Expected<Request> decode_request(std::string_view payload);
[[nodiscard]] Expected<Reply> decode_reply(std::string_view payload);

/// MsgType of a payload without a full decode; nullopt when empty.
[[nodiscard]] std::optional<MsgType> peek_type(std::string_view payload) noexcept;

// ---------------------------------------------------------------- framing

/// Write one [length][payload] frame; retries partial writes.  Io on fd
/// failure, Resource when payload exceeds kMaxFramePayload.
Status write_frame(int fd, std::string_view payload);

/// Read one frame.  nullopt on clean EOF at a frame boundary (peer closed);
/// Format on mid-frame EOF or an oversized/zero length prefix; Io on fd
/// failure.  The `server.frame_truncate` fault point drops the payload tail
/// to exercise the truncation path deterministically.
[[nodiscard]] Expected<std::optional<std::string>> read_frame(int fd);

}  // namespace spmvopt::server
