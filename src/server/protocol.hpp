// spmvoptd wire protocol: length-prefixed binary frames over a stream.
//
// Frame layout (DESIGN.md §9, §10), protocol v3 (v2 envelope, unchanged):
//
//   [u32 payload_length][payload]
//   request payload = [u8 0xA2][u8 MsgType][u64 request_id][u32 deadline_ms]
//                     [message body, type-specific]
//   reply payload   = [u8 0xA2][u8 MsgType][u64 request_id]
//                     [message body, type-specific]
//
// The leading 0xA2 version magic disambiguates against v1 payloads, whose
// first byte was the MsgType (1..7 / 64..70 / 127 — none of which is 0xA2),
// so a v1 client frame decodes to a well-formed typed rejection instead of
// being misparsed.  `request_id` is a caller-chosen idempotency token (0 =
// unnamed): it keys the `cancel(request_id)` verb and the client's
// retry-safety rule, and every reply echoes the id of the request it answers.
// `deadline_ms` (0 = none) arms a server-side CancelToken covering queue wait
// and execution.
//
// All integers are little-endian fixed-width; doubles are raw IEEE-754 bits.
// A submitted matrix travels as an embedded binary-cache image (the
// "SPMVCSR2" format of sparse/binary_io), so the payload inherits the cache's
// CRC32 integrity check — a corrupted matrix blob is a typed Format error,
// never a malformed CsrMatrix.
//
// The codec layer below is transport-free (encode/decode on byte strings) so
// it unit-tests without sockets; read_frame()/write_frame() add the framing
// over a file descriptor.  Decode failures are categorized: truncation and
// junk are Format, oversized frames are Resource, fd failures are Io.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "robust/error.hpp"
#include "sparse/csr.hpp"
#include "support/dtype.hpp"
#include "support/fingerprint.hpp"
#include "support/types.hpp"

namespace spmvopt::server {

/// Bumped when the frame or any message body changes incompatibly.  Sent in
/// every Ping/Pong so mismatched peers fail loudly at handshake time.
/// v2: request/reply envelope (version magic, request id, deadline), the
/// Cancel verb, and the retryable bit on ErrorReply.
/// v3: dtype byte in the RunMany request and RunManyOk reply bodies (between
/// nrhs and the value payload) — a v2 peer would misparse it as the low byte
/// of the value-array length, so the body change forces the bump.
inline constexpr std::uint32_t kProtocolVersion = 3;

/// First payload byte of every v2+ message; disjoint from every v1 type
/// byte.  v3 keeps the v2 envelope, so the magic is unchanged — version
/// mismatch within the magic is caught by the Ping/Pong handshake.
inline constexpr std::uint8_t kV2Magic = 0xA2;

/// Ceiling on a single frame payload (Resource error beyond).  Generous —
/// a frame carries at most one matrix image — but bounded, so a garbage
/// length prefix cannot drive a multi-GiB allocation.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

enum class MsgType : std::uint8_t {
  // Requests.
  Submit = 1,
  Run = 2,
  RunMany = 3,
  Solve = 4,
  Stats = 5,
  Ping = 6,
  Shutdown = 7,
  Cancel = 8,
  // Replies.
  SubmitOk = 64,
  RunOk = 65,
  RunManyOk = 66,
  SolveOk = 67,
  StatsOk = 68,
  Pong = 69,
  ShutdownOk = 70,
  CancelOk = 71,
  Error = 127,
};

enum class SolveMethod : std::uint8_t { Cg = 1, Bicgstab = 2 };

/// How a submit was satisfied — the Table V amortization ladder, most to
/// least amortized (see PlanCache).
enum class CacheState : std::uint8_t {
  Hot = 0,      ///< full-identity hit: no feature/classify/convert work at all
  Warm = 1,     ///< structure hit: plan reused, conversion re-ran
  Persist = 2,  ///< matrix + plan reloaded from the persistent tier
  Miss = 3,     ///< full pipeline: features + classification + conversion
};

/// "hot" | "warm" | "persist" | "miss".
[[nodiscard]] const char* cache_state_name(CacheState s) noexcept;

// --------------------------------------------------------------- requests

struct SubmitRequest {
  CsrMatrix matrix;
};

struct RunRequest {
  Fingerprint fp;
  std::vector<value_t> x;  ///< ncols entries
};

struct RunManyRequest {
  Fingerprint fp;
  std::int32_t nrhs = 0;
  /// Wire dtype of X — and of the reply's Y, which echoes it.  F32 halves
  /// the payload (entries travel as IEEE-754 binary32); in memory both sides
  /// keep vector<value_t> and the codec converts at the boundary, matching
  /// the typed-view convention (DESIGN.md §8).  An unknown dtype byte
  /// decodes to a Format error naming the value.
  Dtype dtype = Dtype::F64;
  std::vector<value_t> X;  ///< nrhs * ncols entries, vector-major
};

struct SolveRequest {
  Fingerprint fp;
  SolveMethod method = SolveMethod::Cg;
  std::int32_t max_iterations = 1000;
  double rel_tolerance = 1e-8;
  std::vector<value_t> b;  ///< nrows entries (square systems only)
};

struct StatsRequest {};
struct PingRequest {};
struct ShutdownRequest {};

/// Cancel the queued or executing request carrying `target_id` (idempotent;
/// unknown ids answer CancelReply::Unknown, never an error).
struct CancelRequest {
  std::uint64_t target_id = 0;
};

using Request = std::variant<SubmitRequest, RunRequest, RunManyRequest,
                             SolveRequest, StatsRequest, PingRequest,
                             ShutdownRequest, CancelRequest>;

/// Per-request envelope fields shared by every request type.
struct RequestHeader {
  std::uint64_t request_id = 0;  ///< idempotency token; 0 = unnamed
  std::uint32_t deadline_ms = 0; ///< end-to-end budget; 0 = no deadline
};

struct RequestEnvelope {
  RequestHeader header;
  Request request;
};

// ----------------------------------------------------------------- replies

struct SubmitReply {
  Fingerprint fp;
  CacheState state = CacheState::Miss;
  std::string plan;            ///< Plan::to_string() of what will run
  double pre_seconds = 0.0;    ///< classify + convert cost paid by this submit
};

struct RunReply {
  std::vector<value_t> y;
};

struct RunManyReply {
  std::int32_t nrhs = 0;
  Dtype dtype = Dtype::F64;  ///< echo of the request's dtype; codes Y's bits
  std::vector<value_t> Y;
};

struct SolveReply {
  bool converged = false;
  std::int32_t iterations = 0;
  double residual = 0.0;
  std::vector<value_t> x;
};

struct StatsReply {
  std::string json;  ///< structured counters, see server::stats_to_json
};

struct PongReply {
  std::uint32_t protocol_version = kProtocolVersion;
};

struct ShutdownReply {};

struct CancelReply {
  enum class Outcome : std::uint8_t {
    Unknown = 0,  ///< no queued or executing request carries the id
    Queued = 1,   ///< cancelled while still waiting in the queue
    Running = 2,  ///< cancellation requested on the executing job
  };
  Outcome outcome = Outcome::Unknown;
};

struct ErrorReply {
  ErrorCategory category = ErrorCategory::Internal;
  /// Server marks errors a client may safely retry (transient overload,
  /// drain-time rejection) — the client's backoff loop keys off this, not
  /// off message text.
  bool retryable = false;
  std::string message;
};

using Reply = std::variant<SubmitReply, RunReply, RunManyReply, SolveReply,
                           StatsReply, PongReply, ShutdownReply, CancelReply,
                           ErrorReply>;

struct ReplyEnvelope {
  std::uint64_t request_id = 0;  ///< echo of the request's id
  Reply reply;
};

// ------------------------------------------------------------------ codec

/// Serialize to a frame payload (envelope + body); framing not included.
[[nodiscard]] std::string encode_request(const Request& req,
                                         const RequestHeader& hdr = {});
[[nodiscard]] std::string encode_reply(const Reply& reply,
                                       std::uint64_t request_id = 0);

/// Parse a frame payload.  Truncated/garbage bodies -> Format; an embedded
/// matrix image that exceeds the ingestion ceilings -> Resource.  A v1
/// payload (no 0xA2 magic, recognizable v1 type byte) -> a Format error that
/// names the version mismatch, so pre-v2 clients get a typed rejection.
[[nodiscard]] Expected<RequestEnvelope> decode_request(
    std::string_view payload);
[[nodiscard]] Expected<ReplyEnvelope> decode_reply(std::string_view payload);

/// MsgType of a payload without a full decode; nullopt when empty.  For a
/// v1 payload this returns the raw v1 type byte — good enough for routing,
/// since the full decode produces the typed rejection.
[[nodiscard]] std::optional<MsgType> peek_type(std::string_view payload) noexcept;

/// Envelope header of a v2 request payload without decoding the body (the
/// reader thread stamps deadlines and routes Cancel with this); nullopt for
/// v1/truncated payloads.
[[nodiscard]] std::optional<RequestHeader> peek_request_header(
    std::string_view payload) noexcept;

// ---------------------------------------------------------------- framing

/// Write one [length][payload] frame; retries partial writes.  Io on fd
/// failure, Resource when payload exceeds kMaxFramePayload.
Status write_frame(int fd, std::string_view payload);

/// Read one frame.  nullopt on clean EOF at a frame boundary (peer closed);
/// Format on mid-frame EOF or an oversized/zero length prefix; Io on fd
/// failure.  The `server.frame_truncate` fault point drops the payload tail
/// to exercise the truncation path deterministically.
[[nodiscard]] Expected<std::optional<std::string>> read_frame(int fd);

}  // namespace spmvopt::server
