// spmvoptd server core + Unix-domain-socket transport (DESIGN.md §9, §10).
//
// Two layers:
//
//   SpmvServer    the transport-free request processor: owns the persistent
//                 ExecutionEngine and the fingerprint-keyed PlanCache, and
//                 turns decoded Requests into Replies.  With the default
//                 single executor, handle() serializes internally (the
//                 mailbox engine admits one dispatch at a time); with
//                 `executors > 1` the engine is backed by a shared
//                 work-stealing StealPool (DESIGN.md §12) and handle() is
//                 fully concurrent — M requests' dispatches interleave on
//                 the pool workers.  Either way it is callable from tests
//                 in-process and from the socket executors alike.  A
//                 caller-supplied CancelToken threads through to the kernels
//                 and solvers, so deadline/cancel trips surface as typed
//                 ErrorReplies with partial-progress context.
//
//   SocketServer  the transport: an accept loop on a Unix-domain socket, one
//                 reader thread per connection feeding a per-client FIFO job
//                 queue, and M executor threads draining the queues
//                 round-robin onto SpmvServer (a connection is served by one
//                 executor at a time, preserving per-client reply order).
//                 Admission control happens at enqueue time, *before* a job
//                 can occupy an executor:
//
//                   in_flight >= shed_in_flight  -> submits run the
//                       baseline-CSR plan (classification cost shed);
//                   in_flight >= max_in_flight   -> typed Resource error
//                       reply (retryable), job never enqueued;
//                   draining                     -> typed Resource error
//                       reply (retryable), job never enqueued.
//
// Request lifecycle (v2): the reader stamps each job with its envelope
// header and arms a CancelToken from `deadline_ms` covering queue wait AND
// execution.  The executor re-checks the token at dequeue (a job whose
// deadline passed while queued answers DeadlineExceeded without running) and
// passes it into handle().  `cancel(request_id)` is routed out-of-band by
// the reader — it skips admission control, because cancellation must work
// precisely when the server is saturated.
//
// Self-healing: a watchdog thread sweeps every executing job.  A job still
// running `watchdog_grace_ms` past its deadline (or past `watchdog_stuck_ms`
// with no deadline) means the cooperative poll failed — the watchdog cancels
// its token, and once an executor surfaces, the engine worker team (or the
// shared pool, in multi-executor mode) is recycled between jobs: the
// recycling executor first quiesces its peers, because a pool recycle
// requires no dispatch in flight.  Every fire and recycle is recorded in the
// server's health log.
//
// Error replies never tear down a connection: a malformed frame gets a typed
// Format reply and the reader keeps going (only a broken fd ends a session).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/execution_engine.hpp"
#include "robust/cancel.hpp"
#include "robust/degradation.hpp"
#include "server/plan_cache.hpp"
#include "server/protocol.hpp"
#include "support/topology.hpp"

namespace spmvopt::server {

struct ServerConfig {
  PlanCacheConfig cache;          ///< cache.engine is overwritten by the server
  int engine_threads = 0;         ///< compute team size; <= 0: default_threads()
  PinPolicy pin = PinPolicy::None;  ///< None by default: a daemon should not
                                    ///< claim CPUs unless told to
  /// Concurrent executor threads draining the job queues.  1 (default)
  /// keeps the single-executor condvar-mailbox engine; > 1 backs the engine
  /// with a shared work-stealing StealPool so M jobs' dispatches interleave
  /// on one worker set instead of serializing (DESIGN.md §12).
  int executors = 1;
  /// Jobs queued-or-executing before new ones are rejected (Resource).
  int max_in_flight = 64;
  /// Jobs queued-or-executing before submits shed to baseline-CSR plans.
  int shed_in_flight = 32;
  /// Watchdog sweep interval; <= 0 disables the watchdog thread.
  int watchdog_poll_ms = 50;
  /// Slack past an executing job's deadline before the watchdog declares
  /// the cooperative poll failed and escalates (cancel + team recycle).
  int watchdog_grace_ms = 500;
  /// Ceiling on a deadline-less executing job before it counts as stuck;
  /// <= 0 disables the no-deadline ceiling.
  int watchdog_stuck_ms = 30'000;
};

/// Structured request/latency/cache counters, exposed via a Stats request.
struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t submits = 0;
  std::uint64_t runs = 0;
  std::uint64_t run_manys = 0;
  std::uint64_t solves = 0;
  std::uint64_t errors = 0;             ///< Error replies from handle()
  std::uint64_t rejected_overload = 0;  ///< jobs refused at admission
  std::uint64_t shed_submits = 0;       ///< submits degraded to baseline
  std::uint64_t deadline_exceeded = 0;  ///< typed DeadlineExceeded replies
  std::uint64_t cancelled = 0;          ///< typed Cancelled replies
  std::uint64_t expired_in_queue = 0;   ///< jobs already tripped at dequeue
  std::uint64_t watchdog_fires = 0;     ///< overdue/stuck jobs detected
  std::uint64_t engine_recycles = 0;    ///< worker-team re-spawns
  std::uint64_t engine_recycle_failures = 0;  ///< vetoed re-spawns (old team kept)
  double busy_seconds = 0.0;            ///< total time inside handle()
  double max_request_seconds = 0.0;
  PlanCacheStats cache;
  std::uint64_t engine_dispatches = 0;
  int engine_threads = 0;
  int executors = 1;                     ///< configured executor count
  std::uint64_t peak_concurrent = 0;     ///< max simultaneous handle() calls
  // Shared-pool counters (all zero in single-executor mailbox mode).
  std::uint64_t pool_workers = 0;
  std::uint64_t pool_tasks = 0;   ///< spans executed
  std::uint64_t pool_steals = 0;  ///< successful steals
  std::uint64_t pool_parks = 0;   ///< worker park transitions
};

/// Render the counters as a stable-key JSON object (the StatsReply body).
[[nodiscard]] std::string stats_to_json(const ServerStats& s);

class SpmvServer {
 public:
  explicit SpmvServer(ServerConfig cfg = {});

  SpmvServer(const SpmvServer&) = delete;
  SpmvServer& operator=(const SpmvServer&) = delete;

  /// Process one request (by value: a submit's matrix is moved into the
  /// cache, not copied).  `shed` marks the overload rung decided at
  /// admission: submits then run the baseline plan.  `cancel`, when set, is
  /// polled cooperatively by the kernels/solvers; a trip yields a typed
  /// DeadlineExceeded/Cancelled ErrorReply with partial-progress context.
  /// Never throws — every failure becomes an ErrorReply.
  [[nodiscard]] Reply handle(Request req, bool shed = false,
                             const robust::CancelToken* cancel = nullptr);

  /// Transport callback: a job was refused at admission (overload ladder's
  /// top rung); feeds the rejected_overload counter.
  void note_rejected();

  /// Transport callback: a queued job's token had already tripped at
  /// dequeue time (deadline passed or cancel verb landed while waiting);
  /// the job never executed.
  void note_expired_in_queue(robust::CancelToken::Why why);

  /// Transport callback: the watchdog caught an overdue/stuck job and
  /// cancelled its token.  Lock-free counter + health-log record — callable
  /// while handle() is (potentially wedged) inside a job.
  void note_watchdog(std::uint64_t request_id, double running_seconds);

  /// Self-healing escalation: join, re-spawn and re-pin the engine worker
  /// team.  Serializes against handle(), so a recycle never races a
  /// dispatch — call it between jobs.  False when the re-spawn was vetoed
  /// (`engine.team_respawn` fault): the old team keeps serving and the
  /// failure is recorded.
  [[nodiscard]] bool recycle_engine(const std::string& reason);

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServerConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] PlanCache& cache() noexcept { return cache_; }

  /// Snapshot of the self-healing record: one entry per watchdog fire and
  /// per team recycle (attempted or vetoed).
  [[nodiscard]] robust::DegradationLog health() const;

  /// Set once a ShutdownRequest was processed; the transport polls it.
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

 private:
  Reply handle_submit(SubmitRequest& req, bool shed, bool& shed_applied,
                      const robust::CancelToken* cancel);
  Reply handle_run(const RunRequest& req, const robust::CancelToken& tok);
  Reply handle_run_many(const RunManyRequest& req,
                        const robust::CancelToken& tok);
  Reply handle_solve(const SolveRequest& req, const robust::CancelToken& tok);

  /// Resident lookup falling back to the persistent tier; error reply text
  /// tells the client to re-submit.
  Expected<PlanCache::EntryPtr> lookup(const Fingerprint& fp);

  ServerConfig cfg_;
  /// The shared work-stealing pool behind multi-executor mode; null when
  /// executors <= 1.  Declared before engine_ (the engine holds a pointer
  /// into it and must be destroyed first).
  std::unique_ptr<engine::StealPool> pool_;
  engine::ExecutionEngine engine_;
  PlanCache cache_;
  std::atomic<bool> shutdown_{false};

  /// Serializes dispatches in mailbox mode (held across handle()); in
  /// pooled mode handle() never takes it — dispatches are concurrent and
  /// recycle quiescence is the transport's job.
  std::mutex dispatch_mu_;
  mutable std::mutex mu_;  ///< guards the counters only
  ServerStats stats_;
  std::atomic<int> executing_{0};  ///< handle() calls currently inside
  std::atomic<std::uint64_t> peak_executing_{0};

  /// Watchdog-side state sits outside mu_: the watchdog must record fires
  /// while handle() holds mu_ inside a wedged job.
  std::atomic<std::uint64_t> watchdog_fires_{0};
  mutable std::mutex health_mu_;
  robust::DegradationLog health_;
};

class SocketServer {
 public:
  /// Binds nothing yet; call start().
  SocketServer(SpmvServer& core, std::string socket_path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Bind + listen on the Unix socket (an existing stale socket file is
  /// replaced), then spawn the accept, executor and watchdog threads.  Io on
  /// bind failure.
  [[nodiscard]] Status start();

  /// Block until a shutdown request or stop() ends the serve loop.
  void wait();

  /// Graceful drain (the SIGTERM path): stop accepting connections, answer
  /// new frames with a retryable "draining" error, and give in-flight jobs
  /// `grace_seconds` to finish against their own deadlines.  Jobs still
  /// in flight when the grace expires get their tokens cancelled and are
  /// flushed as typed Cancelled replies.  The persistent cache tier is
  /// flushed, then the server stops.  Idempotent with stop().
  void drain(double grace_seconds);

  /// Idempotent: close the listener and every connection, drain threads.
  void stop();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return path_;
  }

 private:
  struct Job {
    std::string payload;    ///< encoded request frame payload
    bool shed = false;      ///< admission decision at enqueue time
    RequestHeader header;   ///< v2 envelope (id 0 / no deadline for v1 junk)
    robust::CancelToken token;  ///< armed from header.deadline_ms at enqueue
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline_at;  ///< set if has_deadline
  };
  struct Connection {
    int fd = -1;
    std::thread reader;
    std::mutex write_mu;          ///< reader (rejects) vs executor (replies)
    std::deque<Job> queue;        ///< FIFO per client, guarded by jobs_mu_
    bool closed = false;          ///< reader exited, guarded by jobs_mu_
    /// An executor is serving this connection right now; other executors
    /// skip it (per-client FIFO reply order) and the reaper leaves it alone
    /// (its fd is still being written to).  Guarded by jobs_mu_.
    bool busy = false;
  };
  /// One executor slot's job currently inside core_.handle(), visible to
  /// the watchdog and to cancel(request_id).  Guarded by jobs_mu_ (the
  /// token itself is thread-safe to cancel).
  struct Executing {
    bool active = false;
    bool watchdog_fired = false;
    std::uint64_t request_id = 0;
    robust::CancelToken token;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline_at;
    std::chrono::steady_clock::time_point started;
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void executor_loop(int slot);
  void watchdog_loop();
  /// Resolve a cancel(request_id) verb: executing match beats queued match;
  /// id 0 (unnamed) and misses answer Unknown.  Never an error.
  [[nodiscard]] CancelReply cancel_request(std::uint64_t target_id);
  void write_reply(Connection& conn, const Reply& reply,
                   std::uint64_t request_id = 0);
  /// Close listener + all connection fds so blocked reads/accepts return.
  void close_all_fds();

  SpmvServer& core_;
  std::string path_;
  int listen_fd_ = -1;
  std::thread accepter_;
  std::vector<std::thread> executors_;   ///< max(1, config().executors)
  std::thread watchdog_;

  std::mutex jobs_mu_;
  /// Serializes stop()'s thread-join phase: drain() (signal thread) and
  /// wait()-then-stop() (main) may both reach stop() — see stop().
  std::mutex stop_join_mu_;
  std::condition_variable jobs_cv_;      ///< executor wakeup
  std::condition_variable stopped_cv_;   ///< wait()/drain() wakeup
  std::condition_variable watchdog_cv_;  ///< watchdog shutdown wakeup
  std::vector<std::shared_ptr<Connection>> conns_;
  std::size_t rr_next_ = 0;              ///< round-robin drain cursor
  int in_flight_ = 0;                    ///< queued + executing jobs
  std::vector<Executing> exec_;          ///< per-executor watchdog/cancel
                                         ///< view of the job inside handle()
  bool recycle_pending_ = false;         ///< watchdog asked for a team recycle
  /// An executor claimed the recycle: peers stop dequeuing until the
  /// engine/pool is quiescent, recycled, and this clears.
  bool recycling_ = false;
  bool draining_ = false;                ///< SIGTERM drain in progress
  bool stopping_ = false;
  bool started_ = false;
};

}  // namespace spmvopt::server
