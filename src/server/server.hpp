// spmvoptd server core + Unix-domain-socket transport (DESIGN.md §9).
//
// Two layers:
//
//   SpmvServer    the transport-free request processor: owns the persistent
//                 ExecutionEngine and the fingerprint-keyed PlanCache, and
//                 turns decoded Requests into Replies.  handle() serializes
//                 internally (the engine admits one dispatch at a time), so
//                 it is callable from tests in-process and from the socket
//                 executor alike.
//
//   SocketServer  the transport: an accept loop on a Unix-domain socket, one
//                 reader thread per connection feeding a per-client FIFO job
//                 queue, and one executor thread draining the queues
//                 round-robin onto SpmvServer.  Admission control happens at
//                 enqueue time, *before* a job can occupy the executor:
//
//                   in_flight >= shed_in_flight  -> submits run the
//                       baseline-CSR plan (classification cost shed);
//                   in_flight >= max_in_flight   -> typed Resource error
//                       reply, job never enqueued.
//
// Error replies never tear down a connection: a malformed frame gets a typed
// Format reply and the reader keeps going (only a broken fd ends a session).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/execution_engine.hpp"
#include "server/plan_cache.hpp"
#include "server/protocol.hpp"
#include "support/topology.hpp"

namespace spmvopt::server {

struct ServerConfig {
  PlanCacheConfig cache;          ///< cache.engine is overwritten by the server
  int engine_threads = 0;         ///< compute team size; <= 0: default_threads()
  PinPolicy pin = PinPolicy::None;  ///< None by default: a daemon should not
                                    ///< claim CPUs unless told to
  /// Jobs queued-or-executing before new ones are rejected (Resource).
  int max_in_flight = 64;
  /// Jobs queued-or-executing before submits shed to baseline-CSR plans.
  int shed_in_flight = 32;
};

/// Structured request/latency/cache counters, exposed via a Stats request.
struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t submits = 0;
  std::uint64_t runs = 0;
  std::uint64_t run_manys = 0;
  std::uint64_t solves = 0;
  std::uint64_t errors = 0;             ///< Error replies from handle()
  std::uint64_t rejected_overload = 0;  ///< jobs refused at admission
  std::uint64_t shed_submits = 0;       ///< submits degraded to baseline
  double busy_seconds = 0.0;            ///< total time inside handle()
  double max_request_seconds = 0.0;
  PlanCacheStats cache;
  std::uint64_t engine_dispatches = 0;
  int engine_threads = 0;
};

/// Render the counters as a stable-key JSON object (the StatsReply body).
[[nodiscard]] std::string stats_to_json(const ServerStats& s);

class SpmvServer {
 public:
  explicit SpmvServer(ServerConfig cfg = {});

  SpmvServer(const SpmvServer&) = delete;
  SpmvServer& operator=(const SpmvServer&) = delete;

  /// Process one request (by value: a submit's matrix is moved into the
  /// cache, not copied).  `shed` marks the overload rung decided at
  /// admission: submits then run the baseline plan.  Never throws — every
  /// failure becomes an ErrorReply.
  [[nodiscard]] Reply handle(Request req, bool shed = false);

  /// Transport callback: a job was refused at admission (overload ladder's
  /// top rung); feeds the rejected_overload counter.
  void note_rejected();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServerConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] PlanCache& cache() noexcept { return cache_; }

  /// Set once a ShutdownRequest was processed; the transport polls it.
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

 private:
  Reply handle_submit(SubmitRequest& req, bool shed);
  Reply handle_run(const RunRequest& req);
  Reply handle_run_many(const RunManyRequest& req);
  Reply handle_solve(const SolveRequest& req);

  /// Resident lookup falling back to the persistent tier; error reply text
  /// tells the client to re-submit.
  Expected<PlanCache::EntryPtr> lookup(const Fingerprint& fp);

  ServerConfig cfg_;
  engine::ExecutionEngine engine_;
  PlanCache cache_;
  std::atomic<bool> shutdown_{false};

  mutable std::mutex mu_;  ///< serializes handle() (engine + counters)
  ServerStats stats_;
};

class SocketServer {
 public:
  /// Binds nothing yet; call start().
  SocketServer(SpmvServer& core, std::string socket_path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Bind + listen on the Unix socket (an existing stale socket file is
  /// replaced), then spawn the accept and executor threads.  Io on bind
  /// failure.
  [[nodiscard]] Status start();

  /// Block until a shutdown request or stop() ends the serve loop.
  void wait();

  /// Idempotent: close the listener and every connection, drain threads.
  void stop();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return path_;
  }

 private:
  struct Job {
    std::string payload;  ///< encoded request frame payload
    bool shed = false;    ///< admission decision at enqueue time
  };
  struct Connection {
    int fd = -1;
    std::thread reader;
    std::mutex write_mu;          ///< reader (rejects) vs executor (replies)
    std::deque<Job> queue;        ///< FIFO per client, guarded by jobs_mu_
    bool closed = false;          ///< reader exited, guarded by jobs_mu_
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void executor_loop();
  void write_reply(Connection& conn, const Reply& reply);
  /// Close listener + all connection fds so blocked reads/accepts return.
  void close_all_fds();

  SpmvServer& core_;
  std::string path_;
  int listen_fd_ = -1;
  std::thread accepter_;
  std::thread executor_;

  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;      ///< executor wakeup
  std::condition_variable stopped_cv_;   ///< wait() wakeup
  std::vector<std::shared_ptr<Connection>> conns_;
  std::size_t rr_next_ = 0;              ///< round-robin drain cursor
  int in_flight_ = 0;                    ///< queued + executing jobs
  bool stopping_ = false;
  bool started_ = false;
};

}  // namespace spmvopt::server
