#include "server/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <new>
#include <utility>

#include "report/json.hpp"
#include "robust/fault_inject.hpp"
#include "solvers/krylov.hpp"
#include "solvers/operator.hpp"
#include "support/timing.hpp"

namespace spmvopt::server {

// ------------------------------------------------------------- SpmvServer

namespace {

PlanCacheConfig with_engine(PlanCacheConfig cache,
                            engine::ExecutionEngine& eng) {
  cache.engine = &eng;
  return cache;
}

Reply error_reply(Error e, bool retryable = false) {
  std::string msg = e.message();
  for (const std::string& frame : e.context()) msg += "; " + frame;
  return ErrorReply{e.category(), retryable, std::move(msg)};
}

}  // namespace

std::string stats_to_json(const ServerStats& s) {
  using report::Json;
  Json cache = Json::object();
  cache.set("hot_hits", s.cache.hot_hits)
      .set("warm_hits", s.cache.warm_hits)
      .set("persist_hits", s.cache.persist_hits)
      .set("misses", s.cache.misses)
      .set("evictions", s.cache.evictions)
      .set("resident_bytes", static_cast<std::uint64_t>(s.cache.resident_bytes))
      .set("entries", static_cast<std::uint64_t>(s.cache.entries));
  Json engine = Json::object();
  engine.set("threads", s.engine_threads)
      .set("dispatches", s.engine_dispatches)
      .set("recycles", s.engine_recycles)
      .set("recycle_failures", s.engine_recycle_failures);
  Json pool = Json::object();
  pool.set("workers", s.pool_workers)
      .set("tasks", s.pool_tasks)
      .set("steals", s.pool_steals)
      .set("parks", s.pool_parks);
  Json doc = Json::object();
  doc.set("schema", "spmvopt-server-stats/v2")
      .set("executors", s.executors)
      .set("peak_concurrent", s.peak_concurrent)
      .set("requests", s.requests)
      .set("submits", s.submits)
      .set("runs", s.runs)
      .set("run_manys", s.run_manys)
      .set("solves", s.solves)
      .set("errors", s.errors)
      .set("rejected_overload", s.rejected_overload)
      .set("shed_submits", s.shed_submits)
      .set("deadline_exceeded", s.deadline_exceeded)
      .set("cancelled", s.cancelled)
      .set("expired_in_queue", s.expired_in_queue)
      .set("watchdog_fires", s.watchdog_fires)
      .set("busy_seconds", s.busy_seconds)
      .set("max_request_seconds", s.max_request_seconds)
      .set("cache", std::move(cache))
      .set("engine", std::move(engine))
      .set("pool", std::move(pool));
  return doc.dump();
}

SpmvServer::SpmvServer(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      // Multi-executor mode swaps the private mailbox team for one shared
      // work-stealing pool all executors' dispatches land on.
      pool_(cfg_.executors > 1
                ? std::make_unique<engine::StealPool>(engine::StealPoolConfig{
                      .nthreads = cfg_.engine_threads, .pin = cfg_.pin})
                : nullptr),
      // pin_main=false: handle() is called from transport/executor threads
      // that must keep their own affinity; the workers carry the pinning.
      engine_(engine::EngineConfig{.nthreads = cfg_.engine_threads,
                                   .pin = cfg_.pin,
                                   .pin_main = false,
                                   .pool = pool_.get()}),
      cache_(with_engine(cfg_.cache, engine_)) {}

Expected<PlanCache::EntryPtr> SpmvServer::lookup(const Fingerprint& fp) {
  // find() bumps hot_hits; a persistent-tier recovery counts as persist_hit
  // inside reload().
  return cache_.reload(fp);
}

Reply SpmvServer::handle_submit(SubmitRequest& req, bool shed,
                                bool& shed_applied,
                                const robust::CancelToken* cancel) {
  const std::uint64_t hot_before = cache_.stats().hot_hits;
  auto admitted = cache_.admit(std::move(req.matrix), shed, cancel);
  if (!admitted.ok()) return error_reply(std::move(admitted).error());
  const PlanCache::EntryPtr& entry = admitted.value();
  const bool hot = cache_.stats().hot_hits > hot_before;
  shed_applied = shed && !hot;

  SubmitReply reply;
  reply.fp = entry->fp;
  reply.state = hot ? CacheState::Hot : entry->origin;
  reply.plan = entry->spmv.plan().to_string();
  reply.pre_seconds =
      hot ? 0.0 : entry->classify_seconds + entry->convert_seconds;
  return reply;
}

Reply SpmvServer::handle_run(const RunRequest& req,
                             const robust::CancelToken& tok) {
  auto found = lookup(req.fp);
  if (!found.ok()) return error_reply(std::move(found).error());
  const PlanCache::EntryPtr entry = found.value();
  if (static_cast<index_t>(req.x.size()) != entry->spmv.ncols())
    return error_reply(Error(
        ErrorCategory::Format,
        "run: x has " + std::to_string(req.x.size()) + " entries, matrix " +
            req.fp.key() + " has " + std::to_string(entry->spmv.ncols()) +
            " columns"));
  // Fault point: evict the whole cache mid-job.  The shared_ptr reference
  // held above must keep the entry alive through run() (ASan-checked).
  if (robust::fault_fire("server.evict_during_run")) cache_.evict_all();

  RunReply reply;
  reply.y.resize(static_cast<std::size_t>(entry->spmv.nrows()));
  Status st = entry->spmv.run(req.x.data(), reply.y.data(), tok);
  if (!st.ok()) return error_reply(std::move(st).error());
  return reply;
}

Reply SpmvServer::handle_run_many(const RunManyRequest& req,
                                  const robust::CancelToken& tok) {
  auto found = lookup(req.fp);
  if (!found.ok()) return error_reply(std::move(found).error());
  const PlanCache::EntryPtr entry = found.value();
  if (req.nrhs < 1)
    return error_reply(
        Error(ErrorCategory::Format,
              "run_many: nrhs must be >= 1, got " + std::to_string(req.nrhs)));
  const auto ncols = static_cast<std::size_t>(entry->spmv.ncols());
  const auto nrhs = static_cast<std::size_t>(req.nrhs);
  if (req.X.size() != nrhs * ncols)
    return error_reply(Error(
        ErrorCategory::Format,
        "run_many: X has " + std::to_string(req.X.size()) +
            " entries, expected nrhs*ncols = " + std::to_string(nrhs * ncols)));

  RunManyReply reply;
  reply.nrhs = req.nrhs;
  reply.dtype = req.dtype;  // Y travels back in the dtype the caller spoke
  reply.Y.resize(nrhs * static_cast<std::size_t>(entry->spmv.nrows()));
  Status st = entry->spmv.run_many(req.X.data(), reply.Y.data(), req.nrhs, tok);
  if (!st.ok()) return error_reply(std::move(st).error());
  return reply;
}

Reply SpmvServer::handle_solve(const SolveRequest& req,
                               const robust::CancelToken& tok) {
  auto found = lookup(req.fp);
  if (!found.ok()) return error_reply(std::move(found).error());
  const PlanCache::EntryPtr entry = found.value();
  const index_t n = entry->spmv.nrows();
  if (entry->spmv.ncols() != n)
    return error_reply(Error(ErrorCategory::Format,
                             "solve: matrix " + req.fp.key() +
                                 " is not square (" + std::to_string(n) + " x " +
                                 std::to_string(entry->spmv.ncols()) + ")"));
  if (static_cast<index_t>(req.b.size()) != n)
    return error_reply(Error(
        ErrorCategory::Format,
        "solve: b has " + std::to_string(req.b.size()) + " entries, matrix " +
            req.fp.key() + " has " + std::to_string(n) + " rows"));
  if (req.max_iterations < 1)
    return error_reply(Error(ErrorCategory::Format,
                             "solve: max_iterations must be >= 1"));

  const auto op = solvers::LinearOperator::from_optimized(entry->spmv);
  solvers::SolverOptions opt;
  opt.max_iterations = req.max_iterations;
  opt.rel_tolerance = req.rel_tolerance;
  opt.cancel = &tok;

  SolveReply reply;
  reply.x.assign(static_cast<std::size_t>(n), 0.0);
  const solvers::SolveResult result =
      req.method == SolveMethod::Cg
          ? solvers::cg(op, req.b, reply.x, opt)
          : solvers::bicgstab(op, req.b, reply.x, opt);
  if (result.aborted != solvers::SolveAbort::None)
    return error_reply(
        tok.to_error("after " + std::to_string(result.iterations) +
                     " completed iterations")
            .with_context("while solving " + req.fp.key()));
  reply.converged = result.converged;
  reply.iterations = result.iterations;
  reply.residual = result.residual_norm;
  return reply;
}

Reply SpmvServer::handle(Request req, bool shed,
                         const robust::CancelToken* cancel) {
  // Mailbox mode serializes the whole request behind dispatch_mu_ (one
  // engine dispatch at a time).  Pooled mode takes no lock here: the shared
  // StealPool accepts concurrent dispatches, the cache locks internally,
  // and the counters are settled under the stats-only mu_ afterwards.
  std::unique_lock<std::mutex> dispatch_lock(dispatch_mu_, std::defer_lock);
  if (!engine_.pooled()) dispatch_lock.lock();

  const int now_executing =
      executing_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t peak = peak_executing_.load(std::memory_order_relaxed);
  while (static_cast<std::uint64_t>(now_executing) > peak &&
         !peak_executing_.compare_exchange_weak(
             peak, static_cast<std::uint64_t>(now_executing),
             std::memory_order_relaxed))
    ;

  const robust::CancelToken& tok =
      cancel != nullptr ? *cancel : robust::CancelToken::never();
  std::uint64_t ServerStats::* verb_counter = nullptr;  // bumped under mu_ below
  bool shed_applied = false;
  Timer t;
  Reply reply;
  try {
    reply = std::visit(
        [this, shed, &shed_applied, &verb_counter, cancel,
         &tok](auto& r) -> Reply {
          using T = std::decay_t<decltype(r)>;
          if constexpr (std::is_same_v<T, SubmitRequest>) {
            verb_counter = &ServerStats::submits;
            return handle_submit(r, shed, shed_applied, cancel);
          } else if constexpr (std::is_same_v<T, RunRequest>) {
            verb_counter = &ServerStats::runs;
            return handle_run(r, tok);
          } else if constexpr (std::is_same_v<T, RunManyRequest>) {
            verb_counter = &ServerStats::run_manys;
            return handle_run_many(r, tok);
          } else if constexpr (std::is_same_v<T, SolveRequest>) {
            verb_counter = &ServerStats::solves;
            return handle_solve(r, tok);
          } else if constexpr (std::is_same_v<T, StatsRequest>) {
            return StatsReply{stats_to_json(stats())};
          } else if constexpr (std::is_same_v<T, PingRequest>) {
            return PongReply{};
          } else if constexpr (std::is_same_v<T, CancelRequest>) {
            // The core has no queue; the transport resolves cancel verbs
            // out-of-band before they reach handle().  In-process callers
            // get an honest Unknown.
            return CancelReply{CancelReply::Outcome::Unknown};
          } else {
            static_assert(std::is_same_v<T, ShutdownRequest>);
            shutdown_.store(true, std::memory_order_release);
            return ShutdownReply{};
          }
        },
        req);
  } catch (const SpmvException& e) {
    reply = error_reply(e.error());
  } catch (const std::bad_alloc&) {
    reply = Reply(ErrorReply{ErrorCategory::Resource, false, "out of memory"});
  } catch (const std::exception& e) {
    reply = Reply(ErrorReply{ErrorCategory::Internal, false, e.what()});
  }
  const double sec = t.elapsed_sec();
  executing_.fetch_sub(1, std::memory_order_relaxed);

  std::lock_guard lock(mu_);
  if (verb_counter != nullptr) ++(stats_.*verb_counter);
  if (shed_applied) ++stats_.shed_submits;
  ++stats_.requests;
  if (const auto* err = std::get_if<ErrorReply>(&reply)) {
    ++stats_.errors;
    if (err->category == ErrorCategory::DeadlineExceeded)
      ++stats_.deadline_exceeded;
    else if (err->category == ErrorCategory::Cancelled)
      ++stats_.cancelled;
  }
  stats_.busy_seconds += sec;
  if (sec > stats_.max_request_seconds) stats_.max_request_seconds = sec;
  return reply;
}

void SpmvServer::note_rejected() {
  std::lock_guard lock(mu_);
  ++stats_.rejected_overload;
  ++stats_.requests;
  ++stats_.errors;
}

void SpmvServer::note_expired_in_queue(robust::CancelToken::Why why) {
  std::lock_guard lock(mu_);
  ++stats_.requests;
  ++stats_.errors;
  ++stats_.expired_in_queue;
  if (why == robust::CancelToken::Why::Deadline)
    ++stats_.deadline_exceeded;
  else
    ++stats_.cancelled;
}

void SpmvServer::note_watchdog(std::uint64_t request_id,
                               double running_seconds) {
  // No mu_ here: the watchdog reports while handle() may be wedged inside
  // the very job being reported.
  watchdog_fires_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(health_mu_);
  health_.record("watchdog",
                 "request " + std::to_string(request_id) + " overdue after " +
                     std::to_string(running_seconds) +
                     " s; token cancelled, team recycle queued");
}

bool SpmvServer::recycle_engine(const std::string& reason) {
  bool ok;
  {
    // Mailbox mode: dispatch_mu_ excludes handle(), so no dispatch is live.
    // Pooled mode: handle() does not take dispatch_mu_ — the transport must
    // quiesce its executors first (SocketServer's recycling_ gate does).
    std::lock_guard dlock(dispatch_mu_);
    ok = engine_.recycle();
  }
  {
    std::lock_guard lock(mu_);
    if (ok)
      ++stats_.engine_recycles;
    else
      ++stats_.engine_recycle_failures;
  }
  std::lock_guard lock(health_mu_);
  health_.record("engine",
                 ok ? "worker team recycled: " + reason
                    : "team re-spawn vetoed (" + reason +
                          "); previous team kept serving");
  return ok;
}

robust::DegradationLog SpmvServer::health() const {
  std::lock_guard lock(health_mu_);
  return health_;
}

ServerStats SpmvServer::stats() const {
  ServerStats snapshot;
  {
    std::lock_guard lock(mu_);
    snapshot = stats_;
  }
  snapshot.watchdog_fires = watchdog_fires_.load(std::memory_order_relaxed);
  snapshot.cache = cache_.stats();
  snapshot.engine_dispatches = engine_.dispatch_count();
  snapshot.engine_threads = engine_.nthreads();
  snapshot.executors = cfg_.executors > 1 ? cfg_.executors : 1;
  snapshot.peak_concurrent = peak_executing_.load(std::memory_order_relaxed);
  if (pool_ != nullptr) {
    const engine::StealPoolStats ps = pool_->stats();
    snapshot.pool_workers = static_cast<std::uint64_t>(ps.workers);
    snapshot.pool_tasks = ps.tasks;
    snapshot.pool_steals = ps.steals;
    snapshot.pool_parks = ps.parks;
  }
  return snapshot;
}

// ----------------------------------------------------------- SocketServer

SocketServer::SocketServer(SpmvServer& core, std::string socket_path)
    : core_(core), path_(std::move(socket_path)) {}

SocketServer::~SocketServer() { stop(); }

Status SocketServer::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof addr.sun_path)
    return Error(ErrorCategory::Format,
                 "socket path '" + path_ + "' exceeds the AF_UNIX limit of " +
                     std::to_string(sizeof addr.sun_path - 1) + " chars");
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    return Error(ErrorCategory::Io,
                 std::string("socket() failed: ") + std::strerror(errno));
  ::unlink(path_.c_str());  // replace a stale socket file from a dead server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(listen_fd_, 64) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error(ErrorCategory::Io, "cannot listen on '" + path_ +
                                        "': " + std::strerror(err));
  }

  const int nexec = std::max(1, core_.config().executors);
  {
    std::lock_guard lock(jobs_mu_);
    started_ = true;
    stopping_ = false;
    draining_ = false;
    recycle_pending_ = false;
    recycling_ = false;
    exec_.assign(static_cast<std::size_t>(nexec), Executing{});
  }
  accepter_ = std::thread([this] { accept_loop(); });
  executors_.clear();
  executors_.reserve(static_cast<std::size_t>(nexec));
  for (int slot = 0; slot < nexec; ++slot)
    executors_.emplace_back([this, slot] { executor_loop(slot); });
  if (core_.config().watchdog_poll_ms > 0)
    watchdog_ = std::thread([this] { watchdog_loop(); });
  return Unit{};
}

void SocketServer::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener shut down (stop, drain or shutdown request)
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      // Register AND spawn under the lock: stop() must never observe a
      // registered connection whose reader it cannot join yet.
      std::lock_guard lock(jobs_mu_);
      if (stopping_ || draining_) {
        ::close(fd);
        if (stopping_) return;
        continue;  // draining: turn new connections away, keep accepting
      }
      conns_.push_back(conn);
      conn->reader = std::thread([this, conn] { reader_loop(conn); });
    }
  }
}

void SocketServer::reader_loop(const std::shared_ptr<Connection>& conn) {
  while (true) {
    auto frame = read_frame(conn->fd);
    if (!frame.ok()) {
      // A broken length prefix desynchronizes the stream: reply with the
      // typed error, then end the session (the client must reconnect).
      write_reply(*conn, error_reply(std::move(frame).error()));
      break;
    }
    if (!frame.value().has_value()) break;  // clean EOF

    const std::string& payload = *frame.value();
    const auto hdr = peek_request_header(payload);  // nullopt for v1 junk

    // cancel(request_id) resolves here, out-of-band: it skips the queue
    // and admission control, because cancellation has to land exactly when
    // the server is saturated or wedged on the target job.
    if (hdr && peek_type(payload) == MsgType::Cancel) {
      auto env = decode_request(payload);
      Reply reply =
          env.ok()
              ? Reply(cancel_request(
                    std::get<CancelRequest>(env.value().request).target_id))
              : error_reply(std::move(env).error());
      write_reply(*conn, reply, hdr->request_id);
      continue;
    }

    Job job;
    job.header = hdr.value_or(RequestHeader{});
    job.token = robust::CancelToken::after_ms(job.header.deadline_ms);
    job.has_deadline = job.header.deadline_ms != 0;
    if (job.has_deadline)
      job.deadline_at = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(job.header.deadline_ms);

    // Admission control happens here, before the job can reach the
    // executor: reject while draining, reject at the hard ceiling, mark
    // for shedding above the soft one.
    bool reject = false;
    bool drain_reject = false;
    {
      std::lock_guard lock(jobs_mu_);
      if (stopping_) break;
      if (draining_) {
        drain_reject = true;
      } else if (in_flight_ >= core_.config().max_in_flight) {
        reject = true;
      } else {
        job.shed = in_flight_ >= core_.config().shed_in_flight;
        ++in_flight_;
        job.payload = std::move(*frame.value());
        conn->queue.push_back(std::move(job));
      }
    }
    if (drain_reject) {
      write_reply(*conn,
                  Reply(ErrorReply{ErrorCategory::Resource, /*retryable=*/true,
                                   "server draining: not accepting new work; "
                                   "retry after restart"}),
                  job.header.request_id);
    } else if (reject) {
      core_.note_rejected();
      write_reply(*conn,
                  Reply(ErrorReply{
                      ErrorCategory::Resource, /*retryable=*/true,
                      "server overloaded: " +
                          std::to_string(core_.config().max_in_flight) +
                          " jobs already in flight; retry later"}),
                  job.header.request_id);
    } else {
      jobs_cv_.notify_one();
    }
  }
  {
    std::lock_guard lock(jobs_mu_);
    conn->closed = true;
  }
  jobs_cv_.notify_one();  // let the executor reap
}

CancelReply SocketServer::cancel_request(std::uint64_t target_id) {
  // Unnamed requests (id 0) are unaddressable by design.
  if (target_id == 0) return CancelReply{CancelReply::Outcome::Unknown};
  std::lock_guard lock(jobs_mu_);
  for (Executing& e : exec_)
    if (e.active && e.request_id == target_id) {
      e.token.cancel();
      return CancelReply{CancelReply::Outcome::Running};
    }
  for (const auto& c : conns_)
    for (Job& j : c->queue)
      if (j.header.request_id == target_id) {
        // Mark only: the executor flushes the job as a typed Cancelled
        // reply at dequeue, preserving per-connection reply order.
        j.token.cancel();
        return CancelReply{CancelReply::Outcome::Queued};
      }
  return CancelReply{CancelReply::Outcome::Unknown};
}

void SocketServer::write_reply(Connection& conn, const Reply& reply,
                               std::uint64_t request_id) {
  const std::string payload = encode_reply(reply, request_id);
  std::lock_guard lock(conn.write_mu);
  (void)write_frame(conn.fd, payload);  // a vanished client is not our error
}

void SocketServer::executor_loop(int slot) {
  while (true) {
    std::shared_ptr<Connection> conn;
    Job job;
    std::vector<std::shared_ptr<Connection>> reap;
    {
      std::unique_lock lock(jobs_mu_);
      jobs_cv_.wait(lock, [this] {
        if (stopping_) return true;
        for (const auto& c : conns_)
          if (c->closed && c->queue.empty() && !c->busy) return true;
        if (recycling_) return false;  // hold new work until the recycle ends
        for (const auto& c : conns_)
          if (!c->queue.empty() && !c->busy) return true;
        return false;
      });
      if (stopping_) break;

      // Reap sessions whose reader exited, whose queue is drained, and that
      // no peer executor is still writing a reply to.
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->closed && (*it)->queue.empty() && !(*it)->busy) {
          reap.push_back(*it);
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
      rr_next_ = conns_.empty() ? 0 : rr_next_ % conns_.size();

      // Round-robin across clients: each gets one job per sweep, so a
      // pipelining client cannot starve the others.  A connection a peer is
      // already serving is skipped: one executor per client at a time keeps
      // per-connection replies in FIFO order.
      if (!recycling_) {
        for (std::size_t i = 0; i < conns_.size() && !conn; ++i) {
          auto& c = conns_[(rr_next_ + i) % conns_.size()];
          if (!c->queue.empty() && !c->busy) {
            conn = c;
            job = std::move(c->queue.front());
            c->queue.pop_front();
            c->busy = true;
            rr_next_ = (rr_next_ + i + 1) % conns_.size();
          }
        }
      }
    }
    for (const auto& c : reap) {
      if (c->reader.joinable()) c->reader.join();
      ::close(c->fd);
    }
    if (!conn) continue;

    Reply reply;
    if (job.token.cancelled()) {
      // Deadline passed (or a cancel verb landed) while the job waited in
      // the queue: answer the typed error without ever executing.
      reply = error_reply(
          job.token.to_error("while queued, before execution started"));
      core_.note_expired_in_queue(job.token.why());
    } else {
      auto req = decode_request(job.payload);
      if (!req.ok()) {
        reply = error_reply(std::move(req).error());
      } else {
        {
          std::lock_guard lock(jobs_mu_);
          Executing& e = exec_[static_cast<std::size_t>(slot)];
          e.active = true;
          e.watchdog_fired = false;
          e.request_id = job.header.request_id;
          e.token = job.token;
          e.has_deadline = job.has_deadline;
          e.deadline_at = job.deadline_at;
          e.started = std::chrono::steady_clock::now();
        }
        reply =
            core_.handle(std::move(req.value().request), job.shed, &job.token);
        {
          std::lock_guard lock(jobs_mu_);
          exec_[static_cast<std::size_t>(slot)].active = false;
        }
      }
    }
    write_reply(*conn, reply, job.header.request_id);

    bool initiate_stop = false;
    bool do_recycle = false;
    {
      std::lock_guard lock(jobs_mu_);
      conn->busy = false;
      --in_flight_;
      if (in_flight_ == 0) stopped_cv_.notify_all();  // drain() waiters
      if (recycle_pending_ && !recycling_) {
        // Claim the recycle: peers stop dequeuing (recycling_ gates the
        // wait predicate above) until the engine/pool is fresh again.
        recycle_pending_ = false;
        recycling_ = true;
        do_recycle = true;
      }
      if (core_.shutdown_requested() && !stopping_) {
        stopping_ = true;
        initiate_stop = true;
      }
    }
    // The connection is serviceable again (and a peer may be waiting for
    // this slot to go inactive during a recycle claim).
    jobs_cv_.notify_all();
    if (do_recycle) {
      // Self-healing between jobs: wait for every peer to surface — the
      // engine/pool recycle requires no dispatch in flight — then re-spawn.
      bool quiesced;
      {
        std::unique_lock lock(jobs_mu_);
        jobs_cv_.wait(lock, [this] {
          if (stopping_) return true;
          for (const Executing& e : exec_)
            if (e.active) return false;
          return true;
        });
        quiesced = !stopping_;
      }
      if (quiesced) (void)core_.recycle_engine("watchdog escalation");
      {
        std::lock_guard lock(jobs_mu_);
        recycling_ = false;
      }
      jobs_cv_.notify_all();
    }
    if (initiate_stop) {
      close_all_fds();
      jobs_cv_.notify_all();
      stopped_cv_.notify_all();
      watchdog_cv_.notify_all();
      break;
    }
  }
  {
    std::lock_guard lock(jobs_mu_);
    stopping_ = true;
  }
  jobs_cv_.notify_all();  // peers must observe stopping_ and exit too
  stopped_cv_.notify_all();
  watchdog_cv_.notify_all();
}

void SocketServer::watchdog_loop() {
  using clock = std::chrono::steady_clock;
  const auto& cfg = core_.config();
  std::unique_lock lock(jobs_mu_);
  while (!stopping_) {
    watchdog_cv_.wait_for(lock,
                          std::chrono::milliseconds(cfg.watchdog_poll_ms),
                          [this] { return stopping_; });
    if (stopping_) break;

    // Sweep every executor slot; each overdue job fires once.
    for (std::size_t s = 0; s < exec_.size(); ++s) {
      Executing& e = exec_[s];
      if (!e.active || e.watchdog_fired) continue;

      const auto now = clock::now();
      bool overdue = false;
      if (e.has_deadline) {
        overdue = now > e.deadline_at +
                            std::chrono::milliseconds(cfg.watchdog_grace_ms);
      } else if (cfg.watchdog_stuck_ms > 0) {
        overdue = now > e.started +
                            std::chrono::milliseconds(cfg.watchdog_stuck_ms);
      }
      // Deterministic testing: the fault point forces a fire on whatever job
      // is executing, without waiting out a real grace window.
      if (robust::fault_fire("server.watchdog_fire")) overdue = true;
      if (!overdue) continue;

      e.watchdog_fired = true;
      recycle_pending_ = true;
      e.token.cancel();
      const std::uint64_t id = e.request_id;
      const double running =
          std::chrono::duration<double>(now - e.started).count();
      lock.unlock();  // note_watchdog must not wait behind a wedged executor
      core_.note_watchdog(id, running);
      lock.lock();
      if (stopping_) break;
    }
  }
}

void SocketServer::close_all_fds() {
  std::lock_guard lock(jobs_mu_);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  // shutdown(), not close(): readers may be mid-read and the executor
  // mid-write; shutting down unblocks them without recycling fd numbers.
  for (const auto& c : conns_) ::shutdown(c->fd, SHUT_RDWR);
}

void SocketServer::wait() {
  std::unique_lock lock(jobs_mu_);
  stopped_cv_.wait(lock, [this] { return stopping_ || !started_; });
}

void SocketServer::drain(double grace_seconds) {
  {
    std::lock_guard lock(jobs_mu_);
    if (!started_ || stopping_) return;
    draining_ = true;
    // Turn the listener away; live readers answer "draining" from now on.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  }

  const auto grace_end =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(grace_seconds < 0 ? 0 : grace_seconds));
  {
    std::unique_lock lock(jobs_mu_);
    stopped_cv_.wait_until(lock, grace_end,
                           [this] { return in_flight_ == 0 || stopping_; });
    if (in_flight_ > 0 && !stopping_) {
      // Grace expired: cancel everything still in flight; the executor
      // flushes each as a typed Cancelled reply against its own token.
      for (const auto& c : conns_)
        for (Job& j : c->queue) j.token.cancel();
      for (Executing& e : exec_)
        if (e.active) e.token.cancel();
      stopped_cv_.wait(lock, [this] { return in_flight_ == 0 || stopping_; });
    }
  }
  // Everything settled: make resident plans/matrices survive the restart.
  (void)core_.cache().flush();
  stop();
}

void SocketServer::stop() {
  {
    std::lock_guard lock(jobs_mu_);
    if (!started_) return;
    stopping_ = true;
  }
  close_all_fds();
  jobs_cv_.notify_all();
  stopped_cv_.notify_all();
  watchdog_cv_.notify_all();

  // stop() races with itself: the signal thread's drain()->stop() sets
  // stopping_ and wakes stopped_cv_ BEFORE joining, so the main thread's
  // wait()-then-stop() arrives here while the first stop() is mid-join.
  // Two threads join()ing the same std::thread (or iterating executors_
  // while a peer clear()s it) is undefined and deadlocks in glibc — the
  // teardown phase must run exactly once, later callers waiting it out.
  std::lock_guard teardown(stop_join_mu_);
  if (accepter_.joinable()) accepter_.join();
  for (std::thread& ex : executors_)
    if (ex.joinable()) ex.join();
  executors_.clear();
  if (watchdog_.joinable()) watchdog_.join();

  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard lock(jobs_mu_);
    conns.swap(conns_);
    started_ = false;
  }
  for (const auto& c : conns) {
    if (c->reader.joinable()) c->reader.join();
    ::close(c->fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(path_.c_str());
}

}  // namespace spmvopt::server
