#include "server/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <new>
#include <utility>

#include "report/json.hpp"
#include "robust/fault_inject.hpp"
#include "solvers/krylov.hpp"
#include "solvers/operator.hpp"
#include "support/timing.hpp"

namespace spmvopt::server {

// ------------------------------------------------------------- SpmvServer

namespace {

PlanCacheConfig with_engine(PlanCacheConfig cache,
                            engine::ExecutionEngine& eng) {
  cache.engine = &eng;
  return cache;
}

Reply error_reply(Error e) {
  std::string msg = e.message();
  for (const std::string& frame : e.context()) msg += "; " + frame;
  return ErrorReply{e.category(), std::move(msg)};
}

}  // namespace

std::string stats_to_json(const ServerStats& s) {
  using report::Json;
  Json cache = Json::object();
  cache.set("hot_hits", s.cache.hot_hits)
      .set("warm_hits", s.cache.warm_hits)
      .set("persist_hits", s.cache.persist_hits)
      .set("misses", s.cache.misses)
      .set("evictions", s.cache.evictions)
      .set("resident_bytes", static_cast<std::uint64_t>(s.cache.resident_bytes))
      .set("entries", static_cast<std::uint64_t>(s.cache.entries));
  Json engine = Json::object();
  engine.set("threads", s.engine_threads).set("dispatches", s.engine_dispatches);
  Json doc = Json::object();
  doc.set("schema", "spmvopt-server-stats/v1")
      .set("requests", s.requests)
      .set("submits", s.submits)
      .set("runs", s.runs)
      .set("run_manys", s.run_manys)
      .set("solves", s.solves)
      .set("errors", s.errors)
      .set("rejected_overload", s.rejected_overload)
      .set("shed_submits", s.shed_submits)
      .set("busy_seconds", s.busy_seconds)
      .set("max_request_seconds", s.max_request_seconds)
      .set("cache", std::move(cache))
      .set("engine", std::move(engine));
  return doc.dump();
}

SpmvServer::SpmvServer(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      // pin_main=false: handle() is called from transport/executor threads
      // that must keep their own affinity; the workers carry the pinning.
      engine_(engine::EngineConfig{.nthreads = cfg_.engine_threads,
                                   .pin = cfg_.pin,
                                   .pin_main = false}),
      cache_(with_engine(cfg_.cache, engine_)) {}

Expected<PlanCache::EntryPtr> SpmvServer::lookup(const Fingerprint& fp) {
  // find() bumps hot_hits; a persistent-tier recovery counts as persist_hit
  // inside reload().
  return cache_.reload(fp);
}

Reply SpmvServer::handle_submit(SubmitRequest& req, bool shed) {
  const std::uint64_t hot_before = cache_.stats().hot_hits;
  auto admitted = cache_.admit(std::move(req.matrix), shed);
  if (!admitted.ok()) return error_reply(std::move(admitted).error());
  const PlanCache::EntryPtr& entry = admitted.value();
  const bool hot = cache_.stats().hot_hits > hot_before;
  if (shed && !hot) ++stats_.shed_submits;

  SubmitReply reply;
  reply.fp = entry->fp;
  reply.state = hot ? CacheState::Hot : entry->origin;
  reply.plan = entry->spmv.plan().to_string();
  reply.pre_seconds =
      hot ? 0.0 : entry->classify_seconds + entry->convert_seconds;
  return reply;
}

Reply SpmvServer::handle_run(const RunRequest& req) {
  auto found = lookup(req.fp);
  if (!found.ok()) return error_reply(std::move(found).error());
  const PlanCache::EntryPtr entry = found.value();
  if (static_cast<index_t>(req.x.size()) != entry->spmv.ncols())
    return error_reply(Error(
        ErrorCategory::Format,
        "run: x has " + std::to_string(req.x.size()) + " entries, matrix " +
            req.fp.key() + " has " + std::to_string(entry->spmv.ncols()) +
            " columns"));
  // Fault point: evict the whole cache mid-job.  The shared_ptr reference
  // held above must keep the entry alive through run() (ASan-checked).
  if (robust::fault_fire("server.evict_during_run")) cache_.evict_all();

  RunReply reply;
  reply.y.resize(static_cast<std::size_t>(entry->spmv.nrows()));
  entry->spmv.run(req.x.data(), reply.y.data());
  return reply;
}

Reply SpmvServer::handle_run_many(const RunManyRequest& req) {
  auto found = lookup(req.fp);
  if (!found.ok()) return error_reply(std::move(found).error());
  const PlanCache::EntryPtr entry = found.value();
  if (req.nrhs < 1)
    return error_reply(
        Error(ErrorCategory::Format,
              "run_many: nrhs must be >= 1, got " + std::to_string(req.nrhs)));
  const auto ncols = static_cast<std::size_t>(entry->spmv.ncols());
  const auto nrhs = static_cast<std::size_t>(req.nrhs);
  if (req.X.size() != nrhs * ncols)
    return error_reply(Error(
        ErrorCategory::Format,
        "run_many: X has " + std::to_string(req.X.size()) +
            " entries, expected nrhs*ncols = " + std::to_string(nrhs * ncols)));

  RunManyReply reply;
  reply.nrhs = req.nrhs;
  reply.Y.resize(nrhs * static_cast<std::size_t>(entry->spmv.nrows()));
  entry->spmv.run_many(req.X.data(), reply.Y.data(), req.nrhs);
  return reply;
}

Reply SpmvServer::handle_solve(const SolveRequest& req) {
  auto found = lookup(req.fp);
  if (!found.ok()) return error_reply(std::move(found).error());
  const PlanCache::EntryPtr entry = found.value();
  const index_t n = entry->spmv.nrows();
  if (entry->spmv.ncols() != n)
    return error_reply(Error(ErrorCategory::Format,
                             "solve: matrix " + req.fp.key() +
                                 " is not square (" + std::to_string(n) + " x " +
                                 std::to_string(entry->spmv.ncols()) + ")"));
  if (static_cast<index_t>(req.b.size()) != n)
    return error_reply(Error(
        ErrorCategory::Format,
        "solve: b has " + std::to_string(req.b.size()) + " entries, matrix " +
            req.fp.key() + " has " + std::to_string(n) + " rows"));
  if (req.max_iterations < 1)
    return error_reply(Error(ErrorCategory::Format,
                             "solve: max_iterations must be >= 1"));

  const auto op = solvers::LinearOperator::from_optimized(entry->spmv);
  solvers::SolverOptions opt;
  opt.max_iterations = req.max_iterations;
  opt.rel_tolerance = req.rel_tolerance;

  SolveReply reply;
  reply.x.assign(static_cast<std::size_t>(n), 0.0);
  const solvers::SolveResult result =
      req.method == SolveMethod::Cg
          ? solvers::cg(op, req.b, reply.x, opt)
          : solvers::bicgstab(op, req.b, reply.x, opt);
  reply.converged = result.converged;
  reply.iterations = result.iterations;
  reply.residual = result.residual_norm;
  return reply;
}

Reply SpmvServer::handle(Request req, bool shed) {
  std::lock_guard lock(mu_);
  Timer t;
  Reply reply;
  try {
    reply = std::visit(
        [this, shed](auto& r) -> Reply {
          using T = std::decay_t<decltype(r)>;
          if constexpr (std::is_same_v<T, SubmitRequest>) {
            ++stats_.submits;
            return handle_submit(r, shed);
          } else if constexpr (std::is_same_v<T, RunRequest>) {
            ++stats_.runs;
            return handle_run(r);
          } else if constexpr (std::is_same_v<T, RunManyRequest>) {
            ++stats_.run_manys;
            return handle_run_many(r);
          } else if constexpr (std::is_same_v<T, SolveRequest>) {
            ++stats_.solves;
            return handle_solve(r);
          } else if constexpr (std::is_same_v<T, StatsRequest>) {
            ServerStats snapshot = stats_;
            snapshot.cache = cache_.stats();
            snapshot.engine_dispatches = engine_.dispatch_count();
            snapshot.engine_threads = engine_.nthreads();
            return StatsReply{stats_to_json(snapshot)};
          } else if constexpr (std::is_same_v<T, PingRequest>) {
            return PongReply{};
          } else {
            static_assert(std::is_same_v<T, ShutdownRequest>);
            shutdown_.store(true, std::memory_order_release);
            return ShutdownReply{};
          }
        },
        req);
  } catch (const SpmvException& e) {
    reply = error_reply(e.error());
  } catch (const std::bad_alloc&) {
    reply = Reply(ErrorReply{ErrorCategory::Resource, "out of memory"});
  } catch (const std::exception& e) {
    reply = Reply(ErrorReply{ErrorCategory::Internal, e.what()});
  }
  ++stats_.requests;
  if (std::holds_alternative<ErrorReply>(reply)) ++stats_.errors;
  const double sec = t.elapsed_sec();
  stats_.busy_seconds += sec;
  if (sec > stats_.max_request_seconds) stats_.max_request_seconds = sec;
  return reply;
}

void SpmvServer::note_rejected() {
  std::lock_guard lock(mu_);
  ++stats_.rejected_overload;
  ++stats_.requests;
  ++stats_.errors;
}

ServerStats SpmvServer::stats() const {
  std::lock_guard lock(mu_);
  ServerStats snapshot = stats_;
  snapshot.cache = cache_.stats();
  snapshot.engine_dispatches = engine_.dispatch_count();
  snapshot.engine_threads = engine_.nthreads();
  return snapshot;
}

// ----------------------------------------------------------- SocketServer

SocketServer::SocketServer(SpmvServer& core, std::string socket_path)
    : core_(core), path_(std::move(socket_path)) {}

SocketServer::~SocketServer() { stop(); }

Status SocketServer::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof addr.sun_path)
    return Error(ErrorCategory::Format,
                 "socket path '" + path_ + "' exceeds the AF_UNIX limit of " +
                     std::to_string(sizeof addr.sun_path - 1) + " chars");
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    return Error(ErrorCategory::Io,
                 std::string("socket() failed: ") + std::strerror(errno));
  ::unlink(path_.c_str());  // replace a stale socket file from a dead server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(listen_fd_, 64) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error(ErrorCategory::Io, "cannot listen on '" + path_ +
                                        "': " + std::strerror(err));
  }

  {
    std::lock_guard lock(jobs_mu_);
    started_ = true;
    stopping_ = false;
  }
  accepter_ = std::thread([this] { accept_loop(); });
  executor_ = std::thread([this] { executor_loop(); });
  return Unit{};
}

void SocketServer::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener shut down (stop or shutdown request)
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      // Register AND spawn under the lock: stop() must never observe a
      // registered connection whose reader it cannot join yet.
      std::lock_guard lock(jobs_mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      conns_.push_back(conn);
      conn->reader = std::thread([this, conn] { reader_loop(conn); });
    }
  }
}

void SocketServer::reader_loop(const std::shared_ptr<Connection>& conn) {
  while (true) {
    auto frame = read_frame(conn->fd);
    if (!frame.ok()) {
      // A broken length prefix desynchronizes the stream: reply with the
      // typed error, then end the session (the client must reconnect).
      write_reply(*conn, error_reply(std::move(frame).error()));
      break;
    }
    if (!frame.value().has_value()) break;  // clean EOF

    // Admission control happens here, before the job can reach the
    // executor: reject at the hard ceiling, mark for shedding above the
    // soft one.
    bool reject = false;
    bool shed = false;
    {
      std::lock_guard lock(jobs_mu_);
      if (stopping_) break;
      if (in_flight_ >= core_.config().max_in_flight) {
        reject = true;
      } else {
        shed = in_flight_ >= core_.config().shed_in_flight;
        ++in_flight_;
        conn->queue.push_back(Job{std::move(*frame.value()), shed});
      }
    }
    if (reject) {
      core_.note_rejected();
      write_reply(*conn,
                  Reply(ErrorReply{
                      ErrorCategory::Resource,
                      "server overloaded: " +
                          std::to_string(core_.config().max_in_flight) +
                          " jobs already in flight; retry later"}));
    } else {
      jobs_cv_.notify_one();
    }
  }
  {
    std::lock_guard lock(jobs_mu_);
    conn->closed = true;
  }
  jobs_cv_.notify_one();  // let the executor reap
}

void SocketServer::write_reply(Connection& conn, const Reply& reply) {
  const std::string payload = encode_reply(reply);
  std::lock_guard lock(conn.write_mu);
  (void)write_frame(conn.fd, payload);  // a vanished client is not our error
}

void SocketServer::executor_loop() {
  while (true) {
    std::shared_ptr<Connection> conn;
    Job job;
    std::vector<std::shared_ptr<Connection>> reap;
    {
      std::unique_lock lock(jobs_mu_);
      jobs_cv_.wait(lock, [this] {
        if (stopping_) return true;
        for (const auto& c : conns_)
          if (!c->queue.empty() || c->closed) return true;
        return false;
      });
      if (stopping_) break;

      // Reap sessions whose reader exited and whose queue is drained.
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->closed && (*it)->queue.empty()) {
          reap.push_back(*it);
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
      rr_next_ = conns_.empty() ? 0 : rr_next_ % conns_.size();

      // Round-robin across clients: each gets one job per sweep, so a
      // pipelining client cannot starve the others.
      for (std::size_t i = 0; i < conns_.size() && !conn; ++i) {
        auto& c = conns_[(rr_next_ + i) % conns_.size()];
        if (!c->queue.empty()) {
          conn = c;
          job = std::move(c->queue.front());
          c->queue.pop_front();
          rr_next_ = (rr_next_ + i + 1) % conns_.size();
        }
      }
    }
    for (const auto& c : reap) {
      if (c->reader.joinable()) c->reader.join();
      ::close(c->fd);
    }
    if (!conn) continue;

    Reply reply;
    auto req = decode_request(job.payload);
    if (!req.ok())
      reply = error_reply(std::move(req).error());
    else
      reply = core_.handle(std::move(req.value()), job.shed);
    write_reply(*conn, reply);

    bool initiate_stop = false;
    {
      std::lock_guard lock(jobs_mu_);
      --in_flight_;
      if (core_.shutdown_requested() && !stopping_) {
        stopping_ = true;
        initiate_stop = true;
      }
    }
    if (initiate_stop) {
      close_all_fds();
      jobs_cv_.notify_all();
      stopped_cv_.notify_all();
      break;
    }
  }
  {
    std::lock_guard lock(jobs_mu_);
    stopping_ = true;
  }
  stopped_cv_.notify_all();
}

void SocketServer::close_all_fds() {
  std::lock_guard lock(jobs_mu_);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  // shutdown(), not close(): readers may be mid-read and the executor
  // mid-write; shutting down unblocks them without recycling fd numbers.
  for (const auto& c : conns_) ::shutdown(c->fd, SHUT_RDWR);
}

void SocketServer::wait() {
  std::unique_lock lock(jobs_mu_);
  stopped_cv_.wait(lock, [this] { return stopping_ || !started_; });
}

void SocketServer::stop() {
  {
    std::lock_guard lock(jobs_mu_);
    if (!started_) return;
    stopping_ = true;
  }
  close_all_fds();
  jobs_cv_.notify_all();
  stopped_cv_.notify_all();

  if (accepter_.joinable()) accepter_.join();
  if (executor_.joinable()) executor_.join();

  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard lock(jobs_mu_);
    conns.swap(conns_);
    started_ = false;
  }
  for (const auto& c : conns) {
    if (c->reader.joinable()) c->reader.join();
    ::close(c->fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(path_.c_str());
}

}  // namespace spmvopt::server
