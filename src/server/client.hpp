// Blocking spmvoptd client: one Unix-domain-socket session, one outstanding
// request at a time (the protocol itself allows pipelining — the stress
// tests and bench drive raw frames for that).
//
// Every call returns Expected<>: a server-side ErrorReply surfaces as an
// Error carrying the server's category and message, transport failures as
// Io/Format errors, so callers branch on category, not message text.
//
// Retries (DESIGN.md §10): a call made with a nonzero `request_id` is an
// idempotency claim — the caller asserts that re-sending the same request is
// safe.  Only such calls are retried, and only on failures where a retry can
// help: transport Io errors (the client transparently reconnects) and
// ErrorReplies the server marked `retryable` (overload, draining).
// Deadline/cancel trips, Format and Internal errors are never retried, and
// shutdown_server() is never retried regardless of id.  Backoff between
// attempts is exponential with decorrelated jitter from a deterministic
// seeded generator, so tests can assert the exact schedule via
// backoff_schedule_ms().
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "robust/error.hpp"
#include "server/protocol.hpp"
#include "sparse/csr.hpp"
#include "support/fingerprint.hpp"

namespace spmvopt::server {

/// Per-call envelope knobs; the defaults reproduce pre-v2 behavior
/// (unnamed request, no deadline, no retries).
struct CallOptions {
  std::uint64_t request_id = 0;  ///< nonzero = idempotent, addressable, retried
  std::uint32_t deadline_ms = 0;  ///< server-side budget (queue + execution)
};

/// Bounded exponential backoff with decorrelated jitter.  Deterministic for
/// a given (seed, request_id) pair — see backoff_schedule_ms().
struct RetryPolicy {
  int max_attempts = 4;        ///< total tries, including the first
  double base_delay_ms = 25.0;
  double max_delay_ms = 2000.0;
  std::uint64_t seed = 42;     ///< jitter stream seed (tests pin this)
};

/// The exact delays (ms) a client with `policy` would sleep before retry
/// attempts 2..attempts of request `request_id`.  Pure: this IS the
/// client's schedule, exposed so tests assert determinism and bounds
/// without sleeping.
[[nodiscard]] std::vector<double> backoff_schedule_ms(
    const RetryPolicy& policy, std::uint64_t request_id, int attempts);

class Client {
 public:
  /// Connect to a listening spmvoptd socket.  Io when absent/refused.
  [[nodiscard]] static Expected<Client> connect(const std::string& socket_path);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Replace the retry policy (applies to subsequent calls).
  void set_retry_policy(RetryPolicy policy) noexcept { policy_ = policy; }
  [[nodiscard]] const RetryPolicy& retry_policy() const noexcept {
    return policy_;
  }

  /// Upload a matrix; the reply carries the fingerprint to use for jobs,
  /// the plan that will run, and which cache tier satisfied the submit.
  [[nodiscard]] Expected<SubmitReply> submit(const CsrMatrix& A,
                                             const CallOptions& opts = {});

  /// y = A x on the server, by fingerprint.
  [[nodiscard]] Expected<std::vector<value_t>> run(
      const Fingerprint& fp, std::span<const value_t> x,
      const CallOptions& opts = {});

  /// Batched multi-RHS SpMV (X is nrhs vectors of ncols, vector-major).
  /// `dtype` selects the wire encoding of X and of the reply's Y (F32 halves
  /// the payload; entries round through binary32 in transit).  Both sides
  /// keep vector<value_t> in memory — the codec converts at the boundary.
  [[nodiscard]] Expected<std::vector<value_t>> run_many(
      const Fingerprint& fp, std::span<const value_t> X, int nrhs,
      Dtype dtype, const CallOptions& opts = {});
  [[nodiscard]] Expected<std::vector<value_t>> run_many(
      const Fingerprint& fp, std::span<const value_t> X, int nrhs,
      const CallOptions& opts = {});

  [[nodiscard]] Expected<SolveReply> solve(const Fingerprint& fp,
                                           SolveMethod method,
                                           std::span<const value_t> b,
                                           int max_iterations = 1000,
                                           double rel_tolerance = 1e-8,
                                           const CallOptions& opts = {});

  /// Cancel the queued or executing request named `target_id` (the
  /// request_id its submitter chose).  Unknown ids are not an error — the
  /// reply says what state the target was found in.
  [[nodiscard]] Expected<CancelReply::Outcome> cancel(std::uint64_t target_id);

  /// Server counters as a JSON document (see server::stats_to_json).
  [[nodiscard]] Expected<std::string> stats_json(const CallOptions& opts = {});

  /// Version handshake round trip.
  [[nodiscard]] Status ping();

  /// Ask the server to exit its serve loop (replies before stopping).
  /// Never retried: a lost reply leaves the server state unknown.
  [[nodiscard]] Status shutdown_server();

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  Client(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  /// One send/recv round trip; ErrorReply stays in-band (the retry loop
  /// inspects its retryable bit).
  [[nodiscard]] Expected<Reply> roundtrip_once(const Request& req,
                                               const RequestHeader& hdr);
  /// The retry loop: backoff + reconnect around roundtrip_once per the
  /// policy above; converts a terminal ErrorReply into its Error.
  [[nodiscard]] Expected<Reply> call(const Request& req,
                                     const CallOptions& opts);
  /// Tear down and re-establish the socket (between retry attempts).
  [[nodiscard]] Status reconnect();

  int fd_ = -1;
  std::string path_;
  RetryPolicy policy_;
};

}  // namespace spmvopt::server
