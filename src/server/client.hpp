// Blocking spmvoptd client: one Unix-domain-socket session, one outstanding
// request at a time (the protocol itself allows pipelining — the stress
// tests and bench drive raw frames for that).
//
// Every call returns Expected<>: a server-side ErrorReply surfaces as an
// Error carrying the server's category and message, transport failures as
// Io/Format errors, so callers branch on category, not message text.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "robust/error.hpp"
#include "server/protocol.hpp"
#include "sparse/csr.hpp"
#include "support/fingerprint.hpp"

namespace spmvopt::server {

class Client {
 public:
  /// Connect to a listening spmvoptd socket.  Io when absent/refused.
  [[nodiscard]] static Expected<Client> connect(const std::string& socket_path);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Upload a matrix; the reply carries the fingerprint to use for jobs,
  /// the plan that will run, and which cache tier satisfied the submit.
  [[nodiscard]] Expected<SubmitReply> submit(const CsrMatrix& A);

  /// y = A x on the server, by fingerprint.
  [[nodiscard]] Expected<std::vector<value_t>> run(const Fingerprint& fp,
                                                   std::span<const value_t> x);

  /// Batched multi-RHS SpMV (X is nrhs vectors of ncols, vector-major).
  [[nodiscard]] Expected<std::vector<value_t>> run_many(
      const Fingerprint& fp, std::span<const value_t> X, int nrhs);

  [[nodiscard]] Expected<SolveReply> solve(const Fingerprint& fp,
                                           SolveMethod method,
                                           std::span<const value_t> b,
                                           int max_iterations = 1000,
                                           double rel_tolerance = 1e-8);

  /// Server counters as a JSON document (see server::stats_to_json).
  [[nodiscard]] Expected<std::string> stats_json();

  /// Version handshake round trip.
  [[nodiscard]] Status ping();

  /// Ask the server to exit its serve loop (replies before stopping).
  [[nodiscard]] Status shutdown_server();

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  [[nodiscard]] Expected<Reply> roundtrip(const Request& req);

  int fd_ = -1;
};

}  // namespace spmvopt::server
