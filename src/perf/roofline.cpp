#include "perf/roofline.hpp"

#include <algorithm>

namespace spmvopt::perf {

double spmv_operational_intensity(const CsrMatrix& A) noexcept {
  const double flops = 2.0 * static_cast<double>(A.nnz());
  const double bytes =
      static_cast<double>(A.working_set_bytes());
  return bytes > 0.0 ? flops / bytes : 0.0;
}

double roofline_gflops(double intensity_flop_per_byte, double bandwidth_gbps,
                       double peak_gflops) noexcept {
  return std::min(peak_gflops, bandwidth_gbps * intensity_flop_per_byte);
}

double ridge_point(double bandwidth_gbps, double peak_gflops) noexcept {
  return bandwidth_gbps > 0.0 ? peak_gflops / bandwidth_gbps : 0.0;
}

}  // namespace spmvopt::perf
