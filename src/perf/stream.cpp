#include "perf/stream.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/aligned.hpp"
#include "support/cpu_info.hpp"
#include "support/timing.hpp"

namespace spmvopt::perf {

double BandwidthProfile::bmax_for(std::size_t working_set_bytes) const noexcept {
  return working_set_bytes <= cpu_info().llc_bytes ? llc_gbps : dram_gbps;
}

double stream_triad_gbps(std::size_t elems, int nthreads, int repetitions) {
  if (elems == 0) throw std::invalid_argument("stream_triad: empty array");
  if (repetitions < 1) throw std::invalid_argument("stream_triad: repetitions < 1");
  aligned_vector<double> a(elems, 0.0), b(elems, 1.0), c(elems, 2.0);
  const double s = 3.0;
  double* pa = a.data();
  const double* pb = b.data();
  const double* pc = c.data();

  double best_sec = 1e300;
  for (int rep = 0; rep < repetitions + 1; ++rep) {  // first rep = warmup
    Timer timer;
#pragma omp parallel for schedule(static) num_threads(nthreads)
    for (std::size_t i = 0; i < elems; ++i) pa[i] = pb[i] + s * pc[i];
    const double sec = timer.elapsed_sec();
    if (rep > 0) best_sec = std::min(best_sec, sec);
  }
  // STREAM counts 3 arrays (2 reads + 1 write) of 8-byte elements.
  const double bytes = 3.0 * static_cast<double>(elems) * sizeof(double);
  return bytes / best_sec / 1e9;
}

const BandwidthProfile& bandwidth_profile(int nthreads) {
  static const BandwidthProfile profile = [nthreads] {
    const int t = nthreads > 0 ? nthreads : default_threads();
    const std::size_t llc = cpu_info().llc_bytes;
    BandwidthProfile p;
    // DRAM point: 4x the LLC so the triad streams from memory.
    p.dram_gbps = stream_triad_gbps(4 * llc / (3 * sizeof(double)), t, 5);
    // LLC point: a quarter of the LLC, repeated to stay resident.
    p.llc_gbps = stream_triad_gbps(
        std::max<std::size_t>(4096, llc / (4 * 3 * sizeof(double))), t, 20);
    // On hosts whose LLC is so large the "DRAM" point still fits a slice of
    // cache, keep the invariant llc >= dram anyway.
    p.llc_gbps = std::max(p.llc_gbps, p.dram_gbps);
    return p;
  }();
  return profile;
}

}  // namespace spmvopt::perf
