// Partition-wise latency-bound detection — the paper's stated future work.
//
// §IV-C: for rajat30 "the benchmark that exposes irregularity ... can
// actually detect the irregularity in this matrix by looking at it in
// partitions, instead of looking at it as a whole.  We intend to extend our
// classification approach to incorporate this idea in future work."
//
// Whole-matrix P_ML averages the irregular region away when most rows are
// regular.  Here the matrix is split into `parts` contiguous row blocks with
// ~equal nnz; the P_ML micro-benchmark runs per block, and the classifier
// may flag ML when *any* block clears the T_ML threshold.
#pragma once

#include <vector>

#include "perf/measure.hpp"
#include "sparse/csr.hpp"

namespace spmvopt::perf {

struct PartitionMlResult {
  std::vector<double> ratios;  ///< per-block P_ML / P_CSR
  double whole_ratio = 0.0;    ///< the whole-matrix ratio, for comparison
  [[nodiscard]] double max_ratio() const noexcept;
};

/// Measure per-block ML ratios.  `parts` in [1, nrows]; blocks are
/// nnz-balanced so each timing covers comparable work.
[[nodiscard]] PartitionMlResult partitioned_ml_ratios(
    const CsrMatrix& A, int parts, const MeasureConfig& cfg, int nthreads = 0);

}  // namespace spmvopt::perf
