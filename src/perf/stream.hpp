// STREAM-triad bandwidth probe (McCalpin [25]).
//
// Table III reports each platform's sustainable triad bandwidth twice: out of
// main memory and out of the LLC.  The P_MB / P_peak bounds (§III-B) divide
// memory traffic by B_max, "adjusted upwards for matrices that fit in the
// system's cache hierarchy" (footnote 2) — so we measure both operating
// points on the host at startup and pick per matrix.
#pragma once

#include <cstddef>

namespace spmvopt::perf {

struct BandwidthProfile {
  double dram_gbps = 0.0;  ///< triad bandwidth, working set >> LLC
  double llc_gbps = 0.0;   ///< triad bandwidth, working set inside LLC

  /// B_max for a kernel with the given working-set size (footnote 2).
  [[nodiscard]] double bmax_for(std::size_t working_set_bytes) const noexcept;
};

/// Triad a[i] = b[i] + s*c[i] over three arrays of `elems` doubles with
/// `nthreads` OpenMP threads; returns sustained GB/s (3 arrays moved,
/// write-allocate traffic not counted, as STREAM does).
[[nodiscard]] double stream_triad_gbps(std::size_t elems, int nthreads,
                                       int repetitions = 10);

/// Measure both operating points (cached after the first call — the probe
/// costs a few hundred ms).  `nthreads` <= 0 means default_threads().
[[nodiscard]] const BandwidthProfile& bandwidth_profile(int nthreads = 0);

}  // namespace spmvopt::perf
