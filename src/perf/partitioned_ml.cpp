#include "perf/partitioned_ml.hpp"

#include <algorithm>
#include <stdexcept>

#include "gen/generators.hpp"
#include "kernels/spmv.hpp"
#include "support/cpu_info.hpp"
#include "support/partition.hpp"

namespace spmvopt::perf {

double PartitionMlResult::max_ratio() const noexcept {
  double best = 0.0;
  for (double r : ratios) best = std::max(best, r);
  return best;
}

namespace {

double ml_ratio_of(const CsrMatrix& block, const std::vector<value_t>& x,
                   std::vector<value_t>& y, int nthreads,
                   const MeasureConfig& cfg) {
  const auto part = balanced_nnz_partition(block.rowptr(), block.nrows(),
                                           nthreads);
  const double flops = 2.0 * static_cast<double>(block.nnz());
  if (block.nnz() == 0) return 1.0;
  const RateSummary base = measure_rate(
      [&] { kernels::spmv_balanced(block, part, x.data(), y.data()); }, flops,
      cfg);
  const CsrMatrix regular = kernels::make_regular_access_copy(block);
  const RateSummary ml = measure_rate(
      [&] { kernels::spmv_balanced(regular, part, x.data(), y.data()); },
      flops, cfg);
  return ml.gflops / base.gflops;
}

}  // namespace

PartitionMlResult partitioned_ml_ratios(const CsrMatrix& A, int parts,
                                        const MeasureConfig& cfg,
                                        int nthreads) {
  if (parts < 1 || parts > std::max<index_t>(1, A.nrows()))
    throw std::invalid_argument("partitioned_ml_ratios: bad part count");
  const int t = nthreads > 0 ? nthreads : default_threads();

  std::vector<value_t> x = gen::test_vector(A.ncols());
  std::vector<value_t> y(static_cast<std::size_t>(A.nrows()), 0.0);

  PartitionMlResult out;
  out.whole_ratio = ml_ratio_of(A, x, y, t, cfg);

  // nnz-balanced block boundaries, so each measurement times similar work.
  const RowPartition blocks = balanced_nnz_partition(A.rowptr(), A.nrows(), parts);
  out.ratios.reserve(static_cast<std::size_t>(parts));
  for (int p = 0; p < parts; ++p) {
    const index_t lo = blocks.bounds[static_cast<std::size_t>(p)];
    const index_t hi = blocks.bounds[static_cast<std::size_t>(p) + 1];
    if (lo == hi) {
      out.ratios.push_back(1.0);
      continue;
    }
    const CsrMatrix block = A.extract_rows(lo, hi);
    std::vector<value_t> yb(static_cast<std::size_t>(block.nrows()), 0.0);
    out.ratios.push_back(ml_ratio_of(block, x, yb, t, cfg));
  }
  return out;
}

}  // namespace spmvopt::perf
