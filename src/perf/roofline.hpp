// Roofline model helpers (Williams et al. [17]).
//
// The CMP class definition (§III-A) talks about matrices whose operational
// intensity pushes them "closer to the ridge point of the Roofline model";
// these helpers quantify that for reports and tests.
#pragma once

#include <cstddef>

#include "sparse/csr.hpp"

namespace spmvopt::perf {

/// Operational intensity of CSR SpMV in flop/byte: 2·NNZ flops over the
/// compulsory traffic (matrix + x + y).
[[nodiscard]] double spmv_operational_intensity(const CsrMatrix& A) noexcept;

/// Attainable Gflop/s under the Roofline: min(peak_flops, B * intensity).
[[nodiscard]] double roofline_gflops(double intensity_flop_per_byte,
                                     double bandwidth_gbps,
                                     double peak_gflops) noexcept;

/// Ridge point: the intensity at which the machine turns compute-bound.
[[nodiscard]] double ridge_point(double bandwidth_gbps,
                                 double peak_gflops) noexcept;

}  // namespace spmvopt::perf
