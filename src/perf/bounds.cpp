#include "perf/bounds.hpp"

#include <algorithm>
#include <vector>

#include "gen/generators.hpp"
#include "kernels/spmv.hpp"
#include "robust/fault_inject.hpp"
#include "support/cpu_info.hpp"
#include "support/partition.hpp"
#include "support/stats.hpp"
#include "support/timing.hpp"

namespace spmvopt::perf {

PerfBounds measure_bounds(const CsrMatrix& A, const BoundsConfig& cfg) {
  Timer deadline_timer;
  const auto deadline_hit = [&] {
    if (robust::fault_fire("classify.profile_overrun")) return true;
    return cfg.deadline_seconds > 0.0 &&
           deadline_timer.elapsed_sec() > cfg.deadline_seconds;
  };
  const int nthreads = cfg.nthreads > 0 ? cfg.nthreads : default_threads();
  const auto part = balanced_nnz_partition(A.rowptr(), A.nrows(), nthreads);
  const double flops = 2.0 * static_cast<double>(A.nnz());

  PerfBounds b;
  const BandwidthProfile& bw = bandwidth_profile(nthreads);
  b.fits_llc = A.working_set_bytes() <= cpu_info().llc_bytes;
  b.bmax_gbps = bw.bmax_for(A.working_set_bytes());

  // Analytic bounds: compulsory misses set the minimum traffic (§III-B).
  const double sxy = static_cast<double>(A.nrows() + A.ncols()) * sizeof(value_t);
  const double m_mb = static_cast<double>(A.format_bytes()) + sxy;
  const double m_peak = static_cast<double>(A.values_bytes()) + sxy;
  b.p_mb = flops / (m_mb / (b.bmax_gbps * 1e9)) / 1e9;
  b.p_peak = flops / (m_peak / (b.bmax_gbps * 1e9)) / 1e9;

  std::vector<value_t> x = gen::test_vector(A.ncols());
  std::vector<value_t> y(static_cast<std::size_t>(A.nrows()), 0.0);

  // Baseline P_CSR, recording per-thread times on every invocation so
  // P_IMB can use the median (the run also doubles as the baseline timing).
  std::vector<double> thread_sec(static_cast<std::size_t>(nthreads), 0.0);
  std::vector<double> medians;
  const RateSummary csr = measure_rate(
      [&] {
        kernels::spmv_balanced(A, part, x.data(), y.data(), thread_sec.data());
        medians.push_back(median(thread_sec));
      },
      flops, cfg.measure);
  b.p_csr = csr.gflops;

  // P_IMB = 2*NNZ / t_median (t from the baseline run's per-thread times).
  const double t_median = median(medians);
  b.p_imb = t_median > 0.0 ? flops / t_median / 1e9 : b.p_csr;

  // Budget check between measurement blocks: P_CSR/P_IMB above are always
  // taken (they double as the baseline timing); the two micro-benchmarks
  // below are skippable.
  if (deadline_hit()) {
    b.overrun = true;
    return b;
  }

  // P_ML: baseline kernel on the regular-access copy (colind := row index).
  {
    const CsrMatrix regular = kernels::make_regular_access_copy(A);
    const RateSummary ml = measure_rate(
        [&] { kernels::spmv_balanced(regular, part, x.data(), y.data()); },
        flops, cfg.measure);
    b.p_ml = ml.gflops;
  }

  if (deadline_hit()) {
    b.overrun = true;
    return b;
  }

  // P_CMP: all indirection eliminated, unit-stride accesses only.
  {
    const RateSummary cmp = measure_rate(
        [&] { kernels::spmv_noindex(A, part, x.data(), y.data()); }, flops,
        cfg.measure);
    b.p_cmp = cmp.gflops;
  }
  return b;
}

}  // namespace spmvopt::perf
