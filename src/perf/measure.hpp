// Timed-measurement harness implementing the paper's methodology (§IV-A):
// one measurement = arithmetic mean over a block of back-to-back (warm-cache)
// kernel invocations; `runs` such measurements are summarized with the
// harmonic mean of their rates.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "sparse/csr.hpp"
#include "support/stats.hpp"
#include "support/timing.hpp"
#include "support/types.hpp"

namespace spmvopt::perf {

struct MeasureConfig {
  int iterations = 128;  ///< SpMV operations per measurement block
  int runs = 5;          ///< measurement blocks (harmonic-mean summarized)
  int warmup = 2;        ///< untimed invocations before the first block

  /// Values from the environment (SPMVOPT_ITERS / SPMVOPT_RUNS / quick mode).
  [[nodiscard]] static MeasureConfig from_env();
};

/// The raw measurement record behind a RateSummary: one Gflop/s sample per
/// run.  The bench harness (src/report/) needs the samples to attach
/// confidence intervals and reject outliers; measure_rate() keeps the
/// summary-only view for callers that don't.
struct RateSamples {
  std::vector<double> gflops;  ///< one per run, in measurement order
  RateSummary summary;         ///< summarize_rates over all runs
};

/// Times `op()` per the methodology and keeps every per-run rate.
template <class F>
[[nodiscard]] RateSamples measure_rate_samples(F&& op, double flops,
                                               const MeasureConfig& cfg) {
  for (int w = 0; w < cfg.warmup; ++w) op();
  std::vector<double> sec_per_op;
  sec_per_op.reserve(static_cast<std::size_t>(cfg.runs));
  for (int r = 0; r < cfg.runs; ++r) {
    Timer timer;
    for (int i = 0; i < cfg.iterations; ++i) op();
    sec_per_op.push_back(timer.elapsed_sec() /
                         static_cast<double>(cfg.iterations));
  }
  RateSamples out;
  out.summary = summarize_rates(sec_per_op, flops);
  out.gflops.reserve(sec_per_op.size());
  for (double s : sec_per_op) out.gflops.push_back(flops / s / 1e9);
  return out;
}

/// Times `op()` per the methodology; returns harmonic-mean Gflop/s etc.
/// for a kernel performing `flops` floating-point operations per call.
template <class F>
[[nodiscard]] RateSummary measure_rate(F&& op, double flops,
                                       const MeasureConfig& cfg) {
  return measure_rate_samples(std::forward<F>(op), flops, cfg).summary;
}

/// Any y = A*x implementation, bound to its operands' raw pointers.
using SpmvFn = std::function<void(const value_t*, value_t*)>;

/// Measure an SpMV callable on `A` with a deterministic test vector —
/// allocation of x/y, the 2*nnz flop count, and the timing protocol in one
/// place (previously copy-pasted by every bench driver).
[[nodiscard]] double measure_gflops(const CsrMatrix& A, const SpmvFn& fn,
                                    const MeasureConfig& cfg);

/// Sample-keeping variant of measure_gflops for the bench harness.
[[nodiscard]] RateSamples measure_gflops_samples(const CsrMatrix& A,
                                                 const SpmvFn& fn,
                                                 const MeasureConfig& cfg);

/// Plain seconds for a one-shot operation (preprocessing cost accounting).
template <class F>
[[nodiscard]] std::pair<double, decltype(std::declval<F>()())> timed(F&& op) {
  Timer timer;
  auto result = op();
  return {timer.elapsed_sec(), std::move(result)};
}

}  // namespace spmvopt::perf
