// Timed-measurement harness implementing the paper's methodology (§IV-A):
// one measurement = arithmetic mean over a block of back-to-back (warm-cache)
// kernel invocations; `runs` such measurements are summarized with the
// harmonic mean of their rates.
#pragma once

#include <utility>
#include <vector>

#include "support/stats.hpp"
#include "support/timing.hpp"

namespace spmvopt::perf {

struct MeasureConfig {
  int iterations = 128;  ///< SpMV operations per measurement block
  int runs = 5;          ///< measurement blocks (harmonic-mean summarized)
  int warmup = 2;        ///< untimed invocations before the first block

  /// Values from the environment (SPMVOPT_ITERS / SPMVOPT_RUNS / quick mode).
  [[nodiscard]] static MeasureConfig from_env();
};

/// Times `op()` per the methodology; returns harmonic-mean Gflop/s etc.
/// for a kernel performing `flops` floating-point operations per call.
template <class F>
[[nodiscard]] RateSummary measure_rate(F&& op, double flops,
                                       const MeasureConfig& cfg) {
  for (int w = 0; w < cfg.warmup; ++w) op();
  std::vector<double> sec_per_op;
  sec_per_op.reserve(static_cast<std::size_t>(cfg.runs));
  for (int r = 0; r < cfg.runs; ++r) {
    Timer timer;
    for (int i = 0; i < cfg.iterations; ++i) op();
    sec_per_op.push_back(timer.elapsed_sec() /
                         static_cast<double>(cfg.iterations));
  }
  return summarize_rates(sec_per_op, flops);
}

/// Plain seconds for a one-shot operation (preprocessing cost accounting).
template <class F>
[[nodiscard]] std::pair<double, decltype(std::declval<F>()())> timed(F&& op) {
  Timer timer;
  auto result = op();
  return {timer.elapsed_sec(), std::move(result)};
}

}  // namespace spmvopt::perf
