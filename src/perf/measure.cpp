#include "perf/measure.hpp"

#include "gen/generators.hpp"
#include "support/env.hpp"

namespace spmvopt::perf {

MeasureConfig MeasureConfig::from_env() {
  MeasureConfig cfg;
  cfg.iterations = bench_iterations();
  cfg.runs = bench_runs();
  cfg.warmup = quick_mode() ? 1 : 2;
  return cfg;
}

RateSamples measure_gflops_samples(const CsrMatrix& A, const SpmvFn& fn,
                                   const MeasureConfig& cfg) {
  const std::vector<value_t> x = gen::test_vector(A.ncols());
  std::vector<value_t> y(static_cast<std::size_t>(A.nrows()));
  const double flops = 2.0 * static_cast<double>(A.nnz());
  return measure_rate_samples([&] { fn(x.data(), y.data()); }, flops, cfg);
}

double measure_gflops(const CsrMatrix& A, const SpmvFn& fn,
                      const MeasureConfig& cfg) {
  return measure_gflops_samples(A, fn, cfg).summary.gflops;
}

}  // namespace spmvopt::perf
