#include "perf/measure.hpp"

#include "support/env.hpp"

namespace spmvopt::perf {

MeasureConfig MeasureConfig::from_env() {
  MeasureConfig cfg;
  cfg.iterations = bench_iterations();
  cfg.runs = bench_runs();
  cfg.warmup = quick_mode() ? 1 : 2;
  return cfg;
}

}  // namespace spmvopt::perf
