// Per-class performance upper bounds (§III-B).
//
// For each bottleneck class the paper derives the performance attainable if
// that bottleneck were completely eliminated:
//   P_MB   = 2·NNZ / ((S_format + S_x + S_y) / B_max)   — analytic
//   P_ML   — measured: baseline kernel on a copy with colind[j] := row index
//   P_IMB  = 2·NNZ / t_median over per-thread times      — from baseline run
//   P_CMP  — measured: kernel with all indirection removed (x[i] only)
//   P_peak = 2·NNZ / ((S_values + S_x + S_y) / B_max)    — analytic
// Comparing these against the measured baseline P_CSR drives the
// profile-guided classifier (Fig. 4).
#pragma once

#include "perf/measure.hpp"
#include "perf/stream.hpp"
#include "sparse/csr.hpp"

namespace spmvopt::perf {

struct PerfBounds {
  double p_csr = 0.0;   ///< measured baseline (balanced-nnz CSR) Gflop/s
  double p_mb = 0.0;
  double p_ml = 0.0;
  double p_imb = 0.0;
  double p_cmp = 0.0;
  double p_peak = 0.0;
  bool fits_llc = false;  ///< working set within the LLC (footnote-2 B_max)
  double bmax_gbps = 0.0; ///< the B_max actually used
  /// True when the deadline cut profiling short: P_CSR/P_IMB and the
  /// analytic bounds are valid, but p_ml/p_cmp were skipped (left 0).
  bool overrun = false;
};

struct BoundsConfig {
  MeasureConfig measure = MeasureConfig::from_env();
  int nthreads = 0;  ///< <= 0: default_threads()
  /// Wall-clock budget for the whole measurement (seconds; <= 0 means
  /// unlimited).  Checked between measurement blocks — P_CSR is always
  /// measured; the P_ML and P_CMP micro-benchmarks are skipped once the
  /// budget is spent, with `PerfBounds::overrun` set (DESIGN.md §6).
  double deadline_seconds = 0.0;
};

/// Run the bound-and-bottleneck analysis for `A` on this host.
/// Cost: a few measured kernels — this is the optimizer's "online profiling"
/// phase whose overhead Table V accounts for.
[[nodiscard]] PerfBounds measure_bounds(const CsrMatrix& A,
                                        const BoundsConfig& cfg = {});

}  // namespace spmvopt::perf
