// PageRank power iteration — the graph-analytics workload the introduction
// motivates (power-law web/citation matrices are exactly the IMB/CMP cases
// the optimizer targets).
#pragma once

#include <vector>

#include "solvers/operator.hpp"
#include "sparse/csr.hpp"

namespace spmvopt::solvers {

struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 200;
  double tolerance = 1e-9;  ///< on the L1 change per iteration
};

struct PageRankResult {
  std::vector<value_t> scores;  ///< sums to 1
  int iterations = 0;
  bool converged = false;
};

/// PageRank of the directed graph whose adjacency is `A` (A[i][j] != 0 means
/// an edge i -> j).  The iteration multiplies by the column-stochastic
/// transpose, which we build once (the preprocessing an SpMV optimizer would
/// amortize over the iterations).  `op` optionally overrides the multiply
/// with an optimized kernel built on `transition(A)`.
[[nodiscard]] PageRankResult pagerank(const CsrMatrix& A,
                                      const PageRankOptions& opt = {});

/// Same, but multiplying with a caller-supplied operator over the transition
/// matrix (e.g. an OptimizedSpmv of transition_matrix(A)); `dangling` must be
/// the rows of A with no out-links.
[[nodiscard]] PageRankResult pagerank_with_operator(
    const LinearOperator& transition, const std::vector<index_t>& dangling,
    index_t n, const PageRankOptions& opt = {});

/// The column-stochastic transition matrix P = (D^-1 A)^T used above.
[[nodiscard]] CsrMatrix transition_matrix(const CsrMatrix& A);
/// Row indices of A with an empty row (dangling nodes).
[[nodiscard]] std::vector<index_t> dangling_nodes(const CsrMatrix& A);

}  // namespace spmvopt::solvers
