// Krylov solvers: CG, BiCGSTAB and restarted GMRES.
//
// These are the §IV-D application context: iterative methods that call SpMV
// hundreds-to-thousands of times, across which an optimizer's preprocessing
// cost amortizes (Table V).  All solvers work through LinearOperator so they
// run identically on baseline CSR and on any OptimizedSpmv plan.
#pragma once

#include <span>
#include <vector>

#include "robust/cancel.hpp"
#include "solvers/operator.hpp"

namespace spmvopt::solvers {

struct SolverOptions {
  int max_iterations = 1000;
  double rel_tolerance = 1e-8;  ///< on ||r|| / ||b||
  /// Cooperative cancellation: polled once per iteration (per inner/Arnoldi
  /// iteration for GMRES, i.e. per SpMV).  When it trips the solver returns
  /// early with `aborted` set; `x` holds the last completed iterate — valid
  /// partial progress, usable as a warm start for a retry.
  const robust::CancelToken* cancel = nullptr;
};

/// Why a solve returned before convergence or max_iterations (DESIGN.md §10).
enum class SolveAbort { None, Cancelled, DeadlineExceeded };

struct SolveResult {
  bool converged = false;
  int iterations = 0;
  double residual_norm = 0.0;  ///< final relative residual
  SolveAbort aborted = SolveAbort::None;
};

/// Conjugate Gradient — requires a symmetric positive-definite operator.
[[nodiscard]] SolveResult cg(const LinearOperator& A, std::span<const value_t> b,
                             std::span<value_t> x, const SolverOptions& opt = {});

/// Batched CG: solves A x_r = b_r for `nrhs` independent right-hand sides
/// simultaneously, issuing ONE apply_many() per iteration instead of nrhs
/// apply() calls.  When `A` comes from an OptimizedSpmv, each iteration's
/// matvec block runs the fused register-blocked SpMM (DESIGN.md §13), which
/// streams the matrix once for all systems — the bandwidth amortization the
/// multi-RHS kernel exists for.  B and X are vector-major (system r at
/// B + r*n), matching apply_many().  Each system keeps its own CG scalars;
/// systems that converge are frozen (their direction is zeroed so the shared
/// matvec leaves them unchanged) while the rest continue.  Returns one
/// SolveResult per system, in order.
[[nodiscard]] std::vector<SolveResult> block_cg(const LinearOperator& A,
                                                std::span<const value_t> B,
                                                std::span<value_t> X, int nrhs,
                                                const SolverOptions& opt = {});

/// BiCGSTAB — general nonsymmetric systems.
[[nodiscard]] SolveResult bicgstab(const LinearOperator& A,
                                   std::span<const value_t> b,
                                   std::span<value_t> x,
                                   const SolverOptions& opt = {});

/// GMRES(restart) with Givens rotations — general nonsymmetric systems.
/// `iterations` counts inner iterations (SpMV calls).
[[nodiscard]] SolveResult gmres(const LinearOperator& A,
                                std::span<const value_t> b,
                                std::span<value_t> x, int restart = 30,
                                const SolverOptions& opt = {});

}  // namespace spmvopt::solvers
