#include "solvers/blas1.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spmvopt::solvers {

namespace {
void require_same(std::size_t a, std::size_t b) {
  if (a != b) throw std::invalid_argument("blas1: size mismatch");
}
}  // namespace

value_t dot(std::span<const value_t> a, std::span<const value_t> b) {
  require_same(a.size(), b.size());
  value_t s = 0.0;
  const std::size_t n = a.size();
#pragma omp parallel for schedule(static) reduction(+ : s)
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

value_t nrm2(std::span<const value_t> a) { return std::sqrt(dot(a, a)); }

void axpy(value_t alpha, std::span<const value_t> x, std::span<value_t> y) {
  require_same(x.size(), y.size());
  const std::size_t n = x.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void xpby(std::span<const value_t> x, value_t beta, std::span<value_t> y) {
  require_same(x.size(), y.size());
  const std::size_t n = x.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] + beta * y[i];
}

void scal(value_t alpha, std::span<value_t> x) {
  for (auto& v : x) v *= alpha;
}

void copy(std::span<const value_t> src, std::span<value_t> dst) {
  require_same(src.size(), dst.size());
  std::copy(src.begin(), src.end(), dst.begin());
}

void fill(std::span<value_t> x, value_t v) {
  std::fill(x.begin(), x.end(), v);
}

}  // namespace spmvopt::solvers
