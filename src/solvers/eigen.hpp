// Eigenvalue estimation — the second half of the paper's motivation: SpMV is
// "a fundamental building block of iterative methods for ... the
// approximation of eigenvalues of large sparse matrices" (§I).
//
// * power_method        — dominant eigenpair (largest |λ|) of any operator.
// * lanczos_extreme     — smallest/largest eigenvalues of a *symmetric*
//   operator via the Lanczos tridiagonalization (Ritz values from the
//   tridiagonal matrix, eigenvalues of which come from bisection with Sturm
//   sequences — no external LAPACK needed).
// Both do exactly one SpMV per iteration, the regime the optimizer targets.
#pragma once

#include <span>
#include <vector>

#include "solvers/operator.hpp"

namespace spmvopt::solvers {

struct EigenOptions {
  int max_iterations = 300;
  double tolerance = 1e-9;  ///< on the eigenvalue change per iteration
};

struct EigenResult {
  double eigenvalue = 0.0;
  std::vector<value_t> eigenvector;  ///< normalized; empty for lanczos
  int iterations = 0;
  bool converged = false;
};

/// Dominant eigenpair by power iteration with Rayleigh-quotient estimates.
/// `seed` controls the deterministic random start vector.
[[nodiscard]] EigenResult power_method(const LinearOperator& A,
                                       const EigenOptions& opt = {},
                                       std::uint64_t seed = 1);

struct LanczosResult {
  double lambda_min = 0.0;
  double lambda_max = 0.0;
  int iterations = 0;  ///< Krylov dimension reached (== SpMV count)
};

/// Extreme eigenvalues of a symmetric operator by `steps` Lanczos iterations
/// with full reorthogonalization (robust for the moderate step counts used
/// here).  Throws std::invalid_argument for a non-square operator.
[[nodiscard]] LanczosResult lanczos_extreme(const LinearOperator& A,
                                            int steps = 50,
                                            std::uint64_t seed = 1);

/// All eigenvalues of a symmetric tridiagonal matrix (diag, offdiag) by
/// bisection with Sturm-sequence counts; ascending order.  Exposed for
/// testing and reuse.
[[nodiscard]] std::vector<double> tridiag_eigenvalues(
    std::span<const double> diag, std::span<const double> offdiag,
    double tol = 1e-12);

}  // namespace spmvopt::solvers
