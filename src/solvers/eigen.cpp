#include "solvers/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "solvers/blas1.hpp"
#include "support/rng.hpp"

namespace spmvopt::solvers {

namespace {

std::vector<value_t> random_unit_vector(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<value_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  const double norm = nrm2(v);
  scal(1.0 / norm, v);
  return v;
}

}  // namespace

EigenResult power_method(const LinearOperator& A, const EigenOptions& opt,
                         std::uint64_t seed) {
  if (A.nrows() != A.ncols())
    throw std::invalid_argument("power_method: operator must be square");
  const auto n = static_cast<std::size_t>(A.nrows());

  EigenResult result;
  result.eigenvector = random_unit_vector(A.nrows(), seed);
  std::vector<value_t> next(n);
  double lambda_prev = 0.0;

  for (int it = 0; it < opt.max_iterations; ++it) {
    result.iterations = it + 1;
    A.apply(result.eigenvector, next);
    // Rayleigh quotient with the (unit) current vector.
    result.eigenvalue = dot(result.eigenvector, next);
    const double norm = nrm2(next);
    if (norm == 0.0) {  // hit the null space: eigenvalue 0
      result.eigenvalue = 0.0;
      result.converged = true;
      return result;
    }
    scal(1.0 / norm, next);
    result.eigenvector.swap(next);
    if (it > 0 && std::abs(result.eigenvalue - lambda_prev) <=
                      opt.tolerance * std::max(1.0, std::abs(result.eigenvalue))) {
      result.converged = true;
      return result;
    }
    lambda_prev = result.eigenvalue;
  }
  return result;
}

std::vector<double> tridiag_eigenvalues(std::span<const double> diag,
                                        std::span<const double> offdiag,
                                        double tol) {
  const std::size_t n = diag.size();
  if (n == 0) throw std::invalid_argument("tridiag_eigenvalues: empty");
  if (offdiag.size() + 1 != n)
    throw std::invalid_argument("tridiag_eigenvalues: offdiag size != n-1");

  // Gershgorin bounds.
  double lo = diag[0], hi = diag[0];
  for (std::size_t i = 0; i < n; ++i) {
    double r = 0.0;
    if (i > 0) r += std::abs(offdiag[i - 1]);
    if (i + 1 < n) r += std::abs(offdiag[i]);
    lo = std::min(lo, diag[i] - r);
    hi = std::max(hi, diag[i] + r);
  }

  // Sturm count: number of eigenvalues strictly below x.
  auto count_below = [&](double x) {
    int count = 0;
    double d = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double off2 = i > 0 ? offdiag[i - 1] * offdiag[i - 1] : 0.0;
      d = diag[i] - x - (d != 0.0 ? off2 / d : off2 / 1e-300);
      if (d < 0.0) ++count;
    }
    return count;
  };

  std::vector<double> eigs(n);
  for (std::size_t k = 0; k < n; ++k) {
    double a = lo, b = hi;
    while (b - a > tol * std::max(1.0, std::abs(a) + std::abs(b))) {
      const double mid = 0.5 * (a + b);
      if (count_below(mid) > static_cast<int>(k))
        b = mid;
      else
        a = mid;
    }
    eigs[k] = 0.5 * (a + b);
  }
  return eigs;
}

LanczosResult lanczos_extreme(const LinearOperator& A, int steps,
                              std::uint64_t seed) {
  if (A.nrows() != A.ncols())
    throw std::invalid_argument("lanczos_extreme: operator must be square");
  if (steps < 1) throw std::invalid_argument("lanczos_extreme: steps < 1");
  const auto n = static_cast<std::size_t>(A.nrows());
  steps = std::min<int>(steps, A.nrows());

  std::vector<std::vector<value_t>> V;
  V.push_back(random_unit_vector(A.nrows(), seed));
  std::vector<double> alpha, beta;
  std::vector<value_t> w(n);

  for (int j = 0; j < steps; ++j) {
    A.apply(V[static_cast<std::size_t>(j)], w);
    if (j > 0)
      axpy(-beta[static_cast<std::size_t>(j) - 1],
           V[static_cast<std::size_t>(j) - 1], w);
    const double a = dot(w, V[static_cast<std::size_t>(j)]);
    alpha.push_back(a);
    axpy(-a, V[static_cast<std::size_t>(j)], w);
    // Full reorthogonalization (steps are small; robustness over speed).
    for (const auto& v : V) axpy(-dot(w, v), v, w);
    const double b = nrm2(w);
    if (b < 1e-12) break;  // invariant subspace found
    beta.push_back(b);
    scal(1.0 / b, w);
    V.push_back(w);
  }

  // Tridiagonal sizes: |alpha| = m needs |beta| = m-1.  After a full loop
  // beta has one extra (pushed on the last step); after an early break it is
  // already m-1.
  while (beta.size() >= alpha.size()) beta.pop_back();
  const std::vector<double> ritz = tridiag_eigenvalues(alpha, beta);

  LanczosResult out;
  out.lambda_min = ritz.front();
  out.lambda_max = ritz.back();
  out.iterations = static_cast<int>(alpha.size());
  return out;
}

}  // namespace spmvopt::solvers
