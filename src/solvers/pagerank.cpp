#include "solvers/pagerank.hpp"

#include <cmath>
#include <stdexcept>

namespace spmvopt::solvers {

CsrMatrix transition_matrix(const CsrMatrix& A) {
  if (A.nrows() != A.ncols())
    throw std::invalid_argument("transition_matrix: adjacency must be square");
  const index_t n = A.nrows();
  CooMatrix coo(n, n);
  coo.reserve(static_cast<std::size_t>(A.nnz()));
  for (index_t i = 0; i < n; ++i) {
    const index_t deg = A.row_nnz(i);
    if (deg == 0) continue;  // dangling: handled in the iteration
    const value_t w = 1.0 / static_cast<value_t>(deg);
    for (index_t j = A.rowptr()[i]; j < A.rowptr()[i + 1]; ++j)
      coo.add(A.colind()[j], i, w);  // transpose: P[dst][src]
  }
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

std::vector<index_t> dangling_nodes(const CsrMatrix& A) {
  std::vector<index_t> out;
  for (index_t i = 0; i < A.nrows(); ++i)
    if (A.row_nnz(i) == 0) out.push_back(i);
  return out;
}

PageRankResult pagerank_with_operator(const LinearOperator& transition,
                                      const std::vector<index_t>& dangling,
                                      index_t n, const PageRankOptions& opt) {
  if (opt.damping <= 0.0 || opt.damping >= 1.0)
    throw std::invalid_argument("pagerank: damping must be in (0, 1)");
  if (n <= 0) throw std::invalid_argument("pagerank: empty graph");

  PageRankResult result;
  result.scores.assign(static_cast<std::size_t>(n),
                       1.0 / static_cast<value_t>(n));
  std::vector<value_t> next(static_cast<std::size_t>(n));

  for (int it = 0; it < opt.max_iterations; ++it) {
    result.iterations = it + 1;
    transition.apply(result.scores, next);
    // Dangling mass is spread uniformly; plus the teleport term.
    value_t dangling_mass = 0.0;
    for (index_t d : dangling)
      dangling_mass += result.scores[static_cast<std::size_t>(d)];
    const value_t base =
        (1.0 - opt.damping) / static_cast<value_t>(n) +
        opt.damping * dangling_mass / static_cast<value_t>(n);
    value_t delta = 0.0;
    for (std::size_t i = 0; i < next.size(); ++i) {
      next[i] = base + opt.damping * next[i];
      delta += std::abs(next[i] - result.scores[i]);
    }
    result.scores.swap(next);
    if (delta <= opt.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

PageRankResult pagerank(const CsrMatrix& A, const PageRankOptions& opt) {
  const CsrMatrix P = transition_matrix(A);
  const LinearOperator op = LinearOperator::from_csr(P);
  return pagerank_with_operator(op, dangling_nodes(A), A.nrows(), opt);
}

}  // namespace spmvopt::solvers
