#include "solvers/stationary.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "solvers/blas1.hpp"

namespace spmvopt::solvers {

namespace {

std::vector<value_t> inverted_diagonal(const CsrMatrix& A) {
  if (A.nrows() != A.ncols())
    throw std::invalid_argument("stationary: matrix must be square");
  std::vector<value_t> inv(static_cast<std::size_t>(A.nrows()), 0.0);
  for (index_t i = 0; i < A.nrows(); ++i) {
    value_t d = 0.0;
    for (index_t k = A.rowptr()[i]; k < A.rowptr()[i + 1]; ++k)
      if (A.colind()[k] == i) d = A.values()[k];
    if (d == 0.0)
      throw std::invalid_argument("stationary: zero diagonal at row " +
                                  std::to_string(i));
    inv[static_cast<std::size_t>(i)] = 1.0 / d;
  }
  return inv;
}

void check_system(const CsrMatrix& A, std::size_t b, std::size_t x) {
  if (b != static_cast<std::size_t>(A.nrows()) || x != b)
    throw std::invalid_argument("stationary: vector size mismatch");
}

}  // namespace

SolveResult jacobi(const CsrMatrix& A, std::span<const value_t> b,
                   std::span<value_t> x, value_t omega,
                   const SolverOptions& opt) {
  check_system(A, b.size(), x.size());
  if (omega <= 0.0 || omega > 1.0)
    throw std::invalid_argument("jacobi: omega must be in (0, 1]");
  const std::vector<value_t> inv_d = inverted_diagonal(A);
  const std::size_t n = b.size();
  const double bnorm = nrm2(b);
  if (bnorm == 0.0) {
    fill(x, 0.0);
    return {true, 0, 0.0};
  }

  std::vector<value_t> r(n);
  SolveResult result;
  for (int it = 0; it < opt.max_iterations; ++it) {
    result.iterations = it + 1;
    A.multiply(x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    result.residual_norm = nrm2(r) / bnorm;
    if (result.residual_norm <= opt.rel_tolerance) {
      result.converged = true;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) x[i] += omega * inv_d[i] * r[i];
  }
  return result;
}

SolveResult gauss_seidel(const CsrMatrix& A, std::span<const value_t> b,
                         std::span<value_t> x, const SolverOptions& opt) {
  check_system(A, b.size(), x.size());
  const std::vector<value_t> inv_d = inverted_diagonal(A);
  const std::size_t n = b.size();
  const double bnorm = nrm2(b);
  if (bnorm == 0.0) {
    fill(x, 0.0);
    return {true, 0, 0.0};
  }

  std::vector<value_t> r(n);
  SolveResult result;
  for (int it = 0; it < opt.max_iterations; ++it) {
    result.iterations = it + 1;
    // One forward sweep, in place (uses updated x entries immediately).
    for (index_t i = 0; i < A.nrows(); ++i) {
      value_t sum = b[static_cast<std::size_t>(i)];
      for (index_t k = A.rowptr()[i]; k < A.rowptr()[i + 1]; ++k) {
        const index_t j = A.colind()[k];
        if (j != i) sum -= A.values()[k] * x[static_cast<std::size_t>(j)];
      }
      x[static_cast<std::size_t>(i)] = sum * inv_d[static_cast<std::size_t>(i)];
    }
    A.multiply(x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    result.residual_norm = nrm2(r) / bnorm;
    if (result.residual_norm <= opt.rel_tolerance) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

SolveResult chebyshev(const LinearOperator& A, std::span<const value_t> b,
                      std::span<value_t> x, double lambda_min,
                      double lambda_max, const SolverOptions& opt,
                      int check_every) {
  if (A.nrows() != A.ncols())
    throw std::invalid_argument("chebyshev: operator must be square");
  if (b.size() != static_cast<std::size_t>(A.nrows()) || x.size() != b.size())
    throw std::invalid_argument("chebyshev: vector size mismatch");
  if (!(0.0 < lambda_min && lambda_min < lambda_max))
    throw std::invalid_argument("chebyshev: need 0 < lambda_min < lambda_max");
  if (check_every < 1) throw std::invalid_argument("chebyshev: bad check_every");

  const std::size_t n = b.size();
  const double bnorm = nrm2(b);
  if (bnorm == 0.0) {
    fill(x, 0.0);
    return {true, 0, 0.0};
  }

  const double theta = 0.5 * (lambda_max + lambda_min);  // center
  const double delta = 0.5 * (lambda_max - lambda_min);  // half-width
  const double sigma1 = theta / delta;
  double rho = 1.0 / sigma1;

  std::vector<value_t> r(n), d(n), ad(n);
  A.apply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  for (std::size_t i = 0; i < n; ++i) d[i] = r[i] / theta;

  SolveResult result;
  for (int it = 0; it < opt.max_iterations; ++it) {
    result.iterations = it + 1;
    axpy(1.0, d, x);
    // r -= A d (the only SpMV; no inner products in the update).
    A.apply(d, ad);
    for (std::size_t i = 0; i < n; ++i) r[i] -= ad[i];

    const double rho_new = 1.0 / (2.0 * sigma1 - rho);
    const double c1 = rho_new * rho;
    const double c2 = 2.0 * rho_new / delta;
    for (std::size_t i = 0; i < n; ++i) d[i] = c1 * d[i] + c2 * r[i];
    rho = rho_new;

    if ((it + 1) % check_every == 0 || it + 1 == opt.max_iterations) {
      result.residual_norm = nrm2(r) / bnorm;
      if (result.residual_norm <= opt.rel_tolerance) {
        result.converged = true;
        return result;
      }
    }
  }
  result.residual_norm = nrm2(r) / bnorm;
  result.converged = result.residual_norm <= opt.rel_tolerance;
  return result;
}

}  // namespace spmvopt::solvers
