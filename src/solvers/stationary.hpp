// Stationary iterations: Jacobi, Gauss-Seidel, and Chebyshev acceleration.
//
// The smoothers every multigrid/preconditioner stack is built on, plus the
// Chebyshev iteration — a CG-like method that needs *no* inner products
// (attractive at scale), driven by the spectral bounds that lanczos_extreme
// estimates.  All of them are SpMV-per-iteration workloads.
#pragma once

#include <span>

#include "solvers/krylov.hpp"
#include "solvers/operator.hpp"
#include "sparse/csr.hpp"

namespace spmvopt::solvers {

/// Damped Jacobi: x += omega * D^{-1} (b - A x).  Requires a nonzero
/// diagonal.  Converges for diagonally dominant A when omega in (0, 1].
[[nodiscard]] SolveResult jacobi(const CsrMatrix& A, std::span<const value_t> b,
                                 std::span<value_t> x, value_t omega = 1.0,
                                 const SolverOptions& opt = {});

/// Forward Gauss-Seidel sweeps (serial by nature).
[[nodiscard]] SolveResult gauss_seidel(const CsrMatrix& A,
                                       std::span<const value_t> b,
                                       std::span<value_t> x,
                                       const SolverOptions& opt = {});

/// Chebyshev iteration for SPD A with spectrum inside [lambda_min,
/// lambda_max] (e.g. from lanczos_extreme, padded a few percent).  One SpMV
/// and zero reductions per iteration; the residual norm is only evaluated
/// every `check_every` iterations to preserve that property.
[[nodiscard]] SolveResult chebyshev(const LinearOperator& A,
                                    std::span<const value_t> b,
                                    std::span<value_t> x, double lambda_min,
                                    double lambda_max,
                                    const SolverOptions& opt = {},
                                    int check_every = 10);

}  // namespace spmvopt::solvers
