#include "solvers/operator.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "kernels/spmv.hpp"
#include "support/cpu_info.hpp"
#include "support/partition.hpp"

namespace spmvopt::solvers {

LinearOperator::LinearOperator(index_t nrows, index_t ncols, ApplyFn apply,
                               ApplyManyFn apply_many)
    : nrows_(nrows),
      ncols_(ncols),
      apply_(std::move(apply)),
      many_(std::move(apply_many)) {
  if (nrows < 0 || ncols < 0 || !apply_)
    throw std::invalid_argument("LinearOperator: bad arguments");
}

LinearOperator LinearOperator::from_csr(const CsrMatrix& A) {
  auto part = balanced_nnz_partition(A.rowptr(), A.nrows(), default_threads());
  return LinearOperator(
      A.nrows(), A.ncols(),
      [&A, part = std::move(part)](const value_t* x, value_t* y) {
        kernels::spmv_balanced(A, part, x, y);
      });
}

LinearOperator LinearOperator::from_optimized(
    const optimize::OptimizedSpmv& spmv) {
  return LinearOperator(
      spmv.nrows(), spmv.ncols(),
      [&spmv](const value_t* x, value_t* y) { spmv.run(x, y); },
      [&spmv](const value_t* X, value_t* Y, index_t nrhs) {
        spmv.run_many(X, Y, static_cast<int>(nrhs));
      });
}

void LinearOperator::apply(std::span<const value_t> x,
                           std::span<value_t> y) const {
  if (x.size() != static_cast<std::size_t>(ncols_) ||
      y.size() != static_cast<std::size_t>(nrows_))
    throw std::invalid_argument("LinearOperator::apply: size mismatch");
  apply_(x.data(), y.data());
}

void LinearOperator::apply(ConstVectorView x, VectorView y) const {
  if (x.count != ncols_ || y.count != nrows_)
    throw std::invalid_argument("LinearOperator::apply: size mismatch");
  if (x.dtype == Dtype::F64 && y.dtype == Dtype::F64) {
    apply_(static_cast<const value_t*>(x.data), static_cast<value_t*>(y.data));
    return;
  }
  std::vector<value_t> xd, yd;
  const value_t* xptr;
  if (x.dtype == Dtype::F32) {
    const float* xs = static_cast<const float*>(x.data);
    xd.assign(xs, xs + x.count);
    xptr = xd.data();
  } else {
    xptr = static_cast<const value_t*>(x.data);
  }
  value_t* yptr;
  if (y.dtype == Dtype::F32) {
    yd.resize(static_cast<std::size_t>(nrows_));
    yptr = yd.data();
  } else {
    yptr = static_cast<value_t*>(y.data);
  }
  apply_(xptr, yptr);
  if (y.dtype == Dtype::F32) {
    float* yo = static_cast<float*>(y.data);
    for (index_t i = 0; i < nrows_; ++i)
      yo[i] = static_cast<float>(yd[static_cast<std::size_t>(i)]);
  }
}

void LinearOperator::apply_many(const value_t* X, value_t* Y,
                                index_t nrhs) const noexcept {
  if (many_) {
    many_(X, Y, nrhs);
    return;
  }
  for (index_t r = 0; r < nrhs; ++r)
    apply_(X + static_cast<std::size_t>(r) * ncols_,
           Y + static_cast<std::size_t>(r) * nrows_);
}

void LinearOperator::apply_many(ConstMatrixView X, MatrixView Y) const {
  if (X.rows != Y.rows)
    throw std::invalid_argument(
        "LinearOperator::apply_many: right-hand-side count mismatch");
  if (X.cols != ncols_ || Y.cols != nrows_)
    throw std::invalid_argument(
        "LinearOperator::apply_many: batch extent mismatch");
  if (X.row_stride() < X.cols || Y.row_stride() < Y.cols)
    throw std::invalid_argument(
        "LinearOperator::apply_many: row stride below row extent");
  const index_t nrhs = X.rows;
  if (nrhs <= 0) return;
  if (X.dtype == Dtype::F64 && Y.dtype == Dtype::F64 &&
      X.row_stride() == X.cols && Y.row_stride() == Y.cols) {
    apply_many(static_cast<const value_t*>(X.data),
               static_cast<value_t*>(Y.data), nrhs);
    return;
  }
  std::vector<value_t> xb(static_cast<std::size_t>(ncols_) *
                          static_cast<std::size_t>(nrhs));
  std::vector<value_t> yb(static_cast<std::size_t>(nrows_) *
                          static_cast<std::size_t>(nrhs));
  for (index_t r = 0; r < nrhs; ++r) {
    value_t* dst = xb.data() + static_cast<std::size_t>(r) * ncols_;
    const std::size_t off =
        static_cast<std::size_t>(r) * static_cast<std::size_t>(X.row_stride());
    if (X.dtype == Dtype::F32) {
      const float* src = static_cast<const float*>(X.data) + off;
      for (index_t j = 0; j < ncols_; ++j)
        dst[j] = static_cast<value_t>(src[j]);
    } else {
      const value_t* src = static_cast<const value_t*>(X.data) + off;
      std::copy(src, src + ncols_, dst);
    }
  }
  apply_many(xb.data(), yb.data(), nrhs);
  for (index_t r = 0; r < nrhs; ++r) {
    const value_t* src = yb.data() + static_cast<std::size_t>(r) * nrows_;
    const std::size_t off =
        static_cast<std::size_t>(r) * static_cast<std::size_t>(Y.row_stride());
    if (Y.dtype == Dtype::F32) {
      float* dst = static_cast<float*>(Y.data) + off;
      for (index_t i = 0; i < nrows_; ++i)
        dst[i] = static_cast<float>(src[i]);
    } else {
      value_t* dst = static_cast<value_t*>(Y.data) + off;
      std::copy(src, src + nrows_, dst);
    }
  }
}

}  // namespace spmvopt::solvers
