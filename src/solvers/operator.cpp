#include "solvers/operator.hpp"

#include <stdexcept>

#include "kernels/spmv.hpp"
#include "support/cpu_info.hpp"
#include "support/partition.hpp"

namespace spmvopt::solvers {

LinearOperator::LinearOperator(index_t nrows, index_t ncols, ApplyFn apply)
    : nrows_(nrows), ncols_(ncols), apply_(std::move(apply)) {
  if (nrows < 0 || ncols < 0 || !apply_)
    throw std::invalid_argument("LinearOperator: bad arguments");
}

LinearOperator LinearOperator::from_csr(const CsrMatrix& A) {
  auto part = balanced_nnz_partition(A.rowptr(), A.nrows(), default_threads());
  return LinearOperator(
      A.nrows(), A.ncols(),
      [&A, part = std::move(part)](const value_t* x, value_t* y) {
        kernels::spmv_balanced(A, part, x, y);
      });
}

LinearOperator LinearOperator::from_optimized(
    const optimize::OptimizedSpmv& spmv) {
  return LinearOperator(spmv.nrows(), spmv.ncols(),
                        [&spmv](const value_t* x, value_t* y) {
                          spmv.run(x, y);
                        });
}

void LinearOperator::apply(std::span<const value_t> x,
                           std::span<value_t> y) const {
  if (x.size() != static_cast<std::size_t>(ncols_) ||
      y.size() != static_cast<std::size_t>(nrows_))
    throw std::invalid_argument("LinearOperator::apply: size mismatch");
  apply_(x.data(), y.data());
}

}  // namespace spmvopt::solvers
