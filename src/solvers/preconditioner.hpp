// Preconditioners and preconditioned CG.
//
// §IV-D: "it is quite common in real-life applications to run preconditioned
// versions of these methods to accelerate convergence.  In this case, the
// number of iterations may be significantly smaller ... thus limiting the
// online overhead that can be tolerated."  These preconditioners make that
// scenario concrete: PCG converges in far fewer SpMVs, which is exactly the
// regime where only the lightest optimizers of Table V pay off.
#pragma once

#include <memory>
#include <span>

#include "solvers/krylov.hpp"
#include "sparse/csr.hpp"

namespace spmvopt::solvers {

/// z = M^{-1} r for some approximation M of A.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(std::span<const value_t> r, std::span<value_t> z) const = 0;
  [[nodiscard]] virtual index_t size() const noexcept = 0;
};

/// M = I (turns PCG back into plain CG; useful as a baseline).
class IdentityPreconditioner final : public Preconditioner {
 public:
  explicit IdentityPreconditioner(index_t n);
  void apply(std::span<const value_t> r, std::span<value_t> z) const override;
  [[nodiscard]] index_t size() const noexcept override { return n_; }

 private:
  index_t n_;
};

/// M = diag(A).  Throws std::invalid_argument when A has a zero or missing
/// diagonal entry.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& A);
  void apply(std::span<const value_t> r, std::span<value_t> z) const override;
  [[nodiscard]] index_t size() const noexcept override {
    return static_cast<index_t>(inv_diag_.size());
  }

 private:
  std::vector<value_t> inv_diag_;
};

/// Symmetric successive over-relaxation:
///   M = (D/ω + L) · (ω/(2-ω) · D)^{-1} · (D/ω + U)
/// applied as a forward then a backward triangular sweep over A (kept by
/// reference — the caller must keep the matrix alive).  ω in (0, 2).
class SsorPreconditioner final : public Preconditioner {
 public:
  explicit SsorPreconditioner(const CsrMatrix& A, value_t omega = 1.0);
  void apply(std::span<const value_t> r, std::span<value_t> z) const override;
  [[nodiscard]] index_t size() const noexcept override { return a_->nrows(); }

 private:
  const CsrMatrix* a_;
  std::vector<value_t> diag_;
  value_t omega_;
};

/// Preconditioned Conjugate Gradient — `A` SPD, `M` SPD.
[[nodiscard]] SolveResult pcg(const LinearOperator& A, const Preconditioner& M,
                              std::span<const value_t> b, std::span<value_t> x,
                              const SolverOptions& opt = {});

}  // namespace spmvopt::solvers
