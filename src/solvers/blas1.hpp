// Dense level-1 helpers the Krylov solvers are built from.
#pragma once

#include <span>

#include "support/types.hpp"

namespace spmvopt::solvers {

[[nodiscard]] value_t dot(std::span<const value_t> a, std::span<const value_t> b);
[[nodiscard]] value_t nrm2(std::span<const value_t> a);
/// y += alpha * x
void axpy(value_t alpha, std::span<const value_t> x, std::span<value_t> y);
/// y = x + beta * y   (the CG/BiCGSTAB "xpby" update)
void xpby(std::span<const value_t> x, value_t beta, std::span<value_t> y);
void scal(value_t alpha, std::span<value_t> x);
void copy(std::span<const value_t> src, std::span<value_t> dst);
void fill(std::span<value_t> x, value_t v);

}  // namespace spmvopt::solvers
