#include "solvers/krylov.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "solvers/blas1.hpp"

namespace spmvopt::solvers {

namespace {

void require_square_system(const LinearOperator& A, std::size_t b, std::size_t x) {
  if (A.nrows() != A.ncols())
    throw std::invalid_argument("solver: operator must be square");
  if (b != static_cast<std::size_t>(A.nrows()) || x != b)
    throw std::invalid_argument("solver: vector size mismatch");
}

/// Per-iteration cancellation poll: None while live, else which way the
/// token tripped.
SolveAbort poll_cancel(const robust::CancelToken* tok) noexcept {
  if (tok == nullptr || !tok->cancelled()) return SolveAbort::None;
  return tok->why() == robust::CancelToken::Why::Cancelled
             ? SolveAbort::Cancelled
             : SolveAbort::DeadlineExceeded;
}

}  // namespace

SolveResult cg(const LinearOperator& A, std::span<const value_t> b,
               std::span<value_t> x, const SolverOptions& opt) {
  require_square_system(A, b.size(), x.size());
  const std::size_t n = b.size();
  std::vector<value_t> r(n), p(n), Ap(n);

  const double bnorm = nrm2(b);
  if (bnorm == 0.0) {
    fill(x, 0.0);
    return {true, 0, 0.0};
  }

  // r = b - A x
  A.apply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  copy(r, p);
  double rr = dot(r, r);

  SolveResult result;
  for (int it = 0; it < opt.max_iterations; ++it) {
    if ((result.aborted = poll_cancel(opt.cancel)) != SolveAbort::None)
      return result;  // x = the last completed iterate
    result.iterations = it + 1;
    // Sizes were validated once at entry; the inner loop takes the raw
    // noexcept path (one engine dispatch per matvec when A is engine-bound).
    A.apply(p.data(), Ap.data());
    const double pAp = dot(p, Ap);
    if (pAp <= 0.0) break;  // not SPD (or breakdown)
    const double alpha = rr / pAp;
    axpy(alpha, p, x);
    axpy(-alpha, Ap, r);
    const double rr_new = dot(r, r);
    result.residual_norm = std::sqrt(rr_new) / bnorm;
    if (result.residual_norm <= opt.rel_tolerance) {
      result.converged = true;
      return result;
    }
    xpby(r, rr_new / rr, p);  // p = r + beta p
    rr = rr_new;
  }
  result.residual_norm = std::sqrt(rr) / bnorm;
  return result;
}

std::vector<SolveResult> block_cg(const LinearOperator& A,
                                  std::span<const value_t> B,
                                  std::span<value_t> X, int nrhs,
                                  const SolverOptions& opt) {
  if (A.nrows() != A.ncols())
    throw std::invalid_argument("solver: operator must be square");
  if (nrhs <= 0)
    throw std::invalid_argument("block_cg: nrhs must be positive");
  const std::size_t n = static_cast<std::size_t>(A.nrows());
  if (B.size() != n * static_cast<std::size_t>(nrhs) || X.size() != B.size())
    throw std::invalid_argument("solver: vector size mismatch");

  const std::size_t ns = static_cast<std::size_t>(nrhs);
  std::vector<value_t> R(n * ns), P(n * ns), AP(n * ns);
  std::vector<double> bnorm(ns), rr(ns);
  std::vector<SolveResult> results(ns);
  // live := still iterating.  Frozen systems keep p = 0, so the shared batch
  // matvec computes A*0 for them and every per-system update is a no-op —
  // one apply_many() per iteration regardless of how many systems remain.
  std::vector<char> live(ns, 1);

  const auto sys = [n](std::vector<value_t>& v, std::size_t r) {
    return std::span<value_t>(v.data() + r * n, n);
  };

  // R = B - A X (one batched matvec for every system's initial residual).
  A.apply_many(X.data(), R.data(), static_cast<index_t>(ns));
  for (std::size_t r = 0; r < ns; ++r) {
    const std::span<const value_t> br = B.subspan(r * n, n);
    bnorm[r] = nrm2(br);
    if (bnorm[r] == 0.0) {
      fill(X.subspan(r * n, n), 0.0);
      fill(sys(R, r), 0.0);
      results[r].converged = true;
      live[r] = 0;
    } else {
      const std::span<value_t> rr_span = sys(R, r);
      for (std::size_t i = 0; i < n; ++i) rr_span[i] = br[i] - rr_span[i];
    }
    copy(sys(R, r), sys(P, r));  // frozen systems copy a zero residual
    rr[r] = dot(sys(R, r), sys(R, r));
  }

  std::size_t remaining = 0;
  for (char l : live) remaining += static_cast<std::size_t>(l);

  for (int it = 0; it < opt.max_iterations && remaining > 0; ++it) {
    const SolveAbort abort = poll_cancel(opt.cancel);
    if (abort != SolveAbort::None) {
      for (std::size_t r = 0; r < ns; ++r)
        if (live[r]) results[r].aborted = abort;
      return results;  // each x_r = its last completed iterate
    }
    A.apply_many(P.data(), AP.data(), static_cast<index_t>(ns));
    for (std::size_t r = 0; r < ns; ++r) {
      if (!live[r]) continue;
      results[r].iterations = it + 1;
      const std::span<value_t> p = sys(P, r);
      const std::span<value_t> ap = sys(AP, r);
      const double pAp = dot(p, ap);
      if (pAp <= 0.0) {  // not SPD (or breakdown): freeze at current iterate
        results[r].residual_norm = std::sqrt(rr[r]) / bnorm[r];
        fill(p, 0.0);
        live[r] = 0;
        --remaining;
        continue;
      }
      const double alpha = rr[r] / pAp;
      axpy(alpha, p, X.subspan(r * n, n));
      axpy(-alpha, ap, sys(R, r));
      const double rr_new = dot(sys(R, r), sys(R, r));
      results[r].residual_norm = std::sqrt(rr_new) / bnorm[r];
      if (results[r].residual_norm <= opt.rel_tolerance) {
        results[r].converged = true;
        fill(p, 0.0);
        live[r] = 0;
        --remaining;
        continue;
      }
      xpby(sys(R, r), rr_new / rr[r], p);  // p = r + beta p
      rr[r] = rr_new;
    }
  }
  for (std::size_t r = 0; r < ns; ++r)
    if (live[r]) results[r].residual_norm = std::sqrt(rr[r]) / bnorm[r];
  return results;
}

SolveResult bicgstab(const LinearOperator& A, std::span<const value_t> b,
                     std::span<value_t> x, const SolverOptions& opt) {
  require_square_system(A, b.size(), x.size());
  const std::size_t n = b.size();
  std::vector<value_t> r(n), r0(n), p(n), v(n), s(n), t(n);

  const double bnorm = nrm2(b);
  if (bnorm == 0.0) {
    fill(x, 0.0);
    return {true, 0, 0.0};
  }

  A.apply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  copy(r, r0);
  copy(r, p);
  double rho = dot(r0, r);

  SolveResult result;
  for (int it = 0; it < opt.max_iterations; ++it) {
    if ((result.aborted = poll_cancel(opt.cancel)) != SolveAbort::None)
      return result;  // x = the last completed iterate
    result.iterations = it + 1;
    if (rho == 0.0) break;
    A.apply(p.data(), v.data());
    const double alpha_den = dot(r0, v);
    if (alpha_den == 0.0) break;
    const double alpha = rho / alpha_den;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    const double snorm = nrm2(s);
    if (snorm / bnorm <= opt.rel_tolerance) {
      axpy(alpha, p, x);
      result.converged = true;
      result.residual_norm = snorm / bnorm;
      return result;
    }
    A.apply(s.data(), t.data());
    const double tt = dot(t, t);
    if (tt == 0.0) break;
    const double omega = dot(t, s) / tt;
    if (omega == 0.0) break;
    axpy(alpha, p, x);
    axpy(omega, s, x);
    for (std::size_t i = 0; i < n; ++i) r[i] = s[i] - omega * t[i];
    result.residual_norm = nrm2(r) / bnorm;
    if (result.residual_norm <= opt.rel_tolerance) {
      result.converged = true;
      return result;
    }
    const double rho_new = dot(r0, r);
    const double beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    for (std::size_t i = 0; i < n; ++i)
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
  }
  return result;
}

SolveResult gmres(const LinearOperator& A, std::span<const value_t> b,
                  std::span<value_t> x, int restart, const SolverOptions& opt) {
  require_square_system(A, b.size(), x.size());
  if (restart < 1) throw std::invalid_argument("gmres: restart < 1");
  const std::size_t n = b.size();
  const int m = restart;

  const double bnorm = nrm2(b);
  if (bnorm == 0.0) {
    fill(x, 0.0);
    return {true, 0, 0.0};
  }

  // Krylov basis V (m+1 vectors) and Hessenberg H ((m+1) x m, column-major
  // per column j of size j+2), plus Givens rotations.
  std::vector<std::vector<value_t>> V(static_cast<std::size_t>(m) + 1,
                                      std::vector<value_t>(n));
  std::vector<std::vector<value_t>> H(static_cast<std::size_t>(m),
                                      std::vector<value_t>(static_cast<std::size_t>(m) + 1, 0.0));
  std::vector<value_t> cs(static_cast<std::size_t>(m), 0.0);
  std::vector<value_t> sn(static_cast<std::size_t>(m), 0.0);
  std::vector<value_t> g(static_cast<std::size_t>(m) + 1, 0.0);
  std::vector<value_t> w(n);

  SolveResult result;
  int total_iters = 0;

  while (total_iters < opt.max_iterations) {
    // r = b - A x;  V[0] = r / ||r||
    A.apply(x, w);
    for (std::size_t i = 0; i < n; ++i) V[0][i] = b[i] - w[i];
    double beta = nrm2(V[0]);
    result.residual_norm = beta / bnorm;
    if (result.residual_norm <= opt.rel_tolerance) {
      result.converged = true;
      result.iterations = total_iters;
      return result;
    }
    scal(1.0 / beta, V[0]);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int j = 0;
    for (; j < m && total_iters < opt.max_iterations; ++j, ++total_iters) {
      if ((result.aborted = poll_cancel(opt.cancel)) != SolveAbort::None)
        break;  // fall through to the update: x absorbs the j columns built
      // Arnoldi with modified Gram-Schmidt.
      A.apply(V[static_cast<std::size_t>(j)], w);
      for (int i = 0; i <= j; ++i) {
        const double h = dot(w, V[static_cast<std::size_t>(i)]);
        H[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = h;
        axpy(-h, V[static_cast<std::size_t>(i)], w);
      }
      const double hnext = nrm2(w);
      H[static_cast<std::size_t>(j)][static_cast<std::size_t>(j) + 1] = hnext;
      if (hnext != 0.0) {
        copy(w, V[static_cast<std::size_t>(j) + 1]);
        scal(1.0 / hnext, V[static_cast<std::size_t>(j) + 1]);
      }

      // Apply previous Givens rotations to the new column.
      auto& hj = H[static_cast<std::size_t>(j)];
      for (int i = 0; i < j; ++i) {
        const double tmp = cs[static_cast<std::size_t>(i)] * hj[static_cast<std::size_t>(i)] +
                           sn[static_cast<std::size_t>(i)] * hj[static_cast<std::size_t>(i) + 1];
        hj[static_cast<std::size_t>(i) + 1] =
            -sn[static_cast<std::size_t>(i)] * hj[static_cast<std::size_t>(i)] +
            cs[static_cast<std::size_t>(i)] * hj[static_cast<std::size_t>(i) + 1];
        hj[static_cast<std::size_t>(i)] = tmp;
      }
      // New rotation annihilating H[j+1][j].
      const double denom = std::hypot(hj[static_cast<std::size_t>(j)],
                                      hj[static_cast<std::size_t>(j) + 1]);
      if (denom == 0.0) {
        cs[static_cast<std::size_t>(j)] = 1.0;
        sn[static_cast<std::size_t>(j)] = 0.0;
      } else {
        cs[static_cast<std::size_t>(j)] = hj[static_cast<std::size_t>(j)] / denom;
        sn[static_cast<std::size_t>(j)] = hj[static_cast<std::size_t>(j) + 1] / denom;
      }
      hj[static_cast<std::size_t>(j)] = denom;
      hj[static_cast<std::size_t>(j) + 1] = 0.0;
      const double gtmp = cs[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j) + 1] =
          -sn[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j)] = gtmp;

      result.residual_norm =
          std::abs(g[static_cast<std::size_t>(j) + 1]) / bnorm;
      if (result.residual_norm <= opt.rel_tolerance) {
        ++j;
        ++total_iters;
        break;
      }
    }

    // Solve the triangular system H y = g and update x.
    std::vector<value_t> yv(static_cast<std::size_t>(j), 0.0);
    for (int i = j - 1; i >= 0; --i) {
      double s = g[static_cast<std::size_t>(i)];
      for (int k = i + 1; k < j; ++k)
        s -= H[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] *
             yv[static_cast<std::size_t>(k)];
      yv[static_cast<std::size_t>(i)] =
          s / H[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
    }
    for (int i = 0; i < j; ++i)
      axpy(yv[static_cast<std::size_t>(i)], V[static_cast<std::size_t>(i)], x);

    if (result.residual_norm <= opt.rel_tolerance) {
      result.converged = true;
      result.iterations = total_iters;
      return result;
    }
    if (result.aborted != SolveAbort::None) {
      result.iterations = total_iters;
      return result;
    }
  }
  result.iterations = total_iters;
  return result;
}

}  // namespace spmvopt::solvers
