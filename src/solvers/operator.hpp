// Linear-operator abstraction: lets the iterative solvers (the §IV-D context
// that motivates the lightweight-optimizer design) run on either a plain CSR
// matrix or an OptimizedSpmv without caring which.
#pragma once

#include <functional>
#include <span>

#include "optimize/optimized_spmv.hpp"
#include "sparse/csr.hpp"
#include "support/dtype.hpp"

namespace spmvopt::solvers {

class LinearOperator {
 public:
  using ApplyFn = std::function<void(const value_t*, value_t*)>;
  /// Batched matvec: X/Y are `nrhs` vector-major double vectors (vector r at
  /// X + r*ncols — the OptimizedSpmv::run_many layout).
  using ApplyManyFn =
      std::function<void(const value_t*, value_t*, index_t nrhs)>;

  /// The callable must not throw — the raw apply() below is the noexcept
  /// hot path of the DESIGN.md §8 run convention.  `apply_many` is optional;
  /// when absent, apply_many() falls back to nrhs single applies.
  LinearOperator(index_t nrows, index_t ncols, ApplyFn apply,
                 ApplyManyFn apply_many = nullptr);

  /// Views `A` (caller keeps it alive).
  static LinearOperator from_csr(const CsrMatrix& A);
  /// Views `spmv` (caller keeps it alive).  When `spmv` is engine-bound,
  /// every solver matvec runs on the persistent team — this is how CG /
  /// BiCGSTAB sweeps route through the engine.
  static LinearOperator from_optimized(const optimize::OptimizedSpmv& spmv);

  [[nodiscard]] index_t nrows() const noexcept { return nrows_; }
  [[nodiscard]] index_t ncols() const noexcept { return ncols_; }

  /// y = A * x.  Hot path: unchecked, noexcept (solver inner loops validate
  /// sizes once at entry, not per iteration).
  void apply(const value_t* x, value_t* y) const noexcept { apply_(x, y); }

  /// Checked overload.
  void apply(std::span<const value_t> x, std::span<value_t> y) const;

  /// Typed entry (DESIGN.md §8): f32 views convert at the boundary.
  void apply(ConstVectorView x, VectorView y) const;

  /// Y = A * X for `nrhs` vector-major right-hand sides.  Routes through the
  /// batched callable when the operator has one (from_optimized wires it to
  /// OptimizedSpmv::run_many, so engine-bound operators hit the fused
  /// register-blocked SpMM, DESIGN.md §13); otherwise falls back to `nrhs`
  /// single applies.
  void apply_many(const value_t* X, value_t* Y, index_t nrhs) const noexcept;

  /// Typed batched entry: one right-hand side per matrix row.
  void apply_many(ConstMatrixView X, MatrixView Y) const;

  /// True when batched applies are fused rather than looped.
  [[nodiscard]] bool has_apply_many() const noexcept {
    return static_cast<bool>(many_);
  }

 private:
  index_t nrows_;
  index_t ncols_;
  ApplyFn apply_;
  ApplyManyFn many_;
};

}  // namespace spmvopt::solvers
