// Linear-operator abstraction: lets the iterative solvers (the §IV-D context
// that motivates the lightweight-optimizer design) run on either a plain CSR
// matrix or an OptimizedSpmv without caring which.
#pragma once

#include <functional>
#include <span>

#include "optimize/optimized_spmv.hpp"
#include "sparse/csr.hpp"

namespace spmvopt::solvers {

class LinearOperator {
 public:
  using ApplyFn = std::function<void(const value_t*, value_t*)>;

  LinearOperator(index_t nrows, index_t ncols, ApplyFn apply);

  /// Views `A` (caller keeps it alive).
  static LinearOperator from_csr(const CsrMatrix& A);
  /// Views `spmv` (caller keeps it alive).
  static LinearOperator from_optimized(const optimize::OptimizedSpmv& spmv);

  [[nodiscard]] index_t nrows() const noexcept { return nrows_; }
  [[nodiscard]] index_t ncols() const noexcept { return ncols_; }

  /// y = A * x (checked sizes).
  void apply(std::span<const value_t> x, std::span<value_t> y) const;

 private:
  index_t nrows_;
  index_t ncols_;
  ApplyFn apply_;
};

}  // namespace spmvopt::solvers
