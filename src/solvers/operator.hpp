// Linear-operator abstraction: lets the iterative solvers (the §IV-D context
// that motivates the lightweight-optimizer design) run on either a plain CSR
// matrix or an OptimizedSpmv without caring which.
#pragma once

#include <functional>
#include <span>

#include "optimize/optimized_spmv.hpp"
#include "sparse/csr.hpp"

namespace spmvopt::solvers {

class LinearOperator {
 public:
  using ApplyFn = std::function<void(const value_t*, value_t*)>;

  /// The callable must not throw — the raw apply() below is the noexcept
  /// hot path of the DESIGN.md §8 run convention.
  LinearOperator(index_t nrows, index_t ncols, ApplyFn apply);

  /// Views `A` (caller keeps it alive).
  static LinearOperator from_csr(const CsrMatrix& A);
  /// Views `spmv` (caller keeps it alive).  When `spmv` is engine-bound,
  /// every solver matvec runs on the persistent team — this is how CG /
  /// BiCGSTAB sweeps route through the engine.
  static LinearOperator from_optimized(const optimize::OptimizedSpmv& spmv);

  [[nodiscard]] index_t nrows() const noexcept { return nrows_; }
  [[nodiscard]] index_t ncols() const noexcept { return ncols_; }

  /// y = A * x.  Hot path: unchecked, noexcept (solver inner loops validate
  /// sizes once at entry, not per iteration).
  void apply(const value_t* x, value_t* y) const noexcept { apply_(x, y); }

  /// Checked overload.
  void apply(std::span<const value_t> x, std::span<value_t> y) const;

 private:
  index_t nrows_;
  index_t ncols_;
  ApplyFn apply_;
};

}  // namespace spmvopt::solvers
