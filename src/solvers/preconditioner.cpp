#include "solvers/preconditioner.hpp"

#include <cmath>
#include <stdexcept>

#include "solvers/blas1.hpp"

namespace spmvopt::solvers {

namespace {

std::vector<value_t> extract_diagonal(const CsrMatrix& A) {
  if (A.nrows() != A.ncols())
    throw std::invalid_argument("preconditioner: matrix must be square");
  std::vector<value_t> diag(static_cast<std::size_t>(A.nrows()), 0.0);
  for (index_t i = 0; i < A.nrows(); ++i)
    for (index_t j = A.rowptr()[i]; j < A.rowptr()[i + 1]; ++j)
      if (A.colind()[j] == i) diag[static_cast<std::size_t>(i)] = A.values()[j];
  for (std::size_t i = 0; i < diag.size(); ++i)
    if (diag[i] == 0.0)
      throw std::invalid_argument(
          "preconditioner: zero/missing diagonal at row " + std::to_string(i));
  return diag;
}

void require_size(index_t n, std::span<const value_t> r,
                  std::span<value_t> z) {
  if (r.size() != static_cast<std::size_t>(n) || z.size() != r.size())
    throw std::invalid_argument("preconditioner: size mismatch");
}

}  // namespace

IdentityPreconditioner::IdentityPreconditioner(index_t n) : n_(n) {
  if (n < 0) throw std::invalid_argument("IdentityPreconditioner: n < 0");
}

void IdentityPreconditioner::apply(std::span<const value_t> r,
                                   std::span<value_t> z) const {
  require_size(n_, r, z);
  copy(r, z);
}

JacobiPreconditioner::JacobiPreconditioner(const CsrMatrix& A) {
  const std::vector<value_t> diag = extract_diagonal(A);
  inv_diag_.resize(diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) inv_diag_[i] = 1.0 / diag[i];
}

void JacobiPreconditioner::apply(std::span<const value_t> r,
                                 std::span<value_t> z) const {
  require_size(size(), r, z);
  for (std::size_t i = 0; i < inv_diag_.size(); ++i) z[i] = r[i] * inv_diag_[i];
}

SsorPreconditioner::SsorPreconditioner(const CsrMatrix& A, value_t omega)
    : a_(&A), diag_(extract_diagonal(A)), omega_(omega) {
  if (omega <= 0.0 || omega >= 2.0)
    throw std::invalid_argument("SsorPreconditioner: omega must be in (0, 2)");
}

void SsorPreconditioner::apply(std::span<const value_t> r,
                               std::span<value_t> z) const {
  require_size(size(), r, z);
  const CsrMatrix& A = *a_;
  const index_t n = A.nrows();
  const value_t w = omega_;

  // Forward sweep: (D/ω + L) y = r, columns are sorted so j < i is a prefix.
  for (index_t i = 0; i < n; ++i) {
    value_t sum = r[static_cast<std::size_t>(i)];
    for (index_t k = A.rowptr()[i]; k < A.rowptr()[i + 1]; ++k) {
      const index_t j = A.colind()[k];
      if (j >= i) break;
      sum -= A.values()[k] * z[static_cast<std::size_t>(j)];
    }
    z[static_cast<std::size_t>(i)] =
        sum * w / diag_[static_cast<std::size_t>(i)];
  }
  // Scale by the middle factor ((2-ω)/ω · D).
  for (index_t i = 0; i < n; ++i)
    z[static_cast<std::size_t>(i)] *=
        (2.0 - w) / w * diag_[static_cast<std::size_t>(i)];
  // Backward sweep: (D/ω + U) z = y.
  for (index_t i = n - 1; i >= 0; --i) {
    value_t sum = z[static_cast<std::size_t>(i)];
    for (index_t k = A.rowptr()[i + 1] - 1; k >= A.rowptr()[i]; --k) {
      const index_t j = A.colind()[k];
      if (j <= i) break;
      sum -= A.values()[k] * z[static_cast<std::size_t>(j)];
    }
    z[static_cast<std::size_t>(i)] =
        sum * w / diag_[static_cast<std::size_t>(i)];
  }
}

SolveResult pcg(const LinearOperator& A, const Preconditioner& M,
                std::span<const value_t> b, std::span<value_t> x,
                const SolverOptions& opt) {
  if (A.nrows() != A.ncols())
    throw std::invalid_argument("pcg: operator must be square");
  if (M.size() != A.nrows())
    throw std::invalid_argument("pcg: preconditioner size mismatch");
  if (b.size() != static_cast<std::size_t>(A.nrows()) || x.size() != b.size())
    throw std::invalid_argument("pcg: vector size mismatch");

  const std::size_t n = b.size();
  std::vector<value_t> r(n), z(n), p(n), Ap(n);
  const double bnorm = nrm2(b);
  if (bnorm == 0.0) {
    fill(x, 0.0);
    return {true, 0, 0.0};
  }

  A.apply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  M.apply(r, z);
  copy(z, p);
  double rz = dot(r, z);

  SolveResult result;
  for (int it = 0; it < opt.max_iterations; ++it) {
    result.iterations = it + 1;
    A.apply(p, Ap);
    const double pAp = dot(p, Ap);
    if (pAp <= 0.0) break;
    const double alpha = rz / pAp;
    axpy(alpha, p, x);
    axpy(-alpha, Ap, r);
    result.residual_norm = nrm2(r) / bnorm;
    if (result.residual_norm <= opt.rel_tolerance) {
      result.converged = true;
      return result;
    }
    M.apply(r, z);
    const double rz_new = dot(r, z);
    xpby(z, rz_new / rz, p);
    rz = rz_new;
  }
  return result;
}

}  // namespace spmvopt::solvers
