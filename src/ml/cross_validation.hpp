// Leave-One-Out cross-validation (§IV-B): for k samples, k experiments each
// training on k-1 and testing on the held-out one; the reported score is the
// average over the k experiments.
#pragma once

#include "ml/decision_tree.hpp"

namespace spmvopt::ml {

struct CvScores {
  double exact = 0.0;    ///< Exact Match Ratio
  double partial = 0.0;  ///< Partial Match Ratio
};

/// LOO CV of a DecisionTree on `ds`.  O(k · fit cost); fine for the
/// 210-sample training pools this project uses.
[[nodiscard]] CvScores leave_one_out(const Dataset& ds,
                                     const TreeParams& params = {});

/// k-fold CV (contiguous folds, no shuffling — callers pre-shuffle if their
/// data is ordered). `folds` must be in [2, ds.size()].
[[nodiscard]] CvScores k_fold(const Dataset& ds, int folds,
                              const TreeParams& params = {});

}  // namespace spmvopt::ml
