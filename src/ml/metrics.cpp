#include "ml/metrics.hpp"

#include <stdexcept>

namespace spmvopt::ml {

bool exact_match(const std::vector<int>& predicted,
                 const std::vector<int>& actual) {
  if (predicted.size() != actual.size())
    throw std::invalid_argument("exact_match: arity mismatch");
  return predicted == actual;
}

bool partial_match(const std::vector<int>& predicted,
                   const std::vector<int>& actual) {
  if (predicted.size() != actual.size())
    throw std::invalid_argument("partial_match: arity mismatch");
  bool any_true = false;
  for (std::size_t l = 0; l < actual.size(); ++l) {
    if (actual[l] == 1) {
      any_true = true;
      if (predicted[l] == 1) return true;
    }
  }
  if (!any_true) {
    // Empty label set (dummy class): correct iff the prediction is empty too.
    for (int v : predicted)
      if (v == 1) return false;
    return true;
  }
  return false;
}

namespace {
double ratio(const std::vector<std::vector<int>>& predicted,
             const std::vector<std::vector<int>>& actual,
             bool (*match)(const std::vector<int>&, const std::vector<int>&)) {
  if (predicted.size() != actual.size() || predicted.empty())
    throw std::invalid_argument("match ratio: batch mismatch or empty");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i)
    if (match(predicted[i], actual[i])) ++hits;
  return static_cast<double>(hits) / static_cast<double>(predicted.size());
}
}  // namespace

double exact_match_ratio(const std::vector<std::vector<int>>& predicted,
                         const std::vector<std::vector<int>>& actual) {
  return ratio(predicted, actual, &exact_match);
}

double partial_match_ratio(const std::vector<std::vector<int>>& predicted,
                           const std::vector<std::vector<int>>& actual) {
  return ratio(predicted, actual, &partial_match);
}

}  // namespace spmvopt::ml
