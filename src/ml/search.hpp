// Hyperparameter grid search and exhaustive feature-subset search.
//
// * Grid search tunes the profile-guided classifier's thresholds T_ML and
//   T_IMB (Fig. 4 caption: "optimized through exhaustive grid search",
//   maximizing the average performance gain of the selected optimizations).
// * Feature-subset search mirrors §IV-B: "the selection of features for the
//   classifiers has been a result of exhaustive search."
#pragma once

#include <functional>
#include <vector>

#include "ml/cross_validation.hpp"

namespace spmvopt::ml {

struct GridPoint {
  std::vector<double> values;  ///< one value per axis
  double score = 0.0;
};

/// Exhaustive search over the Cartesian product of `axes`; returns the point
/// maximizing `score`.  Throws when any axis is empty.
[[nodiscard]] GridPoint grid_search(
    const std::vector<std::vector<double>>& axes,
    const std::function<double(const std::vector<double>&)>& score);

struct FeatureSubsetResult {
  std::vector<int> features;  ///< column indices into the full dataset
  CvScores scores;
};

/// Exhaustive search over all subsets of `candidates` with size in
/// [1, max_size], scored by LOO exact-match on the projected dataset.
/// Cost: sum_k C(|candidates|, k) LOO runs — keep |candidates| modest.
[[nodiscard]] FeatureSubsetResult best_feature_subset(
    const Dataset& ds, const std::vector<int>& candidates, int max_size,
    const TreeParams& params = {});

}  // namespace spmvopt::ml
