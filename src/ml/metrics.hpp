// Multilabel accuracy metrics (§IV-B).
//
//   Exact Match Ratio   — prediction fully equals the label set.
//   Partial Match Ratio — prediction shares at least one set class with the
//     labels (the paper tolerates partially-correct predictions because at
//     least one applied optimization then addresses a real bottleneck).
//     When both sets are empty (the dummy "not worth optimizing" class) the
//     prediction counts as correct.
#pragma once

#include <vector>

namespace spmvopt::ml {

[[nodiscard]] bool exact_match(const std::vector<int>& predicted,
                               const std::vector<int>& actual);
[[nodiscard]] bool partial_match(const std::vector<int>& predicted,
                                 const std::vector<int>& actual);

/// Fractions over a batch; both vectors of rows must be equally sized.
[[nodiscard]] double exact_match_ratio(
    const std::vector<std::vector<int>>& predicted,
    const std::vector<std::vector<int>>& actual);
[[nodiscard]] double partial_match_ratio(
    const std::vector<std::vector<int>>& predicted,
    const std::vector<std::vector<int>>& actual);

}  // namespace spmvopt::ml
