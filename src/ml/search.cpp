#include "ml/search.hpp"

#include <stdexcept>

namespace spmvopt::ml {

GridPoint grid_search(
    const std::vector<std::vector<double>>& axes,
    const std::function<double(const std::vector<double>&)>& score) {
  if (axes.empty()) throw std::invalid_argument("grid_search: no axes");
  for (const auto& a : axes)
    if (a.empty()) throw std::invalid_argument("grid_search: empty axis");

  GridPoint best;
  best.score = -1e300;
  std::vector<std::size_t> cursor(axes.size(), 0);
  std::vector<double> point(axes.size());
  while (true) {
    for (std::size_t i = 0; i < axes.size(); ++i) point[i] = axes[i][cursor[i]];
    const double s = score(point);
    if (s > best.score) {
      best.score = s;
      best.values = point;
    }
    // Odometer increment.
    std::size_t i = 0;
    for (; i < axes.size(); ++i) {
      if (++cursor[i] < axes[i].size()) break;
      cursor[i] = 0;
    }
    if (i == axes.size()) break;
  }
  return best;
}

namespace {

Dataset project_columns(const Dataset& ds, const std::vector<int>& cols) {
  Dataset out;
  out.X.reserve(ds.size());
  out.Y = ds.Y;
  for (const auto& row : ds.X) {
    std::vector<double> r;
    r.reserve(cols.size());
    for (int c : cols) r.push_back(row[static_cast<std::size_t>(c)]);
    out.X.push_back(std::move(r));
  }
  return out;
}

}  // namespace

FeatureSubsetResult best_feature_subset(const Dataset& ds,
                                        const std::vector<int>& candidates,
                                        int max_size,
                                        const TreeParams& params) {
  ds.validate();
  if (candidates.empty())
    throw std::invalid_argument("best_feature_subset: no candidates");
  if (max_size < 1) throw std::invalid_argument("best_feature_subset: max_size < 1");
  for (int c : candidates)
    if (c < 0 || c >= ds.nfeatures())
      throw std::invalid_argument("best_feature_subset: bad column");

  FeatureSubsetResult best;
  best.scores.exact = -1.0;

  const std::size_t m = candidates.size();
  // Enumerate subsets via bitmask; skip those above max_size.
  const std::size_t limit = std::size_t{1} << m;
  if (m > 20)
    throw std::invalid_argument("best_feature_subset: too many candidates");
  for (std::size_t mask = 1; mask < limit; ++mask) {
    if (static_cast<int>(__builtin_popcountll(mask)) > max_size) continue;
    std::vector<int> cols;
    for (std::size_t i = 0; i < m; ++i)
      if (mask & (std::size_t{1} << i)) cols.push_back(candidates[i]);
    const Dataset proj = project_columns(ds, cols);
    const CvScores scores = leave_one_out(proj, params);
    if (scores.exact > best.scores.exact ||
        (scores.exact == best.scores.exact &&
         cols.size() < best.features.size())) {
      best.features = cols;
      best.scores = scores;
    }
  }
  return best;
}

}  // namespace spmvopt::ml
