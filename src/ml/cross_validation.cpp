#include "ml/cross_validation.hpp"

#include <stdexcept>

#include "ml/metrics.hpp"

namespace spmvopt::ml {

namespace {

/// Train on ds minus [test_lo, test_hi), predict the held-out rows.
void run_fold(const Dataset& ds, std::size_t test_lo, std::size_t test_hi,
              const TreeParams& params, std::vector<std::vector<int>>& preds,
              std::vector<std::vector<int>>& truth) {
  Dataset train;
  train.X.reserve(ds.size() - (test_hi - test_lo));
  train.Y.reserve(train.X.capacity());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (i >= test_lo && i < test_hi) continue;
    train.X.push_back(ds.X[i]);
    train.Y.push_back(ds.Y[i]);
  }
  DecisionTree tree;
  tree.fit(train, params);
  for (std::size_t i = test_lo; i < test_hi; ++i) {
    preds.push_back(tree.predict(ds.X[i]));
    truth.push_back(ds.Y[i]);
  }
}

}  // namespace

CvScores leave_one_out(const Dataset& ds, const TreeParams& params) {
  ds.validate();
  if (ds.size() < 2) throw std::invalid_argument("leave_one_out: need >= 2 samples");
  std::vector<std::vector<int>> preds, truth;
  preds.reserve(ds.size());
  truth.reserve(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i)
    run_fold(ds, i, i + 1, params, preds, truth);
  return {exact_match_ratio(preds, truth), partial_match_ratio(preds, truth)};
}

CvScores k_fold(const Dataset& ds, int folds, const TreeParams& params) {
  ds.validate();
  if (folds < 2 || static_cast<std::size_t>(folds) > ds.size())
    throw std::invalid_argument("k_fold: bad fold count");
  std::vector<std::vector<int>> preds, truth;
  const std::size_t n = ds.size();
  for (int f = 0; f < folds; ++f) {
    const std::size_t lo = n * static_cast<std::size_t>(f) /
                           static_cast<std::size_t>(folds);
    const std::size_t hi = n * (static_cast<std::size_t>(f) + 1) /
                           static_cast<std::size_t>(folds);
    if (lo == hi) continue;
    run_fold(ds, lo, hi, params, preds, truth);
  }
  return {exact_match_ratio(preds, truth), partial_match_ratio(preds, truth)};
}

}  // namespace spmvopt::ml
