// CART decision tree with multi-output (multilabel) leaves.
//
// The feature-guided classifier (§III-D) is "a Decision Tree classifier
// adjusted to perform multilabel classification", trained with an optimized
// CART variant: build cost O(N_features · N_samples · log N_samples), query
// cost O(log N_samples).  The paper used scikit-learn; this is our own
// implementation with the same algorithm (DESIGN.md §3): binary splits on
// real-valued features chosen to minimize the summed per-label Gini
// impurity, leaves predicting the per-label majority.
#pragma once

#include <string>
#include <vector>

namespace spmvopt::ml {

/// Training data: X[i] is a feature vector, Y[i] the binary label vector
/// (one entry per class; multiple may be 1 — multilabel).
struct Dataset {
  std::vector<std::vector<double>> X;
  std::vector<std::vector<int>> Y;

  [[nodiscard]] std::size_t size() const noexcept { return X.size(); }
  [[nodiscard]] int nfeatures() const noexcept {
    return X.empty() ? 0 : static_cast<int>(X.front().size());
  }
  [[nodiscard]] int nlabels() const noexcept {
    return Y.empty() ? 0 : static_cast<int>(Y.front().size());
  }
  /// Throws std::invalid_argument unless all rows are consistent.
  void validate() const;
};

struct TreeParams {
  int max_depth = 12;
  int min_samples_leaf = 1;
  int min_samples_split = 2;
};

class DecisionTree {
 public:
  /// Fit on `ds` (CART, Gini).  Throws on empty/inconsistent data.
  void fit(const Dataset& ds, const TreeParams& params = {});

  /// Per-label 0/1 prediction (majority at the reached leaf).
  [[nodiscard]] std::vector<int> predict(const std::vector<double>& x) const;

  /// Per-label probability estimate (label frequency at the leaf).
  [[nodiscard]] std::vector<double> predict_proba(
      const std::vector<double>& x) const;

  [[nodiscard]] bool trained() const noexcept { return !nodes_.empty(); }
  [[nodiscard]] int depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t leaf_count() const noexcept;

  /// Indented text dump ("|--- f3 <= 2.5 ...") for inspection tools.
  [[nodiscard]] std::string to_text(
      const std::vector<std::string>& feature_names) const;

 private:
  struct Node {
    int feature = -1;        ///< -1 for leaves
    double threshold = 0.0;  ///< go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    std::vector<double> leaf_prob;  ///< per-label P(label=1); leaves only
  };

  int build(std::vector<int>& idx, int lo, int hi, int depth,
            const Dataset& ds, const TreeParams& params);
  [[nodiscard]] const Node& descend(const std::vector<double>& x) const;

  std::vector<Node> nodes_;
  int nlabels_ = 0;
  int nfeatures_ = 0;
  int depth_ = 0;
};

}  // namespace spmvopt::ml
