#include "ml/decision_tree.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace spmvopt::ml {

void Dataset::validate() const {
  if (X.size() != Y.size())
    throw std::invalid_argument("Dataset: |X| != |Y|");
  if (X.empty()) throw std::invalid_argument("Dataset: empty");
  const std::size_t d = X.front().size();
  const std::size_t l = Y.front().size();
  if (d == 0 || l == 0)
    throw std::invalid_argument("Dataset: zero features or labels");
  for (const auto& row : X)
    if (row.size() != d) throw std::invalid_argument("Dataset: ragged X");
  for (const auto& row : Y) {
    if (row.size() != l) throw std::invalid_argument("Dataset: ragged Y");
    for (int v : row)
      if (v != 0 && v != 1)
        throw std::invalid_argument("Dataset: labels must be 0/1");
  }
}

namespace {

/// Summed per-label Gini impurity of a label-count vector over `n` samples:
/// sum_l 2 p_l (1 - p_l).
double gini(const std::vector<double>& pos_counts, double n) {
  if (n <= 0.0) return 0.0;
  double g = 0.0;
  for (double c : pos_counts) {
    const double p = c / n;
    g += 2.0 * p * (1.0 - p);
  }
  return g;
}

}  // namespace

void DecisionTree::fit(const Dataset& ds, const TreeParams& params) {
  ds.validate();
  if (params.max_depth < 1 || params.min_samples_leaf < 1 ||
      params.min_samples_split < 2)
    throw std::invalid_argument("DecisionTree: bad params");
  nodes_.clear();
  depth_ = 0;
  nfeatures_ = ds.nfeatures();
  nlabels_ = ds.nlabels();
  std::vector<int> idx(ds.size());
  std::iota(idx.begin(), idx.end(), 0);
  build(idx, 0, static_cast<int>(idx.size()), 0, ds, params);
}

int DecisionTree::build(std::vector<int>& idx, int lo, int hi, int depth,
                        const Dataset& ds, const TreeParams& params) {
  depth_ = std::max(depth_, depth);
  const int n = hi - lo;
  std::vector<double> pos(static_cast<std::size_t>(nlabels_), 0.0);
  for (int k = lo; k < hi; ++k)
    for (int l = 0; l < nlabels_; ++l)
      pos[static_cast<std::size_t>(l)] +=
          ds.Y[static_cast<std::size_t>(idx[static_cast<std::size_t>(k)])]
              [static_cast<std::size_t>(l)];

  const double node_gini = gini(pos, static_cast<double>(n));

  auto make_leaf = [&]() {
    Node leaf;
    leaf.leaf_prob.resize(static_cast<std::size_t>(nlabels_));
    for (int l = 0; l < nlabels_; ++l)
      leaf.leaf_prob[static_cast<std::size_t>(l)] =
          pos[static_cast<std::size_t>(l)] / static_cast<double>(n);
    nodes_.push_back(std::move(leaf));
    return static_cast<int>(nodes_.size()) - 1;
  };

  if (depth >= params.max_depth || n < params.min_samples_split ||
      node_gini == 0.0)
    return make_leaf();

  // Best split: scan every feature with samples sorted by that feature.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = std::numeric_limits<double>::infinity();
  std::vector<int> order(idx.begin() + lo, idx.begin() + hi);
  std::vector<double> left_pos(static_cast<std::size_t>(nlabels_));

  for (int f = 0; f < nfeatures_; ++f) {
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return ds.X[static_cast<std::size_t>(a)][static_cast<std::size_t>(f)] <
             ds.X[static_cast<std::size_t>(b)][static_cast<std::size_t>(f)];
    });
    std::fill(left_pos.begin(), left_pos.end(), 0.0);
    for (int k = 0; k < n - 1; ++k) {
      const auto& yk = ds.Y[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])];
      for (int l = 0; l < nlabels_; ++l)
        left_pos[static_cast<std::size_t>(l)] += yk[static_cast<std::size_t>(l)];
      const double xa =
          ds.X[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])]
              [static_cast<std::size_t>(f)];
      const double xb =
          ds.X[static_cast<std::size_t>(order[static_cast<std::size_t>(k) + 1])]
              [static_cast<std::size_t>(f)];
      if (xa == xb) continue;  // cannot split between equal values
      const int nl = k + 1;
      const int nr = n - nl;
      if (nl < params.min_samples_leaf || nr < params.min_samples_leaf)
        continue;
      std::vector<double> right_pos(static_cast<std::size_t>(nlabels_));
      for (int l = 0; l < nlabels_; ++l)
        right_pos[static_cast<std::size_t>(l)] =
            pos[static_cast<std::size_t>(l)] - left_pos[static_cast<std::size_t>(l)];
      const double score =
          (static_cast<double>(nl) * gini(left_pos, nl) +
           static_cast<double>(nr) * gini(right_pos, nr)) /
          static_cast<double>(n);
      if (score < best_score) {
        best_score = score;
        best_feature = f;
        best_threshold = 0.5 * (xa + xb);
      }
    }
  }

  if (best_feature < 0 || best_score >= node_gini) return make_leaf();

  // Partition idx[lo,hi) in place around the chosen split.
  const auto mid_it = std::stable_partition(
      idx.begin() + lo, idx.begin() + hi, [&](int a) {
        return ds.X[static_cast<std::size_t>(a)]
                   [static_cast<std::size_t>(best_feature)] <= best_threshold;
      });
  const int mid = static_cast<int>(mid_it - idx.begin());
  if (mid == lo || mid == hi) return make_leaf();  // numeric edge case

  Node split;
  split.feature = best_feature;
  split.threshold = best_threshold;
  nodes_.push_back(std::move(split));
  const int self = static_cast<int>(nodes_.size()) - 1;
  const int left = build(idx, lo, mid, depth + 1, ds, params);
  const int right = build(idx, mid, hi, depth + 1, ds, params);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

const DecisionTree::Node& DecisionTree::descend(
    const std::vector<double>& x) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not trained");
  if (static_cast<int>(x.size()) != nfeatures_)
    throw std::invalid_argument("DecisionTree: feature arity mismatch");
  int cur = 0;
  while (nodes_[static_cast<std::size_t>(cur)].feature >= 0) {
    const Node& nd = nodes_[static_cast<std::size_t>(cur)];
    cur = x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left
                                                                  : nd.right;
  }
  return nodes_[static_cast<std::size_t>(cur)];
}

std::vector<int> DecisionTree::predict(const std::vector<double>& x) const {
  const Node& leaf = descend(x);
  std::vector<int> y(leaf.leaf_prob.size());
  for (std::size_t l = 0; l < y.size(); ++l)
    y[l] = leaf.leaf_prob[l] > 0.5 ? 1 : 0;
  return y;
}

std::vector<double> DecisionTree::predict_proba(
    const std::vector<double>& x) const {
  return descend(x).leaf_prob;
}

std::size_t DecisionTree::leaf_count() const noexcept {
  std::size_t c = 0;
  for (const Node& nd : nodes_)
    if (nd.feature < 0) ++c;
  return c;
}

std::string DecisionTree::to_text(
    const std::vector<std::string>& feature_names) const {
  std::ostringstream os;
  if (nodes_.empty()) return "(untrained)";
  // Iterative preorder with depth markers.
  std::vector<std::pair<int, int>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    for (int i = 0; i < depth; ++i) os << "|   ";
    if (nd.feature < 0) {
      os << "leaf: [";
      for (std::size_t l = 0; l < nd.leaf_prob.size(); ++l)
        os << (l ? " " : "") << (nd.leaf_prob[l] > 0.5 ? 1 : 0);
      os << "]\n";
    } else {
      const std::string fname =
          nd.feature < static_cast<int>(feature_names.size())
              ? feature_names[static_cast<std::size_t>(nd.feature)]
              : "f" + std::to_string(nd.feature);
      os << fname << " <= " << nd.threshold << "\n";
      stack.emplace_back(nd.right, depth + 1);
      stack.emplace_back(nd.left, depth + 1);
    }
  }
  return os.str();
}

}  // namespace spmvopt::ml
