#include "support/topology.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "support/cpu_info.hpp"

namespace spmvopt {

namespace {

/// First line of a sysfs file, stripped of the trailing newline; nullopt
/// when the file is missing or unreadable.
std::optional<std::string> read_line(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n'))
    line.pop_back();
  return line;
}

Topology fallback_topology() {
  Topology t;
  t.logical_cpus = std::max(1, cpu_info().logical_cpus);
  NumaNode node;
  node.id = 0;
  node.cpus.resize(static_cast<std::size_t>(t.logical_cpus));
  for (int c = 0; c < t.logical_cpus; ++c)
    node.cpus[static_cast<std::size_t>(c)] = c;
  t.nodes.push_back(std::move(node));
  t.from_sysfs = false;
  return t;
}

}  // namespace

std::optional<std::vector<int>> parse_cpulist(std::string_view text) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  const auto parse_int = [&](int* out) -> bool {
    std::size_t start = pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos])))
      ++pos;
    if (pos == start || pos - start > 7) return false;
    int v = 0;
    for (std::size_t i = start; i < pos; ++i) v = v * 10 + (text[i] - '0');
    *out = v;
    return true;
  };
  if (text.empty()) return std::nullopt;
  while (pos < text.size()) {
    int lo = 0;
    if (!parse_int(&lo)) return std::nullopt;
    int hi = lo;
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
      if (!parse_int(&hi) || hi < lo) return std::nullopt;
    }
    if (hi - lo >= 1 << 16) return std::nullopt;  // implausible; reject
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
    if (pos < text.size()) {
      if (text[pos] != ',') return std::nullopt;
      ++pos;
      if (pos == text.size()) return std::nullopt;  // trailing comma
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

Topology probe_topology(const std::string& sysfs_root) {
  const std::string node_dir = sysfs_root + "/devices/system/node";
  const auto online = read_line(node_dir + "/online");
  if (!online) return fallback_topology();
  const auto node_ids = parse_cpulist(*online);
  if (!node_ids || node_ids->empty()) return fallback_topology();

  Topology t;
  t.logical_cpus = 0;
  for (int id : *node_ids) {
    const auto cpulist =
        read_line(node_dir + "/node" + std::to_string(id) + "/cpulist");
    if (!cpulist) return fallback_topology();
    auto cpus = parse_cpulist(*cpulist);
    // Memory-only nodes (CXL expanders) legitimately list no CPUs; skip them
    // rather than failing the probe.
    if (!cpus) return fallback_topology();
    if (cpus->empty()) continue;
    NumaNode node;
    node.id = id;
    node.cpus = std::move(*cpus);
    t.logical_cpus += static_cast<int>(node.cpus.size());
    t.nodes.push_back(std::move(node));
  }
  if (t.nodes.empty() || t.logical_cpus <= 0) return fallback_topology();
  t.from_sysfs = true;
  return t;
}

const Topology& topology() {
  static const Topology t = probe_topology();
  return t;
}

const char* pin_policy_name(PinPolicy p) noexcept {
  switch (p) {
    case PinPolicy::None: return "none";
    case PinPolicy::Compact: return "compact";
    case PinPolicy::Scatter: return "scatter";
  }
  return "?";
}

std::optional<PinPolicy> parse_pin_policy(std::string_view name) {
  if (name == "none") return PinPolicy::None;
  if (name == "compact") return PinPolicy::Compact;
  if (name == "scatter") return PinPolicy::Scatter;
  return std::nullopt;
}

std::vector<int> pin_cpus(const Topology& topo, PinPolicy policy,
                          int nthreads) {
  std::vector<int> out;
  if (policy == PinPolicy::None || nthreads <= 0 || topo.nodes.empty())
    return out;
  out.reserve(static_cast<std::size_t>(nthreads));
  if (policy == PinPolicy::Compact) {
    // Concatenate node CPU lists, wrap when the team is larger.
    std::vector<int> flat;
    for (const NumaNode& n : topo.nodes)
      flat.insert(flat.end(), n.cpus.begin(), n.cpus.end());
    for (int t = 0; t < nthreads; ++t)
      out.push_back(flat[static_cast<std::size_t>(t) % flat.size()]);
  } else {
    // Scatter: thread t goes to node t % nodes, next unused CPU there.
    std::vector<std::size_t> next(topo.nodes.size(), 0);
    for (int t = 0; t < nthreads; ++t) {
      const auto n = static_cast<std::size_t>(t) % topo.nodes.size();
      const NumaNode& node = topo.nodes[n];
      out.push_back(node.cpus[next[n] % node.cpus.size()]);
      ++next[n];
    }
  }
  return out;
}

}  // namespace spmvopt
