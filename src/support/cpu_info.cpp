#include "support/cpu_info.hpp"

#include <omp.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "support/env.hpp"

namespace spmvopt {

namespace {

// Parse strings such as "32K", "2048K", "55M" from sysfs cache size files.
std::size_t parse_size(const std::string& s) {
  if (s.empty()) return 0;
  std::size_t value = 0;
  std::size_t i = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    value = value * 10 + static_cast<std::size_t>(s[i] - '0');
    ++i;
  }
  if (i < s.size()) {
    if (s[i] == 'K' || s[i] == 'k') value *= 1024;
    else if (s[i] == 'M' || s[i] == 'm') value *= 1024 * 1024;
    else if (s[i] == 'G' || s[i] == 'g') value *= 1024ull * 1024 * 1024;
  }
  return value;
}

std::string read_first_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in) std::getline(in, line);
  return line;
}

CpuInfo detect() {
  CpuInfo info;

  // Model name from /proc/cpuinfo.
  {
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (in && std::getline(in, line)) {
      if (line.rfind("model name", 0) == 0) {
        const auto colon = line.find(':');
        if (colon != std::string::npos)
          info.model_name = line.substr(colon + 2);
        break;
      }
    }
  }

  // Cache hierarchy from sysfs; keep the largest level seen as LLC.
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  for (int idx = 0; idx < 8; ++idx) {
    const std::string dir = base + std::to_string(idx) + "/";
    const std::string level = read_first_line(dir + "level");
    const std::string type = read_first_line(dir + "type");
    const std::string size = read_first_line(dir + "size");
    if (level.empty() || size.empty()) continue;
    const std::size_t bytes = parse_size(size);
    if (bytes == 0) continue;
    if (level == "1" && type == "Data") info.l1d_bytes = bytes;
    if (level == "2") info.l2_bytes = bytes;
    if (bytes > info.llc_bytes || level == "3") info.llc_bytes = bytes;
    const std::string cl = read_first_line(dir + "coherency_line_size");
    if (!cl.empty()) {
      const std::size_t line_bytes = parse_size(cl);
      if (line_bytes != 0) info.cache_line_bytes = line_bytes;
    }
  }

  info.logical_cpus = omp_get_num_procs();
#if defined(__AVX2__)
  info.has_avx2 = __builtin_cpu_supports("avx2");
#endif
#if defined(__AVX512F__)
  info.has_avx512f = __builtin_cpu_supports("avx512f");
#endif
  return info;
}

}  // namespace

const CpuInfo& cpu_info() {
  static const CpuInfo info = detect();
  return info;
}

int default_threads() {
  static const int n = [] {
    const long env = env_long("SPMVOPT_THREADS", 0);
    if (env > 0) return static_cast<int>(env);
    return omp_get_max_threads();
  }();
  return n;
}

}  // namespace spmvopt
