// Fundamental scalar types used across the library.
//
// The paper's kernels use double-precision values (§IV-A) and 32-bit column
// indices (the compression optimization of Table II exists precisely because
// those 4-byte indices dominate CSR traffic for double values).
#pragma once

#include <cstdint>

namespace spmvopt {

using index_t = std::int32_t;  ///< row/column index and row-pointer entry
using value_t = double;        ///< nonzero value

}  // namespace spmvopt
