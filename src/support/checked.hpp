// Overflow-checked 64-bit size arithmetic for ingestion paths.
//
// Payload sizes in file headers are attacker-controlled: `nnz * sizeof(T)`
// on an implausible nnz can wrap before any plausibility check runs, turning
// a corrupt header into an undersized allocation followed by an overread.
// Every size computed from untrusted dimensions must go through these.
#pragma once

#include <cstdint>

namespace spmvopt {

/// *out = a + b; false (out unspecified) on overflow.
[[nodiscard]] inline bool checked_add_u64(std::uint64_t a, std::uint64_t b,
                                          std::uint64_t* out) noexcept {
  return !__builtin_add_overflow(a, b, out);
}

/// *out = a * b; false (out unspecified) on overflow.
[[nodiscard]] inline bool checked_mul_u64(std::uint64_t a, std::uint64_t b,
                                          std::uint64_t* out) noexcept {
  return !__builtin_mul_overflow(a, b, out);
}

}  // namespace spmvopt
