#include "support/timing.hpp"

namespace spmvopt {

double now_sec() noexcept {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

}  // namespace spmvopt
