// 1-D row partitioning schemes for SpMV.
//
// The paper's baseline (§IV-A): "a static one-dimensional row partitioning
// scheme, where each partition has approximately equal number of nonzero
// elements and is assigned to a single thread."
#pragma once

#include <vector>

#include "support/types.hpp"

namespace spmvopt {

/// Row ranges per thread: thread t owns rows [bounds[t], bounds[t+1]).
struct RowPartition {
  std::vector<index_t> bounds;  ///< size = nthreads + 1, bounds[0] == 0

  [[nodiscard]] int nthreads() const noexcept {
    return static_cast<int>(bounds.size()) - 1;
  }
};

/// Split rows so every thread gets a contiguous block with ~equal nnz.
/// `rowptr` is the CSR row pointer (size nrows+1, rowptr[0] == 0).
/// Threads may receive empty ranges when nthreads > nrows.
[[nodiscard]] RowPartition balanced_nnz_partition(const index_t* rowptr,
                                                  index_t nrows, int nthreads);

/// Plain block partition: ~equal row counts per thread (what OpenMP
/// schedule(static) does); used by the MKL-proxy kernel.
[[nodiscard]] RowPartition static_rows_partition(index_t nrows, int nthreads);

}  // namespace spmvopt
