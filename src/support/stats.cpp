#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spmvopt {

namespace {
void require_nonempty(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("stats: empty input");
}
}  // namespace

double arithmetic_mean(std::span<const double> xs) {
  require_nonempty(xs);
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double harmonic_mean(std::span<const double> xs) {
  require_nonempty(xs);
  double s = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("harmonic_mean: nonpositive value");
    s += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / s;
}

double geometric_mean(std::span<const double> xs) {
  require_nonempty(xs);
  double s = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geometric_mean: nonpositive value");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) {
  const double mu = arithmetic_mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - mu) * (x - mu);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double median(std::span<const double> xs) {
  require_nonempty(xs);
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (v[mid - 1] + hi);
}

double min_of(std::span<const double> xs) {
  require_nonempty(xs);
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  require_nonempty(xs);
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  require_nonempty(xs);
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= v.size()) return v.back();
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

std::vector<double> iqr_filter(std::span<const double> xs, double k) {
  std::vector<double> kept(xs.begin(), xs.end());
  if (xs.size() < 4) return kept;
  const double q1 = quantile(xs, 0.25);
  const double q3 = quantile(xs, 0.75);
  const double fence = k * (q3 - q1);
  kept.erase(std::remove_if(kept.begin(), kept.end(),
                            [&](double x) {
                              return x < q1 - fence || x > q3 + fence;
                            }),
             kept.end());
  return kept;
}

namespace {
/// Two-sided 95% Student's t critical values by degrees of freedom (1..30).
constexpr double kT95[30] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
/// Same at 99%.
constexpr double kT99[30] = {
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
    3.106,  3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
    2.831,  2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750};

double t_critical(std::size_t dof, double confidence) {
  const double* table;
  double asymptote;
  if (confidence >= 0.99) {
    table = kT99;
    asymptote = 2.576;
  } else {
    table = kT95;
    asymptote = 1.960;
  }
  if (dof == 0) return asymptote;
  return dof <= 30 ? table[dof - 1] : asymptote;
}
}  // namespace

MeanCi mean_confidence(std::span<const double> xs, double confidence) {
  require_nonempty(xs);
  if (confidence <= 0.0 || confidence >= 1.0)
    throw std::invalid_argument("mean_confidence: confidence outside (0,1)");
  MeanCi ci;
  ci.mean = arithmetic_mean(xs);
  if (xs.size() == 1) {
    ci.lo = ci.hi = ci.mean;
    return ci;
  }
  const auto n = static_cast<double>(xs.size());
  // Sample (n-1) standard deviation for the interval; stddev() is population.
  double s2 = 0.0;
  for (double x : xs) s2 += (x - ci.mean) * (x - ci.mean);
  const double sem = std::sqrt(s2 / (n - 1.0)) / std::sqrt(n);
  const double half = t_critical(xs.size() - 1, confidence) * sem;
  ci.lo = ci.mean - half;
  ci.hi = ci.mean + half;
  return ci;
}

RateSummary summarize_rates(std::span<const double> sec_per_op, double flops) {
  require_nonempty(sec_per_op);
  std::vector<double> rates;
  rates.reserve(sec_per_op.size());
  for (double s : sec_per_op) {
    if (s <= 0.0) throw std::invalid_argument("summarize_rates: nonpositive time");
    rates.push_back(flops / s / 1e9);
  }
  RateSummary out;
  out.gflops = harmonic_mean(rates);
  out.best_gflops = max_of(rates);
  out.seconds_per_op = flops / (out.gflops * 1e9);
  return out;
}

}  // namespace spmvopt
