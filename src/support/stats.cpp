#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spmvopt {

namespace {
void require_nonempty(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("stats: empty input");
}
}  // namespace

double arithmetic_mean(std::span<const double> xs) {
  require_nonempty(xs);
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double harmonic_mean(std::span<const double> xs) {
  require_nonempty(xs);
  double s = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("harmonic_mean: nonpositive value");
    s += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / s;
}

double geometric_mean(std::span<const double> xs) {
  require_nonempty(xs);
  double s = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geometric_mean: nonpositive value");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) {
  const double mu = arithmetic_mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - mu) * (x - mu);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double median(std::span<const double> xs) {
  require_nonempty(xs);
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (v[mid - 1] + hi);
}

double min_of(std::span<const double> xs) {
  require_nonempty(xs);
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  require_nonempty(xs);
  return *std::max_element(xs.begin(), xs.end());
}

RateSummary summarize_rates(std::span<const double> sec_per_op, double flops) {
  require_nonempty(sec_per_op);
  std::vector<double> rates;
  rates.reserve(sec_per_op.size());
  for (double s : sec_per_op) {
    if (s <= 0.0) throw std::invalid_argument("summarize_rates: nonpositive time");
    rates.push_back(flops / s / 1e9);
  }
  RateSummary out;
  out.gflops = harmonic_mean(rates);
  out.best_gflops = max_of(rates);
  out.seconds_per_op = flops / (out.gflops * 1e9);
  return out;
}

}  // namespace spmvopt
