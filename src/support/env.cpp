#include "support/env.hpp"

#include <cstdlib>

namespace spmvopt {

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v) return fallback;
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

bool quick_mode() { return env_long("SPMVOPT_QUICK", 0) != 0; }

int bench_iterations() {
  const long v = env_long("SPMVOPT_ITERS", 0);
  if (v > 0) return static_cast<int>(v);
  // The paper's protocol is 128 iterations (§IV-A); the default is trimmed
  // so a full bench sweep finishes in minutes on a laptop.  Set
  // SPMVOPT_ITERS=128 SPMVOPT_RUNS=5 to match the paper exactly.
  return quick_mode() ? 16 : 40;
}

int bench_runs() {
  const long v = env_long("SPMVOPT_RUNS", 0);
  if (v > 0) return static_cast<int>(v);
  return quick_mode() ? 2 : 3;
}

namespace {

std::uint64_t env_u64_limit(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  return end == v ? 0 : static_cast<std::uint64_t>(parsed);
}

}  // namespace

std::uint64_t max_nnz_limit() { return env_u64_limit("SPMVOPT_MAX_NNZ"); }

std::uint64_t max_bytes_limit() { return env_u64_limit("SPMVOPT_MAX_BYTES"); }

}  // namespace spmvopt
