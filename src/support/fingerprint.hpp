// Structural matrix fingerprints.
//
// The server's plan cache (src/server/, DESIGN.md §9) keys everything on the
// identity of a submitted matrix, and the paper's amortization argument
// (Table V) needs two *different* notions of identity:
//
//   * the STRUCTURE — dimensions, nnz, and a CRC32 digest of rowptr+colind.
//     Feature extraction and classification read only the structure (Table I
//     features are pattern statistics), so a structure hit can reuse a
//     previously selected Plan without re-running either.
//   * the full VALUE identity — structure plus a CRC32 of the values array.
//     Only a full match may reuse a resident OptimizedSpmv: two matrices
//     with the same pattern but different values run the same plan, not the
//     same bound kernel.
//
// Lives in src/support (below src/sparse) so the binary cache and the server
// can both use it; `fingerprint_of()` is a template over any matrix type
// exposing nrows()/ncols()/rowptr_span()/colind_span()/values_span(), which
// CsrMatrix does.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "support/crc32.hpp"
#include "support/types.hpp"

namespace spmvopt {

struct Fingerprint {
  index_t nrows = 0;
  index_t ncols = 0;
  index_t nnz = 0;
  std::uint32_t structure_crc = 0;  ///< crc32 over rowptr, chained into colind
  std::uint32_t values_crc = 0;     ///< crc32 over the values array

  [[nodiscard]] bool operator==(const Fingerprint&) const = default;

  /// True when dims/nnz/pattern match, regardless of values (plan reuse).
  [[nodiscard]] bool same_structure(const Fingerprint& o) const noexcept {
    return nrows == o.nrows && ncols == o.ncols && nnz == o.nnz &&
           structure_crc == o.structure_crc;
  }

  /// "m<nrows>x<ncols>-n<nnz>-s<hex8>" — stable key of the structure only.
  [[nodiscard]] std::string structure_key() const;
  /// structure_key() + "-v<hex8>" — the full identity (also a valid file
  /// name, used by the server's persistent cache tier).
  [[nodiscard]] std::string key() const;
};

/// Fingerprint from raw CSR arrays (rowptr has nrows+1 entries, colind and
/// values have rowptr[nrows] entries).
[[nodiscard]] Fingerprint fingerprint_arrays(index_t nrows, index_t ncols,
                                             std::span<const index_t> rowptr,
                                             std::span<const index_t> colind,
                                             std::span<const value_t> values);

/// Fingerprint of any CSR-shaped matrix type (CsrMatrix in practice).
template <class Matrix>
[[nodiscard]] Fingerprint fingerprint_of(const Matrix& A) {
  return fingerprint_arrays(A.nrows(), A.ncols(), A.rowptr_span(),
                            A.colind_span(), A.values_span());
}

/// Hash over the full identity, for unordered_map keys.
struct FingerprintHash {
  [[nodiscard]] std::size_t operator()(const Fingerprint& f) const noexcept;
};

}  // namespace spmvopt
