// Cache-line / SIMD-aligned storage.
//
// SpMV kernels issue aligned vector loads from the value and index arrays and
// rely on arrays not sharing cache lines with unrelated data (false sharing on
// the per-thread partials of the decomposed kernel).  Every array the kernels
// touch is therefore an `aligned_vector`, aligned to kAlign bytes.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace spmvopt {

/// Alignment used for all numeric arrays: one cache line, which also
/// satisfies the strictest SIMD requirement we use (64 B for AVX-512).
inline constexpr std::size_t kAlign = 64;

/// Minimal C++17 allocator producing kAlign-aligned allocations.
template <class T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_array_new_length();
    // std::aligned_alloc requires the size to be a multiple of the alignment.
    const std::size_t bytes = ((n * sizeof(T) + kAlign - 1) / kAlign) * kAlign;
    void* p = std::aligned_alloc(kAlign, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <class U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <class U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// std::vector whose data() is kAlign-aligned.
template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

/// Tells the compiler (and the reader) a pointer is kAlign-aligned.
template <class T>
[[nodiscard]] inline T* assume_aligned(T* p) noexcept {
  return static_cast<T*>(__builtin_assume_aligned(p, kAlign));
}

}  // namespace spmvopt
