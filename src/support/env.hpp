// Environment-variable knobs shared by benches and tools.
#pragma once

#include <cstdint>
#include <string>

namespace spmvopt {

/// Integer env var with fallback; returns `fallback` when unset or malformed.
[[nodiscard]] long env_long(const char* name, long fallback);

/// String env var with fallback.
[[nodiscard]] std::string env_string(const char* name, const std::string& fallback);

/// True when SPMVOPT_QUICK=1: benches shrink matrices / iteration counts so
/// the full suite finishes in seconds (used by CI-style smoke runs).
[[nodiscard]] bool quick_mode();

/// Number of timed SpMV operations per measurement block.
/// Default 40 (paper: 128, §IV-A — set SPMVOPT_ITERS=128 to match);
/// quick mode 16.
[[nodiscard]] int bench_iterations();

/// Number of measurement runs summarized with the harmonic mean.
/// Default 3 (paper: 5 — set SPMVOPT_RUNS=5 to match); quick mode 2.
[[nodiscard]] int bench_runs();

/// Ingestion resource ceilings (the robustness layer, DESIGN.md §6),
/// enforced *before* allocation by the .mtx reader and the binary cache:
/// SPMVOPT_MAX_NNZ caps stored nonzeros (after symmetry expansion),
/// SPMVOPT_MAX_BYTES caps the estimated in-memory size.  0 / unset / bogus
/// means unlimited.  Read fresh on every call so tests can toggle them.
[[nodiscard]] std::uint64_t max_nnz_limit();
[[nodiscard]] std::uint64_t max_bytes_limit();

}  // namespace spmvopt
