// Environment-variable knobs shared by benches and tools.
#pragma once

#include <string>

namespace spmvopt {

/// Integer env var with fallback; returns `fallback` when unset or malformed.
[[nodiscard]] long env_long(const char* name, long fallback);

/// String env var with fallback.
[[nodiscard]] std::string env_string(const char* name, const std::string& fallback);

/// True when SPMVOPT_QUICK=1: benches shrink matrices / iteration counts so
/// the full suite finishes in seconds (used by CI-style smoke runs).
[[nodiscard]] bool quick_mode();

/// Number of timed SpMV operations per measurement block.
/// Default 40 (paper: 128, §IV-A — set SPMVOPT_ITERS=128 to match);
/// quick mode 16.
[[nodiscard]] int bench_iterations();

/// Number of measurement runs summarized with the harmonic mean.
/// Default 3 (paper: 5 — set SPMVOPT_RUNS=5 to match); quick mode 2.
[[nodiscard]] int bench_runs();

}  // namespace spmvopt
