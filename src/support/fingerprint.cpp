#include "support/fingerprint.hpp"

#include <cstdio>

namespace spmvopt {

namespace {

std::string hex8(std::uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", v);
  return buf;
}

}  // namespace

std::string Fingerprint::structure_key() const {
  return "m" + std::to_string(nrows) + "x" + std::to_string(ncols) + "-n" +
         std::to_string(nnz) + "-s" + hex8(structure_crc);
}

std::string Fingerprint::key() const {
  return structure_key() + "-v" + hex8(values_crc);
}

Fingerprint fingerprint_arrays(index_t nrows, index_t ncols,
                               std::span<const index_t> rowptr,
                               std::span<const index_t> colind,
                               std::span<const value_t> values) {
  Fingerprint f;
  f.nrows = nrows;
  f.ncols = ncols;
  f.nnz = nrows > 0 ? rowptr[static_cast<std::size_t>(nrows)] : 0;
  // Chain rowptr into colind so "rows shifted by one" and "columns shifted
  // by one" cannot cancel into the same digest.
  std::uint32_t crc = crc32(rowptr.data(), rowptr.size_bytes());
  f.structure_crc = crc32(colind.data(), colind.size_bytes(), crc);
  f.values_crc = crc32(values.data(), values.size_bytes());
  return f;
}

std::size_t FingerprintHash::operator()(const Fingerprint& f) const noexcept {
  // FNV-1a over the five fields; quality is plenty for a cache map whose
  // keys already contain two CRC32s.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.nrows)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.ncols)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.nnz)));
  mix(f.structure_crc);
  mix(f.values_crc);
  return static_cast<std::size_t>(h);
}

}  // namespace spmvopt
