// Value-type vocabulary for the dtype-aware kernel API (DESIGN.md §8).
//
// Two orthogonal notions live here:
//
//  * Dtype — the storage type of a caller-visible operand buffer (a vector
//    or a batch of right-hand sides).  The typed entry points accept either
//    f64 or f32 operands and convert at the boundary.
//
//  * Precision — the *value mode* of a bound computation: what the matrix
//    value stream is stored as and what the accumulators are.  F32F64 is
//    the memory-bandwidth play from the paper's MB class: float storage
//    halves the dominant value-stream traffic while x/y and every
//    accumulation stay double, so no operand conversion touches the hot
//    path.
//
// The view structs are deliberately dumb descriptors (pointer + extent +
// dtype tag) — no ownership, no arithmetic.  They exist so public entry
// points (`OptimizedSpmv::run/run_many`, `LinearOperator::apply`, registry
// binding) are typed once instead of growing a `double*`/`float*` overload
// matrix.
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/types.hpp"

namespace spmvopt {

/// Storage type of an operand buffer.  The numeric values are wire-stable:
/// the server protocol serializes a Dtype as this byte (DESIGN.md §9).
enum class Dtype : std::uint8_t { F64 = 0, F32 = 1 };

[[nodiscard]] constexpr std::size_t dtype_size(Dtype d) noexcept {
  return d == Dtype::F32 ? sizeof(float) : sizeof(double);
}

[[nodiscard]] constexpr const char* dtype_name(Dtype d) noexcept {
  return d == Dtype::F32 ? "f32" : "f64";
}

/// Value mode of a bound computation (matrix storage × accumulation).
enum class Precision : std::uint8_t {
  F64 = 0,     ///< double storage, double accumulate (the default)
  F32 = 1,     ///< float storage, float accumulate
  F32F64 = 2,  ///< float storage, double x/y and accumulate ("f32x64")
};

/// Canonical short name, used in registry variant names and Plan
/// serialization ("f64", "f32", "f32x64").
[[nodiscard]] constexpr const char* precision_name(Precision p) noexcept {
  switch (p) {
    case Precision::F32: return "f32";
    case Precision::F32F64: return "f32x64";
    case Precision::F64: break;
  }
  return "f64";
}

/// Storage dtype of the matrix value stream under a precision.
[[nodiscard]] constexpr Dtype value_dtype(Precision p) noexcept {
  return p == Precision::F64 ? Dtype::F64 : Dtype::F32;
}

/// Dtype of the x/y operands (and accumulators) under a precision.
[[nodiscard]] constexpr Dtype operand_dtype(Precision p) noexcept {
  return p == Precision::F32 ? Dtype::F32 : Dtype::F64;
}

/// Read-only typed vector descriptor: `count` elements of `dtype` at `data`.
struct ConstVectorView {
  const void* data = nullptr;
  index_t count = 0;
  Dtype dtype = Dtype::F64;

  [[nodiscard]] static ConstVectorView of(const double* p, index_t n) noexcept {
    return {p, n, Dtype::F64};
  }
  [[nodiscard]] static ConstVectorView of(const float* p, index_t n) noexcept {
    return {p, n, Dtype::F32};
  }
};

/// Mutable typed vector descriptor.
struct VectorView {
  void* data = nullptr;
  index_t count = 0;
  Dtype dtype = Dtype::F64;

  [[nodiscard]] static VectorView of(double* p, index_t n) noexcept {
    return {p, n, Dtype::F64};
  }
  [[nodiscard]] static VectorView of(float* p, index_t n) noexcept {
    return {p, n, Dtype::F32};
  }
  [[nodiscard]] ConstVectorView as_const() const noexcept {
    return {data, count, dtype};
  }
};

/// Read-only typed matrix descriptor: `rows` vectors of `cols` elements,
/// row r starting at element offset `r * stride` (stride >= cols, in
/// elements of `dtype`).  run_many treats rows as right-hand sides.
struct ConstMatrixView {
  const void* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t stride = 0;  ///< element stride between rows; 0 means `cols`
  Dtype dtype = Dtype::F64;

  [[nodiscard]] static ConstMatrixView of(const double* p, index_t rows,
                                          index_t cols,
                                          index_t stride = 0) noexcept {
    return {p, rows, cols, stride == 0 ? cols : stride, Dtype::F64};
  }
  [[nodiscard]] static ConstMatrixView of(const float* p, index_t rows,
                                          index_t cols,
                                          index_t stride = 0) noexcept {
    return {p, rows, cols, stride == 0 ? cols : stride, Dtype::F32};
  }
  [[nodiscard]] index_t row_stride() const noexcept {
    return stride == 0 ? cols : stride;
  }
};

/// Mutable typed matrix descriptor.
struct MatrixView {
  void* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t stride = 0;
  Dtype dtype = Dtype::F64;

  [[nodiscard]] static MatrixView of(double* p, index_t rows, index_t cols,
                                     index_t stride = 0) noexcept {
    return {p, rows, cols, stride == 0 ? cols : stride, Dtype::F64};
  }
  [[nodiscard]] static MatrixView of(float* p, index_t rows, index_t cols,
                                     index_t stride = 0) noexcept {
    return {p, rows, cols, stride == 0 ? cols : stride, Dtype::F32};
  }
  [[nodiscard]] index_t row_stride() const noexcept {
    return stride == 0 ? cols : stride;
  }
  [[nodiscard]] ConstMatrixView as_const() const noexcept {
    return {data, rows, cols, stride, dtype};
  }
};

}  // namespace spmvopt
