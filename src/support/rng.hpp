// Deterministic, fast PRNG for matrix generation and property tests.
//
// xoshiro256** (Blackman & Vigna).  We avoid std::mt19937 in generators so
// that the synthetic matrix suite is bit-identical across libstdc++ versions,
// which keeps bench tables and classifier training reproducible.
#pragma once

#include <cstdint>

namespace spmvopt {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    auto next = [&seed]() noexcept {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    for (auto& s : s_) s = next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // 128-bit multiply-shift; the slight residual bias of the plain variant
    // is below anything observable in our generators.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace spmvopt
