// Plain-text table printer for the bench binaries, which regenerate the
// paper's tables and figure series as aligned columns on stdout.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace spmvopt {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with `precision` decimals.
  [[nodiscard]] static std::string num(double v, int precision = 2);

  /// Render with column alignment (numbers right-aligned heuristically).
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spmvopt
