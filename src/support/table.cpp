#include "support/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace spmvopt {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s)
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != 'e' && c != 'E' && c != 'x')
      return false;
  return true;
}
}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      if (looks_numeric(row[c]))
        os << std::setw(static_cast<int>(width[c])) << std::right << row[c];
      else
        os << std::setw(static_cast<int>(width[c])) << std::left << row[c];
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace spmvopt
