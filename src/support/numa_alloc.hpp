// NUMA-aware storage on top of the aligned allocator.
//
// Linux places a page on the node of the core that *first touches* it, not
// the core that called malloc.  aligned_vector<T>(n) value-initializes every
// element on the allocating thread, which pins the whole array to that
// thread's node — exactly wrong for a partitioned SpMV.  numa_vector is the
// same kAlign-aligned storage but with default-initialization: for the
// trivial element types the kernels use (index_t, value_t) sizing the vector
// touches no pages, so the engine's team can first-touch each partition's
// slice on the thread that will own it (DESIGN.md §8).
#pragma once

#include <cstring>
#include <utility>

#include "support/aligned.hpp"

namespace spmvopt {

/// AlignedAllocator whose no-argument construct() default-initializes.
/// For trivially-default-constructible T that compiles to nothing — the
/// pages stay untouched until the first real write.
template <class T>
struct FirstTouchAllocator : AlignedAllocator<T> {
  using value_type = T;

  FirstTouchAllocator() noexcept = default;
  template <class U>
  FirstTouchAllocator(const FirstTouchAllocator<U>&) noexcept {}

  template <class U>
  struct rebind {
    using other = FirstTouchAllocator<U>;
  };

  template <class U>
  void construct(U* p) noexcept(noexcept(::new (static_cast<void*>(p)) U)) {
    ::new (static_cast<void*>(p)) U;  // default-init: no-op for trivial U
  }
  template <class U, class... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }

  template <class U>
  bool operator==(const FirstTouchAllocator<U>&) const noexcept {
    return true;
  }
  template <class U>
  bool operator!=(const FirstTouchAllocator<U>&) const noexcept {
    return false;
  }
};

/// kAlign-aligned vector whose elements stay uninitialized (and its pages
/// untouched) after resize(n), ready for placement by first touch.
template <class T>
using numa_vector = std::vector<T, FirstTouchAllocator<T>>;

/// Copy `[src, src+count)` into `dst` — the engine team calls this with each
/// thread's slice so the destination pages land on the caller's node.
template <class T>
inline void first_touch_copy(T* dst, const T* src, std::size_t count) noexcept {
  if (count > 0) std::memcpy(dst, src, count * sizeof(T));
}

/// Zero `[dst, dst+count)`, same placement contract as first_touch_copy.
template <class T>
inline void first_touch_zero(T* dst, std::size_t count) noexcept {
  if (count > 0) std::memset(dst, 0, count * sizeof(T));
}

}  // namespace spmvopt
