// CRC-32 (IEEE 802.3: reflected, polynomial 0xEDB88320, init/final ~0).
//
// Used as the content checksum of the binary CSR cache (sparse/binary_io):
// a flipped bit anywhere in the payload is caught before the arrays reach
// CsrMatrix validation, turning silent cache corruption into a recoverable
// Format error.  Chainable over multiple buffers by passing the previous
// result as `seed`, so the three CSR arrays are checksummed without
// concatenation.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spmvopt {

/// CRC of `len` bytes at `data`, chained onto `seed` (0 to start).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len,
                                  std::uint32_t seed = 0) noexcept;

}  // namespace spmvopt
