// Host introspection: cache sizes, SIMD capability, thread count.
//
// The optimizer is architecture-adaptive (§III): the `size` feature of
// Table I needs the LLC capacity, the misses feature needs the cache-line
// size, and the prefetch distance is "the number of elements that fit in a
// single cache line" (§III-E).  All of that is read from the host at runtime.
#pragma once

#include <cstddef>
#include <string>

namespace spmvopt {

struct CpuInfo {
  std::string model_name;           ///< from /proc/cpuinfo, may be empty
  std::size_t cache_line_bytes = 64;
  std::size_t l1d_bytes = 32 * 1024;
  std::size_t l2_bytes = 1024 * 1024;
  std::size_t llc_bytes = 8 * 1024 * 1024;  ///< last-level cache capacity
  int logical_cpus = 1;
  bool has_avx2 = false;
  bool has_avx512f = false;

  /// Elements of type double per cache line — the software-prefetch distance.
  [[nodiscard]] std::size_t doubles_per_line() const noexcept {
    return cache_line_bytes / sizeof(double);
  }
};

/// Detect once and cache; safe to call from multiple threads after first use.
[[nodiscard]] const CpuInfo& cpu_info();

/// Number of OpenMP threads the library will use.  Honors the
/// SPMVOPT_THREADS environment variable, else omp_get_max_threads().
[[nodiscard]] int default_threads();

}  // namespace spmvopt
