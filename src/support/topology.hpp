// Package / NUMA-node topology of the host, probed from sysfs.
//
// On multi-socket machines realized memory bandwidth — the paper's dominant
// MB bottleneck — depends on where data lands and which core touches it.
// The execution engine (src/engine/) pins its persistent team according to
// this probe and first-touches each partition's arrays on the owning thread.
// Containers and non-Linux hosts often expose no usable sysfs; the probe
// then degrades to a single synthetic node spanning every logical CPU, so
// every caller can rely on at least one node with at least one CPU.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace spmvopt {

struct NumaNode {
  int id = 0;
  std::vector<int> cpus;  ///< logical CPU ids on this node, ascending
};

struct Topology {
  std::vector<NumaNode> nodes;  ///< never empty; fallback: one node, all CPUs
  int logical_cpus = 1;
  bool from_sysfs = false;  ///< false when the portable fallback was used

  [[nodiscard]] int num_nodes() const noexcept {
    return static_cast<int>(nodes.size());
  }
};

/// Probe node/CPU structure under `sysfs_root` (tests point this at a fake
/// tree; production uses "/sys").  Any missing or malformed file degrades to
/// the single-node fallback — the probe never throws.
[[nodiscard]] Topology probe_topology(const std::string& sysfs_root = "/sys");

/// The host topology, probed once and cached (thread-safe after first use).
[[nodiscard]] const Topology& topology();

/// Parse a sysfs cpulist ("0-3,8,10-11") into CPU ids; nullopt on junk.
[[nodiscard]] std::optional<std::vector<int>> parse_cpulist(
    std::string_view text);

/// Thread-placement policy for the engine's pinned team.
enum class PinPolicy {
  None,     ///< no affinity calls at all
  Compact,  ///< fill node 0's CPUs first, then node 1, ... (bandwidth per
            ///< socket concentrates, cache sharing maximizes)
  Scatter,  ///< round-robin across nodes (aggregate bandwidth maximizes)
};

[[nodiscard]] const char* pin_policy_name(PinPolicy p) noexcept;
[[nodiscard]] std::optional<PinPolicy> parse_pin_policy(std::string_view name);

/// CPU id for each of team members 0..nthreads-1 under `policy`.  More
/// threads than CPUs wrap around.  Empty when policy is None.
[[nodiscard]] std::vector<int> pin_cpus(const Topology& topo, PinPolicy policy,
                                        int nthreads);

}  // namespace spmvopt
