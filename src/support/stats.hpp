// Summary statistics.
//
// The paper's methodology (§IV-A): a performance rate for one run is the rate
// of arithmetic means of absolute counts over a block of SpMV operations;
// rates across runs are summarized with the *harmonic* mean.  P_IMB (§III-B)
// uses the *median* per-thread time to damp outliers.
#pragma once

#include <span>
#include <vector>

namespace spmvopt {

[[nodiscard]] double arithmetic_mean(std::span<const double> xs);
[[nodiscard]] double harmonic_mean(std::span<const double> xs);
[[nodiscard]] double geometric_mean(std::span<const double> xs);
/// Population standard deviation (the paper's sd features divide by N).
[[nodiscard]] double stddev(std::span<const double> xs);
/// Median; averages the two middle elements for even sizes. Copies its input.
[[nodiscard]] double median(std::span<const double> xs);
[[nodiscard]] double min_of(std::span<const double> xs);
[[nodiscard]] double max_of(std::span<const double> xs);

/// Linearly interpolated quantile, q in [0, 1] (q=0.5 == median). Copies its
/// input.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Tukey-fence outlier rejection: keeps values inside
/// [Q1 - k*IQR, Q3 + k*IQR].  Samples with fewer than 4 points (including
/// an empty span) are returned unchanged (quartiles are meaningless), and
/// the fences always admit the quartiles themselves, so a nonempty input
/// never filters to empty.
[[nodiscard]] std::vector<double> iqr_filter(std::span<const double> xs,
                                             double k = 1.5);

/// Two-sided confidence interval on the arithmetic mean, using Student's t
/// critical values (exact table for n <= 30, normal approximation above).
/// A single sample yields a degenerate [mean, mean] interval.
struct MeanCi {
  double mean = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};
[[nodiscard]] MeanCi mean_confidence(std::span<const double> xs,
                                     double confidence = 0.95);

/// One measured kernel rate: `runs` repetitions, each timing `iters_per_run`
/// back-to-back invocations (warm cache), summarized per the paper.
struct RateSummary {
  double gflops = 0.0;        ///< harmonic mean across runs
  double best_gflops = 0.0;   ///< fastest single run
  double seconds_per_op = 0.0;///< derived from `gflops` and the flop count
};

/// Summarize per-run average seconds for a kernel doing `flops` floating-point
/// operations per invocation.
[[nodiscard]] RateSummary summarize_rates(std::span<const double> sec_per_op,
                                          double flops);

}  // namespace spmvopt
