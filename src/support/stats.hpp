// Summary statistics.
//
// The paper's methodology (§IV-A): a performance rate for one run is the rate
// of arithmetic means of absolute counts over a block of SpMV operations;
// rates across runs are summarized with the *harmonic* mean.  P_IMB (§III-B)
// uses the *median* per-thread time to damp outliers.
#pragma once

#include <span>
#include <vector>

namespace spmvopt {

[[nodiscard]] double arithmetic_mean(std::span<const double> xs);
[[nodiscard]] double harmonic_mean(std::span<const double> xs);
[[nodiscard]] double geometric_mean(std::span<const double> xs);
/// Population standard deviation (the paper's sd features divide by N).
[[nodiscard]] double stddev(std::span<const double> xs);
/// Median; averages the two middle elements for even sizes. Copies its input.
[[nodiscard]] double median(std::span<const double> xs);
[[nodiscard]] double min_of(std::span<const double> xs);
[[nodiscard]] double max_of(std::span<const double> xs);

/// One measured kernel rate: `runs` repetitions, each timing `iters_per_run`
/// back-to-back invocations (warm cache), summarized per the paper.
struct RateSummary {
  double gflops = 0.0;        ///< harmonic mean across runs
  double best_gflops = 0.0;   ///< fastest single run
  double seconds_per_op = 0.0;///< derived from `gflops` and the flop count
};

/// Summarize per-run average seconds for a kernel doing `flops` floating-point
/// operations per invocation.
[[nodiscard]] RateSummary summarize_rates(std::span<const double> sec_per_op,
                                          double flops);

}  // namespace spmvopt
