#include "support/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace spmvopt {

RowPartition balanced_nnz_partition(const index_t* rowptr, index_t nrows,
                                    int nthreads) {
  if (nthreads < 1) throw std::invalid_argument("partition: nthreads < 1");
  if (nrows < 0) throw std::invalid_argument("partition: nrows < 0");
  RowPartition p;
  p.bounds.resize(static_cast<std::size_t>(nthreads) + 1);
  p.bounds[0] = 0;
  const index_t nnz = nrows > 0 ? rowptr[nrows] : 0;
  for (int t = 1; t < nthreads; ++t) {
    // First row whose starting offset reaches this thread's share boundary.
    const index_t target = static_cast<index_t>(
        (static_cast<std::int64_t>(nnz) * t) / nthreads);
    const index_t* pos = std::lower_bound(rowptr, rowptr + nrows + 1, target);
    index_t row = static_cast<index_t>(pos - rowptr);
    row = std::clamp(row, p.bounds[t - 1], nrows);
    p.bounds[t] = row;
  }
  p.bounds[static_cast<std::size_t>(nthreads)] = nrows;
  return p;
}

RowPartition static_rows_partition(index_t nrows, int nthreads) {
  if (nthreads < 1) throw std::invalid_argument("partition: nthreads < 1");
  if (nrows < 0) throw std::invalid_argument("partition: nrows < 0");
  RowPartition p;
  p.bounds.resize(static_cast<std::size_t>(nthreads) + 1);
  const index_t base = nthreads > 0 ? nrows / nthreads : nrows;
  const index_t rem = nthreads > 0 ? nrows % nthreads : 0;
  index_t row = 0;
  for (int t = 0; t < nthreads; ++t) {
    p.bounds[t] = row;
    row += base + (t < rem ? 1 : 0);
  }
  p.bounds[static_cast<std::size_t>(nthreads)] = nrows;
  return p;
}

}  // namespace spmvopt
