// Wall-clock timing utilities used by the measurement methodology of §IV-A:
// rates are computed from arithmetic means of absolute counts (flops, seconds)
// over a block of SpMV invocations, then summarized across runs with the
// harmonic mean (see stats.hpp).
#pragma once

#include <chrono>
#include <cstdint>

namespace spmvopt {

/// Seconds since an arbitrary steady epoch.
[[nodiscard]] double now_sec() noexcept;

/// Simple scoped-free stopwatch over std::chrono::steady_clock.
class Timer {
 public:
  Timer() noexcept { reset(); }

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_sec() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates elapsed time across start/stop sections (e.g. the total
/// preprocessing cost t_pre of an optimizer, summed over its phases).
class Accumulator {
 public:
  void start() noexcept { timer_.reset(); running_ = true; }
  void stop() noexcept {
    if (running_) total_ += timer_.elapsed_sec();
    running_ = false;
  }
  void add(double sec) noexcept { total_ += sec; }
  [[nodiscard]] double total_sec() const noexcept { return total_; }
  void reset() noexcept { total_ = 0.0; running_ = false; }

 private:
  Timer timer_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace spmvopt
