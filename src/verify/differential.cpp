#include "verify/differential.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "engine/execution_engine.hpp"
#include "gen/generators.hpp"
#include "kernels/bcsr_kernels.hpp"
#include "kernels/registry.hpp"
#include "kernels/sell_kernels.hpp"
#include "kernels/spmv.hpp"
#include "optimize/optimized_spmv.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/binary_io.hpp"
#include "sparse/coo.hpp"
#include "sparse/delta_csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/mmio.hpp"
#include "sparse/sell.hpp"
#include "sparse/split_csr.hpp"
#include "sparse/sym_csr.hpp"
#include "support/cpu_info.hpp"
#include "support/partition.hpp"

namespace spmvopt::verify {

namespace {

/// Poisoned scratch: pre-filled with a recognizable NaN so a kernel that
/// *skips* a row (instead of writing 0) is caught by the comparator.
std::vector<value_t> poisoned(index_t n) {
  return std::vector<value_t>(static_cast<std::size_t>(n),
                              std::numeric_limits<value_t>::quiet_NaN());
}

/// RAII guard for the global OpenMP thread-count setting used by the
/// `parallel for` kernels (the partitioned kernels take it per call).
class OmpThreadsGuard {
 public:
  explicit OmpThreadsGuard(int t) : saved_(omp_get_max_threads()) {
    omp_set_num_threads(t);
  }
  ~OmpThreadsGuard() { omp_set_num_threads(saved_); }
  OmpThreadsGuard(const OmpThreadsGuard&) = delete;
  OmpThreadsGuard& operator=(const OmpThreadsGuard&) = delete;

 private:
  int saved_;
};

class Runner {
 public:
  Runner(const CsrMatrix& A, const DiffConfig& config)
      : A_(A), config_(config) {
    x_ = config.x.empty() ? gen::test_vector(A.ncols()) : config.x;
    oracle_ = kahan_reference(A, x_);

    // Float-overflow safety for the mixed-precision variants.  A matrix
    // whose values (or whose row |a_ij*x_j| sums — the ceiling on any
    // partial sum) exceed FLT_MAX overflows float storage/accumulation to
    // inf by design, so comparing those cells would test IEEE saturation,
    // not the kernel.  The adversarial catalog's huge-values matrices
    // (~1e300) trip this; the differential simply skips non-f64 variants
    // on them.
    constexpr double kFltMax = 3.402823466e+38;
    f32_vals_ok_ = true;
    for (index_t k = 0; k < A.nnz(); ++k)
      if (std::abs(A.values()[static_cast<std::size_t>(k)]) > kFltMax) {
        f32_vals_ok_ = false;
        break;
      }
    f32_accum_ok_ = f32_vals_ok_;
    if (f32_accum_ok_)
      for (const value_t v : x_)
        if (std::abs(v) > kFltMax) {
          f32_accum_ok_ = false;
          break;
        }
    if (f32_accum_ok_)
      for (index_t i = 0; i < A.nrows() && f32_accum_ok_; ++i) {
        double abs_sum = 0.0;
        for (index_t k = A.rowptr()[i]; k < A.rowptr()[i + 1]; ++k) {
          const double a = static_cast<double>(
              static_cast<float>(A.values()[static_cast<std::size_t>(k)]));
          const double xj = static_cast<double>(static_cast<float>(
              x_[static_cast<std::size_t>(A.colind()[static_cast<std::size_t>(k)])]));
          abs_sum += std::abs(a * xj);
        }
        if (abs_sum > kFltMax) f32_accum_ok_ = false;
      }
    if (f32_vals_ok_) oracle_f32x64_ = kahan_reference(A, x_, Precision::F32F64);
    if (f32_accum_ok_) oracle_f32_ = kahan_reference(A, x_, Precision::F32);
  }

  std::vector<DiffFailure> failures;

  /// Compare `y` (the full y = A*x) against the oracle under this config.
  void expect(const std::string& variant, std::span<const value_t> y) {
    const CompareReport r = compare(oracle_, y, config_.policy);
    if (!r.pass()) failures.push_back({variant, r.to_string()});
  }

  /// Per-precision arm: selects the oracle whose input rounding matches the
  /// kernel's value mode and widens the ULP budget for float accumulation
  /// (DESIGN.md §13).  Callers must have checked prec_safe() first.
  void expect_prec(const std::string& variant, std::span<const value_t> y,
                   Precision prec) {
    if (prec == Precision::F64) {
      expect(variant, y);
      return;
    }
    const Oracle& o =
        prec == Precision::F32 ? oracle_f32_ : oracle_f32x64_;
    const CompareReport r = compare(o, y, policy_for(prec, config_.policy));
    if (!r.pass()) failures.push_back({variant, r.to_string()});
  }

  /// Whether this (matrix, x) is representable in the precision's value
  /// mode without overflowing float — false means "skip, don't fail".
  [[nodiscard]] bool prec_safe(Precision prec) const noexcept {
    switch (prec) {
      case Precision::F64: return true;
      case Precision::F32F64: return f32_vals_ok_;
      case Precision::F32: return f32_accum_ok_;
    }
    return false;
  }

  void expect_true(const std::string& variant, bool ok, const char* what) {
    if (!ok) failures.push_back({variant, what});
  }

  const CsrMatrix& A_;
  const DiffConfig& config_;
  std::vector<value_t> x_;
  Oracle oracle_;
  Oracle oracle_f32x64_;  ///< valid iff f32_vals_ok_
  Oracle oracle_f32_;     ///< valid iff f32_accum_ok_
  bool f32_vals_ok_ = false;
  bool f32_accum_ok_ = false;
};

std::string tag(const char* name, int threads) {
  std::ostringstream os;
  os << "kernel[" << name << "]/t=" << threads;
  return os.str();
}

void run_named_kernels(Runner& r, int t) {
  const CsrMatrix& A = r.A_;
  const value_t* x = r.x_.data();
  const RowPartition part = balanced_nnz_partition(A.rowptr(), A.nrows(), t);
  OmpThreadsGuard guard(t);

  // Every variant of the shared name→kernel table (the same table the CLI's
  // --kernel flag and the bench drivers resolve).  bind() declining means
  // the matrix can't satisfy the variant's requirements — not a failure.
  for (const auto& v : kernels::registry()) {
    if (v.extension && !r.config_.include_extensions) continue;
    if (!r.prec_safe(v.prec)) continue;  // would overflow float (see Runner)
    const kernels::BoundSpmv bound = v.bind(A, t);
    if (!bound) continue;
    std::vector<value_t> yk = poisoned(A.nrows());
    bound(x, yk.data());
    r.expect_prec(tag(v.name, t), yk, v.prec);

    // Multi-RHS arm: the spmm.* variants also expose a batched binding.
    // Every vector of the batch must independently match the (per-precision)
    // oracle — x is repeated, so each output slice computes the same y.
    if (v.bind_spmm != nullptr) {
      const kernels::BoundSpmm many = v.bind_spmm(A, t);
      if (!many) continue;
      constexpr index_t kBatch = 2;
      std::vector<value_t> xs;
      for (index_t b = 0; b < kBatch; ++b)
        xs.insert(xs.end(), r.x_.begin(), r.x_.end());
      std::vector<value_t> ys(
          static_cast<std::size_t>(A.nrows()) * kBatch,
          std::numeric_limits<value_t>::quiet_NaN());
      many(xs.data(), ys.data(), kBatch);
      for (index_t b = 0; b < kBatch; ++b)
        r.expect_prec(
            tag((std::string(v.name) + ".rhs" + std::to_string(b)).c_str(), t),
            std::span<const value_t>(
                ys.data() + static_cast<std::size_t>(b) * A.nrows(),
                static_cast<std::size_t>(A.nrows())),
            v.prec);
    }
  }

  // Parameter sweeps beyond each variant's registry default.
  std::vector<value_t> y = poisoned(A.nrows());
  kernels::spmv_omp_dynamic(A, x, y.data(), 1);
  r.expect(tag("omp_dynamic.1", t), y);

  for (index_t threshold : {index_t{2}, index_t{16}}) {
    const SplitCsrMatrix split = SplitCsrMatrix::split(A, threshold);
    const RowPartition short_part = balanced_nnz_partition(
        split.short_part().rowptr(), split.short_part().nrows(), t);
    y = poisoned(A.nrows());
    kernels::spmv_split(split, short_part, x, y.data());
    r.expect(tag(("split." + std::to_string(threshold)).c_str(), t), y);
  }

  // noindex computes y = R*x for the regular-access copy R of A (every
  // column index rewritten to the row index), so it gets its own oracle.
  {
    const CsrMatrix regular = kernels::make_regular_access_copy(A);
    const Oracle reg_oracle = kahan_reference(regular, r.x_);
    y = poisoned(A.nrows());
    kernels::spmv_noindex(regular, part, x, y.data());
    const CompareReport rep = compare(reg_oracle, y, r.config_.policy);
    if (!rep.pass())
      r.failures.push_back({tag("noindex", t), rep.to_string()});
  }

  // transpose computes y = A^T * x' (x' sized nrows); oracle over the
  // materialized transpose.  Atomic updates make the order nondeterministic,
  // which the bound arm of the policy absorbs.
  {
    CooMatrix coo(A.ncols(), A.nrows());
    for (index_t i = 0; i < A.nrows(); ++i)
      for (index_t k = A.rowptr()[i]; k < A.rowptr()[i + 1]; ++k)
        coo.add(A.colind()[k], i, A.values()[k]);
    coo.compress();
    const CsrMatrix at = CsrMatrix::from_coo(coo);
    const std::vector<value_t> xt = gen::test_vector(A.nrows());
    const Oracle at_oracle = kahan_reference(at, xt);
    std::vector<value_t> yt = poisoned(A.ncols());
    kernels::spmv_transpose(A, xt.data(), yt.data());
    const CompareReport rep = compare(at_oracle, yt, r.config_.policy);
    if (!rep.pass())
      r.failures.push_back({tag("transpose", t), rep.to_string()});
  }
}

void run_extension_kernels(Runner& r, int t) {
  const CsrMatrix& A = r.A_;
  const value_t* x = r.x_.data();
  OmpThreadsGuard guard(t);

  for (index_t chunk : {index_t{2}, kernels::sell_native_chunk()}) {
    for (index_t sigma : {index_t{1}, index_t{64}}) {
      const SellMatrix s = SellMatrix::from_csr(A, chunk, sigma);
      std::vector<value_t> y = poisoned(A.nrows());
      s.multiply(x, y.data());
      std::ostringstream os;
      os << "sell." << chunk << "." << sigma;
      r.expect(tag((os.str() + ".ref").c_str(), t), y);
      y = poisoned(A.nrows());
      kernels::spmv_sell(s, x, y.data());
      r.expect(tag(os.str().c_str(), t), y);
    }
  }

  for (auto [br, bc] : {std::pair<index_t, index_t>{2, 2}, {3, 5}, {4, 4}}) {
    const BcsrMatrix b = BcsrMatrix::from_csr(A, br, bc);
    std::vector<value_t> y = poisoned(A.nrows());
    b.multiply(x, y.data());
    std::ostringstream os;
    os << "bcsr." << br << "x" << bc;
    r.expect(tag((os.str() + ".ref").c_str(), t), y);
    y = poisoned(A.nrows());
    kernels::spmv_bcsr(b, x, y.data());
    r.expect(tag(os.str().c_str(), t), y);
  }
}

void run_plan_space(Runner& r, int t) {
  const CsrMatrix& A = r.A_;
  OmpThreadsGuard guard(t);
  for (const auto& plan :
       optimize::enumerate_plans(A, r.config_.include_extensions)) {
    if (!r.prec_safe(plan.precision)) continue;
    const auto spmv = optimize::OptimizedSpmv::create(A, plan, t);
    // Two runs: a kernel that leaves stale state (or races) between calls
    // must still reproduce the oracle on the second run.
    for (int round = 0; round < 2; ++round) {
      std::vector<value_t> y = poisoned(A.nrows());
      spmv.run(r.x_.data(), y.data());
      std::ostringstream os;
      os << "plan[" << plan.to_string() << "]/t=" << t << "/run" << round;
      r.expect_prec(os.str(), y, plan.precision);
    }
  }
}

/// The same plan space, executed as team bodies on a persistent engine team
/// (one engine per thread count; unpinned so the sweep works in restricted
/// containers).  Also exercises the batched run_many entry: every vector of
/// the batch must match the oracle.
void run_engine_plans(Runner& r, int t) {
  const CsrMatrix& A = r.A_;
  engine::ExecutionEngine eng({.nthreads = t, .pin = PinPolicy::None});
  for (const auto& plan :
       optimize::enumerate_plans(A, r.config_.include_extensions)) {
    if (!r.prec_safe(plan.precision)) continue;
    const auto spmv = optimize::OptimizedSpmv::create(A, plan, eng);
    for (int round = 0; round < 2; ++round) {
      std::vector<value_t> y = poisoned(A.nrows());
      spmv.run(r.x_.data(), y.data());
      std::ostringstream os;
      os << "engine-plan[" << plan.to_string() << "]/t=" << t << "/run"
         << round;
      r.expect_prec(os.str(), y, plan.precision);
    }

    // run_many routes plain-CSR plans through the fused register-blocked
    // SpMM (tolerance-equivalent to per-vector runs, not bitwise —
    // DESIGN.md §13), so each batch slice is checked against the oracle.
    constexpr int kBatch = 3;
    std::vector<value_t> xs;
    for (int b = 0; b < kBatch; ++b)
      xs.insert(xs.end(), r.x_.begin(), r.x_.end());
    std::vector<value_t> ys(static_cast<std::size_t>(A.nrows()) * kBatch,
                            std::numeric_limits<value_t>::quiet_NaN());
    spmv.run_many(xs.data(), ys.data(), kBatch);
    for (int b = 0; b < kBatch; ++b) {
      std::ostringstream os;
      os << "engine-batch[" << plan.to_string() << "]/t=" << t << "/rhs" << b;
      r.expect_prec(os.str(),
                    std::span<const value_t>(
                        ys.data() + static_cast<std::size_t>(b) * A.nrows(),
                        static_cast<std::size_t>(A.nrows())),
                    plan.precision);
    }
  }
}

}  // namespace

std::vector<int> default_thread_counts() {
  std::vector<int> t{1, 2, default_threads()};
  std::sort(t.begin(), t.end());
  t.erase(std::unique(t.begin(), t.end()), t.end());
  return t;
}

std::vector<DiffFailure> run_differential(const CsrMatrix& A,
                                          const DiffConfig& config) {
  Runner r(A, config);
  const std::vector<int> threads =
      config.thread_counts.empty() ? default_thread_counts()
                                   : config.thread_counts;
  for (int t : threads) {
    run_named_kernels(r, t);
    if (config.include_extensions) run_extension_kernels(r, t);
    run_plan_space(r, t);
    if (config.include_engine) run_engine_plans(r, t);
  }
  return std::move(r.failures);
}

std::vector<DiffFailure> check_conversions(const CsrMatrix& A) {
  std::vector<DiffFailure> failures;
  auto expect = [&failures](const std::string& variant, bool ok,
                            const char* what) {
    if (!ok) failures.push_back({variant, what});
  };

  if (const auto d = DeltaCsrMatrix::encode(A)) {
    expect("roundtrip[delta]", d->decode().equals(A),
           "decode(encode(A)) != A");
  } else {
    expect("roundtrip[delta]", !DeltaCsrMatrix::required_width(A).has_value(),
           "encode refused but required_width claims encodable");
  }

  for (index_t threshold : {index_t{2}, index_t{16},
                            SplitCsrMatrix::default_threshold(A)}) {
    const SplitCsrMatrix s = SplitCsrMatrix::split(A, threshold);
    std::ostringstream os;
    os << "roundtrip[split." << threshold << "]";
    expect(os.str(), s.nnz() == A.nnz(), "split loses/invents nonzeros");
    expect(os.str(), s.merge().equals(A), "merge(split(A)) != A");
  }

  // BCSR stores blocks densely, so a stored entry whose value is exactly 0.0
  // is indistinguishable from block fill and to_csr() drops it.  The exact
  // structural contract is therefore: to_csr equals A minus explicit zeros.
  {
    CooMatrix nz(A.nrows(), A.ncols());
    for (index_t i = 0; i < A.nrows(); ++i)
      for (index_t k = A.rowptr()[i]; k < A.rowptr()[i + 1]; ++k)
        if (A.values()[k] != 0.0) nz.add(i, A.colind()[k], A.values()[k]);
    nz.compress();
    const CsrMatrix a_nz = CsrMatrix::from_coo(nz);
    for (auto [br, bc] : {std::pair<index_t, index_t>{2, 2}, {3, 5}}) {
      const BcsrMatrix b = BcsrMatrix::from_csr(A, br, bc);
      std::ostringstream os;
      os << "roundtrip[bcsr." << br << "x" << bc << "]";
      expect(os.str(), b.to_csr().equals(a_nz),
             "to_csr(from_csr(A)) != A minus explicit zeros");
    }
  }

  if (A.nrows() == A.ncols() && A.is_symmetric()) {
    const SymCsrMatrix sym = SymCsrMatrix::from_symmetric_csr(A);
    expect("roundtrip[sym]", sym.to_full().equals(A), "to_full != A");
  }

  {
    std::stringstream buf;
    write_matrix_market(buf, A);
    expect("roundtrip[mmio]", CsrMatrix::from_coo(read_matrix_market(buf)).equals(A),
           "matrix-market read(write(A)) != A");
  }
  {
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    write_csr_binary(buf, A);
    expect("roundtrip[binary]", read_csr_binary(buf).equals(A),
           "binary read(write(A)) != A");
  }

  // SELL permutes rows internally (lossy order, not values): verify
  // numerically rather than structurally.
  {
    const std::vector<value_t> x = gen::test_vector(A.ncols());
    const Oracle oracle = kahan_reference(A, x);
    const SellMatrix s = SellMatrix::from_csr(A, 4, 16);
    std::vector<value_t> y = poisoned(A.nrows());
    s.multiply(x.data(), y.data());
    const CompareReport rep = compare(oracle, y, UlpPolicy{});
    if (!rep.pass()) failures.push_back({"roundtrip[sell]", rep.to_string()});
  }

  // Dense materialization (drops stored zeros, so compare numerically).
  if (static_cast<std::size_t>(A.nrows()) * static_cast<std::size_t>(A.ncols()) <=
      (1u << 20)) {
    const DenseMatrix d = DenseMatrix::from_csr(A);
    const std::vector<value_t> x = gen::test_vector(A.ncols());
    const Oracle oracle = kahan_reference(A, x);
    std::vector<value_t> y = poisoned(A.nrows());
    d.multiply(x, y);
    const CompareReport rep = compare(oracle, y, UlpPolicy{});
    if (!rep.pass()) failures.push_back({"roundtrip[dense]", rep.to_string()});
  }

  return failures;
}

std::string describe(const std::vector<DiffFailure>& failures) {
  if (failures.empty()) return "ok";
  std::ostringstream os;
  os << failures.size() << " variant(s) diverge:";
  for (const auto& f : failures)
    os << "\n" << f.variant << ": " << f.detail;
  return os.str();
}

}  // namespace spmvopt::verify
