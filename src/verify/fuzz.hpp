// Adversarial matrix fuzzer: deterministic pathological structures the
// friendly generators in src/gen/ never emit.
//
// Format-conversion edge cases (empty rows, dense rows, index-width
// boundaries) are the dominant source of SpMV bugs in practice, yet every
// src/gen/ family produces well-behaved patterns: nonempty rows, moderate
// gaps, values in [-1, 1].  This catalog targets the blind spots directly:
//
//   * empty rows / empty columns / an entirely empty (nnz == 0) matrix
//   * one fully dense row inside an otherwise sparse matrix
//   * in-row column gaps pinned exactly at the delta-CSR width boundaries
//     (255 | 256 for u8, 65535 | 65536 for u16-vs-unencodable)
//   * degenerate shapes: 1 x n, n x 1, single element
//   * duplicate-heavy COO input (exercises compress() summing)
//   * values spanning denormals, +-huge magnitudes, and catastrophic
//     cancellation (+big, -big, +1 in one row)
//
// Everything is deterministic: the catalog has no randomness at all, and the
// randomized mutator is fully determined by its seed (Xoshiro256).
#pragma once

#include <string>
#include <vector>

#include "sparse/csr.hpp"
#include "support/types.hpp"

namespace spmvopt::verify {

struct FuzzCase {
  std::string name;
  CsrMatrix matrix;
};

/// The deterministic adversarial catalog (~20 matrices, all small enough for
/// exhaustive differential sweeps).  Every matrix is a valid CSR; names are
/// stable identifiers usable in test output.
[[nodiscard]] std::vector<FuzzCase> adversarial_suite();

/// Randomized pathological matrix, fully determined by `seed`: a random base
/// pattern with a random subset of hazards layered on (emptied row blocks,
/// one densified row, a gap forced to a delta boundary, extreme values).
[[nodiscard]] CsrMatrix random_pathological(std::uint64_t seed);

/// Adversarial input vector: mixes ordinary values with zeros, denormals,
/// large magnitudes, and sign flips.  Deterministic in `seed`; never contains
/// NaN/inf (kernels are IEEE-clean on finite inputs; the oracle would flag
/// every row otherwise).
[[nodiscard]] std::vector<value_t> adversarial_vector(index_t n,
                                                      std::uint64_t seed = 1);

}  // namespace spmvopt::verify
