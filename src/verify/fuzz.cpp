#include "verify/fuzz.hpp"

#include <cmath>

#include "gen/generators.hpp"
#include "sparse/coo.hpp"
#include "support/rng.hpp"

namespace spmvopt::verify {

namespace {

CsrMatrix from_entries(index_t nrows, index_t ncols,
                       const std::vector<Triplet>& entries) {
  CooMatrix coo(nrows, ncols);
  coo.reserve(entries.size());
  for (const auto& e : entries) coo.add(e.row, e.col, e.value);
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

/// Two nonzeros in one row, exactly `gap` columns apart, padded with a few
/// ordinary rows so partitioning/threading paths are exercised too.
CsrMatrix gap_matrix(index_t gap) {
  const index_t ncols = gap + 8;
  std::vector<Triplet> e;
  e.push_back({0, 0, 1.5});
  e.push_back({0, gap, -2.25});
  for (index_t i = 1; i < 8; ++i) {
    e.push_back({i, i % ncols, 0.5 + static_cast<value_t>(i)});
    e.push_back({i, (i * 37 + 11) % ncols, -1.0});
  }
  return from_entries(8, ncols, e);
}

/// Sparse 96x96 matrix whose row 40 is fully dense.
CsrMatrix single_dense_row() {
  const index_t n = 96;
  std::vector<Triplet> e;
  for (index_t j = 0; j < n; ++j)
    e.push_back({40, j, 1.0 / (1.0 + static_cast<value_t>(j))});
  for (index_t i = 0; i < n; ++i) {
    if (i == 40) continue;
    e.push_back({i, (i * 13 + 5) % n, 2.0});
  }
  return from_entries(n, n, e);
}

/// 64x64 with rows only at multiples of 7 (most rows empty) and all columns
/// >= 32 untouched (empty columns).
CsrMatrix empty_rows_and_cols() {
  std::vector<Triplet> e;
  for (index_t i = 0; i < 64; i += 7)
    for (index_t j = 0; j < 32; j += 9) e.push_back({i, j, -0.75});
  return from_entries(64, 64, e);
}

/// Zero-nnz matrix (every row and column empty).
CsrMatrix all_empty() {
  CooMatrix coo(16, 16);
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

/// Duplicate-heavy COO: every entry added k times with values that must sum.
CsrMatrix duplicate_heavy() {
  const index_t n = 48;
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    const index_t j = (i * 31 + 7) % n;
    // 5 duplicates summing to i+1, plus a diagonal added twice.
    for (int k = 0; k < 5; ++k)
      coo.add(i, j, static_cast<value_t>(i + 1) / 5.0);
    coo.add(i, i, 0.5);
    coo.add(i, i, 0.5);
  }
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

CsrMatrix value_matrix(const std::vector<value_t>& vals) {
  const auto n = static_cast<index_t>(vals.size());
  std::vector<Triplet> e;
  for (index_t i = 0; i < n; ++i) {
    e.push_back({i, i, vals[static_cast<std::size_t>(i)]});
    e.push_back({i, (i + 1) % n, -vals[static_cast<std::size_t>((n - 1 - i))]});
  }
  return from_entries(n, n, e);
}

/// One row summing +big, -big, +1: catastrophic cancellation.  The exact row
/// sum is 1; naive orders may lose it entirely, which the bound arm of the
/// comparator must absorb without passing wrong-index bugs.
CsrMatrix cancellation_row() {
  std::vector<Triplet> e;
  e.push_back({0, 0, 1e16});
  e.push_back({0, 1, 1.0});
  e.push_back({0, 2, -1e16});
  for (index_t i = 1; i < 12; ++i) e.push_back({i, i % 3, 3.5});
  return from_entries(12, 3, e);
}

}  // namespace

std::vector<FuzzCase> adversarial_suite() {
  std::vector<FuzzCase> suite;
  auto add = [&suite](std::string name, CsrMatrix m) {
    suite.push_back({std::move(name), std::move(m)});
  };

  add("all-empty-16x16", all_empty());
  add("empty-rows-and-cols", empty_rows_and_cols());
  add("single-dense-row", single_dense_row());

  // Delta-CSR width boundaries.  255 is the largest u8 gap, 256 forces u16;
  // 65535 is the largest u16 gap, 65536 is unencodable (CSR fallback).
  add("gap-255-u8-max", gap_matrix(255));
  add("gap-256-u16-min", gap_matrix(256));
  add("gap-65535-u16-max", gap_matrix(65535));
  add("gap-65536-unencodable", gap_matrix(65536));

  // Degenerate shapes.
  {
    std::vector<Triplet> e;
    for (index_t j = 0; j < 300; j += 3)
      e.push_back({0, j, std::cos(static_cast<double>(j))});
    add("row-vector-1x300", from_entries(1, 300, e));
  }
  {
    std::vector<Triplet> e;
    for (index_t i = 0; i < 300; i += 2)
      e.push_back({i, 0, 1.0 + static_cast<value_t>(i % 7)});
    add("col-vector-300x1", from_entries(300, 1, e));
  }
  {
    std::vector<Triplet> e{{0, 0, -42.0}};
    add("single-element-1x1", from_entries(1, 1, e));
  }
  {
    // Wide: more columns than rows, with entries clustered at both ends.
    std::vector<Triplet> e;
    for (index_t i = 0; i < 6; ++i) {
      e.push_back({i, i, 1.0});
      e.push_back({i, 5000 - 1 - i, 2.0});
    }
    add("wide-6x5000", from_entries(6, 5000, e));
  }
  {
    // Tall: one column index repeated by every row (x[j] reuse hammering).
    std::vector<Triplet> e;
    for (index_t i = 0; i < 4000; ++i) e.push_back({i, 2, 0.25});
    add("tall-4000x3-shared-col", from_entries(4000, 3, e));
  }

  add("duplicate-heavy-coo", duplicate_heavy());

  // Load-balance adversaries for the merge-path kernel: power-law and
  // RMAT-style skew, one row holding about half of all nonzeros, empty-row
  // runs, and the degenerate 1×n / n×1 shapes as generator-built fixtures.
  add("rmat-scale8-skewed", gen::rmat(8, 8, 0.57, 0.19, 0.19, 41));
  add("power-law-heavy-tail", gen::power_law(400, 8, 1.5, 42));
  add("monster-row-1024", gen::monster_row(1024, 1024, 1, 0, 43));
  add("monster-row-empty-runs", gen::monster_row(384, 384, 1, 16, 44));
  add("monster-row-vector-1xN", gen::row_vector(2000, 160, 45));
  add("monster-col-vector-Nx1", gen::col_vector(2000, 160, 46));

  // Value-range hazards.
  add("denormal-values",
      value_matrix({5e-324, 1e-310, 2.2250738585072014e-308, 1e-300, 4.9e-324,
                    -1e-315, 3e-320, -2e-322}));
  add("huge-values",
      value_matrix({1e150, -1e150, 8.9e149, -7.7e148, 1e120, -1e99, 2e150,
                    -3e149}));
  add("mixed-magnitude",
      value_matrix({1e-308, 1e150, -1e-290, -1e140, 1.0, -1e-160, 1e80,
                    -1.0}));
  add("cancellation-row", cancellation_row());

  // A few seeded pathological mixes for breadth.
  for (std::uint64_t s : {11ull, 23ull, 37ull})
    add("random-pathological-" + std::to_string(s), random_pathological(s));
  return suite;
}

CsrMatrix random_pathological(std::uint64_t seed) {
  Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ull + 1);
  const auto nrows = static_cast<index_t>(32 + rng.bounded(160));
  // Occasionally stretch the column space past a delta boundary.
  const index_t ncols = rng.bounded(3) == 0
                            ? static_cast<index_t>(300 + rng.bounded(70000))
                            : static_cast<index_t>(32 + rng.bounded(160));
  CooMatrix coo(nrows, ncols);

  auto value = [&rng]() -> value_t {
    switch (rng.bounded(6)) {
      case 0: return rng.uniform(-1.0, 1.0) * 1e-312;  // denormal range
      case 1: return rng.uniform(-1.0, 1.0) * 1e148;   // huge
      case 2: return 0.0;                              // explicit zero entry
      default: return rng.uniform(-2.0, 2.0);
    }
  };

  // Base pattern: skip ~1/3 of rows entirely (empty rows), short rows else.
  for (index_t i = 0; i < nrows; ++i) {
    if (rng.bounded(3) == 0) continue;
    const auto len = 1 + rng.bounded(6);
    for (std::uint64_t k = 0; k < len; ++k) {
      const auto j = static_cast<index_t>(rng.bounded(
          static_cast<std::uint64_t>(ncols)));
      // Duplicates are intentional: compress() must sum them.
      coo.add(i, j, value());
      if (rng.bounded(4) == 0) coo.add(i, j, value());
    }
  }
  // Hazard: densify one row.
  if (rng.bounded(2) == 0 && ncols <= 4096) {
    const auto r = static_cast<index_t>(rng.bounded(
        static_cast<std::uint64_t>(nrows)));
    for (index_t j = 0; j < ncols; ++j) coo.add(r, j, value());
  }
  // Hazard: pin one in-row gap at a delta-width boundary.
  if (ncols > 256) {
    const auto r = static_cast<index_t>(rng.bounded(
        static_cast<std::uint64_t>(nrows)));
    const index_t gap = ncols > 65536 && rng.bounded(2) == 0 ? 65535 : 255;
    if (gap < ncols) {
      coo.add(r, 0, 1.0);
      coo.add(r, gap, -1.0);
      if (gap + 1 < ncols) coo.add(r, gap + 1, 2.0);  // gap of exactly 1 after
    }
  }
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

std::vector<value_t> adversarial_vector(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0xA5A5A5A5DEADBEEFull);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) {
    switch (rng.bounded(8)) {
      case 0: v = 0.0; break;
      case 1: v = rng.uniform(-1.0, 1.0) * 1e-313; break;  // denormal
      case 2: v = rng.uniform(-1.0, 1.0) * 1e120; break;   // large
      case 3: v = -1.0; break;
      default: v = rng.uniform(0.5, 1.5); break;
    }
  }
  return x;
}

}  // namespace spmvopt::verify
