#include "verify/oracle.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace spmvopt::verify {

namespace {

/// Monotone mapping of a double onto the integer line: order-preserving,
/// adjacent representable doubles map to adjacent integers.
std::int64_t ordered_bits(double v) noexcept {
  const auto bits = std::bit_cast<std::int64_t>(v);
  return bits >= 0 ? bits : std::numeric_limits<std::int64_t>::min() - bits;
}

}  // namespace

std::uint64_t ulp_distance(double a, double b) noexcept {
  if (std::isnan(a) || std::isnan(b))
    return std::numeric_limits<std::uint64_t>::max();
  if (std::isinf(a) || std::isinf(b)) {
    // Equal infinities are distance 0; anything else is maximal.
    return a == b ? 0 : std::numeric_limits<std::uint64_t>::max();
  }
  const std::int64_t ia = ordered_bits(a);
  const std::int64_t ib = ordered_bits(b);
  // Difference of two values in [min - max_bits, max_bits] fits unsigned.
  return ia >= ib ? static_cast<std::uint64_t>(ia) - static_cast<std::uint64_t>(ib)
                  : static_cast<std::uint64_t>(ib) - static_cast<std::uint64_t>(ia);
}

Oracle kahan_reference(const CsrMatrix& A, std::span<const value_t> x) {
  if (x.size() != static_cast<std::size_t>(A.ncols()))
    throw std::invalid_argument("kahan_reference: x size != ncols");
  constexpr double eps = std::numeric_limits<double>::epsilon();
  const index_t* rowptr = A.rowptr();
  const index_t* colind = A.colind();
  const value_t* vals = A.values();

  Oracle o;
  o.y.resize(static_cast<std::size_t>(A.nrows()));
  o.row_bound.resize(static_cast<std::size_t>(A.nrows()));
  for (index_t i = 0; i < A.nrows(); ++i) {
    // Neumaier's variant of Kahan summation (Kahan–Babuška): unlike plain
    // Kahan it keeps the compensation when the next term dwarfs the running
    // sum, so 1e16 + 1 - 1e16 comes out exactly 1.
    value_t sum = 0.0;
    value_t c = 0.0;      // accumulated compensation
    double abs_sum = 0.0; // sum of |a_ij * x_j| for the error bound
    for (index_t j = rowptr[i]; j < rowptr[i + 1]; ++j) {
      const value_t term = vals[j] * x[static_cast<std::size_t>(colind[j])];
      abs_sum += std::abs(term);
      const value_t s = sum + term;
      if (std::abs(sum) >= std::abs(term))
        c += (sum - s) + term;
      else
        c += (term - s) + sum;
      sum = s;
    }
    const auto nnz_i = static_cast<double>(rowptr[i + 1] - rowptr[i]);
    o.y[static_cast<std::size_t>(i)] = sum + c;
    o.row_bound[static_cast<std::size_t>(i)] = (nnz_i + 1.0) * eps * abs_sum;
  }
  return o;
}

Oracle kahan_reference(const CsrMatrix& A, std::span<const value_t> x,
                       Precision prec) {
  if (prec == Precision::F64) return kahan_reference(A, x);
  if (x.size() != static_cast<std::size_t>(A.ncols()))
    throw std::invalid_argument("kahan_reference: x size != ncols");
  // Accumulation epsilon: what the kernel's adds round with.
  const double eps = prec == Precision::F32
                         ? static_cast<double>(
                               std::numeric_limits<float>::epsilon())
                         : std::numeric_limits<double>::epsilon();
  const bool round_x = prec == Precision::F32;
  const index_t* rowptr = A.rowptr();
  const index_t* colind = A.colind();
  const value_t* vals = A.values();

  Oracle o;
  o.y.resize(static_cast<std::size_t>(A.nrows()));
  o.row_bound.resize(static_cast<std::size_t>(A.nrows()));
  for (index_t i = 0; i < A.nrows(); ++i) {
    value_t sum = 0.0;
    value_t c = 0.0;
    double abs_sum = 0.0;
    for (index_t j = rowptr[i]; j < rowptr[i + 1]; ++j) {
      // Round the storage exactly as the mixed-precision kernel does: the
      // value stream is float, and under F32 the packed operands are too.
      const value_t a = static_cast<double>(static_cast<float>(vals[j]));
      value_t xj = x[static_cast<std::size_t>(colind[j])];
      if (round_x) xj = static_cast<double>(static_cast<float>(xj));
      const value_t term = a * xj;
      abs_sum += std::abs(term);
      const value_t s = sum + term;
      if (std::abs(sum) >= std::abs(term))
        c += (sum - s) + term;
      else
        c += (term - s) + sum;
      sum = s;
    }
    const auto nnz_i = static_cast<double>(rowptr[i + 1] - rowptr[i]);
    o.y[static_cast<std::size_t>(i)] = sum + c;
    o.row_bound[static_cast<std::size_t>(i)] = (nnz_i + 1.0) * eps * abs_sum;
  }
  return o;
}

UlpPolicy policy_for(Precision prec, UlpPolicy base) {
  if (prec != Precision::F32) return base;
  // 1 float ULP == 2^29 double ULPs for normal magnitudes (52 - 23 mantissa
  // bits); saturate instead of wrapping for pathological base budgets.
  constexpr std::uint64_t kShift = 29;
  UlpPolicy p = base;
  p.max_ulps = base.max_ulps >= (std::uint64_t{1} << (64 - kShift))
                   ? std::numeric_limits<std::uint64_t>::max()
                   : base.max_ulps << kShift;
  return p;
}

CompareReport compare(const Oracle& oracle, std::span<const value_t> actual,
                      const UlpPolicy& policy) {
  if (actual.size() != oracle.y.size())
    throw std::invalid_argument("compare: actual size != oracle size");
  constexpr std::size_t kMaxReported = 16;

  CompareReport r;
  r.rows_checked = static_cast<index_t>(oracle.y.size());
  for (std::size_t i = 0; i < oracle.y.size(); ++i) {
    const value_t expected = oracle.y[i];
    const value_t got = actual[i];
    const std::uint64_t ulps = ulp_distance(expected, got);
    if (ulps > r.worst_ulps) {
      r.worst_ulps = ulps;
      r.worst_row = static_cast<index_t>(i);
    }
    if (ulps <= policy.max_ulps) continue;
    const double bound = policy.bound_factor * oracle.row_bound[i];
    const double diff = std::abs(expected - got);
    // NaN/inf mismatches have diff NaN/inf and fail both arms.
    if (diff <= bound) continue;
    if (r.failures.size() < kMaxReported)
      r.failures.push_back({static_cast<index_t>(i), expected, got, ulps,
                            oracle.row_bound[i]});
  }
  return r;
}

std::string CompareReport::to_string() const {
  if (pass()) return "pass";
  std::ostringstream os;
  os.precision(17);
  os << failures.size() << "+ row(s) diverge:";
  for (const auto& f : failures)
    os << "\n  row " << f.row << ": expected " << f.expected << " actual "
       << f.actual << " (ulps=" << f.ulps << ", bound=" << f.bound << ")";
  return os.str();
}

CompareReport check_spmv(const CsrMatrix& A, std::span<const value_t> x,
                         std::span<const value_t> y, const UlpPolicy& policy) {
  return compare(kahan_reference(A, x), y, policy);
}

}  // namespace spmvopt::verify
