// ULP-aware comparison against a compensated-summation reference oracle.
//
// Every kernel/format variant in the pool computes the same y = A*x, but in a
// different floating-point order (SIMD lane sums, two-accumulator unrolling,
// per-thread partials, atomic scatter).  Fixed EXPECT_NEAR tolerances either
// mask real divergences (too loose on tiny rows) or flake on ill-conditioned
// ones (too tight when a row cancels).  This oracle is principled instead:
//
//   * the reference y is computed with compensated summation (Neumaier's
//     variant of Kahan), whose error is O(eps)*sum|terms| independent of the
//     row length and which survives terms that dwarf the running sum;
//   * each row also gets a forward-error *bound* for any summation order,
//       bound_i = (nnz_i + 1) * eps * sum_j |a_ij * x_j|,
//     the classical worst case for recursive summation with per-product
//     rounding — every correct reordering of the row sum lands within it;
//   * a variant's row passes when it is within `max_ulps` ULPs of the
//     reference OR within `bound_factor * bound_i` absolutely.  The ULP arm
//     catches well-conditioned rows byte-for-byte-ish; the bound arm admits
//     legitimate reordering error on cancellation-heavy rows without ever
//     admitting a wrong-index/wrong-value bug (which lands orders of
//     magnitude outside the bound).
//
// Failures carry per-row attribution (row id, expected, actual, ULP
// distance, bound) so a differential failure names the offending row.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sparse/csr.hpp"
#include "support/dtype.hpp"
#include "support/types.hpp"

namespace spmvopt::verify {

/// Distance in units-in-the-last-place between two doubles, using the
/// monotone integer mapping of the IEEE-754 total order (negatives mirrored
/// below zero, so ulp_distance(-0.0, +0.0) == 0 and the distance is
/// well-defined across the sign boundary).  Any NaN, or an infinity paired
/// with a finite value, yields UINT64_MAX.
[[nodiscard]] std::uint64_t ulp_distance(double a, double b) noexcept;

/// Acceptance policy for compare(): a row passes via either arm.
struct UlpPolicy {
  std::uint64_t max_ulps = 64;  ///< ULP arm: |reference - actual| in ULPs
  double bound_factor = 8.0;    ///< bound arm: multiples of the row's bound
};

/// Kahan reference y plus the per-row reordering-error bound.
struct Oracle {
  std::vector<value_t> y;
  std::vector<double> row_bound;  ///< (nnz_i + 1) * eps * sum|a_ij * x_j|
};

/// Compute the oracle for y = A*x.  `x` must have A.ncols() entries.
[[nodiscard]] Oracle kahan_reference(const CsrMatrix& A,
                                     std::span<const value_t> x);

/// Per-precision oracle (DESIGN.md §13): models the error of a kernel
/// running in `prec`'s value mode.  The reference first rounds the inputs
/// exactly as the kernel's storage does — matrix values through float for
/// F32/F32F64, and x through float for F32 — then sums in compensated
/// double, so the reference is the (near-)exact answer for the values the
/// kernel actually saw.  The row bound uses the ACCUMULATION epsilon
/// (float for F32, double otherwise): the classical recursive-summation
/// worst case in the arithmetic the kernel adds in.
[[nodiscard]] Oracle kahan_reference(const CsrMatrix& A,
                                     std::span<const value_t> x,
                                     Precision prec);

/// Widen a policy's ULP arm for a precision's accumulation width.  Float
/// accumulation (F32) quantizes results to float: one float ULP spans
/// 2^29 double ULPs at the same magnitude, so the double-ULP budget scales
/// by that factor.  F64 and F32F64 accumulate in double and keep `base`
/// unchanged.
[[nodiscard]] UlpPolicy policy_for(Precision prec, UlpPolicy base = {});

/// One failing row, with everything needed to debug it.
struct RowFailure {
  index_t row = 0;
  value_t expected = 0.0;
  value_t actual = 0.0;
  std::uint64_t ulps = 0;
  double bound = 0.0;
};

struct CompareReport {
  std::vector<RowFailure> failures;  ///< empty == pass (capped at 16 rows)
  std::uint64_t worst_ulps = 0;      ///< over all rows, failing or not
  index_t worst_row = 0;
  index_t rows_checked = 0;

  [[nodiscard]] bool pass() const noexcept { return failures.empty(); }
  /// "row 17: expected 1.25 actual 1.5 (ulps=9007199254740992, bound=3e-16)"
  [[nodiscard]] std::string to_string() const;
};

/// Check `actual` (size oracle.y.size()) against the oracle under `policy`.
[[nodiscard]] CompareReport compare(const Oracle& oracle,
                                    std::span<const value_t> actual,
                                    const UlpPolicy& policy = {});

/// Convenience: oracle + compare in one call.
[[nodiscard]] CompareReport check_spmv(const CsrMatrix& A,
                                       std::span<const value_t> x,
                                       std::span<const value_t> y,
                                       const UlpPolicy& policy = {});

}  // namespace spmvopt::verify
