// Differential kernel verification: every variant vs. the Kahan oracle.
//
// The optimizer's whole premise is that the kernel/format variants are
// interchangeable — any plan may be selected for any matrix class, so a
// silent divergence in one variant corrupts every downstream result that
// plan is picked for.  run_differential() enumerates:
//
//   * every named kernel in kernels/spmv.hpp (serial, static, balanced,
//     dynamic, guided, auto, prefetch, vector, unroll+vector, delta x2,
//     split, sym when symmetric, transpose, noindex on the regular copy);
//   * the SELL-C-σ and BCSR extension kernels over several shape parameters;
//   * the full optimizer plan space (optimize::enumerate_plans), which covers
//     all composed schedule x prefetch x compute x format instantiations;
//   * the same plan space executed through a persistent-team ExecutionEngine
//     (engine-bound OptimizedSpmv, including a batched run_many pass) — the
//     team-body code paths must match the fork/join kernels;
//
// each at thread counts {1, 2, hardware max}, comparing against the
// compensated-summation oracle with the ULP-aware policy of oracle.hpp.
// check_conversions() additionally round-trips the matrix through every
// lossless conversion in src/sparse/ (delta, split, BCSR, SymCSR, Matrix
// Market, binary) and cross-checks the lossy-order ones (SELL) numerically.
//
// Both return a list of failures (empty == pass); each failure names the
// variant, the thread count, and the offending rows.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sparse/csr.hpp"
#include "support/types.hpp"
#include "verify/oracle.hpp"

namespace spmvopt::verify {

struct DiffConfig {
  /// Thread counts to sweep; empty means {1, 2, hardware max} (deduplicated).
  std::vector<int> thread_counts;
  UlpPolicy policy;
  /// Include the SELL/BCSR whole-format extension plans.
  bool include_extensions = true;
  /// Additionally execute every plan through a persistent-team
  /// ExecutionEngine (one per thread count, unpinned) and compare against
  /// the same oracle — the engine path must be as correct as fork/join.
  bool include_engine = true;
  /// Input vector; empty means gen::test_vector(A.ncols()).
  std::vector<value_t> x;
};

struct DiffFailure {
  std::string variant;  ///< e.g. "kernel[unroll_vector]/t=2" or "plan[auto+pf]"
  std::string detail;   ///< CompareReport::to_string() or mismatch description
};

/// Human-readable join of failures ("ok" when empty) for test messages.
[[nodiscard]] std::string describe(const std::vector<DiffFailure>& failures);

/// Run every kernel/format/schedule/thread-count variant of y = A*x against
/// the oracle.  Deterministic; allocates only per-variant scratch.
[[nodiscard]] std::vector<DiffFailure> run_differential(
    const CsrMatrix& A, const DiffConfig& config = {});

/// Round-trip the matrix through every conversion in src/sparse/.
[[nodiscard]] std::vector<DiffFailure> check_conversions(const CsrMatrix& A);

/// The thread counts a default-config sweep uses on this host.
[[nodiscard]] std::vector<int> default_thread_counts();

}  // namespace spmvopt::verify
