#include "report/environment.hpp"

#include <cstdio>
#include <cstdlib>
#include <type_traits>

#include "perf/stream.hpp"
#include "support/cpu_info.hpp"
#include "support/env.hpp"

namespace spmvopt::report {

EnvironmentInfo capture_environment(const perf::MeasureConfig& measure,
                                    double scale, int threads) {
  const CpuInfo& cpu = cpu_info();
  EnvironmentInfo env;
  env.cpu_model = cpu.model_name;
  env.logical_cpus = cpu.logical_cpus;
  env.threads = threads > 0 ? threads : default_threads();
  env.cache_line_bytes = cpu.cache_line_bytes;
  env.llc_bytes = cpu.llc_bytes;
  env.avx2 = cpu.has_avx2;
  env.avx512f = cpu.has_avx512f;
  env.iterations = measure.iterations;
  env.runs = measure.runs;
  env.warmup = measure.warmup;
  env.suite_scale = scale;
  return env;
}

Json environment_to_json(const EnvironmentInfo& env) {
  Json j = Json::object();
  j.set("cpu_model", env.cpu_model);
  j.set("logical_cpus", env.logical_cpus);
  j.set("threads", env.threads);
  j.set("cache_line_bytes", env.cache_line_bytes);
  j.set("llc_bytes", env.llc_bytes);
  j.set("avx2", env.avx2);
  j.set("avx512f", env.avx512f);
  j.set("iterations", env.iterations);
  j.set("runs", env.runs);
  j.set("warmup", env.warmup);
  j.set("suite_scale", env.suite_scale);
  return j;
}

namespace {
Error missing(const char* key) {
  return Error(ErrorCategory::Format,
               std::string("environment block: missing or mistyped '") + key +
                   "'");
}
}  // namespace

Expected<EnvironmentInfo> environment_from_json(const Json& j) {
  if (!j.is_object())
    return Error(ErrorCategory::Format, "environment block must be an object");
  EnvironmentInfo env;
  const auto str = [&](const char* key, std::string* out) {
    const Json* v = j.find(key);
    if (v == nullptr || !v->is_string()) return false;
    *out = v->as_string();
    return true;
  };
  const auto num = [&](const char* key, auto* out) {
    const Json* v = j.find(key);
    if (v == nullptr || !v->is_number()) return false;
    *out = static_cast<std::remove_pointer_t<decltype(out)>>(v->as_number());
    return true;
  };
  const auto boolean = [&](const char* key, bool* out) {
    const Json* v = j.find(key);
    if (v == nullptr || !v->is_bool()) return false;
    *out = v->as_bool();
    return true;
  };
  if (!str("cpu_model", &env.cpu_model)) return missing("cpu_model");
  if (!num("logical_cpus", &env.logical_cpus)) return missing("logical_cpus");
  if (!num("threads", &env.threads)) return missing("threads");
  if (!num("cache_line_bytes", &env.cache_line_bytes))
    return missing("cache_line_bytes");
  if (!num("llc_bytes", &env.llc_bytes)) return missing("llc_bytes");
  if (!boolean("avx2", &env.avx2)) return missing("avx2");
  if (!boolean("avx512f", &env.avx512f)) return missing("avx512f");
  if (!num("iterations", &env.iterations)) return missing("iterations");
  if (!num("runs", &env.runs)) return missing("runs");
  if (!num("warmup", &env.warmup)) return missing("warmup");
  if (!num("suite_scale", &env.suite_scale)) return missing("suite_scale");
  return env;
}

double suite_scale() {
  const std::string s = env_string("SPMVOPT_SCALE", "");
  if (!s.empty()) {
    const double v = std::atof(s.c_str());
    if (v > 0.0 && v <= 1.0) return v;
    std::fprintf(stderr, "warning: ignoring bad SPMVOPT_SCALE '%s'\n",
                 s.c_str());
  }
  return quick_mode() ? 0.35 : 1.0;
}

void print_host_preamble(const char* bench_name) {
  const CpuInfo& cpu = cpu_info();
  std::printf("# %s\n", bench_name);
  std::printf("# host: %s | %d threads | LLC %zu KiB | line %zu B\n",
              cpu.model_name.empty() ? "(unknown cpu)" : cpu.model_name.c_str(),
              default_threads(), cpu.llc_bytes / 1024, cpu.cache_line_bytes);
  const perf::BandwidthProfile& bw = perf::bandwidth_profile();
  std::printf("# STREAM triad: %.1f GB/s (DRAM), %.1f GB/s (LLC)\n",
              bw.dram_gbps, bw.llc_gbps);
  const perf::MeasureConfig m = perf::MeasureConfig::from_env();
  std::printf("# methodology: %d runs x %d iterations, harmonic mean; "
              "suite scale %.2f\n\n",
              m.runs, m.iterations, suite_scale());
}

}  // namespace spmvopt::report
