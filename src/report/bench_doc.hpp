// Schema-versioned bench documents (BENCH_kernels.json / BENCH_plans.json).
//
// One document is one orchestrated sweep: suite × variants × thread counts,
// with the measurement environment captured alongside.  The derived
// summaries (per-variant and per-bottleneck-class harmonic means, the
// paper's Table 4/5 aggregation) are recomputed from `results` on every
// serialization, so a hand-edited document can never carry stale summaries.
//
// Schema (version 1):
//   {
//     "schema_version": 1,
//     "kind": "kernels" | "plans",
//     "suite": "smoke" | "full",
//     "environment": { cpu_model, logical_cpus, threads, ... },
//     "results": [ { matrix, family, classes, variant, plan, threads,
//                    nrows, ncols, nnz, gflops, ci_lo, ci_hi,
//                    samples_kept, samples_rejected }, ... ],
//     "summary": {
//       "variant_hmean": [ { variant, gflops_hmean, matrices }, ... ],
//       "class_hmean":   [ { classes, variant, gflops_hmean, matrices }, ... ]
//     }
//   }
#pragma once

#include <string>
#include <vector>

#include "report/environment.hpp"
#include "report/json.hpp"

namespace spmvopt::report {

inline constexpr int kBenchSchemaVersion = 1;

/// One measured (matrix, variant, threads) cell.
struct BenchResult {
  std::string matrix;   ///< suite entry name ("tiny-dense", "poisson3Db")
  std::string family;   ///< generator family
  std::string classes;  ///< heuristic bottleneck classes, "{ML, IMB}" style
  std::string variant;  ///< requested variant key ("baseline", "pf+vec", ...)
  std::string plan;     ///< what actually ran (after degradation), or "serial"
  int threads = 1;
  /// Executed on a persistent-team ExecutionEngine (vs per-call fork/join).
  /// Serialized always; absent in pre-engine documents, parsed as false, so
  /// the schema version is unchanged.
  bool engine = false;
  std::int64_t nrows = 0;
  std::int64_t ncols = 0;
  std::int64_t nnz = 0;
  double gflops = 0.0;        ///< harmonic mean of the kept samples
  double ci_lo = 0.0;         ///< 95% CI on the mean of the kept samples
  double ci_hi = 0.0;
  int samples_kept = 0;       ///< runs surviving IQR outlier rejection
  int samples_rejected = 0;

  [[nodiscard]] bool operator==(const BenchResult&) const = default;
};

struct BenchDocument {
  int schema_version = kBenchSchemaVersion;
  std::string kind;   ///< "kernels" | "plans"
  std::string suite;  ///< "smoke" | "full"
  EnvironmentInfo environment;
  std::vector<BenchResult> results;

  [[nodiscard]] bool operator==(const BenchDocument&) const = default;
};

/// A derived harmonic-mean aggregate (present in the serialized summary).
struct HarmonicSummary {
  std::string classes;  ///< empty for the all-matrices per-variant rows
  std::string variant;
  double gflops_hmean = 0.0;
  int matrices = 0;  ///< cells aggregated
};

/// Per-variant harmonic means, then per (classes, variant) harmonic means,
/// both in first-appearance order.  Cells with gflops <= 0 are skipped.
[[nodiscard]] std::vector<HarmonicSummary> summarize(const BenchDocument& doc);

[[nodiscard]] Json document_to_json(const BenchDocument& doc);
[[nodiscard]] Expected<BenchDocument> document_from_json(const Json& j);

/// File I/O with categorized errors (Io for open/write, Format for parse or
/// schema violations; context names the path).
[[nodiscard]] Expected<BenchDocument> load_bench_document(
    const std::string& path);
[[nodiscard]] Status save_bench_document(const std::string& path,
                                         const BenchDocument& doc);

}  // namespace spmvopt::report
