#include "report/bench_doc.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "support/stats.hpp"

namespace spmvopt::report {

std::vector<HarmonicSummary> summarize(const BenchDocument& doc) {
  // Group positive-rate cells by variant and by (classes, variant), keeping
  // first-appearance order so the serialized summary is deterministic.
  std::vector<HarmonicSummary> out;
  std::vector<std::pair<std::string, std::vector<double>>> by_variant;
  std::vector<std::pair<std::pair<std::string, std::string>,
                        std::vector<double>>>
      by_class;
  for (const BenchResult& r : doc.results) {
    if (r.gflops <= 0.0) continue;
    auto vit = std::find_if(by_variant.begin(), by_variant.end(),
                            [&](const auto& p) { return p.first == r.variant; });
    if (vit == by_variant.end()) {
      by_variant.push_back({r.variant, {}});
      vit = std::prev(by_variant.end());
    }
    vit->second.push_back(r.gflops);
    const std::pair<std::string, std::string> key{r.classes, r.variant};
    auto cit = std::find_if(by_class.begin(), by_class.end(),
                            [&](const auto& p) { return p.first == key; });
    if (cit == by_class.end()) {
      by_class.push_back({key, {}});
      cit = std::prev(by_class.end());
    }
    cit->second.push_back(r.gflops);
  }
  for (const auto& [variant, rates] : by_variant)
    out.push_back({"", variant, harmonic_mean(rates),
                   static_cast<int>(rates.size())});
  for (const auto& [key, rates] : by_class)
    out.push_back({key.first, key.second, harmonic_mean(rates),
                   static_cast<int>(rates.size())});
  return out;
}

Json document_to_json(const BenchDocument& doc) {
  Json j = Json::object();
  j.set("schema_version", doc.schema_version);
  j.set("kind", doc.kind);
  j.set("suite", doc.suite);
  j.set("environment", environment_to_json(doc.environment));
  Json results = Json::array();
  for (const BenchResult& r : doc.results) {
    Json cell = Json::object();
    cell.set("matrix", r.matrix);
    cell.set("family", r.family);
    cell.set("classes", r.classes);
    cell.set("variant", r.variant);
    cell.set("plan", r.plan);
    cell.set("threads", r.threads);
    cell.set("engine", r.engine);
    cell.set("nrows", r.nrows);
    cell.set("ncols", r.ncols);
    cell.set("nnz", r.nnz);
    cell.set("gflops", r.gflops);
    cell.set("ci_lo", r.ci_lo);
    cell.set("ci_hi", r.ci_hi);
    cell.set("samples_kept", r.samples_kept);
    cell.set("samples_rejected", r.samples_rejected);
    results.push(std::move(cell));
  }
  j.set("results", std::move(results));

  Json variant_hmean = Json::array();
  Json class_hmean = Json::array();
  for (const HarmonicSummary& s : summarize(doc)) {
    Json row = Json::object();
    if (!s.classes.empty()) row.set("classes", s.classes);
    row.set("variant", s.variant);
    row.set("gflops_hmean", s.gflops_hmean);
    row.set("matrices", s.matrices);
    (s.classes.empty() ? variant_hmean : class_hmean).push(std::move(row));
  }
  Json summary = Json::object();
  summary.set("variant_hmean", std::move(variant_hmean));
  summary.set("class_hmean", std::move(class_hmean));
  j.set("summary", std::move(summary));
  return j;
}

namespace {

Error schema(std::string what) {
  return Error(ErrorCategory::Format, "bench document: " + std::move(what));
}

bool get_string(const Json& j, const char* key, std::string* out) {
  const Json* v = j.find(key);
  if (v == nullptr || !v->is_string()) return false;
  *out = v->as_string();
  return true;
}

template <class T>
bool get_number(const Json& j, const char* key, T* out) {
  const Json* v = j.find(key);
  if (v == nullptr || !v->is_number()) return false;
  *out = static_cast<T>(v->as_number());
  return true;
}

Expected<BenchResult> result_from_json(const Json& j, std::size_t index) {
  const auto bad = [&](const char* key) {
    return schema("results[" + std::to_string(index) +
                  "]: missing or mistyped '" + key + "'");
  };
  if (!j.is_object())
    return schema("results[" + std::to_string(index) + "] must be an object");
  BenchResult r;
  if (!get_string(j, "matrix", &r.matrix)) return bad("matrix");
  if (!get_string(j, "family", &r.family)) return bad("family");
  if (!get_string(j, "classes", &r.classes)) return bad("classes");
  if (!get_string(j, "variant", &r.variant)) return bad("variant");
  if (!get_string(j, "plan", &r.plan)) return bad("plan");
  if (!get_number(j, "threads", &r.threads)) return bad("threads");
  // Pre-engine documents lack the key (defaults to false); a present key
  // must still be a boolean.
  if (const Json* e = j.find("engine")) {
    if (!e->is_bool()) return bad("engine");
    r.engine = e->as_bool();
  }
  if (!get_number(j, "nrows", &r.nrows)) return bad("nrows");
  if (!get_number(j, "ncols", &r.ncols)) return bad("ncols");
  if (!get_number(j, "nnz", &r.nnz)) return bad("nnz");
  if (!get_number(j, "gflops", &r.gflops)) return bad("gflops");
  if (!get_number(j, "ci_lo", &r.ci_lo)) return bad("ci_lo");
  if (!get_number(j, "ci_hi", &r.ci_hi)) return bad("ci_hi");
  if (!get_number(j, "samples_kept", &r.samples_kept))
    return bad("samples_kept");
  if (!get_number(j, "samples_rejected", &r.samples_rejected))
    return bad("samples_rejected");
  if (r.gflops < 0.0 || r.ci_lo > r.ci_hi)
    return schema("results[" + std::to_string(index) +
                  "]: negative rate or inverted confidence interval");
  return r;
}

}  // namespace

Expected<BenchDocument> document_from_json(const Json& j) {
  if (!j.is_object()) return schema("top level must be an object");
  BenchDocument doc;
  if (!get_number(j, "schema_version", &doc.schema_version))
    return schema("missing 'schema_version'");
  if (doc.schema_version != kBenchSchemaVersion)
    return schema("unsupported schema_version " +
                  std::to_string(doc.schema_version) + " (expected " +
                  std::to_string(kBenchSchemaVersion) + ")");
  if (!get_string(j, "kind", &doc.kind)) return schema("missing 'kind'");
  if (doc.kind != "kernels" && doc.kind != "plans")
    return schema("kind must be 'kernels' or 'plans', got '" + doc.kind + "'");
  if (!get_string(j, "suite", &doc.suite)) return schema("missing 'suite'");
  const Json* env = j.find("environment");
  if (env == nullptr) return schema("missing 'environment'");
  auto parsed_env = environment_from_json(*env);
  if (!parsed_env.ok()) return std::move(parsed_env).error();
  doc.environment = std::move(parsed_env).value();
  const Json* results = j.find("results");
  if (results == nullptr || !results->is_array())
    return schema("missing 'results' array");
  doc.results.reserve(results->items().size());
  for (std::size_t i = 0; i < results->items().size(); ++i) {
    auto r = result_from_json(results->items()[i], i);
    if (!r.ok()) return std::move(r).error();
    doc.results.push_back(std::move(r).value());
  }
  // The summary block is derived; it is regenerated on save and therefore
  // deliberately not parsed back.
  return doc;
}

Expected<BenchDocument> load_bench_document(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return Error(ErrorCategory::Io, "cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad())
    return Error(ErrorCategory::Io, "read failed for '" + path + "'");
  auto parsed = Json::parse(buf.str());
  if (!parsed.ok())
    return std::move(parsed).error().with_context("while reading '" + path +
                                                  "'");
  return document_from_json(parsed.value())
      .with_context("while reading '" + path + "'");
}

Status save_bench_document(const std::string& path, const BenchDocument& doc) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    return Error(ErrorCategory::Io, "cannot open '" + path + "' for writing");
  out << document_to_json(doc).dump();
  out.flush();
  if (!out)
    return Error(ErrorCategory::Io, "write failed for '" + path + "'");
  return Unit{};
}

}  // namespace spmvopt::report
