#include "report/json.hpp"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace spmvopt::report {

const Json* Json::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members())
    if (k == key) return &v;
  return nullptr;
}

Json& Json::set(std::string_view key, Json value) {
  assert(is_object());
  for (auto& [k, v] : members())
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  members().emplace_back(std::string(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  assert(is_array());
  items().push_back(std::move(value));
  return *this;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {  // JSON has no NaN/Inf
    out += "null";
    return;
  }
  // Integral values inside the exact-double range print without a fraction
  // (schema versions, counts); everything else uses the shortest
  // representation that round-trips.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    const auto r = std::to_chars(buf, buf + sizeof buf,
                                 static_cast<std::int64_t>(d));
    out.append(buf, r.ptr);
    return;
  }
  char buf[40];
  const auto r = std::to_chars(buf, buf + sizeof buf, d);
  out.append(buf, r.ptr);
}

void dump_value(const Json& v, std::string& out, int indent, int depth) {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    append_number(out, v.as_number());
  } else if (v.is_string()) {
    append_escaped(out, v.as_string());
  } else if (v.is_array()) {
    if (v.items().empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const Json& item : v.items()) {
      if (!first) out += ',';
      first = false;
      newline_pad(depth + 1);
      dump_value(item, out, indent, depth + 1);
    }
    newline_pad(depth);
    out += ']';
  } else {
    if (v.members().empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : v.members()) {
      if (!first) out += ',';
      first = false;
      newline_pad(depth + 1);
      append_escaped(out, key);
      out += pretty ? ": " : ":";
      dump_value(value, out, indent, depth + 1);
    }
    newline_pad(depth);
    out += '}';
  }
}

/// Recursive-descent parser over the document's byte range.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Expected<Json> parse_document() {
    skip_ws();
    auto v = parse_value();
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return v;
  }

 private:
  Expected<Json> parse_value() {
    if (depth_ > kMaxDepth) return fail("nesting deeper than 128 levels");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s.ok()) return std::move(s).error();
        return Json(std::move(s).value());
      }
      case 't': return parse_literal("true", Json(true));
      case 'f': return parse_literal("false", Json(false));
      case 'n': return parse_literal("null", Json(nullptr));
      default: return parse_number();
    }
  }

  Expected<Json> parse_object() {
    ++pos_;  // '{'
    ++depth_;
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') return fail("expected object key");
      auto key = parse_string();
      if (!key.ok()) return std::move(key).error();
      if (obj.find(key.value()) != nullptr)
        return fail("duplicate key '" + key.value() + "'");
      skip_ws();
      if (peek() != ':') return fail("expected ':' after key");
      ++pos_;
      skip_ws();
      auto value = parse_value();
      if (!value.ok()) return value;
      obj.members().emplace_back(std::move(key).value(),
                                 std::move(value).value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return obj;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  Expected<Json> parse_array() {
    ++pos_;  // '['
    ++depth_;
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return arr;
    }
    while (true) {
      skip_ws();
      auto value = parse_value();
      if (!value.ok()) return value;
      arr.items().push_back(std::move(value).value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return arr;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  Expected<std::string> parse_string() {
    ++pos_;  // opening '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return fail("dangling escape");
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad hex digit in \\u escape");
          }
          pos_ += 4;
          // Encode the BMP codepoint as UTF-8 (surrogate pairs are not
          // emitted by this writer and are rejected on input).
          if (code >= 0xD800 && code <= 0xDFFF)
            return fail("surrogate \\u escapes are not supported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  Expected<Json> parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    double value = 0.0;
    const auto r =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (r.ec != std::errc{} || r.ptr != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      return fail("malformed number");
    }
    return Json(value);
  }

  Expected<Json> parse_literal(std::string_view word, Json value) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("malformed literal");
    pos_ += word.size();
    return value;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] char peek() const noexcept {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Error fail(std::string what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return Error(ErrorCategory::Format,
                 "json: line " + std::to_string(line) + ", column " +
                     std::to_string(col) + ": " + std::move(what));
  }

  static constexpr int kMaxDepth = 128;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  if (indent >= 0) out += '\n';
  return out;
}

Expected<Json> Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace spmvopt::report
