// Host/measurement environment capture for bench documents, plus the
// shared bench-driver preamble that every bench_* binary prints.
//
// A performance number is meaningless without the machine and methodology it
// was measured under (the paper conditions every figure on its Table III
// platform row).  EnvironmentInfo is that row for this host, serialized into
// every BENCH_*.json so the comparator can warn when two documents were not
// measured on comparable hosts.
#pragma once

#include <string>

#include "perf/measure.hpp"
#include "report/json.hpp"

namespace spmvopt::report {

struct EnvironmentInfo {
  std::string cpu_model;        ///< from /proc/cpuinfo, may be empty
  int logical_cpus = 1;
  int threads = 1;              ///< OpenMP threads the run used
  std::size_t cache_line_bytes = 64;
  std::size_t llc_bytes = 0;
  bool avx2 = false;
  bool avx512f = false;
  int iterations = 0;           ///< SpMV ops per measurement block (§IV-A)
  int runs = 0;                 ///< measurement blocks per sample set
  int warmup = 0;
  double suite_scale = 1.0;

  [[nodiscard]] bool operator==(const EnvironmentInfo&) const = default;
};

/// Capture this host + the given measurement methodology.
[[nodiscard]] EnvironmentInfo capture_environment(
    const perf::MeasureConfig& measure, double suite_scale, int threads = 0);

[[nodiscard]] Json environment_to_json(const EnvironmentInfo& env);
[[nodiscard]] Expected<EnvironmentInfo> environment_from_json(const Json& j);

/// Suite size factor in (0, 1] from SPMVOPT_SCALE (default 1.0, quick mode
/// 0.35).  Shared by every bench driver and the bench runner.
[[nodiscard]] double suite_scale();

/// Print the host characteristics every figure in the paper is conditioned
/// on (the Table III row for this machine) — the common bench preamble.
void print_host_preamble(const char* bench_name);

}  // namespace spmvopt::report
