// Comparator — statistical regression gating over two bench documents.
//
// A (matrix, variant, threads) cell regressed only when BOTH tests agree:
//   * the relative change exceeds the threshold (default 5%), AND
//   * the confidence intervals are disjoint in the regressing direction
//     (new.ci_hi < old.ci_lo) — a large-looking delta inside overlapping
//     CIs is measurement noise, not a regression.
// Improvement is symmetric.  Identical documents therefore always compare
// as all-unchanged, and a genuine 20% shift with sane CIs always trips.
// Cells present on only one side are reported as added/removed, never
// gated on.
//
// Exit-code contract (CI gates on this through `spmvopt compare`):
//   0                 no regressions (advisory mode: always, after printing)
//   kExitRegression   at least one regressed cell
//   65/66             malformed / unreadable document (sysexits, robust/)
#pragma once

#include <string>
#include <vector>

#include "report/bench_doc.hpp"

namespace spmvopt::report {

/// Exit code `spmvopt compare` uses for "documents loaded fine, performance
/// regressed".  Deliberately 1 (not a sysexits code): sysexits describe
/// process faults, and a regression is a *successful* comparison with an
/// unfavorable answer.
inline constexpr int kExitRegression = 1;

enum class Verdict { Unchanged, Improved, Regressed, Added, Removed };

[[nodiscard]] const char* verdict_name(Verdict v) noexcept;

struct CompareConfig {
  double rel_threshold = 0.05;  ///< minimum |relative change| to consider
  /// Cells below this rate on both sides are never gated (noise floor for
  /// degenerate sub-microsecond kernels); 0 disables.
  double min_gflops = 0.0;
};

struct CellDelta {
  std::string matrix;
  std::string variant;
  int threads = 1;
  double old_gflops = 0.0;
  double new_gflops = 0.0;
  double rel_change = 0.0;  ///< new/old - 1; 0 for added/removed
  Verdict verdict = Verdict::Unchanged;
};

struct ComparisonReport {
  std::vector<CellDelta> cells;  ///< old-document order; added cells last
  int improved = 0;
  int regressed = 0;
  int unchanged = 0;
  int added = 0;
  int removed = 0;
  /// False when the two documents were measured on visibly different hosts
  /// or methodologies (cpu model, thread count, iterations/runs) — deltas
  /// then mean little; the CLI prints a warning.
  bool comparable_environment = true;

  [[nodiscard]] bool has_regressions() const noexcept { return regressed > 0; }
  /// "3 improved, 1 regressed, 40 unchanged (2 added, 0 removed)".
  [[nodiscard]] std::string summary() const;
};

/// Compare two parsed documents.  Returns a Format error when the documents
/// are not comparable at all (different kind).
[[nodiscard]] Expected<ComparisonReport> compare_documents(
    const BenchDocument& old_doc, const BenchDocument& new_doc,
    const CompareConfig& config = {});

}  // namespace spmvopt::report
