#include "report/compare.hpp"

#include <cmath>
#include <map>
#include <tuple>

namespace spmvopt::report {

const char* verdict_name(Verdict v) noexcept {
  switch (v) {
    case Verdict::Unchanged: return "unchanged";
    case Verdict::Improved: return "improved";
    case Verdict::Regressed: return "regressed";
    case Verdict::Added: return "added";
    case Verdict::Removed: return "removed";
  }
  return "?";
}

std::string ComparisonReport::summary() const {
  return std::to_string(improved) + " improved, " + std::to_string(regressed) +
         " regressed, " + std::to_string(unchanged) + " unchanged (" +
         std::to_string(added) + " added, " + std::to_string(removed) +
         " removed)";
}

namespace {

using CellKey = std::tuple<std::string, std::string, int>;

CellKey key_of(const BenchResult& r) {
  return {r.matrix, r.variant, r.threads};
}

/// The regression test of the header comment: threshold AND CI separation.
/// Degenerate single-sample intervals (lo == hi == mean) reduce the CI test
/// to a plain value comparison, so sparse documents still gate.
Verdict classify_cell(const BenchResult& oldr, const BenchResult& newr,
                      const CompareConfig& cfg) {
  if (oldr.gflops <= 0.0 || newr.gflops <= 0.0) return Verdict::Unchanged;
  if (cfg.min_gflops > 0.0 && oldr.gflops < cfg.min_gflops &&
      newr.gflops < cfg.min_gflops)
    return Verdict::Unchanged;
  const double rel = newr.gflops / oldr.gflops - 1.0;
  if (rel < -cfg.rel_threshold && newr.ci_hi < oldr.ci_lo)
    return Verdict::Regressed;
  if (rel > cfg.rel_threshold && newr.ci_lo > oldr.ci_hi)
    return Verdict::Improved;
  return Verdict::Unchanged;
}

bool environments_comparable(const EnvironmentInfo& a,
                             const EnvironmentInfo& b) {
  return a.cpu_model == b.cpu_model && a.threads == b.threads &&
         a.iterations == b.iterations && a.runs == b.runs &&
         a.suite_scale == b.suite_scale;
}

}  // namespace

Expected<ComparisonReport> compare_documents(const BenchDocument& old_doc,
                                             const BenchDocument& new_doc,
                                             const CompareConfig& config) {
  if (old_doc.kind != new_doc.kind)
    return Error(ErrorCategory::Format,
                 "cannot compare a '" + old_doc.kind + "' document against a '" +
                     new_doc.kind + "' document");
  ComparisonReport report;
  report.comparable_environment =
      environments_comparable(old_doc.environment, new_doc.environment);

  std::map<CellKey, const BenchResult*> new_cells;
  for (const BenchResult& r : new_doc.results) new_cells[key_of(r)] = &r;

  for (const BenchResult& oldr : old_doc.results) {
    CellDelta d;
    d.matrix = oldr.matrix;
    d.variant = oldr.variant;
    d.threads = oldr.threads;
    d.old_gflops = oldr.gflops;
    const auto it = new_cells.find(key_of(oldr));
    if (it == new_cells.end()) {
      d.verdict = Verdict::Removed;
      ++report.removed;
      report.cells.push_back(std::move(d));
      continue;
    }
    const BenchResult& newr = *it->second;
    new_cells.erase(it);
    d.new_gflops = newr.gflops;
    d.rel_change =
        oldr.gflops > 0.0 ? newr.gflops / oldr.gflops - 1.0 : 0.0;
    d.verdict = classify_cell(oldr, newr, config);
    switch (d.verdict) {
      case Verdict::Improved: ++report.improved; break;
      case Verdict::Regressed: ++report.regressed; break;
      default: ++report.unchanged; break;
    }
    report.cells.push_back(std::move(d));
  }
  for (const auto& [key, newr] : new_cells) {
    CellDelta d;
    d.matrix = newr->matrix;
    d.variant = newr->variant;
    d.threads = newr->threads;
    d.new_gflops = newr->gflops;
    d.verdict = Verdict::Added;
    ++report.added;
    report.cells.push_back(std::move(d));
  }
  return report;
}

}  // namespace spmvopt::report
