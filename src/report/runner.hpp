// BenchRunner — the unified bench orchestrator behind `spmvopt bench`.
//
// One run sweeps a synthetic suite × a variant pool × thread counts with the
// paper's §IV-A timing methodology (perf::measure), then:
//   * rejects per-run outliers with Tukey/IQR fences (a descheduled thread
//     or a frequency transition should not poison a 5-run harmonic mean),
//   * summarizes the kept runs as harmonic-mean Gflop/s plus a Student-t
//     confidence interval (what the comparator gates on),
//   * tags every matrix with its heuristic bottleneck classes so documents
//     aggregate per class (the paper's per-class speedup tables),
//   * captures the host environment,
// and returns a schema-versioned BenchDocument ready to serialize.
//
// Variant pools:
//   kernels — serial CSR plus every single-optimization kernel and the
//             SELL-C-σ / BCSR extension formats (the Fig. 1 axis);
//   plans   — baseline plus the trivial-combined optimizer search space
//             (singles + feasible pairs, the Table V candidate pool).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "perf/measure.hpp"
#include "report/bench_doc.hpp"
#include "support/topology.hpp"

namespace spmvopt::report {

struct RunnerConfig {
  std::string suite = "smoke";  ///< "smoke" (gen::test_suite) | "full"
  std::string kind = "kernels"; ///< "kernels" | "plans"
  std::vector<int> thread_counts;  ///< empty -> {default_threads()}
  /// Execute plan variants on a persistent-team ExecutionEngine (one team
  /// per thread count, reused across every matrix and plan of the sweep)
  /// instead of per-call OpenMP fork/join.  Cells are tagged engine=true.
  bool use_engine = false;
  /// Team pin policy when use_engine is set (None leaves the OS to place).
  PinPolicy pin = PinPolicy::None;
  perf::MeasureConfig measure = perf::MeasureConfig::from_env();
  double scale = 0.0;          ///< suite scale for "full"; <=0 -> suite_scale()
  double confidence = 0.95;    ///< CI level attached to every cell
  double iqr_fence = 1.5;      ///< Tukey fence factor for outlier rejection
  /// Right-hand sides per operation.  1 sweeps run() (the classic SpMV
  /// document); > 1 sweeps the same variant pool as batched ops of `nrhs`
  /// vectors (flops = 2·nnz·nrhs), keeping variant names identical so
  /// `spmvopt compare` matches cells between an nrhs=1 and an nrhs=N
  /// document — or between the two batched modes below.
  int nrhs = 1;
  /// Batched-op dispatch when nrhs > 1: true issues one run_many() (the
  /// register-blocked fused SpMM for plain-CSR plans, DESIGN.md §13);
  /// false issues nrhs repeated run() dispatches — the amortization
  /// baseline the fused path is gated against.
  bool fuse_many = true;
  /// Progress sink (one line per matrix), e.g. for CLI verbosity; may be
  /// empty.
  std::function<void(const std::string&)> progress;
};

class BenchRunner {
 public:
  /// Validates the config; throws std::invalid_argument on an unknown suite
  /// or kind (a caller bug / usage error, not a data fault).
  explicit BenchRunner(RunnerConfig config);

  /// Execute the sweep.  Deterministic modulo measured rates.
  [[nodiscard]] BenchDocument run() const;

 private:
  RunnerConfig config_;
};

/// Summarize raw per-run rates into one bench cell: IQR-reject, harmonic
/// mean, confidence interval.  Exposed for the runner's tests.
void fill_cell_stats(const std::vector<double>& gflops_samples,
                     double confidence, double iqr_fence, BenchResult* cell);

}  // namespace spmvopt::report
