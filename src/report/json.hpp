// Minimal JSON document model for the bench-report subsystem.
//
// The harness needs exactly three properties from its serialization layer,
// none of which justify an external dependency (the container bakes in no
// JSON library):
//   * stable key ordering — objects preserve insertion order, so emitted
//     documents are byte-reproducible and golden-file testable;
//   * round-trip numbers — doubles are printed with std::to_chars shortest
//     form, so parse(dump(x)) == x exactly;
//   * categorized failures — parse() returns Expected<Json> with a Format
//     error naming the offending line, feeding the CLI sysexits contract.
// Scope is deliberately the JSON the harness emits: objects, arrays,
// strings, finite numbers, bools, null.  Non-finite doubles serialize as
// null (the JSON standard has no NaN/Inf).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "robust/error.hpp"

namespace spmvopt::report {

class Json {
 public:
  using Array = std::vector<Json>;
  /// Insertion-ordered members; keys are unique (set() replaces in place).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::uint64_t u) : value_(static_cast<double>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  [[nodiscard]] static Json object() { return Json(Object{}); }
  [[nodiscard]] static Json array() { return Json(Array{}); }

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<Object>(value_);
  }

  /// Typed accessors; precondition is the matching is_*() (asserted).
  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] double as_number() const { return std::get<double>(value_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(value_);
  }
  [[nodiscard]] const Array& items() const { return std::get<Array>(value_); }
  [[nodiscard]] Array& items() { return std::get<Array>(value_); }
  [[nodiscard]] const Object& members() const {
    return std::get<Object>(value_);
  }
  [[nodiscard]] Object& members() { return std::get<Object>(value_); }

  /// Object member by key, or nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;

  /// Set an object member: appends on a new key, replaces the value in place
  /// on an existing one (key order never changes).  Returns *this for
  /// chaining.  Precondition: is_object().
  Json& set(std::string_view key, Json value);

  /// Append to an array.  Precondition: is_array().
  Json& push(Json value);

  [[nodiscard]] bool operator==(const Json&) const = default;

  /// Serialize with 2-space indentation and '\n' line ends, ending with a
  /// final newline (the result is a complete text file); objects emit
  /// members in insertion order.  `indent < 0` emits compact one-line JSON
  /// with no trailing newline.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Parse a complete JSON document.  Trailing garbage, duplicate keys and
  /// syntax errors yield a Format error with line/column context.
  [[nodiscard]] static Expected<Json> parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace spmvopt::report
