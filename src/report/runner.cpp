#include "report/runner.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "classify/feature_classifier.hpp"
#include "engine/execution_engine.hpp"
#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "kernels/spmv.hpp"
#include "optimize/optimized_spmv.hpp"
#include "optimize/plan.hpp"
#include "support/cpu_info.hpp"
#include "support/stats.hpp"

namespace spmvopt::report {

void fill_cell_stats(const std::vector<double>& gflops_samples,
                     double confidence, double iqr_fence, BenchResult* cell) {
  const std::vector<double> kept = iqr_filter(gflops_samples, iqr_fence);
  cell->samples_kept = static_cast<int>(kept.size());
  cell->samples_rejected =
      static_cast<int>(gflops_samples.size() - kept.size());
  if (kept.empty()) {
    cell->gflops = cell->ci_lo = cell->ci_hi = 0.0;
    return;
  }
  cell->gflops = harmonic_mean(kept);
  const MeanCi ci = mean_confidence(kept, confidence);
  cell->ci_lo = ci.lo;
  cell->ci_hi = ci.hi;
}

namespace {

/// The variant pool of one bench kind: plan-based variants keyed by the
/// requested plan's rendering, plus (kernels kind only) the serial kernel.
struct VariantPool {
  std::vector<optimize::Plan> plans;
  bool include_serial = false;
};

VariantPool variant_pool(const std::string& kind) {
  VariantPool pool;
  auto add = [&pool](const optimize::Plan& p) {
    const auto same = [&](const optimize::Plan& q) { return q == p; };
    if (std::none_of(pool.plans.begin(), pool.plans.end(), same))
      pool.plans.push_back(p);
  };
  add(optimize::Plan{});
  if (kind == "kernels") {
    pool.include_serial = true;
    for (const auto& p : optimize::single_optimization_plans()) add(p);
    optimize::Plan vec;
    vec.compute = kernels::Compute::Vector;
    add(vec);
    add(optimize::sell_plan());
    add(optimize::bcsr_plan());
    optimize::Plan merge;                      // IMB-c: merge-path balancing
    merge.merge_path = true;
    add(merge);
    optimize::Plan dyn;                        // IMB-d: dynamic row scheduling
    dyn.sched = kernels::Sched::Dynamic;       //   (merge's row-parallel rival)
    add(dyn);
    optimize::Plan f32x64;                     // MB: halve value-stream bytes
    f32x64.precision = Precision::F32F64;      //   (float storage, f64 math)
    add(f32x64);
    optimize::Plan f32;                        // MB: full float pipeline
    f32.precision = Precision::F32;
    add(f32);
  } else {
    // "plans": the trivial-combined candidate pool of Table V.
    for (const auto& p : optimize::combined_optimization_plans()) add(p);
  }
  return pool;
}

}  // namespace

BenchRunner::BenchRunner(RunnerConfig config) : config_(std::move(config)) {
  if (config_.suite != "smoke" && config_.suite != "full")
    throw std::invalid_argument("BenchRunner: suite must be 'smoke' or 'full'");
  if (config_.kind != "kernels" && config_.kind != "plans")
    throw std::invalid_argument("BenchRunner: kind must be 'kernels' or 'plans'");
  if (config_.thread_counts.empty())
    config_.thread_counts.push_back(default_threads());
  for (int t : config_.thread_counts)
    if (t < 1) throw std::invalid_argument("BenchRunner: thread count < 1");
  if (config_.nrhs < 1)
    throw std::invalid_argument("BenchRunner: nrhs < 1");
  if (config_.scale <= 0.0) config_.scale = suite_scale();
}

BenchDocument BenchRunner::run() const {
  BenchDocument doc;
  doc.kind = config_.kind;
  doc.suite = config_.suite;
  doc.environment = capture_environment(config_.measure, config_.scale,
                                        config_.thread_counts.front());

  const VariantPool pool = variant_pool(config_.kind);

  // One persistent team per thread count, shared by the whole sweep — this
  // is the usage pattern the engine exists for (team spawn and pinning paid
  // once, not per cell).
  std::vector<std::unique_ptr<engine::ExecutionEngine>> engines;
  if (config_.use_engine)
    for (int threads : config_.thread_counts)
      engines.push_back(std::make_unique<engine::ExecutionEngine>(
          engine::EngineConfig{.nthreads = threads, .pin = config_.pin}));

  const auto suite = config_.suite == "smoke"
                         ? gen::test_suite()
                         : gen::evaluation_suite(config_.scale);
  for (const auto& entry : suite) {
    const CsrMatrix a = entry.make();
    BenchResult proto;
    proto.matrix = entry.name;
    proto.family = entry.family;
    proto.classes = classify::heuristic_feature_classes(a).to_string();
    proto.nrows = a.nrows();
    proto.ncols = a.ncols();
    proto.nnz = a.nnz();

    if (pool.include_serial && config_.nrhs == 1) {
      // The serial reference ignores the thread sweep: one cell at t=1.
      BenchResult cell = proto;
      cell.variant = "serial";
      cell.plan = "serial";
      cell.threads = 1;
      const auto samples = perf::measure_gflops_samples(
          a,
          [&a](const value_t* x, value_t* y) {
            kernels::spmv_serial(a, x, y);
          },
          config_.measure);
      fill_cell_stats(samples.gflops, config_.confidence, config_.iqr_fence,
                      &cell);
      doc.results.push_back(std::move(cell));
    }

    for (const optimize::Plan& plan : pool.plans) {
      for (std::size_t ti = 0; ti < config_.thread_counts.size(); ++ti) {
        const int threads = config_.thread_counts[ti];
        const auto spmv =
            config_.use_engine
                ? optimize::OptimizedSpmv::create(a, plan, *engines[ti])
                : optimize::OptimizedSpmv::create(a, plan, threads);
        BenchResult cell = proto;
        cell.variant = plan.to_string();
        cell.plan = spmv.plan().to_string();
        cell.threads = threads;
        cell.engine = config_.use_engine;
        perf::RateSamples samples;
        if (config_.nrhs == 1) {
          samples = perf::measure_gflops_samples(
              a,
              [&spmv](const value_t* x, value_t* y) { spmv.run(x, y); },
              config_.measure);
        } else {
          // Batched cell: one op = nrhs matvecs, either as a single fused
          // run_many dispatch or as nrhs repeated run() dispatches — the
          // variant name stays the plan's, so the comparator lines the two
          // modes up cell for cell.
          const int nrhs = config_.nrhs;
          std::vector<value_t> X;
          X.reserve(static_cast<std::size_t>(a.ncols()) *
                    static_cast<std::size_t>(nrhs));
          for (int r = 0; r < nrhs; ++r) {
            const auto x = gen::test_vector(
                a.ncols(), 7 + static_cast<std::uint64_t>(r));
            X.insert(X.end(), x.begin(), x.end());
          }
          std::vector<value_t> Y(static_cast<std::size_t>(a.nrows()) *
                                 static_cast<std::size_t>(nrhs));
          const double flops = 2.0 * static_cast<double>(a.nnz()) *
                               static_cast<double>(nrhs);
          if (config_.fuse_many) {
            samples = perf::measure_rate_samples(
                [&] { spmv.run_many(X.data(), Y.data(), nrhs); }, flops,
                config_.measure);
          } else {
            samples = perf::measure_rate_samples(
                [&] {
                  for (int r = 0; r < nrhs; ++r)
                    spmv.run(X.data() + static_cast<std::size_t>(r) *
                                            static_cast<std::size_t>(a.ncols()),
                             Y.data() + static_cast<std::size_t>(r) *
                                            static_cast<std::size_t>(a.nrows()));
                },
                flops, config_.measure);
          }
        }
        fill_cell_stats(samples.gflops, config_.confidence, config_.iqr_fence,
                        &cell);
        doc.results.push_back(std::move(cell));
      }
    }
    if (config_.progress)
      config_.progress(entry.name + " (" + std::to_string(a.nnz()) +
                       " nnz) done");
  }
  return doc;
}

}  // namespace spmvopt::report
