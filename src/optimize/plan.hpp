// Optimization plans: which optimizations of Table II are applied, jointly.
//
// A Plan is the unit the optimizer reasons about — the paper's classes map
// onto plan fields (Table II):
//   MB  → delta column compression + vectorization
//   ML  → software prefetching on x
//   IMB → long-row decomposition (uneven row lengths) or OpenMP auto
//         scheduling (computational unevenness), selected by matrix features
//   CMP → inner-loop unrolling + vectorization
// Multiple detected classes merge into one plan (jointly applied).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "classify/classes.hpp"
#include "kernels/compose.hpp"
#include "sparse/csr.hpp"
#include "support/dtype.hpp"

namespace spmvopt::optimize {

struct Plan {
  kernels::Sched sched = kernels::Sched::BalancedStatic;
  bool prefetch = false;
  kernels::Compute compute = kernels::Compute::Scalar;
  bool delta = false;            ///< compress column indices (8/16-bit)
  bool split_long_rows = false;  ///< Fig. 5/6 decomposition
  /// Merge-path 2-D partition (kernels/merge_csr.hpp): each worker gets an
  /// equal share of rows + nnz, guaranteed regardless of row-length skew.
  /// Preferred over split_long_rows for high-skew IMB matrices; the span
  /// walks raw CSR arrays, so delta and split are infeasible with it
  /// (compute/prefetch still apply).
  bool merge_path = false;
  /// SELL-C-σ storage (extension optimization, §V plug-and-play demo).
  /// A whole-format change: incompatible with delta/split/prefetch, and the
  /// kernel is inherently vectorized, so the other fields are ignored.
  bool sell = false;
  /// OSKI-style register-blocked CSR (extension, [26]).  Whole-format like
  /// sell; block shape is auto-chosen from the sampled fill estimate, and
  /// the plan falls back to plain CSR when no blocking pays (query the
  /// created OptimizedSpmv's plan() for what actually runs).
  bool bcsr = false;
  /// Value mode (DESIGN.md §13): float storage (f32x64) halves the MB-class
  /// value-stream traffic; full f32 also accumulates in float.  A non-F64
  /// precision is a whole-value-format change that runs the register-blocked
  /// kernel on plain CSR — combining it with delta/split/merge/sell/bcsr
  /// throws at OptimizedSpmv::create.
  Precision precision = Precision::F64;
  int dynamic_chunk = 64;        ///< only for Sched::Dynamic

  [[nodiscard]] bool operator==(const Plan&) const = default;

  /// Baseline CSR (no optimization applied).
  [[nodiscard]] bool is_baseline() const noexcept {
    return *this == Plan{};
  }

  /// "auto+pf+vec+delta"-style rendering; "baseline" for the default plan.
  [[nodiscard]] std::string to_string() const;
};

/// Round-trippable one-line serialization ("plan1 sched=auto pf=1 ..."),
/// unlike to_string() which is a lossy display form (it drops dynamic_chunk).
/// The server's persistent plan-cache tier (DESIGN.md §9) stores these.
[[nodiscard]] std::string serialize_plan(const Plan& plan);

/// Parse serialize_plan() output; nullopt on any malformed or unknown field
/// (a stale cache file must degrade to a re-classification, not an error).
[[nodiscard]] std::optional<Plan> deserialize_plan(std::string_view text);

/// Table II: map a detected class set to a joint plan.  The IMB
/// sub-selection (§III-E) needs the matrix: rows with nnz_max well above
/// nnz_avg choose the merge-path kernel (guaranteed balance on skewed
/// structures, ahead of long-row decomposition), otherwise auto scheduling.
[[nodiscard]] Plan plan_for_classes(classify::ClassSet classes,
                                    const CsrMatrix& A);

/// The five *single* optimizations of the trivial-single optimizer
/// (Table V): compression+vec, prefetch, decomposition, auto-sched,
/// unroll+vec.
[[nodiscard]] std::vector<Plan> single_optimization_plans();

/// Singles plus all feasible pairwise joins (the trivial-combined space of
/// Table V: 15 candidates before feasibility filtering).
[[nodiscard]] std::vector<Plan> combined_optimization_plans();

/// Merge two plans (joint application).  Conflicts resolve toward the
/// stronger variant (UnrollVector > Vector > Scalar; split wins over delta —
/// the decomposed kernel keeps raw indices).
[[nodiscard]] Plan merge_plans(const Plan& a, const Plan& b);

/// Every plan the runtime can execute on `A` (oracle search space): the
/// cross product of schedule x prefetch x compute x {raw, delta} x
/// {plain, split}, minus combinations the matrix cannot support
/// (delta when gaps exceed 16 bits, split together with delta), plus the
/// merge-path plans (prefetch x compute; schedule/split/delta do not
/// compose with the merge partition).  With
/// `include_extensions` the SELL-C-σ and BCSR whole-format plans join the
/// space; without it the space is exactly the paper's CSR-based pool (the
/// oracle of Fig. 7 is defined over that pool).
[[nodiscard]] std::vector<Plan> enumerate_plans(const CsrMatrix& A,
                                                bool include_extensions = true);

/// The SELL-C-σ extension plan (not emitted by plan_for_classes — Table II
/// keeps the paper's pool — but available to the oracle and callers).
[[nodiscard]] Plan sell_plan();

/// The register-blocked-CSR extension plan (same status as sell_plan()).
[[nodiscard]] Plan bcsr_plan();

}  // namespace spmvopt::optimize
