#include "optimize/optimized_spmv.hpp"

#include <stdexcept>

#include "kernels/bcsr_kernels.hpp"
#include "kernels/sell_kernels.hpp"
#include "robust/fault_inject.hpp"
#include "support/cpu_info.hpp"
#include "support/timing.hpp"

namespace spmvopt::optimize {

OptimizedSpmv OptimizedSpmv::create(const CsrMatrix& A, const Plan& plan,
                                    int nthreads) {
  const int t = nthreads > 0 ? nthreads : default_threads();
  Timer timer;

  OptimizedSpmv o;
  o.plan_ = plan;
  o.nrows_ = A.nrows();
  o.ncols_ = A.ncols();
  o.pf_dist_ = static_cast<index_t>(cpu_info().doubles_per_line());

  if (plan.split_long_rows && plan.delta)
    throw std::invalid_argument(
        "OptimizedSpmv: split and delta cannot be combined");
  if (plan.sell && (plan.delta || plan.split_long_rows || plan.prefetch))
    throw std::invalid_argument(
        "OptimizedSpmv: sell is a whole-format plan (no delta/split/prefetch)");
  if (plan.bcsr && (plan.delta || plan.split_long_rows || plan.prefetch ||
                    plan.sell))
    throw std::invalid_argument(
        "OptimizedSpmv: bcsr is a whole-format plan (no other optimizations)");

  // The degradation ladder (DESIGN.md §6): each conversion below may fail —
  // by throwing, by declining (BCSR finds no paying block shape, delta gaps
  // exceed 16 bits), or under fault injection.  A failed rung is recorded and
  // dropped from the plan; preprocessing then continues with whatever
  // features survive, bottoming out at baseline CSR, which cannot fail on a
  // valid matrix.  At most one whole-format conversion runs (the conflict
  // checks above enforce exclusivity).

  if (o.plan_.bcsr) {
    try {
      if (robust::fault_fire("convert.bcsr"))
        throw std::runtime_error("injected conversion failure");
      const auto [br, bc] = BcsrMatrix::choose_block_size(A);
      if (br * bc > 1) {
        o.bcsr_ = BcsrMatrix::from_csr(A, br, bc);
      } else {
        // No block shape pays on this pattern (OSKI declines to block in
        // the same situation).
        o.plan_.bcsr = false;
        o.degradation_.record("bcsr", "no block shape pays on this pattern");
      }
    } catch (const std::exception& e) {
      o.plan_.bcsr = false;
      o.degradation_.record("bcsr", e.what());
    }
  }

  if (o.plan_.sell) {
    try {
      if (robust::fault_fire("convert.sell"))
        throw std::runtime_error("injected conversion failure");
      o.sell_ = SellMatrix::from_csr(A, kernels::sell_native_chunk(),
                                     32 * kernels::sell_native_chunk());
    } catch (const std::exception& e) {
      o.plan_.sell = false;
      o.degradation_.record("sell", e.what());
    }
  }

  if (o.plan_.split_long_rows) {
    try {
      if (robust::fault_fire("convert.split"))
        throw std::runtime_error("injected conversion failure");
      o.split_ = SplitCsrMatrix::split(A, SplitCsrMatrix::default_threshold(A));
    } catch (const std::exception& e) {
      o.plan_.split_long_rows = false;
      o.degradation_.record("split", e.what());
    }
  }

  if (o.plan_.delta) {
    try {
      if (robust::fault_fire("convert.delta"))
        throw std::runtime_error("injected conversion failure");
      auto encoded = DeltaCsrMatrix::encode(A);
      if (encoded) {
        o.delta_ = std::move(*encoded);
      } else {
        // Gaps exceed 16 bits: fall back to raw indices (§III-E uses 8- or
        // 16-bit deltas "wherever possible" — here it is not possible).
        o.plan_.delta = false;
        o.degradation_.record("delta", "in-row gap exceeds 16 bits");
      }
    } catch (const std::exception& e) {
      o.plan_.delta = false;
      o.degradation_.record("delta", e.what());
    }
  }

  // Partition and kernel selection over whatever survived.
  if (o.bcsr_ || o.sell_) {
    // Partition is unused by these whole-format kernels but kept consistent.
    o.part_ = balanced_nnz_partition(A.rowptr(), A.nrows(), t);
  } else if (o.split_) {
    o.part_ = balanced_nnz_partition(o.split_->short_part().rowptr(),
                                     o.split_->short_part().nrows(), t);
    o.csr_fn_ = kernels::select_csr_kernel(o.plan_.sched, o.plan_.prefetch,
                                           o.plan_.compute);
  } else if (o.delta_) {
    o.part_ = balanced_nnz_partition(A.rowptr(), A.nrows(), t);
    o.delta_fn_ = kernels::select_delta_kernel(o.plan_.sched, o.plan_.prefetch,
                                               o.plan_.compute);
  } else {
    o.csr_ = &A;
    o.part_ = balanced_nnz_partition(A.rowptr(), A.nrows(), t);
    o.csr_fn_ = kernels::select_csr_kernel(o.plan_.sched, o.plan_.prefetch,
                                           o.plan_.compute);
  }

  o.pre_sec_ = timer.elapsed_sec();
  return o;
}

void OptimizedSpmv::run(const value_t* x, value_t* y) const noexcept {
  if (bcsr_) {
    kernels::spmv_bcsr(*bcsr_, x, y);
  } else if (sell_) {
    kernels::spmv_sell(*sell_, x, y);
  } else if (split_) {
    kernels::spmv_split_composed(*split_, part_, x, y, csr_fn_, pf_dist_,
                                 plan_.dynamic_chunk);
  } else if (delta_) {
    delta_fn_(*delta_, part_, x, y, pf_dist_, plan_.dynamic_chunk);
  } else {
    csr_fn_(*csr_, part_, x, y, pf_dist_, plan_.dynamic_chunk);
  }
}

void OptimizedSpmv::run(std::span<const value_t> x,
                        std::span<value_t> y) const {
  if (x.size() != static_cast<std::size_t>(ncols_) ||
      y.size() != static_cast<std::size_t>(nrows_))
    throw std::invalid_argument("OptimizedSpmv::run: vector size mismatch");
  run(x.data(), y.data());
}

std::size_t OptimizedSpmv::format_bytes() const noexcept {
  if (bcsr_) return bcsr_->format_bytes();
  if (sell_) return sell_->format_bytes();
  if (split_)
    return split_->short_part().format_bytes() +
           static_cast<std::size_t>(split_->num_long_rows() + 1 +
                                    split_->num_long_rows()) *
               sizeof(index_t) +
           static_cast<std::size_t>(split_->nnz() -
                                    split_->short_part().nnz()) *
               (sizeof(index_t) + sizeof(value_t));
  if (delta_) return delta_->format_bytes();
  return csr_ != nullptr ? csr_->format_bytes() : 0;
}

}  // namespace spmvopt::optimize
