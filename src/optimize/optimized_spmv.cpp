#include "optimize/optimized_spmv.hpp"

#include <stdexcept>

#include "kernels/bcsr_kernels.hpp"
#include "kernels/sell_kernels.hpp"
#include "support/cpu_info.hpp"
#include "support/timing.hpp"

namespace spmvopt::optimize {

OptimizedSpmv OptimizedSpmv::create(const CsrMatrix& A, const Plan& plan,
                                    int nthreads) {
  const int t = nthreads > 0 ? nthreads : default_threads();
  Timer timer;

  OptimizedSpmv o;
  o.plan_ = plan;
  o.nrows_ = A.nrows();
  o.ncols_ = A.ncols();
  o.pf_dist_ = static_cast<index_t>(cpu_info().doubles_per_line());

  if (plan.split_long_rows && plan.delta)
    throw std::invalid_argument(
        "OptimizedSpmv: split and delta cannot be combined");
  if (plan.sell && (plan.delta || plan.split_long_rows || plan.prefetch))
    throw std::invalid_argument(
        "OptimizedSpmv: sell is a whole-format plan (no delta/split/prefetch)");
  if (plan.bcsr && (plan.delta || plan.split_long_rows || plan.prefetch ||
                    plan.sell))
    throw std::invalid_argument(
        "OptimizedSpmv: bcsr is a whole-format plan (no other optimizations)");

  if (plan.bcsr) {
    const auto [br, bc] = BcsrMatrix::choose_block_size(A);
    o.part_ = balanced_nnz_partition(A.rowptr(), A.nrows(), t);
    if (br * bc > 1) {
      o.bcsr_ = BcsrMatrix::from_csr(A, br, bc);
    } else {
      // No block shape pays on this pattern: fall back to plain CSR
      // (OSKI declines to block in the same situation).
      o.plan_.bcsr = false;
      o.csr_ = &A;
      o.csr_fn_ =
          kernels::select_csr_kernel(plan.sched, plan.prefetch, plan.compute);
    }
  } else if (plan.sell) {
    o.sell_ = SellMatrix::from_csr(A, kernels::sell_native_chunk(),
                                   32 * kernels::sell_native_chunk());
    // Partition is unused by the SELL kernel but kept consistent.
    o.part_ = balanced_nnz_partition(A.rowptr(), A.nrows(), t);
  } else if (plan.split_long_rows) {
    o.split_ = SplitCsrMatrix::split(A, SplitCsrMatrix::default_threshold(A));
    o.part_ = balanced_nnz_partition(o.split_->short_part().rowptr(),
                                     o.split_->short_part().nrows(), t);
    o.csr_fn_ =
        kernels::select_csr_kernel(plan.sched, plan.prefetch, plan.compute);
  } else if (plan.delta) {
    auto encoded = DeltaCsrMatrix::encode(A);
    if (encoded) {
      o.delta_ = std::move(*encoded);
      o.part_ = balanced_nnz_partition(A.rowptr(), A.nrows(), t);
      o.delta_fn_ = kernels::select_delta_kernel(plan.sched, plan.prefetch,
                                                 plan.compute);
    } else {
      // Gaps exceed 16 bits: fall back to raw indices (§III-E uses 8- or
      // 16-bit deltas "wherever possible" — here it is not possible).
      o.plan_.delta = false;
      o.csr_ = &A;
      o.part_ = balanced_nnz_partition(A.rowptr(), A.nrows(), t);
      o.csr_fn_ =
          kernels::select_csr_kernel(plan.sched, plan.prefetch, plan.compute);
    }
  } else {
    o.csr_ = &A;
    o.part_ = balanced_nnz_partition(A.rowptr(), A.nrows(), t);
    o.csr_fn_ =
        kernels::select_csr_kernel(plan.sched, plan.prefetch, plan.compute);
  }

  o.pre_sec_ = timer.elapsed_sec();
  return o;
}

void OptimizedSpmv::run(const value_t* x, value_t* y) const noexcept {
  if (bcsr_) {
    kernels::spmv_bcsr(*bcsr_, x, y);
  } else if (sell_) {
    kernels::spmv_sell(*sell_, x, y);
  } else if (split_) {
    kernels::spmv_split_composed(*split_, part_, x, y, csr_fn_, pf_dist_,
                                 plan_.dynamic_chunk);
  } else if (delta_) {
    delta_fn_(*delta_, part_, x, y, pf_dist_, plan_.dynamic_chunk);
  } else {
    csr_fn_(*csr_, part_, x, y, pf_dist_, plan_.dynamic_chunk);
  }
}

void OptimizedSpmv::run(std::span<const value_t> x,
                        std::span<value_t> y) const {
  if (x.size() != static_cast<std::size_t>(ncols_) ||
      y.size() != static_cast<std::size_t>(nrows_))
    throw std::invalid_argument("OptimizedSpmv::run: vector size mismatch");
  run(x.data(), y.data());
}

std::size_t OptimizedSpmv::format_bytes() const noexcept {
  if (bcsr_) return bcsr_->format_bytes();
  if (sell_) return sell_->format_bytes();
  if (split_)
    return split_->short_part().format_bytes() +
           static_cast<std::size_t>(split_->num_long_rows() + 1 +
                                    split_->num_long_rows()) *
               sizeof(index_t) +
           static_cast<std::size_t>(split_->nnz() -
                                    split_->short_part().nnz()) *
               (sizeof(index_t) + sizeof(value_t));
  if (delta_) return delta_->format_bytes();
  return csr_ != nullptr ? csr_->format_bytes() : 0;
}

}  // namespace spmvopt::optimize
