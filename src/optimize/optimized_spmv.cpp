#include "optimize/optimized_spmv.hpp"

#include <omp.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "kernels/bcsr_kernels.hpp"
#include "kernels/sell_kernels.hpp"
#include "robust/fault_inject.hpp"
#include "support/cpu_info.hpp"
#include "support/timing.hpp"
#include "support/topology.hpp"

namespace spmvopt::optimize {

// ----------------------------------------------------------- scratch pool

SpmmScratch* SpmmScratchPool::pop_or_create() noexcept {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!free_.empty()) {
      SpmmScratch* s = free_.back();
      free_.pop_back();
      return s;
    }
  }
  try {
    auto owned = std::make_unique<SpmmScratch>();
    SpmmScratch* s = owned.get();
    std::lock_guard<std::mutex> lk(mu_);
    all_.reserve(all_.size() + 1);
    free_.reserve(all_.capacity());  // release() must never reallocate
    all_.push_back(std::move(owned));
    return s;
  } catch (...) {
    return nullptr;
  }
}

SpmmScratch* SpmmScratchPool::try_acquire(std::size_t xf_n, std::size_t yf_n,
                                          std::size_t xd_n,
                                          std::size_t yd_n) noexcept {
  SpmmScratch* s = pop_or_create();
  if (s == nullptr) return nullptr;
  try {
    s->xf.resize(xf_n);
    s->yf.resize(yf_n);
    s->xd.resize(xd_n);
    s->yd.resize(yd_n);
    return s;
  } catch (...) {
    release(s);
    return nullptr;
  }
}

SpmmScratch* SpmmScratchPool::acquire_or_wait(std::size_t xf_n,
                                              std::size_t yf_n) noexcept {
  const auto fits = [xf_n, yf_n](const SpmmScratch* s) noexcept {
    return s->xf.capacity() >= xf_n && s->yf.capacity() >= yf_n;
  };
  const auto take_fit = [&]() noexcept -> SpmmScratch* {
    const auto it = std::find_if(free_.begin(), free_.end(), fits);
    if (it == free_.end()) return nullptr;
    SpmmScratch* s = *it;
    free_.erase(it);
    return s;
  };
  SpmmScratch* s = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    s = take_fit();
  }
  if (s == nullptr) {
    if ((s = try_acquire(xf_n, yf_n, 0, 0)) != nullptr) return s;
    // Allocation failed.  The seed guarantees a fitting buffer exists and
    // its leaseholder will release it, so wait for one: callers serialize
    // on the seed under memory pressure instead of failing.
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return (s = take_fit()) != nullptr; });
  }
  // Within reserved capacity: resize cannot allocate (and cannot throw).
  s->xf.resize(xf_n);
  s->yf.resize(yf_n);
  return s;
}

void SpmmScratchPool::release(SpmmScratch* s) noexcept {
  {
    std::lock_guard<std::mutex> lk(mu_);
    free_.push_back(s);  // never reallocates: capacity >= all_.size()
  }
  cv_.notify_one();
}

void SpmmScratchPool::seed(std::size_t xf_n, std::size_t yf_n) {
  auto owned = std::make_unique<SpmmScratch>();
  owned->xf.resize(xf_n);
  owned->yf.resize(yf_n);
  std::lock_guard<std::mutex> lk(mu_);
  all_.reserve(all_.size() + 1);
  free_.reserve(all_.capacity());
  free_.push_back(owned.get());
  all_.push_back(std::move(owned));
}

OptimizedSpmv OptimizedSpmv::create(const CsrMatrix& A, const Plan& plan,
                                    int nthreads) {
  const int t = nthreads > 0 ? nthreads : default_threads();
  Timer timer;

  OptimizedSpmv o;
  o.plan_ = plan;
  o.nrows_ = A.nrows();
  o.ncols_ = A.ncols();
  o.pf_dist_ = static_cast<index_t>(cpu_info().doubles_per_line());

  if (plan.precision != Precision::F64 &&
      (plan.delta || plan.split_long_rows || plan.merge_path || plan.sell ||
       plan.bcsr))
    throw std::invalid_argument(
        "OptimizedSpmv: a non-f64 precision is a whole-value-format plan "
        "(plain CSR only; no delta/split/merge/sell/bcsr)");
  if (plan.split_long_rows && plan.delta)
    throw std::invalid_argument(
        "OptimizedSpmv: split and delta cannot be combined");
  if (plan.merge_path && (plan.delta || plan.split_long_rows))
    throw std::invalid_argument(
        "OptimizedSpmv: merge runs on raw CSR (no delta/split)");
  if (plan.sell && (plan.delta || plan.split_long_rows || plan.prefetch ||
                    plan.merge_path))
    throw std::invalid_argument(
        "OptimizedSpmv: sell is a whole-format plan (no delta/split/prefetch)");
  if (plan.bcsr && (plan.delta || plan.split_long_rows || plan.prefetch ||
                    plan.sell || plan.merge_path))
    throw std::invalid_argument(
        "OptimizedSpmv: bcsr is a whole-format plan (no other optimizations)");

  // The degradation ladder (DESIGN.md §6): each conversion below may fail —
  // by throwing, by declining (BCSR finds no paying block shape, delta gaps
  // exceed 16 bits), or under fault injection.  A failed rung is recorded and
  // dropped from the plan; preprocessing then continues with whatever
  // features survive, bottoming out at baseline CSR, which cannot fail on a
  // valid matrix.  At most one whole-format conversion runs (the conflict
  // checks above enforce exclusivity).

  if (o.plan_.bcsr) {
    try {
      if (robust::fault_fire("convert.bcsr"))
        throw std::runtime_error("injected conversion failure");
      const auto [br, bc] = BcsrMatrix::choose_block_size(A);
      if (br * bc > 1) {
        o.bcsr_ = BcsrMatrix::from_csr(A, br, bc);
      } else {
        // No block shape pays on this pattern (OSKI declines to block in
        // the same situation).
        o.plan_.bcsr = false;
        o.degradation_.record("bcsr", "no block shape pays on this pattern");
      }
    } catch (const std::exception& e) {
      o.plan_.bcsr = false;
      o.degradation_.record("bcsr", e.what());
    }
  }

  if (o.plan_.sell) {
    try {
      if (robust::fault_fire("convert.sell"))
        throw std::runtime_error("injected conversion failure");
      o.sell_ = SellMatrix::from_csr(A, kernels::sell_native_chunk(),
                                     32 * kernels::sell_native_chunk());
    } catch (const std::exception& e) {
      o.plan_.sell = false;
      o.degradation_.record("sell", e.what());
    }
  }

  if (o.plan_.merge_path) {
    try {
      if (robust::fault_fire("kernels.merge_setup"))
        throw std::runtime_error("injected merge setup failure");
      o.merge_part_ =
          kernels::merge_partition(A.rowptr(), A.nrows(), A.nnz(), t);
      o.merge_carry_.resize(o.merge_part_.nworkers());
      o.merge_fn_ =
          kernels::select_merge_span(o.plan_.compute, o.plan_.prefetch);
    } catch (const std::exception& e) {
      o.plan_.merge_path = false;
      o.merge_fn_ = nullptr;
      o.degradation_.record("merge", e.what());
    }
  }

  if (o.plan_.split_long_rows) {
    try {
      if (robust::fault_fire("convert.split"))
        throw std::runtime_error("injected conversion failure");
      o.split_ = SplitCsrMatrix::split(A, SplitCsrMatrix::default_threshold(A));
    } catch (const std::exception& e) {
      o.plan_.split_long_rows = false;
      o.degradation_.record("split", e.what());
    }
  }

  if (o.plan_.delta) {
    try {
      if (robust::fault_fire("convert.delta"))
        throw std::runtime_error("injected conversion failure");
      auto encoded = DeltaCsrMatrix::encode(A);
      if (encoded) {
        o.delta_ = std::move(*encoded);
      } else {
        // Gaps exceed 16 bits: fall back to raw indices (§III-E uses 8- or
        // 16-bit deltas "wherever possible" — here it is not possible).
        o.plan_.delta = false;
        o.degradation_.record("delta", "in-row gap exceeds 16 bits");
      }
    } catch (const std::exception& e) {
      o.plan_.delta = false;
      o.degradation_.record("delta", e.what());
    }
  }

  // Partition and kernel selection over whatever survived.  The range-kernel
  // selections and raw-array views below also serve the cancellable chunk
  // walk (run() with a CancelToken), which exists on unbound instances too;
  // the engine overload re-points the CSR views at its NUMA copies.
  if (o.bcsr_ || o.sell_) {
    // Partition is unused by these whole-format kernels but kept consistent.
    o.part_ = balanced_nnz_partition(A.rowptr(), A.nrows(), t);
    if (o.sell_)
      o.ext_part_ = balanced_nnz_partition(o.sell_->chunk_ptr(),
                                           o.sell_->num_chunks(), t);
    else
      o.ext_part_ = balanced_nnz_partition(o.bcsr_->blockptr(),
                                           o.bcsr_->num_block_rows(), t);
  } else if (o.split_) {
    o.part_ = balanced_nnz_partition(o.split_->short_part().rowptr(),
                                     o.split_->short_part().nrows(), t);
    o.csr_fn_ = kernels::select_csr_kernel(o.plan_.sched, o.plan_.prefetch,
                                           o.plan_.compute);
    const CsrMatrix& s = o.split_->short_part();
    o.rp_ = s.rowptr();
    o.ci_ = s.colind();
    o.va_ = s.values();
    o.csr_range_fn_ =
        kernels::select_csr_range(o.plan_.compute, o.plan_.prefetch);
    o.partials_.assign(static_cast<std::size_t>(t), 0.0);
  } else if (o.delta_) {
    o.part_ = balanced_nnz_partition(A.rowptr(), A.nrows(), t);
    o.delta_fn_ = kernels::select_delta_kernel(o.plan_.sched, o.plan_.prefetch,
                                               o.plan_.compute);
    o.delta_range_fn_ =
        kernels::select_delta_range(o.plan_.compute, o.plan_.prefetch);
  } else {
    o.csr_ = &A;
    o.part_ = balanced_nnz_partition(A.rowptr(), A.nrows(), t);
    o.csr_fn_ = kernels::select_csr_kernel(o.plan_.sched, o.plan_.prefetch,
                                           o.plan_.compute);
    o.rp_ = A.rowptr();
    o.ci_ = A.colind();
    o.va_ = A.values();
    o.csr_range_fn_ =
        kernels::select_csr_range(o.plan_.compute, o.plan_.prefetch);
  }

  // Fused register-blocked SpMM (DESIGN.md §13) binds to plain-CSR plans
  // only — the structural formats reorder values, and the merge partition
  // is its own schedule.  The non-F64 value modes additionally convert the
  // value stream to float here, once (that copy IS their storage format).
  if (o.csr_ != nullptr && o.merge_fn_ == nullptr) {
    o.spmm_fn_ = kernels::select_spmm_range(kernels::spmm_best_isa(),
                                            o.plan_.precision);
    o.spmm_scratch_ = std::make_shared<SpmmScratchPool>();
    if (o.plan_.precision != Precision::F64) {
      auto vals = std::make_shared<std::vector<float>>(
          static_cast<std::size_t>(A.nnz()));
      const value_t* src = A.values();
      for (std::size_t j = 0; j < vals->size(); ++j)
        (*vals)[j] = static_cast<float>(src[j]);
      o.vals_f32_ = std::move(vals);
      o.vaf_ = o.vals_f32_->data();
    }
    // F32 operand mode: seed one single-vector pack buffer so the noexcept
    // prec_run can always proceed without allocating (under memory pressure
    // concurrent callers serialize on the seed instead of terminating).
    if (operand_dtype(o.plan_.precision) == Dtype::F32)
      o.spmm_scratch_->seed(static_cast<std::size_t>(A.ncols()),
                            static_cast<std::size_t>(A.nrows()));
  }

  o.pre_sec_ = timer.elapsed_sec();
  return o;
}

OptimizedSpmv OptimizedSpmv::create(const CsrMatrix& A, const Plan& plan,
                                    engine::ExecutionEngine& eng) {
  OptimizedSpmv o = create(A, plan, eng.nthreads());
  Timer timer;
  o.engine_ = &eng;

  if (o.csr_ != nullptr) {
    // NUMA-aware materialization: each partition's rowptr/colind/vals slices
    // are copied by the team member that will read them, so (under Linux
    // first-touch) every page lands on that member's node.
    const index_t n = o.nrows_;
    const index_t* src_rp = A.rowptr();
    const index_t* src_ci = A.colind();
    const value_t* src_va = A.values();
    o.own_rowptr_ = numa_vector<index_t>(static_cast<std::size_t>(n) + 1);
    o.own_colind_ = numa_vector<index_t>(static_cast<std::size_t>(A.nnz()));
    o.own_vals_ = numa_vector<value_t>(static_cast<std::size_t>(A.nnz()));
    index_t* dst_rp = o.own_rowptr_.data();
    index_t* dst_ci = o.own_colind_.data();
    value_t* dst_va = o.own_vals_.data();
    float* dst_vf = nullptr;
    if (o.plan_.precision != Precision::F64) {
      o.own_vals_f32_ = numa_vector<float>(static_cast<std::size_t>(A.nnz()));
      dst_vf = o.own_vals_f32_.data();
    }
    const RowPartition& part = o.part_;
    eng.parallel([&](int tid, int nt) {
      for (int p = tid; p < part.nthreads(); p += nt) {
        const index_t lo = part.bounds[p];
        const index_t hi = part.bounds[p + 1];
        const bool last = p == part.nthreads() - 1;
        first_touch_copy(dst_rp + lo, src_rp + lo,
                         static_cast<std::size_t>(hi - lo) + (last ? 1u : 0u));
        const index_t j0 = src_rp[lo];
        const std::size_t jn = static_cast<std::size_t>(src_rp[hi] - j0);
        first_touch_copy(dst_ci + j0, src_ci + j0, jn);
        first_touch_copy(dst_va + j0, src_va + j0, jn);
        // The converting copy first-touches the float stream the same way.
        if (dst_vf != nullptr)
          for (std::size_t q = 0; q < jn; ++q)
            dst_vf[static_cast<std::size_t>(j0) + q] =
                static_cast<float>(src_va[static_cast<std::size_t>(j0) + q]);
      }
    });
    o.rp_ = dst_rp;
    o.ci_ = dst_ci;
    o.va_ = dst_va;
    if (dst_vf != nullptr) {
      o.vaf_ = dst_vf;
      o.vals_f32_.reset();
    }
  }
  // Split/delta range kernels, SELL/BCSR slice partitions, and the raw-array
  // views were already selected by the base create() (team size matches:
  // it ran with eng.nthreads()).

  if ((o.rp_ != nullptr || o.delta_) &&
      o.plan_.sched != kernels::Sched::BalancedStatic)
    o.cursor_ = std::make_shared<std::atomic<index_t>>(0);

  o.pre_sec_ += timer.elapsed_sec();
  return o;
}

void OptimizedSpmv::engine_body(int tid, int nt, const value_t* x,
                                value_t* y) const noexcept {
  if (bcsr_) {
    kernels::spmv_bcsr_block_rows(*bcsr_, ext_part_.bounds[tid],
                                  ext_part_.bounds[tid + 1], x, y);
    return;
  }
  if (sell_) {
    kernels::spmv_sell_chunks(*sell_, ext_part_.bounds[tid],
                              ext_part_.bounds[tid + 1], x, y);
    return;
  }
  if (merge_fn_ != nullptr) {
    // Merge-path: every member runs its span (disjoint y rows + a private
    // carry slot), a barrier, then member 0 folds the carries in.  The
    // second barrier keeps a run_many batch from starting the next item's
    // spans while member 0 still reads this item's carries.
    const int p = merge_part_.nworkers();
    index_t* crow = merge_carry_.row.data();
    value_t* cval = merge_carry_.val.data();
    for (int k = tid; k < p; k += nt)
      merge_fn_(rp_, ci_, va_, merge_part_, k, x, y, crow, cval, pf_dist_);
    engine_->team_barrier();
    if (tid == 0) kernels::merge_fixup(p, merge_part_.nrows, crow, cval, y);
    engine_->team_barrier();
    return;
  }

  // Phase 1: CSR / delta / split-short rows.  Row results are bitwise
  // identical to the composed kernels' regardless of which member computes
  // which row (full-row dot products), so scheduling here is free to differ.
  if (plan_.sched == kernels::Sched::BalancedStatic) {
    const index_t lo = part_.bounds[tid];
    const index_t hi = part_.bounds[tid + 1];
    if (delta_)
      delta_range_fn_(*delta_, lo, hi, x, y, pf_dist_);
    else
      csr_range_fn_(rp_, ci_, va_, lo, hi, x, y, pf_dist_);
  } else {
    const index_t n = nrows_;
    const index_t chunk =
        plan_.sched == kernels::Sched::Dynamic
            ? std::max<index_t>(1, static_cast<index_t>(plan_.dynamic_chunk))
            : std::max<index_t>(64, n / (static_cast<index_t>(nt) * 16));
    std::atomic<index_t>& cur = *cursor_;
    for (;;) {
      const index_t lo = cur.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= n) break;
      const index_t hi = std::min<index_t>(n, lo + chunk);
      if (delta_)
        delta_range_fn_(*delta_, lo, hi, x, y, pf_dist_);
      else
        csr_range_fn_(rp_, ci_, va_, lo, hi, x, y, pf_dist_);
    }
  }
  if (!split_) return;

  // Phase 2: every long row computed by the whole team; tid 0 reduces the
  // per-member partials.  Only the reduction order differs from the
  // fork/join kernel — absorbed by the ULP oracle's bound arm.
  const index_t L = split_->num_long_rows();
  const index_t* lrows = split_->long_rows();
  const index_t* lrowptr = split_->long_rowptr();
  const index_t* lcolind = split_->long_colind();
  const value_t* lvals = split_->long_values();
  value_t* partials = partials_.data();
  for (index_t k = 0; k < L; ++k) {
    const index_t lo = lrowptr[k];
    const index_t hi = lrowptr[k + 1];
    const index_t per = (hi - lo + nt - 1) / nt;
    const index_t jlo = std::min<index_t>(hi, lo + tid * per);
    const index_t jhi = std::min<index_t>(hi, jlo + per);
    partials[tid] = kernels::long_row_partial(lcolind, lvals, jlo, jhi, x);
    engine_->team_barrier();
    if (tid == 0) {
      value_t sum = 0.0;
      for (int t = 0; t < nt; ++t) sum += partials[t];
      y[lrows[k]] = sum;
    }
    engine_->team_barrier();
  }
}

void OptimizedSpmv::spmm_dispatch(const void* Xp, void* Yp,
                                  index_t k) const noexcept {
  const void* vals = plan_.precision == Precision::F64
                         ? static_cast<const void*>(va_)
                         : static_cast<const void*>(vaf_);
  if (plan_.sched == kernels::Sched::BalancedStatic) {
    if (engine_ != nullptr) {
      // Barrier-free body: legal in mailbox AND pooled mode, and since each
      // member's row range is fixed by the balanced partition, the result is
      // bitwise identical to the unbound path below.
      engine_->parallel([this, vals, Xp, Yp, k](int tid, int) {
        spmm_fn_(rp_, ci_, vals, part_.bounds[tid], part_.bounds[tid + 1], Xp,
                 Yp, k);
      });
      return;
    }
#pragma omp parallel num_threads(part_.nthreads())
    {
      const int tid = omp_get_thread_num();
      spmm_fn_(rp_, ci_, vals, part_.bounds[tid], part_.bounds[tid + 1], Xp,
               Yp, k);
    }
    return;
  }
  // Auto/Dynamic: the plan asked for work stealing (skewed row lengths), so
  // honor it with a per-call cursor (concurrent callers never share chunk
  // hand-out state) and the SpMV paths' chunking.  Rows are never
  // subdivided, so the result stays bitwise identical to the static walk.
  std::atomic<index_t> cur{0};
  const auto body = [this, vals, Xp, Yp, k, &cur](int, int nt) noexcept {
    const index_t n = nrows_;
    const index_t chunk =
        plan_.sched == kernels::Sched::Dynamic
            ? std::max<index_t>(1, static_cast<index_t>(plan_.dynamic_chunk))
            : std::max<index_t>(64, n / (static_cast<index_t>(nt) * 16));
    for (;;) {
      const index_t lo = cur.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= n) break;
      const index_t hi = std::min<index_t>(n, lo + chunk);
      spmm_fn_(rp_, ci_, vals, lo, hi, Xp, Yp, k);
    }
  };
  if (engine_ != nullptr) {
    engine_->parallel([&body](int tid, int nt) { body(tid, nt); });
    return;
  }
#pragma omp parallel num_threads(part_.nthreads())
  body(omp_get_thread_num(), omp_get_num_threads());
}

void OptimizedSpmv::prec_run(const value_t* x, value_t* y) const noexcept {
  if (plan_.precision == Precision::F32F64) {
    // Double operands, float value stream: no conversion on the hot path —
    // an n×1 row-major block IS the plain vector.
    spmm_dispatch(x, y, 1);
    return;
  }
  // F32: round the operands at the boundary (O(n), amortized against the
  // O(nnz) kernel), run in float, widen the result back.  The pack scratch
  // is a lease: steady-state callers (block_cg's per-iteration apply) reuse
  // capacity instead of allocating, and the create()-time seed means this
  // noexcept can always proceed — memory pressure serializes concurrent
  // callers on the seed rather than terminating on bad_alloc.
  SpmmScratch* s = spmm_scratch_->acquire_or_wait(
      static_cast<std::size_t>(ncols_), static_cast<std::size_t>(nrows_));
  kernels::spmm_pack_rhs(x, ncols_, 1, s->xf.data(), Precision::F32);
  spmm_dispatch(s->xf.data(), s->yf.data(), 1);
  kernels::spmm_unpack_result(s->yf.data(), nrows_, 1, y, Precision::F32);
  spmm_scratch_->release(s);
}

void OptimizedSpmv::spmm_run_batch(const value_t* X, value_t* Y,
                                   index_t nrhs) const noexcept {
  const Precision prec = plan_.precision;
  const std::size_t xn =
      static_cast<std::size_t>(ncols_) * static_cast<std::size_t>(nrhs);
  const std::size_t yn =
      static_cast<std::size_t>(nrows_) * static_cast<std::size_t>(nrhs);
  // Leased scratch: concurrent run_many() callers on one instance (the
  // multi-executor server) never share a pack buffer, and repeat callers
  // (block_cg's hot loop) reuse capacity instead of allocating per call.
  if (operand_dtype(prec) == Dtype::F32) {
    if (SpmmScratch* s = spmm_scratch_->try_acquire(xn, yn, 0, 0)) {
      kernels::spmm_pack_rhs(X, ncols_, nrhs, s->xf.data(), prec);
      spmm_dispatch(s->xf.data(), s->yf.data(), nrhs);
      kernels::spmm_unpack_result(s->yf.data(), nrows_, nrhs, Y, prec);
      spmm_scratch_->release(s);
      return;
    }
    // Batch scratch unavailable under memory pressure: degrade to per-item
    // fused runs on the seeded single-vector scratch (still noexcept-safe).
    for (index_t r = 0; r < nrhs; ++r)
      prec_run(X + static_cast<std::size_t>(r) * ncols_,
               Y + static_cast<std::size_t>(r) * nrows_);
    return;
  }
  if (SpmmScratch* s = spmm_scratch_->try_acquire(0, 0, xn, yn)) {
    kernels::spmm_pack_rhs(X, ncols_, nrhs, s->xd.data(), prec);
    spmm_dispatch(s->xd.data(), s->yd.data(), nrhs);
    kernels::spmm_unpack_result(s->yd.data(), nrows_, nrhs, Y, prec);
    spmm_scratch_->release(s);
    return;
  }
  // f64-operand fallback needs no staging at all: a vector-major 1-RHS
  // block IS the packed layout, so the batch degrades to allocation-free
  // k == 1 dispatches (F32F64) / plan-scheduled runs (F64).
  for (index_t r = 0; r < nrhs; ++r) {
    const value_t* xr = X + static_cast<std::size_t>(r) * ncols_;
    value_t* yr = Y + static_cast<std::size_t>(r) * nrows_;
    if (prec == Precision::F64)
      run(xr, yr);
    else
      spmm_dispatch(xr, yr, 1);
  }
}

void OptimizedSpmv::run(const value_t* x, value_t* y) const noexcept {
  if (plan_.precision != Precision::F64) {
    prec_run(x, y);
    return;
  }
  if (engine_ != nullptr) {
    if (engine_->pooled()) {
      pooled_run(x, y);
      return;
    }
    if (cursor_) cursor_->store(0, std::memory_order_relaxed);
    engine_->parallel(
        [this, x, y](int tid, int nt) { engine_body(tid, nt, x, y); });
    return;
  }
  if (merge_fn_ != nullptr) {
    kernels::spmv_merge(*csr_, merge_part_, merge_carry_, x, y, merge_fn_,
                        pf_dist_);
  } else if (bcsr_) {
    kernels::spmv_bcsr(*bcsr_, x, y);
  } else if (sell_) {
    kernels::spmv_sell(*sell_, x, y);
  } else if (split_) {
    kernels::spmv_split_composed(*split_, part_, x, y, csr_fn_, pf_dist_,
                                 plan_.dynamic_chunk);
  } else if (delta_) {
    delta_fn_(*delta_, part_, x, y, pf_dist_, plan_.dynamic_chunk);
  } else {
    csr_fn_(*csr_, part_, x, y, pf_dist_, plan_.dynamic_chunk);
  }
}

void OptimizedSpmv::run(std::span<const value_t> x,
                        std::span<value_t> y) const {
  if (x.size() != static_cast<std::size_t>(ncols_) ||
      y.size() != static_cast<std::size_t>(nrows_))
    throw std::invalid_argument("OptimizedSpmv::run: vector size mismatch");
  run(x.data(), y.data());
}

void OptimizedSpmv::run_many(const value_t* X, value_t* Y,
                             int nrhs) const noexcept {
  if (nrhs <= 0) return;
  if (spmm_fn_ != nullptr && nrhs >= 2 &&
      (fuse_batches_ || plan_.precision != Precision::F64)) {
    // Plain-CSR batch: one fused register-blocked SpMM — the matrix streams
    // through the cores once for the whole batch (DESIGN.md §13).  F64
    // plans can opt out via set_batch_fusion(false) when bitwise equality
    // with repeated run() matters more than bandwidth amortization; the
    // non-F64 modes cannot (the fused kernel is their value format).
    spmm_run_batch(X, Y, static_cast<index_t>(nrhs));
    return;
  }
  if (plan_.precision != Precision::F64) {
    prec_run(X, Y);  // nrhs == 1
    return;
  }
  if (engine_ == nullptr) {
    for (int r = 0; r < nrhs; ++r)
      run(X + static_cast<std::size_t>(r) * ncols_,
          Y + static_cast<std::size_t>(r) * nrows_);
    return;
  }
  if (engine_->pooled()) {
    // Pool-backed: one task group per item (no cursor re-arm barriers; pool
    // dispatch is cheap and per-item groups keep the batch stealable).
    for (int r = 0; r < nrhs; ++r)
      pooled_run(X + static_cast<std::size_t>(r) * ncols_,
                 Y + static_cast<std::size_t>(r) * nrows_);
    return;
  }
  // One dispatch for the whole batch: the team stays resident across the
  // sweep, paying the wake/notify round trip once instead of nrhs times.
  if (cursor_) cursor_->store(0, std::memory_order_relaxed);
  engine_->parallel([this, X, Y, nrhs](int tid, int nt) {
    for (int r = 0; r < nrhs; ++r) {
      engine_body(tid, nt, X + static_cast<std::size_t>(r) * ncols_,
                  Y + static_cast<std::size_t>(r) * nrows_);
      if (cursor_ && r + 1 < nrhs) {
        // The shared cursor must be drained by all members and re-armed
        // before the next item starts pulling chunks.
        engine_->team_barrier();
        if (tid == 0) cursor_->store(0, std::memory_order_relaxed);
        engine_->team_barrier();
      }
    }
  });
}

void OptimizedSpmv::run_many(std::span<const value_t> X, std::span<value_t> Y,
                             int nrhs) const {
  if (nrhs < 0 ||
      X.size() != static_cast<std::size_t>(ncols_) *
                      static_cast<std::size_t>(nrhs) ||
      Y.size() != static_cast<std::size_t>(nrows_) *
                      static_cast<std::size_t>(nrhs))
    throw std::invalid_argument(
        "OptimizedSpmv::run_many: batch size mismatch");
  run_many(X.data(), Y.data(), nrhs);
}

void OptimizedSpmv::run(ConstVectorView x, VectorView y) const {
  if (x.count != ncols_ || y.count != nrows_)
    throw std::invalid_argument("OptimizedSpmv::run: vector size mismatch");
  if (x.dtype == Dtype::F64 && y.dtype == Dtype::F64) {
    run(static_cast<const value_t*>(x.data), static_cast<value_t*>(y.data));
    return;
  }
  // f32 operand views: widen on the way in, narrow on the way out.  The
  // computation itself still runs in the plan's precision.
  std::vector<value_t> xd, yd;
  const value_t* xptr;
  if (x.dtype == Dtype::F32) {
    const float* xs = static_cast<const float*>(x.data);
    xd.assign(xs, xs + x.count);
    xptr = xd.data();
  } else {
    xptr = static_cast<const value_t*>(x.data);
  }
  value_t* yptr;
  if (y.dtype == Dtype::F32) {
    yd.resize(static_cast<std::size_t>(nrows_));
    yptr = yd.data();
  } else {
    yptr = static_cast<value_t*>(y.data);
  }
  run(xptr, yptr);
  if (y.dtype == Dtype::F32) {
    float* yo = static_cast<float*>(y.data);
    for (index_t i = 0; i < nrows_; ++i)
      yo[i] = static_cast<float>(yd[static_cast<std::size_t>(i)]);
  }
}

void OptimizedSpmv::run_many(ConstMatrixView X, MatrixView Y) const {
  if (X.rows != Y.rows)
    throw std::invalid_argument(
        "OptimizedSpmv::run_many: right-hand-side count mismatch");
  if (X.cols != ncols_ || Y.cols != nrows_)
    throw std::invalid_argument(
        "OptimizedSpmv::run_many: batch extent mismatch");
  if (X.row_stride() < X.cols || Y.row_stride() < Y.cols)
    throw std::invalid_argument(
        "OptimizedSpmv::run_many: row stride below row extent");
  const index_t nrhs = X.rows;
  if (nrhs <= 0) return;
  if (X.dtype == Dtype::F64 && Y.dtype == Dtype::F64 &&
      X.row_stride() == X.cols && Y.row_stride() == Y.cols) {
    run_many(static_cast<const value_t*>(X.data),
             static_cast<value_t*>(Y.data), static_cast<int>(nrhs));
    return;
  }
  // Strided or f32 views: gather into the contiguous vector-major double
  // layout, run, scatter back.
  std::vector<value_t> xb(static_cast<std::size_t>(ncols_) *
                          static_cast<std::size_t>(nrhs));
  std::vector<value_t> yb(static_cast<std::size_t>(nrows_) *
                          static_cast<std::size_t>(nrhs));
  for (index_t r = 0; r < nrhs; ++r) {
    value_t* dst = xb.data() + static_cast<std::size_t>(r) * ncols_;
    const std::size_t off =
        static_cast<std::size_t>(r) * static_cast<std::size_t>(X.row_stride());
    if (X.dtype == Dtype::F32) {
      const float* src = static_cast<const float*>(X.data) + off;
      for (index_t j = 0; j < ncols_; ++j)
        dst[j] = static_cast<value_t>(src[j]);
    } else {
      const value_t* src = static_cast<const value_t*>(X.data) + off;
      std::copy(src, src + ncols_, dst);
    }
  }
  run_many(xb.data(), yb.data(), static_cast<int>(nrhs));
  for (index_t r = 0; r < nrhs; ++r) {
    const value_t* src = yb.data() + static_cast<std::size_t>(r) * nrows_;
    const std::size_t off =
        static_cast<std::size_t>(r) * static_cast<std::size_t>(Y.row_stride());
    if (Y.dtype == Dtype::F32) {
      float* dst = static_cast<float*>(Y.data) + off;
      for (index_t i = 0; i < nrows_; ++i)
        dst[i] = static_cast<float>(src[i]);
    } else {
      value_t* dst = static_cast<value_t*>(Y.data) + off;
      std::copy(src, src + nrows_, dst);
    }
  }
}

void OptimizedSpmv::cancellable_body(int tid, int nt, const value_t* x,
                                     value_t* y,
                                     CancelCtx& c) const noexcept {
  // Poll = one relaxed load of the sticky flag plus the token (an atomic
  // load, and a clock read when a deadline is set).  Members that trip set
  // `aborted` so the rest stop at their own next poll without re-reading the
  // clock.  Invariant: an early abort never changes how many barriers a
  // member passes — only lockstep phases (split phase 2, handled below with
  // a published stop flag) may break, and they break uniformly.
  const auto tripped = [&c]() noexcept {
    if (c.aborted.load(std::memory_order_relaxed)) return true;
    if (c.tok.cancelled()) {
      c.aborted.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  if (bcsr_ || sell_) {
    // Whole-format slices: walk this member's chunk/block-row range in
    // bounded quanta.  SELL chunks hold sell_native_chunk() rows and BCSR
    // block rows hold br rows, so the row quantum stays on the same order.
    // The serial unbound walk (nt == 1) covers every partition, not just
    // slice 0 of a multi-thread partition.
    const index_t quantum = std::max<index_t>(1, kCancelChunkRows / 8);
    index_t lo = ext_part_.bounds[tid];
    const index_t end = nt == 1 ? ext_part_.bounds[ext_part_.nthreads()]
                                : ext_part_.bounds[tid + 1];
    while (lo < end) {
      if (tripped()) return;
      const index_t hi = std::min<index_t>(end, lo + quantum);
      if (bcsr_)
        kernels::spmv_bcsr_block_rows(*bcsr_, lo, hi, x, y);
      else
        kernels::spmv_sell_chunks(*sell_, lo, hi, x, y);
      c.done.fetch_add(hi - lo, std::memory_order_relaxed);
      lo = hi;
    }
    return;
  }

  if (merge_fn_ != nullptr) {
    // One merge span (its rows+nnz share) is the chunk quantum.  An aborting
    // member skips its remaining spans but still arrives at both barriers,
    // and member 0 skips the carry fix-up on abort (y is discarded anyway).
    const int p = merge_part_.nworkers();
    index_t* crow = merge_carry_.row.data();
    value_t* cval = merge_carry_.val.data();
    for (int k = tid; k < p; k += nt) {
      if (tripped()) break;
      merge_fn_(rp_, ci_, va_, merge_part_, k, x, y, crow, cval, pf_dist_);
      c.done.fetch_add(1, std::memory_order_relaxed);
    }
    if (engine_ != nullptr) engine_->team_barrier();
    if (tid == 0 && !c.aborted.load(std::memory_order_relaxed))
      kernels::merge_fixup(p, merge_part_.nrows, crow, cval, y);
    if (engine_ != nullptr) engine_->team_barrier();
    return;
  }

  // Phase 1: CSR / delta / split-short rows in kCancelChunkRows slices.
  // The serial unbound walk (nt == 1) covers every partition.
  if (plan_.sched == kernels::Sched::BalancedStatic || cursor_ == nullptr) {
    index_t lo = part_.bounds[tid];
    const index_t end = nt == 1 ? part_.bounds[part_.nthreads()]
                                : part_.bounds[tid + 1];
    while (lo < end) {
      if (tripped()) break;
      const index_t hi = std::min<index_t>(end, lo + kCancelChunkRows);
      if (delta_)
        delta_range_fn_(*delta_, lo, hi, x, y, pf_dist_);
      else
        csr_range_fn_(rp_, ci_, va_, lo, hi, x, y, pf_dist_);
      c.done.fetch_add(hi - lo, std::memory_order_relaxed);
      lo = hi;
    }
  } else {
    // Dynamic/guided: the shared cursor already hands out bounded chunks;
    // cap them at the cancel quantum and poll per pull.
    const index_t n = nrows_;
    const index_t chunk = std::min<index_t>(
        kCancelChunkRows,
        plan_.sched == kernels::Sched::Dynamic
            ? std::max<index_t>(1, static_cast<index_t>(plan_.dynamic_chunk))
            : std::max<index_t>(64, n / (static_cast<index_t>(nt) * 16)));
    std::atomic<index_t>& cur = *cursor_;
    for (;;) {
      if (tripped()) break;
      const index_t lo = cur.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= n) break;
      const index_t hi = std::min<index_t>(n, lo + chunk);
      if (delta_)
        delta_range_fn_(*delta_, lo, hi, x, y, pf_dist_);
      else
        csr_range_fn_(rp_, ci_, va_, lo, hi, x, y, pf_dist_);
      c.done.fetch_add(hi - lo, std::memory_order_relaxed);
    }
  }
  if (!split_) return;

  // Phase 2: long rows in lockstep.  Member 0 publishes the abort decision,
  // a barrier makes it visible, and every member reads the same value before
  // member 0 can write the next one (the trailing barriers of this iteration
  // order the reads before that write) — so the team always breaks out of
  // the same iteration and barrier counts stay equal.
  const index_t L = split_->num_long_rows();
  const index_t* lrows = split_->long_rows();
  const index_t* lrowptr = split_->long_rowptr();
  const index_t* lcolind = split_->long_colind();
  const value_t* lvals = split_->long_values();
  value_t* partials = partials_.data();
  for (index_t k = 0; k < L; ++k) {
    if (tid == 0 && tripped())
      c.stop.store(true, std::memory_order_relaxed);
    if (engine_ != nullptr) engine_->team_barrier();
    if (c.stop.load(std::memory_order_relaxed)) break;
    const index_t lo = lrowptr[k];
    const index_t hi = lrowptr[k + 1];
    const index_t per = (hi - lo + nt - 1) / nt;
    const index_t jlo = std::min<index_t>(hi, lo + tid * per);
    const index_t jhi = std::min<index_t>(hi, jlo + per);
    partials[tid] = kernels::long_row_partial(lcolind, lvals, jlo, jhi, x);
    if (engine_ != nullptr) engine_->team_barrier();
    if (tid == 0) {
      value_t sum = 0.0;
      for (int t = 0; t < nt; ++t) sum += partials[t];
      y[lrows[k]] = sum;
      c.done.fetch_add(1, std::memory_order_relaxed);
    }
    if (engine_ != nullptr) engine_->team_barrier();
  }
}

void OptimizedSpmv::pooled_run(const value_t* x, value_t* y) const noexcept {
  engine::ExecutionEngine& eng = *engine_;

  if (bcsr_ || sell_) {
    // Disjoint chunk/block-row slices — already barrier-free.
    eng.parallel([this, x, y](int tid, int) {
      if (bcsr_)
        kernels::spmv_bcsr_block_rows(*bcsr_, ext_part_.bounds[tid],
                                      ext_part_.bounds[tid + 1], x, y);
      else
        kernels::spmv_sell_chunks(*sell_, ext_part_.bounds[tid],
                                  ext_part_.bounds[tid + 1], x, y);
    });
    return;
  }

  if (merge_fn_ != nullptr) {
    // Phased merge: spans in parallel into a per-call carry, then the caller
    // folds the carries in serially after the join (the in-dispatch barrier +
    // member-0 fix-up of the mailbox path is illegal on a pool).
    const int p = merge_part_.nworkers();
    kernels::MergeCarry carry;
    carry.resize(p);
    index_t* crow = carry.row.data();
    value_t* cval = carry.val.data();
    eng.parallel([this, x, y, crow, cval, p](int tid, int nt) {
      for (int k = tid; k < p; k += nt)
        merge_fn_(rp_, ci_, va_, merge_part_, k, x, y, crow, cval, pf_dist_);
    });
    kernels::merge_fixup(p, merge_part_.nrows, crow, cval, y);
    return;
  }

  // Phase 1: CSR / delta / split-short rows.  Dynamic/guided scheduling uses
  // a per-call cursor (not the shared cursor_) so concurrent run() calls on
  // one instance never fight over chunk hand-out state.
  if (plan_.sched == kernels::Sched::BalancedStatic) {
    eng.parallel([this, x, y](int tid, int) {
      const index_t lo = part_.bounds[tid];
      const index_t hi = part_.bounds[tid + 1];
      if (delta_)
        delta_range_fn_(*delta_, lo, hi, x, y, pf_dist_);
      else
        csr_range_fn_(rp_, ci_, va_, lo, hi, x, y, pf_dist_);
    });
  } else {
    std::atomic<index_t> cur{0};
    eng.parallel([this, x, y, &cur](int, int nt) {
      const index_t n = nrows_;
      const index_t chunk =
          plan_.sched == kernels::Sched::Dynamic
              ? std::max<index_t>(1, static_cast<index_t>(plan_.dynamic_chunk))
              : std::max<index_t>(64, n / (static_cast<index_t>(nt) * 16));
      for (;;) {
        const index_t lo = cur.fetch_add(chunk, std::memory_order_relaxed);
        if (lo >= n) break;
        const index_t hi = std::min<index_t>(n, lo + chunk);
        if (delta_)
          delta_range_fn_(*delta_, lo, hi, x, y, pf_dist_);
        else
          csr_range_fn_(rp_, ci_, va_, lo, hi, x, y, pf_dist_);
      }
    });
  }
  if (!split_) return;

  // Phase 2: every span computes its column slice of every long row into a
  // per-call L×nt scratch; the caller reduces each row in tid-ascending order
  // after the join — the same summation order as the mailbox path, so the
  // result stays bitwise identical.
  const index_t L = split_->num_long_rows();
  const index_t* lrows = split_->long_rows();
  const index_t* lrowptr = split_->long_rowptr();
  const index_t* lcolind = split_->long_colind();
  const value_t* lvals = split_->long_values();
  const int nt = eng.nthreads();
  aligned_vector<value_t> partials(
      static_cast<std::size_t>(L) * static_cast<std::size_t>(nt), 0.0);
  value_t* part = partials.data();
  eng.parallel([&, x](int tid, int ntl) {
    for (index_t k = 0; k < L; ++k) {
      const index_t lo = lrowptr[k];
      const index_t hi = lrowptr[k + 1];
      const index_t per = (hi - lo + ntl - 1) / ntl;
      const index_t jlo = std::min<index_t>(hi, lo + tid * per);
      const index_t jhi = std::min<index_t>(hi, jlo + per);
      part[static_cast<std::size_t>(k) * static_cast<std::size_t>(ntl) + tid] =
          kernels::long_row_partial(lcolind, lvals, jlo, jhi, x);
    }
  });
  for (index_t k = 0; k < L; ++k) {
    value_t sum = 0.0;
    for (int t = 0; t < nt; ++t)
      sum += part[static_cast<std::size_t>(k) * static_cast<std::size_t>(nt) +
                  t];
    y[lrows[k]] = sum;
  }
}

void OptimizedSpmv::pooled_cancellable(const value_t* x, value_t* y,
                                       CancelCtx& c) const noexcept {
  // Same sticky-flag poll as cancellable_body.  The poll sits *inside* every
  // span body at kCancelChunkRows granularity: a dispatch whose spans are
  // stolen across pool workers still observes a trip within one chunk, not
  // one partition (the stolen-sub-span granularity fix, DESIGN.md §12).
  const auto tripped = [&c]() noexcept {
    if (c.aborted.load(std::memory_order_relaxed)) return true;
    if (c.tok.cancelled()) {
      c.aborted.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };
  engine::ExecutionEngine& eng = *engine_;

  if (bcsr_ || sell_) {
    eng.parallel([&, this, x, y](int tid, int) {
      const index_t quantum = std::max<index_t>(1, kCancelChunkRows / 8);
      index_t lo = ext_part_.bounds[tid];
      const index_t end = ext_part_.bounds[tid + 1];
      while (lo < end) {
        if (tripped()) return;
        const index_t hi = std::min<index_t>(end, lo + quantum);
        if (bcsr_)
          kernels::spmv_bcsr_block_rows(*bcsr_, lo, hi, x, y);
        else
          kernels::spmv_sell_chunks(*sell_, lo, hi, x, y);
        c.done.fetch_add(hi - lo, std::memory_order_relaxed);
        lo = hi;
      }
    });
    return;
  }

  if (merge_fn_ != nullptr) {
    const int p = merge_part_.nworkers();
    kernels::MergeCarry carry;
    carry.resize(p);
    index_t* crow = carry.row.data();
    value_t* cval = carry.val.data();
    eng.parallel([&, this, x, y](int tid, int nt) {
      for (int k = tid; k < p; k += nt) {
        if (tripped()) break;
        merge_fn_(rp_, ci_, va_, merge_part_, k, x, y, crow, cval, pf_dist_);
        c.done.fetch_add(1, std::memory_order_relaxed);
      }
    });
    // Fix-up only on a clean join; an aborted y is discarded anyway.
    if (!c.aborted.load(std::memory_order_relaxed))
      kernels::merge_fixup(p, merge_part_.nrows, crow, cval, y);
    return;
  }

  // Phase 1 in kCancelChunkRows slices (per-call cursor for dynamic plans).
  if (plan_.sched == kernels::Sched::BalancedStatic) {
    eng.parallel([&, this, x, y](int tid, int) {
      index_t lo = part_.bounds[tid];
      const index_t end = part_.bounds[tid + 1];
      while (lo < end) {
        if (tripped()) break;
        const index_t hi = std::min<index_t>(end, lo + kCancelChunkRows);
        if (delta_)
          delta_range_fn_(*delta_, lo, hi, x, y, pf_dist_);
        else
          csr_range_fn_(rp_, ci_, va_, lo, hi, x, y, pf_dist_);
        c.done.fetch_add(hi - lo, std::memory_order_relaxed);
        lo = hi;
      }
    });
  } else {
    std::atomic<index_t> cur{0};
    eng.parallel([&, this, x, y](int, int nt) {
      const index_t n = nrows_;
      const index_t chunk = std::min<index_t>(
          kCancelChunkRows,
          plan_.sched == kernels::Sched::Dynamic
              ? std::max<index_t>(1, static_cast<index_t>(plan_.dynamic_chunk))
              : std::max<index_t>(64, n / (static_cast<index_t>(nt) * 16)));
      for (;;) {
        if (tripped()) break;
        const index_t lo = cur.fetch_add(chunk, std::memory_order_relaxed);
        if (lo >= n) break;
        const index_t hi = std::min<index_t>(n, lo + chunk);
        if (delta_)
          delta_range_fn_(*delta_, lo, hi, x, y, pf_dist_);
        else
          csr_range_fn_(rp_, ci_, va_, lo, hi, x, y, pf_dist_);
        c.done.fetch_add(hi - lo, std::memory_order_relaxed);
      }
    });
  }
  if (!split_ || c.aborted.load(std::memory_order_relaxed)) return;

  // Phase 2: spans poll once per long row (the row quantum floor of the
  // mailbox path); a span that trips records the lowest row it abandoned so
  // the caller reduces only rows every span completed.
  const index_t L = split_->num_long_rows();
  const index_t* lrows = split_->long_rows();
  const index_t* lrowptr = split_->long_rowptr();
  const index_t* lcolind = split_->long_colind();
  const value_t* lvals = split_->long_values();
  const int nt = eng.nthreads();
  aligned_vector<value_t> partials(
      static_cast<std::size_t>(L) * static_cast<std::size_t>(nt), 0.0);
  value_t* part = partials.data();
  std::atomic<index_t> complete{L};
  eng.parallel([&, x](int tid, int ntl) {
    for (index_t k = 0; k < L; ++k) {
      if (tripped()) {
        index_t seen = complete.load(std::memory_order_relaxed);
        while (k < seen && !complete.compare_exchange_weak(
                               seen, k, std::memory_order_relaxed))
          ;
        return;
      }
      const index_t lo = lrowptr[k];
      const index_t hi = lrowptr[k + 1];
      const index_t per = (hi - lo + ntl - 1) / ntl;
      const index_t jlo = std::min<index_t>(hi, lo + tid * per);
      const index_t jhi = std::min<index_t>(hi, jlo + per);
      part[static_cast<std::size_t>(k) * static_cast<std::size_t>(ntl) + tid] =
          kernels::long_row_partial(lcolind, lvals, jlo, jhi, x);
    }
  });
  const index_t upto = complete.load(std::memory_order_relaxed);
  for (index_t k = 0; k < upto; ++k) {
    value_t sum = 0.0;
    for (int t = 0; t < nt; ++t)
      sum += part[static_cast<std::size_t>(k) * static_cast<std::size_t>(nt) +
                  t];
    y[lrows[k]] = sum;
    c.done.fetch_add(1, std::memory_order_relaxed);
  }
}

std::int64_t OptimizedSpmv::cancel_units_total() const noexcept {
  if (merge_fn_ != nullptr) return merge_part_.nworkers();
  if (sell_) return sell_->num_chunks();
  if (bcsr_) return bcsr_->num_block_rows();
  if (split_)
    return static_cast<std::int64_t>(split_->short_part().nrows()) +
           split_->num_long_rows();
  return nrows_;
}

const char* OptimizedSpmv::cancel_units_name() const noexcept {
  if (merge_fn_ != nullptr) return "merge spans";
  if (sell_) return "SELL chunks";
  if (bcsr_) return "block rows";
  return "rows";
}

namespace {

std::string progress_string(std::int64_t done, std::int64_t total,
                            const char* units) {
  return "after " + std::to_string(done) + " of " + std::to_string(total) +
         " " + units;
}

}  // namespace

void OptimizedSpmv::spmm_cancellable(const void* Xp, void* Yp, index_t k,
                                     CancelCtx& c) const noexcept {
  const void* vals = plan_.precision == Precision::F64
                         ? static_cast<const void*>(va_)
                         : static_cast<const void*>(vaf_);
  const auto walk = [this, vals, Xp, Yp, k, &c](index_t lo,
                                                index_t end) noexcept {
    while (lo < end) {
      if (c.aborted.load(std::memory_order_relaxed)) return;
      if (c.tok.cancelled()) {
        c.aborted.store(true, std::memory_order_relaxed);
        return;
      }
      const index_t hi = std::min<index_t>(end, lo + kCancelChunkRows);
      spmm_fn_(rp_, ci_, vals, lo, hi, Xp, Yp, k);
      c.done.fetch_add(static_cast<std::int64_t>(hi - lo) * k,
                       std::memory_order_relaxed);
      lo = hi;
    }
  };
  if (engine_ == nullptr) {
    walk(0, nrows_);
    return;
  }
  if (plan_.sched == kernels::Sched::BalancedStatic) {
    engine_->parallel([&walk, this](int tid, int) {
      walk(part_.bounds[tid], part_.bounds[tid + 1]);
    });
    return;
  }
  // Auto/Dynamic: honor the plan's work stealing with a per-call cursor;
  // chunks are capped at the cancel quantum so a trip is observed within
  // one chunk regardless of the plan's dynamic_chunk.
  std::atomic<index_t> cur{0};
  engine_->parallel([&, this, vals, Xp, Yp, k](int, int nt) {
    const index_t n = nrows_;
    const index_t chunk = std::min<index_t>(
        kCancelChunkRows,
        plan_.sched == kernels::Sched::Dynamic
            ? std::max<index_t>(1, static_cast<index_t>(plan_.dynamic_chunk))
            : std::max<index_t>(64, n / (static_cast<index_t>(nt) * 16)));
    for (;;) {
      if (c.aborted.load(std::memory_order_relaxed)) return;
      if (c.tok.cancelled()) {
        c.aborted.store(true, std::memory_order_relaxed);
        return;
      }
      const index_t lo = cur.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= n) return;
      const index_t hi = std::min<index_t>(n, lo + chunk);
      spmm_fn_(rp_, ci_, vals, lo, hi, Xp, Yp, k);
      c.done.fetch_add(static_cast<std::int64_t>(hi - lo) * k,
                       std::memory_order_relaxed);
    }
  });
}

Status OptimizedSpmv::spmm_run_cancellable(
    const value_t* X, value_t* Y, index_t nrhs,
    const robust::CancelToken& tok) const {
  CancelCtx c{tok};
  const Precision prec = plan_.precision;
  const std::size_t xn =
      static_cast<std::size_t>(ncols_) * static_cast<std::size_t>(nrhs);
  const std::size_t yn =
      static_cast<std::size_t>(nrows_) * static_cast<std::size_t>(nrhs);
  const bool f32_ops = operand_dtype(prec) == Dtype::F32;
  if (!f32_ops && nrhs == 1) {
    // A vector-major 1-RHS batch is already the packed layout.
    spmm_cancellable(X, Y, 1, c);
  } else {
    // Leased pack scratch (reused across calls); a failed lease surfaces as
    // a typed Resource error — this path is the server's, and bad_alloc
    // escaping into it would terminate the whole multi-tenant process.
    SpmmScratch* s = f32_ops ? spmm_scratch_->try_acquire(xn, yn, 0, 0)
                             : spmm_scratch_->try_acquire(0, 0, xn, yn);
    if (s == nullptr)
      return Error(ErrorCategory::Resource,
                   "fused SpMM: pack scratch allocation failed (" +
                       std::to_string(nrhs) + " right-hand sides, " +
                       std::to_string(xn + yn) + " elements)");
    if (f32_ops) {
      kernels::spmm_pack_rhs(X, ncols_, nrhs, s->xf.data(), prec);
      spmm_cancellable(s->xf.data(), s->yf.data(), nrhs, c);
      if (!c.aborted.load(std::memory_order_relaxed))
        kernels::spmm_unpack_result(s->yf.data(), nrows_, nrhs, Y, prec);
    } else {
      kernels::spmm_pack_rhs(X, ncols_, nrhs, s->xd.data(), prec);
      spmm_cancellable(s->xd.data(), s->yd.data(), nrhs, c);
      if (!c.aborted.load(std::memory_order_relaxed))
        kernels::spmm_unpack_result(s->yd.data(), nrows_, nrhs, Y, prec);
    }
    spmm_scratch_->release(s);
  }
  if (!c.aborted.load(std::memory_order_relaxed)) return Unit{};
  return tok.to_error(progress_string(
                          c.done.load(std::memory_order_relaxed),
                          static_cast<std::int64_t>(nrows_) * nrhs, "rows"))
      .with_context("while running fused SpMM (" + std::to_string(nrhs) +
                    " right-hand sides)");
}

Status OptimizedSpmv::run(const value_t* x, value_t* y,
                          const robust::CancelToken& tok) const {
  if (plan_.precision != Precision::F64)
    return spmm_run_cancellable(x, y, 1, tok);
  CancelCtx c{tok};
  if (engine_ != nullptr && engine_->pooled()) {
    pooled_cancellable(x, y, c);
  } else if (engine_ != nullptr) {
    if (cursor_) cursor_->store(0, std::memory_order_relaxed);
    engine_->parallel([this, x, y, &c](int tid, int nt) {
      cancellable_body(tid, nt, x, y, c);
    });
  } else {
    cancellable_body(0, 1, x, y, c);
  }
  if (!c.aborted.load(std::memory_order_relaxed)) return Unit{};
  return tok.to_error(progress_string(c.done.load(std::memory_order_relaxed),
                                      cancel_units_total(),
                                      cancel_units_name()))
      .with_context("while running SpMV (" + std::to_string(nrows_) +
                    " rows)");
}

Status OptimizedSpmv::run_many(const value_t* X, value_t* Y, int nrhs,
                               const robust::CancelToken& tok) const {
  if (nrhs <= 0) return Unit{};
  // Mirror the non-cancellable routing exactly, so a run that completes is
  // bitwise identical to run_many() without a token.
  if (spmm_fn_ != nullptr && (plan_.precision != Precision::F64 ||
                              (fuse_batches_ && nrhs >= 2)))
    return spmm_run_cancellable(X, Y, static_cast<index_t>(nrhs), tok);
  CancelCtx c{tok};
  if (engine_ == nullptr) {
    for (int r = 0; r < nrhs; ++r) {
      if (tok.cancelled()) {
        c.aborted.store(true, std::memory_order_relaxed);
        break;
      }
      cancellable_body(0, 1, X + static_cast<std::size_t>(r) * ncols_,
                       Y + static_cast<std::size_t>(r) * nrows_, c);
      if (c.aborted.load(std::memory_order_relaxed)) break;
    }
  } else if (engine_->pooled()) {
    // Per-item groups with an item-boundary poll — batch semantics match the
    // mailbox path (stop between right-hand sides, partial y discarded).
    for (int r = 0; r < nrhs; ++r) {
      if (tok.cancelled()) {
        c.aborted.store(true, std::memory_order_relaxed);
        break;
      }
      pooled_cancellable(X + static_cast<std::size_t>(r) * ncols_,
                         Y + static_cast<std::size_t>(r) * nrows_, c);
      if (c.aborted.load(std::memory_order_relaxed)) break;
    }
  } else {
    if (cursor_) cursor_->store(0, std::memory_order_relaxed);
    engine_->parallel([this, X, Y, nrhs, &c](int tid, int nt) {
      for (int r = 0; r < nrhs; ++r) {
        cancellable_body(tid, nt, X + static_cast<std::size_t>(r) * ncols_,
                         Y + static_cast<std::size_t>(r) * nrows_, c);
        if (r + 1 == nrhs) break;
        // Item boundary: member 0 publishes continue/stop and re-arms the
        // cursor; the barrier pair keeps the decision uniform and keeps any
        // member from pulling next-item chunks before the re-arm.
        engine_->team_barrier();
        if (tid == 0) {
          if (c.tok.cancelled()) c.aborted.store(true, std::memory_order_relaxed);
          c.stop.store(c.aborted.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
          if (cursor_) cursor_->store(0, std::memory_order_relaxed);
        }
        engine_->team_barrier();
        if (c.stop.load(std::memory_order_relaxed)) break;
      }
    });
  }
  if (!c.aborted.load(std::memory_order_relaxed)) return Unit{};
  return tok.to_error(progress_string(
                          c.done.load(std::memory_order_relaxed),
                          cancel_units_total() * nrhs, cancel_units_name()))
      .with_context("while running batched SpMV (" + std::to_string(nrhs) +
                    " right-hand sides)");
}

PlacementStats OptimizedSpmv::placement() const {
  PlacementStats s;
  s.engine_bound = engine_ != nullptr;
  s.numa_materialized = !own_vals_.empty();
  s.team_size = engine_ != nullptr ? engine_->nthreads() : nthreads();
  s.numa_nodes = topology().num_nodes();
  if (engine_ != nullptr) s.pinned_cpus = engine_->pinned_cpus();
  s.materialized_bytes = own_rowptr_.size() * sizeof(index_t) +
                         own_colind_.size() * sizeof(index_t) +
                         own_vals_.size() * sizeof(value_t);
  return s;
}

std::size_t OptimizedSpmv::format_bytes() const noexcept {
  if (bcsr_) return bcsr_->format_bytes();
  if (sell_) return sell_->format_bytes();
  if (split_)
    return split_->short_part().format_bytes() +
           static_cast<std::size_t>(split_->num_long_rows() + 1 +
                                    split_->num_long_rows()) *
               sizeof(index_t) +
           static_cast<std::size_t>(split_->nnz() -
                                    split_->short_part().nnz()) *
               (sizeof(index_t) + sizeof(value_t));
  if (delta_) return delta_->format_bytes();
  return csr_ != nullptr ? csr_->format_bytes() : 0;
}

}  // namespace spmvopt::optimize
