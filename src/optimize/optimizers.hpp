// The optimizer family evaluated in §IV (Fig. 7 columns and Table V rows).
//
//   profile-guided  — online profiling → Fig. 4 rules → Table II plan
//   feature-guided  — feature extraction → pre-trained tree → Table II plan
//   trivial-single  — measure all 5 single optimizations, keep the best
//   trivial-combined— singles + pairwise joins (15 candidates), keep the best
//   oracle          — exhaustive over every executable plan ("the perfect
//                     optimizer that always selects the best optimization")
// Every optimizer reports t_pre: decision-making plus format-conversion cost,
// which Table V converts into the minimum solver iterations to amortize.
#pragma once

#include "classify/feature_classifier.hpp"
#include "classify/profile_classifier.hpp"
#include "optimize/optimized_spmv.hpp"
#include "perf/measure.hpp"

namespace spmvopt::optimize {

struct OptimizeOutcome {
  Plan plan;                       ///< the plan that will run
  classify::ClassSet classes;      ///< detected classes (adaptive optimizers)
  double preprocess_seconds = 0.0; ///< t_pre: decision + conversion
  OptimizedSpmv spmv;              ///< ready-to-run kernel
};

struct OptimizerConfig {
  int nthreads = 0;  ///< <= 0: default_threads()
  /// Effort of *measurement-based* decision phases (profiling runs of the
  /// profile-guided classifier, candidate sweeps of the trivial optimizers).
  perf::MeasureConfig measure = perf::MeasureConfig::from_env();
  classify::ProfileParams profile_params{};
  /// Oracle only: also search the extension formats (SELL-C-σ, BCSR).  Off
  /// by default so the oracle matches the paper's definition — "the best
  /// optimization available" in *its* pool.
  bool oracle_extensions = false;
};

/// Profile-guided adaptive optimizer (§III-C).
[[nodiscard]] OptimizeOutcome optimize_profile(const CsrMatrix& A,
                                               const OptimizerConfig& cfg = {});

/// Feature-guided adaptive optimizer (§III-D); `clf` must be trained.
[[nodiscard]] OptimizeOutcome optimize_feature(
    const CsrMatrix& A, const classify::FeatureClassifier& clf,
    const OptimizerConfig& cfg = {});

/// Trivial optimizer sweeping the 5 single optimizations.
[[nodiscard]] OptimizeOutcome optimize_trivial_single(
    const CsrMatrix& A, const OptimizerConfig& cfg = {});

/// Trivial optimizer sweeping singles + pairs (15 candidates).
[[nodiscard]] OptimizeOutcome optimize_trivial_combined(
    const CsrMatrix& A, const OptimizerConfig& cfg = {});

/// Oracle: exhaustive over enumerate_plans(A).  t_pre is reported but the
/// oracle exists as an upper reference, not a practical optimizer.
[[nodiscard]] OptimizeOutcome optimize_oracle(const CsrMatrix& A,
                                              const OptimizerConfig& cfg = {});

/// Shared helper: measure the Gflop/s of one prepared kernel per the paper's
/// methodology (used by benches and the sweeping optimizers).
[[nodiscard]] double measure_spmv_gflops(const OptimizedSpmv& spmv,
                                         const CsrMatrix& A,
                                         const perf::MeasureConfig& cfg);

}  // namespace spmvopt::optimize
