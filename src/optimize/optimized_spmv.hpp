// OptimizedSpmv: a Plan bound to a matrix, ready to run.
//
// `create()` performs all preprocessing the plan requires — balanced-nnz
// partitioning, delta encoding, long-row decomposition — selects the
// specialized kernel instantiation (the JIT stand-in, DESIGN.md §3), and
// records the total preprocessing time (the t_pre of Table V).
//
// Lifetime: OptimizedSpmv holds a *view* of the input matrix when the plan
// runs on plain CSR (no copy — SpMV operands are large); the caller must
// keep `A` alive for as long as run() is used.  Plans that convert the
// format (delta, split) own their converted data.
#pragma once

#include <span>

#include "optimize/plan.hpp"
#include "robust/degradation.hpp"
#include "sparse/delta_csr.hpp"
#include "sparse/sell.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/split_csr.hpp"
#include "support/partition.hpp"

namespace spmvopt::optimize {

class OptimizedSpmv {
 public:
  /// Empty (not yet bound to a matrix); assign from create() before run().
  OptimizedSpmv() = default;

  /// Preprocess `A` for `plan`.  Construction never fails on a valid matrix:
  /// when a plan feature cannot be built (delta gaps unencodable, a
  /// BCSR/SELL/split conversion throws), the feature is dropped and
  /// preprocessing continues on the next rung of the ladder, down to
  /// baseline CSR (DESIGN.md §6).  Query `plan()` for what actually runs and
  /// `degradation()` for every dropped rung and why.  Conflicting feature
  /// combinations still throw std::invalid_argument — that is a programmer
  /// error, not a data fault.  `nthreads` <= 0 means default_threads().
  static OptimizedSpmv create(const CsrMatrix& A, const Plan& plan,
                              int nthreads = 0);

  /// y = A * x.  Hot path: unchecked, noexcept.
  void run(const value_t* x, value_t* y) const noexcept;

  /// Checked overload.
  void run(std::span<const value_t> x, std::span<value_t> y) const;

  [[nodiscard]] const Plan& plan() const noexcept { return plan_; }
  [[nodiscard]] const robust::DegradationLog& degradation() const noexcept {
    return degradation_;
  }
  [[nodiscard]] double preprocessing_seconds() const noexcept { return pre_sec_; }
  [[nodiscard]] index_t nrows() const noexcept { return nrows_; }
  [[nodiscard]] index_t ncols() const noexcept { return ncols_; }
  [[nodiscard]] int nthreads() const noexcept { return part_.nthreads(); }

  /// Bytes of the matrix representation actually used at run time
  /// (after compression / decomposition).
  [[nodiscard]] std::size_t format_bytes() const noexcept;

 private:
  Plan plan_;
  robust::DegradationLog degradation_;
  const CsrMatrix* csr_ = nullptr;  ///< view; null when a converted format owns
  std::optional<DeltaCsrMatrix> delta_;
  std::optional<SplitCsrMatrix> split_;
  std::optional<SellMatrix> sell_;
  std::optional<BcsrMatrix> bcsr_;
  RowPartition part_;
  kernels::CsrKernelFn csr_fn_ = nullptr;
  kernels::DeltaKernelFn delta_fn_ = nullptr;
  index_t pf_dist_ = 8;
  double pre_sec_ = 0.0;
  index_t nrows_ = 0;
  index_t ncols_ = 0;
};

}  // namespace spmvopt::optimize
