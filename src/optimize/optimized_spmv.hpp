// OptimizedSpmv: a Plan bound to a matrix, ready to run.
//
// `create()` performs all preprocessing the plan requires — balanced-nnz
// partitioning, delta encoding, long-row decomposition — selects the
// specialized kernel instantiation (the JIT stand-in, DESIGN.md §3), and
// records the total preprocessing time (the t_pre of Table V).
//
// Lifetime: OptimizedSpmv holds a *view* of the input matrix when the plan
// runs on plain CSR (no copy — SpMV operands are large); the caller must
// keep `A` alive for as long as run() is used.  Plans that convert the
// format (delta, split) own their converted data.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "engine/execution_engine.hpp"
#include "kernels/spmm_blocked.hpp"
#include "kernels/team_body.hpp"
#include "optimize/plan.hpp"
#include "robust/cancel.hpp"
#include "robust/degradation.hpp"
#include "robust/error.hpp"
#include "sparse/delta_csr.hpp"
#include "sparse/sell.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/split_csr.hpp"
#include "support/numa_alloc.hpp"
#include "support/partition.hpp"

namespace spmvopt::optimize {

/// Pack/unpack scratch of one fused-SpMM call (the operand-dtype staging
/// buffers of DESIGN.md §13).  Leased from SpmmScratchPool so steady-state
/// batch callers (block_cg's per-iteration apply_many) reuse capacity
/// instead of allocating on every call.
struct SpmmScratch {
  std::vector<float> xf, yf;    ///< f32-operand modes (F32)
  std::vector<double> xd, yd;   ///< f64-operand modes (F64 batch, F32F64)
};

/// Mutex-guarded free list of SpmmScratch buffers shared by all concurrent
/// callers on one OptimizedSpmv (the multi-executor server runs N calls on
/// one hot cache entry).  Everything past construction is noexcept: release
/// never allocates (the free-list capacity is pre-reserved alongside every
/// buffer), and acquisition failure is reported (`try_acquire`) or absorbed
/// by waiting for a lease to return (`acquire_or_wait`) instead of letting
/// std::bad_alloc escape into the noexcept run paths.
class SpmmScratchPool {
 public:
  /// Lease a buffer with at least the requested element counts, reusing a
  /// free one when possible.  Returns nullptr when a needed allocation
  /// fails — callers fall back to an allocation-free route.
  [[nodiscard]] SpmmScratch* try_acquire(std::size_t xf_n, std::size_t yf_n,
                                         std::size_t xd_n,
                                         std::size_t yd_n) noexcept;

  /// try_acquire that, on allocation failure, blocks for a released lease
  /// instead of failing.  Only legal when a seed() guarantees every pooled
  /// buffer already holds the requested capacity (so the retry after a
  /// release never needs to allocate) — the F32 single-vector path.
  [[nodiscard]] SpmmScratch* acquire_or_wait(std::size_t xf_n,
                                             std::size_t yf_n) noexcept;

  void release(SpmmScratch* s) noexcept;

  /// Pre-populate one buffer with float capacity (xf_n, yf_n); called at
  /// create() time (may throw — create() is the throwing boundary).
  void seed(std::size_t xf_n, std::size_t yf_n);

 private:
  [[nodiscard]] SpmmScratch* pop_or_create() noexcept;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<SpmmScratch>> all_;
  std::vector<SpmmScratch*> free_;  ///< capacity kept >= all_.size()
};

/// Where the bound matrix's pages live and who runs it (DESIGN.md §8).
struct PlacementStats {
  bool engine_bound = false;
  bool numa_materialized = false;  ///< CSR slices first-touched by their owner
  int team_size = 1;
  int numa_nodes = 1;  ///< nodes the topology probe saw
  std::vector<int> pinned_cpus;
  std::size_t materialized_bytes = 0;
};

class OptimizedSpmv {
 public:
  /// Empty (not yet bound to a matrix); assign from create() before run().
  OptimizedSpmv() = default;

  /// Preprocess `A` for `plan`.  Construction never fails on a valid matrix:
  /// when a plan feature cannot be built (delta gaps unencodable, a
  /// BCSR/SELL/split conversion throws), the feature is dropped and
  /// preprocessing continues on the next rung of the ladder, down to
  /// baseline CSR (DESIGN.md §6).  Query `plan()` for what actually runs and
  /// `degradation()` for every dropped rung and why.  Conflicting feature
  /// combinations still throw std::invalid_argument — that is a programmer
  /// error, not a data fault.  `nthreads` <= 0 means default_threads().
  static OptimizedSpmv create(const CsrMatrix& A, const Plan& plan,
                              int nthreads = 0);

  /// Engine binding: preprocess for `eng`'s team size, then attach the
  /// persistent team.  run()/run_many() execute as team bodies inside the
  /// engine's parallel region (no per-call OpenMP fork/join), and for
  /// plain-CSR plans the matrix arrays are copied into NUMA-placed storage:
  /// each partition's rowptr/colind/vals slices are first-touched by the
  /// team member that will read them (DESIGN.md §8).  The engine must
  /// outlive the returned object; with owned copies the engine CSR path no
  /// longer reads `A` after create(), but other formats keep the usual
  /// lifetime contract.
  static OptimizedSpmv create(const CsrMatrix& A, const Plan& plan,
                              engine::ExecutionEngine& eng);

  /// y = A * x.  Hot path: unchecked, noexcept.
  void run(const value_t* x, value_t* y) const noexcept;

  /// Checked overload.
  void run(std::span<const value_t> x, std::span<value_t> y) const;

  /// Batched multi-RHS entry: Y[r] = A * X[r] for r in [0, nrhs), X packed
  /// as nrhs vectors of length ncols(), Y as nrhs vectors of length nrows().
  /// Plain-CSR instances (spmm_fused()) execute the whole batch as ONE
  /// register-blocked SpMM (DESIGN.md §13): the matrix streams through the
  /// cores once, vectorized across the RHS columns — tolerance-equivalent
  /// (ULP oracle) to nrhs repeated run() calls, not bitwise, since the fused
  /// kernel's summation order differs from the single-vector kernel's.
  /// Within the fused kernel results ARE bitwise identical across thread
  /// counts, execution modes, batch compositions and plan schedules (the
  /// fused dispatch honors Sched::Auto/Dynamic with a work-stealing
  /// cursor).  Non-fusable formats (delta/split/merge/sell/bcsr) keep the
  /// per-item dispatch, as do F64 plans after set_batch_fusion(false);
  /// engine-bound instances still amortize one team dispatch across the
  /// whole batch.
  void run_many(const value_t* X, value_t* Y, int nrhs) const noexcept;

  /// Checked overload (X.size() == nrhs*ncols(), Y.size() == nrhs*nrows()).
  void run_many(std::span<const value_t> X, std::span<value_t> Y,
                int nrhs) const;

  /// Typed single-vector entry (DESIGN.md §8): accepts f64 or f32 operand
  /// views and converts at the boundary (the computation's value mode stays
  /// the plan's precision).  Checked; throws on extent mismatch.
  void run(ConstVectorView x, VectorView y) const;

  /// Typed batched entry: X.rows right-hand sides, X.cols == ncols() and
  /// Y.cols == nrows(), arbitrary row stride.  Contiguous f64 views hit the
  /// raw run_many() path directly; strided or f32 views convert/gather at
  /// the boundary.
  void run_many(ConstMatrixView X, MatrixView Y) const;

  /// Cooperative-cancellation matvec (DESIGN.md §10).  Polls `tok` at chunk
  /// granularity — kCancelChunkRows-row slices for CSR/delta/split, one span
  /// for merge-path, chunk/block-row slices for SELL/BCSR, one long row for
  /// split phase 2 — and unwinds when it trips, returning a typed
  /// DeadlineExceeded/Cancelled error with partial-progress context; `y` is
  /// then partially written and must be discarded.  A run that completes is
  /// row-for-row bitwise identical to run() (rows are never subdivided, so
  /// summation order is unchanged).  Engine-bound instances execute on the
  /// full team exactly like run(); unbound instances execute the chunk walk
  /// serially (this path exists for the server, which always binds an
  /// engine).
  [[nodiscard]] Status run(const value_t* x, value_t* y,
                           const robust::CancelToken& tok) const;

  /// Batched cancellable variant: polls between chunks and between
  /// right-hand sides; one team dispatch for the whole batch.
  [[nodiscard]] Status run_many(const value_t* X, value_t* Y, int nrhs,
                                const robust::CancelToken& tok) const;

  /// Row-chunk quantum of the cancellable paths: the deadline overshoot is
  /// bounded by the cost of one chunk of the active format (for formats that
  /// never subdivide a row, a single pathological row is the quantum floor).
  static constexpr index_t kCancelChunkRows = 2048;

  [[nodiscard]] const Plan& plan() const noexcept { return plan_; }
  /// Value mode this instance computes in (the plan's precision).
  [[nodiscard]] Precision precision() const noexcept {
    return plan_.precision;
  }
  /// True when run_many() fuses a batch into one register-blocked SpMM
  /// dispatch (plain-CSR plans; the structural formats keep per-item runs,
  /// and set_batch_fusion(false) opts an F64 plan out).
  [[nodiscard]] bool spmm_fused() const noexcept {
    return spmm_fn_ != nullptr &&
           (fuse_batches_ || plan_.precision != Precision::F64);
  }
  /// Opt in/out of batch fusion for F64 plans: with fusion off, run_many()
  /// issues nrhs plan-scheduled run() dispatches, bitwise identical to the
  /// caller looping run() itself (the fused kernel is tolerance-equivalent,
  /// not bitwise — its per-row summation order differs).  Non-F64 value
  /// modes ignore this: the fused kernel IS their value format.  Set before
  /// sharing the instance across threads; the flag is not synchronized.
  void set_batch_fusion(bool on) noexcept { fuse_batches_ = on; }
  [[nodiscard]] bool batch_fusion() const noexcept { return fuse_batches_; }
  [[nodiscard]] const robust::DegradationLog& degradation() const noexcept {
    return degradation_;
  }
  [[nodiscard]] double preprocessing_seconds() const noexcept { return pre_sec_; }
  [[nodiscard]] index_t nrows() const noexcept { return nrows_; }
  [[nodiscard]] index_t ncols() const noexcept { return ncols_; }
  [[nodiscard]] int nthreads() const noexcept { return part_.nthreads(); }

  /// Engine this instance is bound to; null when created without one.
  [[nodiscard]] engine::ExecutionEngine* engine() const noexcept {
    return engine_;
  }
  /// Row partition the kernels run over (also the ownership map for
  /// engine::ExecutionEngine::touched_vector operand placement).
  [[nodiscard]] const RowPartition& partition() const noexcept { return part_; }
  [[nodiscard]] PlacementStats placement() const;

  /// Bytes of the matrix representation actually used at run time
  /// (after compression / decomposition).
  [[nodiscard]] std::size_t format_bytes() const noexcept;

 private:
  /// One team member's share of one matvec; called from inside the engine's
  /// parallel region (split plans use team barriers for phase 2).
  void engine_body(int tid, int nt, const value_t* x,
                   value_t* y) const noexcept;

  /// Per-call shared state of a cancellable run: the token, the sticky abort
  /// flag every member polls, a barrier-published uniform-stop flag for the
  /// phases that must break in lockstep (split phase 2, run_many item
  /// boundaries), and the progress counter for the partial-progress context.
  struct CancelCtx {
    const robust::CancelToken& tok;
    std::atomic<bool> aborted{false};
    std::atomic<bool> stop{false};
    std::atomic<std::int64_t> done{0};
  };

  /// Cancellable counterpart of engine_body; safe for any team size
  /// including the serial unbound case (barriers are engine-guarded).
  void cancellable_body(int tid, int nt, const value_t* x, value_t* y,
                        CancelCtx& c) const noexcept;

  /// Pool-backed phased matvec (engine_->pooled()): no in-dispatch barriers
  /// — a stealing pool may serialize a group's spans on one worker, so the
  /// barrier phases become dispatch/join/fix-up sequences driven by the
  /// caller — and all mutable scratch (dynamic cursor, merge carry, split
  /// partials) is per-call, so N concurrent run() calls on one instance
  /// (the multi-executor server on one hot cache entry) are safe.
  void pooled_run(const value_t* x, value_t* y) const noexcept;

  /// Cancellable pooled counterpart: polls at kCancelChunkRows granularity
  /// *inside* every span — a task split across stolen sub-spans observes a
  /// trip within one chunk, not one partition.
  void pooled_cancellable(const value_t* x, value_t* y,
                          CancelCtx& c) const noexcept;

  /// Work units one matvec completes ("rows", "merge spans", ...) for the
  /// progress message.
  [[nodiscard]] std::int64_t cancel_units_total() const noexcept;
  [[nodiscard]] const char* cancel_units_name() const noexcept;

  /// Single-vector matvec in a non-F64 value mode: the register-blocked
  /// kernel at k == 1 (float-storage traffic is the point — the value
  /// stream is half the bytes).  F32 converts the operands at the boundary.
  void prec_run(const value_t* x, value_t* y) const noexcept;

  /// One fused SpMM dispatch honoring the plan's schedule: the balanced
  /// partition for BalancedStatic, a per-call work-stealing cursor for
  /// Auto/Dynamic (same chunking as the SpMV paths).  Xp/Yp are row-major
  /// blocks in the precision's operand dtype.  Barrier-free, so one body
  /// serves unbound OpenMP, mailbox and pooled execution — and results are
  /// bitwise identical across all modes AND schedules (rows are never
  /// subdivided; each (row, column) accumulates in ascending-j order).
  void spmm_dispatch(const void* Xp, void* Yp, index_t k) const noexcept;

  /// Fused batch: pack the vector-major double batch, dispatch, unpack.
  /// Pack scratch is leased from spmm_scratch_ (reused across calls,
  /// per-lease — concurrent callers on one instance are safe); when even
  /// the lease allocation fails, the batch degrades to allocation-free
  /// per-item dispatches instead of letting bad_alloc hit the noexcept.
  void spmm_run_batch(const value_t* X, value_t* Y,
                      index_t nrhs) const noexcept;

  /// Cancellable fused dispatch: each member walks its partition range in
  /// kCancelChunkRows slices, polling the sticky flag per slice; progress
  /// counts rows × columns.
  void spmm_cancellable(const void* Xp, void* Yp, index_t k,
                        CancelCtx& c) const noexcept;

  /// Cancellable fused batch with the pack/unpack boundary and the typed
  /// partial-progress error of the other cancellable paths.
  [[nodiscard]] Status spmm_run_cancellable(
      const value_t* X, value_t* Y, index_t nrhs,
      const robust::CancelToken& tok) const;

  Plan plan_;
  robust::DegradationLog degradation_;
  const CsrMatrix* csr_ = nullptr;  ///< view; null when a converted format owns
  std::optional<DeltaCsrMatrix> delta_;
  std::optional<SplitCsrMatrix> split_;
  std::optional<SellMatrix> sell_;
  std::optional<BcsrMatrix> bcsr_;
  RowPartition part_;
  /// Merge-path state (kernels/merge_csr.hpp); merge_fn_ != nullptr is the
  /// "plan runs the merge kernel" flag.  The carry scratch is mutable the
  /// same way partials_ is: run() is logically const.
  kernels::MergePartition merge_part_;
  kernels::MergeSpanFn merge_fn_ = nullptr;
  mutable kernels::MergeCarry merge_carry_;
  kernels::CsrKernelFn csr_fn_ = nullptr;
  kernels::DeltaKernelFn delta_fn_ = nullptr;
  index_t pf_dist_ = 8;
  double pre_sec_ = 0.0;
  index_t nrows_ = 0;
  index_t ncols_ = 0;

  // --- engine binding (all null/empty when created without an engine) ---
  engine::ExecutionEngine* engine_ = nullptr;
  kernels::CsrRangeFn csr_range_fn_ = nullptr;
  kernels::DeltaRangeFn delta_range_fn_ = nullptr;
  /// Raw CSR arrays the engine path reads: the NUMA-materialized copies for
  /// plain CSR, the short part's arrays for split plans.
  const index_t* rp_ = nullptr;
  const index_t* ci_ = nullptr;
  const value_t* va_ = nullptr;
  numa_vector<index_t> own_rowptr_;
  numa_vector<index_t> own_colind_;
  numa_vector<value_t> own_vals_;
  RowPartition ext_part_;  ///< chunk (SELL) / block-row (BCSR) partition
  /// Fused register-blocked SpMM kernel (widest compiled ISA, the plan's
  /// precision); non-null exactly when the plan runs on plain CSR.
  kernels::SpmmRangeFn spmm_fn_ = nullptr;
  /// Float value stream for the f32/f32x64 modes, converted once at
  /// create(); shared so the bound object stays copyable.  The engine
  /// overload replaces it with a NUMA first-touch copy.
  std::shared_ptr<const std::vector<float>> vals_f32_;
  numa_vector<float> own_vals_f32_;
  const float* vaf_ = nullptr;
  /// Work-stealing cursor for Auto/Dynamic plans inside the team (shared so
  /// the bound object stays copyable; reset before each dispatch).
  std::shared_ptr<std::atomic<index_t>> cursor_;
  /// Lease pool for the fused-SpMM pack buffers (shared so the bound object
  /// stays copyable); non-null exactly when spmm_fn_ is bound.  Seeded with
  /// one single-vector float buffer for F32-operand plans so prec_run can
  /// always proceed without allocating.
  std::shared_ptr<SpmmScratchPool> spmm_scratch_;
  /// run_many() fuses F64 batches through spmm_fn_ unless opted out.
  bool fuse_batches_ = true;
  mutable aligned_vector<value_t> partials_;  ///< split phase-2 scratch
};

}  // namespace spmvopt::optimize
