#include "optimize/optimizers.hpp"

#include <stdexcept>
#include <vector>

#include "gen/generators.hpp"
#include "support/timing.hpp"

namespace spmvopt::optimize {

double measure_spmv_gflops(const OptimizedSpmv& spmv, const CsrMatrix& A,
                           const perf::MeasureConfig& cfg) {
  std::vector<value_t> x = gen::test_vector(A.ncols());
  std::vector<value_t> y(static_cast<std::size_t>(A.nrows()), 0.0);
  const double flops = 2.0 * static_cast<double>(A.nnz());
  return perf::measure_rate([&] { spmv.run(x.data(), y.data()); }, flops, cfg)
      .gflops;
}

OptimizeOutcome optimize_profile(const CsrMatrix& A,
                                 const OptimizerConfig& cfg) {
  OptimizeOutcome out;
  Accumulator pre;

  pre.start();
  perf::BoundsConfig bcfg;
  bcfg.measure = cfg.measure;
  bcfg.nthreads = cfg.nthreads;
  const auto result = classify::classify_profile(A, cfg.profile_params, bcfg);
  pre.stop();

  out.classes = result.classes;
  out.plan = plan_for_classes(out.classes, A);
  out.spmv = OptimizedSpmv::create(A, out.plan, cfg.nthreads);
  out.preprocess_seconds =
      pre.total_sec() + out.spmv.preprocessing_seconds();
  return out;
}

OptimizeOutcome optimize_feature(const CsrMatrix& A,
                                 const classify::FeatureClassifier& clf,
                                 const OptimizerConfig& cfg) {
  if (!clf.trained())
    throw std::invalid_argument("optimize_feature: classifier not trained");
  OptimizeOutcome out;
  Timer timer;
  // Online phase: feature extraction + O(log n) tree query only — the
  // offline training cost is not charged (§III-D, Table V).
  out.classes = clf.classify(A);
  const double decide_sec = timer.elapsed_sec();

  out.plan = plan_for_classes(out.classes, A);
  out.spmv = OptimizedSpmv::create(A, out.plan, cfg.nthreads);
  out.preprocess_seconds = decide_sec + out.spmv.preprocessing_seconds();
  return out;
}

namespace {

/// Sweep candidates, measuring each (conversion + timing both charged to
/// t_pre, as the trivial optimizers must pay every candidate's setup).
OptimizeOutcome sweep(const CsrMatrix& A, const std::vector<Plan>& candidates,
                      const OptimizerConfig& cfg, bool charge_pre) {
  if (candidates.empty()) throw std::invalid_argument("sweep: no candidates");
  OptimizeOutcome best;
  double best_gflops = -1.0;
  double pre_total = 0.0;

  for (const Plan& plan : candidates) {
    Timer timer;
    OptimizedSpmv spmv = OptimizedSpmv::create(A, plan, cfg.nthreads);
    const double gflops = measure_spmv_gflops(spmv, A, cfg.measure);
    pre_total += timer.elapsed_sec();
    if (gflops > best_gflops) {
      best_gflops = gflops;
      best.plan = spmv.plan();
      best.spmv = std::move(spmv);
    }
  }
  best.preprocess_seconds = charge_pre ? pre_total : 0.0;
  return best;
}

}  // namespace

OptimizeOutcome optimize_trivial_single(const CsrMatrix& A,
                                        const OptimizerConfig& cfg) {
  return sweep(A, single_optimization_plans(), cfg, /*charge_pre=*/true);
}

OptimizeOutcome optimize_trivial_combined(const CsrMatrix& A,
                                          const OptimizerConfig& cfg) {
  return sweep(A, combined_optimization_plans(), cfg, /*charge_pre=*/true);
}

OptimizeOutcome optimize_oracle(const CsrMatrix& A,
                                const OptimizerConfig& cfg) {
  return sweep(A, enumerate_plans(A, cfg.oracle_extensions), cfg,
               /*charge_pre=*/true);
}

}  // namespace spmvopt::optimize
