#include "optimize/plan.hpp"

#include <algorithm>

#include "sparse/delta_csr.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/split_csr.hpp"

namespace spmvopt::optimize {

using classify::Bottleneck;
using classify::ClassSet;
using kernels::Compute;
using kernels::Sched;

std::string Plan::to_string() const {
  if (is_baseline()) return "baseline";
  std::string s;
  auto append = [&s](const char* part) {
    if (!s.empty()) s += "+";
    s += part;
  };
  if (sell) return "sell";
  if (bcsr) return "bcsr";
  if (precision != Precision::F64) append(precision_name(precision));
  switch (sched) {
    case Sched::BalancedStatic: break;  // the default; not printed
    case Sched::Auto: append("auto"); break;
    case Sched::Dynamic: append("dynamic"); break;
  }
  if (merge_path) append("merge");
  if (split_long_rows) append("split");
  if (prefetch) append("pf");
  if (delta) append("delta");
  switch (compute) {
    case Compute::Scalar: break;
    case Compute::Vector: append("vec"); break;
    case Compute::UnrollVector: append("unroll-vec"); break;
  }
  return s.empty() ? "baseline" : s;
}

namespace {

const char* sched_token(Sched s) {
  switch (s) {
    case Sched::BalancedStatic: return "balanced";
    case Sched::Auto: return "auto";
    case Sched::Dynamic: return "dynamic";
  }
  return "balanced";
}

const char* compute_token(Compute c) {
  switch (c) {
    case Compute::Scalar: return "scalar";
    case Compute::Vector: return "vector";
    case Compute::UnrollVector: return "unrollvector";
  }
  return "scalar";
}

}  // namespace

std::string serialize_plan(const Plan& plan) {
  std::string s = "plan1";
  s += " sched=";
  s += sched_token(plan.sched);
  s += " pf=";
  s += plan.prefetch ? '1' : '0';
  s += " compute=";
  s += compute_token(plan.compute);
  s += " delta=";
  s += plan.delta ? '1' : '0';
  s += " split=";
  s += plan.split_long_rows ? '1' : '0';
  s += " merge=";
  s += plan.merge_path ? '1' : '0';
  s += " sell=";
  s += plan.sell ? '1' : '0';
  s += " bcsr=";
  s += plan.bcsr ? '1' : '0';
  s += " chunk=" + std::to_string(plan.dynamic_chunk);
  // Compatibility is one-way by design: plans persisted BEFORE the
  // precision field existed carry no `prec` key and parse here with the F64
  // default (exactly what they meant); plans persisted by this version need
  // this version to read (unknown keys fail closed, per the stale-cache
  // contract above).
  s += " prec=";
  s += precision_name(plan.precision);
  return s;
}

std::optional<Plan> deserialize_plan(std::string_view text) {
  // Token walk over "plan1 key=value ...": every key must be known and every
  // value well-formed, so a corrupted or future-versioned file parses to
  // nullopt rather than a half-filled plan.
  const auto next_token = [&text]() -> std::optional<std::string_view> {
    while (!text.empty() && text.front() == ' ') text.remove_prefix(1);
    if (text.empty()) return std::nullopt;
    const std::size_t end = std::min(text.find(' '), text.size());
    std::string_view tok = text.substr(0, end);
    text.remove_prefix(end);
    return tok;
  };
  if (next_token() != std::string_view("plan1")) return std::nullopt;

  Plan plan;
  const auto parse_bool = [](std::string_view v, bool& out) {
    if (v != "0" && v != "1") return false;
    out = (v == "1");
    return true;
  };
  while (auto tok = next_token()) {
    const std::size_t eq = tok->find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view k = tok->substr(0, eq);
    const std::string_view v = tok->substr(eq + 1);
    if (k == "sched") {
      if (v == "balanced") plan.sched = Sched::BalancedStatic;
      else if (v == "auto") plan.sched = Sched::Auto;
      else if (v == "dynamic") plan.sched = Sched::Dynamic;
      else return std::nullopt;
    } else if (k == "compute") {
      if (v == "scalar") plan.compute = Compute::Scalar;
      else if (v == "vector") plan.compute = Compute::Vector;
      else if (v == "unrollvector") plan.compute = Compute::UnrollVector;
      else return std::nullopt;
    } else if (k == "pf") {
      if (!parse_bool(v, plan.prefetch)) return std::nullopt;
    } else if (k == "delta") {
      if (!parse_bool(v, plan.delta)) return std::nullopt;
    } else if (k == "split") {
      if (!parse_bool(v, plan.split_long_rows)) return std::nullopt;
    } else if (k == "merge") {
      if (!parse_bool(v, plan.merge_path)) return std::nullopt;
    } else if (k == "sell") {
      if (!parse_bool(v, plan.sell)) return std::nullopt;
    } else if (k == "bcsr") {
      if (!parse_bool(v, plan.bcsr)) return std::nullopt;
    } else if (k == "prec") {
      // Absent in plans persisted before the precision field existed; the
      // default (F64) is exactly what those plans meant.
      if (v == "f64") plan.precision = Precision::F64;
      else if (v == "f32") plan.precision = Precision::F32;
      else if (v == "f32x64") plan.precision = Precision::F32F64;
      else return std::nullopt;
    } else if (k == "chunk") {
      int chunk = 0;
      for (char c : v) {
        if (c < '0' || c > '9' || chunk > 1'000'000) return std::nullopt;
        chunk = chunk * 10 + (c - '0');
      }
      if (v.empty() || chunk <= 0) return std::nullopt;
      plan.dynamic_chunk = chunk;
    } else {
      return std::nullopt;
    }
  }
  return plan;
}

Plan plan_for_classes(ClassSet classes, const CsrMatrix& A) {
  Plan plan;
  if (classes.has(Bottleneck::MB)) {
    plan.delta = true;
    plan.compute = Compute::Vector;
  }
  if (classes.has(Bottleneck::ML)) plan.prefetch = true;
  if (classes.has(Bottleneck::IMB)) {
    // Sub-selection (§III-E, extended): highly uneven row lengths → the
    // merge-path kernel, whose rows+nnz shares are balanced no matter how
    // skewed the structure is (ahead of long-row decomposition, which only
    // helps rows past the split threshold); otherwise computational
    // unevenness → OpenMP auto scheduling.
    const index_t threshold = SplitCsrMatrix::default_threshold(A);
    index_t nnz_max = 0;
    for (index_t i = 0; i < A.nrows(); ++i)
      nnz_max = std::max(nnz_max, A.row_nnz(i));
    if (nnz_max >= threshold)
      plan.merge_path = true;
    else
      plan.sched = Sched::Auto;
  }
  if (classes.has(Bottleneck::CMP)) plan.compute = Compute::UnrollVector;
  // Feasibility: the decomposed and merge-path kernels keep raw indices.
  if (plan.split_long_rows) plan.delta = false;
  if (plan.merge_path) {
    plan.split_long_rows = false;
    plan.delta = false;
  }
  return plan;
}

std::vector<Plan> single_optimization_plans() {
  std::vector<Plan> plans(5);
  plans[0].delta = true;                       // MB: compression
  plans[0].compute = Compute::Vector;          //     + vectorization
  plans[1].prefetch = true;                    // ML: software prefetch
  plans[2].split_long_rows = true;             // IMB-a: decomposition
  plans[3].sched = Sched::Auto;                // IMB-b: auto scheduling
  plans[4].compute = Compute::UnrollVector;    // CMP: unroll + vectorize
  return plans;
}

Plan merge_plans(const Plan& a, const Plan& b) {
  Plan m;
  m.sched = (a.sched == Sched::Auto || b.sched == Sched::Auto)
                ? Sched::Auto
                : (a.sched == Sched::Dynamic || b.sched == Sched::Dynamic
                       ? Sched::Dynamic
                       : Sched::BalancedStatic);
  m.prefetch = a.prefetch || b.prefetch;
  m.compute = std::max(a.compute, b.compute);  // enum order: Scalar<Vec<Unroll
  m.delta = a.delta || b.delta;
  m.split_long_rows = a.split_long_rows || b.split_long_rows;
  m.merge_path = a.merge_path || b.merge_path;
  m.dynamic_chunk = std::max(a.dynamic_chunk, b.dynamic_chunk);
  if (m.split_long_rows) m.delta = false;
  // Merge-path subsumes decomposition (both target IMB; merge balances
  // every row-length profile) and runs on raw indices.
  if (m.merge_path) {
    m.split_long_rows = false;
    m.delta = false;
  }
  // Whole-format changes absorb any joined CSR optimization (sell wins over
  // bcsr if both were requested — it handles more patterns).
  if (a.bcsr || b.bcsr) m = bcsr_plan();
  if (a.sell || b.sell) m = sell_plan();
  // Precision is a value-format change that only the plain-CSR blocked
  // kernel executes: it survives a merge only when no structural format won.
  const Precision prec =
      a.precision != Precision::F64 ? a.precision : b.precision;
  if (prec != Precision::F64 && !m.delta && !m.split_long_rows &&
      !m.merge_path && !m.sell && !m.bcsr)
    m.precision = prec;
  return m;
}

std::vector<Plan> combined_optimization_plans() {
  const std::vector<Plan> singles = single_optimization_plans();
  std::vector<Plan> plans = singles;
  for (std::size_t i = 0; i < singles.size(); ++i)
    for (std::size_t j = i + 1; j < singles.size(); ++j) {
      const Plan merged = merge_plans(singles[i], singles[j]);
      if (std::find(plans.begin(), plans.end(), merged) == plans.end())
        plans.push_back(merged);
    }
  return plans;
}

std::vector<Plan> enumerate_plans(const CsrMatrix& A,
                                  bool include_extensions) {
  const bool delta_ok = DeltaCsrMatrix::required_width(A).has_value();
  std::vector<Plan> plans;
  for (Sched sched : {Sched::BalancedStatic, Sched::Auto})
    for (bool split : {false, true})
      for (bool pf : {false, true})
        for (Compute compute :
             {Compute::Scalar, Compute::Vector, Compute::UnrollVector})
          for (bool delta : {false, true}) {
            if (delta && (!delta_ok || split)) continue;
            Plan p;
            p.sched = sched;
            p.split_long_rows = split;
            p.prefetch = pf;
            p.compute = compute;
            p.delta = delta;
            plans.push_back(p);
          }
  // Merge-path plans: sched/split/delta do not apply (the merge partition
  // *is* the schedule and the span reads raw CSR), compute and prefetch do.
  for (bool pf : {false, true})
    for (Compute compute :
         {Compute::Scalar, Compute::Vector, Compute::UnrollVector}) {
      Plan p;
      p.merge_path = true;
      p.prefetch = pf;
      p.compute = compute;
      plans.push_back(p);
    }
  if (include_extensions) {
    // Mixed-precision value modes (extensions like sell/bcsr: beyond the
    // paper's pool).  Plain CSR only; the register-blocked kernel runs them.
    for (Precision prec : {Precision::F32F64, Precision::F32}) {
      Plan p;
      p.precision = prec;
      plans.push_back(p);
    }
    plans.push_back(sell_plan());
    // BCSR only enters the search space when its sampled fill estimate says
    // some block shape pays (OSKI's precondition) — otherwise it degenerates
    // to plain CSR and would duplicate the baseline plan.
    if (BcsrMatrix::choose_block_size(A) != std::pair<index_t, index_t>{1, 1})
      plans.push_back(bcsr_plan());
  }
  return plans;
}

Plan sell_plan() {
  Plan p;
  p.sell = true;
  return p;
}

Plan bcsr_plan() {
  Plan p;
  p.bcsr = true;
  return p;
}

}  // namespace spmvopt::optimize
