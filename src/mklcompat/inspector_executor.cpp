#include "mklcompat/inspector_executor.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "gen/generators.hpp"
#include "support/timing.hpp"

namespace spmvopt::mklcompat {

InspectorExecutorSpmv InspectorExecutorSpmv::analyze(const CsrMatrix& A,
                                                     const Hints& hints,
                                                     int nthreads) {
  Timer timer;
  InspectorExecutorSpmv ie;

  // Inspect: one O(N) pass over the row structure.
  const index_t n = A.nrows();
  double sum = 0.0, sq = 0.0;
  index_t nnz_max = 0;
  for (index_t i = 0; i < n; ++i) {
    const double len = static_cast<double>(A.row_nnz(i));
    sum += len;
    sq += len * len;
    nnz_max = std::max(nnz_max, A.row_nnz(i));
  }
  const double avg = n > 0 ? sum / static_cast<double>(n) : 0.0;
  const double var = n > 0 ? sq / static_cast<double>(n) - avg * avg : 0.0;
  const double sd = var > 0.0 ? std::sqrt(var) : 0.0;

  // Shortlist internal kernels from the structure.
  std::vector<std::pair<optimize::Plan, std::string>> shortlist;
  {
    optimize::Plan vec;
    vec.compute = kernels::Compute::Vector;
    shortlist.emplace_back(vec, "static-vectorized");
  }
  if (avg > 0.0 && sd > 2.0 * avg) {
    optimize::Plan dyn;
    dyn.sched = kernels::Sched::Dynamic;
    dyn.compute = kernels::Compute::Vector;
    shortlist.emplace_back(dyn, "dynamic-vectorized");
  }
  if (static_cast<double>(nnz_max) > 64.0 * std::max(1.0, avg)) {
    optimize::Plan split;
    split.split_long_rows = true;
    split.compute = kernels::Compute::Vector;
    shortlist.emplace_back(split, "two-phase-long-rows");
  }

  // Optimize: trial-time the shortlist.  The effort scales with the hinted
  // reuse, as MKL's optimize stage does.
  const int trial_iters = std::clamp(hints.expected_calls / 16, 2, 16);
  std::vector<value_t> x = gen::test_vector(A.ncols());
  std::vector<value_t> y(static_cast<std::size_t>(A.nrows()), 0.0);

  double best_sec = 1e300;
  for (auto& [plan, name] : shortlist) {
    optimize::OptimizedSpmv candidate =
        optimize::OptimizedSpmv::create(A, plan, nthreads);
    candidate.run(x.data(), y.data());  // warm
    Timer trial;
    for (int it = 0; it < trial_iters; ++it) candidate.run(x.data(), y.data());
    const double sec = trial.elapsed_sec() / trial_iters;
    if (sec < best_sec) {
      best_sec = sec;
      ie.spmv_ = std::move(candidate);
      ie.kernel_name_ = name;
    }
  }

  ie.pre_sec_ = timer.elapsed_sec();
  return ie;
}

}  // namespace spmvopt::mklcompat
