#include "mklcompat/ref_csr.hpp"

namespace spmvopt::mklcompat {

void ref_dcsrmv(const CsrMatrix& A, const value_t* x, value_t* y) noexcept {
  const index_t* rowptr = A.rowptr();
  const index_t* colind = A.colind();
  const value_t* vals = A.values();
  const index_t n = A.nrows();
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) {
    value_t sum = 0.0;
    for (index_t j = rowptr[i]; j < rowptr[i + 1]; ++j)
      sum += vals[j] * x[colind[j]];
    y[i] = sum;
  }
}

void ref_dcsrmv(value_t alpha, const CsrMatrix& A, const value_t* x,
                value_t beta, value_t* y) noexcept {
  const index_t* rowptr = A.rowptr();
  const index_t* colind = A.colind();
  const value_t* vals = A.values();
  const index_t n = A.nrows();
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) {
    value_t sum = 0.0;
    for (index_t j = rowptr[i]; j < rowptr[i + 1]; ++j)
      sum += vals[j] * x[colind[j]];
    y[i] = alpha * sum + beta * y[i];
  }
}

}  // namespace spmvopt::mklcompat
