// Reference vendor-style CSR SpMV — the stand-in for MKL's `mkl_dcsrmv`
// (DESIGN.md §3).
//
// A competent, generically-tuned kernel: OpenMP static row partitioning with
// a vendor-typical chunking, no matrix-specific adaptation.  It is the
// baseline every optimizer in Fig. 7 / Table V is compared against.
#pragma once

#include "sparse/csr.hpp"

namespace spmvopt::mklcompat {

/// y = A * x (proxy for mkl_dcsrmv with matdescra "G..C").
void ref_dcsrmv(const CsrMatrix& A, const value_t* x, value_t* y) noexcept;

/// y = alpha * A * x + beta * y (full BLAS-style form).
void ref_dcsrmv(value_t alpha, const CsrMatrix& A, const value_t* x,
                value_t beta, value_t* y) noexcept;

}  // namespace spmvopt::mklcompat
