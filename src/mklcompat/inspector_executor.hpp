// Inspector-Executor SpMV — the stand-in for MKL's `mkl_sparse_d_mv` after
// `mkl_sparse_set_mv_hint` + `mkl_sparse_optimize` (DESIGN.md §3).
//
// analyze() inspects the matrix (row-length statistics), shortlists internal
// kernels, trial-times the shortlist, and commits to the winner.  The whole
// analysis cost is reported — it is the Inspector-Executor row of Table V.
#pragma once

#include <string>

#include "optimize/optimized_spmv.hpp"
#include "sparse/csr.hpp"

namespace spmvopt::mklcompat {

struct MvHints {
  /// Expected number of mv calls (mkl_sparse_set_mv_hint); more expected
  /// calls justify more trial iterations during optimize().
  int expected_calls = 128;
};

class InspectorExecutorSpmv {
 public:
  using Hints = MvHints;

  /// The inspector phase.  `nthreads` <= 0 means default_threads().
  static InspectorExecutorSpmv analyze(const CsrMatrix& A,
                                       const Hints& hints = {},
                                       int nthreads = 0);

  /// The executor phase: y = A * x.
  void execute(const value_t* x, value_t* y) const noexcept {
    spmv_.run(x, y);
  }

  [[nodiscard]] double analysis_seconds() const noexcept { return pre_sec_; }
  [[nodiscard]] const std::string& chosen_kernel() const noexcept {
    return kernel_name_;
  }

 private:
  InspectorExecutorSpmv() = default;

  optimize::OptimizedSpmv spmv_;
  double pre_sec_ = 0.0;
  std::string kernel_name_;
};

}  // namespace spmvopt::mklcompat
