#include "gen/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/rng.hpp"

namespace spmvopt::gen {

namespace {

void require_positive(index_t n, const char* what) {
  if (n <= 0) throw std::invalid_argument(std::string(what) + " must be > 0");
}

value_t random_value(Xoshiro256& rng) { return rng.uniform(0.1, 1.0); }

/// Draw `k` distinct columns in [0, n) into `out` (small-k rejection).
void distinct_columns(Xoshiro256& rng, index_t n, index_t k,
                      std::vector<index_t>& out) {
  out.clear();
  if (k >= n) {
    out.resize(static_cast<std::size_t>(n));
    for (index_t j = 0; j < n; ++j) out[static_cast<std::size_t>(j)] = j;
    return;
  }
  while (static_cast<index_t>(out.size()) < k) {
    const auto c = static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(n)));
    if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
  }
  std::sort(out.begin(), out.end());
}

}  // namespace

CsrMatrix dense(index_t n, std::uint64_t seed) {
  require_positive(n, "dense: n");
  Xoshiro256 rng(seed);
  aligned_vector<index_t> rowptr(static_cast<std::size_t>(n) + 1);
  aligned_vector<index_t> colind(static_cast<std::size_t>(n) *
                                 static_cast<std::size_t>(n));
  aligned_vector<value_t> values(colind.size());
  for (index_t i = 0; i <= n; ++i)
    rowptr[static_cast<std::size_t>(i)] = i * n;
  std::size_t k = 0;
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j, ++k) {
      colind[k] = j;
      values[k] = random_value(rng);
    }
  return CsrMatrix(n, n, std::move(rowptr), std::move(colind), std::move(values));
}

CsrMatrix stencil_2d_5pt(index_t nx, index_t ny) {
  require_positive(nx, "stencil_2d_5pt: nx");
  require_positive(ny, "stencil_2d_5pt: ny");
  const index_t n = nx * ny;
  CooMatrix coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * 5);
  for (index_t y = 0; y < ny; ++y)
    for (index_t x = 0; x < nx; ++x) {
      const index_t i = y * nx + x;
      coo.add(i, i, 4.0);
      if (x > 0) coo.add(i, i - 1, -1.0);
      if (x + 1 < nx) coo.add(i, i + 1, -1.0);
      if (y > 0) coo.add(i, i - nx, -1.0);
      if (y + 1 < ny) coo.add(i, i + nx, -1.0);
    }
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

CsrMatrix stencil_3d_7pt(index_t nx, index_t ny, index_t nz) {
  require_positive(nx, "stencil_3d_7pt: nx");
  require_positive(ny, "stencil_3d_7pt: ny");
  require_positive(nz, "stencil_3d_7pt: nz");
  const index_t n = nx * ny * nz;
  CooMatrix coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * 7);
  for (index_t z = 0; z < nz; ++z)
    for (index_t y = 0; y < ny; ++y)
      for (index_t x = 0; x < nx; ++x) {
        const index_t i = (z * ny + y) * nx + x;
        coo.add(i, i, 6.0);
        if (x > 0) coo.add(i, i - 1, -1.0);
        if (x + 1 < nx) coo.add(i, i + 1, -1.0);
        if (y > 0) coo.add(i, i - nx, -1.0);
        if (y + 1 < ny) coo.add(i, i + nx, -1.0);
        if (z > 0) coo.add(i, i - nx * ny, -1.0);
        if (z + 1 < nz) coo.add(i, i + nx * ny, -1.0);
      }
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

CsrMatrix stencil_3d_27pt(index_t nx, index_t ny, index_t nz) {
  require_positive(nx, "stencil_3d_27pt: nx");
  require_positive(ny, "stencil_3d_27pt: ny");
  require_positive(nz, "stencil_3d_27pt: nz");
  const index_t n = nx * ny * nz;
  CooMatrix coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * 27);
  for (index_t z = 0; z < nz; ++z)
    for (index_t y = 0; y < ny; ++y)
      for (index_t x = 0; x < nx; ++x) {
        const index_t i = (z * ny + y) * nx + x;
        for (index_t dz = -1; dz <= 1; ++dz)
          for (index_t dy = -1; dy <= 1; ++dy)
            for (index_t dx = -1; dx <= 1; ++dx) {
              const index_t X = x + dx, Y = y + dy, Z = z + dz;
              if (X < 0 || X >= nx || Y < 0 || Y >= ny || Z < 0 || Z >= nz)
                continue;
              const index_t j = (Z * ny + Y) * nx + X;
              coo.add(i, j, i == j ? 26.0 : -1.0);
            }
      }
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

CsrMatrix banded(index_t n, index_t half_bw, index_t nnz_per_row,
                 std::uint64_t seed) {
  require_positive(n, "banded: n");
  require_positive(half_bw, "banded: half_bw");
  require_positive(nnz_per_row, "banded: nnz_per_row");
  Xoshiro256 rng(seed);
  CooMatrix coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(nnz_per_row + 1));
  std::vector<index_t> cols;
  for (index_t i = 0; i < n; ++i) {
    const index_t lo = std::max<index_t>(0, i - half_bw);
    const index_t hi = std::min<index_t>(n - 1, i + half_bw);
    const index_t span = hi - lo + 1;
    const index_t k = std::min(nnz_per_row, span);
    cols.clear();
    while (static_cast<index_t>(cols.size()) < k) {
      const auto c =
          lo + static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(span)));
      if (std::find(cols.begin(), cols.end(), c) == cols.end()) cols.push_back(c);
    }
    bool has_diag = false;
    for (index_t c : cols) {
      if (c == i) { has_diag = true; continue; }
      coo.add(i, c, -random_value(rng));
    }
    (void)has_diag;
    coo.add(i, i, static_cast<value_t>(nnz_per_row) + 1.0);
  }
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

CsrMatrix random_uniform(index_t n, index_t nnz_per_row, std::uint64_t seed) {
  require_positive(n, "random_uniform: n");
  require_positive(nnz_per_row, "random_uniform: nnz_per_row");
  Xoshiro256 rng(seed);
  aligned_vector<index_t> rowptr(static_cast<std::size_t>(n) + 1);
  std::vector<index_t> cols;
  CooMatrix coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(nnz_per_row));
  for (index_t i = 0; i < n; ++i) {
    distinct_columns(rng, n, nnz_per_row, cols);
    for (index_t c : cols) coo.add(i, c, random_value(rng));
  }
  (void)rowptr;
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

CsrMatrix rmat(int scale, index_t edge_factor, double a, double b, double c,
               std::uint64_t seed) {
  if (scale < 1 || scale > 28) throw std::invalid_argument("rmat: bad scale");
  require_positive(edge_factor, "rmat: edge_factor");
  const double d = 1.0 - a - b - c;
  if (a < 0 || b < 0 || c < 0 || d < 0)
    throw std::invalid_argument("rmat: probabilities must sum to <= 1");
  const index_t n = static_cast<index_t>(1) << scale;
  const std::size_t nedges =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(edge_factor);
  Xoshiro256 rng(seed);
  CooMatrix coo(n, n);
  coo.reserve(nedges);
  for (std::size_t e = 0; e < nedges; ++e) {
    index_t row = 0, col = 0;
    for (int level = 0; level < scale; ++level) {
      const double r = rng.uniform();
      row <<= 1;
      col <<= 1;
      if (r < a) {
        // top-left quadrant
      } else if (r < a + b) {
        col |= 1;
      } else if (r < a + b + c) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    coo.add(row, col, random_value(rng));
  }
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

CsrMatrix power_law(index_t n, index_t avg_nnz, double alpha,
                    std::uint64_t seed) {
  require_positive(n, "power_law: n");
  require_positive(avg_nnz, "power_law: avg_nnz");
  if (alpha <= 1.0) throw std::invalid_argument("power_law: alpha must be > 1");
  Xoshiro256 rng(seed);
  // Row lengths ~ Pareto with shape alpha, scaled so the sample mean lands
  // near avg_nnz: draw u ∈ (0,1], len = ceil(x_m * u^{-1/alpha}); the Pareto
  // mean is x_m * alpha/(alpha-1), so x_m = avg * (alpha-1)/alpha.
  const double xm =
      std::max(1.0, static_cast<double>(avg_nnz) * (alpha - 1.0) / alpha);
  CooMatrix coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(avg_nnz));
  std::vector<index_t> cols;
  for (index_t i = 0; i < n; ++i) {
    const double u = 1.0 - rng.uniform();  // (0, 1]
    double lenf = xm * std::pow(u, -1.0 / alpha);
    lenf = std::min(lenf, static_cast<double>(n));
    const auto len = static_cast<index_t>(std::max(1.0, std::ceil(lenf)));
    if (len <= 16) {
      distinct_columns(rng, n, len, cols);
      for (index_t c : cols) coo.add(i, c, random_value(rng));
    } else {
      // Long rows: allow (rare) duplicates, summed by compress().
      for (index_t k = 0; k < len; ++k)
        coo.add(i, static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(n))),
                random_value(rng));
    }
  }
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

CsrMatrix few_dense_rows(index_t n, index_t base_nnz, index_t num_dense,
                         index_t dense_len, std::uint64_t seed) {
  require_positive(n, "few_dense_rows: n");
  require_positive(base_nnz, "few_dense_rows: base_nnz");
  if (num_dense < 0 || num_dense > n)
    throw std::invalid_argument("few_dense_rows: bad num_dense");
  require_positive(dense_len, "few_dense_rows: dense_len");
  Xoshiro256 rng(seed);
  CooMatrix coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(base_nnz) +
              static_cast<std::size_t>(num_dense) *
                  static_cast<std::size_t>(dense_len));
  std::vector<index_t> cols;
  // Dense rows spread evenly through the matrix.
  std::vector<bool> is_dense(static_cast<std::size_t>(n), false);
  for (index_t k = 0; k < num_dense; ++k) {
    const index_t row = static_cast<index_t>(
        (static_cast<std::int64_t>(k) * n) / std::max<index_t>(1, num_dense));
    is_dense[static_cast<std::size_t>(row)] = true;
  }
  for (index_t i = 0; i < n; ++i) {
    if (is_dense[static_cast<std::size_t>(i)]) {
      const index_t len = std::min(dense_len, n);
      // Contiguous run starting at a random offset: dense rows in circuit
      // matrices hit long column ranges.
      const index_t start = static_cast<index_t>(
          rng.bounded(static_cast<std::uint64_t>(n - len + 1)));
      for (index_t c = start; c < start + len; ++c)
        coo.add(i, c, random_value(rng));
    } else {
      distinct_columns(rng, std::min<index_t>(n, 2 * base_nnz + 1),
                       std::min<index_t>(base_nnz, n), cols);
      // Band the short rows near the diagonal (circuit signature).
      for (index_t c : cols) {
        index_t col = i - base_nnz + c;
        col = std::clamp<index_t>(col, 0, n - 1);
        coo.add(i, col, random_value(rng));
      }
    }
  }
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

CsrMatrix monster_row(index_t n, index_t monster_len, index_t base_nnz,
                      index_t empty_run, std::uint64_t seed) {
  require_positive(n, "monster_row: n");
  require_positive(monster_len, "monster_row: monster_len");
  require_positive(base_nnz, "monster_row: base_nnz");
  if (empty_run < 0)
    throw std::invalid_argument("monster_row: empty_run must be >= 0");
  Xoshiro256 rng(seed);
  const index_t monster = n / 2;
  const index_t len = std::min(monster_len, n);
  CooMatrix coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(base_nnz) +
              static_cast<std::size_t>(len));
  std::vector<index_t> cols;
  for (index_t i = 0; i < n; ++i) {
    if (i == monster) {
      const index_t start = static_cast<index_t>(
          rng.bounded(static_cast<std::uint64_t>(n - len + 1)));
      for (index_t c = start; c < start + len; ++c)
        coo.add(i, c, random_value(rng));
      continue;
    }
    // Alternate runs of empty_run populated rows and empty_run empty rows.
    if (empty_run > 0 && (i / empty_run) % 2 == 1) continue;
    distinct_columns(rng, n, std::min(base_nnz, n), cols);
    for (index_t c : cols) coo.add(i, c, random_value(rng));
  }
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

CsrMatrix row_vector(index_t n, index_t nnz, std::uint64_t seed) {
  require_positive(n, "row_vector: n");
  require_positive(nnz, "row_vector: nnz");
  Xoshiro256 rng(seed);
  CooMatrix coo(1, n);
  std::vector<index_t> cols;
  distinct_columns(rng, n, std::min(nnz, n), cols);
  for (index_t c : cols) coo.add(0, c, random_value(rng));
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

CsrMatrix col_vector(index_t n, index_t nnz, std::uint64_t seed) {
  require_positive(n, "col_vector: n");
  require_positive(nnz, "col_vector: nnz");
  Xoshiro256 rng(seed);
  CooMatrix coo(n, 1);
  std::vector<index_t> rows;
  distinct_columns(rng, n, std::min(nnz, n), rows);
  for (index_t r : rows) coo.add(r, 0, random_value(rng));
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

CsrMatrix short_rows(index_t n, double avg_nnz, std::uint64_t seed) {
  require_positive(n, "short_rows: n");
  if (avg_nnz <= 0) throw std::invalid_argument("short_rows: avg_nnz <= 0");
  Xoshiro256 rng(seed);
  CooMatrix coo(n, n);
  coo.reserve(static_cast<std::size_t>(static_cast<double>(n) * avg_nnz));
  for (index_t i = 0; i < n; ++i) {
    // Geometric-ish row lengths: most rows 0-3 entries, occasional hub.
    index_t len = 0;
    double p = avg_nnz / (avg_nnz + 1.0);
    while (rng.uniform() < p && len < n) {
      ++len;
      p *= 0.9;  // thin the tail
    }
    if (rng.uniform() < 0.001) len = std::min<index_t>(n, len + 200);  // hubs
    for (index_t k = 0; k < len; ++k)
      coo.add(i, static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(n))),
              random_value(rng));
  }
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

CsrMatrix block_diagonal_dense(index_t n, index_t block, std::uint64_t seed) {
  require_positive(n, "block_diagonal_dense: n");
  require_positive(block, "block_diagonal_dense: block");
  Xoshiro256 rng(seed);
  CooMatrix coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(block));
  for (index_t b = 0; b < n; b += block) {
    const index_t hi = std::min<index_t>(n, b + block);
    for (index_t i = b; i < hi; ++i)
      for (index_t j = b; j < hi; ++j)
        coo.add(i, j, i == j ? static_cast<value_t>(block) : -random_value(rng));
  }
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

CsrMatrix diagonal(index_t n, value_t value) {
  require_positive(n, "diagonal: n");
  aligned_vector<index_t> rowptr(static_cast<std::size_t>(n) + 1);
  aligned_vector<index_t> colind(static_cast<std::size_t>(n));
  aligned_vector<value_t> values(static_cast<std::size_t>(n), value);
  for (index_t i = 0; i <= n; ++i) rowptr[static_cast<std::size_t>(i)] = i;
  for (index_t i = 0; i < n; ++i) colind[static_cast<std::size_t>(i)] = i;
  return CsrMatrix(n, n, std::move(rowptr), std::move(colind), std::move(values));
}

CsrMatrix make_diagonally_dominant(const CsrMatrix& csr, value_t margin) {
  if (csr.nrows() != csr.ncols())
    throw std::invalid_argument("make_diagonally_dominant: matrix not square");
  CooMatrix coo(csr.nrows(), csr.ncols());
  for (index_t i = 0; i < csr.nrows(); ++i) {
    value_t off_sum = 0.0;
    bool has_diag = false;
    for (index_t j = csr.rowptr()[i]; j < csr.rowptr()[i + 1]; ++j) {
      const index_t c = csr.colind()[j];
      const value_t v = csr.values()[j];
      if (c == i) {
        has_diag = true;
        continue;  // replaced below
      }
      off_sum += std::abs(v);
      coo.add(i, c, v);
    }
    (void)has_diag;
    coo.add(i, i, off_sum + margin);
  }
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

std::vector<value_t> test_vector(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(0.5, 1.5);
  return x;
}

}  // namespace spmvopt::gen
