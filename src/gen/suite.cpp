#include "gen/suite.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gen/generators.hpp"

namespace spmvopt::gen {

namespace {

index_t scaled(index_t n, double scale) {
  return std::max<index_t>(8, static_cast<index_t>(std::lround(n * scale)));
}

}  // namespace

std::vector<SuiteEntry> evaluation_suite(double scale) {
  if (scale <= 0.0 || scale > 1.0)
    throw std::invalid_argument("evaluation_suite: scale must be in (0, 1]");
  const double s = scale;            // linear dimension factor
  const double s3 = std::cbrt(scale);  // for 3-D grids (volume ~ scale)
  const double s2 = std::sqrt(scale);  // for 2-D grids

  std::vector<SuiteEntry> suite;
  auto add = [&suite](std::string name, std::string family,
                      std::function<CsrMatrix()> make) {
    suite.push_back({std::move(name), std::move(family), std::move(make)});
  };

  // Paper order (x-axis of Fig. 1 / 3 / 7). Each entry names the UF matrix
  // it stands in for; the generator reproduces its structural signature.
  add("small-dense", "dense", [=] { return dense(scaled(384, s2)); });
  add("poisson3Db", "stencil3d7", [=] {
    const index_t g = scaled(44, s3);
    return stencil_3d_7pt(g, g, g);
  });
  add("citationCiteseer", "rmat",
      [=] { return rmat(s < 0.75 ? 15 : 17, 7, 0.45, 0.20, 0.20, 11); });
  add("pkustk08", "banded",
      [=] { return banded(scaled(28000, s), 400, 36, 12); });
  add("ins2", "random_uniform",
      [=] { return random_uniform(scaled(110000, s), 9, 13); });
  add("FEM_3D_thermal2", "stencil3d27", [=] {
    const index_t g = scaled(31, s3);
    return stencil_3d_27pt(g, g, g);
  });
  add("delaunay_n19", "random_uniform",
      [=] { return random_uniform(scaled(180000, s), 6, 14); });
  add("barrier2-12", "banded",
      [=] { return banded(scaled(100000, s), 150, 12, 15); });
  add("parabolic_fem", "stencil2d5", [=] {
    const index_t g = scaled(560, s2);
    return stencil_2d_5pt(g, g);
  });
  add("offshore", "banded",
      [=] { return banded(scaled(110000, s), 2000, 18, 16); });
  add("webbase-1M", "short_rows",
      [=] { return short_rows(scaled(280000, s), 3.1, 17); });
  add("ASIC_680k", "few_dense_rows", [=] {
    const index_t n = scaled(180000, s);
    return few_dense_rows(n, 3, 10, std::min<index_t>(n, 70000), 18);
  });
  add("consph", "banded",
      [=] { return banded(scaled(60000, s), 300, 40, 19); });
  add("amazon-2008", "rmat",
      [=] { return rmat(s < 0.75 ? 15 : 17, 9, 0.50, 0.20, 0.20, 20); });
  add("web-Google", "rmat",
      [=] { return rmat(s < 0.75 ? 16 : 18, 6, 0.57, 0.19, 0.19, 21); });
  add("rajat30", "few_dense_rows", [=] {
    const index_t n = scaled(140000, s);
    return few_dense_rows(n, 3, 6, std::min<index_t>(n, 100000), 22);
  });
  add("degme", "few_dense_rows", [=] {
    const index_t n = scaled(110000, s);
    return few_dense_rows(n, 2, 8, std::min<index_t>(n, 55000), 23);
  });
  add("pattern1", "block_dense",
      [=] { return block_diagonal_dense(scaled(8000, s), 250, 24); });
  add("G3_circuit", "stencil2d5", [=] {
    const index_t g = scaled(690, s2);
    return stencil_2d_5pt(g, g);
  });
  add("thermal2", "banded",
      [=] { return banded(scaled(330000, s), 2000, 7, 25); });
  add("flickr", "power_law",
      [=] { return power_law(scaled(260000, s), 14, 1.8, 26); });
  add("SiO2", "banded",
      [=] { return banded(scaled(80000, s), 800, 38, 27); });
  add("TSOPF_RS_b2383", "block_dense",
      [=] { return block_diagonal_dense(scaled(9000, s), 200, 28); });
  add("Ga41As41H72", "power_law",
      [=] { return power_law(scaled(85000, s), 40, 2.5, 29); });
  add("eu-2005", "rmat",
      [=] { return rmat(s < 0.75 ? 16 : 18, 11, 0.55, 0.20, 0.15, 30); });
  add("wikipedia-20051105", "power_law",
      [=] { return power_law(scaled(360000, s), 12, 1.7, 31); });
  add("human_gene1", "power_law",
      [=] { return power_law(scaled(20000, s), 150, 2.2, 32); });
  add("nd24k", "block_dense",
      [=] { return block_diagonal_dense(scaled(13000, s), 180, 33); });
  add("FullChip", "few_dense_rows", [=] {
    const index_t n = scaled(220000, s);
    return few_dense_rows(n, 3, 4, std::min<index_t>(n, 150000), 34);
  });
  add("boneS10", "banded",
      [=] { return banded(scaled(110000, s), 300, 40, 35); });
  add("circuit5M", "few_dense_rows", [=] {
    const index_t n = scaled(260000, s);
    return few_dense_rows(n, 3, 28, std::min<index_t>(n, 40000), 36);
  });
  add("large-dense", "dense", [=] { return dense(scaled(1800, s2)); });

  return suite;
}

std::vector<SuiteEntry> test_suite() {
  std::vector<SuiteEntry> suite;
  auto add = [&suite](std::string name, std::string family,
                      std::function<CsrMatrix()> make) {
    suite.push_back({std::move(name), std::move(family), std::move(make)});
  };
  add("tiny-dense", "dense", [] { return dense(48); });
  add("tiny-poisson2d", "stencil2d5", [] { return stencil_2d_5pt(24, 24); });
  add("tiny-poisson3d", "stencil3d7", [] { return stencil_3d_7pt(9, 9, 9); });
  add("tiny-banded", "banded", [] { return banded(800, 40, 9, 5); });
  add("tiny-random", "random_uniform", [] { return random_uniform(700, 7, 6); });
  add("tiny-rmat", "rmat", [] { return rmat(9, 8, 0.55, 0.2, 0.15, 7); });
  add("tiny-powerlaw", "power_law", [] { return power_law(900, 10, 1.9, 8); });
  add("tiny-fewdense", "few_dense_rows",
      [] { return few_dense_rows(1000, 3, 4, 700, 9); });
  add("tiny-shortrows", "short_rows", [] { return short_rows(1200, 2.5, 10); });
  add("tiny-blockdense", "block_dense",
      [] { return block_diagonal_dense(512, 32, 11); });
  add("tiny-diagonal", "diagonal", [] { return diagonal(640); });
  add("tiny-monsterrow", "monster_row",
      [] { return monster_row(1500, 1500, 2, 0, 12); });
  return suite;
}

std::vector<SuiteEntry> training_pool(int count) {
  if (count < 1) throw std::invalid_argument("training_pool: count < 1");
  std::vector<SuiteEntry> pool;
  pool.reserve(static_cast<std::size_t>(count));
  // Ten families, cycled; parameters vary deterministically with k so the
  // pool covers each family's parameter range.
  for (int k = 0; k < count; ++k) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(k);
    const int fam = k % 10;
    const int step = k / 10;  // 0..20 for count=210
    std::string name = "train-" + std::to_string(k);
    switch (fam) {
      case 0: {
        const index_t g = static_cast<index_t>(10 + 2 * step);  // 3d grid
        pool.push_back({name, "stencil3d7",
                        [g] { return stencil_3d_7pt(g, g, g); }});
        break;
      }
      case 1: {
        const index_t g = static_cast<index_t>(40 + 12 * step);
        pool.push_back({name, "stencil2d5",
                        [g] { return stencil_2d_5pt(g, g); }});
        break;
      }
      case 2: {
        const index_t n = static_cast<index_t>(2000 + 1500 * step);
        const index_t bw = static_cast<index_t>(20 + 30 * step);
        const index_t nnz = static_cast<index_t>(6 + 2 * (step % 8));
        pool.push_back({name, "banded",
                        [=] { return banded(n, bw, nnz, seed); }});
        break;
      }
      case 3: {
        const index_t n = static_cast<index_t>(3000 + 2500 * step);
        const index_t nnz = static_cast<index_t>(4 + (step % 10));
        pool.push_back({name, "random_uniform",
                        [=] { return random_uniform(n, nnz, seed); }});
        break;
      }
      case 4: {
        const int scale = 10 + (step % 5);
        const index_t ef = static_cast<index_t>(6 + (step % 6));
        pool.push_back({name, "rmat", [=] {
                          return rmat(scale, ef, 0.5, 0.2, 0.2, seed);
                        }});
        break;
      }
      case 5: {
        const index_t n = static_cast<index_t>(4000 + 2500 * step);
        const index_t avg = static_cast<index_t>(8 + (step % 12));
        const double alpha = 1.6 + 0.1 * (step % 8);
        pool.push_back({name, "power_law",
                        [=] { return power_law(n, avg, alpha, seed); }});
        break;
      }
      case 6: {
        const index_t n = static_cast<index_t>(5000 + 3000 * step);
        const index_t dense_rows = static_cast<index_t>(2 + (step % 6));
        const index_t dense_len = std::min<index_t>(n, static_cast<index_t>(
            n / 2 + 100 * step));
        pool.push_back({name, "few_dense_rows", [=] {
                          return few_dense_rows(n, 3, dense_rows, dense_len, seed);
                        }});
        break;
      }
      case 7: {
        const index_t n = static_cast<index_t>(6000 + 3000 * step);
        const double avg = 2.0 + 0.3 * (step % 6);
        pool.push_back({name, "short_rows",
                        [=] { return short_rows(n, avg, seed); }});
        break;
      }
      case 8: {
        const index_t n = static_cast<index_t>(512 + 256 * step);
        const index_t block = static_cast<index_t>(24 + 12 * (step % 8));
        pool.push_back({name, "block_dense", [=] {
                          return block_diagonal_dense(n, block, seed);
                        }});
        break;
      }
      default: {
        const index_t n = static_cast<index_t>(64 + 32 * step);
        pool.push_back({name, "dense", [=] { return dense(n, seed); }});
        break;
      }
    }
  }
  return pool;
}

}  // namespace spmvopt::gen
