// Synthetic sparse-matrix generators.
//
// Each generator produces a family with a controlled structural signature so
// that together they span the paper's bottleneck classes (DESIGN.md §3):
//   * stencils / banded        → regular access, bandwidth-bound (MB)
//   * uniform random columns   → irregular access, latency-bound (ML)
//   * power-law row lengths    → workload imbalance (IMB)
//   * few dense rows / tiny    → computational bottlenecks (CMP)
// All generators are deterministic for a given seed (xoshiro256**).
#pragma once

#include <vector>

#include "sparse/csr.hpp"
#include "support/types.hpp"

namespace spmvopt::gen {

/// Fully dense n×n stored as sparse ("small-dense"/"large-dense" in Fig. 1).
[[nodiscard]] CsrMatrix dense(index_t n, std::uint64_t seed = 1);

/// 2-D 5-point Poisson stencil on an nx×ny grid (parabolic_fem-like); SPD.
[[nodiscard]] CsrMatrix stencil_2d_5pt(index_t nx, index_t ny);

/// 3-D 7-point Poisson stencil on an nx×ny×nz grid (poisson3Db-like); SPD.
[[nodiscard]] CsrMatrix stencil_3d_7pt(index_t nx, index_t ny, index_t nz);

/// 3-D 27-point stencil (FEM_3D_thermal2-like, denser rows); SPD.
[[nodiscard]] CsrMatrix stencil_3d_27pt(index_t nx, index_t ny, index_t nz);

/// Random banded matrix: each row gets `nnz_per_row` entries uniformly inside
/// a band of half-width `half_bw` around the diagonal (pkustk/boneS10-like
/// FEM signature). Symmetrized, diagonally dominated (usable for CG).
[[nodiscard]] CsrMatrix banded(index_t n, index_t half_bw, index_t nnz_per_row,
                               std::uint64_t seed = 1);

/// Uniform random: every row has exactly `nnz_per_row` entries at uniformly
/// random columns (delaunay/ins2-like irregularity → ML class).
[[nodiscard]] CsrMatrix random_uniform(index_t n, index_t nnz_per_row,
                                       std::uint64_t seed = 1);

/// Scale-free graph adjacency via the RMAT recursive process
/// (web-Google / citation-network signature). `scale` ⇒ n = 2^scale rows,
/// nnz ≈ n * edge_factor.
[[nodiscard]] CsrMatrix rmat(int scale, index_t edge_factor, double a, double b,
                             double c, std::uint64_t seed = 1);

/// Row lengths drawn from a Zipf/power-law with exponent `alpha` and mean
/// ≈ avg_nnz; columns uniform (flickr/wikipedia-like: IMB + ML).
[[nodiscard]] CsrMatrix power_law(index_t n, index_t avg_nnz, double alpha,
                                  std::uint64_t seed = 1);

/// Mostly-diagonal matrix with `num_dense` rows of `dense_len` nonzeros
/// (ASIC_680k / rajat30 / FullChip signature: nnz concentrated in a few
/// dense rows → IMB + CMP).
[[nodiscard]] CsrMatrix few_dense_rows(index_t n, index_t base_nnz,
                                       index_t num_dense, index_t dense_len,
                                       std::uint64_t seed = 1);

/// The IMB worst case: an n×n matrix whose middle row holds `monster_len`
/// nonzeros (a contiguous column run — clamped to n) while every other
/// non-empty row carries `base_nnz`; with `empty_run` > 0 the remaining rows
/// alternate between runs of `empty_run` populated and `empty_run` empty
/// rows (skew and empty-row runs are the two knobs merge-path partitioning
/// must absorb).  1-D nnz partitions serialize on the monster row.
[[nodiscard]] CsrMatrix monster_row(index_t n, index_t monster_len,
                                    index_t base_nnz, index_t empty_run,
                                    std::uint64_t seed = 1);

/// Degenerate 1×n shape: a single row with `nnz` entries at random columns.
[[nodiscard]] CsrMatrix row_vector(index_t n, index_t nnz,
                                   std::uint64_t seed = 1);

/// Degenerate n×1 shape: one column, `nnz` populated rows.
[[nodiscard]] CsrMatrix col_vector(index_t n, index_t nnz,
                                   std::uint64_t seed = 1);

/// Web-crawl-like: very short rows (average ≈ `avg_nnz`, many empty or
/// 1-element rows, a power-law tail) → loop-overhead / CMP signature
/// (webbase-1M).
[[nodiscard]] CsrMatrix short_rows(index_t n, double avg_nnz,
                                   std::uint64_t seed = 1);

/// Dense `block`×`block` blocks along the diagonal (nd24k-like: long dense
/// rows, high flop:byte → MB/CMP).
[[nodiscard]] CsrMatrix block_diagonal_dense(index_t n, index_t block,
                                             std::uint64_t seed = 1);

/// Identity-like diagonal matrix (degenerate edge case).
[[nodiscard]] CsrMatrix diagonal(index_t n, value_t value = 1.0);

/// Make a square CSR matrix strictly diagonally dominant in place (adds a
/// diagonal entry where missing): turns any generated pattern into a matrix
/// CG/GMRES converge on.
[[nodiscard]] CsrMatrix make_diagonally_dominant(const CsrMatrix& csr,
                                                 value_t margin = 1.0);

/// Deterministic dense input vector for benchmarks: x[i] ∈ [0.5, 1.5).
[[nodiscard]] std::vector<value_t> test_vector(index_t n, std::uint64_t seed = 7);

}  // namespace spmvopt::gen
