// The matrix suites of the paper, rebuilt synthetically (DESIGN.md §3).
//
// * `evaluation_suite()` — stand-ins for the ~30 UF matrices on the x-axis of
//   Fig. 1 / Fig. 3 / Fig. 7, in paper order, each generated with the
//   structural signature of its namesake (size scaled to laptop memory).
// * `training_pool()` — stand-in for the 210-matrix training set of the
//   feature-guided classifier (§III-D2): a sweep over all generator families
//   and parameter ranges.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace spmvopt::gen {

struct SuiteEntry {
  std::string name;       ///< matrix name as it appears in the paper's plots
  std::string family;     ///< generator family (for the substitution table)
  std::function<CsrMatrix()> make;  ///< builds the matrix on demand
};

/// The Fig. 1/3/7 evaluation suite.  `scale` in (0, 1] shrinks dimensions for
/// quick runs (quick mode uses 0.35).
[[nodiscard]] std::vector<SuiteEntry> evaluation_suite(double scale = 1.0);

/// A small deterministic subset of the evaluation suite for unit tests.
[[nodiscard]] std::vector<SuiteEntry> test_suite();

/// The classifier training pool: `count` generated matrices sweeping all
/// families. Matrices are small (1e3–3e4 rows) so labeling is fast.
[[nodiscard]] std::vector<SuiteEntry> training_pool(int count = 210);

}  // namespace spmvopt::gen
