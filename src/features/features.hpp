// Structural matrix features (Table I) for the feature-guided classifier.
//
// Per-row quantities, with nnz_i the row length and cols the sorted column
// indices of row i:
//   bw_i         = cols.last - cols.first   (0 for rows with < 2 nonzeros)
//   scatter_i    = nnz_i / (bw_i + 1)        (a.k.a. "dispersion" in
//                  Table IV; +1 keeps single-element rows finite — the paper
//                  leaves that case unspecified)
//   clustering_i = ngroups_i / nnz_i, ngroups = runs of consecutive columns
//   misses_i     = #elements whose gap from the previous element in the row
//                  exceeds the elements that fit in one cache line
// Aggregates use population statistics over all N rows (empty rows count
// with zeros), matching the Θ(N)/Θ(NNZ) extraction costs of Table I.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace spmvopt::features {

/// Feature identifiers, in the order of Table I.
enum class FeatureId : int {
  Size = 0,       ///< 1 when the SpMV working set fits in the LLC, else 0
  Density,        ///< NNZ / N^2
  NnzMin,
  NnzMax,
  NnzAvg,
  NnzSd,
  BwMin,
  BwMax,
  BwAvg,
  BwSd,
  ScatterAvg,     ///< "dispersion_avg" in Table IV
  ScatterSd,      ///< "dispersion_sd" in Table IV
  ClusteringAvg,
  MissesAvg,
  kCount
};

inline constexpr int kFeatureCount = static_cast<int>(FeatureId::kCount);

/// All Table I features for one matrix.
struct FeatureVector {
  std::array<double, kFeatureCount> v{};

  [[nodiscard]] double operator[](FeatureId id) const noexcept {
    return v[static_cast<std::size_t>(static_cast<int>(id))];
  }
  [[nodiscard]] double& operator[](FeatureId id) noexcept {
    return v[static_cast<std::size_t>(static_cast<int>(id))];
  }
};

/// Human-readable feature name ("nnz_max", "dispersion_sd", ...).
[[nodiscard]] const char* feature_name(FeatureId id);

/// Extract all features in one pass.  `cache_line_elems` defaults to the
/// host's cache line (doubles per line) and `llc_bytes` to the host LLC;
/// both are overridable for tests and cross-platform what-if analyses.
[[nodiscard]] FeatureVector extract_features(const CsrMatrix& A,
                                             std::size_t cache_line_elems = 0,
                                             std::size_t llc_bytes = 0);

/// True when any feature in `ids` requires the Θ(NNZ) gap scan
/// (clustering_avg or misses_avg); everything else is Θ(N) per Table I.
[[nodiscard]] bool needs_nnz_scan(const std::vector<FeatureId>& ids);

/// Extract only the features in `ids` (others are left zero), skipping the
/// Θ(NNZ) gap scan when `ids` permits — this realizes the Table I
/// complexities and is what the feature-guided classifier's online phase
/// calls, so an O(N) feature set really costs O(N).
[[nodiscard]] FeatureVector extract_features_subset(
    const CsrMatrix& A, const std::vector<FeatureId>& ids,
    std::size_t cache_line_elems = 0, std::size_t llc_bytes = 0);

/// The Θ(N) feature subset of Table IV (first row): nnz{min,max,sd}, bw_avg,
/// dispersion{avg,sd}.
[[nodiscard]] std::vector<FeatureId> on_feature_set();

/// The Θ(NNZ) feature subset of Table IV (second row): size, bw{avg,sd},
/// nnz{min,max,avg,sd}, misses_avg, dispersion_sd.
[[nodiscard]] std::vector<FeatureId> onnz_feature_set();

/// Project a FeatureVector onto a subset, in subset order (classifier input).
[[nodiscard]] std::vector<double> project(const FeatureVector& f,
                                          const std::vector<FeatureId>& ids);

}  // namespace spmvopt::features
