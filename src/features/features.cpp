#include "features/features.hpp"

#include <cmath>
#include <stdexcept>

#include "support/cpu_info.hpp"

namespace spmvopt::features {

const char* feature_name(FeatureId id) {
  switch (id) {
    case FeatureId::Size: return "size";
    case FeatureId::Density: return "density";
    case FeatureId::NnzMin: return "nnz_min";
    case FeatureId::NnzMax: return "nnz_max";
    case FeatureId::NnzAvg: return "nnz_avg";
    case FeatureId::NnzSd: return "nnz_sd";
    case FeatureId::BwMin: return "bw_min";
    case FeatureId::BwMax: return "bw_max";
    case FeatureId::BwAvg: return "bw_avg";
    case FeatureId::BwSd: return "bw_sd";
    case FeatureId::ScatterAvg: return "dispersion_avg";
    case FeatureId::ScatterSd: return "dispersion_sd";
    case FeatureId::ClusteringAvg: return "clustering_avg";
    case FeatureId::MissesAvg: return "misses_avg";
    case FeatureId::kCount: break;
  }
  throw std::invalid_argument("feature_name: bad id");
}

namespace {

/// Shared aggregation loop.  The gap scan (clustering/misses) is the only
/// Θ(NNZ) part; ScanGaps=false keeps the whole extraction Θ(N).
template <bool ScanGaps>
FeatureVector extract_impl(const CsrMatrix& A, std::size_t cache_line_elems,
                           std::size_t llc_bytes) {
  if (cache_line_elems == 0) cache_line_elems = cpu_info().doubles_per_line();
  if (llc_bytes == 0) llc_bytes = cpu_info().llc_bytes;
  const index_t n = A.nrows();
  if (n == 0) throw std::invalid_argument("extract_features: empty matrix");
  const index_t* rowptr = A.rowptr();
  const index_t* colind = A.colind();
  const double dn = static_cast<double>(n);

  double nnz_min = 1e300, nnz_max = 0.0, nnz_sum = 0.0, nnz_sq = 0.0;
  double bw_min = 1e300, bw_max = 0.0, bw_sum = 0.0, bw_sq = 0.0;
  double sc_sum = 0.0, sc_sq = 0.0;
  double cl_sum = 0.0;
  double miss_sum = 0.0;

  for (index_t i = 0; i < n; ++i) {
    const index_t lo = rowptr[i];
    const index_t hi = rowptr[i + 1];
    const double len = static_cast<double>(hi - lo);
    const double bw =
        hi - lo >= 2 ? static_cast<double>(colind[hi - 1] - colind[lo]) : 0.0;
    const double scatter = len > 0.0 ? len / (bw + 1.0) : 0.0;

    // clustering_i and misses_i share the gap scan (Θ(NNZ) total).
    double clustering = 0.0;
    double misses = 0.0;
    if constexpr (ScanGaps) {
      double groups = hi > lo ? 1.0 : 0.0;
      for (index_t j = lo + 1; j < hi; ++j) {
        const index_t gap = colind[j] - colind[j - 1];
        if (gap != 1) groups += 1.0;
        if (static_cast<std::size_t>(gap) > cache_line_elems) misses += 1.0;
      }
      clustering = len > 0.0 ? groups / len : 0.0;
    }

    nnz_min = std::min(nnz_min, len);
    nnz_max = std::max(nnz_max, len);
    nnz_sum += len;
    nnz_sq += len * len;
    bw_min = std::min(bw_min, bw);
    bw_max = std::max(bw_max, bw);
    bw_sum += bw;
    bw_sq += bw * bw;
    sc_sum += scatter;
    sc_sq += scatter * scatter;
    cl_sum += clustering;
    miss_sum += misses;
  }

  auto sd = [dn](double sum, double sq) {
    const double mean = sum / dn;
    const double var = sq / dn - mean * mean;
    return var > 0.0 ? std::sqrt(var) : 0.0;
  };

  FeatureVector f;
  f[FeatureId::Size] = A.working_set_bytes() <= llc_bytes ? 1.0 : 0.0;
  f[FeatureId::Density] = static_cast<double>(A.nnz()) / (dn * dn);
  f[FeatureId::NnzMin] = nnz_min;
  f[FeatureId::NnzMax] = nnz_max;
  f[FeatureId::NnzAvg] = nnz_sum / dn;
  f[FeatureId::NnzSd] = sd(nnz_sum, nnz_sq);
  f[FeatureId::BwMin] = bw_min;
  f[FeatureId::BwMax] = bw_max;
  f[FeatureId::BwAvg] = bw_sum / dn;
  f[FeatureId::BwSd] = sd(bw_sum, bw_sq);
  f[FeatureId::ScatterAvg] = sc_sum / dn;
  f[FeatureId::ScatterSd] = sd(sc_sum, sc_sq);
  f[FeatureId::ClusteringAvg] = cl_sum / dn;
  f[FeatureId::MissesAvg] = miss_sum / dn;
  return f;
}

}  // namespace

FeatureVector extract_features(const CsrMatrix& A,
                               std::size_t cache_line_elems,
                               std::size_t llc_bytes) {
  return extract_impl<true>(A, cache_line_elems, llc_bytes);
}

bool needs_nnz_scan(const std::vector<FeatureId>& ids) {
  for (FeatureId id : ids)
    if (id == FeatureId::ClusteringAvg || id == FeatureId::MissesAvg)
      return true;
  return false;
}

FeatureVector extract_features_subset(const CsrMatrix& A,
                                      const std::vector<FeatureId>& ids,
                                      std::size_t cache_line_elems,
                                      std::size_t llc_bytes) {
  return needs_nnz_scan(ids)
             ? extract_impl<true>(A, cache_line_elems, llc_bytes)
             : extract_impl<false>(A, cache_line_elems, llc_bytes);
}

std::vector<FeatureId> on_feature_set() {
  return {FeatureId::NnzMin,     FeatureId::NnzMax,    FeatureId::NnzSd,
          FeatureId::BwAvg,      FeatureId::ScatterAvg, FeatureId::ScatterSd};
}

std::vector<FeatureId> onnz_feature_set() {
  return {FeatureId::Size,   FeatureId::BwAvg,     FeatureId::BwSd,
          FeatureId::NnzMin, FeatureId::NnzMax,    FeatureId::NnzAvg,
          FeatureId::NnzSd,  FeatureId::MissesAvg, FeatureId::ScatterSd};
}

std::vector<double> project(const FeatureVector& f,
                            const std::vector<FeatureId>& ids) {
  std::vector<double> out;
  out.reserve(ids.size());
  for (FeatureId id : ids) out.push_back(f[id]);
  return out;
}

}  // namespace spmvopt::features
