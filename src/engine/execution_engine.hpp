// ExecutionEngine: a persistent, affinity-pinned thread team.
//
// Every OpenMP kernel in src/kernels/ opens its own `#pragma omp parallel`
// region, paying a team fork/join on every SpMV call — noise for one large
// matrix, but real overhead for the iterative-solver sweeps of §IV-D where a
// matvec can be microseconds.  The engine keeps one team alive for its whole
// lifetime: worker threads are spawned once, pinned once (pthread affinity
// driven by the support/topology probe), and parked on a condition variable
// between dispatches.  A dispatch hands the team a plain function pointer +
// context and costs one wake/notify round trip instead of a team spawn.
//
// The calling thread is team member 0: it executes its own share of every
// dispatch, so an engine of size 1 degenerates to a direct call with zero
// synchronization — the fast path for small matrices.
//
// Threading contract (mailbox mode): one dispatch at a time per engine
// (run_team blocks until the team is done).  Mailbox engines are not
// thread-safe; share one engine across call sites, not across concurrent
// callers.  Team functions must not throw and must not dispatch recursively.
//
// Pool-backed mode (DESIGN.md §12): when EngineConfig::pool is set, the
// engine spawns no private team — every dispatch becomes a task group of
// nthreads() spans on the shared work-stealing StealPool, and run_team IS
// thread-safe (N callers' spans interleave on the pool's workers instead of
// serializing).  The single-caller fast paths are preserved: a size-1
// dispatch is still a direct call, and mailbox engines are untouched.
// team_barrier() is forbidden in pool-backed dispatches — spans of one group
// may execute sequentially on one worker, so an in-dispatch barrier can
// deadlock; pooled team bodies must be phased (dispatch, join, fix up)
// instead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/steal_pool.hpp"
#include "support/numa_alloc.hpp"
#include "support/partition.hpp"
#include "support/topology.hpp"
#include "support/types.hpp"

namespace spmvopt::engine {

struct EngineConfig {
  int nthreads = 0;  ///< team size; <= 0 means default_threads()
  PinPolicy pin = PinPolicy::Compact;
  /// Pin the calling thread too (it is team member 0).  Off for callers that
  /// must keep their own affinity (e.g. a server's request thread).
  bool pin_main = true;
  /// Pool-backed mode: run dispatches as task spans on this shared
  /// work-stealing pool instead of a private mailbox team.  The pool must
  /// outlive the engine; pin/pin_main are then the pool's concern and
  /// nthreads only sets the span count (partition granularity), defaulting
  /// to the pool's worker count.
  StealPool* pool = nullptr;
};

class ExecutionEngine {
 public:
  explicit ExecutionEngine(EngineConfig cfg = {});
  ~ExecutionEngine();

  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;

  [[nodiscard]] int nthreads() const noexcept { return nthreads_; }
  [[nodiscard]] PinPolicy pin_policy() const noexcept { return cfg_.pin; }
  /// True when dispatches run on a shared StealPool (concurrent-caller
  /// safe, but team_barrier() is forbidden inside dispatches).
  [[nodiscard]] bool pooled() const noexcept { return cfg_.pool != nullptr; }
  [[nodiscard]] StealPool* pool() const noexcept { return cfg_.pool; }
  /// CPU id each team member was pinned to; empty when policy is None or
  /// pinning failed (non-Linux, restricted cgroup).
  [[nodiscard]] const std::vector<int>& pinned_cpus() const noexcept {
    return pinned_cpus_;
  }
  /// Dispatches served since construction (stats for bench/CLI output).
  [[nodiscard]] std::uint64_t dispatch_count() const noexcept {
    return dispatches_.load(std::memory_order_relaxed);
  }
  /// Successful recycle() calls (the server's self-healing counter).
  [[nodiscard]] std::uint64_t recycle_count() const noexcept {
    return recycles_;
  }

  /// Self-healing: tear the worker team down (join every thread) and re-spawn
  /// + re-pin a fresh one through the same topology path as construction.
  /// The server watchdog calls this after a job overran its deadline badly
  /// enough to suggest a wedged/poisoned team.  Must not be called
  /// concurrently with a dispatch (the caller serializes, e.g. the server
  /// executor between jobs).  Returns false — leaving the existing team fully
  /// intact and serviceable — when the respawn is vetoed (fault point
  /// `engine.team_respawn`).
  [[nodiscard]] bool recycle();

  /// Hot-path dispatch: run `fn(ctx, tid, nthreads())` on every team member
  /// and return when all have finished.  The caller runs tid 0 inline.
  using TeamFn = void (*)(void* ctx, int tid, int nthreads);
  void run_team(TeamFn fn, void* ctx) noexcept;

  /// Checked convenience wrapper over run_team for setup-path callables
  /// (first-touch materialization, tests).  F is `void(int tid, int nt)`.
  template <class F>
  void parallel(F&& f) {
    const auto trampoline = [](void* p, int tid, int nt) {
      (*static_cast<F*>(p))(tid, nt);
    };
    run_team(trampoline, const_cast<void*>(static_cast<const void*>(&f)));
  }

  /// In-dispatch barrier: every team member must call it the same number of
  /// times.  Valid only inside a team function, and only in mailbox mode —
  /// a pool-backed dispatch may run several spans on one worker, so a
  /// barrier inside one would deadlock.
  void team_barrier() noexcept;

  /// A zero-filled value vector whose pages were first-touched by the team,
  /// each thread an even slice — NUMA-correct storage for x/y operands.
  [[nodiscard]] numa_vector<value_t> touched_vector(index_t n);

  /// Same, but ownership follows a row partition (thread t touches rows
  /// [bounds[t], bounds[t+1])) so y placement matches the kernel's writes.
  [[nodiscard]] numa_vector<value_t> touched_vector(index_t n,
                                                    const RowPartition& part);

 private:
  void worker_loop(int tid);
  void spawn_team();
  void join_team();

  EngineConfig cfg_;
  int nthreads_ = 1;
  std::vector<int> pinned_cpus_;
  /// Atomic because pool-backed engines accept concurrent run_team calls.
  std::atomic<std::uint64_t> dispatches_{0};
  std::uint64_t recycles_ = 0;

  // Dispatch mailbox: `generation_` bumps under `mutex_` after `fn_`/`ctx_`
  // are staged; workers sleep on `wake_` until they observe a new generation
  // (or `stop_`).  Completion flows back through `remaining_` + `done_`.
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  TeamFn fn_ = nullptr;
  void* ctx_ = nullptr;
  int remaining_ = 0;

  // Centralized generation barrier for team_barrier().
  std::atomic<int> barrier_arrived_{0};
  std::atomic<std::uint64_t> barrier_generation_{0};

  std::vector<std::thread> workers_;  ///< nthreads_ - 1 entries
};

}  // namespace spmvopt::engine
