// StealPool: a nonblocking work-stealing thread pool the engine's team
// bodies run on when many callers must share one machine (DESIGN.md §12).
//
// The condvar-mailbox ExecutionEngine is the fastest possible shape for ONE
// caller: a ~4 ns dispatch to a private pinned team.  A server has M
// concurrent executors, and M private teams either fight over the same
// cores or serialize behind one.  The pool inverts the ownership: one set
// of workers (pinned once, via the same support/topology path as the
// engine), and every dispatch becomes a *task group* of N spans that any
// worker — or the submitting caller itself — may claim and execute.
//
// Structure (the Chase-Lev formulation, in the C11 weak-memory-correct
// version of Lê/Antoniu/Cohen/Zappa Nardelli, PPoPP'13):
//
//   * one lock-free deque per participant — every worker AND every
//     registered submitter slot owns one.  Owners push/pop 64-bit task
//     words LIFO at the bottom; thieves steal FIFO at the top with a CAS.
//   * a task word is a pointer to a TaskGroup; consuming a word claims one
//     span via an atomic cursor (`next.fetch_add`), which makes exact-once
//     span execution a structural invariant rather than a protocol to keep.
//   * fan-out is by lazy cloning: a consumer that observes unclaimed spans
//     pushes up to two copies of the word onto its own deque before
//     executing its span.  Words spread as a binary tree, idle workers
//     steal them, and a word that arrives after all spans are claimed dies
//     quietly.  The group's `live` count (outstanding words + running
//     spans) reaches zero exactly when every span has finished.
//   * idle policy is spin-then-park: a worker that fails a few full steal
//     sweeps backs off exponentially (yield) and finally parks on a
//     condvar, but only after re-checking the global pending-word count
//     under the park mutex — the submitter's increment-then-notify order
//     makes the lost-wakeup race impossible.
//   * victim selection is a per-slot xoshiro256** stream seeded from
//     (config seed ^ slot), so a failing interleaving replays: the exact
//     probe order of every participant is a pure function of the seed
//     (steal_schedule() exposes it to tests).
//
// Contracts: span functions must not throw and must not call run_spans on
// the same pool (spans may serialize on one worker — a nested dispatch or
// an in-span barrier can deadlock; the engine's team_barrier is therefore
// forbidden in pool-backed dispatches).  recycle() and destruction require
// that no run_spans call is in flight.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/rng.hpp"
#include "support/topology.hpp"

namespace spmvopt::engine {

/// Lock-free single-owner deque of 64-bit task words (Chase-Lev).  The
/// owner pushes and pops at the bottom; any other thread steals at the top.
/// Growth is owner-only; retired rings are kept until destruction so racing
/// thieves never read freed memory.
class ChaseLevDeque {
 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64);

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only: append at the bottom (grows when full).
  void push(std::uint64_t w);

  /// Owner only: LIFO pop from the bottom; false when empty.  The
  /// last-element race against a thief is resolved by a CAS on top — the
  /// word is consumed exactly once.
  [[nodiscard]] bool pop(std::uint64_t& out);

  enum class Steal { Ok, Empty, Lost };

  /// Any thread: FIFO steal from the top.  Lost means another thief (or the
  /// owner, on the last element) won the CAS — worth retrying elsewhere.
  [[nodiscard]] Steal steal(std::uint64_t& out);

  /// Owner-observed size estimate (exact for the owner, racy for others).
  [[nodiscard]] std::int64_t size_estimate() const noexcept;

 private:
  struct Ring {
    explicit Ring(std::size_t cap) : mask(cap - 1), slots(cap) {}
    std::size_t mask;
    std::vector<std::atomic<std::uint64_t>> slots;
    std::uint64_t& at(std::int64_t) = delete;  // use load/store below
    [[nodiscard]] std::uint64_t load(std::int64_t i) const noexcept {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void store(std::int64_t i, std::uint64_t w) noexcept {
      slots[static_cast<std::size_t>(i) & mask].store(
          w, std::memory_order_relaxed);
    }
  };

  Ring* grow(Ring* old, std::int64_t bottom, std::int64_t top);

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> ring_;
  std::vector<std::unique_ptr<Ring>> rings_;  ///< current + retired (owner)
};

struct StealPoolConfig {
  int nthreads = 0;  ///< worker count; <= 0 means default_threads()
  PinPolicy pin = PinPolicy::None;
  /// Seed of every participant's victim-selection stream; the probe order
  /// of slot s is a pure function of (seed ^ s), so failures replay.
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
  /// Concurrent external callers that get their own deque slot; callers
  /// beyond this run their spans inline (correct, just unshared).
  int max_submitters = 16;
  /// Failed full steal sweeps before an idle worker parks.
  int spin_sweeps = 32;
};

/// Aggregate counters (monotonic since construction; relaxed reads).
struct StealPoolStats {
  int workers = 0;
  std::uint64_t dispatches = 0;     ///< run_spans calls (incl. inline)
  std::uint64_t inline_runs = 0;    ///< saturated-submitter serial fallbacks
  std::uint64_t tasks = 0;          ///< spans executed
  std::uint64_t steals = 0;         ///< successful steals
  std::uint64_t failed_steals = 0;  ///< probes that found nothing / lost CAS
  std::uint64_t parks = 0;          ///< worker park transitions
  std::uint64_t wakes = 0;          ///< push-side notify rounds issued
  std::uint64_t recycles = 0;       ///< successful recycle() calls
};

class StealPool {
 public:
  explicit StealPool(StealPoolConfig cfg = {});
  ~StealPool();

  StealPool(const StealPool&) = delete;
  StealPool& operator=(const StealPool&) = delete;

  [[nodiscard]] int nworkers() const noexcept { return nworkers_; }
  [[nodiscard]] const std::vector<int>& pinned_cpus() const noexcept {
    return pinned_cpus_;
  }
  [[nodiscard]] StealPoolStats stats() const noexcept;

  /// Run `fn(ctx, span, nspans)` for every span in [0, nspans), on whichever
  /// participants claim them, and return when all have finished.  The caller
  /// participates: it seeds its own deque slot, executes spans, and steals
  /// while waiting.  Safe to call from many threads concurrently — that is
  /// the point.  Must not be called from inside a span.
  using SpanFn = void (*)(void* ctx, int span, int nspans);
  void run_spans(SpanFn fn, void* ctx, int nspans) noexcept;

  /// Self-healing counterpart of ExecutionEngine::recycle(): join every
  /// worker and re-spawn + re-pin a fresh set.  Caller must guarantee no
  /// run_spans is in flight (the server quiesces its executors first).
  void recycle();

  /// The deterministic steal schedule: the first `count` victim deque slots
  /// participant `self` probes in a pool with `ndeques` deques under `seed`.
  /// Exposed so tests can replay and assert the exact probe order the pool
  /// will use.
  [[nodiscard]] static std::vector<int> steal_schedule(std::uint64_t seed,
                                                       int self, int ndeques,
                                                       int count);

 private:
  /// One dispatch: `next` claims spans exactly once; `live` counts
  /// outstanding task words plus running spans and hits zero exactly at
  /// completion (while any span is unclaimed, at least one live word
  /// exists — the clone-before-execute rule maintains it).
  struct TaskGroup {
    SpanFn fn;
    void* ctx;
    int nspans;
    std::atomic<int> next{0};
    std::atomic<int> live{1};  ///< the initial word
  };

  void worker_loop(int slot);
  void spawn_workers();
  void join_workers();
  /// Claim one word from our own deque, else steal; false when nothing is
  /// visible anywhere right now.
  [[nodiscard]] bool acquire(int self, Xoshiro256& rng, std::uint64_t& out);
  /// Execute one consumed word: claim a span, clone for fan-out, run.
  void consume(int self, std::uint64_t w);
  void push_word(int self, TaskGroup* g);
  void maybe_wake();
  [[nodiscard]] int acquire_submitter_slot() noexcept;
  void release_submitter_slot(int slot) noexcept;

  StealPoolConfig cfg_;
  int nworkers_ = 1;
  int ndeques_ = 2;  ///< nworkers_ + max_submitters
  std::vector<int> pinned_cpus_;
  std::vector<std::unique_ptr<ChaseLevDeque>> deques_;
  std::vector<std::thread> workers_;

  /// Free submitter slots as a bitmask (bit i = slot nworkers_+i free).
  std::atomic<std::uint32_t> submitter_free_{0};

  /// Task words currently in deques (approximate from the outside, exact
  /// protocol-wise: incremented before push, decremented after a
  /// successful pop/steal).  Workers park only when it reads zero.
  std::atomic<std::int64_t> pending_{0};
  std::atomic<bool> stop_{false};

  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<int> parked_{0};

  /// Completion handoff: the last decrement of a group's `live` notifies
  /// here.  Pool-level (not group-level) so the notifier never touches
  /// group memory after its final decrement — the submitter may already
  /// have destroyed the stack-allocated group.
  std::mutex completion_mu_;
  std::condition_variable completion_cv_;

  std::atomic<std::uint64_t> dispatches_{0};
  std::atomic<std::uint64_t> inline_runs_{0};
  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> failed_steals_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> wakes_{0};
  std::atomic<std::uint64_t> recycles_{0};
};

}  // namespace spmvopt::engine
