#include "engine/execution_engine.hpp"

#include <algorithm>

#include "robust/fault_inject.hpp"
#include "support/cpu_info.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace spmvopt::engine {

namespace {

/// Pin the calling thread to one CPU; false when the host refuses (masked
/// cpuset, non-Linux build) — the engine then runs unpinned, which is the
/// documented graceful fallback, not an error.
bool pin_self(int cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace

ExecutionEngine::ExecutionEngine(EngineConfig cfg) : cfg_(cfg) {
  if (cfg_.pool != nullptr) {
    // Pool-backed: no private team.  nthreads is the span count per
    // dispatch; by default one span per pool worker.
    nthreads_ = cfg_.nthreads > 0 ? cfg_.nthreads : cfg_.pool->nworkers();
    pinned_cpus_ = cfg_.pool->pinned_cpus();
    return;
  }
  nthreads_ = cfg_.nthreads > 0 ? cfg_.nthreads : default_threads();
  spawn_team();
}

void ExecutionEngine::spawn_team() {
  std::vector<int> cpus = pin_cpus(topology(), cfg_.pin, nthreads_);
  bool pinned_ok = !cpus.empty();
  if (pinned_ok && cfg_.pin_main) pinned_ok = pin_self(cpus[0]);

  workers_.reserve(static_cast<std::size_t>(nthreads_ - 1));
  for (int tid = 1; tid < nthreads_; ++tid)
    workers_.emplace_back([this, tid] { worker_loop(tid); });

  // Workers pin themselves on their first iteration via the staged CPU list;
  // simpler: pin from here before any dispatch can race with it.
  if (pinned_ok) {
    for (int tid = 1; tid < nthreads_; ++tid) {
#if defined(__linux__)
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(static_cast<unsigned>(cpus[static_cast<std::size_t>(tid)]), &set);
      if (pthread_setaffinity_np(
              workers_[static_cast<std::size_t>(tid - 1)].native_handle(),
              sizeof(set), &set) != 0)
        pinned_ok = false;
#endif
    }
  }
  if (pinned_ok) pinned_cpus_ = std::move(cpus);
}

void ExecutionEngine::join_team() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

ExecutionEngine::~ExecutionEngine() {
  if (cfg_.pool == nullptr) join_team();
}

bool ExecutionEngine::recycle() {
  // The fault fires *before* teardown so an injected respawn failure leaves
  // the old team fully intact — degraded but serviceable, never headless.
  if (robust::fault_fire("engine.team_respawn")) return false;
  if (cfg_.pool != nullptr) {
    // Pool-backed: the watchdog semantics delegate to the shared pool.  The
    // caller guarantees quiescence (no dispatch in flight), same as here.
    cfg_.pool->recycle();
    pinned_cpus_ = cfg_.pool->pinned_cpus();
    ++recycles_;
    return true;
  }
  join_team();
  {
    // Reset the mailbox so the fresh workers (whose `seen` restarts at 0)
    // do not observe a stale generation and replay the last dispatch.
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = false;
    generation_ = 0;
    fn_ = nullptr;
    ctx_ = nullptr;
    remaining_ = 0;
  }
  barrier_arrived_.store(0, std::memory_order_relaxed);
  barrier_generation_.store(0, std::memory_order_relaxed);
  pinned_cpus_.clear();
  spawn_team();
  ++recycles_;
  return true;
}

void ExecutionEngine::worker_loop(int tid) {
  std::uint64_t seen = 0;
  for (;;) {
    TeamFn fn;
    void* ctx;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
      ctx = ctx_;
    }
    fn(ctx, tid, nthreads_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) done_.notify_one();
    }
  }
}

void ExecutionEngine::run_team(TeamFn fn, void* ctx) noexcept {
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  if (nthreads_ == 1) {  // degenerate team: a direct call, no synchronization
    fn(ctx, 0, 1);
    return;
  }
  if (cfg_.pool != nullptr) {
    cfg_.pool->run_spans(fn, ctx, nthreads_);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = fn;
    ctx_ = ctx;
    remaining_ = nthreads_ - 1;
    ++generation_;
  }
  wake_.notify_all();
  fn(ctx, 0, nthreads_);
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] { return remaining_ == 0; });
}

void ExecutionEngine::team_barrier() noexcept {
  const std::uint64_t gen = barrier_generation_.load(std::memory_order_acquire);
  if (barrier_arrived_.fetch_add(1, std::memory_order_acq_rel) ==
      nthreads_ - 1) {
    barrier_arrived_.store(0, std::memory_order_relaxed);
    barrier_generation_.fetch_add(1, std::memory_order_release);
  } else {
    while (barrier_generation_.load(std::memory_order_acquire) == gen)
      std::this_thread::yield();
  }
}

numa_vector<value_t> ExecutionEngine::touched_vector(index_t n) {
  numa_vector<value_t> v(static_cast<std::size_t>(n));
  value_t* data = v.data();
  parallel([data, n](int tid, int nt) {
    const auto lo = static_cast<std::size_t>(
        static_cast<std::int64_t>(n) * tid / nt);
    const auto hi = static_cast<std::size_t>(
        static_cast<std::int64_t>(n) * (tid + 1) / nt);
    first_touch_zero(data + lo, hi - lo);
  });
  return v;
}

numa_vector<value_t> ExecutionEngine::touched_vector(index_t n,
                                                     const RowPartition& part) {
  numa_vector<value_t> v(static_cast<std::size_t>(n));
  value_t* data = v.data();
  const RowPartition* p = &part;
  parallel([data, n, p](int tid, int nt) {
    // Partitions round-robin over the team (covers part.nthreads() != nt);
    // the owner of the last partition also adopts any tail beyond
    // bounds.back() (n may exceed nrows for padded operands).
    for (int t = tid; t < p->nthreads(); t += nt) {
      auto lo = static_cast<std::size_t>(p->bounds[static_cast<std::size_t>(t)]);
      auto hi =
          static_cast<std::size_t>(p->bounds[static_cast<std::size_t>(t) + 1]);
      if (t == p->nthreads() - 1) hi = static_cast<std::size_t>(n);
      hi = std::min(hi, static_cast<std::size_t>(n));
      lo = std::min(lo, hi);
      first_touch_zero(data + lo, hi - lo);
    }
  });
  return v;
}

}  // namespace spmvopt::engine
