#include "engine/steal_pool.hpp"

#include <bit>
#include <chrono>

#include "support/cpu_info.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace spmvopt::engine {

namespace {

bool pin_self(int cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// The per-slot victim-selection stream: a pure function of (seed, slot),
/// shared between the pool and steal_schedule() so tests replay exactly
/// what the pool does.
Xoshiro256 victim_stream(std::uint64_t seed, int self) {
  return Xoshiro256(seed ^ (0x9E3779B97F4A7C15ull *
                            static_cast<std::uint64_t>(self + 1)));
}

int next_victim(Xoshiro256& rng, int ndeques, int self) {
  if (ndeques <= 1) return self;
  int v = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(ndeques - 1)));
  if (v >= self) ++v;  // uniform over the other ndeques-1 slots
  return v;
}

}  // namespace

// ---------------------------------------------------------- ChaseLevDeque
//
// The Lê/Antoniu/Cohen/Zappa Nardelli C11 algorithm, with the standalone
// fences replaced by equivalent-or-stronger orderings on top_/bottom_
// themselves: TSan does not model thread fences, but it tracks
// release/acquire pairs on the atomic objects precisely — and the
// happens-before edge thieves need (owner's ring-slot publication ->
// bottom_ release store -> thief's acquire load) is exactly such a pair.

ChaseLevDeque::ChaseLevDeque(std::size_t initial_capacity) {
  const std::size_t cap = std::bit_ceil(initial_capacity < 2u
                                            ? std::size_t{2}
                                            : initial_capacity);
  rings_.push_back(std::make_unique<Ring>(cap));
  ring_.store(rings_.back().get(), std::memory_order_relaxed);
}

ChaseLevDeque::Ring* ChaseLevDeque::grow(Ring* old, std::int64_t bottom,
                                         std::int64_t top) {
  rings_.push_back(std::make_unique<Ring>((old->mask + 1) * 2));
  Ring* nr = rings_.back().get();
  for (std::int64_t i = top; i < bottom; ++i) nr->store(i, old->load(i));
  // The old ring stays in rings_ until destruction: a thief that loaded it
  // before this store may still read a slot, and [top, bottom) is identical
  // in both rings, so either its CAS fails or the value is correct.
  ring_.store(nr, std::memory_order_release);
  return nr;
}

void ChaseLevDeque::push(std::uint64_t w) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  Ring* r = ring_.load(std::memory_order_relaxed);
  if (b - t > static_cast<std::int64_t>(r->mask)) r = grow(r, b, t);
  r->store(b, w);
  bottom_.store(b + 1, std::memory_order_seq_cst);  // publish to thieves
}

bool ChaseLevDeque::pop(std::uint64_t& out) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Ring* r = ring_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  if (t <= b) {
    out = r->load(b);
    if (t == b) {
      // Last element: race any thief for it via the top CAS.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }
  bottom_.store(b + 1, std::memory_order_relaxed);  // was empty; restore
  return false;
}

ChaseLevDeque::Steal ChaseLevDeque::steal(std::uint64_t& out) {
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return Steal::Empty;
  Ring* r = ring_.load(std::memory_order_acquire);
  out = r->load(t);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed))
    return Steal::Lost;
  return Steal::Ok;
}

std::int64_t ChaseLevDeque::size_estimate() const noexcept {
  return bottom_.load(std::memory_order_relaxed) -
         top_.load(std::memory_order_relaxed);
}

// -------------------------------------------------------------- StealPool

StealPool::StealPool(StealPoolConfig cfg) : cfg_(cfg) {
  nworkers_ = cfg_.nthreads > 0 ? cfg_.nthreads : default_threads();
  if (cfg_.max_submitters < 1) cfg_.max_submitters = 1;
  if (cfg_.max_submitters > 32) cfg_.max_submitters = 32;
  if (cfg_.spin_sweeps < 1) cfg_.spin_sweeps = 1;
  ndeques_ = nworkers_ + cfg_.max_submitters;
  deques_.reserve(static_cast<std::size_t>(ndeques_));
  for (int i = 0; i < ndeques_; ++i)
    deques_.push_back(std::make_unique<ChaseLevDeque>());
  submitter_free_.store(cfg_.max_submitters == 32
                            ? ~0u
                            : (1u << cfg_.max_submitters) - 1u,
                        std::memory_order_relaxed);
  spawn_workers();
}

StealPool::~StealPool() { join_workers(); }

void StealPool::spawn_workers() {
  std::vector<int> cpus = pin_cpus(topology(), cfg_.pin, nworkers_);
  workers_.reserve(static_cast<std::size_t>(nworkers_));
  for (int slot = 0; slot < nworkers_; ++slot)
    workers_.emplace_back([this, slot] { worker_loop(slot); });
  bool pinned_ok = !cpus.empty();
  if (pinned_ok) {
#if defined(__linux__)
    for (int slot = 0; slot < nworkers_; ++slot) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(static_cast<unsigned>(cpus[static_cast<std::size_t>(slot)]),
              &set);
      if (pthread_setaffinity_np(
              workers_[static_cast<std::size_t>(slot)].native_handle(),
              sizeof(set), &set) != 0)
        pinned_ok = false;
    }
#else
    pinned_ok = false;
#endif
  }
  if (pinned_ok) pinned_cpus_ = std::move(cpus);
  (void)pin_self;  // non-Linux builds
}

void StealPool::join_workers() {
  {
    std::lock_guard<std::mutex> lk(park_mu_);
    stop_.store(true, std::memory_order_seq_cst);
  }
  park_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

void StealPool::recycle() {
  // Contract: no run_spans in flight (every group completed), so all
  // deques are empty and the fresh workers start from a clean slate.
  join_workers();
  stop_.store(false, std::memory_order_seq_cst);
  pinned_cpus_.clear();
  spawn_workers();
  recycles_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<int> StealPool::steal_schedule(std::uint64_t seed, int self,
                                           int ndeques, int count) {
  Xoshiro256 rng = victim_stream(seed, self);
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(count < 0 ? 0 : count));
  for (int i = 0; i < count; ++i) out.push_back(next_victim(rng, ndeques, self));
  return out;
}

StealPoolStats StealPool::stats() const noexcept {
  StealPoolStats s;
  s.workers = nworkers_;
  s.dispatches = dispatches_.load(std::memory_order_relaxed);
  s.inline_runs = inline_runs_.load(std::memory_order_relaxed);
  s.tasks = tasks_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.failed_steals = failed_steals_.load(std::memory_order_relaxed);
  s.parks = parks_.load(std::memory_order_relaxed);
  s.wakes = wakes_.load(std::memory_order_relaxed);
  s.recycles = recycles_.load(std::memory_order_relaxed);
  return s;
}

int StealPool::acquire_submitter_slot() noexcept {
  std::uint32_t m = submitter_free_.load(std::memory_order_relaxed);
  while (m != 0) {
    const int bit = std::countr_zero(m);
    if (submitter_free_.compare_exchange_weak(m, m & ~(1u << bit),
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed))
      return nworkers_ + bit;
  }
  return -1;
}

void StealPool::release_submitter_slot(int slot) noexcept {
  submitter_free_.fetch_or(1u << (slot - nworkers_),
                           std::memory_order_release);
}

void StealPool::push_word(int self, TaskGroup* g) {
  // pending_ rises before the word is visible: a momentarily-too-high count
  // only costs a waker a spin, while too-low could strand a parked worker.
  pending_.fetch_add(1, std::memory_order_seq_cst);
  deques_[static_cast<std::size_t>(self)]->push(
      reinterpret_cast<std::uint64_t>(g));
  maybe_wake();
}

void StealPool::maybe_wake() {
  if (parked_.load(std::memory_order_seq_cst) == 0) return;
  // Empty critical section: a worker between its parked_ increment and its
  // wait() holds park_mu_, so acquiring it here orders this notify after
  // the wait entry (or the worker re-checks pending_ and never sleeps).
  { std::lock_guard<std::mutex> lk(park_mu_); }
  park_cv_.notify_all();
  wakes_.fetch_add(1, std::memory_order_relaxed);
}

bool StealPool::acquire(int self, Xoshiro256& rng, std::uint64_t& out) {
  if (deques_[static_cast<std::size_t>(self)]->pop(out)) {
    pending_.fetch_sub(1, std::memory_order_seq_cst);
    return true;
  }
  // One randomized sweep: ndeques-1 probes.  Lost CAS races count as
  // failures and simply move on — the word went to whoever won it.
  for (int i = 1; i < ndeques_; ++i) {
    const int victim = next_victim(rng, ndeques_, self);
    switch (deques_[static_cast<std::size_t>(victim)]->steal(out)) {
      case ChaseLevDeque::Steal::Ok:
        pending_.fetch_sub(1, std::memory_order_seq_cst);
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
      case ChaseLevDeque::Steal::Lost:
      case ChaseLevDeque::Steal::Empty:
        failed_steals_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  return false;
}

void StealPool::consume(int self, std::uint64_t w) {
  auto* g = reinterpret_cast<TaskGroup*>(w);
  const int span = g->next.fetch_add(1, std::memory_order_relaxed);
  if (span < g->nspans) {
    // Clone-before-execute: while unclaimed spans remain, at least one live
    // word must exist somewhere, or a span could be lost.  Two clones make
    // the fan-out a binary tree; a clone that arrives after all spans are
    // claimed takes the span >= nspans branch and dies without effect.
    const int unclaimed = g->nspans - g->next.load(std::memory_order_relaxed);
    const int clones = unclaimed >= 2 ? 2 : (unclaimed == 1 ? 1 : 0);
    for (int i = 0; i < clones; ++i) {
      g->live.fetch_add(1, std::memory_order_relaxed);
      push_word(self, g);
    }
    g->fn(g->ctx, span, g->nspans);
    tasks_.fetch_add(1, std::memory_order_relaxed);
  }
  // Release this word's (and span's) liveness.  acq_rel: the submitter's
  // acquire load of live==0 must see every span's writes, and the RMW chain
  // extends each finisher's release sequence to that final value.  The
  // group is stack memory in the submitter — never touch g after this.
  if (g->live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Pool-level completion handoff (see header): lock-then-unlock orders
    // the notify after any submitter's wait entry without touching g.
    { std::lock_guard<std::mutex> lk(completion_mu_); }
    completion_cv_.notify_all();
  }
}

void StealPool::run_spans(SpanFn fn, void* ctx, int nspans) noexcept {
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  if (nspans <= 0) return;
  if (nspans == 1) {  // degenerate group: a direct call, no pool traffic
    fn(ctx, 0, 1);
    tasks_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const int slot = acquire_submitter_slot();
  if (slot < 0) {
    // More concurrent submitters than slots: run inline.  Correct and
    // bounded — the machine is already saturated with pool participants.
    inline_runs_.fetch_add(1, std::memory_order_relaxed);
    for (int s = 0; s < nspans; ++s) fn(ctx, s, nspans);
    tasks_.fetch_add(static_cast<std::uint64_t>(nspans),
                     std::memory_order_relaxed);
    return;
  }

  TaskGroup g{fn, ctx, nspans};
  Xoshiro256 rng = victim_stream(cfg_.seed, slot);
  push_word(slot, &g);

  // Participate until our group completes: drain our own deque (mostly our
  // group's clones), steal to help, and only then sleep.  The bounded wait
  // re-polls so a word that appears after a failed sweep still gets help.
  int idle = 0;
  while (g.live.load(std::memory_order_acquire) != 0) {
    std::uint64_t w;
    if (acquire(slot, rng, w)) {
      consume(slot, w);
      idle = 0;
      continue;
    }
    if (++idle < 4) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lk(completion_mu_);
    completion_cv_.wait_for(lk, std::chrono::milliseconds(1), [&g] {
      return g.live.load(std::memory_order_acquire) == 0;
    });
  }
  release_submitter_slot(slot);
}

void StealPool::worker_loop(int slot) {
  Xoshiro256 rng = victim_stream(cfg_.seed, slot);
  int sweeps = 0;
  for (;;) {
    std::uint64_t w;
    if (acquire(slot, rng, w)) {
      consume(slot, w);
      sweeps = 0;
      continue;
    }
    if (stop_.load(std::memory_order_relaxed)) return;
    if (++sweeps < cfg_.spin_sweeps) {
      // Exponential backoff while spinning: cheap pauses first, then yield
      // so an oversubscribed host (spans > cores) keeps making progress.
      const int pauses = 1 << (sweeps < 6 ? sweeps : 6);
      for (int i = 0; i < pauses; ++i) cpu_pause();
      std::this_thread::yield();
      continue;
    }
    {
      std::unique_lock<std::mutex> lk(park_mu_);
      // Dekker handshake with push_word: parked_ rises before the pending_
      // re-check, and the pusher bumps pending_ before reading parked_ —
      // under seq_cst one of the two must observe the other.
      parked_.fetch_add(1, std::memory_order_seq_cst);
      if (!stop_.load(std::memory_order_relaxed) &&
          pending_.load(std::memory_order_seq_cst) == 0) {
        parks_.fetch_add(1, std::memory_order_relaxed);
        park_cv_.wait(lk, [this] {
          return stop_.load(std::memory_order_relaxed) ||
                 pending_.load(std::memory_order_seq_cst) != 0;
        });
      }
      parked_.fetch_sub(1, std::memory_order_seq_cst);
    }
    sweeps = 0;
  }
}

}  // namespace spmvopt::engine
