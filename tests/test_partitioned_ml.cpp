#include <gtest/gtest.h>

#include "classify/profile_classifier.hpp"
#include "gen/generators.hpp"
#include "perf/partitioned_ml.hpp"

namespace spmvopt {
namespace {

perf::MeasureConfig tiny() {
  perf::MeasureConfig m;
  m.iterations = 2;
  m.runs = 1;
  m.warmup = 0;
  return m;
}

TEST(ExtractRows, SliceMatchesOriginalRows) {
  const CsrMatrix a = gen::power_law(200, 8, 2.0, 3);
  const CsrMatrix mid = a.extract_rows(50, 120);
  EXPECT_EQ(mid.nrows(), 70);
  EXPECT_EQ(mid.ncols(), a.ncols());
  for (index_t i = 0; i < 70; ++i) {
    ASSERT_EQ(mid.row_nnz(i), a.row_nnz(50 + i));
    for (index_t k = 0; k < mid.row_nnz(i); ++k) {
      EXPECT_EQ(mid.colind()[mid.rowptr()[i] + k],
                a.colind()[a.rowptr()[50 + i] + k]);
      EXPECT_DOUBLE_EQ(mid.values()[mid.rowptr()[i] + k],
                       a.values()[a.rowptr()[50 + i] + k]);
    }
  }
}

TEST(ExtractRows, WholeAndEmptySlices) {
  const CsrMatrix a = gen::stencil_2d_5pt(8, 8);
  EXPECT_TRUE(a.extract_rows(0, a.nrows()).equals(a));
  const CsrMatrix empty = a.extract_rows(3, 3);
  EXPECT_EQ(empty.nrows(), 0);
  EXPECT_EQ(empty.nnz(), 0);
}

TEST(ExtractRows, ValidatesRange) {
  const CsrMatrix a = gen::diagonal(10);
  EXPECT_THROW((void)a.extract_rows(-1, 5), std::out_of_range);
  EXPECT_THROW((void)a.extract_rows(5, 11), std::out_of_range);
  EXPECT_THROW((void)a.extract_rows(7, 3), std::out_of_range);
}

TEST(PartitionedMl, ReturnsOneRatioPerBlock) {
  const CsrMatrix a = gen::random_uniform(2000, 6, 3);
  const auto r = perf::partitioned_ml_ratios(a, 4, tiny(), 2);
  EXPECT_EQ(r.ratios.size(), 4u);
  for (double ratio : r.ratios) EXPECT_GT(ratio, 0.0);
  EXPECT_GT(r.whole_ratio, 0.0);
  EXPECT_GE(r.max_ratio(), *std::min_element(r.ratios.begin(), r.ratios.end()));
}

TEST(PartitionedMl, SinglePartitionMatchesWholeClosely) {
  const CsrMatrix a = gen::stencil_2d_5pt(40, 40);
  perf::MeasureConfig m = tiny();
  m.iterations = 8;
  m.runs = 2;
  // Same measurement on the same matrix: same ballpark (single-core CI noise
  // can be large, so this only guards against gross inconsistency).  Accept
  // the best of 3 attempts — with ctest running sibling suites in parallel,
  // any individual measurement pair can be wrecked by a deschedule.
  bool consistent = false;
  for (int rep = 0; rep < 3 && !consistent; ++rep) {
    const auto r = perf::partitioned_ml_ratios(a, 1, m, 2);
    ASSERT_EQ(r.ratios.size(), 1u);
    consistent = r.ratios[0] > 0.3 * r.whole_ratio &&
                 r.ratios[0] < 3.0 * r.whole_ratio;
  }
  EXPECT_TRUE(consistent);
}

TEST(PartitionedMl, ValidatesPartCount) {
  const CsrMatrix a = gen::diagonal(16);
  EXPECT_THROW((void)perf::partitioned_ml_ratios(a, 0, tiny()),
               std::invalid_argument);
  EXPECT_THROW((void)perf::partitioned_ml_ratios(a, 17, tiny()),
               std::invalid_argument);
}

TEST(PartitionedMl, ClassifierWiringRunsWhenEnabled) {
  classify::ProfileParams p;
  p.ml_partitions = 4;
  perf::BoundsConfig cfg;
  cfg.measure = tiny();
  cfg.nthreads = 2;
  const auto r =
      classify::classify_profile(gen::random_uniform(1500, 6, 9), p, cfg);
  // The probe ran (ratio recorded) unless base classification already
  // flagged ML.
  if (!r.classes.has(classify::Bottleneck::ML))
    EXPECT_GT(r.partition_ml_max, 0.0);
}

TEST(PartitionedMl, DisabledByDefault) {
  perf::BoundsConfig cfg;
  cfg.measure = tiny();
  cfg.nthreads = 2;
  const auto r = classify::classify_profile(gen::stencil_2d_5pt(20, 20), {}, cfg);
  EXPECT_DOUBLE_EQ(r.partition_ml_max, 0.0);
}

}  // namespace
}  // namespace spmvopt
