#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "sparse/delta_csr.hpp"

namespace spmvopt {
namespace {

TEST(DeltaCsr, RoundTripDense) {
  const CsrMatrix a = gen::dense(32);
  const auto d = DeltaCsrMatrix::encode(a);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->width(), DeltaWidth::U8);  // gaps are all 1
  EXPECT_TRUE(d->decode().equals(a));
}

TEST(DeltaCsr, RoundTripStencil) {
  const CsrMatrix a = gen::stencil_2d_5pt(16, 16);
  const auto d = DeltaCsrMatrix::encode(a);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->decode().equals(a));
}

TEST(DeltaCsr, RoundTripRandom) {
  // Random columns in a 200-wide matrix: gaps fit 8 bits.
  const CsrMatrix a = gen::random_uniform(200, 8, 42);
  const auto d = DeltaCsrMatrix::encode(a);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->decode().equals(a));
}

TEST(DeltaCsr, SelectsU16WhenNeeded) {
  // Two elements 1000 apart: too wide for u8, fits u16.
  CooMatrix coo(2, 2000);
  coo.add(0, 0, 1.0);
  coo.add(0, 1000, 2.0);
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  EXPECT_EQ(DeltaCsrMatrix::required_width(a), DeltaWidth::U16);
  const auto d = DeltaCsrMatrix::encode(a);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->width(), DeltaWidth::U16);
  EXPECT_TRUE(d->decode().equals(a));
}

TEST(DeltaCsr, RefusesGapsOver16Bits) {
  CooMatrix coo(1, 100000);
  coo.add(0, 0, 1.0);
  coo.add(0, 90000, 2.0);
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  EXPECT_FALSE(DeltaCsrMatrix::required_width(a).has_value());
  EXPECT_FALSE(DeltaCsrMatrix::encode(a).has_value());
}

TEST(DeltaCsr, FirstColumnIsAbsoluteBase) {
  // Row starting at a large column with small in-row gaps must still be u8:
  // only *in-row gaps* count, the base is absolute.
  CooMatrix coo(1, 100000);
  coo.add(0, 90000, 1.0);
  coo.add(0, 90001, 2.0);
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const auto d = DeltaCsrMatrix::encode(a);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->width(), DeltaWidth::U8);
  EXPECT_EQ(d->bases()[0], 90000);
  EXPECT_TRUE(d->decode().equals(a));
}

TEST(DeltaCsr, HandlesEmptyRows) {
  CooMatrix coo(4, 4);
  coo.add(0, 0, 1.0);
  coo.add(3, 3, 2.0);  // rows 1, 2 empty
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const auto d = DeltaCsrMatrix::encode(a);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->decode().equals(a));
}

TEST(DeltaCsr, U8CompressionShrinksFootprint) {
  const CsrMatrix a = gen::dense(64);
  const auto d = DeltaCsrMatrix::encode(a);
  ASSERT_TRUE(d.has_value());
  // u8 deltas replace 4-byte colind: the format must shrink.
  EXPECT_LT(d->format_bytes(), a.format_bytes());
}

/// Helper: a 1-row matrix whose single in-row gap is exactly `gap`.
CsrMatrix two_entry_gap(index_t gap) {
  CooMatrix coo(1, gap + 1);
  coo.add(0, 0, 1.0);
  coo.add(0, gap, 2.0);
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

TEST(DeltaCsr, U8BoundaryAt255And256) {
  // 255 is the largest gap an 8-bit delta holds; 256 must promote to u16.
  const CsrMatrix at = two_entry_gap(255);
  ASSERT_EQ(DeltaCsrMatrix::required_width(at), DeltaWidth::U8);
  const auto dat = DeltaCsrMatrix::encode(at);
  ASSERT_TRUE(dat.has_value());
  EXPECT_EQ(dat->width(), DeltaWidth::U8);
  EXPECT_EQ(dat->deltas8()[1], 255u);
  EXPECT_TRUE(dat->decode().equals(at));

  const CsrMatrix over = two_entry_gap(256);
  ASSERT_EQ(DeltaCsrMatrix::required_width(over), DeltaWidth::U16);
  const auto dover = DeltaCsrMatrix::encode(over);
  ASSERT_TRUE(dover.has_value());
  EXPECT_EQ(dover->width(), DeltaWidth::U16);
  EXPECT_EQ(dover->deltas16()[1], 256u);
  EXPECT_TRUE(dover->decode().equals(over));
}

TEST(DeltaCsr, U16BoundaryAt65535And65536) {
  // 65535 is the largest encodable gap; 65536 makes the matrix unencodable
  // (the format never mixes widths, and >16-bit deltas do not exist).
  const CsrMatrix at = two_entry_gap(65535);
  ASSERT_EQ(DeltaCsrMatrix::required_width(at), DeltaWidth::U16);
  const auto dat = DeltaCsrMatrix::encode(at);
  ASSERT_TRUE(dat.has_value());
  EXPECT_EQ(dat->width(), DeltaWidth::U16);
  EXPECT_EQ(dat->deltas16()[1], 65535u);
  EXPECT_TRUE(dat->decode().equals(at));

  const CsrMatrix over = two_entry_gap(65536);
  EXPECT_FALSE(DeltaCsrMatrix::required_width(over).has_value());
  EXPECT_FALSE(DeltaCsrMatrix::encode(over).has_value());
}

TEST(DeltaCsr, BoundaryGapsSurviveSpmvRoundTrip) {
  // Both sides of each boundary, mixed into one multi-row matrix: decode
  // must reproduce the exact columns (an off-by-one at a width boundary
  // would silently read the wrong x entries forever after).
  CooMatrix coo(3, 70000);
  coo.add(0, 10, 1.0);
  coo.add(0, 10 + 255, 2.0);   // u8 max gap
  coo.add(1, 5, 3.0);
  coo.add(1, 5 + 256, 4.0);    // u16 min gap
  coo.add(2, 0, 5.0);
  coo.add(2, 65535, 6.0);      // u16 max gap
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const auto d = DeltaCsrMatrix::encode(a);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->width(), DeltaWidth::U16);
  const CsrMatrix back = d->decode();
  ASSERT_TRUE(back.equals(a));
  EXPECT_EQ(back.colind()[1], 10 + 255);
  EXPECT_EQ(back.colind()[3], 5 + 256);
  EXPECT_EQ(back.colind()[5], 65535);
}

TEST(DeltaCsr, NeverMixesWidths) {
  // Matrix with one u16-requiring row: the entire matrix must use u16
  // ("8- or 16-bit deltas wherever possible, but never both", §III-E).
  CooMatrix coo(2, 2000);
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 1.0);  // row 0 would fit u8
  coo.add(1, 0, 1.0);
  coo.add(1, 1000, 1.0);  // row 1 needs u16
  coo.compress();
  const auto d = DeltaCsrMatrix::encode(CsrMatrix::from_coo(coo));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->width(), DeltaWidth::U16);
}

}  // namespace
}  // namespace spmvopt
