// Smoke tests for the spmvopt_cli tool: exercise the subcommand surface as a
// user would, through the actual binary (path injected by CMake).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "robust/fault_inject.hpp"

#ifndef _WIN32
#include <sys/wait.h>
#endif

namespace {

std::string cli() { return SPMVOPT_CLI_PATH; }

std::string tmp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// std::system() wraps the child status; unwrap to the process exit code so
/// the sysexits contract (64/65/66/70/71) can be asserted exactly.
int exit_code(int rc) {
#ifndef _WIN32
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
#else
  return rc;
#endif
}

/// Run with an optional `VAR=value` environment prefix.
int run_env(const std::string& env, const std::string& args) {
  const std::string cmd =
      (env.empty() ? "" : env + " ") + cli() + " " + args + " > /dev/null 2>&1";
  return exit_code(std::system(cmd.c_str()));
}

int run(const std::string& args) { return run_env("", args); }

/// Run and capture stdout+stderr.
std::pair<int, std::string> run_capture(const std::string& args) {
  const std::string out_file = tmp_path("spmvopt_cli_out.txt");
  const std::string cmd = cli() + " " + args + " > " + out_file + " 2>&1";
  const int rc = exit_code(std::system(cmd.c_str()));
  std::ifstream in(out_file);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::remove(out_file.c_str());
  return {rc, content};
}

TEST(Cli, BinaryExists) {
  ASSERT_TRUE(std::filesystem::exists(cli())) << cli();
}

TEST(Cli, NoArgsShowsUsageAndFails) {
  EXPECT_NE(run(""), 0);
}

TEST(Cli, UnknownCommandFails) {
  EXPECT_NE(run("frobnicate"), 0);
}

TEST(Cli, GenerateConvertInspectPipeline) {
  const std::string mtx = tmp_path("spmvopt_cli_p.mtx");
  const std::string bin = tmp_path("spmvopt_cli_p.csrbin");
  EXPECT_EQ(run("generate poisson2d " + mtx + " 24"), 0);
  EXPECT_EQ(run("convert " + mtx + " " + bin), 0);
  const auto [rc, out] = run_capture("inspect " + bin);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("features (Table I)"), std::string::npos);
  EXPECT_NE(out.find("classes:"), std::string::npos);
  std::remove(mtx.c_str());
  std::remove(bin.c_str());
}

TEST(Cli, GenerateRejectsUnknownFamily) {
  EXPECT_NE(run("generate nosuchfamily " + tmp_path("x.mtx")), 0);
}

TEST(Cli, ConvertRejectsUnknownExtension) {
  const std::string mtx = tmp_path("spmvopt_cli_q.mtx");
  ASSERT_EQ(run("generate dense " + mtx + " 16"), 0);
  EXPECT_NE(run("convert " + mtx + " " + tmp_path("out.xyz")), 0);
  std::remove(mtx.c_str());
}

TEST(Cli, TrainThenOptimizeWithModel) {
  const std::string model = tmp_path("spmvopt_cli_model.txt");
  const std::string mtx = tmp_path("spmvopt_cli_m.mtx");
  ASSERT_EQ(run("generate banded " + mtx + " 40"), 0);
  ASSERT_EQ(run("train " + model + " 20"), 0);
  const auto [rc, out] = run_capture("optimize " + mtx + " " + model);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("feature-guided"), std::string::npos);
  EXPECT_NE(out.find("Gflop/s"), std::string::npos);
  std::remove(model.c_str());
  std::remove(mtx.c_str());
}

TEST(Cli, BenchListsPlansSortedByRate) {
  const auto [rc, out] = run_capture("bench suite:small-dense");
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("baseline"), std::string::npos);
  EXPECT_NE(out.find("sell"), std::string::npos);
}

TEST(Cli, MissingFileReportsError) {
  const auto [rc, out] = run_capture("inspect /nonexistent/file.mtx");
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("error"), std::string::npos);
}

// --- sysexits contract (DESIGN.md §6): 64 usage, 65 format, 66 io,
// --- 70 internal, 71 resource.

TEST(CliExitCodes, UsageErrorsExit64) {
  EXPECT_EQ(run(""), 64);
  EXPECT_EQ(run("frobnicate"), 64);
  EXPECT_EQ(run("generate nosuchfamily " + tmp_path("x.mtx")), 64);
  EXPECT_EQ(run("inspect matrix.unknownext"), 64);
}

TEST(CliExitCodes, MissingFileExits66) {
  const auto [rc, out] = run_capture("inspect /nonexistent/file.mtx");
  EXPECT_EQ(rc, 66);
  EXPECT_NE(out.find("error (io)"), std::string::npos);
}

TEST(CliExitCodes, MalformedMtxExits65WithContext) {
  const std::string mtx = tmp_path("spmvopt_cli_bad.mtx");
  {
    std::ofstream f(mtx);
    f << "%%MatrixMarket matrix coordinate real general\n"
         "2 2 2\n"
         "1 1 bogus\n";
  }
  const auto [rc, out] = run_capture("inspect " + mtx);
  EXPECT_EQ(rc, 65);
  EXPECT_NE(out.find("error (format)"), std::string::npos);
  // The context chain names the offending file.
  EXPECT_NE(out.find(mtx), std::string::npos);
  std::remove(mtx.c_str());
}

TEST(CliExitCodes, ResourceCeilingExits71) {
  const std::string mtx = tmp_path("spmvopt_cli_ceiling.mtx");
  ASSERT_EQ(run("generate dense " + mtx + " 8"), 0);
  EXPECT_EQ(run_env("SPMVOPT_MAX_NNZ=1", "inspect " + mtx), 71);
  std::remove(mtx.c_str());
}

TEST(CliExitCodes, EnvFaultArmingReachesIngestion) {
  if (!spmvopt::robust::fault_injection_enabled())
    GTEST_SKIP() << "built with SPMVOPT_FAULT_INJECTION=OFF";
  const std::string mtx = tmp_path("spmvopt_cli_fault.mtx");
  const std::string bin = tmp_path("spmvopt_cli_fault.csrbin");
  ASSERT_EQ(run("generate dense " + mtx + " 8"), 0);
  // The injected allocation failure surfaces as a resource error (71);
  // stale/unknown point names in the variable are ignored.
  EXPECT_EQ(run_env("SPMVOPT_FAULT=mmio.alloc", "convert " + mtx + " " + bin),
            71);
  EXPECT_EQ(run_env("SPMVOPT_FAULT=no.such.point",
                    "convert " + mtx + " " + bin),
            0);
  std::remove(mtx.c_str());
  std::remove(bin.c_str());
}

}  // namespace
