// Smoke tests for the spmvopt_cli tool: exercise the subcommand surface as a
// user would, through the actual binary (path injected by CMake).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "robust/fault_inject.hpp"

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace {

std::string cli() { return SPMVOPT_CLI_PATH; }

/// Temp paths carry the pid: with `ctest -j`, sibling Cli tests run as
/// concurrent processes and fixed names (notably run_capture's output
/// file) would collide.
std::string tmp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::to_string(::getpid()) + "_" + name))
      .string();
}

/// std::system() wraps the child status; unwrap to the process exit code so
/// the sysexits contract (64/65/66/70/71) can be asserted exactly.
int exit_code(int rc) {
#ifndef _WIN32
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
#else
  return rc;
#endif
}

/// Run with an optional `VAR=value` environment prefix.
int run_env(const std::string& env, const std::string& args) {
  const std::string cmd =
      (env.empty() ? "" : env + " ") + cli() + " " + args + " > /dev/null 2>&1";
  return exit_code(std::system(cmd.c_str()));
}

int run(const std::string& args) { return run_env("", args); }

/// Run and capture stdout+stderr.
std::pair<int, std::string> run_capture(const std::string& args) {
  const std::string out_file = tmp_path("spmvopt_cli_out.txt");
  const std::string cmd = cli() + " " + args + " > " + out_file + " 2>&1";
  const int rc = exit_code(std::system(cmd.c_str()));
  std::ifstream in(out_file);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::remove(out_file.c_str());
  return {rc, content};
}

TEST(Cli, BinaryExists) {
  ASSERT_TRUE(std::filesystem::exists(cli())) << cli();
}

TEST(Cli, NoArgsShowsUsageAndFails) {
  EXPECT_NE(run(""), 0);
}

TEST(Cli, UnknownCommandFails) {
  EXPECT_NE(run("frobnicate"), 0);
}

TEST(Cli, GenerateConvertInspectPipeline) {
  const std::string mtx = tmp_path("spmvopt_cli_p.mtx");
  const std::string bin = tmp_path("spmvopt_cli_p.csrbin");
  EXPECT_EQ(run("generate poisson2d " + mtx + " 24"), 0);
  EXPECT_EQ(run("convert " + mtx + " " + bin), 0);
  const auto [rc, out] = run_capture("inspect " + bin);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("features (Table I)"), std::string::npos);
  EXPECT_NE(out.find("classes:"), std::string::npos);
  std::remove(mtx.c_str());
  std::remove(bin.c_str());
}

TEST(Cli, GenerateRejectsUnknownFamily) {
  EXPECT_NE(run("generate nosuchfamily " + tmp_path("x.mtx")), 0);
}

TEST(Cli, ConvertRejectsUnknownExtension) {
  const std::string mtx = tmp_path("spmvopt_cli_q.mtx");
  ASSERT_EQ(run("generate dense " + mtx + " 16"), 0);
  EXPECT_NE(run("convert " + mtx + " " + tmp_path("out.xyz")), 0);
  std::remove(mtx.c_str());
}

TEST(Cli, TrainThenOptimizeWithModel) {
  const std::string model = tmp_path("spmvopt_cli_model.txt");
  const std::string mtx = tmp_path("spmvopt_cli_m.mtx");
  ASSERT_EQ(run("generate banded " + mtx + " 40"), 0);
  ASSERT_EQ(run("train " + model + " 20"), 0);
  const auto [rc, out] = run_capture("optimize " + mtx + " " + model);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("feature-guided"), std::string::npos);
  EXPECT_NE(out.find("Gflop/s"), std::string::npos);
  std::remove(model.c_str());
  std::remove(mtx.c_str());
}

TEST(Cli, BenchListsPlansSortedByRate) {
  const auto [rc, out] = run_capture("bench suite:small-dense");
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("baseline"), std::string::npos);
  EXPECT_NE(out.find("sell"), std::string::npos);
}

// --- bench orchestration + regression gate --------------------------------

/// Shrink a sweep to near-nothing: the contract under test is the document
/// and exit-code surface, not the measured rates.
std::string quick_env() {
  return "SPMVOPT_QUICK=1 SPMVOPT_ITERS=2 SPMVOPT_RUNS=2";
}

TEST(CliBench, SuiteSweepWritesSchemaValidDocument) {
  const std::string out = tmp_path("spmvopt_cli_bench.json");
  ASSERT_EQ(run_env(quick_env(),
                    "bench --suite smoke --threads 1 --out " + out),
            0);
  std::ifstream in(out);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(content.find("\"kind\": \"kernels\""), std::string::npos);
  EXPECT_NE(content.find("\"environment\""), std::string::npos);
  EXPECT_NE(content.find("\"results\""), std::string::npos);
  EXPECT_NE(content.find("\"summary\""), std::string::npos);

  // A document compares clean against itself: exit 0, nothing flagged.
  const auto [rc, text] = run_capture("compare " + out + " " + out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(text.find("0 regressed"), std::string::npos);
  std::remove(out.c_str());
}

TEST(CliBench, CompareFlagsInjectedRegression) {
  const std::string oldf = tmp_path("spmvopt_cli_old.json");
  const std::string newf = tmp_path("spmvopt_cli_new.json");
  ASSERT_EQ(run_env(quick_env(),
                    "bench --suite smoke --threads 1 --out " + oldf),
            0);
  // Inject a 20% regression by scaling every rate (and its CI) by 0.8.
  {
    std::ifstream in(oldf);
    std::string doc((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    for (const char* key : {"\"gflops\": ", "\"ci_lo\": ", "\"ci_hi\": "}) {
      std::size_t pos = 0;
      while ((pos = doc.find(key, pos)) != std::string::npos) {
        pos += std::strlen(key);
        const std::size_t end = doc.find_first_of(",\n", pos);
        const double v = std::stod(doc.substr(pos, end - pos));
        const std::string scaled = std::to_string(v * 0.8);
        doc.replace(pos, end - pos, scaled);
        pos += scaled.size();
      }
    }
    std::ofstream(newf) << doc;
  }
  // Gated mode exits kExitRegression (1); advisory mode reports but exits 0.
  const auto [rc, out] = run_capture("compare " + oldf + " " + newf);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("regressed"), std::string::npos);
  EXPECT_EQ(run("compare " + oldf + " " + newf + " --advisory"), 0);
  std::remove(oldf.c_str());
  std::remove(newf.c_str());
}

TEST(CliBench, BadFlagsExit64) {
  EXPECT_EQ(run("bench --suite galactic --out /tmp/x.json"), 64);
  EXPECT_EQ(run("bench --nosuchflag"), 64);
  EXPECT_EQ(run("bench --suite smoke --threads 0"), 64);
  EXPECT_EQ(run("compare one.json"), 64);
  EXPECT_EQ(run("compare a.json b.json --threshold nope"), 64);
}

TEST(CliBench, CompareMissingFileExits66) {
  EXPECT_EQ(run("compare /nonexistent/a.json /nonexistent/b.json"), 66);
}

TEST(CliBench, CompareMalformedJsonExits65) {
  const std::string bad = tmp_path("spmvopt_cli_badjson.json");
  std::ofstream(bad) << "{\"schema_version\": ";
  EXPECT_EQ(run("compare " + bad + " " + bad), 65);
  std::remove(bad.c_str());
}

TEST(Cli, MissingFileReportsError) {
  const auto [rc, out] = run_capture("inspect /nonexistent/file.mtx");
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("error"), std::string::npos);
}

// --- sysexits contract (DESIGN.md §6): 64 usage, 65 format, 66 io,
// --- 70 internal, 71 resource.

TEST(CliExitCodes, UsageErrorsExit64) {
  EXPECT_EQ(run(""), 64);
  EXPECT_EQ(run("frobnicate"), 64);
  EXPECT_EQ(run("generate nosuchfamily " + tmp_path("x.mtx")), 64);
  EXPECT_EQ(run("inspect matrix.unknownext"), 64);
}

TEST(CliExitCodes, MissingFileExits66) {
  const auto [rc, out] = run_capture("inspect /nonexistent/file.mtx");
  EXPECT_EQ(rc, 66);
  EXPECT_NE(out.find("error (io)"), std::string::npos);
}

TEST(CliExitCodes, MalformedMtxExits65WithContext) {
  const std::string mtx = tmp_path("spmvopt_cli_bad.mtx");
  {
    std::ofstream f(mtx);
    f << "%%MatrixMarket matrix coordinate real general\n"
         "2 2 2\n"
         "1 1 bogus\n";
  }
  const auto [rc, out] = run_capture("inspect " + mtx);
  EXPECT_EQ(rc, 65);
  EXPECT_NE(out.find("error (format)"), std::string::npos);
  // The context chain names the offending file.
  EXPECT_NE(out.find(mtx), std::string::npos);
  std::remove(mtx.c_str());
}

TEST(CliExitCodes, ResourceCeilingExits71) {
  const std::string mtx = tmp_path("spmvopt_cli_ceiling.mtx");
  ASSERT_EQ(run("generate dense " + mtx + " 8"), 0);
  EXPECT_EQ(run_env("SPMVOPT_MAX_NNZ=1", "inspect " + mtx), 71);
  std::remove(mtx.c_str());
}

TEST(CliExitCodes, EnvFaultArmingReachesIngestion) {
  if (!spmvopt::robust::fault_injection_enabled())
    GTEST_SKIP() << "built with SPMVOPT_FAULT_INJECTION=OFF";
  const std::string mtx = tmp_path("spmvopt_cli_fault.mtx");
  const std::string bin = tmp_path("spmvopt_cli_fault.csrbin");
  ASSERT_EQ(run("generate dense " + mtx + " 8"), 0);
  // The injected allocation failure surfaces as a resource error (71);
  // stale/unknown point names in the variable are ignored.
  EXPECT_EQ(run_env("SPMVOPT_FAULT=mmio.alloc", "convert " + mtx + " " + bin),
            71);
  EXPECT_EQ(run_env("SPMVOPT_FAULT=no.such.point",
                    "convert " + mtx + " " + bin),
            0);
  std::remove(mtx.c_str());
  std::remove(bin.c_str());
}

}  // namespace
