// Register-blocked multi-RHS SpMM and the dtype-aware kernel API
// (DESIGN.md §8, §13): ISA-variant correctness against per-precision
// oracles, SpMM-vs-repeated-SpMV equivalence across RHS widths, thread
// counts and execution modes, bitwise determinism of a fixed kernel, the
// precision-suffixed registry entries, mixed-precision plans end to end
// (including the cancellable fused path), block CG over apply_many, the
// typed view entry points, and the protocol's run_many dtype byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include <unistd.h>

#include "engine/execution_engine.hpp"
#include "gen/generators.hpp"
#include "kernels/registry.hpp"
#include "kernels/spmm_blocked.hpp"
#include "optimize/optimized_spmv.hpp"
#include "robust/cancel.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "solvers/krylov.hpp"
#include "solvers/operator.hpp"
#include "support/fingerprint.hpp"
#include "verify/fuzz.hpp"
#include "verify/oracle.hpp"

namespace spmvopt {
namespace {

constexpr index_t kRhsWidths[] = {1, 2, 3, 8, 17};
constexpr double kFltMax = 3.402823466e+38;

std::vector<value_t> batch_of(const CsrMatrix& a, index_t nrhs,
                              std::uint64_t seed = 7) {
  // Vector-major: vector r occupies X[r*ncols .. (r+1)*ncols).
  std::vector<value_t> X;
  X.reserve(static_cast<std::size_t>(a.ncols()) *
            static_cast<std::size_t>(nrhs));
  for (index_t r = 0; r < nrhs; ++r) {
    const auto x =
        gen::test_vector(a.ncols(), seed + static_cast<std::uint64_t>(r));
    X.insert(X.end(), x.begin(), x.end());
  }
  return X;
}

/// Whether (A, x) stays finite in `prec`'s value mode (mirrors the guard the
/// differential runner applies; see src/verify/differential.cpp).
bool prec_safe(const CsrMatrix& a, std::span<const value_t> x,
               Precision prec) {
  if (prec == Precision::F64) return true;
  for (index_t k = 0; k < a.nnz(); ++k)
    if (std::abs(a.values()[static_cast<std::size_t>(k)]) > kFltMax)
      return false;
  if (prec == Precision::F32F64) return true;
  for (const value_t v : x)
    if (std::abs(v) > kFltMax) return false;
  for (index_t i = 0; i < a.nrows(); ++i) {
    double abs_sum = 0.0;
    for (index_t k = a.rowptr()[i]; k < a.rowptr()[i + 1]; ++k) {
      const double av = static_cast<double>(
          static_cast<float>(a.values()[static_cast<std::size_t>(k)]));
      const double xv = static_cast<double>(static_cast<float>(
          x[static_cast<std::size_t>(a.colind()[static_cast<std::size_t>(k)])]));
      abs_sum += std::abs(av * xv);
    }
    if (abs_sum > kFltMax) return false;
  }
  return true;
}

void expect_oracle(const CsrMatrix& a, std::span<const value_t> x,
                   std::span<const value_t> y, Precision prec,
                   const std::string& what) {
  const verify::Oracle oracle = verify::kahan_reference(a, x, prec);
  const verify::CompareReport rep =
      verify::compare(oracle, y, verify::policy_for(prec));
  EXPECT_TRUE(rep.pass()) << what << ": " << rep.to_string();
}

// ------------------------------------------------------ raw range kernels

TEST(SpmmBlocked, ScalarKernelsExistForEveryPrecision) {
  for (Precision p : {Precision::F64, Precision::F32, Precision::F32F64})
    EXPECT_NE(kernels::select_spmm_range(kernels::SpmmIsa::Scalar, p), nullptr)
        << precision_name(p);
  EXPECT_TRUE(kernels::spmm_isa_available(kernels::SpmmIsa::Scalar));
  // The best ISA must be compiled in (it is how OptimizedSpmv selects).
  EXPECT_TRUE(kernels::spmm_isa_available(kernels::spmm_best_isa()));
}

TEST(SpmmBlocked, CompileTimeGateMatchesAvailability) {
  // The -march capability guard: a variant registers iff its macro was on.
#if defined(__AVX2__)
  EXPECT_TRUE(kernels::spmm_isa_available(kernels::SpmmIsa::Avx2));
#else
  EXPECT_FALSE(kernels::spmm_isa_available(kernels::SpmmIsa::Avx2));
  EXPECT_EQ(kernels::select_spmm_range(kernels::SpmmIsa::Avx2,
                                       Precision::F64),
            nullptr);
#endif
#if defined(__AVX512F__)
  EXPECT_TRUE(kernels::spmm_isa_available(kernels::SpmmIsa::Avx512));
#else
  EXPECT_FALSE(kernels::spmm_isa_available(kernels::SpmmIsa::Avx512));
#endif
}

TEST(SpmmBlocked, PackUnpackRoundTripsEveryPrecision) {
  constexpr index_t n = 11, k = 5;
  const std::vector<value_t> X = batch_of(gen::dense(n), k, 3);
  for (Precision p : {Precision::F64, Precision::F32, Precision::F32F64}) {
    SCOPED_TRACE(precision_name(p));
    std::vector<std::uint8_t> packed(
        static_cast<std::size_t>(n) * k * dtype_size(operand_dtype(p)));
    kernels::spmm_pack_rhs(X.data(), n, k, packed.data(), p);
    std::vector<value_t> back(static_cast<std::size_t>(n) * k,
                              std::numeric_limits<value_t>::quiet_NaN());
    kernels::spmm_unpack_result(packed.data(), n, k, back.data(), p);
    for (std::size_t i = 0; i < back.size(); ++i) {
      const value_t want = operand_dtype(p) == Dtype::F32
                               ? static_cast<value_t>(
                                     static_cast<float>(X[i]))
                               : X[i];
      EXPECT_EQ(back[i], want) << i;
    }
  }
}

TEST(SpmmBlocked, EveryCompiledIsaMatchesTheOracleAcrossWidths) {
  const CsrMatrix a = gen::random_uniform(700, 9, 11);
  for (kernels::SpmmIsa isa : {kernels::SpmmIsa::Scalar,
                               kernels::SpmmIsa::Avx2,
                               kernels::SpmmIsa::Avx512}) {
    if (!kernels::spmm_isa_available(isa)) continue;
    for (Precision p :
         {Precision::F64, Precision::F32, Precision::F32F64}) {
      const kernels::SpmmRangeFn fn = kernels::select_spmm_range(isa, p);
      ASSERT_NE(fn, nullptr);
      std::vector<float> vals_f32;
      const void* vals = a.values();
      if (value_dtype(p) == Dtype::F32) {
        vals_f32.assign(a.values(), a.values() + a.nnz());
        vals = vals_f32.data();
      }
      for (index_t k : kRhsWidths) {
        SCOPED_TRACE(std::string(kernels::spmm_isa_name(isa)) + "." +
                     precision_name(p) + " k=" + std::to_string(k));
        const std::vector<value_t> X = batch_of(a, k);
        const std::size_t esz = dtype_size(operand_dtype(p));
        std::vector<std::uint8_t> Xp(
            static_cast<std::size_t>(a.ncols()) * k * esz);
        std::vector<std::uint8_t> Yp(
            static_cast<std::size_t>(a.nrows()) * k * esz, 0xAA);
        kernels::spmm_pack_rhs(X.data(), a.ncols(), k, Xp.data(), p);
        fn(a.rowptr(), a.colind(), vals, 0, a.nrows(), Xp.data(), Yp.data(),
           k);
        std::vector<value_t> Y(static_cast<std::size_t>(a.nrows()) * k);
        kernels::spmm_unpack_result(Yp.data(), a.nrows(), k, Y.data(), p);
        for (index_t r = 0; r < k; ++r)
          expect_oracle(
              a,
              std::span<const value_t>(
                  X.data() + static_cast<std::size_t>(r) * a.ncols(),
                  static_cast<std::size_t>(a.ncols())),
              std::span<const value_t>(
                  Y.data() + static_cast<std::size_t>(r) * a.nrows(),
                  static_cast<std::size_t>(a.nrows())),
              p, "rhs " + std::to_string(r));
      }
    }
  }
}

// --------------------------------------------------------------- registry

TEST(SpmmBlocked, RegistryEntriesBindAndAreThreadCountBitwiseStable) {
  const CsrMatrix a = gen::power_law(900, 7, 2.0, 13);
  const std::vector<value_t> X = batch_of(a, 8);
  for (const auto& v : kernels::registry()) {
    if (v.bind_spmm == nullptr) continue;
    SCOPED_TRACE(v.name);
    // Same kernel, different thread counts: the determinism contract says
    // each (row, column) accumulates j-ascending in a dedicated lane, so
    // the partitioning must not change a single bit.
    std::vector<value_t> y1(static_cast<std::size_t>(a.nrows()) * 8);
    std::vector<value_t> y4(y1.size());
    kernels::BoundSpmm m1 = v.bind_spmm(a, 1);
    kernels::BoundSpmm m4 = v.bind_spmm(a, 4);
    ASSERT_TRUE(m1 && m4);
    m1(X.data(), y1.data(), 8);
    m4(X.data(), y4.data(), 8);
    for (std::size_t i = 0; i < y1.size(); ++i)
      ASSERT_EQ(y1[i], y4[i]) << v.name << " diverges at " << i;
    // And the single-vector shim runs the same kernel at nrhs == 1.
    std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
    kernels::BoundSpmv single = v.bind(a, 2);
    ASSERT_TRUE(single);
    single(X.data(), y.data());
    for (index_t i = 0; i < a.nrows(); ++i)
      ASSERT_EQ(y[static_cast<std::size_t>(i)],
                y1[static_cast<std::size_t>(i)]);
  }
}

TEST(SpmmBlocked, RequireKernelErrorNamesTheSpmmVariants) {
  try {
    static_cast<void>(kernels::require_kernel("no_such_kernel"));
    FAIL() << "require_kernel must throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("spmm.scalar.f64"), std::string::npos) << msg;
    EXPECT_NE(msg.find("spmm.scalar.f32x64"), std::string::npos) << msg;
  }
}

// ------------------------------------------- fused run_many on OptimizedSpmv

TEST(SpmmBlocked, FusedRunManyMatchesRepeatedRunsEveryWidthAndMode) {
  const CsrMatrix a = gen::random_uniform(1200, 10, 5);
  engine::ExecutionEngine eng({.nthreads = 3, .pin = PinPolicy::None});
  const auto unbound = optimize::OptimizedSpmv::create(a, {}, 3);
  const auto bound = optimize::OptimizedSpmv::create(a, {}, eng);
  EXPECT_TRUE(unbound.spmm_fused());
  EXPECT_TRUE(bound.spmm_fused());
  for (const auto* spmv : {&unbound, &bound}) {
    for (index_t k : kRhsWidths) {
      SCOPED_TRACE(std::string(spmv == &bound ? "engine" : "threads") +
                   " k=" + std::to_string(k));
      const std::vector<value_t> X = batch_of(a, k);
      std::vector<value_t> Y(static_cast<std::size_t>(a.nrows()) * k,
                             std::numeric_limits<value_t>::quiet_NaN());
      spmv->run_many(X.data(), Y.data(), static_cast<int>(k));
      // Tolerance equivalence (not bitwise): the fused kernel accumulates
      // per (row, column) in a different order than the gathered SpMV.
      for (index_t r = 0; r < k; ++r)
        expect_oracle(
            a,
            std::span<const value_t>(
                X.data() + static_cast<std::size_t>(r) * a.ncols(),
                static_cast<std::size_t>(a.ncols())),
            std::span<const value_t>(
                Y.data() + static_cast<std::size_t>(r) * a.nrows(),
                static_cast<std::size_t>(a.nrows())),
            Precision::F64, "rhs " + std::to_string(r));
    }
  }
  // Non-plain-CSR plans cannot fuse: run_many falls back to per-rhs runs.
  optimize::Plan merge;
  merge.merge_path = true;
  EXPECT_FALSE(optimize::OptimizedSpmv::create(a, merge, 3).spmm_fused());
}

TEST(SpmmBlocked, CancellableFusedRunManyIsBitwiseAndAbortsMidway) {
  const CsrMatrix a = gen::monster_row(30'000, 30'000, 6, 0, 3);
  const auto spmv = optimize::OptimizedSpmv::create(a, {}, 2);
  ASSERT_TRUE(spmv.spmm_fused());
  constexpr int kRhs = 4;
  const std::vector<value_t> X = batch_of(a, kRhs);
  std::vector<value_t> plain(static_cast<std::size_t>(a.nrows()) * kRhs);
  std::vector<value_t> tokened(plain.size(), -1.0);
  spmv.run_many(X.data(), plain.data(), kRhs);
  const Status ok =
      spmv.run_many(X.data(), tokened.data(), kRhs,
                    robust::CancelToken::never());
  ASSERT_TRUE(ok.ok());
  // A completed cancellable batch mirrors the non-cancellable routing
  // bitwise: same kernel, same partition, same dedicated lanes.
  for (std::size_t i = 0; i < plain.size(); ++i)
    ASSERT_EQ(plain[i], tokened[i]) << i;

  robust::CancelToken tok;
  tok.cancel();
  const Status aborted =
      spmv.run_many(X.data(), tokened.data(), kRhs, tok);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.error().category(), ErrorCategory::Cancelled);
}

TEST(SpmmBlocked, BatchFusionOptOutMatchesRepeatedRunBitwise) {
  const CsrMatrix a = gen::random_uniform(900, 8, 7);
  auto spmv = optimize::OptimizedSpmv::create(a, {}, 3);
  ASSERT_TRUE(spmv.spmm_fused());
  constexpr int kRhs = 5;
  const std::vector<value_t> X = batch_of(a, kRhs);
  std::vector<value_t> looped(static_cast<std::size_t>(a.nrows()) * kRhs);
  for (int r = 0; r < kRhs; ++r)
    spmv.run(X.data() + static_cast<std::size_t>(r) * a.ncols(),
             looped.data() + static_cast<std::size_t>(r) * a.nrows());
  // Opted out, an F64 batch is exactly nrhs plan-scheduled run() calls —
  // bitwise, not just tolerance-equivalent.
  spmv.set_batch_fusion(false);
  EXPECT_FALSE(spmv.spmm_fused());
  std::vector<value_t> unfused(looped.size(), -1.0);
  spmv.run_many(X.data(), unfused.data(), kRhs);
  for (std::size_t i = 0; i < looped.size(); ++i)
    ASSERT_EQ(looped[i], unfused[i]) << i;
  // The cancellable entry mirrors the opt-out routing.
  std::vector<value_t> tokened(looped.size(), -1.0);
  ASSERT_TRUE(spmv.run_many(X.data(), tokened.data(), kRhs,
                            robust::CancelToken::never())
                  .ok());
  for (std::size_t i = 0; i < looped.size(); ++i)
    ASSERT_EQ(looped[i], tokened[i]) << i;
  // Re-enabled, the fused batch differs only within oracle tolerance.
  spmv.set_batch_fusion(true);
  EXPECT_TRUE(spmv.spmm_fused());
  // Non-F64 value modes ignore the opt-out: the fused kernel IS their
  // value format.
  optimize::Plan f32;
  f32.precision = Precision::F32;
  auto prec = optimize::OptimizedSpmv::create(a, f32, 3);
  prec.set_batch_fusion(false);
  EXPECT_TRUE(prec.spmm_fused());
}

TEST(SpmmBlocked, FusedBatchHonorsDynamicSchedulesBitwise) {
  // The fused dispatch never subdivides a row, so Auto/Dynamic work
  // stealing must reproduce the static partition's result bit for bit —
  // while actually honoring the plan's schedule (the load-balance choice
  // the classifier made for skewed matrices).
  const CsrMatrix a = gen::monster_row(8'000, 8'000, 5, 0, 2);
  engine::ExecutionEngine eng({.nthreads = 3, .pin = PinPolicy::None});
  constexpr int kRhs = 4;
  const std::vector<value_t> X = batch_of(a, kRhs);
  std::vector<value_t> want(static_cast<std::size_t>(a.nrows()) * kRhs);
  optimize::OptimizedSpmv::create(a, {}, 3).run_many(X.data(), want.data(),
                                                     kRhs);
  for (kernels::Sched sched :
       {kernels::Sched::Auto, kernels::Sched::Dynamic}) {
    optimize::Plan plan;
    plan.sched = sched;
    for (int mode = 0; mode < 2; ++mode) {
      SCOPED_TRACE(std::string(sched == kernels::Sched::Auto ? "auto"
                                                             : "dynamic") +
                   (mode == 0 ? "/threads" : "/engine"));
      const auto spmv = mode == 0
                            ? optimize::OptimizedSpmv::create(a, plan, 3)
                            : optimize::OptimizedSpmv::create(a, plan, eng);
      ASSERT_TRUE(spmv.spmm_fused());
      std::vector<value_t> Y(want.size(), -1.0);
      spmv.run_many(X.data(), Y.data(), kRhs);
      for (std::size_t i = 0; i < want.size(); ++i)
        ASSERT_EQ(want[i], Y[i]) << i;
      // Cancellable routing agrees bitwise on a clean completion.
      std::vector<value_t> Yc(want.size(), -1.0);
      ASSERT_TRUE(spmv.run_many(X.data(), Yc.data(), kRhs,
                                robust::CancelToken::never())
                      .ok());
      for (std::size_t i = 0; i < want.size(); ++i)
        ASSERT_EQ(want[i], Yc[i]) << i;
    }
  }
}

// -------------------------------------------------- mixed-precision plans

TEST(SpmmBlocked, PrecisionPlansMatchTheirOraclesAcrossModes) {
  const CsrMatrix a = gen::stencil_3d_7pt(14, 14, 14);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  engine::ExecutionEngine eng({.nthreads = 3, .pin = PinPolicy::None});
  for (Precision p : {Precision::F32F64, Precision::F32}) {
    optimize::Plan plan;
    plan.precision = p;
    for (int mode = 0; mode < 2; ++mode) {
      SCOPED_TRACE(std::string(precision_name(p)) +
                   (mode == 0 ? "/threads" : "/engine"));
      const auto spmv = mode == 0
                            ? optimize::OptimizedSpmv::create(a, plan, 3)
                            : optimize::OptimizedSpmv::create(a, plan, eng);
      EXPECT_EQ(spmv.precision(), p);
      std::vector<value_t> y(static_cast<std::size_t>(a.nrows()),
                             std::numeric_limits<value_t>::quiet_NaN());
      spmv.run(x.data(), y.data());
      expect_oracle(a, x, y, p, "run");
      // And through the cancellable entry, which must agree bitwise.
      std::vector<value_t> yc(y.size(), -1.0);
      ASSERT_TRUE(
          spmv.run(x.data(), yc.data(), robust::CancelToken::never()).ok());
      for (std::size_t i = 0; i < y.size(); ++i) ASSERT_EQ(y[i], yc[i]);
      constexpr int kRhs = 3;
      const std::vector<value_t> X = batch_of(a, kRhs);
      std::vector<value_t> Y(static_cast<std::size_t>(a.nrows()) * kRhs);
      spmv.run_many(X.data(), Y.data(), kRhs);
      for (int r = 0; r < kRhs; ++r)
        expect_oracle(
            a,
            std::span<const value_t>(
                X.data() + static_cast<std::size_t>(r) * a.ncols(),
                static_cast<std::size_t>(a.ncols())),
            std::span<const value_t>(
                Y.data() + static_cast<std::size_t>(r) * a.nrows(),
                static_cast<std::size_t>(a.nrows())),
            p, "rhs " + std::to_string(r));
    }
  }
}

TEST(SpmmBlocked, PrecisionConflictsWithStructuralFormatsThrow) {
  const CsrMatrix a = gen::dense(16);
  for (auto structural : {&optimize::Plan::merge_path, &optimize::Plan::delta,
                          &optimize::Plan::split_long_rows,
                          &optimize::Plan::sell, &optimize::Plan::bcsr}) {
    optimize::Plan p;
    p.precision = Precision::F32F64;
    p.*structural = true;
    EXPECT_THROW((void)optimize::OptimizedSpmv::create(a, p, 2),
                 std::invalid_argument);
  }
}

TEST(SpmmBlocked, PrecisionSurvivesPlanSerialization) {
  for (Precision p : {Precision::F64, Precision::F32, Precision::F32F64}) {
    optimize::Plan in;
    in.precision = p;
    const auto back = optimize::deserialize_plan(optimize::serialize_plan(in));
    ASSERT_TRUE(back.has_value()) << precision_name(p);
    EXPECT_EQ(back->precision, p);
  }
  // Plans persisted before the precision field carry no `prec` key and must
  // still parse (to F64 — exactly what they meant).
  const auto old = optimize::deserialize_plan(
      "plan1 sched=auto pf=1 compute=vector delta=0 split=0 merge=0 sell=0 "
      "bcsr=0 chunk=64");
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(old->precision, Precision::F64);
  // Unknown precision values fail closed.
  EXPECT_FALSE(optimize::deserialize_plan(
                   "plan1 sched=auto pf=0 compute=scalar delta=0 split=0 "
                   "merge=0 sell=0 bcsr=0 chunk=64 prec=f16")
                   .has_value());
}

TEST(SpmmBlocked, AdversarialCatalogPassesEveryPrecision) {
  // The fuzz catalog's hazards (denormals, huge dynamic range, cancellation
  // rows) against the per-precision oracle; float-unsafe matrices are
  // skipped for the non-f64 modes, mirroring the differential runner.
  for (const auto& c : verify::adversarial_suite()) {
    SCOPED_TRACE(c.name);
    const CsrMatrix& a = c.matrix;
    const std::vector<value_t> x = verify::adversarial_vector(a.ncols());
    for (Precision p :
         {Precision::F64, Precision::F32F64, Precision::F32}) {
      if (!prec_safe(a, x, p)) continue;
      optimize::Plan plan;
      plan.precision = p;
      const auto spmv = optimize::OptimizedSpmv::create(a, plan, 3);
      std::vector<value_t> y(static_cast<std::size_t>(a.nrows()),
                             std::numeric_limits<value_t>::quiet_NaN());
      spmv.run(x.data(), y.data());
      expect_oracle(a, x, y, p, precision_name(p));
    }
  }
}

// ------------------------------------------------- solvers over apply_many

TEST(SpmmBlocked, OperatorApplyManyRoutesThroughTheFusedKernel) {
  const CsrMatrix a = gen::random_uniform(800, 8, 21);
  const auto spmv = optimize::OptimizedSpmv::create(a, {}, 2);
  const auto op = solvers::LinearOperator::from_optimized(spmv);
  EXPECT_TRUE(op.has_apply_many());
  // from_csr has no batched callable and falls back to looped applies.
  EXPECT_FALSE(solvers::LinearOperator::from_csr(a).has_apply_many());

  constexpr index_t kRhs = 3;
  const std::vector<value_t> X = batch_of(a, kRhs);
  std::vector<value_t> fused(static_cast<std::size_t>(a.nrows()) * kRhs);
  op.apply_many(X.data(), fused.data(), kRhs);
  std::vector<value_t> direct(fused.size(), -1.0);
  spmv.run_many(X.data(), direct.data(), kRhs);
  for (std::size_t i = 0; i < fused.size(); ++i)
    ASSERT_EQ(fused[i], direct[i]);
}

TEST(SpmmBlocked, BlockCgSolvesEverySystemLikeScalarCg) {
  const CsrMatrix a = gen::stencil_2d_5pt(24, 24);
  const auto spmv = optimize::OptimizedSpmv::create(a, {}, 2);
  const auto op = solvers::LinearOperator::from_optimized(spmv);
  constexpr int kRhs = 3;
  const std::size_t n = static_cast<std::size_t>(a.nrows());
  const std::vector<value_t> B = batch_of(a, kRhs, 17);
  std::vector<value_t> X(n * kRhs, 0.0);
  solvers::SolverOptions opt;
  opt.max_iterations = 2000;
  opt.rel_tolerance = 1e-10;
  const auto results = solvers::block_cg(op, B, X, kRhs, opt);
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kRhs));
  for (int r = 0; r < kRhs; ++r) {
    SCOPED_TRACE("system " + std::to_string(r));
    EXPECT_TRUE(results[static_cast<std::size_t>(r)].converged);
    // Each solution satisfies its own system: residual check from scratch.
    std::vector<value_t> Ax(n);
    op.apply(X.data() + static_cast<std::size_t>(r) * n, Ax.data());
    double rn = 0.0, bn = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = Ax[i] - B[static_cast<std::size_t>(r) * n + i];
      rn += d * d;
      bn += B[static_cast<std::size_t>(r) * n + i] *
            B[static_cast<std::size_t>(r) * n + i];
    }
    EXPECT_LE(std::sqrt(rn), 1e-8 * std::sqrt(bn));
  }
  // Zero right-hand side inside a batch: converges immediately to x = 0.
  std::vector<value_t> B0(n * 2, 0.0);
  std::copy(B.begin(), B.begin() + static_cast<std::ptrdiff_t>(n), B0.begin());
  std::vector<value_t> X0(n * 2, 1.0);
  const auto mixed = solvers::block_cg(op, B0, X0, 2, opt);
  EXPECT_TRUE(mixed[1].converged);
  EXPECT_EQ(mixed[1].iterations, 0);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(X0[n + i], 0.0);
}

// ----------------------------------------------------- typed entry points

TEST(SpmmBlocked, TypedViewsConvertAtTheBoundary) {
  const CsrMatrix a = gen::stencil_2d_5pt(20, 20);
  const auto spmv = optimize::OptimizedSpmv::create(a, {}, 2);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> y64(static_cast<std::size_t>(a.nrows()));
  spmv.run(ConstVectorView::of(x.data(), a.ncols()),
           VectorView::of(y64.data(), a.nrows()));
  expect_oracle(a, x, y64, Precision::F64, "f64 views");

  // f32 operand views: x rounds through float on the way in.
  std::vector<float> xf(x.begin(), x.end());
  std::vector<float> yf(static_cast<std::size_t>(a.nrows()),
                        std::numeric_limits<float>::quiet_NaN());
  spmv.run(ConstVectorView::of(xf.data(), a.ncols()),
           VectorView::of(yf.data(), a.nrows()));
  const std::vector<value_t> x_rounded(xf.begin(), xf.end());
  const verify::Oracle oracle = verify::kahan_reference(a, x_rounded);
  for (index_t i = 0; i < a.nrows(); ++i)
    EXPECT_NEAR(static_cast<double>(yf[static_cast<std::size_t>(i)]),
                oracle.y[static_cast<std::size_t>(i)],
                1e-5 * std::max(1.0,
                                std::abs(oracle.y[static_cast<std::size_t>(i)])));

  // Size mismatches are rejected at the typed boundary.
  EXPECT_THROW(spmv.run(ConstVectorView::of(x.data(), a.ncols() - 1),
                        VectorView::of(y64.data(), a.nrows())),
               std::invalid_argument);
}

TEST(SpmmBlocked, TypedRunManyHonorsRowStrides) {
  const CsrMatrix a = gen::random_uniform(300, 7, 9);
  const auto spmv = optimize::OptimizedSpmv::create(a, {}, 2);
  constexpr index_t kRhs = 4;
  const std::vector<value_t> X = batch_of(a, kRhs);
  std::vector<value_t> Y(static_cast<std::size_t>(a.nrows()) * kRhs);
  spmv.run_many(X.data(), Y.data(), kRhs);

  // The same batch through strided views: each rhs row padded by 3 junk
  // elements that must be read around / left untouched.
  const index_t xstride = a.ncols() + 3, ystride = a.nrows() + 3;
  std::vector<value_t> Xs(static_cast<std::size_t>(xstride) * kRhs, 1e9);
  std::vector<value_t> Ys(static_cast<std::size_t>(ystride) * kRhs, -7.0);
  for (index_t r = 0; r < kRhs; ++r)
    std::copy(X.begin() + static_cast<std::ptrdiff_t>(r) * a.ncols(),
              X.begin() + static_cast<std::ptrdiff_t>(r + 1) * a.ncols(),
              Xs.begin() + static_cast<std::ptrdiff_t>(r) * xstride);
  spmv.run_many(
      ConstMatrixView::of(Xs.data(), kRhs, a.ncols(), xstride),
      MatrixView::of(Ys.data(), kRhs, a.nrows(), ystride));
  for (index_t r = 0; r < kRhs; ++r) {
    for (index_t i = 0; i < a.nrows(); ++i)
      ASSERT_EQ(Ys[static_cast<std::size_t>(r) * ystride +
                   static_cast<std::size_t>(i)],
                Y[static_cast<std::size_t>(r) * a.nrows() +
                  static_cast<std::size_t>(i)]);
    for (index_t pad = a.nrows(); pad < ystride; ++pad)
      ASSERT_EQ(Ys[static_cast<std::size_t>(r) * ystride +
                   static_cast<std::size_t>(pad)],
                -7.0);  // padding untouched
  }
}

// ------------------------------------------------------- protocol dtype

TEST(SpmmBlocked, ProtocolRunManyDtypeRoundTrips) {
  using namespace server;
  const CsrMatrix a = gen::random_uniform(60, 5, 3);
  RunManyRequest in;
  in.fp = fingerprint_of(a);
  in.nrhs = 2;
  in.dtype = Dtype::F32;
  in.X = {1.0, -2.5, 0.375, 1e-3, 42.0, -0.0};
  auto r = decode_request(encode_request(Request(in)));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  const auto& req = std::get<RunManyRequest>(r.value().request);
  EXPECT_EQ(req.dtype, Dtype::F32);
  ASSERT_EQ(req.X.size(), in.X.size());
  for (std::size_t i = 0; i < in.X.size(); ++i)
    EXPECT_EQ(req.X[i],
              static_cast<value_t>(static_cast<float>(in.X[i])))
        << i;  // entries quantize through binary32 in transit

  RunManyReply rep_in;
  rep_in.nrhs = 2;
  rep_in.dtype = Dtype::F32;
  rep_in.Y = {0.5, 0.25, -8.0};
  auto rep = decode_reply(encode_reply(Reply(rep_in)));
  ASSERT_TRUE(rep.ok()) << rep.error().to_string();
  const auto& out = std::get<RunManyReply>(rep.value().reply);
  EXPECT_EQ(out.dtype, Dtype::F32);
  EXPECT_EQ(out.Y, rep_in.Y);  // these values are float-exact

  // F64 frames carry full doubles.
  in.dtype = Dtype::F64;
  auto r64 = decode_request(encode_request(Request(in)));
  ASSERT_TRUE(r64.ok());
  EXPECT_EQ(std::get<RunManyRequest>(r64.value().request).X, in.X);
}

TEST(SpmmBlocked, ProtocolUnknownDtypeIsATypedFormatRejection) {
  using namespace server;
  RunManyRequest in;
  in.fp = fingerprint_of(gen::dense(4));
  in.nrhs = 1;
  in.X = {1.0, 2.0, 3.0, 4.0};
  std::string payload = encode_request(Request(in));
  // The dtype byte sits right after the i32 nrhs: magic(1) + type(1) +
  // id(8) + deadline(4) + fingerprint(20) + nrhs(4).
  const std::size_t dtype_off = 1 + 1 + 8 + 4 + 20 + 4;
  ASSERT_EQ(static_cast<std::uint8_t>(payload[dtype_off]), 0u);
  payload[dtype_off] = static_cast<char>(7);
  auto r = decode_request(payload);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), ErrorCategory::Format);
  EXPECT_NE(r.error().message().find("dtype 7"), std::string::npos)
      << r.error().message();
}

TEST(SpmmBlocked, ClientRunManyF32RoundTripsOverTheSocket) {
  using namespace server;
  namespace fs = std::filesystem;
  const std::string socket_path =
      (fs::temp_directory_path() /
       ("spmm_dtype_test_" + std::to_string(::getpid()) + ".sock"))
          .string();
  ServerConfig cfg;
  cfg.engine_threads = 2;
  SpmvServer core(cfg);
  SocketServer sock(core, socket_path);
  auto started = sock.start();
  ASSERT_TRUE(started.ok()) << started.error().to_string();

  auto client = Client::connect(socket_path);
  ASSERT_TRUE(client.ok()) << client.error().to_string();
  Client& c = client.value();
  const CsrMatrix a = gen::stencil_2d_5pt(16, 16);
  auto sub = c.submit(a);
  ASSERT_TRUE(sub.ok()) << sub.error().to_string();

  constexpr int kRhs = 2;
  const std::vector<value_t> X = batch_of(a, kRhs);
  auto y32 = c.run_many(sub.value().fp, X, kRhs, Dtype::F32);
  ASSERT_TRUE(y32.ok()) << y32.error().to_string();
  ASSERT_EQ(y32.value().size(),
            static_cast<std::size_t>(a.nrows()) * kRhs);
  // The request's X quantized through binary32 on the way out, so compare
  // against an oracle over the rounded operands; the reply's Y rounds too.
  for (int r = 0; r < kRhs; ++r) {
    std::vector<value_t> xr(
        X.begin() + static_cast<std::ptrdiff_t>(r) * a.ncols(),
        X.begin() + static_cast<std::ptrdiff_t>(r + 1) * a.ncols());
    for (auto& v : xr) v = static_cast<value_t>(static_cast<float>(v));
    const verify::Oracle oracle = verify::kahan_reference(a, xr);
    for (index_t i = 0; i < a.nrows(); ++i) {
      const double got =
          y32.value()[static_cast<std::size_t>(r) * a.nrows() +
                      static_cast<std::size_t>(i)];
      const double want = oracle.y[static_cast<std::size_t>(i)];
      EXPECT_NEAR(got, want, 1e-5 * std::max(1.0, std::abs(want)));
    }
  }
  // The default-dtype overload still speaks f64 end to end.
  auto y64 = c.run_many(sub.value().fp, X, kRhs);
  ASSERT_TRUE(y64.ok()) << y64.error().to_string();
  sock.stop();
}

}  // namespace
}  // namespace spmvopt
