#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "perf/bounds.hpp"
#include "perf/measure.hpp"
#include "perf/roofline.hpp"
#include "perf/stream.hpp"

namespace spmvopt::perf {
namespace {

MeasureConfig tiny() {
  MeasureConfig m;
  m.iterations = 2;
  m.runs = 2;
  m.warmup = 0;
  return m;
}

TEST(Measure, RateIsPositiveAndScalesWithFlops) {
  volatile double sink = 0.0;
  auto op = [&sink] {
    for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
  };
  const RateSummary r1 = measure_rate(op, 1e6, tiny());
  const RateSummary r2 = measure_rate(op, 2e6, tiny());
  EXPECT_GT(r1.gflops, 0.0);
  EXPECT_GT(r2.gflops, r1.gflops * 0.5);  // double flops ≈ double rate
}

TEST(Measure, TimedReturnsResultAndSeconds) {
  const auto [sec, val] = timed([] { return 42; });
  EXPECT_GE(sec, 0.0);
  EXPECT_EQ(val, 42);
}

TEST(Stream, TriadBandwidthIsPositive) {
  const double gbps = stream_triad_gbps(1 << 16, 1, 3);
  EXPECT_GT(gbps, 0.1);
  EXPECT_LT(gbps, 10000.0);  // sanity: below 10 TB/s
}

TEST(Stream, ProfileHasLlcAtLeastDram) {
  const BandwidthProfile& p = bandwidth_profile(1);
  EXPECT_GT(p.dram_gbps, 0.0);
  EXPECT_GE(p.llc_gbps, p.dram_gbps);
}

TEST(Stream, BmaxForPicksOperatingPoint) {
  BandwidthProfile p;
  p.dram_gbps = 10.0;
  p.llc_gbps = 50.0;
  EXPECT_DOUBLE_EQ(p.bmax_for(1024), 50.0);
  EXPECT_DOUBLE_EQ(p.bmax_for(std::size_t{1} << 40), 10.0);
}

TEST(Stream, RejectsBadArgs) {
  EXPECT_THROW((void)stream_triad_gbps(0, 1), std::invalid_argument);
  EXPECT_THROW((void)stream_triad_gbps(64, 1, 0), std::invalid_argument);
}

TEST(Bounds, AnalyticOrderingPeakAboveMb) {
  // P_peak drops the colind traffic, so P_peak > P_MB always.
  BoundsConfig cfg;
  cfg.measure = tiny();
  cfg.nthreads = 2;
  const PerfBounds b = measure_bounds(gen::stencil_2d_5pt(48, 48), cfg);
  EXPECT_GT(b.p_peak, b.p_mb);
  EXPECT_GT(b.p_mb, 0.0);
}

TEST(Bounds, AllMeasuredBoundsPositive) {
  BoundsConfig cfg;
  cfg.measure = tiny();
  cfg.nthreads = 2;
  const PerfBounds b = measure_bounds(gen::random_uniform(800, 6, 3), cfg);
  EXPECT_GT(b.p_csr, 0.0);
  EXPECT_GT(b.p_ml, 0.0);
  EXPECT_GT(b.p_imb, 0.0);
  EXPECT_GT(b.p_cmp, 0.0);
  EXPECT_GT(b.bmax_gbps, 0.0);
}

TEST(Bounds, SmallMatrixFitsLlc) {
  BoundsConfig cfg;
  cfg.measure = tiny();
  cfg.nthreads = 1;
  const PerfBounds b = measure_bounds(gen::stencil_2d_5pt(8, 8), cfg);
  EXPECT_TRUE(b.fits_llc);
}

TEST(Roofline, IntensityOfSpmvBelowOne) {
  // flop:byte of CSR SpMV is < 1 (§II) for any real matrix.
  EXPECT_LT(spmv_operational_intensity(gen::stencil_2d_5pt(32, 32)), 1.0);
  EXPECT_GT(spmv_operational_intensity(gen::stencil_2d_5pt(32, 32)), 0.0);
}

TEST(Roofline, AttainableIsMinOfRoofs) {
  EXPECT_DOUBLE_EQ(roofline_gflops(0.1, 100.0, 50.0), 10.0);  // bandwidth roof
  EXPECT_DOUBLE_EQ(roofline_gflops(10.0, 100.0, 50.0), 50.0);  // compute roof
}

TEST(Roofline, RidgePoint) {
  EXPECT_DOUBLE_EQ(ridge_point(100.0, 50.0), 0.5);
}

}  // namespace
}  // namespace spmvopt::perf
