#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"
#include "kernels/spmm.hpp"
#include "support/rng.hpp"

namespace spmvopt {
namespace {

std::vector<value_t> random_block(index_t n, index_t k, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<value_t> X(static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
  for (auto& v : X) v = rng.uniform(-1.0, 1.0);
  return X;
}

void expect_matches_per_rhs(const CsrMatrix& a, index_t k) {
  const std::vector<value_t> X = random_block(a.ncols(), k, 7);
  const auto part = balanced_nnz_partition(a.rowptr(), a.nrows(), 3);
  std::vector<value_t> Y(static_cast<std::size_t>(a.nrows()) *
                             static_cast<std::size_t>(k),
                         std::nan(""));
  kernels::spmm(a, part, X.data(), Y.data(), k);

  // Reference: one serial SpMV per rhs, de-strided.
  std::vector<value_t> xr(static_cast<std::size_t>(a.ncols()));
  std::vector<value_t> yr(static_cast<std::size_t>(a.nrows()));
  for (index_t r = 0; r < k; ++r) {
    for (index_t j = 0; j < a.ncols(); ++j)
      xr[static_cast<std::size_t>(j)] =
          X[static_cast<std::size_t>(j) * static_cast<std::size_t>(k) +
            static_cast<std::size_t>(r)];
    a.multiply(xr, yr);
    for (index_t i = 0; i < a.nrows(); ++i)
      ASSERT_NEAR(Y[static_cast<std::size_t>(i) * static_cast<std::size_t>(k) +
                    static_cast<std::size_t>(r)],
                  yr[static_cast<std::size_t>(i)],
                  1e-9 * std::max(1.0, std::abs(yr[static_cast<std::size_t>(i)])))
          << "rhs " << r << " row " << i;
  }
}

TEST(Spmm, FixedKVariantsMatchReference) {
  const CsrMatrix a = gen::power_law(400, 8, 2.0, 3);
  for (index_t k : {1, 2, 4, 8, 16}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    expect_matches_per_rhs(a, k);
  }
}

TEST(Spmm, GenericKMatchesReference) {
  const CsrMatrix a = gen::stencil_2d_5pt(18, 18);
  for (index_t k : {3, 5, 7, 11}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    expect_matches_per_rhs(a, k);
  }
}

TEST(Spmm, RectangularMatrix) {
  CooMatrix coo(40, 90);
  Xoshiro256 rng(5);
  for (int e = 0; e < 300; ++e)
    coo.add(static_cast<index_t>(rng.bounded(40)),
            static_cast<index_t>(rng.bounded(90)), rng.uniform(0.1, 1.0));
  coo.compress();
  expect_matches_per_rhs(CsrMatrix::from_coo(coo), 4);
}

TEST(Spmm, UnfusedMatchesFused) {
  const CsrMatrix a = gen::random_uniform(300, 6, 9);
  const index_t k = 8;
  const std::vector<value_t> X = random_block(a.ncols(), k, 11);
  const auto part = balanced_nnz_partition(a.rowptr(), a.nrows(), 2);
  std::vector<value_t> y1(static_cast<std::size_t>(a.nrows()) * k);
  std::vector<value_t> y2(y1.size());
  kernels::spmm(a, part, X.data(), y1.data(), k);
  kernels::spmm_unfused(a, part, X.data(), y2.data(), k);
  for (std::size_t i = 0; i < y1.size(); ++i)
    ASSERT_NEAR(y1[i], y2[i], 1e-9 * std::max(1.0, std::abs(y2[i])));
}

TEST(Spmm, EmptyRowsYieldZeroBlock) {
  CooMatrix coo(4, 4);
  coo.add(0, 0, 1.0);  // rows 1-3 empty
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const auto part = balanced_nnz_partition(a.rowptr(), a.nrows(), 2);
  const std::vector<value_t> X(16, 1.0);
  std::vector<value_t> Y(16, 42.0);
  kernels::spmm(a, part, X.data(), Y.data(), 4);
  for (std::size_t i = 4; i < 16; ++i) EXPECT_DOUBLE_EQ(Y[i], 0.0);
}

}  // namespace
}  // namespace spmvopt
