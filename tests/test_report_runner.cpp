// BenchRunner tests — cell statistics and an end-to-end smoke sweep.
#include "report/runner.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "report/compare.hpp"

namespace spmvopt::report {
namespace {

perf::MeasureConfig tiny_measure() {
  perf::MeasureConfig m;
  m.iterations = 2;
  m.runs = 3;
  m.warmup = 0;
  return m;
}

TEST(ReportRunnerStats, FillCellStatsComputesHarmonicMeanAndCi) {
  BenchResult cell;
  fill_cell_stats({1.0, 2.0, 4.0}, 0.95, 1.5, &cell);
  EXPECT_DOUBLE_EQ(cell.gflops, 12.0 / 7.0);  // H(1,2,4)
  EXPECT_EQ(cell.samples_kept, 3);
  EXPECT_EQ(cell.samples_rejected, 0);
  EXPECT_LE(cell.ci_lo, cell.ci_hi);
}

TEST(ReportRunnerStats, FillCellStatsRejectsOutliers) {
  // A descheduled run at ~0 rate must not drag the harmonic mean down.
  BenchResult cell;
  fill_cell_stats({10.0, 10.1, 9.9, 10.05, 9.95, 0.01}, 0.95, 1.5, &cell);
  EXPECT_EQ(cell.samples_rejected, 1);
  EXPECT_EQ(cell.samples_kept, 5);
  EXPECT_GT(cell.gflops, 9.0);
}

TEST(ReportRunnerStats, FillCellStatsHandlesEmptyInput) {
  BenchResult cell;
  fill_cell_stats({}, 0.95, 1.5, &cell);
  EXPECT_EQ(cell.samples_kept, 0);
  EXPECT_DOUBLE_EQ(cell.gflops, 0.0);
}

TEST(ReportRunner, RejectsUnknownSuiteAndKind) {
  RunnerConfig bad_suite;
  bad_suite.suite = "galactic";
  EXPECT_THROW(BenchRunner{bad_suite}, std::invalid_argument);
  RunnerConfig bad_kind;
  bad_kind.kind = "vibes";
  EXPECT_THROW(BenchRunner{bad_kind}, std::invalid_argument);
  RunnerConfig bad_threads;
  bad_threads.thread_counts = {0};
  EXPECT_THROW(BenchRunner{bad_threads}, std::invalid_argument);
}

TEST(ReportRunner, SmokeSweepProducesValidDocument) {
  RunnerConfig cfg;
  cfg.suite = "smoke";
  cfg.kind = "kernels";
  cfg.measure = tiny_measure();
  cfg.thread_counts = {1};
  const BenchDocument doc = BenchRunner(cfg).run();

  EXPECT_EQ(doc.schema_version, kBenchSchemaVersion);
  EXPECT_EQ(doc.kind, "kernels");
  EXPECT_EQ(doc.suite, "smoke");
  EXPECT_FALSE(doc.results.empty());
  EXPECT_EQ(doc.environment.iterations, cfg.measure.iterations);

  std::set<std::string> matrices, variants;
  for (const BenchResult& r : doc.results) {
    matrices.insert(r.matrix);
    variants.insert(r.variant);
    EXPECT_GT(r.nnz, 0);
    EXPECT_GT(r.gflops, 0.0) << r.matrix << "/" << r.variant;
    EXPECT_LE(r.ci_lo, r.ci_hi);
    EXPECT_FALSE(r.classes.empty());
    EXPECT_FALSE(r.plan.empty());
  }
  // The smoke suite is the full synthetic test suite, and the kernels pool
  // includes at least serial + baseline + one optimization.
  EXPECT_GE(matrices.size(), 5u);
  EXPECT_GE(variants.size(), 3u);
  EXPECT_TRUE(variants.count("serial"));
  EXPECT_TRUE(variants.count("baseline"));

  // The document round-trips through its serialized form.
  auto back = document_from_json(document_to_json(doc));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), doc);

  // ...and compares clean against itself end to end.
  auto cmp = compare_documents(doc, doc);
  ASSERT_TRUE(cmp.ok());
  EXPECT_FALSE(cmp.value().has_regressions());
  EXPECT_EQ(cmp.value().improved, 0);
}

TEST(ReportRunner, PlansKindUsesCombinedPool) {
  RunnerConfig cfg;
  cfg.suite = "smoke";
  cfg.kind = "plans";
  cfg.measure = tiny_measure();
  cfg.thread_counts = {1};
  const BenchDocument doc = BenchRunner(cfg).run();
  EXPECT_EQ(doc.kind, "plans");
  EXPECT_FALSE(doc.results.empty());
  // The plans pool has no serial row; everything goes through OptimizedSpmv.
  for (const BenchResult& r : doc.results) EXPECT_NE(r.variant, "serial");
}

}  // namespace
}  // namespace spmvopt::report
