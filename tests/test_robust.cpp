// Unit tests for the robustness primitives (DESIGN.md §6, §10): the error
// taxonomy, Expected<>, CRC32, overflow-checked arithmetic, the degradation
// log, cooperative cancellation tokens, and the resource-ceiling env knobs.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <thread>

#include "robust/cancel.hpp"
#include "robust/degradation.hpp"
#include "robust/error.hpp"
#include "support/checked.hpp"
#include "support/crc32.hpp"
#include "support/env.hpp"

namespace spmvopt {
namespace {

TEST(ErrorTaxonomy, CategoryNames) {
  EXPECT_STREQ(error_category_name(ErrorCategory::Io), "io");
  EXPECT_STREQ(error_category_name(ErrorCategory::Format), "format");
  EXPECT_STREQ(error_category_name(ErrorCategory::Resource), "resource");
  EXPECT_STREQ(error_category_name(ErrorCategory::Internal), "internal");
}

TEST(ErrorTaxonomy, SysexitsMapping) {
  EXPECT_EQ(exit_code_for(ErrorCategory::Format), 65);
  EXPECT_EQ(exit_code_for(ErrorCategory::Io), 66);
  EXPECT_EQ(exit_code_for(ErrorCategory::Internal), 70);
  EXPECT_EQ(exit_code_for(ErrorCategory::Resource), 71);
  EXPECT_EQ(kExitUsage, 64);
}

TEST(ErrorTaxonomy, ContextChainRendering) {
  Error e = Error(ErrorCategory::Format, "line 3: malformed entry")
                .with_context("while reading 'a.mtx'")
                .with_context("while loading the test pool");
  EXPECT_EQ(e.category(), ErrorCategory::Format);
  ASSERT_EQ(e.context().size(), 2u);
  EXPECT_EQ(e.context()[0], "while reading 'a.mtx'");  // innermost first
  const std::string s = e.to_string();
  EXPECT_NE(s.find("format: line 3: malformed entry"), std::string::npos);
  EXPECT_NE(s.find("while reading 'a.mtx'"), std::string::npos);
  EXPECT_NE(s.find("while loading the test pool"), std::string::npos);
}

TEST(ErrorTaxonomy, SpmvExceptionIsRuntimeErrorWithFullMessage) {
  const SpmvException ex(Error(ErrorCategory::Io, "cannot open 'x'"));
  const std::runtime_error& base = ex;  // old catch sites keep working
  EXPECT_NE(std::string(base.what()).find("cannot open 'x'"), std::string::npos);
  EXPECT_EQ(ex.error().category(), ErrorCategory::Io);
}

TEST(ExpectedT, ValueAndErrorPaths) {
  Expected<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(std::move(good).value_or_throw(), 42);

  Expected<int> bad(Error(ErrorCategory::Resource, "too big"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().category(), ErrorCategory::Resource);
  try {
    (void)std::move(bad).value_or_throw();
    FAIL() << "value_or_throw did not throw";
  } catch (const SpmvException& e) {
    EXPECT_EQ(e.error().category(), ErrorCategory::Resource);
  }
}

TEST(ExpectedT, WithContextOnlyTouchesErrors) {
  Expected<int> good = Expected<int>(1).with_context("ignored");
  ASSERT_TRUE(good.ok());

  Expected<int> bad = Expected<int>(Error(ErrorCategory::Io, "boom"))
                          .with_context("while testing");
  ASSERT_FALSE(bad.ok());
  ASSERT_EQ(bad.error().context().size(), 1u);
  EXPECT_EQ(bad.error().context()[0], "while testing");
}

TEST(Crc32, KnownVectorAndChaining) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  // Chaining two halves equals one pass over the whole.
  const std::uint32_t half = crc32("12345", 5);
  EXPECT_EQ(crc32("6789", 4, half), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(CheckedArithmetic, DetectsOverflow) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t out = 0;
  EXPECT_TRUE(checked_add_u64(2, 3, &out));
  EXPECT_EQ(out, 5u);
  EXPECT_FALSE(checked_add_u64(max, 1, &out));
  EXPECT_TRUE(checked_mul_u64(1u << 20, 1u << 20, &out));
  EXPECT_EQ(out, 1ull << 40);
  EXPECT_FALSE(checked_mul_u64(max / 2, 3, &out));
}

TEST(DegradationLog, RecordsAndQueries) {
  robust::DegradationLog log;
  EXPECT_FALSE(log.degraded());
  EXPECT_EQ(log.to_string(), "no degradation");
  log.record("delta", "in-row gap exceeds 16 bits");
  log.record("split", "injected conversion failure");
  EXPECT_TRUE(log.degraded());
  EXPECT_TRUE(log.dropped("delta"));
  EXPECT_TRUE(log.dropped("split"));
  EXPECT_FALSE(log.dropped("sell"));
  ASSERT_EQ(log.entries().size(), 2u);
  const std::string s = log.to_string();
  EXPECT_NE(s.find("dropped delta"), std::string::npos);
  EXPECT_NE(s.find("dropped split"), std::string::npos);
}

TEST(CancelToken, FreshTokenIsLive) {
  robust::CancelToken tok;
  EXPECT_FALSE(tok.cancelled());
  EXPECT_EQ(tok.why(), robust::CancelToken::Why::None);
  EXPECT_FALSE(tok.has_deadline());
  EXPECT_GT(tok.remaining_seconds(), 1e18);  // effectively infinite
}

TEST(CancelToken, CancelIsSharedAcrossCopiesAndIdempotent) {
  robust::CancelToken tok;
  robust::CancelToken copy = tok;  // shares state, not a snapshot
  copy.cancel();
  copy.cancel();  // idempotent
  EXPECT_TRUE(tok.cancelled());
  EXPECT_EQ(tok.why(), robust::CancelToken::Why::Cancelled);

  const Error e = tok.to_error("after 12288 of 100000 rows");
  EXPECT_EQ(e.category(), ErrorCategory::Cancelled);
  EXPECT_NE(e.message().find("after 12288 of 100000 rows"), std::string::npos)
      << e.message();
}

TEST(CancelToken, NonPositiveBudgetIsAlreadyExpired) {
  const auto tok = robust::CancelToken::after_seconds(0.0);
  EXPECT_TRUE(tok.cancelled());
  EXPECT_EQ(tok.why(), robust::CancelToken::Why::Deadline);
  EXPECT_EQ(tok.remaining_seconds(), 0.0);
  EXPECT_EQ(tok.to_error("before starting").category(),
            ErrorCategory::DeadlineExceeded);
}

TEST(CancelToken, AfterMsZeroMeansNoDeadline) {
  // The wire contract: deadline_ms == 0 arms *no* deadline, but the token
  // stays cancellable (the cancel verb and the watchdog still reach it).
  const auto tok = robust::CancelToken::after_ms(0);
  EXPECT_FALSE(tok.has_deadline());
  EXPECT_FALSE(tok.cancelled());
  tok.cancel();
  EXPECT_TRUE(tok.cancelled());
  EXPECT_EQ(tok.why(), robust::CancelToken::Why::Cancelled);
}

TEST(CancelToken, DeadlineTripsAndLatches) {
  const auto tok = robust::CancelToken::after_ms(5);
  EXPECT_TRUE(tok.has_deadline());
  EXPECT_LE(tok.remaining_seconds(), 0.005 + 1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(tok.cancelled());
  EXPECT_TRUE(tok.cancelled());  // latched: repeat polls stay tripped
  EXPECT_EQ(tok.why(), robust::CancelToken::Why::Deadline);
}

TEST(CancelToken, ExplicitCancelWinsOverALaterDeadline) {
  const auto tok = robust::CancelToken::after_seconds(3600.0);
  tok.cancel();
  EXPECT_TRUE(tok.cancelled());
  EXPECT_EQ(tok.why(), robust::CancelToken::Why::Cancelled);
  EXPECT_EQ(tok.to_error("x").category(), ErrorCategory::Cancelled);
}

TEST(CancelToken, NeverTokenStaysLive) {
  const robust::CancelToken& tok = robust::CancelToken::never();
  EXPECT_FALSE(tok.cancelled());
  EXPECT_FALSE(tok.has_deadline());
}

TEST(ResourceCeilings, ReadFreshFromEnvironment) {
  unsetenv("SPMVOPT_MAX_NNZ");
  unsetenv("SPMVOPT_MAX_BYTES");
  EXPECT_EQ(max_nnz_limit(), 0u);    // unset = unlimited
  EXPECT_EQ(max_bytes_limit(), 0u);
  setenv("SPMVOPT_MAX_NNZ", "12345", 1);
  setenv("SPMVOPT_MAX_BYTES", "67890", 1);
  EXPECT_EQ(max_nnz_limit(), 12345u);  // no caching: picked up immediately
  EXPECT_EQ(max_bytes_limit(), 67890u);
  setenv("SPMVOPT_MAX_NNZ", "notanumber", 1);
  EXPECT_EQ(max_nnz_limit(), 0u);  // garbage = unlimited, never a crash
  unsetenv("SPMVOPT_MAX_NNZ");
  unsetenv("SPMVOPT_MAX_BYTES");
}

}  // namespace
}  // namespace spmvopt
