#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "support/aligned.hpp"
#include "support/cpu_info.hpp"
#include "support/fingerprint.hpp"
#include "support/partition.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

namespace spmvopt {
namespace {

TEST(Aligned, VectorDataIsCacheLineAligned) {
  for (std::size_t n : {1u, 3u, 17u, 1000u}) {
    aligned_vector<double> v(n, 1.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kAlign, 0u);
    aligned_vector<std::int32_t> w(n, 1);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % kAlign, 0u);
  }
}

TEST(Aligned, VectorBehavesLikeVector) {
  aligned_vector<int> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v[42], 42);
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BoundedStaysInBound) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.bounded(17);
    EXPECT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);  // all residues hit over 10k draws
}

TEST(Rng, BoundedZeroIsZero) {
  Xoshiro256 rng(1);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Partition, BalancedNnzCoversAllRowsInOrder) {
  // rowptr for 6 rows with lengths {10, 1, 1, 1, 1, 10}.
  const aligned_vector<index_t> rowptr{0, 10, 11, 12, 13, 14, 24};
  const RowPartition p = balanced_nnz_partition(rowptr.data(), 6, 3);
  ASSERT_EQ(p.nthreads(), 3);
  EXPECT_EQ(p.bounds.front(), 0);
  EXPECT_EQ(p.bounds.back(), 6);
  for (std::size_t i = 1; i < p.bounds.size(); ++i)
    EXPECT_LE(p.bounds[i - 1], p.bounds[i]);
}

TEST(Partition, BalancedNnzBalancesLoad) {
  // 100 rows of 1 nnz each, 4 threads: each thread should get ~25 rows.
  aligned_vector<index_t> rowptr(101);
  for (index_t i = 0; i <= 100; ++i) rowptr[static_cast<std::size_t>(i)] = i;
  const RowPartition p = balanced_nnz_partition(rowptr.data(), 100, 4);
  for (int t = 0; t < 4; ++t) {
    const index_t rows = p.bounds[static_cast<std::size_t>(t) + 1] -
                         p.bounds[static_cast<std::size_t>(t)];
    EXPECT_EQ(rows, 25);
  }
}

TEST(Partition, OneGiantRowGoesToOneThread) {
  // Row 0 has 1000 nnz, rows 1..9 have 1 each: thread 0 should own just the
  // giant row (static partitions cannot split rows — the IMB motivation).
  aligned_vector<index_t> rowptr{0, 1000, 1001, 1002, 1003, 1004,
                                 1005, 1006, 1007, 1008, 1009};
  const RowPartition p = balanced_nnz_partition(rowptr.data(), 10, 2);
  EXPECT_EQ(p.bounds[1], 1);
}

TEST(Partition, MoreThreadsThanRows) {
  const aligned_vector<index_t> rowptr{0, 1, 2};
  const RowPartition p = balanced_nnz_partition(rowptr.data(), 2, 8);
  EXPECT_EQ(p.nthreads(), 8);
  EXPECT_EQ(p.bounds.back(), 2);
  for (std::size_t i = 1; i < p.bounds.size(); ++i)
    EXPECT_LE(p.bounds[i - 1], p.bounds[i]);
}

TEST(Partition, EmptyMatrix) {
  const aligned_vector<index_t> rowptr{0};
  const RowPartition p = balanced_nnz_partition(rowptr.data(), 0, 4);
  EXPECT_EQ(p.bounds.back(), 0);
}

TEST(Partition, StaticRowsEqualCounts) {
  const RowPartition p = static_rows_partition(10, 3);
  EXPECT_EQ(p.bounds[0], 0);
  EXPECT_EQ(p.bounds[1], 4);  // 10 = 4 + 3 + 3
  EXPECT_EQ(p.bounds[2], 7);
  EXPECT_EQ(p.bounds[3], 10);
}

TEST(Partition, RejectsBadArgs) {
  const aligned_vector<index_t> rowptr{0};
  EXPECT_THROW((void)balanced_nnz_partition(rowptr.data(), 0, 0),
               std::invalid_argument);
  EXPECT_THROW((void)static_rows_partition(-1, 2), std::invalid_argument);
}

TEST(Timing, TimerMeasuresElapsed) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GT(t.elapsed_sec(), 0.0);
}

TEST(Timing, AccumulatorSumsSections) {
  Accumulator acc;
  acc.add(1.5);
  acc.add(0.5);
  EXPECT_DOUBLE_EQ(acc.total_sec(), 2.0);
  acc.reset();
  EXPECT_DOUBLE_EQ(acc.total_sec(), 0.0);
}

TEST(CpuInfo, SaneValues) {
  const CpuInfo& info = cpu_info();
  EXPECT_GE(info.cache_line_bytes, 32u);
  EXPECT_GE(info.llc_bytes, info.l1d_bytes);
  EXPECT_GE(info.logical_cpus, 1);
  EXPECT_EQ(info.doubles_per_line(), info.cache_line_bytes / sizeof(double));
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "gflops"});
  t.add_row({"poisson", Table::num(1.2345, 2)});
  t.add_row({"x", "10.00"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("poisson"), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

// --------------------------------------------------------------- fingerprint

namespace {

/// A tiny 2x3 CSR: row 0 = {a@0, b@2}, row 1 = {c@1}.
struct FpArrays {
  std::vector<index_t> rowptr{0, 2, 3};
  std::vector<index_t> colind{0, 2, 1};
  std::vector<value_t> values{1.0, 2.0, 3.0};

  Fingerprint fp() const {
    return fingerprint_arrays(2, 3, rowptr, colind, values);
  }
};

}  // namespace

TEST(Fingerprint, DeterministicAndSelfEqual) {
  FpArrays a;
  const Fingerprint f1 = a.fp();
  const Fingerprint f2 = a.fp();
  EXPECT_EQ(f1, f2);
  EXPECT_TRUE(f1.same_structure(f2));
  EXPECT_EQ(f1.nrows, 2);
  EXPECT_EQ(f1.ncols, 3);
  EXPECT_EQ(f1.nnz, 3);
}

TEST(Fingerprint, ValueChangeKeepsStructure) {
  FpArrays a, b;
  b.values[1] = -7.5;
  const Fingerprint fa = a.fp();
  const Fingerprint fb = b.fp();
  EXPECT_NE(fa, fb);                       // full identity differs
  EXPECT_TRUE(fa.same_structure(fb));      // pattern identical -> plan reuse
  EXPECT_EQ(fa.structure_key(), fb.structure_key());
  EXPECT_NE(fa.key(), fb.key());
}

TEST(Fingerprint, PatternChangeBreaksStructure) {
  FpArrays a, b;
  b.colind[2] = 0;  // same dims/nnz, different pattern
  EXPECT_FALSE(a.fp().same_structure(b.fp()));
  EXPECT_NE(a.fp().structure_key(), b.fp().structure_key());
}

TEST(Fingerprint, RowptrShiftBreaksStructure) {
  FpArrays a, b;
  b.rowptr = {0, 1, 3};  // entries redistributed between the rows
  EXPECT_FALSE(a.fp().same_structure(b.fp()));
}

TEST(Fingerprint, DimensionChangeBreaksStructure) {
  FpArrays a;
  const Fingerprint fa = a.fp();
  const Fingerprint fb = fingerprint_arrays(2, 4, a.rowptr, a.colind, a.values);
  EXPECT_FALSE(fa.same_structure(fb));
}

TEST(Fingerprint, KeyIsAValidFileName) {
  const std::string k = FpArrays{}.fp().key();
  EXPECT_FALSE(k.empty());
  for (char c : k)
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '-')
        << "key '" << k << "' contains '" << c << "'";
  // And the structure key is a strict prefix of the full key.
  EXPECT_EQ(k.rfind(FpArrays{}.fp().structure_key(), 0), 0u);
}

TEST(FingerprintHash, DistinguishesValueTwins) {
  FpArrays a, b;
  b.values[0] = 99.0;
  // Not guaranteed in theory, but FNV over 5 fields should separate these.
  EXPECT_NE(FingerprintHash{}(a.fp()), FingerprintHash{}(b.fp()));
  EXPECT_EQ(FingerprintHash{}(a.fp()), FingerprintHash{}(a.fp()));
}

}  // namespace
}  // namespace spmvopt
